#include "rf/signal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace metaai::rf {
namespace {

TEST(SignalTest, AveragePowerOfKnownSignal) {
  const Signal s{Complex{1.0, 0.0}, Complex{0.0, 2.0}};
  EXPECT_DOUBLE_EQ(AveragePower(s), 2.5);
}

TEST(SignalTest, AveragePowerOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(AveragePower(Signal{}), 0.0);
}

TEST(SignalTest, DbConversionsRoundTrip) {
  EXPECT_NEAR(DbToLinear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(DbToLinear(3.0), 1.9953, 1e-4);
  EXPECT_NEAR(LinearToDb(100.0), 20.0, 1e-12);
  for (const double db : {-20.0, -3.0, 0.0, 7.5, 30.0}) {
    EXPECT_NEAR(LinearToDb(DbToLinear(db)), db, 1e-12);
  }
}

TEST(SignalTest, NoiseVarianceMatchesSnrDefinition) {
  EXPECT_NEAR(NoiseVariance(1.0, 10.0), 0.1, 1e-12);
  EXPECT_NEAR(NoiseVariance(4.0, 0.0), 4.0, 1e-12);
}

TEST(SignalTest, AddAwgnProducesRequestedSnr) {
  Rng rng(33);
  constexpr double kSnrDb = 10.0;
  Signal clean(20000, Complex{1.0, 0.0});
  Signal noisy = clean;
  AddAwgn(noisy, /*signal_power=*/1.0, kSnrDb, rng);
  double noise_power = 0.0;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    noise_power += std::norm(noisy[i] - clean[i]);
  }
  noise_power /= static_cast<double>(noisy.size());
  EXPECT_NEAR(noise_power, 0.1, 0.005);
}

TEST(SignalTest, HigherSnrMeansLessNoise) {
  Rng rng_a(35);
  Rng rng_b(35);
  Signal a(5000, Complex{1.0, 0.0});
  Signal b = a;
  AddAwgn(a, 1.0, 5.0, rng_a);
  AddAwgn(b, 1.0, 25.0, rng_b);
  double pa = 0.0;
  double pb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    pa += std::norm(a[i] - Complex{1.0, 0.0});
    pb += std::norm(b[i] - Complex{1.0, 0.0});
  }
  EXPECT_GT(pa, pb * 10.0);
}

}  // namespace
}  // namespace metaai::rf
