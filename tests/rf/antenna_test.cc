#include "rf/antenna.h"

#include <gtest/gtest.h>

#include "rf/geometry.h"

namespace metaai::rf {
namespace {

TEST(AntennaTest, OmniIsUnityEverywhere) {
  const Antenna omni(AntennaType::kOmni);
  for (double deg = 0.0; deg <= 180.0; deg += 15.0) {
    EXPECT_DOUBLE_EQ(omni.Gain(DegToRad(deg)), 1.0);
  }
  EXPECT_DOUBLE_EQ(omni.DiffuseGain(), 1.0);
}

TEST(AntennaTest, DirectionalPeaksAtBoresight) {
  const Antenna dire(AntennaType::kDirectional);
  EXPECT_GT(dire.Gain(0.0), 1.0);
  EXPECT_GT(dire.Gain(0.0), dire.Gain(DegToRad(30.0)));
  EXPECT_GT(dire.Gain(DegToRad(30.0)), dire.Gain(DegToRad(60.0)));
}

TEST(AntennaTest, DirectionalHalfPowerAtHalfBeamwidth) {
  const Antenna dire(AntennaType::kDirectional, /*beamwidth_deg=*/40.0,
                     /*peak_gain=*/4.0);
  EXPECT_NEAR(dire.Gain(DegToRad(20.0)), 2.0, 1e-9);
}

TEST(AntennaTest, DirectionalHasSidelobeFloor) {
  const Antenna dire(AntennaType::kDirectional, 40.0, 4.0, 0.05);
  EXPECT_DOUBLE_EQ(dire.Gain(DegToRad(180.0)), 0.05);
}

TEST(AntennaTest, DirectionalSuppressesDiffuseScatter) {
  const Antenna dire(AntennaType::kDirectional);
  // Mean gain over all arrival directions is far below boresight gain and
  // below unity: directional antennas attenuate multipath.
  EXPECT_LT(dire.DiffuseGain(), 1.0);
  EXPECT_LT(dire.DiffuseGain(), dire.Gain(0.0));
  EXPECT_GT(dire.DiffuseGain(), 0.0);
}

TEST(AntennaTest, NamesMatchPaperLabels) {
  EXPECT_EQ(AntennaName(AntennaType::kOmni), "Omni");
  EXPECT_EQ(AntennaName(AntennaType::kDirectional), "Dire");
}

}  // namespace
}  // namespace metaai::rf
