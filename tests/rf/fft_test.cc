#include "rf/fft.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace metaai::rf {
namespace {

TEST(FftTest, IsPowerOfTwoClassifier) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_FALSE(IsPowerOfTwo(1000));
}

TEST(FftTest, ImpulseTransformsToFlatSpectrum) {
  Signal x(8, Complex{0.0, 0.0});
  x[0] = Complex{1.0, 0.0};
  Fft(x);
  for (const Complex& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftTest, SingleToneLandsInOneBin) {
  constexpr std::size_t kN = 16;
  constexpr std::size_t kBin = 3;
  Signal x(kN);
  for (std::size_t n = 0; n < kN; ++n) {
    const double phase = 2.0 * M_PI * kBin * n / kN;
    x[n] = Complex{std::cos(phase), std::sin(phase)};
  }
  Fft(x);
  for (std::size_t k = 0; k < kN; ++k) {
    if (k == kBin) {
      EXPECT_NEAR(std::abs(x[k]), static_cast<double>(kN), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9);
    }
  }
}

TEST(FftTest, RoundTripRecoversInput) {
  Rng rng(7);
  for (const std::size_t n : {2u, 8u, 64u, 256u}) {
    Signal x(n);
    for (Complex& v : x) v = rng.ComplexNormal(1.0);
    Signal original = x;
    Fft(x);
    Ifft(x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(x[i] - original[i]), 0.0, 1e-9);
    }
  }
}

TEST(FftTest, ParsevalHolds) {
  Rng rng(11);
  constexpr std::size_t kN = 128;
  Signal x(kN);
  double time_energy = 0.0;
  for (Complex& v : x) {
    v = rng.ComplexNormal(1.0);
    time_energy += std::norm(v);
  }
  Fft(x);
  double freq_energy = 0.0;
  for (const Complex& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / kN, time_energy, 1e-6);
}

TEST(FftTest, LinearityHolds) {
  Rng rng(13);
  constexpr std::size_t kN = 32;
  Signal a(kN);
  Signal b(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    a[i] = rng.ComplexNormal(1.0);
    b[i] = rng.ComplexNormal(1.0);
  }
  Signal sum(kN);
  for (std::size_t i = 0; i < kN; ++i) sum[i] = a[i] + 2.0 * b[i];
  Signal fa = a;
  Signal fb = b;
  Signal fsum = sum;
  Fft(fa);
  Fft(fb);
  Fft(fsum);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(std::abs(fsum[i] - (fa[i] + 2.0 * fb[i])), 0.0, 1e-9);
  }
}

// Regression for the twiddle recurrence w *= step: one rounding error per
// butterfly accumulated across a stage cost ~2 digits at n = 4096
// (~7e-12 max error vs the reference, ~1.4e-13 round trip). With
// per-stage std::polar twiddles the error stays at the few-ulp level;
// these bounds fail on the recurrence implementation.
TEST(FftTest, MatchesNaiveDftAtLargeLength) {
  constexpr std::size_t kN = 4096;
  Rng rng(7);
  Signal x(kN);
  for (Complex& v : x) v = Complex{rng.Uniform(-1.0, 1.0),
                                   rng.Uniform(-1.0, 1.0)};
  // Naive DFT reference, accumulated in long double so the reference's
  // own rounding is far below the bound under test.
  Signal reference(kN);
  for (std::size_t k = 0; k < kN; ++k) {
    std::complex<long double> acc{0.0L, 0.0L};
    for (std::size_t n = 0; n < kN; ++n) {
      const long double angle = -2.0L * 3.14159265358979323846264338328L *
                                static_cast<long double>(k) *
                                static_cast<long double>(n) /
                                static_cast<long double>(kN);
      acc += std::complex<long double>(x[n].real(), x[n].imag()) *
             std::complex<long double>(std::cos(angle), std::sin(angle));
    }
    reference[k] = Complex{static_cast<double>(acc.real()),
                           static_cast<double>(acc.imag())};
  }
  Signal y = x;
  Fft(y);
  double max_forward_error = 0.0;
  for (std::size_t k = 0; k < kN; ++k) {
    max_forward_error = std::max(max_forward_error,
                                 std::abs(y[k] - reference[k]));
  }
  EXPECT_LT(max_forward_error, 1e-12);

  Ifft(y);
  double max_round_trip_error = 0.0;
  for (std::size_t k = 0; k < kN; ++k) {
    max_round_trip_error = std::max(max_round_trip_error,
                                    std::abs(y[k] - x[k]));
  }
  EXPECT_LT(max_round_trip_error, 1e-14);
}

TEST(FftTest, LengthOneIsIdentity) {
  Signal x{Complex{0.5, -0.25}};
  Fft(x);
  EXPECT_EQ(x[0], (Complex{0.5, -0.25}));
  Ifft(x);
  EXPECT_EQ(x[0], (Complex{0.5, -0.25}));
}

TEST(FftTest, NonPowerOfTwoThrows) {
  Signal x(3);
  EXPECT_THROW(Fft(x), CheckError);
  EXPECT_THROW(Ifft(x), CheckError);
}

}  // namespace
}  // namespace metaai::rf
