#include "rf/modulation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "rf/signal.h"

namespace metaai::rf {
namespace {

class ModulationRoundTrip : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModulationRoundTrip, BitsSurviveModDemod) {
  const Modulation scheme = GetParam();
  const int bps = BitsPerSymbol(scheme);
  Rng rng(101);
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(bps) * 64);
  for (auto& b : bits) b = static_cast<std::uint8_t>(rng.UniformInt(0, 1));
  const Signal symbols = ModulateBits(bits, scheme);
  EXPECT_EQ(symbols.size(), bits.size() / static_cast<std::size_t>(bps));
  const auto recovered = DemodulateSymbols(symbols, scheme);
  EXPECT_EQ(recovered, bits);
}

TEST_P(ModulationRoundTrip, ConstellationHasUnitAveragePower) {
  const Modulation scheme = GetParam();
  const unsigned levels = 1u << BitsPerSymbol(scheme);
  double power = 0.0;
  for (unsigned level = 0; level < levels; ++level) {
    power += std::norm(SymbolForLevel(level, scheme));
  }
  EXPECT_NEAR(power / levels, 1.0, 1e-12);
}

TEST_P(ModulationRoundTrip, LevelRoundTripsThroughSymbol) {
  const Modulation scheme = GetParam();
  const unsigned levels = 1u << BitsPerSymbol(scheme);
  for (unsigned level = 0; level < levels; ++level) {
    EXPECT_EQ(LevelForSymbol(SymbolForLevel(level, scheme), scheme), level);
  }
}

TEST_P(ModulationRoundTrip, SymbolsAreDistinct) {
  const Modulation scheme = GetParam();
  const unsigned levels = 1u << BitsPerSymbol(scheme);
  for (unsigned a = 0; a < levels; ++a) {
    for (unsigned b = a + 1; b < levels; ++b) {
      EXPECT_GT(std::abs(SymbolForLevel(a, scheme) -
                         SymbolForLevel(b, scheme)),
                1e-6);
    }
  }
}

TEST_P(ModulationRoundTrip, DemodToleratesSmallNoise) {
  const Modulation scheme = GetParam();
  const unsigned levels = 1u << BitsPerSymbol(scheme);
  // Perturb by much less than half the minimum constellation distance.
  double min_dist = 1e9;
  for (unsigned a = 0; a < levels; ++a) {
    for (unsigned b = a + 1; b < levels; ++b) {
      min_dist = std::min(min_dist, std::abs(SymbolForLevel(a, scheme) -
                                             SymbolForLevel(b, scheme)));
    }
  }
  for (unsigned level = 0; level < levels; ++level) {
    const Complex noisy = SymbolForLevel(level, scheme) +
                          Complex{min_dist / 4.0, -min_dist / 4.0};
    EXPECT_EQ(LevelForSymbol(noisy, scheme), level);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ModulationRoundTrip,
                         ::testing::Values(Modulation::kBpsk,
                                           Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64,
                                           Modulation::kQam256),
                         [](const auto& info) {
                           std::string name = ModulationName(info.param);
                           std::erase(name, '-');
                           return name;
                         });

TEST(ModulationTest, BitsPerSymbolValues) {
  EXPECT_EQ(BitsPerSymbol(Modulation::kBpsk), 1);
  EXPECT_EQ(BitsPerSymbol(Modulation::kQpsk), 2);
  EXPECT_EQ(BitsPerSymbol(Modulation::kQam16), 4);
  EXPECT_EQ(BitsPerSymbol(Modulation::kQam64), 6);
  EXPECT_EQ(BitsPerSymbol(Modulation::kQam256), 8);
}

TEST(ModulationTest, NamesAreHumanReadable) {
  EXPECT_EQ(ModulationName(Modulation::kBpsk), "BPSK");
  EXPECT_EQ(ModulationName(Modulation::kQam256), "256-QAM");
}

TEST(ModulationTest, AllModulationsListsFiveSchemes) {
  EXPECT_EQ(AllModulations().size(), 5u);
}

TEST(ModulationTest, BpskIsAntipodal) {
  const Complex zero = SymbolForLevel(0, Modulation::kBpsk);
  const Complex one = SymbolForLevel(1, Modulation::kBpsk);
  EXPECT_NEAR(std::abs(zero + one), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(zero), 1.0, 1e-12);
}

TEST(ModulationTest, GrayMappingAdjacentLevelsDifferByOneBit) {
  // For 16-QAM, walking one step along the I axis must flip exactly one
  // bit — the defining property of Gray mapping.
  const Modulation scheme = Modulation::kQam16;
  // Collect symbols with identical Q and increasing I.
  std::vector<unsigned> levels_on_axis;
  for (unsigned level = 0; level < 16; ++level) {
    const Complex s = SymbolForLevel(level, scheme);
    if (std::abs(s.imag() - SymbolForLevel(0, scheme).imag()) < 1e-9) {
      levels_on_axis.push_back(level);
    }
  }
  ASSERT_EQ(levels_on_axis.size(), 4u);
  // Sort by I coordinate.
  std::sort(levels_on_axis.begin(), levels_on_axis.end(),
            [&](unsigned a, unsigned b) {
              return SymbolForLevel(a, scheme).real() <
                     SymbolForLevel(b, scheme).real();
            });
  for (std::size_t i = 0; i + 1 < levels_on_axis.size(); ++i) {
    const unsigned diff = levels_on_axis[i] ^ levels_on_axis[i + 1];
    EXPECT_EQ(__builtin_popcount(diff), 1);
  }
}

TEST(ModulationTest, ModulateRejectsPartialSymbols) {
  const std::vector<std::uint8_t> bits{1, 0, 1};
  EXPECT_THROW(ModulateBits(bits, Modulation::kQpsk), CheckError);
}

TEST(ModulationTest, ModulateRejectsNonBinaryInput) {
  const std::vector<std::uint8_t> bits{2, 0};
  EXPECT_THROW(ModulateBits(bits, Modulation::kQpsk), CheckError);
}

TEST(ModulationTest, SymbolForLevelRejectsOutOfRange) {
  EXPECT_THROW(SymbolForLevel(2, Modulation::kBpsk), CheckError);
  EXPECT_THROW(SymbolForLevel(256, Modulation::kQam256), CheckError);
}

}  // namespace
}  // namespace metaai::rf
