#include "rf/geometry.h"

#include <gtest/gtest.h>

#include <cmath>

namespace metaai::rf {
namespace {

TEST(GeometryTest, WavelengthAndWaveNumber) {
  EXPECT_NEAR(Wavelength(5.25e9), 0.0571, 1e-4);
  EXPECT_NEAR(Wavelength(2.4e9), 0.1249, 1e-4);
  EXPECT_NEAR(WaveNumber(5.25e9), 2.0 * M_PI / Wavelength(5.25e9), 1e-9);
}

TEST(GeometryTest, DegreesRadiansRoundTrip) {
  for (const double deg : {-180.0, -30.0, 0.0, 45.0, 90.0, 360.0}) {
    EXPECT_NEAR(RadToDeg(DegToRad(deg)), deg, 1e-12);
  }
  EXPECT_NEAR(DegToRad(180.0), M_PI, 1e-12);
}

TEST(GeometryTest, Vec3Arithmetic) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{-1.0, 0.5, 2.0};
  const Vec3 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 0.0);
  EXPECT_DOUBLE_EQ(sum.y, 2.5);
  EXPECT_DOUBLE_EQ(sum.z, 5.0);
  const Vec3 diff = a - b;
  EXPECT_DOUBLE_EQ(diff.x, 2.0);
  const Vec3 scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.z, 6.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), -1.0 + 1.0 + 6.0);
}

TEST(GeometryTest, NormAndNormalized) {
  const Vec3 v{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  const Vec3 unit = v.Normalized();
  EXPECT_NEAR(unit.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(unit.x, 0.6, 1e-12);
  // Zero vector normalizes to zero (no NaN).
  const Vec3 zero{};
  const Vec3 n = zero.Normalized();
  EXPECT_DOUBLE_EQ(n.Norm(), 0.0);
}

TEST(GeometryTest, DistanceIsSymmetricAndPositive) {
  const Vec3 a{1.0, 1.0, 0.0};
  const Vec3 b{4.0, 5.0, 0.0};
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Distance(b, a), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(GeometryTest, AngleBetweenKnownVectors) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_NEAR(AngleBetween(x, y), M_PI / 2.0, 1e-12);
  EXPECT_NEAR(AngleBetween(x, x), 0.0, 1e-7);
  EXPECT_NEAR(AngleBetween(x, x * -1.0), M_PI, 1e-7);
  // Degenerate zero vector -> 0 by convention.
  EXPECT_DOUBLE_EQ(AngleBetween(x, Vec3{}), 0.0);
}

TEST(GeometryTest, PolarPlacesPointsOnTheCircle) {
  const Vec3 p = Polar(2.0, DegToRad(30.0), 1.1);
  EXPECT_NEAR(p.x, 2.0 * std::cos(DegToRad(30.0)), 1e-12);
  EXPECT_NEAR(p.y, 2.0 * std::sin(DegToRad(30.0)), 1e-12);
  EXPECT_DOUBLE_EQ(p.z, 1.1);
  EXPECT_NEAR(Polar(3.0, 0.0).x, 3.0, 1e-12);
}

}  // namespace
}  // namespace metaai::rf
