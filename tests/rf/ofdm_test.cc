#include "rf/ofdm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace metaai::rf {
namespace {

OfdmConfig SmallConfig() {
  return {.num_subcarriers = 16,
          .cyclic_prefix_len = 4,
          .subcarrier_spacing_hz = 40e3};
}

TEST(OfdmTest, SymbolLengthIncludesCyclicPrefix) {
  Ofdm ofdm(SmallConfig());
  EXPECT_EQ(ofdm.SymbolLength(), 20u);
}

TEST(OfdmTest, RoundTripRecoversSubcarrierSymbols) {
  Ofdm ofdm(SmallConfig());
  Rng rng(5);
  Signal subcarriers(16);
  for (Complex& s : subcarriers) s = rng.ComplexNormal(1.0);
  const Signal time = ofdm.Modulate(subcarriers);
  const Signal recovered = ofdm.Demodulate(time);
  ASSERT_EQ(recovered.size(), subcarriers.size());
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_NEAR(std::abs(recovered[k] - subcarriers[k]), 0.0, 1e-9);
  }
}

TEST(OfdmTest, CyclicPrefixIsTailCopy) {
  Ofdm ofdm(SmallConfig());
  Rng rng(6);
  Signal subcarriers(16);
  for (Complex& s : subcarriers) s = rng.ComplexNormal(1.0);
  const Signal time = ofdm.Modulate(subcarriers);
  // CP samples equal the last cp_len samples of the body.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(time[i] - time[16 + i]), 0.0, 1e-12);
  }
}

TEST(OfdmTest, CyclicPrefixAbsorbsChannelDelay) {
  // A pure delay by fewer samples than the CP becomes a per-subcarrier
  // phase rotation with no inter-symbol interference: |H_k| == 1.
  Ofdm ofdm(SmallConfig());
  Rng rng(7);
  Signal subcarriers(16);
  for (Complex& s : subcarriers) s = rng.ComplexNormal(1.0);
  const Signal time = ofdm.Modulate(subcarriers);
  constexpr std::size_t kDelay = 3;
  // Received window starts kDelay samples late within the CP.
  Signal delayed(ofdm.SymbolLength());
  for (std::size_t i = 0; i < delayed.size(); ++i) {
    // Cyclic continuation: the "previous symbol" region is never read
    // because the window still starts inside the CP.
    delayed[i] = time[(i + ofdm.SymbolLength() - kDelay) %
                      ofdm.SymbolLength()];
  }
  const Signal recovered = ofdm.Demodulate(delayed);
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_NEAR(std::abs(recovered[k]), std::abs(subcarriers[k]), 1e-9);
  }
}

TEST(OfdmTest, SubcarrierOffsetsAreCentred) {
  Ofdm ofdm(SmallConfig());
  EXPECT_DOUBLE_EQ(ofdm.SubcarrierOffsetHz(0), 0.0);
  EXPECT_DOUBLE_EQ(ofdm.SubcarrierOffsetHz(1), 40e3);
  EXPECT_DOUBLE_EQ(ofdm.SubcarrierOffsetHz(8), -8 * 40e3);
  EXPECT_DOUBLE_EQ(ofdm.SubcarrierOffsetHz(15), -40e3);
}

TEST(OfdmTest, ValidatesConfiguration) {
  EXPECT_THROW(Ofdm({.num_subcarriers = 12, .cyclic_prefix_len = 2}),
               CheckError);
  EXPECT_THROW(Ofdm({.num_subcarriers = 16, .cyclic_prefix_len = 16}),
               CheckError);
}

TEST(OfdmTest, ValidatesBufferSizes) {
  Ofdm ofdm(SmallConfig());
  EXPECT_THROW(ofdm.Modulate(Signal(8)), CheckError);
  EXPECT_THROW(ofdm.Demodulate(Signal(16)), CheckError);
  EXPECT_THROW(ofdm.SubcarrierOffsetHz(16), CheckError);
}

}  // namespace
}  // namespace metaai::rf
