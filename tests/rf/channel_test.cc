#include "rf/channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "rf/geometry.h"

namespace metaai::rf {
namespace {

TEST(ChannelTest, FriisAmplitudeFallsWithDistance) {
  const double lambda = Wavelength(5.25e9);
  const double a1 = FriisAmplitude(1.0, lambda);
  const double a2 = FriisAmplitude(2.0, lambda);
  EXPECT_NEAR(a1 / a2, 2.0, 1e-12);
  EXPECT_NEAR(a1, lambda / (4.0 * M_PI), 1e-15);
}

TEST(ChannelTest, ProfilesAreOrderedByRichness) {
  // Corridor is the cleanest environment, laboratory the richest.
  EXPECT_GT(CorridorProfile().k_factor_db, OfficeProfile().k_factor_db);
  EXPECT_GT(OfficeProfile().k_factor_db, LaboratoryProfile().k_factor_db);
  EXPECT_LT(CorridorProfile().num_scatter_paths,
            LaboratoryProfile().num_scatter_paths);
}

TEST(ChannelTest, DirectTapMatchesRequestedAmplitude) {
  Rng rng(3);
  MultipathChannel ch(CorridorProfile(), 0.01, 1.0, rng);
  ASSERT_FALSE(ch.taps().empty());
  EXPECT_NEAR(std::abs(ch.taps()[0].gain), 0.01, 1e-15);
  EXPECT_DOUBLE_EQ(ch.taps()[0].delay_s, 0.0);
}

TEST(ChannelTest, ScatterPowerMatchesKFactorOnAverage) {
  // Average scattered power over many realizations should be
  // direct_power / 10^(K/10).
  const MultipathProfile profile = OfficeProfile();
  const double direct = 0.02;
  Rng rng(5);
  std::vector<double> ratios;
  for (int trial = 0; trial < 400; ++trial) {
    MultipathChannel ch(profile, direct, 1.0, rng);
    double scatter_power = 0.0;
    for (std::size_t i = 1; i < ch.taps().size(); ++i) {
      scatter_power += std::norm(ch.taps()[i].gain);
    }
    ratios.push_back(scatter_power / (direct * direct));
  }
  EXPECT_NEAR(Mean(ratios), DbToLinear(-profile.k_factor_db), 0.02);
}

TEST(ChannelTest, DiffuseGainScalesScatterOnly) {
  Rng rng_a(7);
  Rng rng_b(7);
  MultipathChannel full(OfficeProfile(), 0.01, 1.0, rng_a);
  MultipathChannel suppressed(OfficeProfile(), 0.01, 0.25, rng_b);
  // Same RNG stream, so taps differ only by the sqrt(0.25) power scale.
  ASSERT_EQ(full.taps().size(), suppressed.taps().size());
  EXPECT_NEAR(std::abs(suppressed.taps()[0].gain),
              std::abs(full.taps()[0].gain), 1e-15);
  for (std::size_t i = 1; i < full.taps().size(); ++i) {
    EXPECT_NEAR(std::abs(suppressed.taps()[i].gain) /
                    std::abs(full.taps()[i].gain),
                0.5, 1e-9);
  }
}

TEST(ChannelTest, NlosChannelHasNoDirectPath) {
  Rng rng(9);
  MultipathChannel ch(LaboratoryProfile(), 0.0, 1.0, rng,
                      /*nlos_reference_amplitude=*/0.01);
  EXPECT_DOUBLE_EQ(std::abs(ch.taps()[0].gain), 0.0);
  double scatter_power = 0.0;
  for (std::size_t i = 1; i < ch.taps().size(); ++i) {
    scatter_power += std::norm(ch.taps()[i].gain);
  }
  EXPECT_GT(scatter_power, 0.0);
}

TEST(ChannelTest, FlatResponseIsSumOfTapGains) {
  Rng rng(11);
  MultipathChannel ch(CorridorProfile(), 0.01, 1.0, rng);
  Complex sum{0.0, 0.0};
  for (const PathTap& tap : ch.taps()) sum += tap.gain;
  EXPECT_NEAR(std::abs(ch.Response() - sum), 0.0, 1e-15);
}

TEST(ChannelTest, FrequencySelectivityRotatesDelayedTaps) {
  Rng rng(13);
  MultipathChannel ch(LaboratoryProfile(), 0.01, 1.0, rng);
  // Responses at different frequency offsets differ when delayed taps
  // exist (frequency-selective fading).
  const Complex h0 = ch.Response(0.0);
  const Complex h1 = ch.Response(5e6);
  EXPECT_GT(std::abs(h0 - h1), 1e-9);
  // But the direct path is unaffected: scatter-only responses rotate.
  const Complex s0 = ch.ScatterResponse(0.0);
  EXPECT_NEAR(std::abs((h0 - s0) - ch.taps()[0].gain), 0.0, 1e-12);
}

TEST(ChannelTest, DynamicTapAffectsScatterResponse) {
  Rng rng(17);
  MultipathChannel ch(CorridorProfile(), 0.01, 1.0, rng);
  const Complex before = ch.ScatterResponse();
  ch.SetDynamicTap({Complex{0.005, 0.0}, 50e-9});
  const Complex during = ch.ScatterResponse();
  EXPECT_NEAR(std::abs(during - before - Complex{0.005, 0.0}), 0.0, 1e-12);
  ch.ClearDynamicTap();
  EXPECT_NEAR(std::abs(ch.ScatterResponse() - before), 0.0, 1e-15);
}

TEST(ChannelTest, MaxExcessDelayCoversAllTaps) {
  Rng rng(19);
  MultipathChannel ch(OfficeProfile(), 0.01, 1.0, rng);
  double max_delay = 0.0;
  for (const PathTap& tap : ch.taps()) {
    max_delay = std::max(max_delay, tap.delay_s);
  }
  EXPECT_DOUBLE_EQ(ch.MaxExcessDelay(), max_delay);
  ch.SetDynamicTap({Complex{0.001, 0.0}, max_delay + 1e-6});
  EXPECT_DOUBLE_EQ(ch.MaxExcessDelay(), max_delay + 1e-6);
}

}  // namespace
}  // namespace metaai::rf
