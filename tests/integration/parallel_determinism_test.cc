// Determinism under parallelism: the same seed must produce identical
// mapped schedules, deployment accuracy and telemetry exports for any
// worker count — thread count 1 (the exact legacy serial path), 2 and 8
// are exercised explicitly, standing in for METAAI_THREADS ∈ {1, 2, 8}
// (SetDefaultThreadCount and the env var feed the same resolution).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "core/metaai.h"
#include "data/datasets.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "rf/geometry.h"

namespace metaai {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

sim::OtaLinkConfig SmallLink() {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  config.channel_seed = 77;
  return config;
}

core::TrainedModel SmallModel(const data::Dataset& ds) {
  Rng rng(5);
  core::TrainingOptions options;
  options.epochs = 3;
  return core::TrainModel(ds.train, options, rng);
}

void ExpectSchedulesEqual(const core::MappedSchedules& a,
                          const core::MappedSchedules& b, int threads) {
  EXPECT_EQ(a.scale, b.scale) << "threads=" << threads;
  EXPECT_EQ(a.mean_relative_residual, b.mean_relative_residual)
      << "threads=" << threads;
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  EXPECT_EQ(a.rounds, b.rounds) << "threads=" << threads;
  EXPECT_EQ(a.outputs, b.outputs) << "threads=" << threads;
}

TEST(ParallelDeterminismTest, SequentialMappingIsThreadCountInvariant) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 10, .test_per_class = 2});
  const auto model = SmallModel(ds);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLink link(surface, SmallLink());

  auto map = [&](int threads) {
    const par::ScopedThreadCount scoped(threads);
    return core::MapWeights(model.network.weights(), link,
                            {.scheme = core::MappingScheme::kSequential});
  };
  const core::MappedSchedules serial = map(1);
  for (const int threads : kThreadCounts) {
    ExpectSchedulesEqual(map(threads), serial, threads);
  }
}

TEST(ParallelDeterminismTest, ParallelMappingIsThreadCountInvariant) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 10, .test_per_class = 2});
  const auto model = SmallModel(ds);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  auto map = [&](int threads) {
    const par::ScopedThreadCount scoped(threads);
    core::DeploymentOptions options;
    options.mode = core::ParallelismMode::kAntenna;
    options.parallel_width = 4;
    sim::OtaLinkConfig config = SmallLink();
    config.observations =
        core::BuildObservations(config, model.num_classes(), options);
    const sim::OtaLink link(surface, config);
    core::MappingOptions mapping = options.mapping;
    mapping.scheme = core::MappingScheme::kParallel;
    return core::MapWeights(model.network.weights(), link, mapping);
  };
  const core::MappedSchedules serial = map(1);
  for (const int threads : kThreadCounts) {
    ExpectSchedulesEqual(map(threads), serial, threads);
  }
}

TEST(ParallelDeterminismTest, DeploymentAccuracyIsThreadCountInvariant) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 10, .test_per_class = 3});
  const auto model = SmallModel(ds);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  auto evaluate = [&](int threads) {
    const par::ScopedThreadCount scoped(threads);
    const core::Deployment deployment(model, surface, SmallLink());
    sim::SyncModelConfig sync_config;
    sync_config.latency_scale = 0.3;
    const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
    Rng rng(41);
    const double accuracy =
        deployment.EvaluateAccuracy(ds.test, sync, rng, 12);
    Rng offset_rng(43);
    const double at_offset = deployment.EvaluateAccuracyAtOffset(
        ds.test, 1.5, offset_rng, 12);
    return std::make_pair(accuracy, at_offset);
  };
  const auto serial = evaluate(1);
  for (const int threads : kThreadCounts) {
    EXPECT_EQ(evaluate(threads), serial) << "threads=" << threads;
  }
}

#if METAAI_OBS_ENABLED

TEST(ParallelDeterminismTest, TelemetryExportIsThreadCountInvariant) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 10, .test_per_class = 3});
  const auto model = SmallModel(ds);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  // Full instrumented pipeline (solver counters/histograms/probes during
  // deployment construction, link/sync/ota instruments during the batch
  // evaluation), exported as metrics JSON + probes JSONL.
  auto run = [&](int threads) {
    const par::ScopedThreadCount scoped(threads);
    obs::Registry registry;
    obs::ProbeSink sink;
    const obs::ScopedRegistry scoped_registry(&registry);
    const obs::ScopedProbeSink scoped_sink(&sink);
    const core::Deployment deployment(model, surface, SmallLink());
    sim::SyncModelConfig sync_config;
    sync_config.latency_scale = 0.3;
    const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
    Rng rng(41);
    deployment.EvaluateAccuracy(ds.test, sync, rng, 8);
    return std::make_pair(obs::ToJson(registry.Snapshot()),
                          obs::ToProbesJsonl(sink));
  };
  const auto serial = run(1);
  for (const int threads : kThreadCounts) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.first, serial.first) << "threads=" << threads;
    EXPECT_EQ(parallel.second, serial.second) << "threads=" << threads;
  }
}

#endif  // METAAI_OBS_ENABLED

}  // namespace
}  // namespace metaai
