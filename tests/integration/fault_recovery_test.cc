// Hardware-fault graceful degradation, end to end: inject faults into a
// deployed link, detect them over the air with toggle probing, re-solve
// the weight mapping over the healthy aperture, and verify the recovered
// accuracy. Exercises metaai::fault + the mapper's atom_mask /
// steering_override / fault_offsets plumbing the way the CLI and the
// ablation bench drive it.
#include <gtest/gtest.h>

#include <memory>

#include "core/metaai.h"
#include "data/datasets.h"
#include "fault/injector.h"
#include "rf/geometry.h"

namespace metaai {
namespace {

sim::OtaLinkConfig DefaultLink(std::uint64_t seed = 1) {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  config.channel_seed = seed;
  return config;
}

class FaultRecoveryTest : public ::testing::Test {
 protected:
  // One shared trained model for the whole suite: training dominates the
  // runtime and every test deploys the same network.
  static void SetUpTestSuite() {
    dataset_ = new data::Dataset(
        data::MakeMnistLike({.train_per_class = 50, .test_per_class = 10}));
    Rng rng(1);
    core::TrainingOptions options;
    options.epochs = 25;
    model_ = new core::TrainedModel(
        core::TrainModel(dataset_->train, options, rng));
  }
  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static core::TrainedModel* model_;
  mts::Metasurface surface_{mts::MetasurfaceSpec{}};
};

data::Dataset* FaultRecoveryTest::dataset_ = nullptr;
core::TrainedModel* FaultRecoveryTest::model_ = nullptr;

TEST_F(FaultRecoveryTest, DiagnosisFindsExactlyTheStuckAtoms) {
  auto injector = std::make_shared<const fault::FaultInjector>(
      fault::TryParseFaultSpec("stuck=0.1,seed=7").value(), surface_.num_atoms());
  sim::OtaLinkConfig config = DefaultLink(2);
  config.budget.noise_floor_dbm = -120.0;  // clean probes
  config.faults = injector;
  const core::Deployment deployment(*model_, surface_, config);

  Rng rng(3);
  const core::FaultDiagnosis diagnosis =
      core::DiagnoseDeployment(deployment, rng);
  EXPECT_EQ(diagnosis.healthy_mask, injector->HealthyMask());
  EXPECT_EQ(diagnosis.num_stuck, injector->num_stuck());
  EXPECT_LT(diagnosis.wdd_ratio, 1.0);
  EXPECT_GT(diagnosis.wdd_ratio, 0.0);
  EXPECT_EQ(diagnosis.probe_transmissions, surface_.num_atoms() + 1);
  // Under the cancellation scheme the stuck atoms never flip, so they
  // cancel like the environment and the static offsets are noise-level.
  const auto steering = deployment.link().SteeringVector(0);
  double aperture = 0.0;
  for (const auto& s : steering) aperture += std::abs(s);
  ASSERT_EQ(diagnosis.offsets.size(), 1u);
  EXPECT_LT(std::abs(diagnosis.offsets[0]), 0.01 * aperture);
}

TEST_F(FaultRecoveryTest, DiagnosisMeasuresDriftedSteering) {
  auto injector = std::make_shared<const fault::FaultInjector>(
      fault::TryParseFaultSpec("drift=0.013,age=60,seed=11").value(),
      surface_.num_atoms());
  sim::OtaLinkConfig config = DefaultLink(4);
  config.budget.noise_floor_dbm = -120.0;
  config.faults = injector;
  const core::Deployment deployment(*model_, surface_, config);

  Rng rng(5);
  const core::FaultDiagnosis diagnosis =
      core::DiagnoseDeployment(deployment, rng);
  EXPECT_EQ(diagnosis.num_stuck, 0u);
  // The measured steering must track the drifted hardware, not the
  // idealized vector the mapper would otherwise solve against.
  const auto ideal = deployment.link().SteeringVector(0);
  const auto& drift = injector->drift_phasors();
  double err_vs_drifted = 0.0;
  double err_vs_ideal = 0.0;
  for (std::size_t m = 0; m < ideal.size(); ++m) {
    err_vs_drifted +=
        std::abs(diagnosis.measured_steering(0, m) - ideal[m] * drift[m]);
    err_vs_ideal += std::abs(diagnosis.measured_steering(0, m) - ideal[m]);
  }
  EXPECT_LT(err_vs_drifted, 0.1 * err_vs_ideal);
}

TEST_F(FaultRecoveryTest, ResolveRecoversMostOfTheLostAccuracy) {
  // ISSUE acceptance: at <= 10% stuck atoms the fault-aware re-solve
  // recovers at least half of the accuracy lost to the faults.
  sim::OtaLinkConfig healthy_config = DefaultLink(6);
  const core::Deployment healthy(*model_, surface_, healthy_config);
  Rng ref_rng(7);
  const double reference =
      healthy.EvaluateAccuracyAtOffset(dataset_->test, 0.0, ref_rng, 80);

  auto injector = std::make_shared<const fault::FaultInjector>(
      fault::TryParseFaultSpec("stuck=0.1,drift=0.04,age=60,seed=13").value(),
      surface_.num_atoms());
  sim::OtaLinkConfig faulty_config = healthy_config;
  faulty_config.faults = injector;
  const core::Deployment degraded(*model_, surface_, faulty_config);
  Rng deg_rng(7);
  const double degraded_acc =
      degraded.EvaluateAccuracyAtOffset(dataset_->test, 0.0, deg_rng, 80);

  Rng diag_rng(9);
  const core::FaultDiagnosis diagnosis = core::DiagnoseDeployment(
      degraded, diag_rng, {.probe_symbols = 128});
  const core::Deployment recovered = core::RecoverFromFaults(
      *model_, surface_, faulty_config, {}, diagnosis);
  Rng rec_rng(7);
  const double recovered_acc =
      recovered.EvaluateAccuracyAtOffset(dataset_->test, 0.0, rec_rng, 80);

  EXPECT_LT(degraded_acc, reference);
  EXPECT_GE(recovered_acc, degraded_acc + 0.5 * (reference - degraded_acc));
}

TEST_F(FaultRecoveryTest, WatchdogTripsDiagnosesAndRecovers) {
  sim::OtaLinkConfig healthy_config = DefaultLink(8);
  const core::Deployment healthy(*model_, surface_, healthy_config);
  Rng ref_rng(15);
  const double reference =
      healthy.EvaluateAccuracyAtOffset(dataset_->test, 0.0, ref_rng, 64);

  auto injector = std::make_shared<const fault::FaultInjector>(
      fault::TryParseFaultSpec("stuck=0.1,drift=0.04,age=60,seed=17").value(),
      surface_.num_atoms());
  sim::OtaLinkConfig faulty_config = healthy_config;
  faulty_config.faults = injector;
  const core::Deployment degraded(*model_, surface_, faulty_config);

  Rng rng(19);
  core::FaultWatchdogConfig watchdog_config;
  watchdog_config.diagnosis.probe_symbols = 128;
  const core::FaultWatchdogResult result = core::RunFaultWatchdog(
      *model_, surface_, faulty_config, {}, degraded, dataset_->test, reference,
      rng, watchdog_config);
  ASSERT_TRUE(result.report.tripped);
  ASSERT_TRUE(result.recovered.has_value());
  EXPECT_EQ(result.report.num_stuck_detected, injector->num_stuck());
  EXPECT_GT(result.report.recovered_accuracy,
            result.report.observed_accuracy);

  // A healthy deployment must not trip.
  Rng quiet_rng(21);
  const core::FaultWatchdogResult quiet = core::RunFaultWatchdog(
      *model_, surface_, healthy_config, {}, healthy, dataset_->test, reference,
      quiet_rng);
  EXPECT_FALSE(quiet.report.tripped);
  EXPECT_FALSE(quiet.recovered.has_value());
}

TEST_F(FaultRecoveryTest, FaultPipelineIsSeedStable) {
  // The whole diagnose -> re-solve pipeline is a pure function of its
  // seeds: two identical runs agree bitwise.
  auto injector = std::make_shared<const fault::FaultInjector>(
      fault::TryParseFaultSpec("stuck=0.05,chain=1e-4,seed=23").value(),
      surface_.num_atoms());
  sim::OtaLinkConfig config = DefaultLink(10);
  config.faults = injector;
  const core::Deployment deployment(*model_, surface_, config);

  auto run = [&] {
    Rng rng(25);
    const core::FaultDiagnosis diagnosis =
        core::DiagnoseDeployment(deployment, rng);
    const core::Deployment recovered =
        core::RecoverFromFaults(*model_, surface_, config, {}, diagnosis);
    Rng eval_rng(27);
    return std::pair{diagnosis.healthy_mask,
                     recovered.EvaluateAccuracyAtOffset(dataset_->test, 0.0,
                                                        eval_rng, 40)};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace metaai
