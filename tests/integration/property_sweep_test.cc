// Parameterized property sweeps over the experiment space: geometry,
// modulation, and parallelism grids that every deployment must survive.
#include <gtest/gtest.h>

#include <tuple>

#include "core/metaai.h"
#include "data/datasets.h"
#include "rf/geometry.h"

namespace metaai {
namespace {

// Shared small task + model (expensive; built once).
struct SharedSetup {
  data::Dataset dataset =
      data::MakeMnistLike({.train_per_class = 60, .test_per_class = 10});
  core::TrainedModel model = [this] {
    Rng rng(55);
    core::TrainingOptions options;
    options.epochs = 30;
    return core::TrainModel(dataset.train, options, rng);
  }();
};

const SharedSetup& Shared() {
  static const SharedSetup setup;
  return setup;
}

sim::OtaLinkConfig LinkFor(double tx_deg, double rx_deg, double rx_dist) {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(tx_deg),
                     .rx_distance_m = rx_dist,
                     .rx_angle_rad = rf::DegToRad(rx_deg),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  return config;
}

// ---------------------------------------------------------------------
// Geometry grid: any in-FoV placement must stay far above chance.
// ---------------------------------------------------------------------
class GeometrySweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(GeometrySweep, DeploymentWorksAcrossPlacements) {
  const auto [tx_deg, rx_deg, rx_dist] = GetParam();
  const auto& setup = Shared();
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment deployment(setup.model, surface,
                                    LinkFor(tx_deg, rx_deg, rx_dist));
  Rng rng(56);
  const double acc = deployment.EvaluateAccuracyAtOffset(
      setup.dataset.test, 0.0, rng, 40);
  EXPECT_GT(acc, 0.5) << "tx " << tx_deg << " rx " << rx_deg << " dist "
                      << rx_dist;
}

INSTANTIATE_TEST_SUITE_P(
    InFovPlacements, GeometrySweep,
    ::testing::Combine(::testing::Values(0.0, 30.0, 55.0),   // tx angle
                       ::testing::Values(10.0, 40.0),        // rx angle
                       ::testing::Values(2.0, 6.0)),         // rx distance
    [](const auto& info) {
      return "tx" + std::to_string(static_cast<int>(std::get<0>(info.param))) +
             "_rx" + std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "_d" + std::to_string(static_cast<int>(std::get<2>(info.param)));
    });

// ---------------------------------------------------------------------
// Modulation sweep: the pipeline holds for every constellation.
// ---------------------------------------------------------------------
class ModulationSweep : public ::testing::TestWithParam<rf::Modulation> {};

TEST_P(ModulationSweep, PipelineWorksForEveryScheme) {
  const rf::Modulation scheme = GetParam();
  const auto ds =
      data::MakeMnistLike({.train_per_class = 50, .test_per_class = 8});
  Rng rng(57);
  core::TrainingOptions options;
  options.epochs = 25;
  options.modulation = scheme;
  const auto model = core::TrainModel(ds.train, options, rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment deployment(model, surface,
                                    LinkFor(30.0, 40.0, 3.0));
  Rng eval_rng(58);
  const double acc =
      deployment.EvaluateAccuracyAtOffset(ds.test, 0.0, eval_rng, 40);
  EXPECT_GT(acc, 0.5) << rf::ModulationName(scheme);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ModulationSweep,
                         ::testing::ValuesIn(rf::AllModulations().begin(),
                                             rf::AllModulations().end()),
                         [](const auto& info) {
                           std::string name =
                               rf::ModulationName(info.param);
                           std::erase(name, '-');
                           return name;
                         });

// ---------------------------------------------------------------------
// Parallelism grid: every (mode, width) combination covers all classes
// with the expected round count.
// ---------------------------------------------------------------------
class ParallelismSweep
    : public ::testing::TestWithParam<
          std::tuple<core::ParallelismMode, std::size_t>> {};

TEST_P(ParallelismSweep, RoundsAndCoverageAreConsistent) {
  const auto [mode, width] = GetParam();
  const auto& setup = Shared();
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  core::DeploymentOptions options;
  options.mode = mode;
  options.parallel_width = width;
  const core::Deployment deployment(setup.model, surface,
                                    LinkFor(30.0, 40.0, 3.0), options);
  const std::size_t classes = setup.model.num_classes();
  const std::size_t effective_width = std::min(width, classes);
  EXPECT_EQ(deployment.RoundsPerInference(),
            (classes + effective_width - 1) / effective_width);
  // Every class is computed by exactly one (round, observation) slot.
  std::vector<int> seen(classes, 0);
  for (const auto& round : deployment.schedules().outputs) {
    for (const int output : round) {
      if (output >= 0) ++seen[static_cast<std::size_t>(output)];
    }
  }
  for (const int count : seen) EXPECT_EQ(count, 1);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndWidths, ParallelismSweep,
    ::testing::Combine(::testing::Values(core::ParallelismMode::kSubcarrier,
                                         core::ParallelismMode::kAntenna),
                       ::testing::Values(2u, 3u, 5u, 10u, 16u)),
    [](const auto& info) {
      return core::ParallelismModeName(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace metaai
