// End-to-end telemetry invariants: the instruments recorded by the OTA
// pipeline must agree with what the pipeline reports about itself, and —
// because every instrument value derives from seeded computation — two
// identically-seeded runs must produce identical metric snapshots.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "core/metaai.h"
#include "data/datasets.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "rf/geometry.h"

namespace metaai {
namespace {

#if METAAI_OBS_ENABLED

sim::OtaLinkConfig SmallLink() {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  config.channel_seed = 77;
  return config;
}

std::uint64_t CounterValue(const obs::RegistrySnapshot& snapshot,
                           const std::string& name) {
  for (const auto& [counter_name, value] : snapshot.counters) {
    if (counter_name == name) return value;
  }
  ADD_FAILURE() << "missing counter " << name;
  return 0;
}

TEST(TelemetryIntegrationTest, OtaPipelineInstrumentsMatchReportedState) {
  obs::Registry registry;
  const obs::ScopedRegistry scoped(&registry);

  const auto ds =
      data::MakeMnistLike({.train_per_class = 20, .test_per_class = 5});
  Rng train_rng(5);
  core::TrainingOptions options;
  options.epochs = 5;
  const auto model = core::TrainModel(ds.train, options, train_rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment deployment(model, surface, SmallLink());

  sim::SyncModelConfig sync_config;
  sync_config.latency_scale = 0.3;
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  Rng rng(41);
  constexpr std::size_t kSamples = 8;
  deployment.EvaluateAccuracy(ds.test, sync, rng, kSamples);

  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  // One inference per sample; each plays every scheduled round once.
  EXPECT_EQ(CounterValue(snapshot, "ota.inferences"), kSamples);
  EXPECT_EQ(CounterValue(snapshot, "ota.rounds"),
            kSamples * deployment.RoundsPerInference());
  EXPECT_EQ(CounterValue(snapshot, "ota.samples"), kSamples);
  // The link transmitted exactly the scheduled rounds.
  EXPECT_EQ(CounterValue(snapshot, "link.transmissions"),
            kSamples * deployment.RoundsPerInference());
  // Deployment construction ran the solver at least once per weight.
  EXPECT_GE(CounterValue(snapshot, "solver.sweeps"), 1u);
  EXPECT_GE(CounterValue(snapshot, "solver.calls"),
            deployment.RoundsPerInference());
  // Training recorded its epochs.
  EXPECT_EQ(CounterValue(snapshot, "train.epochs"),
            static_cast<std::uint64_t>(options.epochs));
}

TEST(TelemetryIntegrationTest, IdenticalSeedsProduceIdenticalSnapshots) {
  auto run = [] {
    obs::Registry registry;
    const obs::ScopedRegistry scoped(&registry);
    const auto ds =
        data::MakeMnistLike({.train_per_class = 20, .test_per_class = 5});
    Rng train_rng(5);
    core::TrainingOptions options;
    options.epochs = 5;
    const auto model = core::TrainModel(ds.train, options, train_rng);
    const mts::Metasurface surface{mts::MetasurfaceSpec{}};
    const core::Deployment deployment(model, surface, SmallLink());
    sim::SyncModelConfig sync_config;
    sync_config.latency_scale = 0.3;
    const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
    Rng rng(41);
    deployment.EvaluateAccuracy(ds.test, sync, rng, 8);
    return registry.Snapshot();
  };
  const obs::RegistrySnapshot a = run();
  const obs::RegistrySnapshot b = run();
  EXPECT_EQ(a, b);
  // Snapshot equality must also mean byte-identical exports.
  EXPECT_EQ(obs::ToJson(a), obs::ToJson(b));
}

TEST(TelemetryIntegrationTest, ProbeStreamIsPopulatedAndSeedDeterministic) {
  auto run = [] {
    obs::ProbeSink sink;
    const obs::ScopedProbeSink scoped(&sink);
    const auto ds =
        data::MakeMnistLike({.train_per_class = 20, .test_per_class = 5});
    Rng train_rng(5);
    core::TrainingOptions options;
    options.epochs = 2;
    const auto model = core::TrainModel(ds.train, options, train_rng);
    const mts::Metasurface surface{mts::MetasurfaceSpec{}};
    const core::Deployment deployment(model, surface, SmallLink());
    sim::SyncModelConfig sync_config;
    sync_config.latency_scale = 0.3;
    const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
    Rng rng(41);
    deployment.EvaluateAccuracy(ds.test, sync, rng, 4);
    return obs::ToProbesJsonl(sink);
  };

  const std::string jsonl = run();
  // Same seeds, byte-identical flight-recorder stream.
  EXPECT_EQ(jsonl, run());

  // The stream validates against the metaai.probes.v1 schema and the
  // pipeline hit every instrumented probe site.
  std::istringstream lines(jsonl);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(obs::ParseJson(line).Find("schema")->string,
            "metaai.probes.v1");
  std::set<std::string> sites;
  std::size_t records = 0;
  while (std::getline(lines, line)) {
    const obs::JsonValue record = obs::ParseJson(line);
    ASSERT_NE(record.Find("seq"), nullptr);
    ASSERT_NE(record.Find("kind"), nullptr);
    ASSERT_NE(record.Find("values"), nullptr);
    sites.insert(record.Find("site")->string);
    ++records;
  }
  EXPECT_GT(records, 0u);
  for (const char* site :
       {"solver.solve", "deploy.schedule", "link.transmit", "sync.sample",
        "ota.evaluate"}) {
    EXPECT_TRUE(sites.count(site)) << "no probe from site " << site;
  }
}

TEST(TelemetryIntegrationTest, SchedulerRecordsFrameAndBudgetState) {
  obs::Registry registry;
  const obs::ScopedRegistry scoped(&registry);

  const auto ds =
      data::MakeMnistLike({.train_per_class = 10, .test_per_class = 2});
  Rng rng(3);
  core::TrainingOptions options;
  options.epochs = 2;
  auto model = core::TrainModel(ds.train, options, rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  std::vector<core::DeviceSpec> devices;
  devices.push_back({.name = "a", .model = model, .link = SmallLink()});
  devices.push_back({.name = "b", .model = std::move(model),
                     .link = SmallLink()});
  const core::SharedSurfaceScheduler scheduler(surface, std::move(devices));

  const obs::RegistrySnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(CounterValue(snapshot, "scheduler.frames_built"), 1u);
  EXPECT_EQ(CounterValue(snapshot, "controller.budget_checks"), 1u);
  double devices_gauge = -1.0;
  double frame_gauge = -1.0;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name == "scheduler.devices") devices_gauge = value;
    if (name == "scheduler.frame_duration_s") frame_gauge = value;
  }
  EXPECT_DOUBLE_EQ(devices_gauge, 2.0);
  EXPECT_DOUBLE_EQ(frame_gauge, scheduler.FrameDuration());
}

#else  // METAAI_OBS_ENABLED

TEST(TelemetryIntegrationTest, DisabledBuildSkips) {
  GTEST_SKIP() << "telemetry compiled out (METAAI_OBS=OFF)";
}

#endif  // METAAI_OBS_ENABLED

}  // namespace
}  // namespace metaai
