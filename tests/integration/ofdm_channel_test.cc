// Validates the frequency-domain channel abstraction the subcarrier
// parallelism relies on: passing an OFDM waveform through a tapped-delay
// channel in the time domain produces exactly the per-subcarrier complex
// gains H(f_k) that sim::OtaLink's narrowband observations assume.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "rf/channel.h"
#include "rf/fft.h"
#include "rf/ofdm.h"

namespace metaai::rf {
namespace {

// Applies a tapped channel to time samples with integer-sample delays
// (cyclic convolution — valid because the cyclic prefix turns linear
// convolution into circular within one OFDM symbol).
Signal ApplyTapsCyclic(const Signal& samples,
                       const std::vector<PathTap>& taps,
                       double sample_rate_hz) {
  Signal out(samples.size(), Complex{0.0, 0.0});
  for (const PathTap& tap : taps) {
    const auto delay = static_cast<std::size_t>(
        std::llround(tap.delay_s * sample_rate_hz));
    for (std::size_t n = 0; n < samples.size(); ++n) {
      out[(n + delay) % samples.size()] += tap.gain * samples[n];
    }
  }
  return out;
}

TEST(OfdmChannelTest, TimeDomainTapsMatchPerSubcarrierResponse) {
  // Build a channel whose tap delays are exact sample multiples so the
  // time-domain and frequency-domain paths are comparable without
  // fractional-delay interpolation.
  constexpr std::size_t kN = 64;
  constexpr double kSpacing = 40e3;
  const double sample_rate = kN * kSpacing;  // 2.56 MHz
  std::vector<PathTap> taps{
      {Complex{0.8, 0.1}, 0.0},
      {Complex{0.25, -0.2}, 3.0 / sample_rate},
      {Complex{-0.1, 0.15}, 7.0 / sample_rate},
  };

  const Ofdm ofdm({.num_subcarriers = kN,
                   .cyclic_prefix_len = 16,
                   .subcarrier_spacing_hz = kSpacing});
  Rng rng(5);
  Signal subcarriers(kN);
  for (auto& s : subcarriers) s = rng.ComplexNormal(1.0);

  // Time-domain path: modulate, pass through the taps (CP makes the
  // convolution circular), demodulate.
  const Signal tx = ofdm.Modulate(subcarriers);
  // Strip the CP effect by operating on the IFFT body cyclically: the CP
  // guarantees the receiver window sees a circular convolution of the
  // body, which ApplyTapsCyclic reproduces directly.
  Signal body(tx.begin() + 16, tx.end());
  const Signal received_body = ApplyTapsCyclic(body, taps, sample_rate);
  Signal freq = received_body;
  Fft(freq);

  // Frequency-domain expectation: Y_k = H(f_k) X_k.
  for (std::size_t k = 0; k < kN; ++k) {
    Complex h{0.0, 0.0};
    const double f = ofdm.SubcarrierOffsetHz(k);
    for (const PathTap& tap : taps) {
      const double phase = -2.0 * M_PI * f * tap.delay_s;
      h += tap.gain * Complex{std::cos(phase), std::sin(phase)};
    }
    const Complex expected = h * subcarriers[k];
    EXPECT_LT(std::abs(freq[k] - expected), 1e-9)
        << "subcarrier " << k;
  }
}

TEST(OfdmChannelTest, MultipathChannelResponseMatchesItsOwnTaps) {
  // MultipathChannel::Response(f) must equal the DFT of its tap list —
  // the identity the OtaLink observations use per subcarrier.
  Rng rng(7);
  const MultipathChannel channel(OfficeProfile(), 0.01, 1.0, rng);
  for (const double f : {0.0, 40e3, -80e3, 1e6}) {
    Complex expected{0.0, 0.0};
    for (const PathTap& tap : channel.taps()) {
      const double phase = -2.0 * M_PI * f * tap.delay_s;
      expected += tap.gain * Complex{std::cos(phase), std::sin(phase)};
    }
    EXPECT_LT(std::abs(channel.Response(f) - expected), 1e-12);
  }
}

TEST(OfdmChannelTest, DelaysInsideCpDoNotInterfereAcrossSymbols) {
  // Two consecutive OFDM symbols through a delayed channel: with the
  // delay inside the CP, each demodulated symbol depends only on its own
  // subcarrier data.
  constexpr std::size_t kN = 32;
  const Ofdm ofdm({.num_subcarriers = kN,
                   .cyclic_prefix_len = 8,
                   .subcarrier_spacing_hz = 40e3});
  const double sample_rate = kN * 40e3;
  const std::vector<PathTap> taps{{Complex{1.0, 0.0}, 0.0},
                                  {Complex{0.4, 0.3}, 5.0 / sample_rate}};
  Rng rng(9);
  Signal a(kN);
  Signal b(kN);
  for (std::size_t k = 0; k < kN; ++k) {
    a[k] = rng.ComplexNormal(1.0);
    b[k] = rng.ComplexNormal(1.0);
  }
  const Signal tx_a = ofdm.Modulate(a);
  const Signal tx_b = ofdm.Modulate(b);
  Signal stream;
  stream.insert(stream.end(), tx_a.begin(), tx_a.end());
  stream.insert(stream.end(), tx_b.begin(), tx_b.end());
  // Linear (non-cyclic) channel over the whole stream.
  Signal received(stream.size(), Complex{0.0, 0.0});
  for (const PathTap& tap : taps) {
    const auto delay = static_cast<std::size_t>(
        std::llround(tap.delay_s * sample_rate));
    for (std::size_t n = 0; n + delay < stream.size(); ++n) {
      received[n + delay] += tap.gain * stream[n];
    }
  }
  // Demodulate the SECOND symbol (its CP has absorbed the first's tail).
  const Signal rx_b(received.begin() + static_cast<std::ptrdiff_t>(
                        ofdm.SymbolLength()),
                    received.end());
  const Signal demod = ofdm.Demodulate(rx_b);
  for (std::size_t k = 0; k < kN; ++k) {
    Complex h{0.0, 0.0};
    const double f = ofdm.SubcarrierOffsetHz(k);
    for (const PathTap& tap : taps) {
      const double phase = -2.0 * M_PI * f * tap.delay_s;
      h += tap.gain * Complex{std::cos(phase), std::sin(phase)};
    }
    EXPECT_LT(std::abs(demod[k] - h * b[k]), 1e-9) << "subcarrier " << k;
  }
}

}  // namespace
}  // namespace metaai::rf
