// Reproducibility guards: every experiment in this repository derives its
// randomness from explicit seeds, so identical seeds must give identical
// results — bit-for-bit. These tests rebuild small pipelines twice and
// compare exactly; if any module sneaks in unseeded state (std::rand,
// time, unordered iteration, ...) they fail.
#include <gtest/gtest.h>

#include "core/metaai.h"
#include "data/datasets.h"
#include "data/encoding.h"
#include "rf/geometry.h"

namespace metaai {
namespace {

sim::OtaLinkConfig SmallLink() {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  config.channel_seed = 77;
  return config;
}

TEST(ReproducibilityTest, TrainingIsBitExactGivenSeed) {
  auto run = [] {
    const auto ds =
        data::MakeMnistLike({.train_per_class = 20, .test_per_class = 5});
    Rng rng(123);
    core::TrainingOptions options;
    options.epochs = 5;
    options.sync_error_injection = true;
    options.input_noise_variance = 0.05;
    return core::TrainModel(ds.train, options, rng);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_TRUE(a.network.weights() == b.network.weights());
}

TEST(ReproducibilityTest, OtaMeasurementsAreBitExactGivenSeeds) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 20, .test_per_class = 5});
  Rng train_rng(5);
  core::TrainingOptions options;
  options.epochs = 5;
  const auto model = core::TrainModel(ds.train, options, train_rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment deployment(model, surface, SmallLink());
  const auto symbols =
      data::EncodeSample(ds.test.features[0], model.modulation);

  auto run = [&] {
    Rng rng(99);
    return deployment.link().TransmitSequence(
        symbols, deployment.schedules().rounds[0], 0.7, rng);
  };
  const auto za = run();
  const auto zb = run();
  ASSERT_EQ(za.cols(), zb.cols());
  for (std::size_t i = 0; i < za.cols(); ++i) {
    EXPECT_EQ(za(0, i), zb(0, i)) << "symbol " << i;
  }
}

TEST(ReproducibilityTest, EvaluationAccuracyIsExactlyRepeatable) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 30, .test_per_class = 6});
  Rng train_rng(9);
  core::TrainingOptions options;
  options.epochs = 10;
  const auto model = core::TrainModel(ds.train, options, train_rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment deployment(model, surface, SmallLink());
  sim::SyncModelConfig sync_config;
  sync_config.latency_scale = 0.3;
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  Rng rng_a(41);
  Rng rng_b(41);
  EXPECT_DOUBLE_EQ(
      deployment.EvaluateAccuracy(ds.test, sync, rng_a, 30),
      deployment.EvaluateAccuracy(ds.test, sync, rng_b, 30));
}

TEST(ReproducibilityTest, DifferentChannelSeedsGiveDifferentChannels) {
  // The flip side: channel seeds actually matter (no accidental sharing).
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig a = SmallLink();
  sim::OtaLinkConfig b = SmallLink();
  b.channel_seed = 78;
  const sim::OtaLink link_a(surface, a);
  const sim::OtaLink link_b(surface, b);
  EXPECT_NE(link_a.EnvironmentResponse(0), link_b.EnvironmentResponse(0));
}

TEST(ReproducibilityTest, StackedPnnTrainingIsBitExact) {
  auto run = [] {
    Rng rng(31);
    nn::ComplexDataset ds;
    ds.num_classes = 3;
    ds.dim = 16;
    for (int c = 0; c < 3; ++c) {
      for (int s = 0; s < 10; ++s) {
        std::vector<nn::Complex> x(16);
        for (auto& v : x) v = rng.ComplexNormal(1.0);
        ds.features.push_back(std::move(x));
        ds.labels.push_back(c);
      }
    }
    core::StackedPnnConfig config;
    config.input_dim = 16;
    config.num_classes = 3;
    config.atoms_per_layer = 9;
    config.num_layers = 2;
    config.epochs = 4;
    core::StackedPnn pnn(config);
    pnn.Initialize(rng);
    pnn.Train(ds, rng);
    std::vector<nn::Complex> probe(16, nn::Complex{1.0, 0.0});
    return pnn.ClassScores(probe);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace metaai
