// Cross-module integration tests: the complete train -> persist ->
// deploy -> transmit pipeline, exercised the way the CLI and benches
// drive it.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/metaai.h"
#include "data/datasets.h"
#include "data/encoding.h"
#include "rf/geometry.h"

namespace metaai {
namespace {

sim::OtaLinkConfig DefaultLink(std::uint64_t seed = 1) {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  config.channel_seed = seed;
  return config;
}

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("metaai_e2e_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(EndToEndTest, TrainPersistDeployTransmitPipeline) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 50, .test_per_class = 10});
  Rng rng(1);
  core::TrainingOptions train_options;
  train_options.epochs = 25;
  const auto model = core::TrainModel(ds.train, train_options, rng);

  // Persist + reload the model.
  core::TrySaveModel(model, dir_ / "model.txt").value();
  const auto loaded = core::TryLoadModel(dir_ / "model.txt").value();

  // Deploy the loaded model and persist + reload the patterns.
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment deployment(loaded, surface, DefaultLink());
  core::TrySavePatterns(deployment.schedules(), surface.num_atoms(),
                        dir_ / "patterns.txt")
      .value();
  const auto patterns =
      core::TryLoadPatterns(dir_ / "patterns.txt", surface.num_atoms()).value();

  // Transmit one sample with the reloaded patterns: measurements match
  // the live deployment's schedules exactly (same codes).
  const sim::OtaLink link(surface, DefaultLink());
  const auto symbols =
      data::EncodeSample(ds.test.features[0], loaded.modulation);
  Rng noise_a(7);
  Rng noise_b(7);
  const auto z_live = link.TransmitSequence(
      symbols, deployment.schedules().rounds[0], 0.0, noise_a);
  const auto z_loaded =
      link.TransmitSequence(symbols, patterns.rounds[0], 0.0, noise_b);
  for (std::size_t i = 0; i < z_live.cols(); ++i) {
    EXPECT_EQ(z_live(0, i), z_loaded(0, i));
  }

  // The whole pipeline classifies sensibly.
  Rng eval_rng(9);
  const double ota =
      deployment.EvaluateAccuracyAtOffset(ds.test, 0.0, eval_rng, 60);
  const double digital = core::EvaluateDigital(loaded, ds.test);
  EXPECT_GT(ota, digital - 0.15);
}

TEST_F(EndToEndTest, OtaTracksDigitalAcrossDatasets) {
  // The prototype pipeline stays within a usable band of the digital
  // model on every dataset family (small splits for speed).
  for (const auto& name : {"mnist", "fruits", "widar"}) {
    const auto ds = data::MakeByName(
        name, {.train_per_class = 50, .test_per_class = 10});
    Rng rng(2);
    core::TrainingOptions options;
    options.epochs = 30;
    const auto model = core::TrainModel(ds.train, options, rng);
    const double digital = core::EvaluateDigital(model, ds.test);

    const mts::Metasurface surface{mts::MetasurfaceSpec{}};
    const core::Deployment deployment(model, surface, DefaultLink(3));
    Rng eval_rng(4);
    const double ota =
        deployment.EvaluateAccuracyAtOffset(ds.test, 0.0, eval_rng, 50);
    EXPECT_GT(ota, digital - 0.15) << name;
  }
}

TEST_F(EndToEndTest, TxPowerIsACommonScale) {
  // Classification only depends on relative magnitudes: with negligible
  // noise, sweeping the transmit power must not change predictions
  // (alpha_p argument of §3.2).
  const auto ds =
      data::MakeMnistLike({.train_per_class = 40, .test_per_class = 8});
  Rng rng(5);
  core::TrainingOptions options;
  options.epochs = 20;
  const auto model = core::TrainModel(ds.train, options, rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  std::vector<int> reference;
  for (const double power_dbm : {0.0, 20.0, 40.0}) {
    sim::OtaLinkConfig config = DefaultLink(11);
    config.budget.tx_power_dbm = power_dbm;
    config.budget.noise_floor_dbm = -200.0;  // noiseless
    const core::Deployment deployment(model, surface, config);
    std::vector<int> predictions;
    Rng eval_rng(6);
    for (std::size_t i = 0; i < 20; ++i) {
      predictions.push_back(
          deployment.Classify(ds.test.features[i], 0.0, eval_rng));
    }
    if (reference.empty()) {
      reference = predictions;
    } else {
      EXPECT_EQ(predictions, reference) << "power " << power_dbm;
    }
  }
}

TEST_F(EndToEndTest, FrequencyBandsAreInterchangeable) {
  // The same trained model deploys on either prototype panel at its own
  // band; accuracy is band-independent (Fig 22's claim, small scale).
  const auto ds =
      data::MakeMnistLike({.train_per_class = 50, .test_per_class = 10});
  Rng rng(8);
  core::TrainingOptions options;
  options.epochs = 25;
  const auto model = core::TrainModel(ds.train, options, rng);

  double reference = -1.0;
  struct Band {
    mts::MetasurfaceSpec spec;
    double frequency;
  };
  for (const Band& band : {Band{mts::DualBandSpec(), 2.4e9},
                           Band{mts::SingleBandSpec(), 3.5e9},
                           Band{mts::DualBandSpec(), 5.0e9}}) {
    const mts::Metasurface surface{band.spec};
    sim::OtaLinkConfig config = DefaultLink(13);
    config.geometry.frequency_hz = band.frequency;
    const core::Deployment deployment(model, surface, config);
    Rng eval_rng(14);
    const double acc =
        deployment.EvaluateAccuracyAtOffset(ds.test, 0.0, eval_rng, 50);
    if (reference < 0.0) reference = acc;
    EXPECT_NEAR(acc, reference, 0.15);
  }
}

TEST_F(EndToEndTest, UnsupportedBandFailsLoudly) {
  // Deploying a 3.5 GHz-only panel at 5.25 GHz reflects nothing — the
  // mapper cannot scale an all-zero steering sum.
  const auto ds =
      data::MakeMnistLike({.train_per_class = 20, .test_per_class = 4});
  Rng rng(15);
  core::TrainingOptions options;
  options.epochs = 5;
  const auto model = core::TrainModel(ds.train, options, rng);
  const mts::Metasurface surface{mts::SingleBandSpec()};
  sim::OtaLinkConfig config = DefaultLink();  // 5.25 GHz
  // Steering is still well-defined (unit phasors); but the amplitude is
  // zero, so the deployment produces all-zero responses -> chance-level
  // accuracy rather than a crash.
  const core::Deployment deployment(model, surface, config);
  Rng eval_rng(16);
  const double acc =
      deployment.EvaluateAccuracyAtOffset(ds.test, 0.0, eval_rng, 40);
  EXPECT_LT(acc, 0.35);
}

}  // namespace
}  // namespace metaai
