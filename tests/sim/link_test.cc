#include "sim/link.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "mts/config_solver.h"
#include "rf/geometry.h"

namespace metaai::sim {
namespace {

mts::LinkGeometry DefaultGeometry() {
  return {.tx_distance_m = 1.0,
          .tx_angle_rad = rf::DegToRad(30.0),
          .rx_distance_m = 3.0,
          .rx_angle_rad = rf::DegToRad(40.0),
          .frequency_hz = 5.25e9};
}

OtaLinkConfig QuietConfig() {
  OtaLinkConfig config;
  config.geometry = DefaultGeometry();
  // Effectively noise-free for the deterministic checks.
  config.budget.noise_floor_dbm = -200.0;
  config.environment.profile = rf::CorridorProfile();
  return config;
}

// A schedule realizing a single target weight on every symbol.
MtsSchedule UniformSchedule(const mts::Metasurface& /*surface*/,
                            const OtaLink& link, Complex target,
                            std::size_t symbols) {
  const auto steering = link.SteeringVector(0);
  const auto result = mts::SolveSingleTarget(steering, target);
  return MtsSchedule(symbols, result.codes);
}

TEST(OtaLinkTest, TxRxDistanceMatchesGeometry) {
  // Tx at 1m @30deg, Rx at 3m @40deg -> law of cosines with 10deg between.
  const double d = TxRxDistance(DefaultGeometry());
  const double expected = std::sqrt(1.0 + 9.0 - 2.0 * 1.0 * 3.0 *
                                               std::cos(rf::DegToRad(10.0)));
  EXPECT_NEAR(d, expected, 1e-9);
}

TEST(OtaLinkTest, NoiselessTransmissionRealizesWeightTimesData) {
  // With cancellation on and no noise/offset, z_i must equal
  // tx_amplitude * mts_amplitude * B_i * x_i exactly — the paper's
  // Eqn 3 product realized over the air.
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLink link(surface, QuietConfig());
  const Complex target{80.0, 40.0};
  const auto schedule = UniformSchedule(surface, link, target, 4);

  // Evaluate the achieved sum for the solved codes.
  const auto steering = link.SteeringVector(0);
  Complex achieved{0.0, 0.0};
  for (std::size_t m = 0; m < steering.size(); ++m) {
    achieved += steering[m] * mts::PhasorForCode(schedule[0][m]);
  }

  std::vector<Complex> data{{1.0, 0.0}, {0.0, 1.0}, {-0.7, 0.3}, {0.5, -0.5}};
  Rng rng(7);
  const auto z = link.TransmitSequence(data, schedule, 0.0, rng);
  ASSERT_EQ(z.rows(), 1u);
  ASSERT_EQ(z.cols(), 4u);
  const double amp = std::sqrt(std::pow(10.0, (20.0 - 30.0) / 10.0)) *
                     link.MtsPathAmplitude(0);
  for (std::size_t i = 0; i < 4; ++i) {
    const Complex expected = amp * achieved * data[i];
    EXPECT_LT(std::abs(z(0, i) - expected), std::abs(expected) * 1e-6)
        << "symbol " << i;
  }
}

TEST(OtaLinkTest, CancellationRemovesEnvironmentPath) {
  // With the flip scheme, the (static) environment path must not leak
  // into the measurements even though it is comparable in strength to
  // the MTS path.
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLinkConfig config = QuietConfig();
  config.environment.profile = rf::LaboratoryProfile();  // rich multipath
  config.multipath_cancellation = true;
  OtaLink link(surface, config);
  ASSERT_GT(std::abs(link.EnvironmentResponse(0)), 0.0);

  const auto schedule = UniformSchedule(surface, link, {80.0, 40.0}, 3);
  const auto steering = link.SteeringVector(0);
  Complex achieved{0.0, 0.0};
  for (std::size_t m = 0; m < steering.size(); ++m) {
    achieved += steering[m] * mts::PhasorForCode(schedule[0][m]);
  }
  std::vector<Complex> data{{1.0, 0.0}, {0.6, -0.8}, {-1.0, 0.0}};
  Rng rng(9);
  const auto z = link.TransmitSequence(data, schedule, 0.0, rng);
  const double amp = std::sqrt(std::pow(10.0, (20.0 - 30.0) / 10.0)) *
                     link.MtsPathAmplitude(0);
  for (std::size_t i = 0; i < 3; ++i) {
    const Complex expected = amp * achieved * data[i];
    EXPECT_LT(std::abs(z(0, i) - expected), std::abs(expected) * 1e-6);
  }
}

TEST(OtaLinkTest, ObservationOrderDoesNotChangeChannels) {
  // Regression: the shared base-environment realization used to be built
  // lazily at the first observation without a geometry override, so the
  // taps every observation saw — and the forked streams of the overrides
  // — depended on where that observation sat in the list. Permuting the
  // observation list must permute the per-observation channels, nothing
  // more.
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  mts::LinkGeometry other = DefaultGeometry();
  other.rx_angle_rad = rf::DegToRad(-25.0);
  const Observation base_obs{};
  const Observation override_obs{.geometry = other};

  OtaLinkConfig forward = QuietConfig();
  forward.environment.profile = rf::LaboratoryProfile();
  forward.observations = {base_obs, override_obs};
  OtaLinkConfig reversed = forward;
  reversed.observations = {override_obs, base_obs};

  const OtaLink link_fwd(surface, forward);
  const OtaLink link_rev(surface, reversed);
  // base_obs is index 0 forward, index 1 reversed (and vice versa).
  EXPECT_EQ(link_fwd.EnvironmentResponse(0), link_rev.EnvironmentResponse(1));
  EXPECT_EQ(link_fwd.EnvironmentResponse(1), link_rev.EnvironmentResponse(0));
}

TEST(OtaLinkTest, WithoutCancellationEnvironmentLeaksIn) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLinkConfig config = QuietConfig();
  config.environment.profile = rf::LaboratoryProfile();
  config.multipath_cancellation = false;
  OtaLink link(surface, config);

  const auto schedule = UniformSchedule(surface, link, {80.0, 40.0}, 1);
  const auto steering = link.SteeringVector(0);
  Complex achieved{0.0, 0.0};
  for (std::size_t m = 0; m < steering.size(); ++m) {
    achieved += steering[m] * mts::PhasorForCode(schedule[0][m]);
  }
  std::vector<Complex> data{{1.0, 0.0}};
  Rng rng(11);
  const auto z = link.TransmitSequence(data, schedule, 0.0, rng);
  const double tx_amp = std::sqrt(std::pow(10.0, (20.0 - 30.0) / 10.0));
  const Complex mts_part = tx_amp * link.MtsPathAmplitude(0) * achieved;
  // The measurement includes the environment on top of the MTS product.
  const Complex leak = z(0, 0) - mts_part;
  EXPECT_NEAR(std::abs(leak - link.EnvironmentResponse(0)), 0.0,
              std::abs(mts_part) * 1e-6);
}

TEST(OtaLinkTest, HalfSymbolOffsetAveragesAdjacentWeights) {
  // With a half-symbol clock offset the receiver's pair combining can no
  // longer isolate one weight: it recovers the benign average of the two
  // adjacent weights (and still cancels the environment). Fig 11b's
  // corruption shows up as this weight mixing.
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLink link(surface, QuietConfig());
  const auto sched_a = UniformSchedule(surface, link, {80.0, 40.0}, 1);
  const auto sched_b = UniformSchedule(surface, link, {-40.0, 70.0}, 1);
  MtsSchedule schedule;
  for (int i = 0; i < 8; ++i) {
    schedule.push_back(i % 2 == 0 ? sched_a[0] : sched_b[0]);
  }
  std::vector<Complex> data(8, Complex{1.0, 0.0});
  Rng rng(13);
  const auto aligned = link.TransmitSequence(data, schedule, 0.0, rng);
  const auto offset = link.TransmitSequence(data, schedule, 0.5, rng);
  for (std::size_t i = 2; i < 6; ++i) {
    // Mixed measurement: average of this symbol's and the previous
    // symbol's aligned measurements.
    const Complex expected = 0.5 * (aligned(0, i) + aligned(0, i - 1));
    EXPECT_LT(std::abs(offset(0, i) - expected),
              std::abs(expected) * 1e-6 + 1e-12)
        << "symbol " << i;
    // And clearly different from the aligned weight itself.
    EXPECT_GT(std::abs(offset(0, i) - aligned(0, i)),
              std::abs(aligned(0, i)) * 0.3);
  }
}

TEST(OtaLinkTest, IntegerSymbolOffsetShiftsSchedule) {
  // With an exactly one-symbol offset the MTS plays weight i-1 during
  // data symbol i.
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLink link(surface, QuietConfig());
  // Two alternating weights.
  const auto sched_a = UniformSchedule(surface, link, {80.0, 40.0}, 1);
  const auto sched_b = UniformSchedule(surface, link, {-40.0, 70.0}, 1);
  MtsSchedule schedule;
  for (int i = 0; i < 6; ++i) {
    schedule.push_back(i % 2 == 0 ? sched_a[0] : sched_b[0]);
  }
  std::vector<Complex> data(6, Complex{1.0, 0.0});
  Rng rng(17);
  const auto aligned = link.TransmitSequence(data, schedule, 0.0, rng);
  const auto shifted = link.TransmitSequence(data, schedule, 1.0, rng);
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_LT(std::abs(shifted(0, i) - aligned(0, i - 1)),
              std::abs(aligned(0, i - 1)) * 1e-6 + 1e-12)
        << "symbol " << i;
  }
}

TEST(OtaLinkTest, NoiseMatchesConfiguredFloor) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLinkConfig config = QuietConfig();
  config.budget.noise_floor_dbm = -80.0;
  OtaLink link(surface, config);
  // All-zero data: measurements are pure integrated noise.
  const auto schedule = UniformSchedule(surface, link, {80.0, 40.0}, 400);
  std::vector<Complex> data(400, Complex{0.0, 0.0});
  Rng rng(19);
  const auto z = link.TransmitSequence(data, schedule, 0.0, rng);
  double power = 0.0;
  for (std::size_t i = 0; i < 400; ++i) power += std::norm(z(0, i));
  power /= 400.0;
  EXPECT_NEAR(power / link.SymbolNoiseVariance(), 1.0, 0.25);
}

TEST(OtaLinkTest, WallAttenuationReducesMtsPath) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLinkConfig config = QuietConfig();
  OtaLink clear_link(surface, config);
  config.environment.wall_attenuation_db = 12.0;
  OtaLink walled_link(surface, config);
  EXPECT_NEAR(clear_link.MtsPathAmplitude(0) / walled_link.MtsPathAmplitude(0),
              std::pow(10.0, 12.0 / 20.0), 1e-9);
}

TEST(OtaLinkTest, NlosRemovesDirectEnvironmentPath) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLinkConfig config = QuietConfig();
  config.environment.profile = rf::CorridorProfile();
  OtaLink los(surface, config);
  config.environment.direct_tx_rx = false;
  OtaLink nlos(surface, config);
  // NLoS keeps scatter but drops the dominant direct term.
  EXPECT_LT(std::abs(nlos.EnvironmentResponse(0)),
            std::abs(los.EnvironmentResponse(0)));
}

TEST(OtaLinkTest, MultipleObservationsHaveDistinctSteering) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLinkConfig config = QuietConfig();
  config.observations.clear();
  config.observations.push_back({.freq_offset_hz = 0.0});
  config.observations.push_back({.freq_offset_hz = 10e6});
  mts::LinkGeometry other = DefaultGeometry();
  other.rx_angle_rad = rf::DegToRad(20.0);
  config.observations.push_back({.freq_offset_hz = 0.0, .geometry = other});
  OtaLink link(surface, config);
  EXPECT_EQ(link.num_observations(), 3u);
  const auto s0 = link.SteeringVector(0);
  const auto s1 = link.SteeringVector(1);
  const auto s2 = link.SteeringVector(2);
  double d01 = 0.0;
  double d02 = 0.0;
  for (std::size_t m = 0; m < s0.size(); ++m) {
    d01 += std::abs(s0[m] - s1[m]);
    d02 += std::abs(s0[m] - s2[m]);
  }
  EXPECT_GT(d01, 1.0);
  EXPECT_GT(d02, 1.0);
}

TEST(OtaLinkTest, PhaseNoisePerturbsMeasurements) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLinkConfig config = QuietConfig();
  config.mts_phase_noise_std = 0.2;
  OtaLink noisy(surface, config);
  OtaLink clean(surface, QuietConfig());
  const auto schedule = UniformSchedule(surface, clean, {80.0, 40.0}, 4);
  std::vector<Complex> data(4, Complex{1.0, 0.0});
  Rng rng_a(21);
  Rng rng_b(21);
  const auto za = clean.TransmitSequence(data, schedule, 0.0, rng_a);
  const auto zb = noisy.TransmitSequence(data, schedule, 0.0, rng_b);
  double diff = 0.0;
  for (std::size_t i = 0; i < 4; ++i) diff += std::abs(za(0, i) - zb(0, i));
  EXPECT_GT(diff, 0.0);
}

TEST(OtaLinkTest, InterfererR4IntermittentlyShadowsMtsPath) {
  // R4 shadowing is bursty: over a long transmission some symbols are
  // deeply attenuated, the rest untouched, and none amplified.
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLinkConfig config = QuietConfig();
  config.environment.interferer = InterfererRegion::kR4;
  OtaLink link(surface, config);
  constexpr std::size_t kSymbols = 600;
  const auto schedule =
      UniformSchedule(surface, link, {80.0, 40.0}, kSymbols);
  std::vector<Complex> data(kSymbols, Complex{1.0, 0.0});
  Rng rng(23);
  const auto z = link.TransmitSequence(data, schedule, 0.0, rng);
  OtaLink clear_link(surface, QuietConfig());
  Rng rng2(23);
  const auto z_clear = clear_link.TransmitSequence(data, schedule, 0.0,
                                                   rng2);
  std::size_t shadowed = 0;
  for (std::size_t i = 0; i < kSymbols; ++i) {
    const double ratio = std::abs(z(0, i)) / std::abs(z_clear(0, i));
    EXPECT_LT(ratio, 1.0 + 1e-6);
    if (ratio < 0.9) {
      ++shadowed;
      EXPECT_NEAR(ratio, 0.42, 0.05);  // the body's through-loss
    }
  }
  EXPECT_GT(shadowed, 0u);
  EXPECT_LT(shadowed, kSymbols);
}

TEST(OtaLinkTest, ValidatesArguments) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLinkConfig bad = QuietConfig();
  bad.oversample = 3;
  EXPECT_THROW(OtaLink(surface, bad), CheckError);
  bad = QuietConfig();
  bad.observations.clear();
  EXPECT_THROW(OtaLink(surface, bad), CheckError);

  OtaLink link(surface, QuietConfig());
  Rng rng(1);
  std::vector<Complex> data(2, Complex{1.0, 0.0});
  MtsSchedule wrong_len(1, std::vector<mts::PhaseCode>(256, 0));
  EXPECT_THROW(link.TransmitSequence(data, wrong_len, 0.0, rng), CheckError);
  MtsSchedule wrong_atoms(2, std::vector<mts::PhaseCode>(8, 0));
  EXPECT_THROW(link.TransmitSequence(data, wrong_atoms, 0.0, rng),
               CheckError);
}

TEST(OtaLinkTest, NominalSnrFallsWithDistance) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  OtaLinkConfig near_config = QuietConfig();
  near_config.budget.noise_floor_dbm = -65.0;
  OtaLinkConfig far_config = near_config;
  far_config.geometry.rx_distance_m = 12.0;
  OtaLink near_link(surface, near_config);
  OtaLink far_link(surface, far_config);
  EXPECT_GT(near_link.NominalSnrDb(), far_link.NominalSnrDb() + 10.0);
}

}  // namespace
}  // namespace metaai::sim
