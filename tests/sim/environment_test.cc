#include "sim/environment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace metaai::sim {
namespace {

TEST(EnvironmentTest, RegionNamesMatchFig26) {
  EXPECT_EQ(InterfererRegionName(InterfererRegion::kNone), "none");
  EXPECT_EQ(InterfererRegionName(InterfererRegion::kR1), "R1");
  EXPECT_EQ(InterfererRegionName(InterfererRegion::kR4), "R4");
}

TEST(EnvironmentTest, NoInterfererMeansZeroTapAndUnitGain) {
  Rng rng(1);
  DynamicInterferer none(InterfererRegion::kNone, 1e-3, 0.05, rng);
  EXPECT_DOUBLE_EQ(none.MtsPathGain(), 1.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(std::abs(none.NextSymbolTap(rng)), 0.0);
  }
}

TEST(EnvironmentTest, OnlyR4BlocksTheMtsPath) {
  Rng rng(2);
  for (const auto region : {InterfererRegion::kR1, InterfererRegion::kR2,
                            InterfererRegion::kR3}) {
    DynamicInterferer interferer(region, 1e-3, 0.05, rng);
    for (int i = 0; i < 500; ++i) {
      interferer.NextSymbolTap(rng);
      EXPECT_DOUBLE_EQ(interferer.MtsPathGain(), 1.0);
    }
  }
  // R4: intermittent deep shadowing — both states occur over time, and
  // the blocked fraction is around the configured ~20%.
  DynamicInterferer r4(InterfererRegion::kR4, 1e-3, 0.05, rng);
  int blocked = 0;
  constexpr int kSymbols = 60000;
  for (int i = 0; i < kSymbols; ++i) {
    r4.NextSymbolTap(rng);
    blocked += (r4.MtsPathGain() < 1.0);
  }
  const double fraction = static_cast<double>(blocked) / kSymbols;
  EXPECT_GT(fraction, 0.08);
  EXPECT_LT(fraction, 0.40);
}

TEST(EnvironmentTest, R4ShadowingComesInBursts) {
  // Blocked symbols are contiguous runs (a body takes many symbol
  // periods to cross the beam), not independent coin flips.
  Rng rng(7);
  DynamicInterferer r4(InterfererRegion::kR4, 1e-3, 0.05, rng);
  int transitions = 0;
  int blocked = 0;
  bool prev = false;
  constexpr int kSymbols = 60000;
  for (int i = 0; i < kSymbols; ++i) {
    r4.NextSymbolTap(rng);
    const bool now = r4.MtsPathGain() < 1.0;
    transitions += (now != prev);
    blocked += now;
    prev = now;
  }
  // Mean burst length far above 1 symbol.
  ASSERT_GT(transitions, 0);
  EXPECT_GT(static_cast<double>(blocked) / transitions, 10.0);
}

TEST(EnvironmentTest, TapDriftsSlowlyAcrossSymbols) {
  Rng rng(3);
  DynamicInterferer interferer(InterfererRegion::kR2, 1e-3, 0.05, rng);
  rf::Complex prev = interferer.NextSymbolTap(rng);
  for (int i = 0; i < 100; ++i) {
    const rf::Complex tap = interferer.NextSymbolTap(rng);
    // Per-symbol change is a small fraction of the tap magnitude.
    EXPECT_LT(std::abs(tap - prev), 0.3 * 1e-3);
    prev = tap;
  }
}

TEST(EnvironmentTest, TapMagnitudeStaysBounded) {
  Rng rng(4);
  DynamicInterferer interferer(InterfererRegion::kR4, 1e-3, 0.2, rng);
  for (int i = 0; i < 2000; ++i) {
    const double mag = std::abs(interferer.NextSymbolTap(rng));
    EXPECT_LE(mag, 2.0 * 0.55e-3 + 1e-9);
  }
}

TEST(EnvironmentTest, StrongerRegionsProduceStrongerTaps) {
  Rng rng(5);
  DynamicInterferer r1(InterfererRegion::kR1, 1e-3, 0.0, rng);
  DynamicInterferer r4(InterfererRegion::kR4, 1e-3, 0.0, rng);
  EXPECT_LT(std::abs(r1.NextSymbolTap(rng)), std::abs(r4.NextSymbolTap(rng)));
}

TEST(EnvironmentTest, ValidatesArguments) {
  Rng rng(6);
  EXPECT_THROW(DynamicInterferer(InterfererRegion::kR1, -1.0, 0.05, rng),
               CheckError);
  EXPECT_THROW(DynamicInterferer(InterfererRegion::kR1, 1.0, -0.05, rng),
               CheckError);
}

}  // namespace
}  // namespace metaai::sim
