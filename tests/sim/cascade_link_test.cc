#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "mts/config_solver.h"
#include "mts/layer_graph.h"
#include "rf/geometry.h"
#include "sim/link.h"

namespace metaai::sim {
namespace {

mts::LinkGeometry DefaultGeometry() {
  return {.tx_distance_m = 1.0,
          .tx_angle_rad = rf::DegToRad(30.0),
          .rx_distance_m = 3.0,
          .rx_angle_rad = rf::DegToRad(40.0),
          .frequency_hz = 5.25e9};
}

OtaLinkConfig QuietConfig() {
  OtaLinkConfig config;
  config.geometry = DefaultGeometry();
  config.budget.noise_floor_dbm = -200.0;
  config.environment.profile = rf::CorridorProfile();
  return config;
}

std::vector<mts::PhysicalLayerSpec> DeepSpecs(std::size_t depth,
                                              double coupling) {
  std::vector<mts::PhysicalLayerSpec> specs(depth);
  for (std::size_t l = 1; l < depth; ++l) specs[l].coupling_gain = coupling;
  return specs;
}

MtsSchedule FocusSchedule(const OtaLink& link, Complex target,
                          std::size_t symbols) {
  const auto steering = link.SteeringVector(0);
  const auto result = mts::SolveSingleTarget(steering, target);
  return MtsSchedule(symbols, result.codes);
}

TEST(CascadeLinkTest, DepthOneGraphIsBitwiseIdenticalToSurfaceLink) {
  // The tentpole compatibility contract: wrapping the legacy surface in a
  // depth-1 LayerGraph must reproduce every measurement bit for bit,
  // through both TransmitSequence overloads.
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const mts::LayerGraph graph(surface);
  OtaLinkConfig config = QuietConfig();
  config.budget.noise_floor_dbm = -80.0;  // noise must match draws too
  config.mts_phase_noise_std = 0.05;
  const OtaLink legacy(surface, config);
  const OtaLink cascade(graph, config);
  EXPECT_EQ(cascade.num_layers(), 1u);

  const auto schedule = FocusSchedule(legacy, {80.0, 40.0}, 6);
  std::vector<Complex> data(6, Complex{0.8, -0.4});
  Rng rng_a(31);
  Rng rng_b(31);
  Rng rng_c(31);
  const auto z_legacy = legacy.TransmitSequence(data, schedule, 0.25, rng_a);
  const auto z_graph = cascade.TransmitSequence(data, schedule, 0.25, rng_b);
  const auto z_explicit =
      cascade.TransmitSequence(data, schedule, LayerSchedules{}, 0.25, rng_c);
  ASSERT_EQ(z_graph.cols(), z_legacy.cols());
  for (std::size_t i = 0; i < z_legacy.cols(); ++i) {
    EXPECT_EQ(z_graph(0, i), z_legacy(0, i)) << "symbol " << i;
    EXPECT_EQ(z_explicit(0, i), z_legacy(0, i)) << "symbol " << i;
  }
}

TEST(CascadeLinkTest, FocusedUpperLayerScalesByCoupling) {
  // With the upper layer solved to focus, U(o) ~= coupling_gain, so the
  // cascade measurement is the single-surface measurement scaled by it.
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const mts::LayerGraph graph(DeepSpecs(2, 1.3));
  const OtaLink flat(surface, QuietConfig());
  const OtaLink deep(graph, QuietConfig());
  ASSERT_EQ(deep.num_layers(), 2u);

  const auto schedule = FocusSchedule(flat, {80.0, 40.0}, 3);
  const auto upper_row = deep.UpperSteeringVector(1, 0);
  const auto focus = mts::SolveSingleTarget(
      upper_row, Complex{mts::ReachableMagnitude(upper_row), 0.0});
  const LayerSchedules upper{MtsSchedule(3, focus.codes)};

  std::vector<Complex> data(3, Complex{1.0, 0.0});
  Rng rng_a(37);
  Rng rng_b(37);
  const auto z_flat = flat.TransmitSequence(data, schedule, 0.0, rng_a);
  const auto z_deep = deep.TransmitSequence(data, schedule, upper, 0.0, rng_b);
  const std::vector<std::vector<mts::PhaseCode>> static_codes{focus.codes};
  const Complex factor = deep.UpperLayerFactor(0, static_codes);
  // The focused factor sits near coupling_gain (within quantization loss).
  EXPECT_NEAR(std::abs(factor), 1.3, 0.15);
  for (std::size_t i = 0; i < 3; ++i) {
    // Noise is drawn after the factor multiplies the signal, so the two
    // measurements differ by (factor - 1) * noise — absolute slack far
    // above the -200 dBm floor but far below the signal covers it.
    const Complex expected = factor * z_flat(0, i);
    EXPECT_LT(std::abs(z_deep(0, i) - expected),
              std::abs(expected) * 1e-9 + 1e-9);
  }
}

TEST(CascadeLinkTest, UpperLayersSwitchPerSymbol) {
  // Different upper configurations on different symbols must multiply each
  // symbol by its own factor (the upper layers are schedule-driven, not
  // static).
  const mts::LayerGraph graph(DeepSpecs(2, 1.0));
  const OtaLink deep(graph, QuietConfig());
  const auto schedule = FocusSchedule(deep, {80.0, 40.0}, 2);

  const auto upper_row = deep.UpperSteeringVector(1, 0);
  const auto focus = mts::SolveSingleTarget(
      upper_row, Complex{mts::ReachableMagnitude(upper_row), 0.0});
  std::vector<mts::PhaseCode> rotated = focus.codes;
  for (auto& code : rotated) {
    code = static_cast<mts::PhaseCode>((code + 1) % mts::kNumPhaseStates);
  }
  MtsSchedule upper_schedule;
  upper_schedule.push_back(focus.codes);
  upper_schedule.push_back(rotated);

  std::vector<Complex> data(2, Complex{1.0, 0.0});
  Rng rng(41);
  const auto z = deep.TransmitSequence(data, schedule,
                                       LayerSchedules{upper_schedule}, 0.0, rng);
  const Complex f0 =
      deep.UpperLayerFactor(0, std::vector<std::vector<mts::PhaseCode>>{focus.codes});
  const Complex f1 = deep.UpperLayerFactor(
      0, std::vector<std::vector<mts::PhaseCode>>{rotated});
  // Rotating every code by one state multiplies the sum by e^{j pi/2}: the
  // factors are distinct but equal in magnitude, and the per-symbol ratio
  // of the measurements must match the factor ratio.
  EXPECT_GT(std::abs(f0 - f1), 0.1);
  const Complex measured_ratio = z(0, 1) / z(0, 0);
  const Complex factor_ratio = f1 / f0;
  EXPECT_LT(std::abs(measured_ratio - factor_ratio),
            1e-9 * std::abs(factor_ratio));
}

TEST(CascadeLinkTest, ValidatesCascadeArguments) {
  const mts::LayerGraph graph(DeepSpecs(2, 1.0));
  const OtaLink deep(graph, QuietConfig());
  const auto schedule = FocusSchedule(deep, {80.0, 40.0}, 2);
  std::vector<Complex> data(2, Complex{1.0, 0.0});
  Rng rng(43);
  // Legacy 4-arg entry point requires a depth-1 link.
  EXPECT_THROW(deep.TransmitSequence(data, schedule, 0.0, rng), CheckError);
  // The cascade overload needs one schedule per upper layer, sized like
  // the data.
  EXPECT_THROW(deep.TransmitSequence(data, schedule, LayerSchedules{}, 0.0, rng),
               CheckError);
  const auto upper_row = deep.UpperSteeringVector(1, 0);
  const auto focus = mts::SolveSingleTarget(
      upper_row, Complex{mts::ReachableMagnitude(upper_row), 0.0});
  EXPECT_THROW(
      deep.TransmitSequence(data, schedule,
                            LayerSchedules{MtsSchedule(1, focus.codes)}, 0.0,
                            rng),
      CheckError);
}

}  // namespace
}  // namespace metaai::sim
