#include "sim/energy_model.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace metaai::sim {
namespace {

// The paper's MNIST rows use 28x28 = 784 pixels, AFHQ rows 2704 pixels.
constexpr std::size_t kMnistPixels = 784;
constexpr std::size_t kAfhqPixels = 2704;

TEST(EnergyModelTest, ReproducesTable2TransmissionColumn) {
  EnergyModel model;
  const auto cpu = model.DigitalRow("CPU", "LNN", kMnistPixels);
  EXPECT_NEAR(cpu.transmission_ms, 0.157, 0.002);
  EXPECT_NEAR(cpu.transmission_mj, 0.856, 0.01);
  const auto metaai = model.MetaAiRow(kMnistPixels, 10, 5);
  EXPECT_NEAR(metaai.transmission_ms, 1.568, 0.001);
  EXPECT_NEAR(metaai.transmission_mj, 8.561, 0.05);
}

TEST(EnergyModelTest, ReproducesTable2ServerColumns) {
  EnergyModel model;
  const auto cpu_resnet = model.DigitalRow("CPU", "ResNet-18", kMnistPixels);
  EXPECT_NEAR(cpu_resnet.server_compute_ms, 7.71, 0.1);
  EXPECT_NEAR(cpu_resnet.server_compute_mj, 227.37, 5.0);
  const auto gpu_lnn = model.DigitalRow("4080 GPU", "LNN", kMnistPixels);
  EXPECT_NEAR(gpu_lnn.server_compute_ms, 3.99, 0.05);
  EXPECT_NEAR(gpu_lnn.server_compute_mj, 124.7, 3.0);
}

TEST(EnergyModelTest, ReproducesTable2MtsEnergy) {
  EnergyModel model;
  const auto metaai = model.MetaAiRow(kMnistPixels, 10, 5);
  EXPECT_NEAR(metaai.mts_mj, 2.353, 0.05);
  EXPECT_NEAR(metaai.total_mj, 10.92, 0.2);
  EXPECT_NEAR(metaai.total_ms, 1.581, 0.01);
}

TEST(EnergyModelTest, ReproducesTable3AfhqRows) {
  EnergyModel model;
  const auto cpu_lnn = model.DigitalRow("CPU", "LNN", kAfhqPixels);
  EXPECT_NEAR(cpu_lnn.server_compute_ms, 4.621, 0.1);
  // Note: the paper's 0.901 ms implies ~4.5 kB raw images (its AFHQ crop
  // is larger than the 2704-pixel count implied by its MetaAI row); our
  // model uses the consistent 2704-pixel value.
  EXPECT_NEAR(cpu_lnn.transmission_ms, 0.541, 0.002);
  const auto metaai = model.MetaAiRow(kAfhqPixels, 3, 3);
  EXPECT_NEAR(metaai.transmission_ms, 2.704, 0.001);
  EXPECT_NEAR(metaai.mts_mj, 4.054, 0.06);
  EXPECT_NEAR(metaai.total_mj, 18.82, 0.5);
}

TEST(EnergyModelTest, MetaAiWinsOnEnergyAndLatencyShape) {
  // The headline claims: MetaAI total energy ~5.8x below the best digital
  // baseline (CPU LNN) and ~16.7x below GPU ResNet-18 on MNIST; total
  // latency below the CPU LNN pipeline.
  EnergyModel model;
  const auto metaai = model.MetaAiRow(kMnistPixels, 10, 5);
  const auto cpu_lnn = model.DigitalRow("CPU", "LNN", kMnistPixels);
  const auto gpu_resnet =
      model.DigitalRow("4080 GPU", "ResNet-18", kMnistPixels);
  EXPECT_NEAR(cpu_lnn.total_mj / metaai.total_mj, 5.8, 0.6);
  EXPECT_NEAR(gpu_resnet.total_mj / metaai.total_mj, 16.7, 1.5);
  EXPECT_LT(metaai.total_ms, cpu_lnn.total_ms);
  // Server-side compute is orders of magnitude below any digital row.
  EXPECT_LT(metaai.server_compute_mj * 1000.0, cpu_lnn.server_compute_mj);
}

TEST(EnergyModelTest, MoreParallelismMeansFewerRounds) {
  EnergyModel model;
  const auto serial = model.MetaAiRow(256, 10, 1);
  const auto parallel = model.MetaAiRow(256, 10, 10);
  EXPECT_NEAR(serial.transmission_ms / parallel.transmission_ms, 10.0, 1e-9);
  EXPECT_GT(serial.mts_mj, parallel.mts_mj);
}

TEST(EnergyModelTest, ValidatesArguments) {
  EnergyModel model;
  EXPECT_THROW(model.DigitalRow("TPU", "LNN", 100), CheckError);
  EXPECT_THROW(model.DigitalRow("CPU", "VGG", 100), CheckError);
  EXPECT_THROW(model.DigitalRow("CPU", "LNN", 0), CheckError);
  EXPECT_THROW(model.MetaAiRow(100, 10, 11), CheckError);
  EXPECT_THROW(model.MetaAiRow(100, 0, 1), CheckError);
}

}  // namespace
}  // namespace metaai::sim
