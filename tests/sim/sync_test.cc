#include "sim/sync.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "fault/injector.h"

namespace metaai::sim {
namespace {

TEST(SyncTest, ModeNamesMatchFig16Labels) {
  EXPECT_EQ(SyncModeName(SyncMode::kNone), "w/o sync");
  EXPECT_EQ(SyncModeName(SyncMode::kCoarse), "CD");
  EXPECT_EQ(SyncModeName(SyncMode::kCdfa), "CDFA");
}

TEST(SyncTest, UnsyncedErrorsAreLargeAndUniform) {
  SyncModel model(SyncMode::kNone);
  Rng rng(1);
  std::vector<double> offsets(20000);
  for (double& o : offsets) o = model.SampleOffsetUs(rng);
  EXPECT_GE(Min(offsets), 0.0);
  EXPECT_LE(Max(offsets), 64.0);
  EXPECT_NEAR(Mean(offsets), 32.0, 1.0);
}

TEST(SyncTest, CoarseErrorsFollowFig12Distribution) {
  SyncModel model(SyncMode::kCoarse);
  Rng rng(2);
  std::vector<double> offsets(20000);
  for (double& o : offsets) o = model.SampleOffsetUs(rng);
  // 51.7% of coarse-detection errors exceed 3 us (Fig 12).
  EXPECT_NEAR(FractionAbove(offsets, 3.0), 0.517, 0.03);
}

TEST(SyncTest, CdfaSharesTheCoarsePhysicalDistribution) {
  // CDFA improves robustness through training, not through a better
  // physical trigger: same offset statistics as coarse detection.
  Rng rng_a(3);
  Rng rng_b(3);
  SyncModel coarse(SyncMode::kCoarse);
  SyncModel cdfa(SyncMode::kCdfa);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(coarse.SampleOffsetUs(rng_a),
                     cdfa.SampleOffsetUs(rng_b));
  }
}

TEST(SyncTest, ConfigurableUnsyncedRange) {
  SyncModel model(SyncMode::kNone, {.unsynced_max_error_us = 8.0});
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(model.SampleOffsetUs(rng), 8.0);
  }
}

TEST(SyncTest, FaultBurstPerturbsSomeFramesWithinBounds) {
  SyncModelConfig config;
  config.faults = std::make_shared<const fault::FaultInjector>(
      fault::TryParseFaultSpec("burst=0.2:15,seed=5").value(), 256);
  SyncModel bursty(SyncMode::kCoarse, config);
  SyncModel clean(SyncMode::kCoarse);
  Rng rng_a(7);
  Rng rng_b(7);
  int bursts = 0;
  const int frames = 5000;
  for (int i = 0; i < frames; ++i) {
    const double with = bursty.SampleOffsetUs(rng_a);
    const double without = clean.SampleOffsetUs(rng_b);
    const double extra = with - without;
    EXPECT_LE(std::abs(extra), 15.0 + 1e-12);
    if (extra != 0.0) ++bursts;
    // The burst draw shifts rng_a relative to rng_b; resync both
    // streams so the comparison stays frame-aligned.
    rng_b = rng_a;
  }
  const double rate = static_cast<double>(bursts) / frames;
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(SyncTest, InactiveFaultPlanLeavesStreamsUntouched) {
  // A wired injector whose burst model is off must not consume draws or
  // change any sampled offset.
  SyncModelConfig config;
  config.faults = std::make_shared<const fault::FaultInjector>(
      fault::TryParseFaultSpec("stuck=0.1,seed=5").value(), 256);
  SyncModel wired(SyncMode::kCoarse, config);
  SyncModel clean(SyncMode::kCoarse);
  Rng rng_a(9);
  Rng rng_b(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_DOUBLE_EQ(wired.SampleOffsetUs(rng_a), clean.SampleOffsetUs(rng_b));
  }
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

TEST(SyncTest, ValidatesConfig) {
  EXPECT_THROW(SyncModel(SyncMode::kNone, {.unsynced_max_error_us = 0.0}),
               CheckError);
}

}  // namespace
}  // namespace metaai::sim
