#include "fault/plan.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/result.h"

namespace metaai::fault {
namespace {

TEST(FaultPlanTest, EmptySpecIsHealthy) {
  const FaultPlan plan = TryParseFaultSpec("").value();
  EXPECT_FALSE(plan.Any());
  EXPECT_EQ(plan.seed, 1u);
}

TEST(FaultPlanTest, ParsesEveryModel) {
  const FaultPlan plan =
      TryParseFaultSpec(
          "stuck=0.1,chain=1e-4,drift=0.5,age=30,burst=0.05:20,seed=7")
          .value();
  EXPECT_TRUE(plan.Any());
  EXPECT_DOUBLE_EQ(plan.stuck.fraction, 0.1);
  EXPECT_DOUBLE_EQ(plan.chain.bit_flip_prob, 1e-4);
  EXPECT_DOUBLE_EQ(plan.drift.rate_std_rad_per_s, 0.5);
  EXPECT_DOUBLE_EQ(plan.drift.age_s, 30.0);
  EXPECT_DOUBLE_EQ(plan.burst.probability, 0.05);
  EXPECT_DOUBLE_EQ(plan.burst.max_extra_us, 20.0);
  EXPECT_EQ(plan.seed, 7u);
}

TEST(FaultPlanTest, DriftWithoutAgeGetsDefaultHorizon) {
  const FaultPlan plan = TryParseFaultSpec("drift=0.2").value();
  EXPECT_DOUBLE_EQ(plan.drift.age_s, 60.0);
  EXPECT_TRUE(plan.Any());
}

TEST(FaultPlanTest, SpecStringRoundTrips) {
  const FaultPlan plan =
      TryParseFaultSpec(
          "stuck=0.25,chain=0.001,drift=0.5,age=45,burst=0.1:8,seed=42")
          .value();
  const FaultPlan again = TryParseFaultSpec(FaultSpecString(plan)).value();
  EXPECT_DOUBLE_EQ(again.stuck.fraction, plan.stuck.fraction);
  EXPECT_DOUBLE_EQ(again.chain.bit_flip_prob, plan.chain.bit_flip_prob);
  EXPECT_DOUBLE_EQ(again.drift.rate_std_rad_per_s,
                   plan.drift.rate_std_rad_per_s);
  EXPECT_DOUBLE_EQ(again.drift.age_s, plan.drift.age_s);
  EXPECT_DOUBLE_EQ(again.burst.probability, plan.burst.probability);
  EXPECT_DOUBLE_EQ(again.burst.max_extra_us, plan.burst.max_extra_us);
  EXPECT_EQ(again.seed, plan.seed);
}

// Malformed syntax comes back as kParseError, out-of-range values as
// kInvalidArgument — one assertion per distinct error path.
TEST(FaultPlanTest, MalformedSpecsAreParseErrors) {
  for (const char* spec : {"stuck", "burst=0.1", "wearout=1", "stuck=abc",
                           "seed=abc", "burst=x:1"}) {
    const Result<FaultPlan> result = TryParseFaultSpec(spec);
    ASSERT_FALSE(result.ok()) << spec;
    EXPECT_EQ(result.error().code, ErrorCode::kParseError) << spec;
  }
}

TEST(FaultPlanTest, OutOfRangeValuesAreInvalidArguments) {
  for (const char* spec :
       {"stuck=1.5", "chain=-0.1", "drift=-1", "age=-5", "burst=2:10",
        "burst=0.1:-3"}) {
    const Result<FaultPlan> result = TryParseFaultSpec(spec);
    ASSERT_FALSE(result.ok()) << spec;
    EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument) << spec;
  }
}

}  // namespace
}  // namespace metaai::fault
