// Regression tests for the controller-shape reconciliation: the default
// ControllerConfig describes the 256-atom/16-group prototype, and the
// injector used to apply that group-major layout verbatim to any panel,
// skewing the corruption geometry for non-16x16 shapes.
#include "fault/injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "mts/controller.h"

namespace metaai::fault {
namespace {

FaultPlan ChainPlan(double bit_flip_prob) {
  FaultPlan plan;
  plan.seed = 5;
  plan.chain.bit_flip_prob = bit_flip_prob;
  return plan;
}

TEST(FaultInjectorShapeTest, DefaultControllerReconcilesToPanel) {
  // 96 atoms with the default (256/16) controller: 16 does not divide 96,
  // so the group count must round down to the nearest divisor instead of
  // leaving a 256-atom stream layout over a 96-atom panel.
  const FaultInjector injector(ChainPlan(0.01), 96);
  EXPECT_EQ(injector.num_atoms(), 96u);
  std::vector<mts::PhaseCode> codes(96, 0);
  Rng rng(7);
  // Every corrupted bit must land on a real atom; with the stale 256-atom
  // layout most positions fell beyond the panel and were dropped.
  std::size_t flipped = 0;
  for (int load = 0; load < 200; ++load) {
    std::vector<mts::PhaseCode> pattern = codes;
    flipped += injector.CorruptLoad(pattern, rng);
  }
  EXPECT_GT(flipped, 0u);
}

TEST(FaultInjectorShapeTest, CorruptionRateMatchesPanelSize) {
  // With the layout reconciled, the expected flip count is
  // p * atoms * 2 bits regardless of the panel shape.
  constexpr double kProb = 0.05;
  constexpr std::size_t kAtoms = 96;
  const FaultInjector injector(ChainPlan(kProb), kAtoms);
  Rng rng(11);
  std::size_t flipped = 0;
  constexpr int kLoads = 4000;
  for (int load = 0; load < kLoads; ++load) {
    std::vector<mts::PhaseCode> pattern(kAtoms, 0);
    flipped += injector.CorruptLoad(pattern, rng);
  }
  const double expected = kProb * static_cast<double>(kAtoms * 2 * kLoads);
  EXPECT_NEAR(static_cast<double>(flipped) / expected, 1.0, 0.1);
}

TEST(FaultInjectorShapeTest, ExplicitMatchingControllerIsUntouched) {
  // A caller-supplied controller that already matches the panel keeps its
  // exact group structure (including non-default group counts).
  mts::ControllerConfig controller;
  controller.num_atoms = 96;
  controller.num_groups = 8;
  const FaultInjector injector(ChainPlan(1.0), 96, controller);
  std::vector<mts::PhaseCode> codes(96, 0);
  Rng rng(13);
  // p = 1 flips every bit of every atom: full coverage proves the stream
  // layout addresses all 96 atoms.
  EXPECT_EQ(injector.CorruptLoad(codes, rng), 96u * 2u);
  for (const auto code : codes) {
    EXPECT_EQ(code, static_cast<mts::PhaseCode>(0b11));
  }
}

TEST(FaultInjectorShapeTest, PrototypeShapeKeepsDefaultController) {
  // The 256-atom prototype path is bit-compatible: same seed, same stuck
  // realization as before the reconciliation change.
  FaultPlan plan;
  plan.seed = 17;
  plan.stuck.fraction = 0.1;
  const FaultInjector injector(plan, 256);
  EXPECT_EQ(injector.num_stuck(), 26u);  // llround(0.1 * 256)
  const FaultInjector again(plan, 256);
  EXPECT_EQ(injector.stuck_atoms(), again.stuck_atoms());
}

}  // namespace
}  // namespace metaai::fault
