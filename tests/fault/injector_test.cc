#include "fault/injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "mts/meta_atom.h"

namespace metaai::fault {
namespace {

constexpr std::size_t kAtoms = 256;

TEST(FaultInjectorTest, StuckRealizationIsDeterministic) {
  const FaultPlan plan = TryParseFaultSpec("stuck=0.1,seed=7").value();
  const FaultInjector a(plan, kAtoms);
  const FaultInjector b(plan, kAtoms);
  ASSERT_EQ(a.stuck_atoms(), b.stuck_atoms());
  for (const std::size_t m : a.stuck_atoms()) {
    EXPECT_EQ(a.pinned_code(m), b.pinned_code(m));
  }
  // A different seed realizes a different stuck set (overwhelmingly).
  FaultPlan other = plan;
  other.seed = 8;
  const FaultInjector c(other, kAtoms);
  EXPECT_NE(a.stuck_atoms(), c.stuck_atoms());
}

TEST(FaultInjectorTest, StuckCountMatchesFraction) {
  const FaultInjector inj(TryParseFaultSpec("stuck=0.1,seed=3").value(), kAtoms);
  EXPECT_EQ(inj.num_stuck(),
            static_cast<std::size_t>(std::llround(0.1 * kAtoms)));
  EXPECT_TRUE(inj.AffectsPatterns());
  const auto mask = inj.HealthyMask();
  std::size_t healthy = 0;
  for (const auto h : mask) healthy += h;
  EXPECT_EQ(healthy, kAtoms - inj.num_stuck());
}

TEST(FaultInjectorTest, ApplyStuckPinsCodes) {
  const FaultInjector inj(TryParseFaultSpec("stuck=0.2,seed=5").value(), kAtoms);
  std::vector<mts::PhaseCode> codes(kAtoms, 1);
  const std::size_t changed = inj.ApplyStuck(codes);
  // Pinned codes are uniform over 4 states, so ~1/4 of stuck atoms
  // already held code 1; every other stuck atom must change.
  EXPECT_GT(changed, 0u);
  EXPECT_LE(changed, inj.num_stuck());
  for (const std::size_t m : inj.stuck_atoms()) {
    EXPECT_EQ(codes[m], inj.pinned_code(m));
  }
  // Healthy atoms untouched.
  const auto mask = inj.HealthyMask();
  for (std::size_t m = 0; m < kAtoms; ++m) {
    if (mask[m] != 0) {
      EXPECT_EQ(codes[m], 1);
    }
  }
  // Re-applying is idempotent.
  std::vector<mts::PhaseCode> again = codes;
  EXPECT_EQ(inj.ApplyStuck(again), 0u);
  EXPECT_EQ(again, codes);
}

TEST(FaultInjectorTest, CorruptLoadIsDeterministicPerStream) {
  const FaultInjector inj(TryParseFaultSpec("chain=0.01,seed=2").value(), kAtoms);
  std::vector<mts::PhaseCode> a(kAtoms, 2);
  std::vector<mts::PhaseCode> b(kAtoms, 2);
  Rng rng_a(11);
  Rng rng_b(11);
  EXPECT_EQ(inj.CorruptLoad(a, rng_a), inj.CorruptLoad(b, rng_b));
  EXPECT_EQ(a, b);
}

TEST(FaultInjectorTest, CorruptLoadMatchesBernoulliRate) {
  // Geometric skipping must reproduce the per-bit Bernoulli flip rate:
  // over many loads the mean flip count converges to p * bits.
  const double p = 0.02;
  const FaultInjector inj(TryParseFaultSpec("chain=0.02,seed=2").value(), kAtoms);
  Rng rng(13);
  const int loads = 2000;
  const double bits = static_cast<double>(kAtoms * 2);
  std::size_t flips = 0;
  for (int i = 0; i < loads; ++i) {
    std::vector<mts::PhaseCode> codes(kAtoms, 0);
    flips += inj.CorruptLoad(codes, rng);
  }
  const double mean = static_cast<double>(flips) / loads;
  const double expected = p * bits;  // 10.24
  // 5-sigma band of the per-load Binomial(bits, p) mean.
  const double sigma = std::sqrt(bits * p * (1 - p) / loads);
  EXPECT_NEAR(mean, expected, 5.0 * sigma);
}

TEST(FaultInjectorTest, InactiveChainDrawsNothing) {
  const FaultInjector inj(TryParseFaultSpec("stuck=0.1,seed=4").value(), kAtoms);
  std::vector<mts::PhaseCode> codes(kAtoms, 0);
  Rng rng(17);
  Rng untouched(17);
  EXPECT_EQ(inj.CorruptLoad(codes, rng), 0u);
  // The stream must not have advanced when the model is off.
  EXPECT_EQ(rng.Next(), untouched.Next());
}

TEST(FaultInjectorTest, CertainCorruptionFlipsEveryBit) {
  const FaultInjector inj(TryParseFaultSpec("chain=1,seed=4").value(), kAtoms);
  std::vector<mts::PhaseCode> codes(kAtoms, 1);
  Rng rng(19);
  EXPECT_EQ(inj.CorruptLoad(codes, rng), kAtoms * 2);
  for (const auto code : codes) EXPECT_EQ(code, 1 ^ 3);
}

TEST(FaultInjectorTest, DriftPhasorsAreUnitAndDeterministic) {
  const FaultPlan plan = TryParseFaultSpec("drift=0.01,age=60,seed=9").value();
  const FaultInjector a(plan, kAtoms);
  const FaultInjector b(plan, kAtoms);
  ASSERT_TRUE(a.HasDrift());
  EXPECT_EQ(a.drift_phasors(), b.drift_phasors());
  bool any_rotated = false;
  for (const auto& ph : a.drift_phasors()) {
    EXPECT_NEAR(std::abs(ph), 1.0, 1e-12);
    if (std::abs(ph - std::complex<double>{1.0, 0.0}) > 1e-6) {
      any_rotated = true;
    }
  }
  EXPECT_TRUE(any_rotated);
  // Without drift the phasors are exactly identity.
  const FaultInjector none(TryParseFaultSpec("stuck=0.1,seed=9").value(), kAtoms);
  for (const auto& ph : none.drift_phasors()) {
    EXPECT_EQ(ph, (std::complex<double>{1.0, 0.0}));
  }
}

TEST(FaultInjectorTest, StuckSetIndependentOfDriftModel) {
  // Fork order is fixed: enabling drift must not move the stuck set.
  const FaultInjector bare(TryParseFaultSpec("stuck=0.1,seed=21").value(), kAtoms);
  const FaultInjector with_drift(
      TryParseFaultSpec("stuck=0.1,drift=0.5,age=10,seed=21").value(), kAtoms);
  EXPECT_EQ(bare.stuck_atoms(), with_drift.stuck_atoms());
}

TEST(FaultInjectorTest, SyncBurstRespectsProbabilityAndRange) {
  const FaultInjector inj(TryParseFaultSpec("burst=0.25:20,seed=6").value(), kAtoms);
  Rng rng(23);
  int bursts = 0;
  const int frames = 4000;
  for (int i = 0; i < frames; ++i) {
    const double offset = inj.SyncBurstOffsetUs(rng);
    EXPECT_LE(std::abs(offset), 20.0);
    if (offset != 0.0) ++bursts;
  }
  const double rate = static_cast<double>(bursts) / frames;
  EXPECT_NEAR(rate, 0.25, 0.04);

  // Inactive model: zero offset, zero draws.
  const FaultInjector none(TryParseFaultSpec("stuck=0.1,seed=6").value(), kAtoms);
  Rng a(29);
  Rng b(29);
  EXPECT_EQ(none.SyncBurstOffsetUs(a), 0.0);
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(FaultInjectorTest, FixedDrawCountPerBurstSample) {
  // The burst model consumes the same number of draws whether or not it
  // triggers, so downstream consumers of the stream see stable offsets.
  const FaultInjector inj(TryParseFaultSpec("burst=0.5:10,seed=8").value(), kAtoms);
  Rng a(31);
  Rng b(31);
  (void)inj.SyncBurstOffsetUs(a);
  (void)b.Bernoulli(0.5);
  (void)b.Uniform(-10.0, 10.0);
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(FaultInjectorTest, RejectsMismatchedPatternSizes) {
  const FaultInjector inj(TryParseFaultSpec("stuck=0.1,seed=3").value(), kAtoms);
  std::vector<mts::PhaseCode> wrong(kAtoms - 1, 0);
  Rng rng(1);
  EXPECT_THROW(inj.ApplyStuck(wrong), CheckError);
  EXPECT_THROW(inj.CorruptLoad(wrong, rng), CheckError);
}

}  // namespace
}  // namespace metaai::fault
