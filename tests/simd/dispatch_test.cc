#include "simd/dispatch.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "common/check.h"

namespace metaai::simd {
namespace {

TEST(ParseLevelTest, OffAndScalarForceScalar) {
  for (const char* text : {"off", "scalar"}) {
    const Result<Level> parsed = ParseLevel(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value(), Level::kScalar) << text;
  }
}

TEST(ParseLevelTest, AutoResolvesToBestSupportedLevel) {
  const Result<Level> parsed = ParseLevel("auto");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), Avx2Supported() ? Level::kAvx2 : Level::kScalar);
}

TEST(ParseLevelTest, Avx2RequiresHardware) {
  const Result<Level> parsed = ParseLevel("avx2");
  if (Avx2Supported()) {
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), Level::kAvx2);
  } else {
    EXPECT_FALSE(parsed.ok());
  }
}

TEST(ParseLevelTest, RejectsUnknownLevels) {
  for (const char* text : {"", "sse", "avx512", "ON", "Auto", "0"}) {
    EXPECT_FALSE(ParseLevel(text).ok()) << "'" << text << "'";
  }
}

TEST(LevelNameTest, NamesRoundTripThroughParse) {
  EXPECT_EQ(std::string(LevelName(Level::kScalar)), "scalar");
  EXPECT_EQ(std::string(LevelName(Level::kAvx2)), "avx2");
  const Result<Level> scalar = ParseLevel(LevelName(Level::kScalar));
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(scalar.value(), Level::kScalar);
}

TEST(DispatchTest, ForceLevelOverridesAndRestores) {
  const Level ambient = ActiveLevel();
  ForceLevel(Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  ForceLevel(std::nullopt);
  EXPECT_EQ(ActiveLevel(), ambient);
}

TEST(DispatchTest, ScopedLevelNestsAndRestores) {
  const Level ambient = ActiveLevel();
  {
    ScopedLevel outer(Level::kScalar);
    EXPECT_EQ(ActiveLevel(), Level::kScalar);
    if (Avx2Supported()) {
      ScopedLevel inner(Level::kAvx2);
      EXPECT_EQ(ActiveLevel(), Level::kAvx2);
    }
    EXPECT_EQ(ActiveLevel(), Level::kScalar);
  }
  EXPECT_EQ(ActiveLevel(), ambient);
}

}  // namespace
}  // namespace metaai::simd
