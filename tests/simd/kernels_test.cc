// Scalar-vs-AVX2 parity suite for the dispatched hot-loop kernels.
//
// Per-kernel contract (simd/kernels.h):
//   * ButterflyPass and HardDecideQam are pure per-element arithmetic —
//     scalar and AVX2 must agree bitwise;
//   * PhasedSum and ComplexDot lane-parallelize a reduction — AVX2 may
//     reassociate the sum, so parity is pinned to a tight relative
//     envelope scaled by the magnitude sum (the worst reassociation
//     error is a few ulps of that scale).
// Shapes deliberately include 1..9 and other non-multiples of the
// 4-wide double lanes so the remainder loops are exercised.
#include "simd/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "simd/dispatch.h"

namespace metaai::simd {
namespace {

constexpr std::size_t kShapes[] = {1,  2,  3,  4,   5,   6,   7,   8,
                                   9,  16, 31, 33,  64,  255, 256, 1000};

struct PhasedCase {
  std::vector<double> re;
  std::vector<double> im;
  std::vector<std::uint8_t> codes;
};

PhasedCase MakePhasedCase(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  PhasedCase c;
  c.re.resize(n);
  c.im.resize(n);
  c.codes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    c.re[i] = rng.Normal();
    c.im[i] = rng.Normal();
    c.codes[i] = static_cast<std::uint8_t>(rng.UniformInt(std::uint64_t{4}));
  }
  return c;
}

/// Reassociation envelope for a lane-parallelized reduction: a few ulps
/// of the sum of term magnitudes.
void ExpectReductionParity(Complex got, Complex want, double scale) {
  const double tol = 4.0 * 2.220446049250313e-16 * scale;  // 4 ulps of scale
  EXPECT_NEAR(got.real(), want.real(), tol);
  EXPECT_NEAR(got.imag(), want.imag(), tol);
}

TEST(PhasedSumParityTest, DispatchMatchesScalarAcrossShapes) {
  for (const std::size_t n : kShapes) {
    const PhasedCase c = MakePhasedCase(n, 0x51ED0000 + n);
    const Complex scalar =
        PhasedSumScalar(c.re.data(), c.im.data(), c.codes.data(), n);
    double scale = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      scale += std::abs(c.re[i]) + std::abs(c.im[i]);
    }
    {
      ScopedLevel force(Level::kScalar);
      const Complex got =
          PhasedSum(c.re.data(), c.im.data(), c.codes.data(), n);
      // Fixed scalar level is the pre-SIMD loop: bitwise.
      EXPECT_EQ(got, scalar) << "n=" << n;
    }
    if (Avx2Supported()) {
      ScopedLevel force(Level::kAvx2);
      const Complex got =
          PhasedSum(c.re.data(), c.im.data(), c.codes.data(), n);
      ExpectReductionParity(got, scalar, scale);
    }
  }
}

TEST(PhasedSumParityTest, MaskedZeroEntriesAreAdditiveIdentities) {
  // The solver encodes masked atoms as zeroed SoA entries; the sum must
  // equal the skip-loop over the unmasked subset, bitwise at a fixed
  // scalar level (±0.0 adds never perturb the accumulator).
  const std::size_t n = 33;
  PhasedCase c = MakePhasedCase(n, 0xA5A5);
  std::vector<double> re_sub, im_sub;
  std::vector<std::uint8_t> codes_sub;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      c.re[i] = 0.0;
      c.im[i] = 0.0;
    } else {
      re_sub.push_back(c.re[i]);
      im_sub.push_back(c.im[i]);
      codes_sub.push_back(c.codes[i]);
    }
  }
  const Complex masked =
      PhasedSumScalar(c.re.data(), c.im.data(), c.codes.data(), n);
  const Complex skipped = PhasedSumScalar(re_sub.data(), im_sub.data(),
                                          codes_sub.data(), re_sub.size());
  EXPECT_EQ(masked, skipped);
}

TEST(ComplexDotParityTest, DispatchMatchesScalarAcrossShapes) {
  for (const std::size_t n : kShapes) {
    Rng rng(0xD07 + n);
    std::vector<Complex> a(n), b(n);
    double scale = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = Complex(rng.Normal(), rng.Normal());
      b[i] = Complex(rng.Normal(), rng.Normal());
      scale += std::abs(a[i]) * std::abs(b[i]);
    }
    const Complex scalar = ComplexDotScalar(a.data(), b.data(), n);
    {
      ScopedLevel force(Level::kScalar);
      EXPECT_EQ(ComplexDot(a.data(), b.data(), n), scalar) << "n=" << n;
    }
    if (Avx2Supported()) {
      ScopedLevel force(Level::kAvx2);
      ExpectReductionParity(ComplexDot(a.data(), b.data(), n), scalar, scale);
    }
  }
}

TEST(ButterflyPassParityTest, DispatchIsBitwiseAcrossShapes) {
  for (const std::size_t n : kShapes) {
    for (const bool inverse : {false, true}) {
      Rng rng(0xBF17 + n);
      std::vector<Complex> even(n), odd(n), twiddles(n);
      for (std::size_t i = 0; i < n; ++i) {
        even[i] = Complex(rng.Normal(), rng.Normal());
        odd[i] = Complex(rng.Normal(), rng.Normal());
        const double angle = rng.Uniform(0.0, 6.283185307179586);
        twiddles[i] = Complex(std::cos(angle), std::sin(angle));
      }
      std::vector<Complex> even_s = even, odd_s = odd;
      ButterflyPassScalar(even_s.data(), odd_s.data(), twiddles.data(), n,
                          inverse);
      for (const Level level : {Level::kScalar, Level::kAvx2}) {
        if (level == Level::kAvx2 && !Avx2Supported()) continue;
        std::vector<Complex> even_d = even, odd_d = odd;
        ScopedLevel force(level);
        ButterflyPass(even_d.data(), odd_d.data(), twiddles.data(), n,
                      inverse);
        // Per-element arithmetic: bitwise across dispatch paths.
        EXPECT_EQ(even_d, even_s) << "n=" << n << " level=" << LevelName(level)
                                  << " inverse=" << inverse;
        EXPECT_EQ(odd_d, odd_s) << "n=" << n << " level=" << LevelName(level)
                                << " inverse=" << inverse;
      }
    }
  }
}

TEST(HardDecideQamParityTest, DispatchIsBitwiseAcrossShapesAndOrders) {
  // levels/norm/half_bits per scheme: QPSK, 16QAM, 64QAM, 256QAM.
  struct Scheme {
    int levels;
    int half_bits;
  };
  for (const Scheme s :
       {Scheme{2, 1}, Scheme{4, 2}, Scheme{8, 3}, Scheme{16, 4}}) {
    const double levels_sq = static_cast<double>(s.levels) *
                             static_cast<double>(s.levels);
    const double norm = std::sqrt(2.0 / 3.0 * (levels_sq - 1.0));
    for (const std::size_t n : kShapes) {
      Rng rng(0x9A3 + n * 31 + static_cast<std::size_t>(s.levels));
      std::vector<Complex> symbols(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Spread beyond the constellation so the clamp paths run too.
        symbols[i] = Complex(rng.Normal(0.0, 1.5), rng.Normal(0.0, 1.5));
      }
      std::vector<std::uint32_t> scalar(n), dispatched(n);
      HardDecideQamScalar(symbols.data(), n, s.levels, norm, s.half_bits,
                          scalar.data());
      for (const Level level : {Level::kScalar, Level::kAvx2}) {
        if (level == Level::kAvx2 && !Avx2Supported()) continue;
        ScopedLevel force(level);
        HardDecideQam(symbols.data(), n, s.levels, norm, s.half_bits,
                      dispatched.data());
        EXPECT_EQ(dispatched, scalar)
            << "levels=" << s.levels << " n=" << n
            << " level=" << LevelName(level);
      }
    }
  }
}

TEST(KernelDeterminismTest, RepeatedCallsAreBitwiseStable) {
  const std::size_t n = 255;
  const PhasedCase c = MakePhasedCase(n, 0xDE7);
  for (const Level level : {Level::kScalar, Level::kAvx2}) {
    if (level == Level::kAvx2 && !Avx2Supported()) continue;
    ScopedLevel force(level);
    const Complex first =
        PhasedSum(c.re.data(), c.im.data(), c.codes.data(), n);
    for (int rep = 0; rep < 8; ++rep) {
      EXPECT_EQ(PhasedSum(c.re.data(), c.im.data(), c.codes.data(), n), first)
          << LevelName(level);
    }
  }
}

TEST(SoaComplexTest, AssignSplitsPlanes) {
  SoaComplex soa;
  const std::vector<Complex> values = {{1.0, -2.0}, {0.5, 3.0}, {-4.0, 0.0}};
  soa.Assign(values);
  ASSERT_EQ(soa.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(soa.re[i], values[i].real());
    EXPECT_EQ(soa.im[i], values[i].imag());
  }
}

}  // namespace
}  // namespace metaai::simd
