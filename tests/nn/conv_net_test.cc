#include "nn/conv_net.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace metaai::nn {
namespace {

// Tiny image task: class 0 = bright top half, class 1 = bright bottom
// half, class 2 = bright left half, with pixel noise.
RealDataset MakeImageDataset(std::size_t per_class, double noise, Rng& rng) {
  RealDataset ds;
  ds.num_classes = 3;
  ds.dim = 16 * 16;
  for (int c = 0; c < 3; ++c) {
    for (std::size_t s = 0; s < per_class; ++s) {
      std::vector<double> img(256, 0.0);
      for (std::size_t y = 0; y < 16; ++y) {
        for (std::size_t x = 0; x < 16; ++x) {
          const bool bright = (c == 0 && y < 8) || (c == 1 && y >= 8) ||
                              (c == 2 && x < 8);
          img[y * 16 + x] =
              (bright ? 1.0 : 0.0) + rng.Normal(0.0, noise);
        }
      }
      ds.features.push_back(std::move(img));
      ds.labels.push_back(c);
    }
  }
  return ds;
}

ConvNetConfig SmallConfig() {
  return {.height = 16,
          .width = 16,
          .conv1_channels = 4,
          .conv2_channels = 8,
          .hidden = 32,
          .num_classes = 3};
}

TEST(ConvNetTest, ParameterAndMacCountsAreConsistent) {
  ConvNet net(SmallConfig());
  // conv1: 4*1*9 + 4; conv2: 8*4*9 + 8; fc1: 32*(8*4*4) + 32;
  // fc2: 3*32 + 3.
  const std::size_t expected = (4 * 9 + 4) + (8 * 4 * 9 + 8) +
                               (32 * 128 + 32) + (3 * 32 + 3);
  EXPECT_EQ(net.ParameterCount(), expected);
  const std::size_t macs = 4 * 256 * 9 + 8 * 64 * 9 * 4 + 32 * 128 + 3 * 32;
  EXPECT_EQ(net.ForwardMacs(), macs);
}

TEST(ConvNetTest, LogitsHaveClassCount) {
  Rng rng(1);
  ConvNet net(SmallConfig());
  net.Initialize(rng);
  std::vector<double> img(256, 0.5);
  EXPECT_EQ(net.Logits(img).size(), 3u);
}

TEST(ConvNetTest, LearnsSimpleSpatialTask) {
  Rng rng(2);
  const auto train = MakeImageDataset(60, 0.2, rng);
  const auto test = MakeImageDataset(20, 0.2, rng);
  ConvNet net(SmallConfig());
  net.Initialize(rng);
  net.Train(train, {.epochs = 10, .batch_size = 16}, rng);
  EXPECT_GT(net.Evaluate(test), 0.95);
}

TEST(ConvNetTest, TrainingReducesLoss) {
  Rng rng(3);
  const auto train = MakeImageDataset(40, 0.3, rng);
  ConvNet net(SmallConfig());
  net.Initialize(rng);
  const double first = net.Train(train, {.epochs = 1, .batch_size = 16}, rng);
  const double later = net.Train(train, {.epochs = 8, .batch_size = 16}, rng);
  EXPECT_LT(later, first);
}

TEST(ConvNetTest, DeterministicGivenSeed) {
  const auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    auto train = MakeImageDataset(10, 0.2, rng);
    ConvNet net(SmallConfig());
    net.Initialize(rng);
    net.Train(train, {.epochs = 2, .batch_size = 8}, rng);
    std::vector<double> probe(256, 0.3);
    return net.Logits(probe);
  };
  const auto a = run(7);
  const auto b = run(7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ConvNetTest, ValidatesConfigAndInputs) {
  ConvNetConfig bad = SmallConfig();
  bad.height = 15;
  EXPECT_THROW(ConvNet{bad}, CheckError);
  ConvNetConfig zero = SmallConfig();
  zero.hidden = 0;
  EXPECT_THROW(ConvNet{zero}, CheckError);

  Rng rng(4);
  ConvNet net(SmallConfig());
  net.Initialize(rng);
  EXPECT_THROW(net.Logits(std::vector<double>(100)), CheckError);
  RealDataset wrong;
  wrong.num_classes = 3;
  wrong.dim = 100;
  wrong.features.push_back(std::vector<double>(100, 0.0));
  wrong.labels.push_back(0);
  EXPECT_THROW(net.Train(wrong, {}, rng), CheckError);
}

TEST(ConvNetTest, BeatsChanceOnNoisyTask) {
  Rng rng(5);
  const auto train = MakeImageDataset(50, 0.8, rng);
  const auto test = MakeImageDataset(30, 0.8, rng);
  ConvNet net(SmallConfig());
  net.Initialize(rng);
  // Lower learning rate: the heavy pixel noise makes the default step
  // size unstable on this tiny task.
  net.Train(train, {.epochs = 15, .batch_size = 16, .learning_rate = 0.01},
            rng);
  EXPECT_GT(net.Evaluate(test), 0.6);  // chance is 1/3
}

}  // namespace
}  // namespace metaai::nn
