#include "nn/metrics.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"

namespace metaai::nn {
namespace {

TEST(MetricsTest, AccuracyCountsMatches) {
  const std::vector<int> pred{0, 1, 2, 1};
  const std::vector<int> truth{0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(Accuracy(pred, truth), 0.75);
}

TEST(MetricsTest, AccuracyOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Accuracy(std::vector<int>{}, std::vector<int>{}), 0.0);
}

TEST(MetricsTest, AccuracyValidatesSizes) {
  EXPECT_THROW(Accuracy(std::vector<int>{1}, std::vector<int>{1, 2}),
               CheckError);
}

TEST(MetricsTest, ConfusionMatrixTallies) {
  const std::vector<int> pred{0, 1, 1, 2, 0};
  const std::vector<int> truth{0, 1, 2, 2, 1};
  const auto cm = ConfusionMatrix(pred, truth, 3);
  EXPECT_EQ(cm(0, 0), 1u);
  EXPECT_EQ(cm(1, 1), 1u);
  EXPECT_EQ(cm(1, 0), 1u);
  EXPECT_EQ(cm(2, 1), 1u);
  EXPECT_EQ(cm(2, 2), 1u);
  EXPECT_EQ(cm(0, 1), 0u);
}

TEST(MetricsTest, ConfusionMatrixRejectsOutOfRangeLabels) {
  const std::vector<int> pred{3};
  const std::vector<int> truth{0};
  EXPECT_THROW(ConfusionMatrix(pred, truth, 3), CheckError);
}

TEST(MetricsTest, PerClassRecallFromConfusion) {
  Matrix<std::size_t> cm(2, 2, 0);
  cm(0, 0) = 8;
  cm(0, 1) = 2;
  cm(1, 0) = 5;
  cm(1, 1) = 5;
  const auto recall = PerClassRecall(cm);
  EXPECT_DOUBLE_EQ(recall[0], 0.8);
  EXPECT_DOUBLE_EQ(recall[1], 0.5);
}

TEST(MetricsTest, PerClassRecallHandlesEmptyRows) {
  Matrix<std::size_t> cm(2, 2, 0);
  cm(0, 0) = 3;
  const auto recall = PerClassRecall(cm);
  EXPECT_DOUBLE_EQ(recall[0], 1.0);
  EXPECT_DOUBLE_EQ(recall[1], 0.0);
}

TEST(MetricsTest, PerClassRecallRequiresSquare) {
  Matrix<std::size_t> cm(2, 3, 0);
  EXPECT_THROW(PerClassRecall(cm), CheckError);
}

}  // namespace
}  // namespace metaai::nn
