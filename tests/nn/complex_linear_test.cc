#include "nn/complex_linear.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace metaai::nn {
namespace {

// A linearly separable complex task: per-class random prototype symbol
// vector plus complex noise. Train and test share the same prototypes.
struct SeparableTask {
  ComplexDataset train;
  ComplexDataset test;
};

SeparableTask MakeSeparableTask(std::size_t classes, std::size_t dim,
                                std::size_t train_per_class,
                                std::size_t test_per_class, double noise,
                                Rng& rng) {
  std::vector<std::vector<Complex>> prototypes(classes);
  for (auto& proto : prototypes) {
    proto.resize(dim);
    for (auto& v : proto) v = rng.UnitPhasor();
  }
  auto fill = [&](ComplexDataset& ds, std::size_t per_class) {
    ds.num_classes = classes;
    ds.dim = dim;
    for (std::size_t c = 0; c < classes; ++c) {
      for (std::size_t s = 0; s < per_class; ++s) {
        std::vector<Complex> x(dim);
        for (std::size_t i = 0; i < dim; ++i) {
          x[i] = prototypes[c][i] + rng.ComplexNormal(noise * noise);
        }
        ds.features.push_back(std::move(x));
        ds.labels.push_back(static_cast<int>(c));
      }
    }
  };
  SeparableTask task;
  fill(task.train, train_per_class);
  fill(task.test, test_per_class);
  return task;
}

ComplexDataset MakeSeparableDataset(std::size_t classes, std::size_t dim,
                                    std::size_t per_class, double noise,
                                    Rng& rng) {
  return MakeSeparableTask(classes, dim, per_class, 0, noise, rng).train;
}

TEST(ComplexLinearTest, SoftmaxSumsToOneAndOrdersScores) {
  const auto probs = SoftmaxScores({1.0, 3.0, 2.0});
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0, 1e-12);
  EXPECT_GT(probs[1], probs[2]);
  EXPECT_GT(probs[2], probs[0]);
}

TEST(ComplexLinearTest, SoftmaxIsShiftInvariantAndStable) {
  const auto a = SoftmaxScores({1.0, 2.0});
  const auto b = SoftmaxScores({1001.0, 1002.0});
  EXPECT_NEAR(a[0], b[0], 1e-12);
  EXPECT_NEAR(a[1], b[1], 1e-12);
  EXPECT_THROW(SoftmaxScores({}), CheckError);
}

TEST(ComplexLinearTest, PreActivationsAreLinear) {
  Rng rng(1);
  ComplexLinearModel model(4, 2);
  model.Initialize(rng);
  std::vector<Complex> x1(4), x2(4);
  for (std::size_t i = 0; i < 4; ++i) {
    x1[i] = rng.ComplexNormal(1.0);
    x2[i] = rng.ComplexNormal(1.0);
  }
  std::vector<Complex> sum(4);
  for (std::size_t i = 0; i < 4; ++i) sum[i] = x1[i] + 2.0 * x2[i];
  const auto z1 = model.PreActivations(x1);
  const auto z2 = model.PreActivations(x2);
  const auto zs = model.PreActivations(sum);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(std::abs(zs[r] - (z1[r] + 2.0 * z2[r])), 0.0, 1e-12);
  }
}

TEST(ComplexLinearTest, ClassScoresAreMagnitudes) {
  Rng rng(2);
  ComplexLinearModel model(3, 2);
  model.Initialize(rng);
  std::vector<Complex> x{Complex{1.0, 0.5}, Complex{-0.2, 0.1},
                         Complex{0.0, -1.0}};
  const auto z = model.PreActivations(x);
  const auto scores = model.ClassScores(x);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(scores[r], std::abs(z[r]));
  }
}

TEST(ComplexLinearTest, AnalyticGradientMatchesFiniteDifference) {
  // Validates the complex backprop formula dL/dW(r,i) = g_r (z_r/|z_r|)
  // conj(x_i) against numeric differentiation of the actual forward loss.
  Rng rng(3);
  constexpr std::size_t kDim = 3;
  constexpr std::size_t kClasses = 2;
  ComplexLinearModel model(kDim, kClasses);
  model.Initialize(rng);
  std::vector<Complex> x(kDim);
  for (auto& v : x) v = rng.ComplexNormal(1.0);
  const int label = 1;

  auto loss = [&](const ComplexLinearModel& m) {
    const auto probs = SoftmaxScores(m.ClassScores(x));
    return -std::log(probs[label]);
  };

  // Analytic gradient (the formula Train implements).
  const auto z = model.PreActivations(x);
  std::vector<double> mags(kClasses);
  for (std::size_t r = 0; r < kClasses; ++r) mags[r] = std::abs(z[r]);
  const auto probs = SoftmaxScores(mags);
  for (std::size_t r = 0; r < kClasses; ++r) {
    double g = probs[r] - (static_cast<int>(r) == label ? 1.0 : 0.0);
    const Complex direction = z[r] / mags[r];
    for (std::size_t i = 0; i < kDim; ++i) {
      const Complex analytic = g * direction * std::conj(x[i]);
      // Finite differences on real and imaginary parts.
      constexpr double kEps = 1e-6;
      ComplexLinearModel re_plus = model;
      re_plus.mutable_weights()(r, i) += Complex{kEps, 0.0};
      ComplexLinearModel re_minus = model;
      re_minus.mutable_weights()(r, i) -= Complex{kEps, 0.0};
      const double d_re = (loss(re_plus) - loss(re_minus)) / (2.0 * kEps);
      ComplexLinearModel im_plus = model;
      im_plus.mutable_weights()(r, i) += Complex{0.0, kEps};
      ComplexLinearModel im_minus = model;
      im_minus.mutable_weights()(r, i) -= Complex{0.0, kEps};
      const double d_im = (loss(im_plus) - loss(im_minus)) / (2.0 * kEps);
      EXPECT_NEAR(analytic.real(), d_re, 1e-5) << "r=" << r << " i=" << i;
      EXPECT_NEAR(analytic.imag(), d_im, 1e-5) << "r=" << r << " i=" << i;
    }
  }
}

TEST(ComplexLinearTest, LearnsSeparableTask) {
  Rng rng(4);
  const auto task = MakeSeparableTask(4, 16, 50, 20, 0.5, rng);
  ComplexLinearModel model(16, 4);
  model.Initialize(rng);
  const double loss =
      model.Train(task.train, {.epochs = 30, .batch_size = 16}, rng);
  EXPECT_LT(loss, 0.5);
  EXPECT_GT(model.Evaluate(task.test), 0.9);
}

TEST(ComplexLinearTest, TrainingReducesLoss) {
  Rng rng(5);
  const auto train = MakeSeparableDataset(3, 8, 40, 0.8, rng);
  ComplexLinearModel model(8, 3);
  model.Initialize(rng);
  const double early = model.Train(train, {.epochs = 1}, rng);
  const double later = model.Train(train, {.epochs = 20}, rng);
  EXPECT_LT(later, early);
}

TEST(ComplexLinearTest, AugmentationHookIsApplied) {
  Rng rng(6);
  const auto train = MakeSeparableDataset(2, 4, 10, 0.1, rng);
  ComplexLinearModel model(4, 2);
  model.Initialize(rng);
  int calls = 0;
  ComplexTrainOptions options;
  options.epochs = 2;
  options.input_augment = [&calls](std::vector<Complex>& x, Rng&) {
    ++calls;
    for (auto& v : x) v *= 1.0;  // no-op transform
  };
  model.Train(train, options, rng);
  EXPECT_EQ(calls, 2 * 20);  // epochs * samples
}

TEST(ComplexLinearTest, DeterministicGivenSeed) {
  const auto make = [](std::uint64_t seed) {
    Rng rng(seed);
    auto train = MakeSeparableDataset(3, 8, 30, 0.5, rng);
    ComplexLinearModel model(8, 3);
    model.Initialize(rng);
    model.Train(train, {.epochs = 5}, rng);
    return model;
  };
  const auto a = make(42);
  const auto b = make(42);
  EXPECT_TRUE(a.weights() == b.weights());
}

TEST(ComplexLinearTest, OutputNoiseDuringTrainingStillLearns) {
  Rng rng(7);
  const auto task = MakeSeparableTask(3, 16, 60, 20, 0.4, rng);
  ComplexLinearModel model(16, 3);
  model.Initialize(rng);
  ComplexTrainOptions options;
  options.epochs = 30;
  options.output_noise_variance = 0.5;
  model.Train(task.train, options, rng);
  EXPECT_GT(model.Evaluate(task.test), 0.85);
}

TEST(ComplexLinearTest, ValidatesDimensions) {
  Rng rng(8);
  ComplexLinearModel model(4, 2);
  model.Initialize(rng);
  EXPECT_THROW(model.PreActivations(std::vector<Complex>(3)), CheckError);
  ComplexDataset wrong = MakeSeparableDataset(2, 5, 4, 0.1, rng);
  EXPECT_THROW(model.Train(wrong, {}, rng), CheckError);
  EXPECT_THROW(model.Evaluate(wrong), CheckError);
  ComplexDataset ok = MakeSeparableDataset(2, 4, 4, 0.1, rng);
  ComplexTrainOptions bad_options;
  bad_options.epochs = 0;
  EXPECT_THROW(model.Train(ok, bad_options, rng), CheckError);
}

}  // namespace
}  // namespace metaai::nn
