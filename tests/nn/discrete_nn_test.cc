#include "nn/discrete_nn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "nn/complex_linear.h"

namespace metaai::nn {
namespace {

struct Task {
  ComplexDataset train;
  ComplexDataset test;
};

// Train/test share the per-class prototypes.
Task MakeTask(std::size_t classes, std::size_t dim,
              std::size_t train_per_class, std::size_t test_per_class,
              double noise, Rng& rng) {
  std::vector<std::vector<Complex>> prototypes(classes);
  for (auto& proto : prototypes) {
    proto.resize(dim);
    for (auto& v : proto) v = rng.ComplexNormal(1.0);
  }
  auto fill = [&](ComplexDataset& ds, std::size_t per_class) {
    ds.num_classes = classes;
    ds.dim = dim;
    for (std::size_t c = 0; c < classes; ++c) {
      for (std::size_t s = 0; s < per_class; ++s) {
        std::vector<Complex> x(dim);
        for (std::size_t i = 0; i < dim; ++i) {
          x[i] = prototypes[c][i] + rng.ComplexNormal(noise * noise);
        }
        ds.features.push_back(std::move(x));
        ds.labels.push_back(static_cast<int>(c));
      }
    }
  };
  Task task;
  fill(task.train, train_per_class);
  fill(task.test, test_per_class);
  return task;
}

ComplexDataset MakeDataset(std::size_t classes, std::size_t dim,
                           std::size_t per_class, double noise, Rng& rng) {
  return MakeTask(classes, dim, per_class, 0, noise, rng).train;
}

TEST(DiscreteNnTest, QuantizePhaseSnapsToFourStates) {
  EXPECT_NEAR(std::abs(QuantizePhase({3.0, 0.1}, 2.0) - Complex{2.0, 0.0}),
              0.0, 1e-12);
  EXPECT_NEAR(std::abs(QuantizePhase({0.1, 5.0}, 1.0) - Complex{0.0, 1.0}),
              0.0, 1e-12);
  EXPECT_NEAR(std::abs(QuantizePhase({-1.0, -0.1}, 1.0) - Complex{-1.0, 0.0}),
              0.0, 1e-12);
  EXPECT_NEAR(std::abs(QuantizePhase({0.05, -2.0}, 0.5) - Complex{0.0, -0.5}),
              0.0, 1e-12);
  // Zero weight maps to the zero-phase state.
  EXPECT_NEAR(std::abs(QuantizePhase({0.0, 0.0}, 1.0) - Complex{1.0, 0.0}),
              0.0, 1e-12);
}

TEST(DiscreteNnTest, QuantizedWeightsLieOnFourPhases) {
  Rng rng(1);
  DiscreteNnModel model(8, 3);
  model.Initialize(rng);
  const auto wq = model.QuantizedWeights();
  for (std::size_t r = 0; r < wq.rows(); ++r) {
    for (std::size_t c = 0; c < wq.cols(); ++c) {
      const Complex w = wq(r, c);
      const double mag = std::abs(w);
      EXPECT_GT(mag, 0.0);
      // Phase must be a multiple of pi/2.
      const double phase = std::arg(w);
      const double quarter = phase / (M_PI / 2.0);
      EXPECT_NEAR(quarter, std::round(quarter), 1e-9);
    }
  }
}

TEST(DiscreteNnTest, ScoresUseQuantizedWeights) {
  Rng rng(2);
  DiscreteNnModel model(4, 2);
  model.Initialize(rng);
  const auto wq = model.QuantizedWeights();
  std::vector<Complex> x(4);
  for (auto& v : x) v = rng.ComplexNormal(1.0);
  const auto scores = model.ClassScores(x);
  for (std::size_t r = 0; r < 2; ++r) {
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < 4; ++i) acc += wq(r, i) * x[i];
    EXPECT_NEAR(scores[r], std::abs(acc), 1e-12);
  }
}

TEST(DiscreteNnTest, LearnsEasyTaskDespiteQuantization) {
  Rng rng(3);
  const auto task = MakeTask(3, 32, 60, 20, 0.3, rng);
  DiscreteNnModel model(32, 3);
  model.Initialize(rng);
  model.Train(task.train, {.epochs = 40, .batch_size = 16}, rng);
  EXPECT_GT(model.Evaluate(task.test), 0.7);
}

TEST(DiscreteNnTest, UnderperformsContinuousModelOnHardTask) {
  // The Table 1 ordering: training constrained to the discrete domain
  // loses to continuous training on the same data.
  Rng rng(4);
  const auto task = MakeTask(5, 32, 80, 40, 1.2, rng);

  Rng rng_cont(10);
  ComplexLinearModel continuous(32, 5);
  continuous.Initialize(rng_cont);
  continuous.Train(task.train, {.epochs = 40, .batch_size = 16}, rng_cont);

  Rng rng_disc(10);
  DiscreteNnModel discrete(32, 5);
  discrete.Initialize(rng_disc);
  discrete.Train(task.train, {.epochs = 40, .batch_size = 16}, rng_disc);

  EXPECT_GT(continuous.Evaluate(task.test), discrete.Evaluate(task.test));
}

TEST(DiscreteNnTest, DeterministicGivenSeed) {
  const auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    auto train = MakeDataset(2, 8, 20, 0.5, rng);
    DiscreteNnModel model(8, 2);
    model.Initialize(rng);
    model.Train(train, {.epochs = 3}, rng);
    return model.QuantizedWeights();
  };
  EXPECT_TRUE(run(99) == run(99));
}

TEST(DiscreteNnTest, ValidatesArguments) {
  Rng rng(5);
  DiscreteNnModel model(4, 2);
  model.Initialize(rng);
  EXPECT_THROW(model.ClassScores(std::vector<Complex>(3)), CheckError);
  auto wrong = MakeDataset(2, 5, 4, 0.1, rng);
  EXPECT_THROW(model.Train(wrong, {}, rng), CheckError);
  auto ok = MakeDataset(2, 4, 4, 0.1, rng);
  DiscreteTrainOptions bad;
  bad.batch_size = 0;
  EXPECT_THROW(model.Train(ok, bad, rng), CheckError);
}

}  // namespace
}  // namespace metaai::nn
