#include "serve/runtime.h"

#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "data/datasets.h"
#include "rf/geometry.h"
#include "serve/generator.h"

namespace metaai::serve {
namespace {

const data::Dataset& SmallDataset() {
  static const data::Dataset ds =
      data::MakeMnistLike({.train_per_class = 10, .test_per_class = 4});
  return ds;
}

const core::TrainedModel& SmallModel() {
  static const core::TrainedModel model = [] {
    Rng rng(3);
    core::TrainingOptions options;
    options.epochs = 5;
    return core::TrainModel(SmallDataset().train, options, rng);
  }();
  return model;
}

sim::OtaLinkConfig ClientLink() {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  return config;
}

std::vector<ClientSpec> TwoClients() {
  // Identical model + link per client: their mapping cache keys collide
  // on purpose, so shared-cache constructions solve once and hit once.
  std::vector<ClientSpec> clients;
  clients.push_back({.name = "alpha",
                     .model = SmallModel(),
                     .link = ClientLink(),
                     .deployment = {}});
  clients.push_back({.name = "beta",
                     .model = SmallModel(),
                     .link = ClientLink(),
                     .deployment = {}});
  return clients;
}

/// Shared solver-result cache: after the first runtime construction,
/// every later one in this binary restores the mapping from cache.
const std::shared_ptr<mts::ConfigCache>& SharedCache() {
  static const std::shared_ptr<mts::ConfigCache> cache =
      std::make_shared<mts::ConfigCache>();
  return cache;
}

mts::LayerGraph DefaultGraph() {
  return mts::LayerGraph::FromSurface(
      mts::Metasurface{mts::MetasurfaceSpec{}});
}

const Runtime& SharedRuntime() {
  static const Runtime runtime{DefaultGraph(), TwoClients(),
                               RuntimeOptions{.cache = SharedCache()}};
  return runtime;
}

std::vector<ServeRequest> SmallTrace(std::size_t count) {
  const auto& test = SmallDataset().test;
  std::vector<ServeRequest> requests;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pick = i % test.size();
    requests.push_back({.id = i,
                        .client = i % 2,
                        .arrival_s = static_cast<double>(i) * 1e-4,
                        .pixels = test.features[pick],
                        .label = test.labels[pick]});
  }
  return requests;
}

sim::SyncModel DefaultSync() {
  sim::SyncModelConfig config;
  config.latency_scale = 0.3;
  return sim::SyncModel(sim::SyncMode::kCdfa, config);
}

std::vector<int> Predictions(const ServeResult& result) {
  std::vector<int> predicted;
  predicted.reserve(result.responses.size());
  for (const ServeResponse& response : result.responses) {
    predicted.push_back(response.predicted);
  }
  return predicted;
}

TEST(ServeRuntimeTest, ConstructorValidatesOperatorInput) {
  EXPECT_THROW(Runtime(DefaultGraph(), {}), CheckError);
  EXPECT_THROW(Runtime(DefaultGraph(), TwoClients(), {.queue_capacity = 0}),
               CheckError);
  EXPECT_THROW(Runtime(DefaultGraph(), TwoClients(), {.frame_budget = 0}),
               CheckError);
}

TEST(ServeRuntimeTest, TryCreateReportsTypedErrors) {
  const Result<Runtime> no_clients = Runtime::TryCreate(DefaultGraph(), {});
  ASSERT_FALSE(no_clients.ok());
  EXPECT_EQ(no_clients.error().code, ErrorCode::kInvalidArgument);

  const Result<Runtime> zero_queue =
      Runtime::TryCreate(DefaultGraph(), TwoClients(), {.queue_capacity = 0});
  ASSERT_FALSE(zero_queue.ok());
  EXPECT_EQ(zero_queue.error().code, ErrorCode::kInvalidArgument);

  const Result<Runtime> zero_budget =
      Runtime::TryCreate(DefaultGraph(), TwoClients(), {.frame_budget = 0});
  ASSERT_FALSE(zero_budget.ok());
  EXPECT_EQ(zero_budget.error().code, ErrorCode::kInvalidArgument);

  std::vector<ClientSpec> bad_slo = TwoClients();
  bad_slo[0].slo_latency_s = -1.0;
  const Result<Runtime> negative_slo =
      Runtime::TryCreate(DefaultGraph(), std::move(bad_slo));
  ASSERT_FALSE(negative_slo.ok());
  EXPECT_EQ(negative_slo.error().code, ErrorCode::kInvalidArgument);

  Result<Runtime> good = Runtime::TryCreate(
      DefaultGraph(), TwoClients(), {.cache = SharedCache()});
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().num_clients(), 2u);
}

TEST(ServeRuntimeTest, DeprecatedSurfaceConstructorMatchesGraphEntry) {
  // The one-PR compatibility shim must serve bit-for-bit like the
  // graph-first entry point it wraps.
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const Runtime legacy(surface, TwoClients(),
                       RuntimeOptions{.cache = SharedCache()});
#pragma GCC diagnostic pop
  const auto requests = SmallTrace(8);
  const sim::SyncModel sync = DefaultSync();
  Rng rng_a(61);
  Rng rng_b(61);
  EXPECT_EQ(Predictions(legacy.Run(requests, sync, rng_a)),
            Predictions(SharedRuntime().Run(requests, sync, rng_b)));
}

TEST(ServeRuntimeTest, CallerOwnedStreamsMatchInternalForking) {
  // The span-of-streams overload (the fleet routing hook) must replay
  // the internally-forked run exactly when handed the same fork.
  const auto requests = SmallTrace(10);
  const sim::SyncModel sync = DefaultSync();
  Rng rng_a(67);
  const ServeResult internal = SharedRuntime().Run(requests, sync, rng_a);
  Rng rng_b(67);
  std::vector<Rng> streams = par::ForkRngs(rng_b, requests.size());
  const ServeResult external =
      SharedRuntime().Run(requests, sync, std::span<Rng>(streams));
  EXPECT_EQ(Predictions(internal), Predictions(external));
  EXPECT_EQ(internal.request_log, external.request_log);
}

TEST(ServeRuntimeTest, ServesEveryAdmittedRequest) {
  const auto requests = SmallTrace(12);
  const sim::SyncModel sync = DefaultSync();
  Rng rng(17);
  const ServeResult result = SharedRuntime().Run(requests, sync, rng);
  EXPECT_EQ(result.stats.submitted, 12u);
  EXPECT_EQ(result.stats.served, 12u);
  EXPECT_EQ(result.stats.rejected(), 0u);
  EXPECT_GT(result.stats.frames, 0u);
  EXPECT_GT(result.stats.virtual_duration_s, 0.0);
  EXPECT_LE(result.stats.queue_wait_p50_s, result.stats.queue_wait_p99_s);
  EXPECT_LE(result.stats.latency_p50_s, result.stats.latency_p99_s);
  EXPECT_EQ(result.stats.labeled, 12u);
  for (const ServeResponse& response : result.responses) {
    EXPECT_EQ(response.rejected, RejectReason::kNone);
    EXPECT_GE(response.predicted, 0);
    EXPECT_GE(response.start_s, response.arrival_s);
    EXPECT_GT(response.finish_s, response.start_s);
  }
}

TEST(ServeRuntimeTest, PredictionsAreThreadCountInvariant) {
  const auto requests = SmallTrace(10);
  const sim::SyncModel sync = DefaultSync();
  auto run = [&](int threads) {
    const par::ScopedThreadCount scoped(threads);
    Rng rng(23);
    return Predictions(SharedRuntime().Run(requests, sync, rng));
  };
  const auto serial = run(1);
  for (const int threads : {1, 2, 8}) {
    EXPECT_EQ(run(threads), serial) << "threads=" << threads;
  }
}

TEST(ServeRuntimeTest, PredictionsAreFrameBudgetInvariant) {
  // Different batching compositions reorder the work items across
  // frames; the per-request Rng streams make the predictions identical
  // anyway.
  const Runtime drip(DefaultGraph(), TwoClients(),
                     {.frame_budget = 1, .cache = SharedCache()});
  const auto requests = SmallTrace(10);
  const sim::SyncModel sync = DefaultSync();
  Rng rng_a(29);
  Rng rng_b(29);
  const ServeResult batched = SharedRuntime().Run(requests, sync, rng_a);
  const ServeResult dripped = drip.Run(requests, sync, rng_b);
  EXPECT_EQ(Predictions(batched), Predictions(dripped));
  // Per-request frames pay the guard interval every time.
  EXPECT_GE(dripped.stats.frames, batched.stats.frames);
}

TEST(ServeRuntimeTest, BatchedAndUnbatchedPredictionsMatch) {
  const auto requests = SmallTrace(10);
  const sim::SyncModel sync = DefaultSync();
  Rng rng_a(31);
  Rng rng_b(31);
  const ServeResult batched = SharedRuntime().Run(requests, sync, rng_a);
  const ServeResult naive = SharedRuntime().RunUnbatched(requests, sync, rng_b);
  EXPECT_EQ(Predictions(batched), Predictions(naive));
  EXPECT_EQ(batched.stats.served, naive.stats.served);
}

TEST(ServeRuntimeTest, CacheDoesNotChangePredictions) {
  const Runtime uncached(DefaultGraph(), TwoClients(), {});
  const auto requests = SmallTrace(8);
  const sim::SyncModel sync = DefaultSync();
  Rng rng_a(37);
  Rng rng_b(37);
  EXPECT_EQ(Predictions(SharedRuntime().Run(requests, sync, rng_a)),
            Predictions(uncached.Run(requests, sync, rng_b)));
  // Identical tenants share one solve through the cache.
  EXPECT_GT(SharedCache()->stats().hits, 0u);
}

TEST(ServeRuntimeTest, RejectsUnknownClientAndBadInput) {
  const auto& test = SmallDataset().test;
  std::vector<ServeRequest> requests;
  requests.push_back({.id = 0,
                      .client = 9,
                      .arrival_s = 0.0,
                      .pixels = test.features[0]});
  requests.push_back({.id = 1,
                      .client = 0,
                      .arrival_s = 0.0,
                      .pixels = {1.0, 2.0, 3.0}});
  requests.push_back({.id = 2,
                      .client = 0,
                      .arrival_s = 0.0,
                      .pixels = test.features[0],
                      .label = test.labels[0]});
  const sim::SyncModel sync = DefaultSync();
  Rng rng(41);
  const ServeResult result = SharedRuntime().Run(requests, sync, rng);
  EXPECT_EQ(result.responses[0].rejected, RejectReason::kUnknownClient);
  EXPECT_EQ(result.responses[1].rejected, RejectReason::kBadInput);
  EXPECT_EQ(result.responses[2].rejected, RejectReason::kNone);
  EXPECT_EQ(result.stats.rejected_unknown_client, 1u);
  EXPECT_EQ(result.stats.rejected_bad_input, 1u);
  EXPECT_EQ(result.stats.served, 1u);
  EXPECT_EQ(result.stats.served + result.stats.rejected(),
            result.stats.submitted);

  // The naive baseline applies the same admission rules.
  Rng naive_rng(41);
  const ServeResult naive = SharedRuntime().RunUnbatched(requests, sync,
                                                         naive_rng);
  EXPECT_EQ(naive.responses[0].rejected, RejectReason::kUnknownClient);
  EXPECT_EQ(naive.responses[1].rejected, RejectReason::kBadInput);
  EXPECT_EQ(naive.responses[2].predicted, result.responses[2].predicted);
}

TEST(ServeRuntimeTest, BoundedQueueRejectsBurstsWithBackpressure) {
  const Runtime tight(DefaultGraph(), TwoClients(),
                      {.queue_capacity = 1, .cache = SharedCache()});
  const auto& test = SmallDataset().test;
  // Four simultaneous arrivals for one client against a depth-1 queue:
  // the first is admitted, the rest bounce with kQueueFull.
  std::vector<ServeRequest> burst;
  for (std::size_t i = 0; i < 4; ++i) {
    burst.push_back({.id = i,
                     .client = 0,
                     .arrival_s = 0.0,
                     .pixels = test.features[i % test.size()]});
  }
  const sim::SyncModel sync = DefaultSync();
  Rng rng(43);
  const ServeResult result = tight.Run(burst, sync, rng);
  EXPECT_EQ(result.stats.served, 1u);
  EXPECT_EQ(result.stats.rejected_queue_full, 3u);
  EXPECT_EQ(result.responses[0].rejected, RejectReason::kNone);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(result.responses[i].rejected, RejectReason::kQueueFull);
  }
}

TEST(ServeRuntimeTest, RejectsUnorderedTraces) {
  const auto& test = SmallDataset().test;
  std::vector<ServeRequest> requests;
  requests.push_back({.id = 0,
                      .client = 0,
                      .arrival_s = 1.0,
                      .pixels = test.features[0]});
  requests.push_back({.id = 1,
                      .client = 0,
                      .arrival_s = 0.5,
                      .pixels = test.features[0]});
  const sim::SyncModel sync = DefaultSync();
  Rng rng(47);
  EXPECT_THROW(SharedRuntime().Run(requests, sync, rng), CheckError);
  EXPECT_THROW(SharedRuntime().RunUnbatched(requests, sync, rng), CheckError);
}

TEST(ServeRuntimeTest, GeneratedWorkloadRoundTrip) {
  const std::vector<ClientWorkload> workload = {
      {.arrival_rate_hz = 400.0, .samples = &SmallDataset().test},
      {.arrival_rate_hz = 200.0, .samples = &SmallDataset().test}};
  Rng gen_rng(53);
  const auto requests = GenerateWorkload(workload, 0.02, gen_rng).value();
  const sim::SyncModel sync = DefaultSync();
  Rng rng(59);
  const ServeResult result = SharedRuntime().Run(requests, sync, rng);
  EXPECT_EQ(result.stats.submitted, requests.size());
  EXPECT_EQ(result.stats.served + result.stats.rejected(), requests.size());
}

}  // namespace
}  // namespace metaai::serve
