// Lifecycle-trace, SLO and telemetry-export contracts of the serving
// runtime: every served request gets a trace whose stage sum is its
// end-to-end latency, SLO accounting matches the traces, and the
// "metaai.requests.v1" / "metaai.timeseries.v1" exports are
// byte-identical across thread counts, cache states and batching modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "data/datasets.h"
#include "obs/lifecycle.h"
#include "obs/obs.h"
#include "obs/probe.h"
#include "obs/timeseries.h"
#include "rf/geometry.h"
#include "serve/runtime.h"

namespace metaai::serve {
namespace {

const data::Dataset& SmallDataset() {
  static const data::Dataset ds =
      data::MakeMnistLike({.train_per_class = 10, .test_per_class = 4});
  return ds;
}

const core::TrainedModel& SmallModel() {
  static const core::TrainedModel model = [] {
    Rng rng(3);
    core::TrainingOptions options;
    options.epochs = 5;
    return core::TrainModel(SmallDataset().train, options, rng);
  }();
  return model;
}

sim::OtaLinkConfig ClientLink() {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  return config;
}

/// Two identical tenants (shared cache keys collide on purpose) with
/// distinct SLO targets: "strict" violates on every request, "lax"
/// never does.
std::vector<ClientSpec> SloClients(double strict_slo_s, double lax_slo_s) {
  std::vector<ClientSpec> clients;
  clients.push_back({.name = "strict",
                     .model = SmallModel(),
                     .link = ClientLink(),
                     .deployment = {},
                     .slo_latency_s = strict_slo_s});
  clients.push_back({.name = "lax",
                     .model = SmallModel(),
                     .link = ClientLink(),
                     .deployment = {},
                     .slo_latency_s = lax_slo_s});
  return clients;
}

const std::shared_ptr<mts::ConfigCache>& SharedCache() {
  static const std::shared_ptr<mts::ConfigCache> cache =
      std::make_shared<mts::ConfigCache>();
  return cache;
}

mts::LayerGraph DefaultGraph() {
  return mts::LayerGraph::FromSurface(
      mts::Metasurface{mts::MetasurfaceSpec{}});
}

const Runtime& SharedRuntime() {
  static const Runtime runtime{
      DefaultGraph(),
      SloClients(/*strict_slo_s=*/1e-9, /*lax_slo_s=*/10.0),
      RuntimeOptions{.cache = SharedCache()}};
  return runtime;
}

std::vector<ServeRequest> SmallTrace(std::size_t count) {
  const auto& test = SmallDataset().test;
  std::vector<ServeRequest> requests;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pick = i % test.size();
    requests.push_back({.id = i,
                        .client = i % 2,
                        .arrival_s = static_cast<double>(i) * 1e-4,
                        .pixels = test.features[pick],
                        .label = test.labels[pick]});
  }
  return requests;
}

sim::SyncModel DefaultSync() {
  sim::SyncModelConfig config;
  config.latency_scale = 0.3;
  return sim::SyncModel(sim::SyncMode::kCdfa, config);
}

TEST(ServeLifecycleTest, EveryServedRequestGetsAConsistentTrace) {
  const auto requests = SmallTrace(12);
  const sim::SyncModel sync = DefaultSync();
  Rng rng(61);
  const ServeResult result = SharedRuntime().Run(requests, sync, rng);
  ASSERT_EQ(result.request_log.traces.size(), result.stats.served);
  ASSERT_EQ(result.request_log.tenants,
            (std::vector<std::string>{"strict", "lax"}));
  double energy_sum = 0.0;
  for (const obs::RequestTrace& trace : result.request_log.traces) {
    // The end-to-end latency is exactly the stage sum, and the OTA
    // pipeline always costs airtime and readout time.
    EXPECT_GT(trace.stage(obs::RequestStage::kAirtime), 0.0);
    EXPECT_GT(trace.stage(obs::RequestStage::kDemod), 0.0);
    EXPECT_EQ(trace.stage(obs::RequestStage::kSolve), 0.0);
    EXPECT_GT(trace.Latency(), 0.0);
    EXPECT_GT(trace.energy_j, 0.0);
    EXPECT_LT(trace.tenant, result.request_log.tenants.size());
    energy_sum += trace.energy_j;
  }
  EXPECT_DOUBLE_EQ(result.stats.energy_total_j, energy_sum);
  EXPECT_DOUBLE_EQ(
      result.stats.energy_per_inference_j,
      energy_sum / static_cast<double>(result.stats.served));
  // The stats percentiles are the digest of exactly these traces.
  std::vector<double> latencies;
  for (const obs::RequestTrace& trace : result.request_log.traces) {
    latencies.push_back(trace.Latency());
  }
  const obs::TailDigest digest = obs::DigestTails(latencies);
  EXPECT_DOUBLE_EQ(result.stats.latency_p50_s, digest.p50);
  EXPECT_DOUBLE_EQ(result.stats.latency_p99_s, digest.p99);
  EXPECT_DOUBLE_EQ(result.stats.latency_p999_s, digest.p999);
}

TEST(ServeLifecycleTest, SloAccountingMatchesTracesAndEmitsProbes) {
  const auto requests = SmallTrace(10);
  const sim::SyncModel sync = DefaultSync();
  obs::ProbeSink sink;
  const obs::ScopedProbeSink scoped(&sink);
  Rng rng(67);
  const ServeResult result = SharedRuntime().Run(requests, sync, rng);
  ASSERT_EQ(result.stats.served, 10u);
  // Tenant 0's 1 ns target is impossible; tenant 1's 10 s target is
  // unmissable.
  EXPECT_EQ(result.stats.slo_violations, 5u);
  EXPECT_EQ(result.stats.slo_within, 5u);
  EXPECT_DOUBLE_EQ(result.stats.goodput_slo_rps,
                   static_cast<double>(result.stats.slo_within) /
                       result.stats.virtual_duration_s);
  ASSERT_EQ(result.stats.tenants.size(), 2u);
  const TenantStats& strict = result.stats.tenants[0];
  const TenantStats& lax = result.stats.tenants[1];
  EXPECT_EQ(strict.name, "strict");
  EXPECT_EQ(strict.served, 5u);
  EXPECT_EQ(strict.slo_violations, 5u);
  EXPECT_EQ(strict.slo_within, 0u);
  EXPECT_EQ(lax.name, "lax");
  EXPECT_EQ(lax.slo_violations, 0u);
  EXPECT_EQ(lax.slo_within, 5u);
  EXPECT_DOUBLE_EQ(strict.energy_j + lax.energy_j,
                   result.stats.energy_total_j);
  // Every violation leaves a flight-recorder record at serve.slo
  // (unless probes are compiled out with -DMETAAI_OBS=OFF).
  if (obs::ProbesEnabled()) {
    std::size_t probe_violations = 0;
    for (const obs::ProbeRecord& record : sink.Snapshot()) {
      if (record.kind == obs::ProbeKind::kSloViolation) {
        EXPECT_EQ(record.site, "serve.slo");
        ++probe_violations;
      }
    }
    EXPECT_EQ(probe_violations, result.stats.slo_violations);
  }
}

TEST(ServeLifecycleTest, ExportsAreByteIdenticalAcrossThreadCounts) {
  const auto requests = SmallTrace(10);
  const sim::SyncModel sync = DefaultSync();
  auto exports = [&](int threads) {
    const par::ScopedThreadCount scoped(threads);
    Rng rng(71);
    const ServeResult result = SharedRuntime().Run(requests, sync, rng);
    return std::pair{obs::ToRequestsJsonl(result.request_log),
                     obs::ToTimeSeriesJsonl(result.timeseries)};
  };
  const auto serial = exports(1);
  for (const int threads : {1, 2, 4}) {
    EXPECT_EQ(exports(threads), serial) << "threads=" << threads;
  }
}

TEST(ServeLifecycleTest, CacheChangesOnlyTheProvenanceFlag) {
  // Touching SharedRuntime() first warms SharedCache(), so `warm`
  // restores every tenant's mapping while `uncached` solves both fresh.
  SharedRuntime();
  const Runtime warm(DefaultGraph(), SloClients(1e-9, 10.0),
                     {.cache = SharedCache()});
  const Runtime uncached(DefaultGraph(), SloClients(1e-9, 10.0), {});
  const auto requests = SmallTrace(8);
  const sim::SyncModel sync = DefaultSync();
  Rng rng_a(73);
  Rng rng_b(73);
  ServeResult cached = warm.Run(requests, sync, rng_a);
  ServeResult fresh = uncached.Run(requests, sync, rng_b);
  for (const obs::RequestTrace& trace : cached.request_log.traces) {
    EXPECT_TRUE(trace.cache_hit);
  }
  for (obs::RequestTrace& trace : fresh.request_log.traces) {
    EXPECT_FALSE(trace.cache_hit);
    trace.cache_hit = true;  // normalize provenance
  }
  EXPECT_EQ(fresh.request_log, cached.request_log);
  // The time series differs only in the cache_hit_rate key.
  ASSERT_EQ(fresh.timeseries.size(), cached.timeseries.size());
  for (std::size_t i = 0; i < fresh.timeseries.size(); ++i) {
    EXPECT_EQ(fresh.timeseries[i].t_s, cached.timeseries[i].t_s);
    EXPECT_EQ(fresh.timeseries[i].Value("cache_hit_rate"), 0.0);
    EXPECT_EQ(cached.timeseries[i].Value("cache_hit_rate"), 1.0);
    for (const auto& [key, value] : fresh.timeseries[i].values) {
      if (key == "cache_hit_rate") continue;
      EXPECT_EQ(value, cached.timeseries[i].Value(key)) << key;
    }
  }
}

TEST(ServeLifecycleTest, UnbatchedTracesAreDeterministicAndComplete) {
  const auto requests = SmallTrace(8);
  const sim::SyncModel sync = DefaultSync();
  Rng rng_a(79);
  Rng rng_b(79);
  const ServeResult first = SharedRuntime().RunUnbatched(requests, sync, rng_a);
  const ServeResult second =
      SharedRuntime().RunUnbatched(requests, sync, rng_b);
  EXPECT_EQ(obs::ToRequestsJsonl(first.request_log),
            obs::ToRequestsJsonl(second.request_log));
  EXPECT_EQ(obs::ToTimeSeriesJsonl(first.timeseries),
            obs::ToTimeSeriesJsonl(second.timeseries));
  ASSERT_EQ(first.request_log.traces.size(), first.stats.served);
  // No coalescing: nothing is ever held for batching, and the series
  // ticks once per served request.
  for (const obs::RequestTrace& trace : first.request_log.traces) {
    EXPECT_EQ(trace.stage(obs::RequestStage::kAdmission), 0.0);
    EXPECT_EQ(trace.stage(obs::RequestStage::kBatching), 0.0);
    EXPECT_GT(trace.stage(obs::RequestStage::kAirtime), 0.0);
  }
  EXPECT_EQ(first.timeseries.size(), first.stats.served);
}

TEST(ServeLifecycleTest, AlertStreamIsByteIdenticalAcrossThreadCounts) {
  const auto requests = SmallTrace(12);
  const sim::SyncModel sync = DefaultSync();
  auto alerts_jsonl = [&](int threads) {
    const par::ScopedThreadCount scoped(threads);
    Rng rng(89);
    const ServeResult result = SharedRuntime().Run(requests, sync, rng);
    return obs::health::ToAlertsJsonl(result.alerts);
  };
  const std::string serial = alerts_jsonl(1);
  for (const int threads : {1, 2, 4, 8}) {
    EXPECT_EQ(alerts_jsonl(threads), serial) << "threads=" << threads;
  }
}

TEST(ServeLifecycleTest, HealthAccountingMatchesAlertStream) {
  const auto requests = SmallTrace(12);
  const sim::SyncModel sync = DefaultSync();
  Rng rng(97);
  const ServeResult result = SharedRuntime().Run(requests, sync, rng);
  // The strict tenant's impossible SLO drives its slo_violation signal
  // past the magnitude ceiling, so the run raises at least one alert.
  ASSERT_FALSE(result.alerts.empty());
  EXPECT_EQ(result.stats.alerts, result.alerts.size());
  std::size_t tenant_sum = 0;
  std::size_t drift = 0;
  for (const TenantStats& tenant : result.stats.tenants) {
    tenant_sum += tenant.alerts;
  }
  for (const obs::health::Alert& alert : result.alerts) {
    EXPECT_EQ(alert.seq, static_cast<std::uint64_t>(
                             &alert - result.alerts.data()));
    EXPECT_GE(alert.tenant, 0);
    if (alert.kind == obs::health::AlertKind::kDriftDetected) ++drift;
  }
  EXPECT_EQ(tenant_sum, result.alerts.size());
  EXPECT_EQ(result.stats.drift_alerts, drift);
  // Served requests carry real soft-decision margins.
  EXPECT_GT(result.stats.margin_p50, 0.0);
  for (const TenantStats& tenant : result.stats.tenants) {
    EXPECT_GT(tenant.margin_p50, 0.0);
  }
  // The per-frame time series tracks the cumulative alert count as of
  // each dispatch; alerts raised in the epilogue (SLO accounting) only
  // appear in the final stream, so the last tick is a lower bound.
  ASSERT_FALSE(result.timeseries.empty());
  double previous = 0.0;
  for (const obs::TimeSeriesPoint& point : result.timeseries) {
    EXPECT_GE(point.Value("alerts"), previous);
    previous = point.Value("alerts");
  }
  EXPECT_LE(previous, static_cast<double>(result.alerts.size()));
}

TEST(ServeLifecycleTest, HealthOffDisablesAlerting) {
  const Runtime quiet(DefaultGraph(), SloClients(1e-9, 10.0),
                      {.cache = SharedCache(), .health = false});
  const auto requests = SmallTrace(8);
  const sim::SyncModel sync = DefaultSync();
  Rng rng(101);
  const ServeResult result = quiet.Run(requests, sync, rng);
  EXPECT_TRUE(result.alerts.empty());
  EXPECT_EQ(result.stats.alerts, 0u);
  EXPECT_EQ(result.stats.drift_alerts, 0u);
  // Margins are still measured (they ride the classification pass).
  EXPECT_GT(result.stats.margin_p50, 0.0);
}

TEST(ServeLifecycleTest, TimeSeriesTicksOncePerFrameAndCounts) {
  const auto requests = SmallTrace(12);
  const sim::SyncModel sync = DefaultSync();
  Rng rng(83);
  const ServeResult result = SharedRuntime().Run(requests, sync, rng);
  ASSERT_EQ(result.timeseries.size(), result.stats.frames);
  double previous_admitted = 0.0;
  double previous_t = -1.0;
  for (const obs::TimeSeriesPoint& point : result.timeseries) {
    EXPECT_GT(point.t_s, previous_t);
    previous_t = point.t_s;
    // Cumulative counters never decrease.
    EXPECT_GE(point.Value("admitted"), previous_admitted);
    previous_admitted = point.Value("admitted");
    EXPECT_GT(point.Value("frame_slots"), 0.0);
    EXPECT_GT(point.Value("frame_utilization"), 0.0);
    EXPECT_LE(point.Value("frame_utilization"), 1.0);
  }
  const obs::TimeSeriesPoint& last = result.timeseries.back();
  EXPECT_EQ(last.Value("served"), static_cast<double>(result.stats.served));
  EXPECT_EQ(last.Value("rejected"),
            static_cast<double>(result.stats.rejected()));
}

}  // namespace
}  // namespace metaai::serve
