#include "serve/generator.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/datasets.h"

namespace metaai::serve {
namespace {

const data::Dataset& SmallDataset() {
  static const data::Dataset ds =
      data::MakeMnistLike({.train_per_class = 5, .test_per_class = 3});
  return ds;
}

std::vector<ClientWorkload> TwoClients() {
  return {{.arrival_rate_hz = 200.0, .samples = &SmallDataset().test},
          {.arrival_rate_hz = 100.0, .samples = &SmallDataset().test}};
}

TEST(GeneratorTest, TraceIsSortedWithSequentialIds) {
  Rng rng(11);
  const auto requests = GenerateWorkload(TwoClients(), 0.5, rng).value();
  ASSERT_FALSE(requests.empty());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, i);
    if (i > 0) {
      EXPECT_GE(requests[i].arrival_s, requests[i - 1].arrival_s);
    }
    EXPECT_LT(requests[i].arrival_s, 0.5);
    EXPECT_LT(requests[i].client, 2u);
    EXPECT_EQ(requests[i].pixels.size(),
              SmallDataset().test.features[0].size());
    EXPECT_GE(requests[i].label, 0);
  }
}

TEST(GeneratorTest, SameSeedSameTrace) {
  Rng a(7);
  Rng b(7);
  const auto first = GenerateWorkload(TwoClients(), 0.25, a).value();
  const auto second = GenerateWorkload(TwoClients(), 0.25, b).value();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].client, second[i].client);
    EXPECT_EQ(first[i].arrival_s, second[i].arrival_s);
    EXPECT_EQ(first[i].pixels, second[i].pixels);
    EXPECT_EQ(first[i].label, second[i].label);
  }
}

TEST(GeneratorTest, AddingAClientDoesNotPerturbExistingTraces) {
  // Pre-forked per-client streams: client 0's arrivals and sample draws
  // are identical whether or not client 1 exists.
  const std::vector<ClientWorkload> one = {
      {.arrival_rate_hz = 200.0, .samples = &SmallDataset().test}};
  Rng a(13);
  Rng b(13);
  const auto solo = GenerateWorkload(one, 0.25, a).value();
  const auto pair = GenerateWorkload(TwoClients(), 0.25, b).value();

  std::vector<ServeRequest> client0;
  for (const ServeRequest& r : pair) {
    if (r.client == 0) client0.push_back(r);
  }
  ASSERT_EQ(client0.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(client0[i].arrival_s, solo[i].arrival_s);
    EXPECT_EQ(client0[i].pixels, solo[i].pixels);
  }
}

TEST(GeneratorTest, TypedErrorsForInvalidWorkloads) {
  Rng rng(1);
  const auto empty = GenerateWorkload({}, 1.0, rng);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.error().code, ErrorCode::kInvalidArgument);

  const auto clients = TwoClients();
  const auto zero_duration = GenerateWorkload(clients, 0.0, rng);
  ASSERT_FALSE(zero_duration.ok());
  EXPECT_EQ(zero_duration.error().code, ErrorCode::kInvalidArgument);

  std::vector<ClientWorkload> bad_rate = TwoClients();
  bad_rate[1].arrival_rate_hz = 0.0;
  const auto rate = GenerateWorkload(bad_rate, 1.0, rng);
  ASSERT_FALSE(rate.ok());
  EXPECT_EQ(rate.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(rate.error().message.find("client 1"), std::string::npos);

  std::vector<ClientWorkload> no_samples = TwoClients();
  no_samples[0].samples = nullptr;
  const auto samples = GenerateWorkload(no_samples, 1.0, rng);
  ASSERT_FALSE(samples.ok());
  EXPECT_EQ(samples.error().code, ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace metaai::serve
