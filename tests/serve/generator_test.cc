#include "serve/generator.h"

#include <gtest/gtest.h>

#include <vector>

#include "data/datasets.h"

namespace metaai::serve {
namespace {

const data::Dataset& SmallDataset() {
  static const data::Dataset ds =
      data::MakeMnistLike({.train_per_class = 5, .test_per_class = 3});
  return ds;
}

std::vector<ClientWorkload> TwoClients() {
  return {{.arrival_rate_hz = 200.0, .samples = &SmallDataset().test},
          {.arrival_rate_hz = 100.0, .samples = &SmallDataset().test}};
}

TEST(GeneratorTest, TraceIsSortedWithSequentialIds) {
  Rng rng(11);
  const auto requests = GenerateWorkload(TwoClients(), 0.5, rng).value();
  ASSERT_FALSE(requests.empty());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].id, i);
    if (i > 0) {
      EXPECT_GE(requests[i].arrival_s, requests[i - 1].arrival_s);
    }
    EXPECT_LT(requests[i].arrival_s, 0.5);
    EXPECT_LT(requests[i].client, 2u);
    EXPECT_EQ(requests[i].pixels.size(),
              SmallDataset().test.features[0].size());
    EXPECT_GE(requests[i].label, 0);
  }
}

TEST(GeneratorTest, SameSeedSameTrace) {
  Rng a(7);
  Rng b(7);
  const auto first = GenerateWorkload(TwoClients(), 0.25, a).value();
  const auto second = GenerateWorkload(TwoClients(), 0.25, b).value();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].client, second[i].client);
    EXPECT_EQ(first[i].arrival_s, second[i].arrival_s);
    EXPECT_EQ(first[i].pixels, second[i].pixels);
    EXPECT_EQ(first[i].label, second[i].label);
  }
}

TEST(GeneratorTest, AddingAClientDoesNotPerturbExistingTraces) {
  // Pre-forked per-client streams: client 0's arrivals and sample draws
  // are identical whether or not client 1 exists.
  const std::vector<ClientWorkload> one = {
      {.arrival_rate_hz = 200.0, .samples = &SmallDataset().test}};
  Rng a(13);
  Rng b(13);
  const auto solo = GenerateWorkload(one, 0.25, a).value();
  const auto pair = GenerateWorkload(TwoClients(), 0.25, b).value();

  std::vector<ServeRequest> client0;
  for (const ServeRequest& r : pair) {
    if (r.client == 0) client0.push_back(r);
  }
  ASSERT_EQ(client0.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(client0[i].arrival_s, solo[i].arrival_s);
    EXPECT_EQ(client0[i].pixels, solo[i].pixels);
  }
}

TEST(GeneratorTest, TypedErrorsForInvalidWorkloads) {
  Rng rng(1);
  const auto empty = GenerateWorkload({}, 1.0, rng);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.error().code, ErrorCode::kInvalidArgument);

  const auto clients = TwoClients();
  const auto zero_duration = GenerateWorkload(clients, 0.0, rng);
  ASSERT_FALSE(zero_duration.ok());
  EXPECT_EQ(zero_duration.error().code, ErrorCode::kInvalidArgument);

  std::vector<ClientWorkload> bad_rate = TwoClients();
  bad_rate[1].arrival_rate_hz = 0.0;
  const auto rate = GenerateWorkload(bad_rate, 1.0, rng);
  ASSERT_FALSE(rate.ok());
  EXPECT_EQ(rate.error().code, ErrorCode::kInvalidArgument);
  EXPECT_NE(rate.error().message.find("client 1"), std::string::npos);

  std::vector<ClientWorkload> no_samples = TwoClients();
  no_samples[0].samples = nullptr;
  const auto samples = GenerateWorkload(no_samples, 1.0, rng);
  ASSERT_FALSE(samples.ok());
  EXPECT_EQ(samples.error().code, ErrorCode::kInvalidArgument);
}

TEST(WorkloadSpecTest, UnmodulatedSpecMatchesLegacyPoissonBitwise) {
  // The WorkloadSpec path with every stressor off must reproduce the
  // legacy ClientWorkload trace bit for bit (time-warping by a
  // multiplier of exactly 1.0 draws nothing extra and divides by 1.0).
  WorkloadSpec spec;
  spec.tenants = {{.arrival_rate_hz = 200.0, .samples = &SmallDataset().test},
                  {.arrival_rate_hz = 100.0, .samples = &SmallDataset().test}};
  spec.duration_s = 0.5;
  Rng a(11);
  Rng b(11);
  const auto modern = GenerateWorkload(spec, a).value();
  const auto legacy = GenerateWorkload(TwoClients(), 0.5, b).value();
  ASSERT_EQ(modern.size(), legacy.size());
  for (std::size_t i = 0; i < modern.size(); ++i) {
    EXPECT_EQ(modern[i].id, legacy[i].id);
    EXPECT_EQ(modern[i].client, legacy[i].client);
    EXPECT_EQ(modern[i].arrival_s, legacy[i].arrival_s);
    EXPECT_EQ(modern[i].pixels, legacy[i].pixels);
    EXPECT_EQ(modern[i].label, legacy[i].label);
  }
}

TEST(WorkloadSpecTest, RateMultiplierComposesDiurnalAndFlash) {
  TenantWorkload tenant{.arrival_rate_hz = 100.0,
                        .samples = &SmallDataset().test};
  EXPECT_EQ(RateMultiplier(tenant, 0.3), 1.0);

  tenant.diurnal_amplitude = 0.5;
  tenant.diurnal_period_s = 4.0;
  // Peak of the sine at t = period/4.
  EXPECT_NEAR(RateMultiplier(tenant, 1.0), 1.5, 1e-12);

  tenant.flash_crowds = {{.start_s = 0.5, .duration_s = 1.0,
                          .multiplier = 4.0}};
  EXPECT_NEAR(RateMultiplier(tenant, 1.0), 6.0, 1e-12);  // in the window
  EXPECT_NEAR(RateMultiplier(tenant, 2.0), 1.0, 1e-12);  // past it (sin=0)

  // Overlapping crowds compound multiplicatively.
  tenant.diurnal_amplitude = 0.0;
  tenant.flash_crowds.push_back(
      {.start_s = 0.8, .duration_s = 0.4, .multiplier = 3.0});
  EXPECT_NEAR(RateMultiplier(tenant, 1.0), 12.0, 1e-12);
}

TEST(WorkloadSpecTest, StressorsAreDeterministicAndBounded) {
  WorkloadSpec spec;
  spec.tenants = {{.arrival_rate_hz = 300.0,
                   .samples = &SmallDataset().test,
                   .pareto_shape = 1.8},
                  {.arrival_rate_hz = 150.0,
                   .samples = &SmallDataset().test,
                   .diurnal_amplitude = 0.6,
                   .diurnal_period_s = 0.4,
                   .flash_crowds = {{.start_s = 0.2, .duration_s = 0.2,
                                     .multiplier = 5.0}}}};
  spec.duration_s = 0.8;
  Rng a(23);
  Rng b(23);
  const auto first = GenerateWorkload(spec, a).value();
  const auto second = GenerateWorkload(spec, b).value();
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].client, second[i].client);
    EXPECT_EQ(first[i].arrival_s, second[i].arrival_s);
    EXPECT_EQ(first[i].pixels, second[i].pixels);
    EXPECT_LT(first[i].arrival_s, spec.duration_s);
    if (i > 0) {
      EXPECT_GE(first[i].arrival_s, first[i - 1].arrival_s);
    }
  }
}

TEST(WorkloadSpecTest, FlashCrowdRaisesWindowDensity) {
  // A 10x crowd over the middle fifth should concentrate arrivals there
  // well beyond the uniform share.
  WorkloadSpec spec;
  spec.tenants = {{.arrival_rate_hz = 400.0,
                   .samples = &SmallDataset().test,
                   .flash_crowds = {{.start_s = 0.4, .duration_s = 0.2,
                                     .multiplier = 10.0}}}};
  spec.duration_s = 1.0;
  Rng rng(5);
  const auto requests = GenerateWorkload(spec, rng).value();
  ASSERT_FALSE(requests.empty());
  std::size_t in_window = 0;
  for (const ServeRequest& request : requests) {
    if (request.arrival_s >= 0.4 && request.arrival_s < 0.6) ++in_window;
  }
  EXPECT_GT(static_cast<double>(in_window),
            0.5 * static_cast<double>(requests.size()));
}

TEST(WorkloadSpecTest, TypedErrorsForInvalidSpecs) {
  Rng rng(1);
  const TenantWorkload good{.arrival_rate_hz = 100.0,
                            .samples = &SmallDataset().test};

  WorkloadSpec infinite_mean;
  infinite_mean.tenants = {good};
  infinite_mean.tenants[0].pareto_shape = 1.0;  // mean diverges
  const auto pareto = GenerateWorkload(infinite_mean, rng);
  ASSERT_FALSE(pareto.ok());
  EXPECT_EQ(pareto.error().code, ErrorCode::kInvalidArgument);

  WorkloadSpec amplitude;
  amplitude.tenants = {good};
  amplitude.tenants[0].diurnal_amplitude = 1.0;  // rate would hit zero
  const auto diurnal = GenerateWorkload(amplitude, rng);
  ASSERT_FALSE(diurnal.ok());
  EXPECT_EQ(diurnal.error().code, ErrorCode::kInvalidArgument);

  WorkloadSpec period;
  period.tenants = {good};
  period.tenants[0].diurnal_amplitude = 0.5;
  period.tenants[0].diurnal_period_s = 0.0;
  const auto bad_period = GenerateWorkload(period, rng);
  ASSERT_FALSE(bad_period.ok());
  EXPECT_EQ(bad_period.error().code, ErrorCode::kInvalidArgument);

  WorkloadSpec flash;
  flash.tenants = {good};
  flash.tenants[0].flash_crowds = {
      {.start_s = 0.0, .duration_s = -1.0, .multiplier = 2.0}};
  const auto bad_flash = GenerateWorkload(flash, rng);
  ASSERT_FALSE(bad_flash.ok());
  EXPECT_EQ(bad_flash.error().code, ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace metaai::serve
