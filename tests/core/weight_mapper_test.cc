#include "core/weight_mapper.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "rf/geometry.h"

namespace metaai::core {
namespace {

sim::OtaLinkConfig BaseConfig() {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.budget.noise_floor_dbm = -200.0;
  return config;
}

ComplexMatrix RandomWeights(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  Rng rng(seed);
  ComplexMatrix w(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      w(r, c) = rng.ComplexNormal(1.0);
    }
  }
  return w;
}

TEST(WeightMapperTest, SequentialMappingIsAccurate) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLink link(surface, BaseConfig());
  const auto weights = RandomWeights(3, 16, 1);
  const auto mapped = MapWeights(weights, link, {.scheme = MappingScheme::kSequential});
  EXPECT_EQ(mapped.rounds.size(), 3u);
  EXPECT_EQ(mapped.rounds[0].size(), 16u);
  EXPECT_GT(mapped.scale, 0.0);
  EXPECT_LT(mapped.mean_relative_residual, 0.05);
  // Round r computes output r.
  for (std::size_t r = 0; r < 3; ++r) {
    ASSERT_EQ(mapped.outputs[r].size(), 1u);
    EXPECT_EQ(mapped.outputs[r][0], static_cast<int>(r));
  }
}

TEST(WeightMapperTest, RealizedResponsesMatchScaledWeights) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLink link(surface, BaseConfig());
  const auto weights = RandomWeights(2, 8, 2);
  const auto mapped = MapWeights(weights, link, {.scheme = MappingScheme::kSequential});
  const auto steering = link.SteeringVector(0);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t i = 0; i < 8; ++i) {
      sim::Complex achieved{0.0, 0.0};
      for (std::size_t m = 0; m < steering.size(); ++m) {
        achieved += steering[m] *
                    mts::PhasorForCode(mapped.rounds[r][i][m]);
      }
      const sim::Complex target = mapped.scale * weights(r, i);
      EXPECT_LT(std::abs(achieved - target), 0.08 * std::abs(target))
          << "r=" << r << " i=" << i;
    }
  }
}

TEST(WeightMapperTest, ScaleKeepsLargestWeightReachable) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLink link(surface, BaseConfig());
  auto weights = RandomWeights(2, 8, 3);
  weights(1, 4) = {50.0, 0.0};  // dominant weight
  const auto mapped =
      MapWeights(weights, link, {.scheme = MappingScheme::kSequential, .target_fraction = 0.85});
  const auto steering = link.SteeringVector(0);
  double reachable = 0.0;
  for (const auto& s : steering) reachable += std::abs(s);
  reachable *= 0.9;
  EXPECT_NEAR(mapped.scale * 50.0, 0.85 * reachable, 1e-9);
}

TEST(WeightMapperTest, ParallelMappingCoversAllOutputs) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig config = BaseConfig();
  config.observations.clear();
  for (int k = 0; k < 4; ++k) {
    config.observations.push_back(
        {.freq_offset_hz = (k - 1.5) * 40e3});
  }
  sim::OtaLink link(surface, config);
  const auto weights = RandomWeights(10, 8, 4);
  const auto mapped = MapWeights(weights, link, {.scheme = MappingScheme::kParallel});
  // ceil(10 / 4) = 3 rounds; last round has 2 idle observations.
  EXPECT_EQ(mapped.rounds.size(), 3u);
  std::vector<bool> seen(10, false);
  std::size_t idle = 0;
  for (const auto& round : mapped.outputs) {
    EXPECT_EQ(round.size(), 4u);
    for (const int output : round) {
      if (output < 0) {
        ++idle;
      } else {
        seen[static_cast<std::size_t>(output)] = true;
      }
    }
  }
  EXPECT_EQ(idle, 2u);
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(WeightMapperTest, ParallelResidualWorseThanSequential) {
  // Serving several targets with one configuration costs fidelity — the
  // accuracy/latency trade-off of §3.3.
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLink seq_link(surface, BaseConfig());
  const auto weights = RandomWeights(4, 8, 5);
  const auto sequential = MapWeights(weights, seq_link, {.scheme = MappingScheme::kSequential});

  sim::OtaLinkConfig par_config = BaseConfig();
  par_config.observations.clear();
  for (int k = 0; k < 4; ++k) {
    par_config.observations.push_back(
        {.freq_offset_hz = (k - 1.5) * 40e3});
  }
  sim::OtaLink par_link(surface, par_config);
  const auto parallel = MapWeights(weights, par_link, {.scheme = MappingScheme::kParallel});
  EXPECT_GT(parallel.mean_relative_residual,
            sequential.mean_relative_residual);
}

TEST(WeightMapperTest, EnvironmentSubtractionCancelsStaticMultipath) {
  // Eqn 8: with cancellation off, solving for (H_des - H_e) makes the
  // *total* received channel land on the desired weight.
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig config = BaseConfig();
  config.multipath_cancellation = false;
  sim::OtaLink link(surface, config);
  const auto weights = RandomWeights(1, 4, 6);
  const auto mapped =
      MapWeights(weights, link, {.scheme = MappingScheme::kSequential, .subtract_environment = true});
  const auto steering = link.SteeringVector(0);
  const sim::Complex env = link.EnvironmentResponse(0) /
                           (link.TxAmplitude() * link.MtsPathAmplitude(0));
  for (std::size_t i = 0; i < 4; ++i) {
    sim::Complex achieved{0.0, 0.0};
    for (std::size_t m = 0; m < steering.size(); ++m) {
      achieved += steering[m] * mts::PhasorForCode(mapped.rounds[0][i][m]);
    }
    // achieved + env ~= scale * weight.
    const sim::Complex total = achieved + env;
    const sim::Complex target = mapped.scale * weights(0, i);
    EXPECT_LT(std::abs(total - target), 0.1 * std::abs(target));
  }
}

TEST(WeightMapperTest, ValidatesArguments) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLink link(surface, BaseConfig());
  ComplexMatrix empty;
  EXPECT_THROW(MapWeights(empty, link, {.scheme = MappingScheme::kSequential}), CheckError);
  ComplexMatrix zeros(2, 4, sim::Complex{0.0, 0.0});
  EXPECT_THROW(MapWeights(zeros, link, {.scheme = MappingScheme::kSequential}), CheckError);
  const auto weights = RandomWeights(2, 4, 7);
  EXPECT_THROW(MapWeights(weights, link, {.scheme = MappingScheme::kSequential, .target_fraction = 0.0}),
               CheckError);
  EXPECT_THROW(MapWeights(weights, link, {.scheme = MappingScheme::kSequential, .target_fraction = 1.5}),
               CheckError);

  sim::OtaLinkConfig multi = BaseConfig();
  multi.observations.push_back({.freq_offset_hz = 40e3});
  sim::OtaLink multi_link(surface, multi);
  EXPECT_THROW(MapWeights(weights, multi_link, {.scheme = MappingScheme::kSequential}), CheckError);
}

TEST(WeightMapperTest, AutoSchemeFollowsLinkShape) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const auto weights = RandomWeights(3, 8, 8);

  sim::OtaLink single(surface, BaseConfig());
  const auto auto_single = MapWeights(weights, single);
  const auto sequential =
      MapWeights(weights, single, {.scheme = MappingScheme::kSequential});
  EXPECT_EQ(auto_single.rounds, sequential.rounds);
  EXPECT_EQ(auto_single.outputs, sequential.outputs);

  sim::OtaLinkConfig config = BaseConfig();
  config.observations.clear();
  for (int k = 0; k < 3; ++k) {
    config.observations.push_back({.freq_offset_hz = (k - 1.0) * 40e3});
  }
  sim::OtaLink multi(surface, config);
  const auto auto_multi = MapWeights(weights, multi);
  const auto parallel =
      MapWeights(weights, multi, {.scheme = MappingScheme::kParallel});
  EXPECT_EQ(auto_multi.rounds, parallel.rounds);
  EXPECT_EQ(auto_multi.outputs, parallel.outputs);
}

// The serving guarantee: a cached mapping is bitwise identical to a
// fresh solve — phase codes, output assignments, and both float scalars.
TEST(WeightMapperTest, CachedMappingIsBitwiseIdenticalToFreshSolve) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig config = BaseConfig();
  config.observations.clear();
  for (int k = 0; k < 2; ++k) {
    config.observations.push_back({.freq_offset_hz = (k - 0.5) * 40e3});
  }
  sim::OtaLink link(surface, config);
  const auto weights = RandomWeights(4, 8, 9);

  const auto fresh =
      MapWeights(weights, link, {.scheme = MappingScheme::kParallel});

  mts::ConfigCache cache;
  MappingOptions options{.scheme = MappingScheme::kParallel};
  options.cache = &cache;
  const auto miss = MapWeights(weights, link, options);
  const auto hit = MapWeights(weights, link, options);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  for (const auto& mapped : {miss, hit}) {
    EXPECT_EQ(mapped.rounds, fresh.rounds);
    EXPECT_EQ(mapped.outputs, fresh.outputs);
    EXPECT_EQ(mapped.scale, fresh.scale);
    EXPECT_EQ(mapped.mean_relative_residual, fresh.mean_relative_residual);
  }
}

TEST(WeightMapperTest, CacheKeyDistinguishesEveryInput) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLink link(surface, BaseConfig());
  const auto weights = RandomWeights(2, 4, 10);
  auto other = weights;
  other(1, 2) += sim::Complex{1e-12, 0.0};

  const MappingOptions base{.scheme = MappingScheme::kSequential};
  const std::string key = MappingCacheKey(weights, link, base);
  EXPECT_NE(key, MappingCacheKey(other, link, base));

  MappingOptions fraction = base;
  fraction.target_fraction = 0.5;
  EXPECT_NE(key, MappingCacheKey(weights, link, fraction));

  MappingOptions sweeps = base;
  sweeps.solver.max_sweeps = 3;
  EXPECT_NE(key, MappingCacheKey(weights, link, sweeps));

  MappingOptions masked = base;
  masked.solver.atom_mask.assign(link.SteeringVector(0).size(), 1);
  masked.solver.atom_mask[0] = 0;
  EXPECT_NE(key, MappingCacheKey(weights, link, masked));

  // Same inputs -> same key (the cache would be useless otherwise).
  EXPECT_EQ(key, MappingCacheKey(weights, link, base));
}

// Incremental solving: a near-duplicate tenant's mapping warm-starts
// from the nearest cached schedule — equivalent accuracy for fewer
// coordinate-descent sweeps.
TEST(WeightMapperTest, WarmStartFromNearDuplicateUsesFewerSweeps) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLink link(surface, BaseConfig());
  const auto weights = RandomWeights(3, 16, 11);
  auto near_duplicate = weights;
  // A fine-tuning-sized perturbation: every weight nudged by ~0.3%.
  Rng rng(12);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 16; ++c) {
      near_duplicate(r, c) += rng.ComplexNormal(1e-5);
    }
  }

  MappingOptions warm_options{.scheme = MappingScheme::kSequential};
  warm_options.warm_start_distance = 0.1;
  MappingOptions cold_options = warm_options;  // same key params, no cache

  mts::ConfigCache cache;
  warm_options.cache = &cache;
  const auto seeded = MapWeights(weights, link, warm_options);
  EXPECT_FALSE(seeded.warm_started);  // empty cache: nothing to warm from

  const auto warm = MapWeights(near_duplicate, link, warm_options);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_GE(cache.stats().nearest_hits, 1u);

  const auto cold = MapWeights(near_duplicate, link, cold_options);
  EXPECT_FALSE(cold.warm_started);
  EXPECT_LT(warm.total_sweeps, cold.total_sweeps);
  // Equivalent accuracy: the early-exit threshold trades at most a
  // sliver of residual for the saved sweeps.
  EXPECT_NEAR(warm.mean_relative_residual, cold.mean_relative_residual, 0.01);
}

TEST(WeightMapperTest, WarmStartBeyondDistanceFallsBackToColdSolve) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLink link(surface, BaseConfig());
  const auto weights = RandomWeights(2, 8, 13);
  const auto unrelated = RandomWeights(2, 8, 14);

  MappingOptions options{.scheme = MappingScheme::kSequential};
  options.warm_start_distance = 1e-6;  // radius nothing unrelated can meet
  mts::ConfigCache cache;
  options.cache = &cache;
  MapWeights(weights, link, options);
  const auto mapped = MapWeights(unrelated, link, options);
  EXPECT_FALSE(mapped.warm_started);
  EXPECT_GE(cache.stats().nearest_misses, 1u);
}

TEST(WeightMapperTest, WarmStartParamsParticipateInCacheKey) {
  // Warm-started and cold mappings are different computations; they must
  // never share a cache entry.
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLink link(surface, BaseConfig());
  const auto weights = RandomWeights(2, 4, 15);

  const MappingOptions base{.scheme = MappingScheme::kSequential};
  MappingOptions warm = base;
  warm.warm_start_distance = 0.1;
  EXPECT_NE(MappingCacheKey(weights, link, base),
            MappingCacheKey(weights, link, warm));

  MappingOptions tighter = warm;
  tighter.warm_start_min_improvement = 1e-2;
  EXPECT_NE(MappingCacheKey(weights, link, warm),
            MappingCacheKey(weights, link, tighter));
}

TEST(WeightMapperTest, FamilyKeyIgnoresWeightsAndFeaturesAreScaleFree) {
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLink link(surface, BaseConfig());
  const auto weights = RandomWeights(2, 4, 16);
  const auto other = RandomWeights(2, 4, 17);

  const MappingOptions options{.scheme = MappingScheme::kSequential};
  // Same shape, different values: same family (the weights are the only
  // excluded input)...
  EXPECT_EQ(MappingFamilyKey(weights, link, options),
            MappingFamilyKey(other, link, options));
  // ...but full keys still differ.
  EXPECT_NE(MappingCacheKey(weights, link, options),
            MappingCacheKey(other, link, options));

  // Features are normalized by the max magnitude, so a uniformly scaled
  // model measures as distance zero from the original (the solver's
  // targets divide out the scale too). A power-of-two factor keeps the
  // check bitwise: scaling numerator and denominator by 2 leaves every
  // rounded quotient unchanged.
  auto scaled = weights;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 4; ++c) scaled(r, c) *= 2.0;
  }
  EXPECT_EQ(MappingFeatures(weights), MappingFeatures(scaled));
}

}  // namespace
}  // namespace metaai::core
