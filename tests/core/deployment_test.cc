#include "core/deployment.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "data/datasets.h"
#include "rf/geometry.h"

namespace metaai::core {
namespace {

sim::OtaLinkConfig DefaultLink() {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  return config;
}

struct Fixture {
  data::Dataset dataset;
  TrainedModel model;
};

Fixture MakeFixture() {
  data::Dataset dataset =
      data::MakeMnistLike({.train_per_class = 60, .test_per_class = 12});
  Rng rng(11);
  TrainedModel model = TrainModel(dataset.train, {}, rng);
  return {std::move(dataset), std::move(model)};
}

TEST(DeploymentTest, ModeNames) {
  EXPECT_EQ(ParallelismModeName(ParallelismMode::kSequential), "sequential");
  EXPECT_EQ(ParallelismModeName(ParallelismMode::kSubcarrier), "subcarrier");
  EXPECT_EQ(ParallelismModeName(ParallelismMode::kAntenna), "antenna");
}

TEST(DeploymentTest, BuildObservationsPerMode) {
  const auto base = DefaultLink();
  DeploymentOptions options;
  options.mode = ParallelismMode::kSequential;
  EXPECT_EQ(BuildObservations(base, 10, options).size(), 1u);

  options.mode = ParallelismMode::kSubcarrier;
  auto subcarriers = BuildObservations(base, 10, options);
  EXPECT_EQ(subcarriers.size(), 10u);
  // Centred offsets, 40 kHz spacing.
  EXPECT_DOUBLE_EQ(subcarriers[0].freq_offset_hz, -4.5 * 40e3);
  EXPECT_DOUBLE_EQ(subcarriers[9].freq_offset_hz, 4.5 * 40e3);

  options.mode = ParallelismMode::kAntenna;
  options.parallel_width = 3;
  auto antennas = BuildObservations(base, 10, options);
  EXPECT_EQ(antennas.size(), 3u);
  ASSERT_TRUE(antennas[0].geometry.has_value());
  EXPECT_LT(antennas[0].geometry->rx_angle_rad,
            antennas[2].geometry->rx_angle_rad);

  // Width never exceeds the class count.
  options.mode = ParallelismMode::kSubcarrier;
  options.parallel_width = 30;
  EXPECT_EQ(BuildObservations(base, 10, options).size(), 10u);
}

TEST(DeploymentTest, SequentialOtaAccuracyTracksDigital) {
  const Fixture setup = MakeFixture();
  const double digital = EvaluateDigital(setup.model, setup.dataset.test);

  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  Deployment deployment(setup.model, surface, DefaultLink());
  EXPECT_EQ(deployment.RoundsPerInference(), 10u);

  Rng rng(13);
  sim::SyncModel perfect(sim::SyncMode::kCdfa,
                         {.latency_scale = 1e-6});  // effectively synced
  const double ota =
      deployment.EvaluateAccuracy(setup.dataset.test, perfect, rng);
  // The over-the-air pipeline with good SNR and perfect sync stays within
  // a few points of the digital model.
  EXPECT_GT(ota, digital - 0.08);
}

TEST(DeploymentTest, SubcarrierParallelismReducesRoundsWithSmallLoss) {
  const Fixture setup = MakeFixture();
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  DeploymentOptions options;
  options.mode = ParallelismMode::kSubcarrier;
  options.parallel_width = 5;
  Deployment deployment(setup.model, surface, DefaultLink(), options);
  EXPECT_EQ(deployment.RoundsPerInference(), 2u);  // 10 classes / 5

  Rng rng(17);
  sim::SyncModel perfect(sim::SyncMode::kCdfa, {.latency_scale = 1e-6});
  const double parallel_acc =
      deployment.EvaluateAccuracy(setup.dataset.test, perfect, rng, 60);
  Deployment sequential(setup.model, surface, DefaultLink());
  Rng rng2(17);
  const double sequential_acc =
      sequential.EvaluateAccuracy(setup.dataset.test, perfect, rng2, 60);
  // Slight degradation only (Fig 18).
  EXPECT_GT(parallel_acc, sequential_acc - 0.25);
  EXPECT_GT(parallel_acc, 0.4);
}

TEST(DeploymentTest, AntennaParallelismWorks) {
  const Fixture setup = MakeFixture();
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  DeploymentOptions options;
  options.mode = ParallelismMode::kAntenna;
  options.parallel_width = 5;
  Deployment deployment(setup.model, surface, DefaultLink(), options);
  EXPECT_EQ(deployment.RoundsPerInference(), 2u);
  Rng rng(19);
  sim::SyncModel perfect(sim::SyncMode::kCdfa, {.latency_scale = 1e-6});
  const double acc =
      deployment.EvaluateAccuracy(setup.dataset.test, perfect, rng, 60);
  EXPECT_GT(acc, 0.4);
}

TEST(DeploymentTest, LargeSyncErrorWithoutRobustTrainingCollapses) {
  const Fixture setup = MakeFixture();
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  Deployment deployment(setup.model, surface, DefaultLink());
  Rng rng(23);
  const double good =
      deployment.EvaluateAccuracyAtOffset(setup.dataset.test, 0.0, rng, 60);
  const double bad =
      deployment.EvaluateAccuracyAtOffset(setup.dataset.test, 8.0, rng, 60);
  EXPECT_GT(good, bad + 0.3);
}

TEST(DeploymentTest, ClassScoresHaveOneEntryPerClass) {
  const Fixture setup = MakeFixture();
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  Deployment deployment(setup.model, surface, DefaultLink());
  Rng rng(29);
  const auto scores =
      deployment.ClassScores(setup.dataset.test.features[0], 0.0, rng);
  EXPECT_EQ(scores.size(), 10u);
  for (const double s : scores) EXPECT_GE(s, 0.0);
}

TEST(DeploymentTest, RejectsWrongSampleLength) {
  const Fixture setup = MakeFixture();
  mts::Metasurface surface{mts::MetasurfaceSpec{}};
  Deployment deployment(setup.model, surface, DefaultLink());
  Rng rng(31);
  EXPECT_THROW(deployment.Classify(std::vector<double>(100, 0.5), 0.0, rng),
               CheckError);
}

}  // namespace
}  // namespace metaai::core
