#include "core/channel_estimation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "core/weight_mapper.h"
#include "rf/geometry.h"

namespace metaai::core {
namespace {

sim::OtaLinkConfig EstimationLink(std::uint64_t seed = 21) {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::LaboratoryProfile();
  config.multipath_cancellation = false;  // expose the environment
  config.channel_seed = seed;
  return config;
}

TEST(ChannelEstimationTest, EstimateMatchesTrueResponse) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLink link(surface, EstimationLink());
  Rng rng(1);
  const auto estimate = EstimateEnvironment(link, rng, {.num_pilots = 256});
  const auto truth = link.EnvironmentResponse(0);
  // Within a few percent: the null configuration leaves a small residual
  // reflection and noise perturbs the pilots.
  EXPECT_LT(std::abs(estimate.response - truth), 0.15 * std::abs(truth));
  EXPECT_LT(estimate.null_quality, 0.05);
}

TEST(ChannelEstimationTest, MorePilotsReduceNoiseError) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig config = EstimationLink();
  config.budget.noise_floor_dbm = -60.0;  // noisy pilots
  const sim::OtaLink link(surface, config);
  const auto truth = link.EnvironmentResponse(0);
  double err_few = 0.0;
  double err_many = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng_few(seed);
    Rng rng_many(seed);
    err_few += std::abs(
        EstimateEnvironment(link, rng_few, {.num_pilots = 8}).response -
        truth);
    err_many += std::abs(
        EstimateEnvironment(link, rng_many, {.num_pilots = 512}).response -
        truth);
  }
  EXPECT_LT(err_many, err_few);
}

TEST(ChannelEstimationTest, EstimateDrivenEqn8MatchesOracle) {
  // The full Eqn 8 loop with the *estimated* environment performs like
  // the oracle-driven mapping in a static environment.
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLink link(surface, EstimationLink(33));
  Rng rng(2);
  const auto estimate = EstimateEnvironment(link, rng, {.num_pilots = 256});
  const auto truth = link.EnvironmentResponse(0);
  // Express both in solver units and compare the Eqn 8 offsets.
  const double denom = link.TxAmplitude() * link.MtsPathAmplitude(0);
  EXPECT_LT(std::abs(estimate.response / denom - truth / denom),
            0.15 * std::abs(truth / denom));
}

TEST(ChannelEstimationTest, ValidatesPreconditions) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig cancelling = EstimationLink();
  cancelling.multipath_cancellation = true;
  const sim::OtaLink bad_link(surface, cancelling);
  Rng rng(3);
  EXPECT_THROW(EstimateEnvironment(bad_link, rng), CheckError);

  const sim::OtaLink good_link(surface, EstimationLink());
  EXPECT_THROW(EstimateEnvironment(good_link, rng, {.num_pilots = 0}),
               CheckError);
}

}  // namespace
}  // namespace metaai::core
