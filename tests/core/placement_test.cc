#include "core/placement.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace metaai::core {
namespace {

TEST(PlacementTest, FirstFitDecreasingKnownAnswer) {
  // Demands sorted descending: 5, 4, 3, 2. Capacity 7 bins: FFD packs
  // 5+2 on bin 0 and 4+3 on bin 1.
  const PlacementProblem problem{.demand = {3.0, 5.0, 2.0, 4.0},
                                 .capacity = {7.0, 7.0}};
  const PlacementResult result = PackBins(problem).value();
  EXPECT_EQ(result.bin_of_item, (std::vector<std::size_t>{1, 0, 0, 1}));
  EXPECT_DOUBLE_EQ(result.load[0], 7.0);
  EXPECT_DOUBLE_EQ(result.load[1], 7.0);
}

TEST(PlacementTest, TiesBreakByOriginalIndex) {
  // Equal demands keep submission order: item 0 before item 1 before
  // item 2, so the first two fill bin 0 and the third spills to bin 1.
  const PlacementProblem problem{.demand = {1.0, 1.0, 1.0},
                                 .capacity = {2.0, 2.0}};
  const PlacementResult result = PackBins(problem).value();
  EXPECT_EQ(result.bin_of_item, (std::vector<std::size_t>{0, 0, 1}));
}

TEST(PlacementTest, DeterministicAcrossRepeatedCalls) {
  PlacementProblem problem;
  for (int i = 0; i < 40; ++i) {
    problem.demand.push_back(0.25 * static_cast<double>((i * 7) % 11) + 0.5);
  }
  problem.capacity = {16.0, 16.0, 16.0, 16.0, 16.0, 16.0};
  const PlacementResult first = PackBins(problem).value();
  const PlacementResult second = PackBins(problem).value();
  EXPECT_EQ(first.bin_of_item, second.bin_of_item);
  EXPECT_EQ(first.load, second.load);
  double total = 0.0;
  for (const double demand : problem.demand) total += demand;
  double placed = 0.0;
  for (std::size_t b = 0; b < first.load.size(); ++b) {
    EXPECT_LE(first.load[b], problem.capacity[b]);
    placed += first.load[b];
  }
  EXPECT_DOUBLE_EQ(placed, total);
}

TEST(PlacementTest, CompatibilityMaskGatesBins) {
  // Item 1 may only use bin 1 even though bin 0 has room.
  const PlacementProblem problem{
      .demand = {1.0, 1.0},
      .capacity = {4.0, 4.0},
      .compatible = {{true, true}, {false, true}}};
  const PlacementResult result = PackBins(problem).value();
  EXPECT_EQ(result.bin_of_item, (std::vector<std::size_t>{0, 1}));
}

TEST(PlacementTest, UnplaceableItemIsUnavailable) {
  const PlacementProblem over{.demand = {3.0, 3.0, 3.0},
                              .capacity = {4.0, 4.0}};
  const auto result = PackBins(over);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnavailable);

  // A compatible=false row can starve an item with plenty of capacity.
  const PlacementProblem masked{.demand = {1.0},
                                .capacity = {4.0},
                                .compatible = {{false}}};
  const auto starved = PackBins(masked);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.error().code, ErrorCode::kUnavailable);
  EXPECT_NE(starved.error().message.find("item 0"), std::string::npos);
}

TEST(PlacementTest, MalformedProblemsAreInvalidArgument) {
  const auto no_bins = PackBins({.demand = {1.0}, .capacity = {}});
  ASSERT_FALSE(no_bins.ok());
  EXPECT_EQ(no_bins.error().code, ErrorCode::kInvalidArgument);

  const auto negative_demand =
      PackBins({.demand = {-1.0}, .capacity = {4.0}});
  ASSERT_FALSE(negative_demand.ok());
  EXPECT_EQ(negative_demand.error().code, ErrorCode::kInvalidArgument);

  const auto negative_capacity =
      PackBins({.demand = {1.0}, .capacity = {-4.0}});
  ASSERT_FALSE(negative_capacity.ok());
  EXPECT_EQ(negative_capacity.error().code, ErrorCode::kInvalidArgument);

  const auto bad_mask = PackBins(
      {.demand = {1.0, 1.0}, .capacity = {4.0}, .compatible = {{true}}});
  ASSERT_FALSE(bad_mask.ok());
  EXPECT_EQ(bad_mask.error().code, ErrorCode::kInvalidArgument);
}

TEST(PlacementTest, EmptyProblemPlacesNothing) {
  const PlacementResult result =
      PackBins({.demand = {}, .capacity = {4.0}}).value();
  EXPECT_TRUE(result.bin_of_item.empty());
  EXPECT_EQ(result.load, (std::vector<double>{0.0}));
}

}  // namespace
}  // namespace metaai::core
