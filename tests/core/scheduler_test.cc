#include "core/scheduler.h"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "common/check.h"
#include "data/datasets.h"
#include "rf/geometry.h"

namespace metaai::core {
namespace {

sim::OtaLinkConfig DeviceLink(double tx_deg) {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(tx_deg),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  return config;
}

TrainedModel QuickModel(const nn::RealDataset& train, std::uint64_t seed) {
  Rng rng(seed);
  TrainingOptions options;
  options.epochs = 20;
  return TrainModel(train, options, rng);
}

struct TwoDeviceSetup {
  data::Dataset digits =
      data::MakeMnistLike({.train_per_class = 40, .test_per_class = 8});
  data::Dataset gestures =
      data::MakeWidarLike({.train_per_class = 40, .test_per_class = 8});
  SharedSurfaceScheduler scheduler;

  TwoDeviceSetup(const mts::Metasurface& surface)
      : scheduler(surface,
                  [this] {
                    std::vector<DeviceSpec> devices;
                    devices.push_back({.name = "camera",
                                       .model = QuickModel(digits.train, 1),
                                       .link = DeviceLink(30.0),
                                       .options = {}});
                    devices.push_back({.name = "radar",
                                       .model = QuickModel(gestures.train,
                                                           2),
                                       .link = DeviceLink(-20.0),
                                       .options = {}});
                    return devices;
                  }()) {}
};

TEST(SchedulerTest, FrameLayoutIsSequentialAndGapped) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const TwoDeviceSetup setup(surface);
  const auto& frame = setup.scheduler.frame();
  ASSERT_EQ(frame.size(), 2u);
  EXPECT_EQ(frame[0].device, "camera");
  EXPECT_EQ(frame[1].device, "radar");
  // Slots don't overlap; the second starts after the first + guard.
  EXPECT_DOUBLE_EQ(frame[1].start_s,
                   frame[0].start_s + frame[0].duration_s + 20e-6);
  // Camera: 10 classes x 256 symbols at 1 Msym/s = 2.56 ms.
  EXPECT_EQ(frame[0].rounds, 10u);
  EXPECT_NEAR(frame[0].duration_s, 2.56e-3, 1e-9);
  // Radar: 6 classes -> 1.536 ms.
  EXPECT_NEAR(frame[1].duration_s, 1.536e-3, 1e-9);
}

TEST(SchedulerTest, FrameDurationAndRateAreConsistent) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const TwoDeviceSetup setup(surface);
  const double frame = setup.scheduler.FrameDuration();
  EXPECT_NEAR(frame, 2.56e-3 + 1.536e-3 + 2 * 20e-6, 1e-9);
  EXPECT_NEAR(setup.scheduler.PerDeviceRate(), 1.0 / frame, 1e-6);
}

TEST(SchedulerTest, BothDevicesClassifyOverTheSharedSurface) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const TwoDeviceSetup setup(surface);
  Rng rng(3);
  sim::SyncModelConfig sync_config;
  sync_config.latency_scale = 256.0 / 784.0;
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  const double camera_acc = setup.scheduler.EvaluateDevice(
      0, setup.digits.test, sync, rng, 40);
  const double radar_acc = setup.scheduler.EvaluateDevice(
      1, setup.gestures.test, sync, rng, 40);
  EXPECT_GT(camera_acc, 0.5);
  EXPECT_GT(radar_acc, 0.5);
}

TEST(SchedulerTest, DeviceAccessorsValidate) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const TwoDeviceSetup setup(surface);
  EXPECT_EQ(setup.scheduler.device_name(0), "camera");
  EXPECT_THROW(setup.scheduler.deployment(2), CheckError);
  EXPECT_THROW(setup.scheduler.device_name(2), CheckError);
}

TEST(SchedulerTest, RejectsInfeasibleSymbolRates) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const auto ds =
      data::MakeMnistLike({.train_per_class = 5, .test_per_class = 1});
  std::vector<DeviceSpec> devices;
  devices.push_back({.name = "cam",
                     .model = QuickModel(ds.train, 4),
                     .link = DeviceLink(30.0),
                     .options = {}});
  SchedulerConfig config;
  config.symbol_rate_hz = 5e6;  // 2 patterns/symbol > 2.56 MHz budget
  EXPECT_THROW(
      SharedSurfaceScheduler(surface, std::move(devices), config),
      CheckError);
}

TEST(SchedulerTest, RejectsEmptyDeviceList) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  EXPECT_THROW(SharedSurfaceScheduler(surface, {}), CheckError);
}

// --- slot allocation (serving admission) -------------------------------

TEST(SchedulerTest, AllocateSlotsIsRoundRobinFair) {
  // One device with a deep backlog cannot monopolize the frame while
  // others have pending work: each pass grants one slot per device.
  const std::size_t pending[] = {100, 3, 3};
  const auto granted = AllocateSlots(pending, 8);
  EXPECT_EQ(granted, (std::vector<std::size_t>{3, 3, 2}));
}

TEST(SchedulerTest, AllocateSlotsBudgetNotDividingPending) {
  // Budget 5 across two equally-loaded devices: the extra slot goes to
  // the lower-indexed device deterministically.
  const std::size_t pending[] = {4, 4};
  const auto granted = AllocateSlots(pending, 5);
  EXPECT_EQ(granted, (std::vector<std::size_t>{3, 2}));
}

TEST(SchedulerTest, AllocateSlotsStopsWhenPendingExhausted) {
  const std::size_t pending[] = {1, 0, 2};
  const auto granted = AllocateSlots(pending, 100);
  EXPECT_EQ(granted, (std::vector<std::size_t>{1, 0, 2}));

  const auto none = AllocateSlots(std::span<const std::size_t>{}, 4);
  EXPECT_TRUE(none.empty());
}

TEST(SchedulerTest, BuildFrameSkipsIdleDevicesAndBatchesSlots) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const TwoDeviceSetup setup(surface);

  // Radar idle: the frame holds only the camera slot, batched 3x, and
  // the batch amortizes the guard interval (one guard per slot, not per
  // inference).
  const std::size_t counts[] = {3, 0};
  const auto frame = setup.scheduler.BuildFrame(counts);
  ASSERT_EQ(frame.size(), 1u);
  EXPECT_EQ(frame[0].device, "camera");
  EXPECT_EQ(frame[0].batch, 3u);
  EXPECT_DOUBLE_EQ(frame[0].start_s, 0.0);
  EXPECT_NEAR(frame[0].duration_s, 3 * 2.56e-3, 1e-9);

  const std::size_t wrong_arity[] = {1, 1, 1};
  EXPECT_THROW(setup.scheduler.BuildFrame(wrong_arity), CheckError);
}

}  // namespace
}  // namespace metaai::core
