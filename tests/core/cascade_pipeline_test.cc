// End-to-end coverage of the multi-layer (SIM cascade) pipeline: mapping,
// deployment, scheduling and serialization over an mts::LayerGraph, plus
// the non-square/non-16x16 panel shapes the layer work unblocked.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/deployment.h"
#include "core/scheduler.h"
#include "core/serialization.h"
#include "core/training.h"
#include "core/weight_mapper.h"
#include "data/datasets.h"
#include "mts/config_cache.h"
#include "mts/layer_graph.h"
#include "rf/geometry.h"

namespace metaai::core {
namespace {

sim::OtaLinkConfig DefaultLink() {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  return config;
}

TrainedModel TinyModel(std::uint64_t seed) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 8, .test_per_class = 2});
  Rng rng(seed);
  TrainingOptions options;
  options.epochs = 2;
  return TrainModel(ds.train, options, rng);
}

std::vector<mts::PhysicalLayerSpec> CascadeSpecs(std::size_t depth) {
  std::vector<mts::PhysicalLayerSpec> specs(depth);
  for (std::size_t l = 1; l < depth; ++l) {
    specs[l].surface.rows = 8;
    specs[l].surface.cols = 8;
    specs[l].coupling_gain = 1.3;
  }
  return specs;
}

TEST(CascadePipelineTest, DepthOneMappingMatchesSurfacePathBitwise) {
  const TrainedModel model = TinyModel(3);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const mts::LayerGraph graph(surface);
  const sim::OtaLink flat(surface, DefaultLink());
  const sim::OtaLink wrapped(graph, DefaultLink());

  const MappingOptions options{.scheme = MappingScheme::kSequential};
  const auto a = MapWeights(model.network.weights(), flat, options);
  const auto b = MapWeights(model.network.weights(), wrapped, options);
  EXPECT_TRUE(b.upper_rounds.empty());
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.outputs, b.outputs);
  EXPECT_EQ(a.scale, b.scale);
  EXPECT_EQ(a.mean_relative_residual, b.mean_relative_residual);
  // Cache keys must also agree: a depth-1 graph is the legacy pipeline.
  EXPECT_EQ(MappingCacheKey(model.network.weights(), flat, options),
            MappingCacheKey(model.network.weights(), wrapped, options));
}

TEST(CascadePipelineTest, DepthOneDeploymentMatchesSurfacePathBitwise) {
  const TrainedModel model = TinyModel(5);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const mts::LayerGraph graph(surface);
  const Deployment flat(model, surface, DefaultLink());
  const Deployment wrapped(model, graph, DefaultLink());

  const std::vector<double> pixels(model.input_dim(), 0.4);
  Rng rng_a(17);
  Rng rng_b(17);
  const auto scores_a = flat.ClassScores(pixels, 0.1, rng_a);
  const auto scores_b = wrapped.ClassScores(pixels, 0.1, rng_b);
  ASSERT_EQ(scores_a.size(), scores_b.size());
  for (std::size_t c = 0; c < scores_a.size(); ++c) {
    EXPECT_EQ(scores_a[c], scores_b[c]) << "class " << c;
  }
}

TEST(CascadePipelineTest, CascadeMappingSolvesUpperSchedules) {
  const TrainedModel model = TinyModel(7);
  const mts::LayerGraph graph(CascadeSpecs(2));
  const sim::OtaLink link(graph, DefaultLink());

  const MappingOptions options{.scheme = MappingScheme::kSequential};
  const auto mapped = MapWeights(model.network.weights(), link, options);
  ASSERT_EQ(mapped.upper_rounds.size(), mapped.rounds.size());
  for (std::size_t r = 0; r < mapped.rounds.size(); ++r) {
    ASSERT_EQ(mapped.upper_rounds[r].size(), 1u) << "round " << r;
    ASSERT_EQ(mapped.upper_rounds[r][0].size(), mapped.rounds[r].size());
    for (const auto& codes : mapped.upper_rounds[r][0]) {
      EXPECT_EQ(codes.size(), 64u);
    }
  }
  EXPECT_GT(mapped.scale, 0.0);
  EXPECT_LT(mapped.mean_relative_residual, 0.5);
  // Cascade keys diverge from the single-surface key of the same weights.
  const sim::OtaLink flat(graph.front(), DefaultLink());
  EXPECT_NE(MappingCacheKey(model.network.weights(), link, options),
            MappingCacheKey(model.network.weights(), flat, options));
}

TEST(CascadePipelineTest, CascadeDeploymentClassifiesDeterministically) {
  const TrainedModel model = TinyModel(9);
  const mts::LayerGraph graph(CascadeSpecs(2));
  const Deployment deep(model, graph, DefaultLink());
  EXPECT_EQ(deep.link().num_layers(), 2u);

  const std::vector<double> pixels(model.input_dim(), 0.6);
  Rng rng_a(23);
  Rng rng_b(23);
  const auto once = deep.ClassScores(pixels, 0.0, rng_a);
  const auto again = deep.ClassScores(pixels, 0.0, rng_b);
  ASSERT_EQ(once.size(), model.num_classes());
  for (std::size_t c = 0; c < once.size(); ++c) {
    EXPECT_TRUE(std::isfinite(once[c]));
    EXPECT_EQ(once[c], again[c]) << "class " << c;
  }
}

TEST(CascadePipelineTest, CacheRoundTripsCascadeSchedules) {
  // A cascade mapping restored from the config cache must carry the
  // upper-layer schedules too, bitwise.
  const TrainedModel model = TinyModel(11);
  const mts::LayerGraph graph(CascadeSpecs(2));
  const sim::OtaLink link(graph, DefaultLink());
  mts::ConfigCache cache(4);
  MappingOptions options{.scheme = MappingScheme::kSequential};
  options.cache = &cache;

  const auto cold = MapWeights(model.network.weights(), link, options);
  EXPECT_FALSE(cold.from_cache);
  const auto warm = MapWeights(model.network.weights(), link, options);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.rounds, cold.rounds);
  ASSERT_EQ(warm.upper_rounds.size(), cold.upper_rounds.size());
  for (std::size_t r = 0; r < cold.upper_rounds.size(); ++r) {
    EXPECT_EQ(warm.upper_rounds[r], cold.upper_rounds[r]) << "round " << r;
  }
  EXPECT_EQ(warm.scale, cold.scale);
}

TEST(CascadePipelineTest, NonSquarePanelMapsAndDeploys) {
  // Regression (hard-coded 16x16 assumptions): an 8x12 front panel must
  // train -> map -> deploy -> classify without any 256-atom defaults
  // leaking in.
  const TrainedModel model = TinyModel(13);
  mts::MetasurfaceSpec spec;
  spec.rows = 8;
  spec.cols = 12;
  const mts::Metasurface surface{spec};
  ASSERT_EQ(surface.num_atoms(), 96u);
  const Deployment deployment(model, surface, DefaultLink());

  const std::vector<double> pixels(model.input_dim(), 0.5);
  Rng rng(29);
  const int predicted = deployment.Classify(pixels, 0.0, rng);
  EXPECT_GE(predicted, 0);
  EXPECT_LT(predicted, static_cast<int>(model.num_classes()));

  // The solved patterns round-trip through the controller byte format at
  // the panel's own atom count.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("metaai_cascade_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const auto path = dir / "patterns96.txt";
  ASSERT_TRUE(
      TrySavePatterns(deployment.schedules(), surface.num_atoms(), path).ok());
  const auto loaded = TryLoadPatterns(path, surface.num_atoms()).value();
  EXPECT_EQ(loaded.rounds, deployment.schedules().rounds);
  std::filesystem::remove_all(dir);
}

TEST(CascadePipelineTest, SchedulerReconcilesControllerToPanelShape) {
  // Regression (satellite of the same sweep): the scheduler used to hand
  // the 256-atom/16-group default ControllerConfig to every panel. A
  // 96-atom panel must get a reconciled controller (atoms = 96, groups a
  // divisor) instead of an aborted construction.
  mts::MetasurfaceSpec spec;
  spec.rows = 8;
  spec.cols = 12;
  const mts::Metasurface surface{spec};
  std::vector<DeviceSpec> devices;
  devices.push_back({"dev0", TinyModel(15), DefaultLink(), {}});
  const SharedSurfaceScheduler scheduler(surface, std::move(devices), {});
  EXPECT_EQ(scheduler.num_devices(), 1u);
  EXPECT_EQ(scheduler.config().controller.num_atoms, 96u);
  EXPECT_EQ(96u % scheduler.config().controller.num_groups, 0u);
  // The 256-atom default is untouched for the prototype panel.
  const mts::Metasurface proto{mts::MetasurfaceSpec{}};
  std::vector<DeviceSpec> proto_devices;
  proto_devices.push_back({"dev0", TinyModel(15), DefaultLink(), {}});
  const SharedSurfaceScheduler proto_scheduler(proto, std::move(proto_devices),
                                               {});
  EXPECT_EQ(proto_scheduler.config().controller.num_atoms, 256u);
  EXPECT_EQ(proto_scheduler.config().controller.num_groups, 16u);
}

class CascadeSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("metaai_cascade_ser_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(CascadeSerializationTest, ModelLayerTrailerRoundTrips) {
  TrainedModel model = TinyModel(17);
  model.layers = CascadeSpecs(3);
  model.layers[2].surface.rows = 4;
  model.layers[2].surface.cols = 10;
  model.layers[2].coupling_gain = 2.25;

  const auto path = dir_ / "cascade_model.txt";
  ASSERT_TRUE(TrySaveModel(model, path).ok());
  const TrainedModel loaded = TryLoadModel(path).value();
  EXPECT_TRUE(loaded.network.weights() == model.network.weights());
  ASSERT_EQ(loaded.layers.size(), 3u);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_EQ(loaded.layers[l].surface.rows, model.layers[l].surface.rows);
    EXPECT_EQ(loaded.layers[l].surface.cols, model.layers[l].surface.cols);
    EXPECT_EQ(loaded.layers[l].coupling_gain, model.layers[l].coupling_gain);
    EXPECT_EQ(loaded.layers[l].surface.supported_bands_hz,
              model.layers[l].surface.supported_bands_hz);
  }
  // The trailer must rebuild a valid graph.
  EXPECT_TRUE(mts::LayerGraph::TryFromSpecs(loaded.layers).ok());
}

TEST_F(CascadeSerializationTest, LegacyModelLoadsWithEmptyLayers) {
  // K=1 backward compatibility: a model without the cascade trailer (the
  // pre-cascade file format) loads with empty layers, and saving it back
  // produces a byte-identical legacy file.
  const TrainedModel model = TinyModel(19);
  const auto path = dir_ / "legacy_model.txt";
  ASSERT_TRUE(TrySaveModel(model, path).ok());
  const TrainedModel loaded = TryLoadModel(path).value();
  EXPECT_TRUE(loaded.layers.empty());
}

TEST_F(CascadeSerializationTest, CorruptLayerTrailerIsParseError) {
  TrainedModel model = TinyModel(21);
  model.layers = CascadeSpecs(2);
  const auto path = dir_ / "model.txt";
  ASSERT_TRUE(TrySaveModel(model, path).ok());
  // Truncate the file in the middle of the layer trailer.
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  const auto trailer = content.find("layers 2");
  ASSERT_NE(trailer, std::string::npos);
  const auto truncated = dir_ / "truncated.txt";
  {
    std::ofstream out(truncated);
    out << content.substr(0, trailer + 8);
  }
  const auto result = TryLoadModel(truncated);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kParseError);
}

TEST_F(CascadeSerializationTest, PatternUpperSchedulesRoundTrip) {
  const TrainedModel model = TinyModel(23);
  const mts::LayerGraph graph(CascadeSpecs(2));
  const sim::OtaLink link(graph, DefaultLink());
  const auto mapped = MapWeights(model.network.weights(), link,
                                 {.scheme = MappingScheme::kSequential});
  ASSERT_FALSE(mapped.upper_rounds.empty());

  const auto path = dir_ / "cascade_patterns.txt";
  ASSERT_TRUE(
      TrySavePatterns(mapped, graph.front().num_atoms(), path).ok());
  const auto loaded =
      TryLoadPatterns(path, graph.front().num_atoms()).value();
  EXPECT_EQ(loaded.rounds, mapped.rounds);
  ASSERT_EQ(loaded.upper_rounds.size(), mapped.upper_rounds.size());
  for (std::size_t r = 0; r < mapped.upper_rounds.size(); ++r) {
    EXPECT_EQ(loaded.upper_rounds[r], mapped.upper_rounds[r]) << "round " << r;
  }
}

TEST_F(CascadeSerializationTest, LegacyPatternFilesLoadWithoutUpperRounds) {
  const TrainedModel model = TinyModel(25);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const sim::OtaLink link(surface, DefaultLink());
  const auto mapped = MapWeights(model.network.weights(), link,
                                 {.scheme = MappingScheme::kSequential});
  const auto path = dir_ / "legacy_patterns.txt";
  ASSERT_TRUE(TrySavePatterns(mapped, surface.num_atoms(), path).ok());
  const auto loaded = TryLoadPatterns(path, surface.num_atoms()).value();
  EXPECT_TRUE(loaded.upper_rounds.empty());
  EXPECT_EQ(loaded.rounds, mapped.rounds);
}

}  // namespace
}  // namespace metaai::core
