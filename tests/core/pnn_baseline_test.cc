#include "core/pnn_baseline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "data/datasets.h"
#include "data/encoding.h"

namespace metaai::core {
namespace {

StackedPnnConfig SmallConfig(std::size_t layers) {
  StackedPnnConfig config;
  config.input_dim = 64;
  config.num_classes = 4;
  config.atoms_per_layer = 36;
  config.num_layers = layers;
  config.epochs = 12;
  return config;
}

nn::ComplexDataset MakeTask(std::size_t per_class, std::uint64_t seed) {
  Rng rng(seed);
  nn::ComplexDataset ds;
  ds.num_classes = 4;
  ds.dim = 64;
  std::vector<std::vector<nn::Complex>> prototypes(4);
  for (auto& p : prototypes) {
    p.resize(64);
    for (auto& v : p) v = rng.UnitPhasor();
  }
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t s = 0; s < per_class; ++s) {
      std::vector<nn::Complex> x(64);
      for (std::size_t i = 0; i < 64; ++i) {
        x[i] = prototypes[c][i] + rng.ComplexNormal(0.4);
      }
      ds.features.push_back(std::move(x));
      ds.labels.push_back(static_cast<int>(c));
    }
  }
  return ds;
}

TEST(StackedPnnTest, ParameterCountIsLayersTimesAtoms) {
  StackedPnn pnn(SmallConfig(3));
  EXPECT_EQ(pnn.ParameterCount(), 3u * 36u);
}

TEST(StackedPnnTest, ScoresAreNonNegativeAndSized) {
  StackedPnn pnn(SmallConfig(2));
  Rng rng(1);
  pnn.Initialize(rng);
  std::vector<nn::Complex> x(64, nn::Complex{1.0, 0.0});
  const auto scores = pnn.ClassScores(x);
  EXPECT_EQ(scores.size(), 4u);
  for (const double s : scores) EXPECT_GE(s, 0.0);
}

TEST(StackedPnnTest, FieldIsLinearInInput) {
  // The stack is a linear optical system: detector fields scale with the
  // input (magnitude detection comes after).
  StackedPnn pnn(SmallConfig(2));
  Rng rng(2);
  pnn.Initialize(rng);
  std::vector<nn::Complex> x(64);
  for (auto& v : x) v = rng.ComplexNormal(1.0);
  std::vector<nn::Complex> x2 = x;
  for (auto& v : x2) v *= 2.0;
  const auto s1 = pnn.ClassScores(x);
  const auto s2 = pnn.ClassScores(x2);
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(s2[r], 2.0 * s1[r], 1e-9 * (1.0 + s2[r]));
  }
}

TEST(StackedPnnTest, TrainingReducesLoss) {
  const auto train = MakeTask(30, 3);
  StackedPnnConfig config = SmallConfig(2);
  StackedPnn pnn(config);
  Rng rng(4);
  pnn.Initialize(rng);
  config.epochs = 1;
  StackedPnn one_epoch(config);
  Rng rng_one(4);
  one_epoch.Initialize(rng_one);
  const double early = one_epoch.Train(train, rng_one);
  const double late = pnn.Train(train, rng);
  EXPECT_LT(late, early);
}

TEST(StackedPnnTest, LearnsBetterThanChance) {
  const auto train = MakeTask(40, 5);
  const auto test = MakeTask(15, 5);  // same prototypes (same seed)
  StackedPnn pnn(SmallConfig(3));
  Rng rng(6);
  pnn.Initialize(rng);
  pnn.Train(train, rng);
  EXPECT_GT(pnn.Evaluate(test), 0.45);  // chance = 0.25
}

TEST(StackedPnnTest, MoreLayersHelp) {
  // The Appendix A.1 / Fig 29 claim: stacking layers adds the degrees of
  // freedom a single physical layer lacks.
  const auto train = MakeTask(40, 7);
  const auto test = MakeTask(15, 7);
  double acc1 = 0.0;
  double acc4 = 0.0;
  {
    StackedPnn pnn(SmallConfig(1));
    Rng rng(8);
    pnn.Initialize(rng);
    pnn.Train(train, rng);
    acc1 = pnn.Evaluate(test);
  }
  {
    StackedPnn pnn(SmallConfig(4));
    Rng rng(8);
    pnn.Initialize(rng);
    pnn.Train(train, rng);
    acc4 = pnn.Evaluate(test);
  }
  EXPECT_GE(acc4, acc1);
}

TEST(StackedPnnTest, ValidatesConfigAndInputs) {
  StackedPnnConfig bad = SmallConfig(0);
  EXPECT_THROW(StackedPnn{bad}, CheckError);
  StackedPnn pnn(SmallConfig(2));
  Rng rng(9);
  pnn.Initialize(rng);
  EXPECT_THROW(pnn.ClassScores(std::vector<nn::Complex>(10)), CheckError);
  auto wrong = MakeTask(2, 10);
  wrong.dim = 32;
  for (auto& f : wrong.features) f.resize(32);
  EXPECT_THROW(pnn.Train(wrong, rng), CheckError);
}

}  // namespace
}  // namespace metaai::core
