#include "core/training.h"

#include <gtest/gtest.h>

#include <complex>

#include "common/check.h"
#include "data/datasets.h"
#include "data/encoding.h"

namespace metaai::core {
namespace {

data::Dataset SmallMnist() {
  return data::MakeMnistLike({.train_per_class = 30, .test_per_class = 10});
}

TEST(TrainingTest, CyclicShiftRotatesLeft) {
  std::vector<nn::Complex> v{{1, 0}, {2, 0}, {3, 0}, {4, 0}};
  CyclicShift(v, 1);
  EXPECT_DOUBLE_EQ(v[0].real(), 2.0);
  EXPECT_DOUBLE_EQ(v[3].real(), 1.0);
}

TEST(TrainingTest, CyclicShiftWrapsAndHandlesEdgeCases) {
  std::vector<nn::Complex> v{{1, 0}, {2, 0}, {3, 0}};
  CyclicShift(v, 3);  // full rotation
  EXPECT_DOUBLE_EQ(v[0].real(), 1.0);
  CyclicShift(v, 4);  // same as 1
  EXPECT_DOUBLE_EQ(v[0].real(), 2.0);
  std::vector<nn::Complex> empty;
  CyclicShift(empty, 5);  // no crash
  EXPECT_TRUE(empty.empty());
}

TEST(TrainingTest, CyclicShiftMatchesLaggedWeightSemantics) {
  // If the MTS lags by k, weight j meets data j+k. Training on shifted
  // data x'_j = x_{j+k} makes sum_j w_j x'_j == sum_j w_j x_{j+k}.
  std::vector<nn::Complex> x{{10, 0}, {20, 0}, {30, 0}, {40, 0}};
  std::vector<nn::Complex> shifted = x;
  CyclicShift(shifted, 2);
  for (std::size_t j = 0; j < x.size(); ++j) {
    EXPECT_EQ(shifted[j], x[(j + 2) % x.size()]);
  }
}

TEST(TrainingTest, TrainsAWorkingModel) {
  const auto ds = SmallMnist();
  Rng rng(1);
  const auto model = TrainModel(ds.train, {}, rng);
  EXPECT_EQ(model.input_dim(), 256u);
  EXPECT_EQ(model.num_classes(), 10u);
  EXPECT_GT(EvaluateDigital(model, ds.test), 0.6);
}

TEST(TrainingTest, ModulationIsCarriedThrough) {
  const auto ds = SmallMnist();
  Rng rng(2);
  TrainingOptions options;
  options.modulation = rf::Modulation::kQpsk;
  const auto model = TrainModel(ds.train, options, rng);
  EXPECT_EQ(model.modulation, rf::Modulation::kQpsk);
  EXPECT_GT(EvaluateDigital(model, ds.test), 0.5);
}

TEST(TrainingTest, SyncInjectionMakesModelShiftRobust) {
  const auto ds = SmallMnist();

  Rng rng_plain(3);
  const auto plain = TrainModel(ds.train, {}, rng_plain);
  Rng rng_robust(3);
  TrainingOptions robust_options;
  robust_options.sync_error_injection = true;
  const auto robust = TrainModel(ds.train, robust_options, rng_robust);

  // Evaluate both on test data shifted by 3 symbols (a typical coarse
  // detection error at 1 Msym/s).
  auto shifted_accuracy = [&](const TrainedModel& model) {
    auto encoded = data::EncodeDataset(ds.test, model.modulation);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      auto x = encoded.features[i];
      CyclicShift(x, 3);
      correct += (model.network.Predict(x) == encoded.labels[i]);
    }
    return static_cast<double>(correct) / static_cast<double>(encoded.size());
  };
  EXPECT_GT(shifted_accuracy(robust), shifted_accuracy(plain) + 0.15);
}

TEST(TrainingTest, NoiseInjectionMakesModelNoiseRobust) {
  const auto ds = SmallMnist();
  Rng rng_plain(5);
  const auto plain = TrainModel(ds.train, {}, rng_plain);
  Rng rng_robust(5);
  TrainingOptions noisy_options;
  noisy_options.input_noise_variance = 0.3;
  const auto robust = TrainModel(ds.train, noisy_options, rng_robust);

  auto noisy_accuracy = [&](const TrainedModel& model, std::uint64_t seed) {
    Rng noise_rng(seed);
    auto encoded = data::EncodeDataset(ds.test, model.modulation);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      auto x = encoded.features[i];
      for (auto& v : x) v += noise_rng.ComplexNormal(0.3);
      correct += (model.network.Predict(x) == encoded.labels[i]);
    }
    return static_cast<double>(correct) / static_cast<double>(encoded.size());
  };
  EXPECT_GE(noisy_accuracy(robust, 77), noisy_accuracy(plain, 77));
}

TEST(TrainingTest, ValidatesOptions) {
  const auto ds = SmallMnist();
  Rng rng(7);
  TrainingOptions bad;
  bad.symbol_rate_hz = 0.0;
  EXPECT_THROW(TrainModel(ds.train, bad, rng), CheckError);
}

}  // namespace
}  // namespace metaai::core
