#include "core/controller_service.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "data/datasets.h"
#include "rf/geometry.h"

namespace metaai::core {
namespace {

sim::OtaLinkConfig LinkAtAngle(double rx_deg) {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(rx_deg),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  return config;
}

TrainedModel SmallModel() {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 30, .test_per_class = 5});
  Rng rng(44);
  TrainingOptions options;
  options.epochs = 20;
  return TrainModel(ds.train, options, rng);
}

class ControllerServiceTest : public ::testing::Test {
 protected:
  mts::Metasurface surface_{mts::MetasurfaceSpec{}};
};

TEST_F(ControllerServiceTest, StableRssNeverTriggers) {
  ControllerService service(SmallModel(), surface_, LinkAtAngle(40.0));
  const auto truth = LinkAtAngle(40.0);
  for (int i = 0; i < 60; ++i) {
    EXPECT_FALSE(service.OnRssReport(-50.0, truth));
  }
  EXPECT_EQ(service.reconfigurations(), 0u);
  EXPECT_TRUE(service.armed());
  EXPECT_NEAR(service.baseline_rss_db(), -50.0, 1e-9);
}

TEST_F(ControllerServiceTest, SmallFluctuationsAreIgnored) {
  ControllerService service(SmallModel(), surface_, LinkAtAngle(40.0));
  const auto truth = LinkAtAngle(40.0);
  Rng rng(1);
  for (int i = 0; i < 80; ++i) {
    EXPECT_FALSE(service.OnRssReport(-50.0 + rng.Uniform(-2.0, 2.0), truth));
  }
  EXPECT_EQ(service.reconfigurations(), 0u);
}

TEST_F(ControllerServiceTest, PersistentDropTriggersRecalibration) {
  ControllerService service(SmallModel(), surface_, LinkAtAngle(40.0));
  // Establish the baseline at the calibrated position.
  for (int i = 0; i < 20; ++i) {
    service.OnRssReport(-50.0, LinkAtAngle(40.0));
  }
  ASSERT_TRUE(service.armed());

  // The receiver moves to 25 degrees: RSS collapses.
  const auto moved = LinkAtAngle(25.0);
  bool triggered = false;
  for (int i = 0; i < 20 && !triggered; ++i) {
    triggered = service.OnRssReport(-62.0, moved);
  }
  EXPECT_TRUE(triggered);
  EXPECT_EQ(service.reconfigurations(), 1u);
  // The new deployment points near the receiver's true bearing.
  EXPECT_NEAR(
      rf::RadToDeg(service.deployment().link().config().geometry.rx_angle_rad),
      25.0, 2.5);
  // The trigger disarms while the new baseline settles.
  EXPECT_FALSE(service.armed());
}

TEST_F(ControllerServiceTest, ReArmsAfterSettling) {
  ControllerService service(SmallModel(), surface_, LinkAtAngle(40.0));
  for (int i = 0; i < 20; ++i) service.OnRssReport(-50.0, LinkAtAngle(40.0));
  // First move; once recalibrated the reported RSS recovers.
  const auto moved = LinkAtAngle(25.0);
  for (int i = 0; i < 20 && service.reconfigurations() == 0; ++i) {
    service.OnRssReport(-62.0, moved);
  }
  ASSERT_EQ(service.reconfigurations(), 1u);
  // Stable at the new spot: baseline re-established.
  for (int i = 0; i < 20; ++i) service.OnRssReport(-52.0, moved);
  EXPECT_TRUE(service.armed());
  // Second move triggers again.
  const auto moved_again = LinkAtAngle(12.0);
  bool triggered = false;
  for (int i = 0; i < 20 && !triggered; ++i) {
    triggered = service.OnRssReport(-64.0, moved_again);
  }
  EXPECT_TRUE(triggered);
  EXPECT_EQ(service.reconfigurations(), 2u);
}

TEST_F(ControllerServiceTest, EventsAuditTheLifecycle) {
  ControllerService service(SmallModel(), surface_, LinkAtAngle(40.0));
  for (int i = 0; i < 20; ++i) service.OnRssReport(-50.0, LinkAtAngle(40.0));
  for (int i = 0; i < 20; ++i) service.OnRssReport(-62.0, LinkAtAngle(25.0));
  const auto& events = service.events();
  ASSERT_GE(events.size(), 4u);
  EXPECT_NE(events[0].what.find("deployed initial"), std::string::npos);
  bool saw_baseline = false;
  bool saw_drop = false;
  bool saw_redeploy = false;
  for (const auto& event : events) {
    saw_baseline |= event.what.find("baseline") != std::string::npos;
    saw_drop |= event.what.find("RSS drop") != std::string::npos;
    saw_redeploy |= event.what.find("redeployed") != std::string::npos;
  }
  EXPECT_TRUE(saw_baseline);
  EXPECT_TRUE(saw_drop);
  EXPECT_TRUE(saw_redeploy);
}

TEST_F(ControllerServiceTest, ValidatesConfig) {
  ControllerServiceConfig bad;
  bad.report_window = 0;
  EXPECT_THROW(ControllerService(SmallModel(), surface_, LinkAtAngle(40.0),
                                 bad),
               CheckError);
}

}  // namespace
}  // namespace metaai::core
