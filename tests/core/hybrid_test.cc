#include "core/hybrid.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "data/datasets.h"
#include "rf/geometry.h"

namespace metaai::core {
namespace {

TEST(HybridTest, DimensionsAreWired) {
  HybridModel model(256, 24, 10, rf::Modulation::kQam256);
  EXPECT_EQ(model.input_dim(), 256u);
  EXPECT_EQ(model.hidden_units(), 24u);
  EXPECT_EQ(model.num_classes(), 10u);
  EXPECT_EQ(model.ota_layer().num_classes(), 24u);  // surface computes H
}

TEST(HybridTest, TrainsAndBeatsChance) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 60, .test_per_class = 15});
  HybridModel model(ds.train.dim, 24, ds.num_classes,
                    rf::Modulation::kQam256);
  Rng rng(1);
  model.Initialize(rng);
  HybridTrainOptions options;
  options.epochs = 60;
  options.learning_rate = 0.03;
  model.Train(ds.train, options, rng);
  EXPECT_GT(model.Evaluate(ds.test), 0.6);
}

TEST(HybridTest, PredictionIsScaleInvariant) {
  // Mean normalization makes the head insensitive to the channel's
  // unknown positive gain: scores scaled by any constant give identical
  // predictions.
  HybridModel model(64, 16, 5, rf::Modulation::kQam256);
  Rng rng(2);
  model.Initialize(rng);
  std::vector<double> scores(16);
  for (auto& s : scores) s = rng.Uniform(0.1, 2.0);
  const int base = model.PredictFromHiddenScores(scores);
  for (const double scale : {1e-6, 0.3, 7.0, 1e6}) {
    std::vector<double> scaled = scores;
    for (auto& s : scaled) s *= scale;
    EXPECT_EQ(model.PredictFromHiddenScores(scaled), base)
        << "scale " << scale;
  }
}

TEST(HybridTest, TrainingReducesLoss) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 30, .test_per_class = 5});
  HybridModel model(ds.train.dim, 16, ds.num_classes,
                    rf::Modulation::kQam256);
  Rng rng(3);
  model.Initialize(rng);
  HybridTrainOptions one;
  one.epochs = 1;
  const double early = model.Train(ds.train, one, rng);
  HybridTrainOptions more;
  more.epochs = 20;
  const double late = model.Train(ds.train, more, rng);
  EXPECT_LT(late, early);
}

TEST(HybridTest, OverTheAirEvaluationWorks) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 60, .test_per_class = 15});
  HybridModel model(ds.train.dim, 24, ds.num_classes,
                    rf::Modulation::kQam256);
  Rng rng(4);
  model.Initialize(rng);
  HybridTrainOptions options;
  options.epochs = 30;
  options.sync_error_injection = true;
  options.sync_gamma_scale_us = 1.85 * 256.0 / 784.0;
  model.Train(ds.train, options, rng);

  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig link;
  link.geometry = {.tx_distance_m = 1.0,
                   .tx_angle_rad = rf::DegToRad(30.0),
                   .rx_distance_m = 3.0,
                   .rx_angle_rad = rf::DegToRad(40.0),
                   .frequency_hz = 5.25e9};
  link.environment.profile = rf::OfficeProfile();
  sim::SyncModelConfig sync_config;
  sync_config.latency_scale = 256.0 / 784.0;
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  Rng eval_rng(5);
  const double ota = EvaluateHybridOverTheAir(model, surface, link, ds.test,
                                              sync, eval_rng, 80);
  EXPECT_GT(ota, 0.55);
}

TEST(HybridTest, ValidatesArguments) {
  EXPECT_THROW(HybridModel(10, 0, 3, rf::Modulation::kBpsk), CheckError);
  HybridModel model(16, 8, 3, rf::Modulation::kBpsk);
  Rng rng(6);
  model.Initialize(rng);
  EXPECT_THROW(model.PredictFromHiddenScores(std::vector<double>(4)),
               CheckError);
  nn::RealDataset wrong;
  wrong.num_classes = 3;
  wrong.dim = 5;
  wrong.features.push_back(std::vector<double>(5, 0.1));
  wrong.labels.push_back(0);
  EXPECT_THROW(model.Train(wrong, {}, rng), CheckError);
}

}  // namespace
}  // namespace metaai::core
