#include "core/fusion.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace metaai::core {
namespace {

TEST(FusionTest, ConcatenationShapesAreCorrect) {
  const auto ds = data::MakeUscHadLike(
      {.train_per_class = 10, .test_per_class = 4});
  const auto one = ConcatenateSensors(ds, 1, /*use_train=*/true);
  const auto two = ConcatenateSensors(ds, 2, /*use_train=*/true);
  EXPECT_EQ(one.dim, 256u);
  EXPECT_EQ(two.dim, 512u);
  EXPECT_EQ(one.size(), two.size());
  EXPECT_EQ(one.labels, two.labels);
}

TEST(FusionTest, ConcatenationPreservesPerSensorBlocks) {
  const auto ds = data::MakeUscHadLike(
      {.train_per_class = 4, .test_per_class = 2});
  const auto fused = ConcatenateSensors(ds, 2, /*use_train=*/true);
  const auto& s0 = ds.train_sensors[0].features[0];
  const auto& s1 = ds.train_sensors[1].features[0];
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_DOUBLE_EQ(fused.features[0][i], s0[i]);
    EXPECT_DOUBLE_EQ(fused.features[0][256 + i], s1[i]);
  }
}

TEST(FusionTest, MoreSensorsImproveAccuracy) {
  // The Fig 20 claim: fusing sensors lifts accuracy substantially.
  const auto ds = data::MakeUscHadLike();
  Rng rng1(1);
  const auto single = TrainFusedModel(ds, 1, {}, rng1);
  const double acc1 = EvaluateFusedDigital(single, ds, 1);
  Rng rng2(1);
  const auto both = TrainFusedModel(ds, 2, {}, rng2);
  const double acc2 = EvaluateFusedDigital(both, ds, 2);
  EXPECT_GT(acc2, acc1);
}

TEST(FusionTest, FusedModelDimensionsMatch) {
  const auto ds = data::MakeMultiPieLike(
      {.train_per_class = 8, .test_per_class = 2});
  Rng rng(2);
  const auto model = TrainFusedModel(ds, 3, {}, rng);
  EXPECT_EQ(model.input_dim(), 3u * 256u);
  EXPECT_EQ(model.num_classes(), 10u);
}

TEST(FusionTest, ValidatesSensorCount) {
  const auto ds = data::MakeUscHadLike(
      {.train_per_class = 2, .test_per_class = 1});
  EXPECT_THROW(ConcatenateSensors(ds, 0, true), CheckError);
  EXPECT_THROW(ConcatenateSensors(ds, 3, true), CheckError);
}

}  // namespace
}  // namespace metaai::core
