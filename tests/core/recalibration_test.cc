#include "core/recalibration.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "data/datasets.h"
#include "rf/geometry.h"

namespace metaai::core {
namespace {

sim::OtaLinkConfig LinkAtAngle(double rx_angle_deg) {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(rx_angle_deg),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  return config;
}

TEST(RecalibrationTest, EstimatesAngleAndAccountsLatency) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const auto truth = LinkAtAngle(40.0).geometry;
  mts::Metasurface probe_surface{mts::MetasurfaceSpec{}};
  const auto probe = [&](std::span<const mts::PhaseCode> codes) {
    std::vector<mts::PhaseCode> copy(codes.begin(), codes.end());
    probe_surface.SetAllCodes(copy);
    return std::norm(probe_surface.Response(truth));
  };
  const mts::Controller controller;
  const auto report = EstimateReceiverAngle(
      surface, LinkAtAngle(0.0).geometry, probe, 2560, controller);
  EXPECT_NEAR(rf::RadToDeg(report.estimated_angle_rad), 40.0, 2.5);
  EXPECT_EQ(report.probes, 31u);
  EXPECT_GT(report.scan_latency_s, 0.0);
  EXPECT_GT(report.solve_latency_s, 0.0);
  EXPECT_DOUBLE_EQ(report.total_latency_s,
                   report.scan_latency_s + report.solve_latency_s);
  EXPECT_GT(report.max_trackable_angular_speed_rad_s, 0.0);
}

TEST(RecalibrationTest, RecalibratedDeploymentRecoversAccuracy) {
  // The receiver moved from 40 deg (calibrated) to 22 deg: a stale
  // deployment collapses; recalibration recovers it.
  const auto ds =
      data::MakeMnistLike({.train_per_class = 60, .test_per_class = 12});
  Rng rng(1);
  const auto model = TrainModel(ds.train, {}, rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};

  const auto true_link = LinkAtAngle(22.0);
  // Stale deployment: maps weights assuming 40 deg but the channel is at
  // 22 deg — simulate by deploying on the true link with schedules solved
  // for the wrong steering.
  sim::OtaLinkConfig stale = true_link;
  stale.geometry.rx_angle_rad = rf::DegToRad(40.0);
  const Deployment stale_deployment(model, surface, stale);
  // Its schedules were solved for 40 deg; transmit them over the true
  // 22-deg link.
  const sim::OtaLink truth_link(surface, true_link);
  // (Accuracy of the stale mapping over the true channel is evaluated via
  // the recalibration path below; here we check the pipeline end to end.)

  const auto result =
      RecalibrateForReceiver(model, surface, stale, true_link);
  EXPECT_NEAR(rf::RadToDeg(result.report.estimated_angle_rad), 22.0, 2.5);

  Rng eval_rng(2);
  const double recovered = result.deployment.EvaluateAccuracyAtOffset(
      ds.test, 0.0, eval_rng, 60);
  EXPECT_GT(recovered, 0.6);
}

TEST(RecalibrationTest, TrackingSpeedScalesWithScanResolution) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const auto truth = LinkAtAngle(30.0).geometry;
  mts::Metasurface probe_surface{mts::MetasurfaceSpec{}};
  const auto probe = [&](std::span<const mts::PhaseCode> codes) {
    std::vector<mts::PhaseCode> copy(codes.begin(), codes.end());
    probe_surface.SetAllCodes(copy);
    return std::norm(probe_surface.Response(truth));
  };
  const mts::Controller controller;
  RecalibrationConfig coarse;
  coarse.scan_steps = 7;
  RecalibrationConfig fine;
  fine.scan_steps = 61;
  const auto coarse_report = EstimateReceiverAngle(
      surface, LinkAtAngle(0.0).geometry, probe, 2560, controller, coarse);
  const auto fine_report = EstimateReceiverAngle(
      surface, LinkAtAngle(0.0).geometry, probe, 2560, controller, fine);
  // Fewer probes -> lower latency but coarser steps; the trackable-speed
  // metric reflects the step/latency trade-off.
  EXPECT_LT(coarse_report.scan_latency_s, fine_report.scan_latency_s);
  EXPECT_GT(coarse_report.max_trackable_angular_speed_rad_s,
            fine_report.max_trackable_angular_speed_rad_s);
}

TEST(RecalibrationTest, ValidatesArguments) {
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const mts::Controller controller;
  RecalibrationConfig bad;
  bad.scan_steps = 1;
  EXPECT_THROW(EstimateReceiverAngle(surface, LinkAtAngle(0.0).geometry,
                                     [](std::span<const mts::PhaseCode>) {
                                       return 1.0;
                                     },
                                     10, controller, bad),
               CheckError);
  EXPECT_THROW(EstimateReceiverAngle(surface, LinkAtAngle(0.0).geometry,
                                     nullptr, 10, controller),
               CheckError);
}

}  // namespace
}  // namespace metaai::core
