#include "core/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/check.h"
#include "common/result.h"
#include "core/weight_mapper.h"
#include "data/datasets.h"
#include "rf/geometry.h"

namespace metaai::core {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("metaai_ser_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(SerializationTest, ModelRoundTripsExactly) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 10, .test_per_class = 4});
  Rng rng(1);
  TrainingOptions options;
  options.epochs = 3;
  options.modulation = rf::Modulation::kQam64;
  const auto model = TrainModel(ds.train, options, rng);

  const auto path = dir_ / "model.txt";
  ASSERT_TRUE(TrySaveModel(model, path).ok());
  const auto loaded = TryLoadModel(path).value();

  EXPECT_EQ(loaded.modulation, rf::Modulation::kQam64);
  EXPECT_EQ(loaded.input_dim(), model.input_dim());
  EXPECT_EQ(loaded.num_classes(), model.num_classes());
  // Bit-exact round trip (max_digits10 precision).
  EXPECT_TRUE(loaded.network.weights() == model.network.weights());
}

TEST_F(SerializationTest, LoadedModelPredictsIdentically) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 10, .test_per_class = 10});
  Rng rng(2);
  TrainingOptions options;
  options.epochs = 3;
  const auto model = TrainModel(ds.train, options, rng);
  const auto path = dir_ / "model.txt";
  ASSERT_TRUE(TrySaveModel(model, path).ok());
  const auto loaded = TryLoadModel(path).value();
  EXPECT_DOUBLE_EQ(EvaluateDigital(model, ds.test),
                   EvaluateDigital(loaded, ds.test));
}

// Each failure mode carries a distinct typed error: unreadable files
// are kIoError, readable-but-wrong content is kParseError.
TEST_F(SerializationTest, CorruptModelFilesAreParseErrors) {
  const auto path = dir_ / "bad.txt";
  {
    std::ofstream out(path);
    out << "not-a-model\n";
  }
  const auto corrupt = TryLoadModel(path);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.error().code, ErrorCode::kParseError);
  EXPECT_NE(corrupt.error().message.find("not a metaai model"),
            std::string::npos);
}

TEST_F(SerializationTest, MissingModelFileIsIoError) {
  const auto missing = TryLoadModel(dir_ / "missing.txt");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kIoError);
}

TEST_F(SerializationTest, TruncatedModelFileIsParseError) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 6, .test_per_class = 2});
  Rng rng(6);
  TrainingOptions options;
  options.epochs = 1;
  const auto model = TrainModel(ds.train, options, rng);
  const auto path = dir_ / "model.txt";
  ASSERT_TRUE(TrySaveModel(model, path).ok());

  std::ifstream in(path);
  std::string head;
  for (int i = 0; i < 3; ++i) {
    std::string line;
    std::getline(in, line);
    head += line + "\n";
  }
  in.close();
  const auto truncated = dir_ / "truncated.txt";
  {
    std::ofstream out(truncated);
    out << head;
  }
  const auto result = TryLoadModel(truncated);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kParseError);
}

TEST_F(SerializationTest, SaveToUnwritablePathIsIoError) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 6, .test_per_class = 2});
  Rng rng(7);
  TrainingOptions options;
  options.epochs = 1;
  const auto model = TrainModel(ds.train, options, rng);
  const auto result = TrySaveModel(model, dir_ / "no_such_dir" / "model.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kIoError);
}

TEST_F(SerializationTest, PatternsRoundTripExactly) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 6, .test_per_class = 2});
  Rng rng(3);
  TrainingOptions options;
  options.epochs = 2;
  const auto model = TrainModel(ds.train, options, rng);

  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig link_config;
  link_config.geometry = {.tx_distance_m = 1.0,
                          .tx_angle_rad = rf::DegToRad(30.0),
                          .rx_distance_m = 3.0,
                          .rx_angle_rad = rf::DegToRad(40.0),
                          .frequency_hz = 5.25e9};
  const sim::OtaLink link(surface, link_config);
  const auto mapped = MapWeights(model.network.weights(), link,
                                 {.scheme = MappingScheme::kSequential});

  const auto path = dir_ / "patterns.txt";
  ASSERT_TRUE(TrySavePatterns(mapped, surface.num_atoms(), path).ok());
  const auto loaded = TryLoadPatterns(path, surface.num_atoms()).value();

  ASSERT_EQ(loaded.rounds.size(), mapped.rounds.size());
  EXPECT_EQ(loaded.outputs, mapped.outputs);
  EXPECT_DOUBLE_EQ(loaded.scale, mapped.scale);
  for (std::size_t r = 0; r < mapped.rounds.size(); ++r) {
    ASSERT_EQ(loaded.rounds[r].size(), mapped.rounds[r].size());
    for (std::size_t i = 0; i < mapped.rounds[r].size(); ++i) {
      EXPECT_EQ(loaded.rounds[r][i], mapped.rounds[r][i])
          << "round " << r << " symbol " << i;
    }
  }
}

TEST_F(SerializationTest, PatternFileIsCompactHex) {
  // 256 atoms at 2 bits each = 128 hex characters per symbol line.
  const auto ds =
      data::MakeMnistLike({.train_per_class = 6, .test_per_class = 2});
  Rng rng(4);
  TrainingOptions options;
  options.epochs = 1;
  const auto model = TrainModel(ds.train, options, rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig link_config;
  link_config.geometry.frequency_hz = 5.25e9;
  link_config.geometry.tx_distance_m = 1.0;
  link_config.geometry.rx_distance_m = 3.0;
  const sim::OtaLink link(surface, link_config);
  const auto mapped = MapWeights(model.network.weights(), link,
                                 {.scheme = MappingScheme::kSequential});
  const auto path = dir_ / "patterns.txt";
  ASSERT_TRUE(TrySavePatterns(mapped, surface.num_atoms(), path).ok());

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // magic
  std::getline(in, line);  // dims
  std::getline(in, line);  // scale
  std::getline(in, line);  // round outputs
  std::getline(in, line);  // first pattern
  EXPECT_EQ(line.size(), 128u);
}

TEST_F(SerializationTest, PatternAtomMismatchIsParseError) {
  const auto ds =
      data::MakeMnistLike({.train_per_class = 6, .test_per_class = 2});
  Rng rng(5);
  TrainingOptions options;
  options.epochs = 1;
  const auto model = TrainModel(ds.train, options, rng);
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  sim::OtaLinkConfig link_config;
  link_config.geometry.tx_distance_m = 1.0;
  link_config.geometry.rx_distance_m = 3.0;
  const sim::OtaLink link(surface, link_config);
  const auto mapped = MapWeights(model.network.weights(), link,
                                 {.scheme = MappingScheme::kSequential});
  const auto path = dir_ / "patterns.txt";
  ASSERT_TRUE(TrySavePatterns(mapped, surface.num_atoms(), path).ok());
  const auto mismatch = TryLoadPatterns(path, 64);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.error().code, ErrorCode::kParseError);
}

TEST_F(SerializationTest, EmptySchedulesAreInvalidArguments) {
  const auto result = TrySavePatterns(MappedSchedules{}, 256, dir_ / "p.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace metaai::core
