#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "data/datasets.h"
#include "obs/alerts.h"
#include "obs/lifecycle.h"
#include "obs/timeseries.h"
#include "rf/geometry.h"
#include "serve/runtime.h"

namespace metaai::fleet {
namespace {

const data::Dataset& SmallDataset() {
  static const data::Dataset ds =
      data::MakeMnistLike({.train_per_class = 10, .test_per_class = 4});
  return ds;
}

const core::TrainedModel& SmallModel() {
  static const core::TrainedModel model = [] {
    Rng rng(3);
    core::TrainingOptions options;
    options.epochs = 5;
    return core::TrainModel(SmallDataset().train, options, rng);
  }();
  return model;
}

sim::OtaLinkConfig ClientLink() {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  return config;
}

mts::LayerGraph DefaultGraph() {
  return mts::LayerGraph::FromSurface(
      mts::Metasurface{mts::MetasurfaceSpec{}});
}

ShardSpec MakeShard(const std::string& name) {
  return {.name = name, .graph = DefaultGraph()};
}

TenantSpec MakeTenant(const std::string& name, double rate_hz = 50.0) {
  return {.client = {.name = name,
                     .model = SmallModel(),
                     .link = ClientLink(),
                     .deployment = {}},
          .arrival_rate_hz = rate_hz};
}

/// Shared solver-result cache across every fleet in this binary: the
/// tenants all deploy the same model on the same panel, so only the
/// very first construction solves.
FleetOptions SharedOptions() {
  static const std::shared_ptr<mts::ConfigCache> cache =
      std::make_shared<mts::ConfigCache>();
  FleetOptions options;
  options.cache = cache;
  return options;
}

std::vector<serve::ServeRequest> SmallTrace(std::size_t count,
                                            std::size_t num_tenants) {
  const auto& test = SmallDataset().test;
  std::vector<serve::ServeRequest> requests;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t pick = i % test.size();
    requests.push_back({.id = i,
                        .client = i % num_tenants,
                        .arrival_s = static_cast<double>(i) * 1e-4,
                        .pixels = test.features[pick],
                        .label = test.labels[pick]});
  }
  return requests;
}

sim::SyncModel DefaultSync() {
  sim::SyncModelConfig config;
  config.latency_scale = 0.3;
  return sim::SyncModel(sim::SyncMode::kCdfa, config);
}

std::vector<int> Predictions(std::span<const serve::ServeResponse> responses) {
  std::vector<int> predicted;
  predicted.reserve(responses.size());
  for (const serve::ServeResponse& response : responses) {
    predicted.push_back(response.predicted);
  }
  return predicted;
}

TEST(FleetTest, TryCreateReportsTypedErrors) {
  std::vector<TenantSpec> one_tenant;
  one_tenant.push_back(MakeTenant("t0"));

  const auto no_shards = Fleet::TryCreate({}, std::move(one_tenant));
  ASSERT_FALSE(no_shards.ok());
  EXPECT_EQ(no_shards.error().code, ErrorCode::kInvalidArgument);

  std::vector<ShardSpec> one_shard;
  one_shard.push_back(MakeShard("s0"));
  const auto no_tenants = Fleet::TryCreate(std::move(one_shard), {});
  ASSERT_FALSE(no_tenants.ok());
  EXPECT_EQ(no_tenants.error().code, ErrorCode::kInvalidArgument);

  {
    std::vector<ShardSpec> shards;
    shards.push_back(MakeShard("s0"));
    shards[0].budget_cap = 1.5;
    std::vector<TenantSpec> tenants;
    tenants.push_back(MakeTenant("t0"));
    const auto bad_cap =
        Fleet::TryCreate(std::move(shards), std::move(tenants));
    ASSERT_FALSE(bad_cap.ok());
    EXPECT_EQ(bad_cap.error().code, ErrorCode::kInvalidArgument);
  }
  {
    // The default panel only responds around 5.25 GHz.
    std::vector<ShardSpec> shards;
    shards.push_back(MakeShard("s0"));
    shards[0].band_hz = 2.4e9;
    std::vector<TenantSpec> tenants;
    tenants.push_back(MakeTenant("t0"));
    const auto bad_band =
        Fleet::TryCreate(std::move(shards), std::move(tenants));
    ASSERT_FALSE(bad_band.ok());
    EXPECT_EQ(bad_band.error().code, ErrorCode::kInvalidArgument);
  }
  {
    std::vector<ShardSpec> shards;
    shards.push_back(MakeShard("s0"));
    std::vector<TenantSpec> tenants;
    tenants.push_back(MakeTenant("t0"));
    FleetOptions options;
    options.migrations = {{.tenant = 5, .to_shard = 0, .cutover_s = 0.1}};
    const auto unknown = Fleet::TryCreate(std::move(shards),
                                          std::move(tenants), options);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.error().code, ErrorCode::kInvalidArgument);
  }
}

TEST(FleetTest, IncompatibleOrOversubscribedTenantsAreUnavailable) {
  {
    // A 2.4 GHz tenant cannot ride a 5.25 GHz shard.
    std::vector<ShardSpec> shards;
    shards.push_back(MakeShard("s0"));
    std::vector<TenantSpec> tenants;
    tenants.push_back(MakeTenant("t0"));
    tenants[0].client.link.geometry.frequency_hz = 2.4e9;
    const auto off_band =
        Fleet::TryCreate(std::move(shards), std::move(tenants));
    ASSERT_FALSE(off_band.ok());
    EXPECT_EQ(off_band.error().code, ErrorCode::kUnavailable);
  }
  {
    // A link outside the panel's field of view is unplaceable too.
    std::vector<ShardSpec> shards;
    shards.push_back(MakeShard("s0"));
    std::vector<TenantSpec> tenants;
    tenants.push_back(MakeTenant("t0"));
    tenants[0].client.link.geometry.tx_angle_rad = rf::DegToRad(75.0);
    const auto off_fov =
        Fleet::TryCreate(std::move(shards), std::move(tenants));
    ASSERT_FALSE(off_fov.ok());
    EXPECT_EQ(off_fov.error().code, ErrorCode::kUnavailable);
  }
  {
    // Demand beyond every shard's switch-rate budget.
    std::vector<ShardSpec> shards;
    shards.push_back(MakeShard("s0"));
    shards.push_back(MakeShard("s1"));
    std::vector<TenantSpec> tenants;
    tenants.push_back(MakeTenant("t0", /*rate_hz=*/1e6));
    const auto oversubscribed =
        Fleet::TryCreate(std::move(shards), std::move(tenants));
    ASSERT_FALSE(oversubscribed.ok());
    EXPECT_EQ(oversubscribed.error().code, ErrorCode::kUnavailable);
  }
  {
    // Migration destination the tenant cannot use (narrow-FoV panel).
    std::vector<ShardSpec> shards;
    shards.push_back(MakeShard("s0"));
    mts::MetasurfaceSpec narrow;
    narrow.fov_deg = 20.0;
    shards.push_back({.name = "s1",
                      .graph = mts::LayerGraph::FromSurface(
                          mts::Metasurface{narrow})});
    std::vector<TenantSpec> tenants;
    tenants.push_back(MakeTenant("t0"));
    FleetOptions options;
    options.migrations = {{.tenant = 0, .to_shard = 1, .cutover_s = 0.1}};
    const auto bad_dest = Fleet::TryCreate(std::move(shards),
                                           std::move(tenants), options);
    ASSERT_FALSE(bad_dest.ok());
    EXPECT_EQ(bad_dest.error().code, ErrorCode::kUnavailable);
  }
}

TEST(FleetTest, PlacementIsDeterministic) {
  const auto build = [] {
    std::vector<ShardSpec> shards;
    shards.push_back(MakeShard("s0"));
    shards.push_back(MakeShard("s1"));
    std::vector<TenantSpec> tenants;
    tenants.push_back(MakeTenant("t0", 120.0));
    tenants.push_back(MakeTenant("t1", 40.0));
    tenants.push_back(MakeTenant("t2", 80.0));
    tenants.push_back(MakeTenant("t3", 40.0));
    return Fleet::TryCreate(std::move(shards), std::move(tenants),
                            SharedOptions())
        .value();
  };
  const Fleet first = build();
  const Fleet second = build();
  ASSERT_EQ(first.num_tenants(), 4u);
  for (std::size_t t = 0; t < first.num_tenants(); ++t) {
    EXPECT_EQ(first.placement()[t].shard, second.placement()[t].shard);
    EXPECT_EQ(first.placement()[t].local_index,
              second.placement()[t].local_index);
    EXPECT_EQ(first.placement()[t].demand_patterns_hz,
              second.placement()[t].demand_patterns_hz);
  }
  // Everything fits the first shard's budget, so FFD never opens s1.
  for (std::size_t t = 0; t < first.num_tenants(); ++t) {
    EXPECT_EQ(first.placement()[t].shard, 0u);
  }
  EXPECT_TRUE(first.shard_active(0));
  EXPECT_FALSE(first.shard_active(1));
}

TEST(FleetTest, SingleShardFleetMatchesBareRuntimeBitwise) {
  // Warm the shared cache first: both the fleet and the bare runtime
  // then restore the mapping as cache hits, so the request logs carry
  // identical provenance even when this test runs in its own process.
  {
    std::vector<serve::ClientSpec> warm;
    warm.push_back(MakeTenant("warmup").client);
    serve::RuntimeOptions warm_options;
    warm_options.cache = SharedOptions().cache;
    const serve::Runtime warmup =
        serve::Runtime::TryCreate(DefaultGraph(), std::move(warm),
                                  std::move(warm_options))
            .value();
  }
  std::vector<ShardSpec> shards;
  shards.push_back(MakeShard("solo"));
  std::vector<TenantSpec> tenants;
  tenants.push_back(MakeTenant("alpha"));
  tenants.push_back(MakeTenant("beta"));
  const Fleet fleet = Fleet::TryCreate(std::move(shards), std::move(tenants),
                                       SharedOptions())
                          .value();

  serve::RuntimeOptions runtime_options;
  runtime_options.cache = SharedOptions().cache;
  std::vector<serve::ClientSpec> clients;
  clients.push_back(MakeTenant("alpha").client);
  clients.push_back(MakeTenant("beta").client);
  const serve::Runtime bare(DefaultGraph(), std::move(clients),
                            runtime_options);

  const auto requests = SmallTrace(24, 2);
  const sim::SyncModel sync = DefaultSync();
  Rng fleet_rng(99);
  Rng bare_rng(99);
  const FleetResult via_fleet = fleet.Run(requests, sync, fleet_rng);
  const serve::ServeResult direct = bare.Run(requests, sync, bare_rng);

  ASSERT_EQ(via_fleet.responses.size(), direct.responses.size());
  for (std::size_t i = 0; i < direct.responses.size(); ++i) {
    EXPECT_EQ(via_fleet.responses[i].predicted, direct.responses[i].predicted);
    EXPECT_EQ(via_fleet.responses[i].client, direct.responses[i].client);
    EXPECT_EQ(via_fleet.responses[i].rejected, direct.responses[i].rejected);
    EXPECT_EQ(via_fleet.responses[i].start_s, direct.responses[i].start_s);
    EXPECT_EQ(via_fleet.responses[i].finish_s, direct.responses[i].finish_s);
  }
  // The untouched shard slice and the merged exports are both
  // byte-identical to the bare run (single shard: local == global).
  EXPECT_EQ(obs::ToRequestsJsonl(via_fleet.shard_results[0].request_log),
            obs::ToRequestsJsonl(direct.request_log));
  EXPECT_EQ(obs::ToRequestsJsonl(via_fleet.request_log),
            obs::ToRequestsJsonl(direct.request_log));
  EXPECT_EQ(obs::health::ToAlertsJsonl(via_fleet.alerts),
            obs::health::ToAlertsJsonl(direct.alerts));
  EXPECT_EQ(via_fleet.stats.served, direct.stats.served);
  EXPECT_EQ(via_fleet.stats.frames, direct.stats.frames);
  EXPECT_EQ(via_fleet.stats.latency_p99_s, direct.stats.latency_p99_s);
}

TEST(FleetTest, MigrationFlipsRoutingButPreservesPredictionsBitwise) {
  const auto build = [](std::vector<Migration> migrations) {
    std::vector<ShardSpec> shards;
    shards.push_back(MakeShard("home"));
    shards.push_back(MakeShard("dest"));
    std::vector<TenantSpec> tenants;
    tenants.push_back(MakeTenant("stay"));
    tenants.push_back(MakeTenant("mover"));
    FleetOptions options = SharedOptions();
    options.migrations = std::move(migrations);
    return Fleet::TryCreate(std::move(shards), std::move(tenants),
                            std::move(options))
        .value();
  };
  const auto requests = SmallTrace(30, 2);
  const double cutover_s = requests[requests.size() / 2].arrival_s;
  const Fleet stay = build({});
  const Fleet move = build({{.tenant = 1, .to_shard = 1,
                             .cutover_s = cutover_s}});

  // Both tenants pack onto the home shard; the migrated fleet routes
  // tenant 1 to the destination from the cutover onward.
  EXPECT_EQ(move.Route(1, cutover_s - 1e-6).first, 0u);
  EXPECT_EQ(move.Route(1, cutover_s).first, 1u);
  EXPECT_EQ(move.Route(0, cutover_s).first, 0u);

  const sim::SyncModel sync = DefaultSync();
  Rng stay_rng(7);
  Rng move_rng(7);
  const FleetResult before = stay.Run(requests, sync, stay_rng);
  const FleetResult after = move.Run(requests, sync, move_rng);

  // The destination actually served the post-cutover slice...
  EXPECT_GT(after.shard_results[1].stats.served, 0u);
  EXPECT_LT(after.shard_results[0].stats.served, before.stats.served);
  // ...and per-request predictions survived the cutover bit for bit:
  // streams are forked per global request and the identical destination
  // shard warmed from the shared cache.
  ASSERT_EQ(before.responses.size(), after.responses.size());
  for (std::size_t i = 0; i < before.responses.size(); ++i) {
    if (before.responses[i].rejected != serve::RejectReason::kNone ||
        after.responses[i].rejected != serve::RejectReason::kNone) {
      continue;
    }
    EXPECT_EQ(before.responses[i].predicted, after.responses[i].predicted);
    EXPECT_EQ(before.responses[i].client, after.responses[i].client);
  }
  EXPECT_EQ(Predictions(before.responses), Predictions(after.responses));
}

TEST(FleetTest, ExportsAreByteIdenticalAcrossThreadCounts) {
  std::vector<ShardSpec> shards;
  shards.push_back(MakeShard("s0"));
  shards.push_back(MakeShard("s1"));
  std::vector<TenantSpec> tenants;
  tenants.push_back(MakeTenant("t0"));
  tenants.push_back(MakeTenant("t1"));
  tenants.push_back(MakeTenant("t2"));
  FleetOptions options = SharedOptions();
  options.migrations = {{.tenant = 2, .to_shard = 1, .cutover_s = 1e-3}};
  const Fleet fleet = Fleet::TryCreate(std::move(shards), std::move(tenants),
                                       std::move(options))
                          .value();
  const auto requests = SmallTrace(24, 3);
  const sim::SyncModel sync = DefaultSync();

  std::string reference_log, reference_series, reference_alerts;
  std::vector<int> reference_predictions;
  for (const int threads : {1, 2, 4, 8}) {
    par::ScopedThreadCount scoped(threads);
    Rng rng(17);
    const FleetResult result = fleet.Run(requests, sync, rng);
    const std::string log = obs::ToRequestsJsonl(result.request_log);
    const std::string series = obs::ToTimeSeriesJsonl(result.timeseries);
    const std::string alerts = obs::health::ToAlertsJsonl(result.alerts);
    if (threads == 1) {
      reference_log = log;
      reference_series = series;
      reference_alerts = alerts;
      reference_predictions = Predictions(result.responses);
      EXPECT_FALSE(reference_log.empty());
      EXPECT_FALSE(reference_series.empty());
      continue;
    }
    EXPECT_EQ(log, reference_log) << "threads=" << threads;
    EXPECT_EQ(series, reference_series) << "threads=" << threads;
    EXPECT_EQ(alerts, reference_alerts) << "threads=" << threads;
    EXPECT_EQ(Predictions(result.responses), reference_predictions)
        << "threads=" << threads;
  }
}

TEST(FleetTest, FrontDoorRejectsUnknownTenants) {
  std::vector<ShardSpec> shards;
  shards.push_back(MakeShard("s0"));
  std::vector<TenantSpec> tenants;
  tenants.push_back(MakeTenant("t0"));
  const Fleet fleet = Fleet::TryCreate(std::move(shards), std::move(tenants),
                                       SharedOptions())
                          .value();
  auto requests = SmallTrace(6, 1);
  requests[2].client = 9;  // no such tenant
  Rng rng(21);
  const FleetResult result = fleet.Run(requests, DefaultSync(), rng);
  EXPECT_EQ(result.stats.rejected_unknown_tenant, 1u);
  EXPECT_EQ(result.responses[2].rejected,
            serve::RejectReason::kUnknownClient);
  EXPECT_EQ(result.responses[2].predicted, -1);
  EXPECT_EQ(result.stats.served, 5u);
  EXPECT_EQ(result.stats.submitted, 6u);
}

TEST(FleetTest, SharedCacheDeduplicatesAcrossShardsAndMigration) {
  FleetOptions options;
  options.cache = std::make_shared<mts::ConfigCache>();
  options.migrations = {{.tenant = 1, .to_shard = 1, .cutover_s = 1e-3}};
  std::vector<ShardSpec> shards;
  shards.push_back(MakeShard("s0"));
  shards.push_back(MakeShard("s1"));
  std::vector<TenantSpec> tenants;
  tenants.push_back(MakeTenant("t0"));
  tenants.push_back(MakeTenant("t1"));
  const Fleet fleet = Fleet::TryCreate(std::move(shards), std::move(tenants),
                                       options)
                          .value();
  // Three deployments (two home + one migration copy) of one identical
  // model: exactly one miss, the rest hit.
  const mts::ConfigCache::Stats stats = fleet.cache()->stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(fleet.cache().get(), options.cache.get());
}

}  // namespace
}  // namespace metaai::fleet
