#include "common/result.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/check.h"

namespace metaai {
namespace {

TEST(ResultTest, HoldsValue) {
  const Result<int> r = 42;
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  const Result<int> r = Error{ErrorCode::kNotFound, "no such client"};
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "no such client");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOnErrorThrowsCheckErrorWithErrorText) {
  const Result<int> r = Error{ErrorCode::kParseError, "bad digit"};
  try {
    (void)r.value();
    FAIL() << "value() on an error Result must throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("parse_error"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bad digit"), std::string::npos);
  }
}

TEST(ResultTest, ErrorOnOkResultIsAnInvariantViolation) {
  const Result<int> r = 7;
  EXPECT_THROW((void)r.error(), CheckError);
}

TEST(ResultTest, ArrowAndMoveAccess) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
  r.value() += " world";
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello world");
}

TEST(ResultTest, VoidSpecialization) {
  const Result<void> ok = Ok();
  EXPECT_TRUE(ok.ok());
  ok.value();  // no-op

  const Result<void> err = Error{ErrorCode::kIoError, "disk full"};
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, ErrorCode::kIoError);
  EXPECT_THROW(err.value(), CheckError);
}

TEST(ResultTest, ErrorCodeNamesAreStable) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kParseError), "parse_error");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kIoError), "io_error");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kNotFound), "not_found");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kExhausted), "exhausted");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kUnavailable), "unavailable");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kInternal), "internal");
  const Error e{ErrorCode::kExhausted, "queue full"};
  EXPECT_EQ(e.ToString(), "exhausted: queue full");
}

TEST(ResultTest, ImplicitConstructionFromEitherSide) {
  auto make = [](bool good) -> Result<std::vector<int>> {
    if (!good) return Error{ErrorCode::kInvalidArgument, "nope"};
    return std::vector<int>{1, 2, 3};
  };
  EXPECT_EQ(make(true).value().size(), 3u);
  EXPECT_EQ(make(false).error().code, ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace metaai
