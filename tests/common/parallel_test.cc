#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.h"

namespace metaai::par {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const ScopedThreadCount threads(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  ParallelFor(kN, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroIterationsIsANoOp) {
  ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, SingleThreadRunsInlineInIndexOrder) {
  const ScopedThreadCount threads(1);
  std::vector<std::size_t> order;
  ParallelFor(100, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, ExplicitThreadArgumentOverridesDefault) {
  const ScopedThreadCount threads(8);
  // num_threads = 1 forces the inline path regardless of the default.
  std::vector<std::size_t> order;
  ParallelFor(
      10, [&](std::size_t i) { order.push_back(i); }, 1);
  ASSERT_EQ(order.size(), 10u);
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order.back(), 9u);
}

TEST(ParallelMapTest, CollectsResultsInItemOrder) {
  const ScopedThreadCount threads(4);
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<int> squares =
      ParallelMap(items, [](int v) { return v * v; });
  ASSERT_EQ(squares.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(squares[i], items[i] * items[i]);
  }
}

TEST(ParallelForTest, LowestChunkExceptionPropagates) {
  const ScopedThreadCount threads(4);
  try {
    ParallelFor(100, [&](std::size_t i) {
      if (i == 7) throw std::runtime_error("task 7");
      if (i == 93) throw std::runtime_error("task 93");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    // Both failing indices land in different chunks at 4 threads; the
    // lowest-numbered chunk's exception must win deterministically.
    EXPECT_EQ(std::string(error.what()), "task 7");
  }
}

TEST(ParallelForTest, OtherChunksStillRunWhenOneThrows) {
  const ScopedThreadCount threads(4);
  // The throw happens at the last index of the first chunk (64/4 = 16
  // indices per chunk), so every index is still visited: a failing chunk
  // stops early but never cancels its siblings.
  std::vector<std::atomic<int>> visits(64);
  EXPECT_THROW(ParallelFor(64, [&](std::size_t i) {
                 visits[i].fetch_add(1, std::memory_order_relaxed);
                 if (i == 15) throw std::runtime_error("first chunk");
               }),
               std::runtime_error);
  int total = 0;
  for (auto& v : visits) total += v.load();
  EXPECT_EQ(total, 64);
}

TEST(ParallelForTest, NestedUseRunsInlineWithoutDeadlock) {
  const ScopedThreadCount threads(4);
  std::vector<std::atomic<int>> inner_visits(16 * 8);
  ParallelFor(16, [&](std::size_t outer) {
    EXPECT_TRUE(InParallelRegion());
    // Re-entering the pool from a worker must degrade to inline serial
    // execution instead of deadlocking the fixed-size pool.
    std::vector<std::size_t> order;
    ParallelFor(8, [&](std::size_t inner) {
      order.push_back(inner);
      inner_visits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  });
  EXPECT_FALSE(InParallelRegion());
  for (auto& v : inner_visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, ResultsIdenticalAcrossThreadCounts) {
  auto run = [](int threads) {
    const ScopedThreadCount scoped(threads);
    Rng base(1234);
    std::vector<Rng> rngs = ForkRngs(base, 64);
    std::vector<double> out(64, 0.0);
    ParallelFor(64, [&](std::size_t i) {
      double acc = 0.0;
      for (int k = 0; k < 100; ++k) acc += rngs[i].Uniform();
      out[i] = acc;
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ForkRngsTest, StreamsAreIndependentOfTaskCountPrefix) {
  // Fork streams are derived on the calling thread in index order: the
  // first k streams of ForkRngs(base, n) match ForkRngs(base', k) for an
  // identically seeded base.
  Rng base_a(99);
  Rng base_b(99);
  std::vector<Rng> wide = ForkRngs(base_a, 8);
  std::vector<Rng> narrow = ForkRngs(base_b, 3);
  for (std::size_t i = 0; i < narrow.size(); ++i) {
    EXPECT_EQ(wide[i].Next(), narrow[i].Next()) << "stream " << i;
  }
}

TEST(ThreadCountTest, SetDefaultThreadCountRoundTrips) {
  const int previous = SetDefaultThreadCount(3);
  EXPECT_EQ(DefaultThreadCount(), 3);
  SetDefaultThreadCount(previous);
}

TEST(ThreadCountTest, ScopedOverrideRestores) {
  const int before = DefaultThreadCount();
  {
    const ScopedThreadCount scoped(2);
    EXPECT_EQ(DefaultThreadCount(), 2);
  }
  EXPECT_EQ(DefaultThreadCount(), before);
}

TEST(ThreadCountTest, DefaultIsAtLeastOne) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace metaai::par
