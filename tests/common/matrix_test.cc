#include "common/matrix.h"

#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/check.h"

namespace metaai {
namespace {

TEST(MatrixTest, ConstructsWithFill) {
  RealMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
  }
}

TEST(MatrixTest, ElementAccessReadsBack) {
  RealMatrix m(2, 2);
  m(0, 1) = 7.0;
  m(1, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, OutOfRangeAccessThrows) {
  RealMatrix m(2, 2);
  EXPECT_THROW(m(2, 0), CheckError);
  EXPECT_THROW(m(0, 2), CheckError);
}

TEST(MatrixTest, MatrixVectorProduct) {
  RealMatrix m(2, 3);
  // [1 2 3; 4 5 6] * [1, 1, 1] = [6, 15]
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  }
  const auto y = m.Multiply(std::vector<double>{1.0, 1.0, 1.0});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(MatrixTest, MatrixVectorDimensionMismatchThrows) {
  RealMatrix m(2, 3);
  EXPECT_THROW(m.Multiply(std::vector<double>{1.0, 2.0}), CheckError);
}

TEST(MatrixTest, MatrixMatrixProduct) {
  RealMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 3.0;
  a(1, 1) = 4.0;
  RealMatrix b(2, 2);
  b(0, 0) = 0.0;
  b(0, 1) = 1.0;
  b(1, 0) = 1.0;
  b(1, 1) = 0.0;
  const auto c = a.Multiply(b);  // column swap of a
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(MatrixTest, ComplexMultiplicationWorks) {
  using C = std::complex<double>;
  ComplexMatrix m(1, 2);
  m(0, 0) = C{0.0, 1.0};  // j
  m(0, 1) = C{1.0, 0.0};
  const auto y = m.Multiply(std::vector<C>{C{0.0, 1.0}, C{2.0, 0.0}});
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0].real(), 1.0);  // j*j + 2 = -1 + 2
  EXPECT_DOUBLE_EQ(y[0].imag(), 0.0);
}

TEST(MatrixTest, FillResetsContents) {
  RealMatrix m(2, 2, 3.0);
  m.Fill(0.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.0);
}

TEST(MatrixTest, EqualityComparesShapeAndData) {
  RealMatrix a(2, 2, 1.0);
  RealMatrix b(2, 2, 1.0);
  RealMatrix c(2, 2, 2.0);
  RealMatrix d(1, 4, 1.0);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(MatrixTest, RowPointerMatchesElements) {
  RealMatrix m(3, 2);
  m(2, 1) = 9.0;
  EXPECT_DOUBLE_EQ(m.row(2)[1], 9.0);
  EXPECT_THROW(m.row(3), CheckError);
}

}  // namespace
}  // namespace metaai
