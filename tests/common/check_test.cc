#include "common/check.h"

#include <gtest/gtest.h>

#include <string>

namespace metaai {
namespace {

TEST(CheckTest, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(Check(true, "never thrown"));
}

TEST(CheckTest, FailingConditionThrowsWithContext) {
  try {
    Check(false, "the message");
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("check_test.cc"), std::string::npos);
  }
}

TEST(CheckTest, CheckIndexAcceptsInRange) {
  EXPECT_NO_THROW(CheckIndex(0, 1, "thing"));
  EXPECT_NO_THROW(CheckIndex(4, 5, "thing"));
}

TEST(CheckTest, CheckIndexRejectsOutOfRangeWithDetails) {
  try {
    CheckIndex(7, 5, "widget");
    FAIL() << "expected CheckError";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("widget"), std::string::npos);
    EXPECT_NE(what.find('7'), std::string::npos);
    EXPECT_NE(what.find('5'), std::string::npos);
  }
}

TEST(CheckTest, CheckErrorIsARuntimeError) {
  EXPECT_THROW(Check(false, "x"), std::runtime_error);
}

}  // namespace
}  // namespace metaai
