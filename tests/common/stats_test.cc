#include "common/stats.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/check.h"

namespace metaai {
namespace {

TEST(StatsTest, MeanOfKnownValues) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
}

TEST(StatsTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, VarianceIsUnbiased) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(Variance(v), 32.0 / 7.0, 1e-12);
}

TEST(StatsTest, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(Variance(std::vector<double>{5.0}), 0.0);
}

TEST(StatsTest, PercentileEndpoints) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 2.5);
}

TEST(StatsTest, PercentileValidatesArguments) {
  EXPECT_THROW(Percentile(std::vector<double>{}, 50.0), CheckError);
  EXPECT_THROW(Percentile(std::vector<double>{1.0}, 101.0), CheckError);
}

TEST(StatsTest, PercentilesMatchesRepeatedPercentileCalls) {
  const std::vector<double> v{9.0, 1.0, 4.0, 7.0, 2.0};
  const std::vector<double> ps{0.0, 25.0, 50.0, 90.0, 100.0};
  const std::vector<double> batched = Percentiles(v, ps);
  ASSERT_EQ(batched.size(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], Percentile(v, ps[i])) << "p" << ps[i];
  }
}

TEST(StatsTest, PercentilesValidatesArguments) {
  EXPECT_THROW(Percentiles(std::vector<double>{},
                           std::vector<double>{50.0}),
               CheckError);
  EXPECT_THROW(Percentiles(std::vector<double>{1.0},
                           std::vector<double>{-1.0}),
               CheckError);
}

TEST(StatsTest, MinMax) {
  const std::vector<double> v{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 3.0);
}

TEST(StatsTest, EmpiricalCdfIsSortedAndReachesOne) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  const auto cdf = EmpiricalCdf(v);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 5.0);
  EXPECT_NEAR(cdf[0].cumulative_probability, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative_probability, 1.0);
}

TEST(StatsTest, FractionAboveCountsStrictly) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(FractionAbove(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(FractionAbove(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(FractionAbove(v, 4.0), 0.0);
}

TEST(StatsTest, HistogramBucketsAndClamps) {
  const std::vector<double> v{-1.0, 0.1, 0.6, 0.9, 2.0};
  const auto h = Histogram(v, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // -1.0 clamped in, 0.1
  EXPECT_EQ(h[1], 3u);  // 0.6, 0.9, 2.0 clamped in
}

TEST(StatsTest, HistogramValidatesArguments) {
  EXPECT_THROW(Histogram(std::vector<double>{}, 0.0, 1.0, 0), CheckError);
  EXPECT_THROW(Histogram(std::vector<double>{}, 1.0, 0.0, 4), CheckError);
}

TEST(StatsTest, HistogramRejectsNonFiniteValues) {
  // Regression: NaN used to flow into static_cast<size_t> (UB); non-finite
  // inputs must be rejected up front instead.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Histogram(std::vector<double>{0.5, nan}, 0.0, 1.0, 2),
               CheckError);
  EXPECT_THROW(Histogram(std::vector<double>{inf}, 0.0, 1.0, 2), CheckError);
  EXPECT_THROW(Histogram(std::vector<double>{-inf}, 0.0, 1.0, 2), CheckError);
}

}  // namespace
}  // namespace metaai
