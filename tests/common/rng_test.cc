#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace metaai {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) ++counts[rng.UniformInt(std::uint64_t{6})];
  for (const int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSurvivesFullIntRange) {
  // Regression: hi - lo overflowed int for wide ranges (UB), e.g. the
  // full [INT_MIN, INT_MAX] span. The span must be computed in 64 bits.
  Rng rng(61);
  bool saw_negative = false;
  bool saw_positive = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(std::numeric_limits<int>::min(),
                                 std::numeric_limits<int>::max());
    saw_negative |= (v < 0);
    saw_positive |= (v > 0);
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(RngTest, UniformIntWideRangeRespectsBounds) {
  Rng rng(67);
  const int lo = std::numeric_limits<int>::min();
  const int hi = -2;  // span still exceeds INT_MAX
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(17);
  std::vector<double> samples(50000);
  for (double& s : samples) s = rng.Normal();
  EXPECT_NEAR(Mean(samples), 0.0, 0.02);
  EXPECT_NEAR(Stddev(samples), 1.0, 0.02);
}

TEST(RngTest, NormalWithParamsShiftsAndScales) {
  Rng rng(19);
  std::vector<double> samples(50000);
  for (double& s : samples) s = rng.Normal(3.0, 2.0);
  EXPECT_NEAR(Mean(samples), 3.0, 0.05);
  EXPECT_NEAR(Stddev(samples), 2.0, 0.05);
}

TEST(RngTest, ExponentialHasExpectedMean) {
  Rng rng(23);
  std::vector<double> samples(50000);
  for (double& s : samples) s = rng.Exponential(4.0);
  EXPECT_NEAR(Mean(samples), 0.25, 0.01);
}

TEST(RngTest, GammaHasExpectedMoments) {
  // Gamma(shape k, scale s): mean k*s, variance k*s^2.
  Rng rng(29);
  std::vector<double> samples(50000);
  for (double& s : samples) s = rng.Gamma(2.0, 1.5);
  EXPECT_NEAR(Mean(samples), 3.0, 0.05);
  EXPECT_NEAR(Variance(samples), 4.5, 0.2);
}

TEST(RngTest, GammaSupportsShapeBelowOne) {
  Rng rng(31);
  std::vector<double> samples(50000);
  for (double& s : samples) {
    s = rng.Gamma(0.5, 2.0);
    EXPECT_GT(s, 0.0);
  }
  EXPECT_NEAR(Mean(samples), 1.0, 0.05);
}

TEST(RngTest, ComplexNormalHasRequestedVariance) {
  Rng rng(37);
  double power = 0.0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) power += std::norm(rng.ComplexNormal(2.0));
  EXPECT_NEAR(power / kSamples, 2.0, 0.05);
}

TEST(RngTest, UnitPhasorHasUnitMagnitude) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NEAR(std::abs(rng.UnitPhasor()), 1.0, 1e-12);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent.Next() == child.Next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ShufflePermutesAllElements) {
  Rng rng(47);
  std::vector<int> values{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> original = values;
  rng.Shuffle(values);
  std::vector<int> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(53);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, InvalidArgumentsThrow) {
  Rng rng(59);
  EXPECT_THROW(rng.UniformInt(std::uint64_t{0}), CheckError);
  EXPECT_THROW(rng.Gamma(-1.0, 1.0), CheckError);
  EXPECT_THROW(rng.Exponential(0.0), CheckError);
}

}  // namespace
}  // namespace metaai
