#include "common/table.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace metaai {
namespace {

TEST(TableTest, RendersTitleHeadersAndRows) {
  Table t("Demo", {"Dataset", "Accuracy"});
  t.AddRow({"MNIST", "89.77"});
  t.AddRow({"Fashion", "80.86"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("Dataset"), std::string::npos);
  EXPECT_NE(s.find("MNIST"), std::string::npos);
  EXPECT_NE(s.find("80.86"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, ColumnsAreAligned) {
  Table t("Align", {"A", "LongHeader"});
  t.AddRow({"LongCellValue", "x"});
  const std::string s = t.ToString();
  std::istringstream in(s);
  std::string title;
  std::string header;
  std::string sep;
  std::string row;
  std::getline(in, title);
  std::getline(in, header);
  std::getline(in, sep);
  std::getline(in, row);
  // Second column starts at the same offset in the header and row.
  EXPECT_EQ(header.find("LongHeader"), row.find('x'));
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t("Bad", {"A", "B"});
  EXPECT_THROW(t.AddRow({"only one"}), CheckError);
}

TEST(TableTest, EmptyHeadersThrow) {
  EXPECT_THROW(Table("Empty", {}), CheckError);
}

TEST(TableTest, PrintStreamsToOstream) {
  Table t("Stream", {"A"});
  t.AddRow({"1"});
  std::ostringstream out;
  t.Print(out);
  EXPECT_EQ(out.str(), t.ToString());
}

TEST(TableTest, FormatDoubleRespectsDecimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(TableTest, FormatPercentScalesFraction) {
  EXPECT_EQ(FormatPercent(0.8977), "89.77");
  EXPECT_EQ(FormatPercent(1.0, 0), "100");
}


TEST(TableTest, CsvRendersHeaderAndRows) {
  Table t("Csv", {"A", "B"});
  t.AddRow({"1", "2"});
  t.AddRow({"x,y", "quote\"inside"});
  const std::string csv = t.ToCsv();
  EXPECT_EQ(csv,
            "A,B\n"
            "1,2\n"
            "\"x,y\",\"quote\"\"inside\"\n");
}

TEST(TableTest, CsvExportViaEnvironment) {
  const std::string dir =
      std::filesystem::temp_directory_path() /
      ("metaai_csv_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  ::setenv("METAAI_CSV_DIR", dir.c_str(), 1);
  Table t("Fig 99: Demo Table", {"A"});
  t.AddRow({"1"});
  std::ostringstream sink;
  t.Print(sink);
  ::unsetenv("METAAI_CSV_DIR");
  std::ifstream in(dir + "/fig-99-demo-table.csv");
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "A");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace metaai
