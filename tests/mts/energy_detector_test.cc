#include "mts/energy_detector.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace metaai::mts {
namespace {

TEST(EnergyDetectorTest, DetectsSignalOnset) {
  EnergyDetector detector;
  rf::Signal samples(100, rf::Complex{0.0, 0.0});
  for (std::size_t i = 40; i < samples.size(); ++i) {
    samples[i] = rf::Complex{1.0, 0.0};
  }
  const auto onset = detector.DetectArrival(samples, 1.0);
  ASSERT_TRUE(onset.has_value());
  // Detection happens after the true onset (envelope must charge up) but
  // within a few RC constants.
  EXPECT_GE(*onset, 40u);
  EXPECT_LE(*onset, 40u + 24u);
}

TEST(EnergyDetectorTest, NoDetectionOnSilence) {
  EnergyDetector detector;
  const rf::Signal silence(200, rf::Complex{0.0, 0.0});
  EXPECT_FALSE(detector.DetectArrival(silence, 1.0).has_value());
}

TEST(EnergyDetectorTest, NoiseBelowThresholdDoesNotTrigger) {
  EnergyDetector detector({.relative_threshold = 0.5});
  Rng rng(3);
  rf::Signal noise(500);
  for (auto& s : noise) s = rng.ComplexNormal(0.05);
  EXPECT_FALSE(detector.DetectArrival(noise, 1.0).has_value());
}

TEST(EnergyDetectorTest, LowerThresholdDetectsEarlier) {
  rf::Signal samples(200, rf::Complex{0.0, 0.0});
  for (std::size_t i = 50; i < samples.size(); ++i) {
    samples[i] = rf::Complex{1.0, 0.0};
  }
  EnergyDetector eager({.relative_threshold = 0.2});
  EnergyDetector strict({.relative_threshold = 0.8});
  const auto eager_onset = eager.DetectArrival(samples, 1.0);
  const auto strict_onset = strict.DetectArrival(samples, 1.0);
  ASSERT_TRUE(eager_onset.has_value());
  ASSERT_TRUE(strict_onset.has_value());
  EXPECT_LT(*eager_onset, *strict_onset);
}

TEST(EnergyDetectorTest, LatencyDistributionMatchesFig12) {
  // Fig 12: with coarse-grained detection, 51.7% of sync errors exceed
  // 3 us. The default Gamma(2, 1.85) is calibrated to that percentile.
  EnergyDetector detector;
  Rng rng(5);
  std::vector<double> latencies(20000);
  for (double& l : latencies) l = detector.SampleDetectionLatencyUs(rng);
  const double above_3us = FractionAbove(latencies, 3.0);
  EXPECT_NEAR(above_3us, 0.517, 0.03);
  // All latencies are positive.
  EXPECT_GT(Min(latencies), 0.0);
}

TEST(EnergyDetectorTest, ValidatesConfig) {
  EXPECT_THROW(EnergyDetector({.relative_threshold = 0.0}), CheckError);
  EXPECT_THROW(EnergyDetector({.relative_threshold = 1.5}), CheckError);
  EXPECT_THROW(EnergyDetector({.rc_constant_samples = -1.0}), CheckError);
  EXPECT_THROW(EnergyDetector({.latency_gamma_shape = 0.0}), CheckError);
  EnergyDetector detector;
  const rf::Signal samples(10);
  EXPECT_THROW(detector.DetectArrival(samples, 0.0), CheckError);
}

}  // namespace
}  // namespace metaai::mts
