#include "mts/config_solver.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "mts/metasurface.h"
#include "rf/geometry.h"
#include "simd/kernels.h"

namespace metaai::mts {
namespace {

std::vector<Complex> RandomSteering(std::size_t atoms, Rng& rng) {
  std::vector<Complex> steering(atoms);
  for (auto& s : steering) s = rng.UnitPhasor();
  return steering;
}

Complex Evaluate(std::span<const Complex> steering,
                 std::span<const PhaseCode> codes) {
  Complex sum{0.0, 0.0};
  for (std::size_t m = 0; m < steering.size(); ++m) {
    sum += steering[m] * PhasorForCode(codes[m]);
  }
  return sum;
}

TEST(ConfigSolverTest, AchievedMatchesRecomputedSum) {
  Rng rng(1);
  const auto steering = RandomSteering(64, rng);
  const Complex target{20.0, -10.0};
  const auto result = SolveSingleTarget(steering, target);
  ASSERT_EQ(result.codes.size(), 64u);
  ASSERT_EQ(result.achieved.size(), 1u);
  EXPECT_NEAR(std::abs(result.achieved[0] - Evaluate(steering, result.codes)),
              0.0, 1e-9);
  EXPECT_NEAR(result.residual, std::abs(result.achieved[0] - target), 1e-9);
}

TEST(ConfigSolverTest, ReachesTargetsWellInsideTheReachableDisk) {
  Rng rng(2);
  constexpr std::size_t kAtoms = 256;
  const auto steering = RandomSteering(kAtoms, rng);
  // Targets at half the reachable radius should be approximated to within
  // a small fraction of their magnitude.
  for (int trial = 0; trial < 20; ++trial) {
    const Complex target =
        rng.UnitPhasor() * (0.5 * ReachableMagnitude(kAtoms));
    const auto result = SolveSingleTarget(steering, target);
    EXPECT_LT(result.residual / std::abs(target), 0.02)
        << "trial " << trial;
  }
}

TEST(ConfigSolverTest, ResidualShrinksWithMoreAtoms) {
  Rng rng(3);
  const Complex unit_target = Complex{0.3, 0.4};
  double previous = 1e9;
  for (const std::size_t atoms : {16u, 64u, 256u}) {
    const auto steering = RandomSteering(atoms, rng);
    // Fixed *normalized* target scaled to each panel's size.
    const Complex target = unit_target * static_cast<double>(atoms);
    const auto result = SolveSingleTarget(steering, target);
    const double normalized_residual =
        result.residual / static_cast<double>(atoms);
    EXPECT_LT(normalized_residual, previous);
    previous = normalized_residual;
  }
  EXPECT_LT(previous, 0.01);
}

TEST(ConfigSolverTest, ZeroTargetIsRepresentable) {
  Rng rng(4);
  const auto steering = RandomSteering(64, rng);
  const auto result = SolveSingleTarget(steering, Complex{0.0, 0.0});
  EXPECT_LT(result.residual, 2.0);  // near-cancellation of 64 phasors
}

TEST(ConfigSolverTest, MultiTargetBeatsNaiveSingleTargetCompromise) {
  // Two targets with different steering: the joint solve must achieve a
  // lower summed error than solving for target 0 only.
  Rng rng(5);
  constexpr std::size_t kAtoms = 128;
  ComplexMatrix steering(2, kAtoms);
  std::vector<Complex> row0(kAtoms);
  for (std::size_t m = 0; m < kAtoms; ++m) {
    steering(0, m) = rng.UnitPhasor();
    steering(1, m) = rng.UnitPhasor();
    row0[m] = steering(0, m);
  }
  const std::vector<Complex> targets{Complex{30.0, 0.0}, Complex{0.0, 30.0}};
  const auto joint = SolveMultiTarget(steering, targets);

  const auto single = SolveSingleTarget(row0, targets[0]);
  double single_error = 0.0;
  for (std::size_t k = 0; k < 2; ++k) {
    Complex sum{0.0, 0.0};
    for (std::size_t m = 0; m < kAtoms; ++m) {
      sum += steering(k, m) * PhasorForCode(single.codes[m]);
    }
    single_error += std::norm(sum - targets[k]);
  }
  EXPECT_LT(joint.residual * joint.residual, single_error);
}

TEST(ConfigSolverTest, MultiTargetResidualGrowsWithTargetCount) {
  // With a fixed atom budget, serving more independent targets leaves a
  // larger per-target residual — the accuracy/latency trade-off behind
  // Fig 31.
  Rng rng(6);
  constexpr std::size_t kAtoms = 128;
  double previous = -1.0;
  for (const std::size_t num_targets : {1u, 4u, 8u}) {
    ComplexMatrix steering(num_targets, kAtoms);
    for (std::size_t k = 0; k < num_targets; ++k) {
      for (std::size_t m = 0; m < kAtoms; ++m) {
        steering(k, m) = rng.UnitPhasor();
      }
    }
    std::vector<Complex> targets(num_targets);
    for (auto& t : targets) t = rng.UnitPhasor() * 40.0;
    const auto result = SolveMultiTarget(steering, targets);
    const double per_target =
        result.residual / std::sqrt(static_cast<double>(num_targets));
    EXPECT_GT(per_target, previous);
    previous = per_target;
  }
}

TEST(ConfigSolverTest, ConvergesWithinSweepBudget) {
  Rng rng(7);
  const auto steering = RandomSteering(256, rng);
  const auto result =
      SolveSingleTarget(steering, Complex{50.0, 50.0}, {.max_sweeps = 8});
  EXPECT_LE(result.sweeps_used, 8);
}

TEST(ConfigSolverTest, ValidatesArguments) {
  EXPECT_THROW(SolveSingleTarget({}, Complex{1.0, 0.0}), CheckError);
  ComplexMatrix steering(2, 4, Complex{1.0, 0.0});
  const std::vector<Complex> wrong_targets{Complex{1.0, 0.0}};
  EXPECT_THROW(SolveMultiTarget(steering, wrong_targets), CheckError);
  const std::vector<Complex> targets{Complex{1.0, 0.0}, Complex{0.0, 1.0}};
  EXPECT_THROW(SolveMultiTarget(steering, targets, {.max_sweeps = 0}),
               CheckError);
}

// The Result-returning forms surface the same validation as typed
// kInvalidArgument errors — one per distinct error path.
TEST(ConfigSolverTest, TypedValidationErrors) {
  const auto sweeps = ValidateSolveOptions({.max_sweeps = 0}, 4);
  ASSERT_FALSE(sweeps.ok());
  EXPECT_EQ(sweeps.error().code, ErrorCode::kInvalidArgument);

  SolveOptions mismatched;
  mismatched.atom_mask = {1, 1};
  const auto mask = ValidateSolveOptions(mismatched, 4);
  ASSERT_FALSE(mask.ok());
  EXPECT_EQ(mask.error().code, ErrorCode::kInvalidArgument);

  SolveOptions all_dead;
  all_dead.atom_mask = {0, 0, 0, 0};
  const auto dead = ValidateSolveOptions(all_dead, 4);
  ASSERT_FALSE(dead.ok());
  EXPECT_EQ(dead.error().code, ErrorCode::kInvalidArgument);

  EXPECT_TRUE(ValidateSolveOptions({}, 4).ok());

  const auto empty = TrySolveSingleTarget({}, Complex{1.0, 0.0});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.error().code, ErrorCode::kInvalidArgument);

  ComplexMatrix steering(2, 4, Complex{1.0, 0.0});
  const std::vector<Complex> wrong_targets{Complex{1.0, 0.0}};
  const auto shape = TrySolveMultiTarget(steering, wrong_targets);
  ASSERT_FALSE(shape.ok());
  EXPECT_EQ(shape.error().code, ErrorCode::kInvalidArgument);

  // And the happy path matches the throwing form exactly.
  const std::vector<Complex> targets{Complex{1.0, 0.0}, Complex{0.0, 1.0}};
  const auto solved = TrySolveMultiTarget(steering, targets);
  ASSERT_TRUE(solved.ok());
  const auto direct = SolveMultiTarget(steering, targets);
  EXPECT_EQ(solved.value().codes, direct.codes);
  EXPECT_EQ(solved.value().residual, direct.residual);
}

TEST(ConfigSolverTest, ValidatesWarmStartOptions) {
  // initial_codes must cover every atom and stay within the 2-bit
  // alphabet; min_sweep_improvement is a relative threshold in [0, 1).
  SolveOptions short_codes;
  short_codes.initial_codes = {0, 1};
  const auto wrong_size = ValidateSolveOptions(short_codes, 4);
  ASSERT_FALSE(wrong_size.ok());
  EXPECT_EQ(wrong_size.error().code, ErrorCode::kInvalidArgument);

  SolveOptions bad_code;
  bad_code.initial_codes = {0, 1, 2, kNumPhaseStates};
  const auto out_of_range = ValidateSolveOptions(bad_code, 4);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.error().code, ErrorCode::kInvalidArgument);

  EXPECT_FALSE(ValidateSolveOptions({.min_sweep_improvement = -0.1}, 4).ok());
  EXPECT_FALSE(ValidateSolveOptions({.min_sweep_improvement = 1.0}, 4).ok());
  SolveOptions good;
  good.initial_codes = {0, 1, 2, 3};
  good.min_sweep_improvement = 0.5;
  EXPECT_TRUE(ValidateSolveOptions(good, 4).ok());
}

TEST(ConfigSolverTest, WarmStartFromOwnSolutionConvergesImmediately) {
  Rng rng(21);
  const auto steering = RandomSteering(128, rng);
  const Complex target{30.0, -20.0};
  const auto cold = SolveSingleTarget(steering, target);

  // Re-solving from the converged codes finds nothing to flip: one
  // verification sweep, bitwise the same configuration.
  SolveOptions warm;
  warm.initial_codes = cold.codes;
  const auto resolved = SolveSingleTarget(steering, target, warm);
  EXPECT_EQ(resolved.codes, cold.codes);
  EXPECT_EQ(resolved.sweeps_used, 1);
  EXPECT_LE(resolved.sweeps_used, cold.sweeps_used);
}

TEST(ConfigSolverTest, WarmStartNearSolutionUsesFewerSweeps) {
  Rng rng(22);
  constexpr std::size_t kAtoms = 256;
  const auto steering = RandomSteering(kAtoms, rng);
  const Complex target{40.0, 25.0};
  const auto cold = SolveSingleTarget(steering, target);

  // Perturb a handful of atoms of the converged schedule — the warm
  // solve only has to repair those, so it needs fewer sweeps than the
  // cold solve and lands within the same residual ballpark.
  SolveOptions warm;
  warm.initial_codes = cold.codes;
  for (std::size_t i = 0; i < kAtoms; i += 37) {
    warm.initial_codes[i] = static_cast<PhaseCode>((cold.codes[i] + 1) % 4);
  }
  warm.min_sweep_improvement = 1e-3;
  const auto warm_result = SolveSingleTarget(steering, target, warm);
  EXPECT_LE(warm_result.sweeps_used, cold.sweeps_used);
  EXPECT_LE(warm_result.residual, cold.residual * 1.5 + 1e-9);
}

TEST(ConfigSolverTest, EarlyExitStillRespectsAtomMask) {
  Rng rng(23);
  constexpr std::size_t kAtoms = 64;
  const auto steering = RandomSteering(kAtoms, rng);
  SolveOptions options;
  options.atom_mask.assign(kAtoms, 1);
  options.atom_mask[3] = 0;
  options.atom_mask[40] = 0;
  options.initial_codes.assign(kAtoms, 2);  // masked atoms must be re-pinned
  options.min_sweep_improvement = 1e-2;
  const auto result = SolveSingleTarget(steering, Complex{10.0, 5.0}, options);
  EXPECT_EQ(result.codes[3], PhaseCode{0});
  EXPECT_EQ(result.codes[40], PhaseCode{0});
}

// Regression for reporting achieved/residual from the incrementally
// updated descent sums: each accepted code change adds one rounding
// error, and with large steering magnitudes cancelling toward a small
// target the incremental sums drift ~6e-13 (relative) from the true
// configuration response — far above the recomputed report's exact
// agreement. Both bounds fail on the pre-fix incremental reporting.
TEST(ConfigSolverTest, ReportedSumsMatchFromScratchEvaluation) {
  Rng rng(13);
  constexpr std::size_t kAtoms = 512;
  constexpr std::size_t kTargets = 8;
  ComplexMatrix steering(kTargets, kAtoms);
  for (std::size_t k = 0; k < kTargets; ++k) {
    for (std::size_t m = 0; m < kAtoms; ++m) {
      steering(k, m) = 1e6 * rng.UnitPhasor();
    }
  }
  // Targets far below the reachable magnitude force heavy cancellation:
  // intermediate sums are ~1e8 while the final sums are ~1e6, so the
  // incremental rounding error is large relative to the result.
  std::vector<Complex> targets(kTargets);
  for (auto& t : targets) t = 1e4 * rng.UnitPhasor();
  const auto result = SolveMultiTarget(steering, targets, {.max_sweeps = 64});

  // From-scratch reference through the same phased-sum kernel the solver
  // reports with, so the check is exact under any dispatch level (the
  // AVX2 lane reassociation would otherwise read as ~1e-13 "drift" here
  // because the construction amplifies summation-order differences).
  double fresh_error = 0.0;
  for (std::size_t k = 0; k < kTargets; ++k) {
    std::vector<double> re(kAtoms);
    std::vector<double> im(kAtoms);
    for (std::size_t m = 0; m < kAtoms; ++m) {
      re[m] = steering(k, m).real();
      im[m] = steering(k, m).imag();
    }
    const Complex sum =
        simd::PhasedSum(re.data(), im.data(), result.codes.data(), kAtoms);
    EXPECT_LT(std::abs(result.achieved[k] - sum) / std::abs(sum), 1e-14)
        << "target " << k;
    fresh_error += std::norm(sum - targets[k]);
  }
  const double fresh_residual = std::sqrt(fresh_error);
  EXPECT_LT(std::abs(result.residual - fresh_residual) / fresh_residual,
            1e-14);
}

TEST(ConfigSolverTest, MaskedAtomsStayFrozenAtCodeZero) {
  Rng rng(21);
  constexpr std::size_t kAtoms = 64;
  const auto steering = RandomSteering(kAtoms, rng);
  SolveOptions options;
  options.atom_mask.assign(kAtoms, 1);
  for (std::size_t m = 0; m < kAtoms; m += 4) options.atom_mask[m] = 0;
  const Complex target{15.0, -5.0};
  const auto result = SolveSingleTarget(steering, target, options);
  Complex healthy_sum{0.0, 0.0};
  for (std::size_t m = 0; m < kAtoms; ++m) {
    if (options.atom_mask[m] == 0) {
      EXPECT_EQ(result.codes[m], 0) << "atom " << m;
    } else {
      healthy_sum += steering[m] * PhasorForCode(result.codes[m]);
    }
  }
  // The reported response counts healthy atoms only.
  EXPECT_NEAR(std::abs(result.achieved[0] - healthy_sum), 0.0, 1e-12);
  EXPECT_NEAR(result.residual, std::abs(healthy_sum - target), 1e-12);
}

TEST(ConfigSolverTest, MaskedSolveMatchesCompactedHealthySolve) {
  // Solving with a mask must find the same optimum as solving the
  // compacted problem containing only the healthy atoms.
  Rng rng(22);
  constexpr std::size_t kAtoms = 96;
  const auto steering = RandomSteering(kAtoms, rng);
  SolveOptions options;
  options.atom_mask.assign(kAtoms, 1);
  std::vector<Complex> healthy;
  for (std::size_t m = 0; m < kAtoms; ++m) {
    if (m % 3 == 0) {
      options.atom_mask[m] = 0;
    } else {
      healthy.push_back(steering[m]);
    }
  }
  const Complex target{10.0, 20.0};
  const auto masked = SolveSingleTarget(steering, target, options);
  const auto compact = SolveSingleTarget(healthy, target);
  EXPECT_NEAR(masked.residual, compact.residual, 1e-9);
  std::size_t h = 0;
  for (std::size_t m = 0; m < kAtoms; ++m) {
    if (options.atom_mask[m] == 0) continue;
    EXPECT_EQ(masked.codes[m], compact.codes[h]) << "atom " << m;
    ++h;
  }
}

TEST(ConfigSolverTest, MaskedSolveDegradesGracefullyWithFaultFraction) {
  // More masked-out atoms -> less aperture -> larger residual against the
  // same target, but the solve still succeeds (no throw, finite result).
  Rng rng(23);
  constexpr std::size_t kAtoms = 256;
  const auto steering = RandomSteering(kAtoms, rng);
  // Near the full panel's reachable magnitude, so losing aperture makes
  // the target progressively unreachable and the residual must grow.
  const Complex target = std::polar(0.95 * ReachableMagnitude(kAtoms), 0.4);
  double previous = -1.0;
  for (const std::size_t stride : {0u, 8u, 4u, 2u}) {
    SolveOptions options;
    if (stride > 0) {
      options.atom_mask.assign(kAtoms, 1);
      for (std::size_t m = 0; m < kAtoms; m += stride) {
        options.atom_mask[m] = 0;
      }
    }
    const auto result = SolveSingleTarget(steering, target, options);
    EXPECT_GT(result.residual, previous);
    previous = result.residual;
  }
}

TEST(ConfigSolverTest, MaskSizeMismatchThrows) {
  Rng rng(24);
  const auto steering = RandomSteering(16, rng);
  SolveOptions options;
  options.atom_mask.assign(8, 1);
  EXPECT_THROW(SolveSingleTarget(steering, Complex{1.0, 0.0}, options),
               CheckError);
}

TEST(ConfigSolverTest, ReachableMagnitudeScalesLinearly) {
  EXPECT_NEAR(ReachableMagnitude(256) / 256.0, 0.9, 0.01);
  EXPECT_NEAR(ReachableMagnitude(512) / ReachableMagnitude(256), 2.0, 1e-12);
}

TEST(ConfigSolverTest, WorksWithRealMetasurfaceSteering) {
  // End-to-end against the actual panel model: pick a desired weight and
  // verify the solved configuration realizes it through
  // Metasurface::Response.
  Metasurface surface{MetasurfaceSpec{}};
  const LinkGeometry geometry{.tx_distance_m = 1.0,
                              .tx_angle_rad = rf::DegToRad(30.0),
                              .rx_distance_m = 3.0,
                              .rx_angle_rad = rf::DegToRad(40.0),
                              .frequency_hz = 5.25e9};
  const auto steering = surface.SteeringVector(geometry);
  const Complex pattern_scale = steering[0] / std::abs(steering[0]);
  (void)pattern_scale;
  const Complex target = Complex{40.0, 25.0};
  const auto result = SolveSingleTarget(steering, target);
  surface.SetAllCodes(result.codes);
  const Complex response = surface.Response(geometry);
  // Response = amplitude * sum; compare against the achieved sum.
  EXPECT_NEAR(std::abs(response - surface.PathAmplitude(geometry) *
                                      result.achieved[0]),
              0.0, 1e-9);
  EXPECT_LT(std::abs(result.achieved[0] - target) / std::abs(target), 0.05);
}

}  // namespace
}  // namespace metaai::mts
