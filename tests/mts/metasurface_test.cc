#include "mts/metasurface.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "rf/geometry.h"

namespace metaai::mts {
namespace {

LinkGeometry DefaultGeometry() {
  // The paper's default setup: Tx-MTS 1 m @30deg, MTS-Rx 3 m @40deg,
  // 5.25 GHz carrier.
  return {.tx_distance_m = 1.0,
          .tx_angle_rad = rf::DegToRad(30.0),
          .rx_distance_m = 3.0,
          .rx_angle_rad = rf::DegToRad(40.0),
          .frequency_hz = 5.25e9};
}

TEST(MetasurfaceTest, SpecDefaultsMatchPrototype) {
  Metasurface surface{MetasurfaceSpec{}};
  EXPECT_EQ(surface.num_atoms(), 256u);
  EXPECT_NEAR(surface.spacing_m(), rf::Wavelength(5.25e9) / 2.0, 1e-12);
}

TEST(MetasurfaceTest, DualBandSupports24And5GHz) {
  Metasurface surface{DualBandSpec()};
  EXPECT_TRUE(surface.SupportsFrequency(2.4e9));
  EXPECT_TRUE(surface.SupportsFrequency(5.0e9));
  EXPECT_TRUE(surface.SupportsFrequency(5.25e9));
  EXPECT_FALSE(surface.SupportsFrequency(3.5e9));
}

TEST(MetasurfaceTest, SingleBandSupportsOnly35GHz) {
  Metasurface surface{SingleBandSpec()};
  EXPECT_TRUE(surface.SupportsFrequency(3.5e9));
  EXPECT_FALSE(surface.SupportsFrequency(2.4e9));
  EXPECT_FALSE(surface.SupportsFrequency(5.25e9));
}

TEST(MetasurfaceTest, CodesReadBackAndValidate) {
  Metasurface surface{MetasurfaceSpec{}};
  surface.SetCode(5, 3);
  EXPECT_EQ(surface.code(5), 3);
  EXPECT_THROW(surface.SetCode(256, 0), CheckError);
  EXPECT_THROW(surface.SetCode(0, 4), CheckError);
  std::vector<PhaseCode> wrong(8, 0);
  EXPECT_THROW(surface.SetAllCodes(wrong), CheckError);
}

TEST(MetasurfaceTest, FlipAllPiNegatesResponse) {
  Metasurface surface{MetasurfaceSpec{}};
  Rng rng(3);
  std::vector<PhaseCode> codes(surface.num_atoms());
  for (auto& c : codes) c = static_cast<PhaseCode>(rng.UniformInt(0, 3));
  surface.SetAllCodes(codes);
  const Complex before = surface.Response(DefaultGeometry());
  surface.FlipAllPi();
  const Complex after = surface.Response(DefaultGeometry());
  EXPECT_NEAR(std::abs(before + after), 0.0, 1e-12);
}

TEST(MetasurfaceTest, PathPhasorIsUnitMagnitude) {
  Metasurface surface{MetasurfaceSpec{}};
  for (std::size_t m = 0; m < surface.num_atoms(); m += 17) {
    EXPECT_NEAR(std::abs(surface.PathPhasor(m, DefaultGeometry())), 1.0,
                1e-12);
  }
}

TEST(MetasurfaceTest, PathPhaseDependsOnColumnNotRow) {
  Metasurface surface{MetasurfaceSpec{}};
  const auto geometry = DefaultGeometry();
  // Atoms 0 and 16 are the same column in adjacent rows: same phase.
  EXPECT_NEAR(std::abs(surface.PathPhasor(0, geometry) -
                       surface.PathPhasor(16, geometry)),
              0.0, 1e-12);
  // Atoms 0 and 1 are adjacent columns: different phase at oblique angles.
  EXPECT_GT(std::abs(surface.PathPhasor(0, geometry) -
                     surface.PathPhasor(1, geometry)),
            1e-3);
}

TEST(MetasurfaceTest, BroadsideGeometryHasUniformPhases) {
  Metasurface surface{MetasurfaceSpec{}};
  LinkGeometry geometry = DefaultGeometry();
  geometry.tx_angle_rad = 0.0;
  geometry.rx_angle_rad = 0.0;
  const Complex first = surface.PathPhasor(0, geometry);
  for (std::size_t m = 1; m < surface.num_atoms(); ++m) {
    EXPECT_NEAR(std::abs(surface.PathPhasor(m, geometry) - first), 0.0,
                1e-9);
  }
}

TEST(MetasurfaceTest, UniformCodesAtBroadsideAddCoherently) {
  Metasurface surface{MetasurfaceSpec{}};
  LinkGeometry geometry = DefaultGeometry();
  geometry.tx_angle_rad = 0.0;
  geometry.rx_angle_rad = 0.0;
  const Complex response = surface.Response(geometry);
  EXPECT_NEAR(std::abs(response),
              surface.PathAmplitude(geometry) *
                  static_cast<double>(surface.num_atoms()),
              1e-6);
}

TEST(MetasurfaceTest, ElementPatternRollsOffPastFov) {
  Metasurface surface{MetasurfaceSpec{}};
  const double inside = surface.ElementPattern(rf::DegToRad(30.0));
  const double edge = surface.ElementPattern(rf::DegToRad(60.0));
  const double outside = surface.ElementPattern(rf::DegToRad(80.0));
  EXPECT_GT(inside, edge);
  EXPECT_GT(edge, outside);
  // The drop across the FoV edge is much steeper than inside it.
  EXPECT_LT(outside / edge, 0.75);
  EXPECT_DOUBLE_EQ(surface.ElementPattern(M_PI / 2.0), 0.0);
}

TEST(MetasurfaceTest, PathAmplitudeFallsWithDistanceProduct) {
  Metasurface surface{MetasurfaceSpec{}};
  LinkGeometry near = DefaultGeometry();
  LinkGeometry far = DefaultGeometry();
  far.rx_distance_m = 6.0;
  EXPECT_NEAR(surface.PathAmplitude(near) / surface.PathAmplitude(far), 2.0,
              1e-9);
}

TEST(MetasurfaceTest, UnsupportedFrequencyYieldsZeroAmplitude) {
  Metasurface surface{SingleBandSpec()};
  LinkGeometry geometry = DefaultGeometry();  // 5.25 GHz
  EXPECT_DOUBLE_EQ(surface.PathAmplitude(geometry), 0.0);
  EXPECT_NEAR(std::abs(surface.Response(geometry)), 0.0, 1e-15);
}

TEST(MetasurfaceTest, SubcarrierOffsetShiftsPhases) {
  Metasurface surface{MetasurfaceSpec{}};
  const auto geometry = DefaultGeometry();
  const Complex base = surface.PathPhasor(100, geometry, 0.0);
  const Complex shifted = surface.PathPhasor(100, geometry, 40e6);
  EXPECT_GT(std::abs(base - shifted), 1e-4);
}

TEST(MetasurfaceTest, NoisyResponseConvergesToCleanAtZeroNoise) {
  Metasurface surface{MetasurfaceSpec{}};
  Rng rng(9);
  std::vector<PhaseCode> codes(surface.num_atoms());
  for (auto& c : codes) c = static_cast<PhaseCode>(rng.UniformInt(0, 3));
  surface.SetAllCodes(codes);
  const auto geometry = DefaultGeometry();
  const Complex clean = surface.Response(geometry);
  const Complex noisy = surface.NoisyResponse(geometry, 0.0, rng);
  EXPECT_NEAR(std::abs(clean - noisy), 0.0, 1e-9);
}

TEST(MetasurfaceTest, PhaseNoisePerturbsResponse) {
  Metasurface surface{MetasurfaceSpec{}};
  Rng rng(11);
  const auto geometry = DefaultGeometry();
  const Complex clean = surface.Response(geometry);
  const Complex noisy = surface.NoisyResponse(geometry, 0.3, rng);
  EXPECT_GT(std::abs(clean - noisy), 1e-9);
}

}  // namespace
}  // namespace metaai::mts
