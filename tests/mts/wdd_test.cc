#include "mts/wdd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/check.h"
#include "common/rng.h"

namespace metaai::mts {
namespace {

TEST(WddTest, ReachableWeightsFormParityLattice) {
  const auto weights = ReachableNormalizedWeights(4);
  // M=4: points (p+jq)/4 with |p|+|q| <= 4 and p+q even. Verify the
  // structural lattice properties rather than the exact count.
  for (const auto& w : weights) {
    const double p = w.real() * 4.0;
    const double q = w.imag() * 4.0;
    EXPECT_NEAR(p, std::round(p), 1e-12);
    EXPECT_NEAR(q, std::round(q), 1e-12);
    EXPECT_LE(std::abs(p) + std::abs(q), 4.0 + 1e-12);
    const long pi = std::lround(p);
    const long qi = std::lround(q);
    EXPECT_EQ(((pi + qi) % 2 + 2) % 2, 0) << "parity violated";
  }
  // Extremes reachable: all atoms aligned -> (+-1, 0), (0, +-1).
  bool found_one = false;
  for (const auto& w : weights) {
    if (std::abs(w - std::complex<double>{1.0, 0.0}) < 1e-12) {
      found_one = true;
    }
  }
  EXPECT_TRUE(found_one);
}

TEST(WddTest, WeightCountGrowsQuadratically) {
  const auto w16 = ReachableNormalizedWeights(16).size();
  const auto w64 = ReachableNormalizedWeights(64).size();
  // 4x atoms -> ~16x lattice points.
  const double ratio = static_cast<double>(w64) / static_cast<double>(w16);
  EXPECT_GT(ratio, 12.0);
  EXPECT_LT(ratio, 20.0);
}

TEST(WddTest, WddIncreasesWithAtoms) {
  const double wdd16 = WeightDistributionDensity(16);
  const double wdd64 = WeightDistributionDensity(64);
  const double wdd256 = WeightDistributionDensity(256);
  EXPECT_LT(wdd16, wdd64);
  EXPECT_LT(wdd64, wdd256);
}

TEST(WddTest, WddSaturatesAt256Atoms) {
  // Fig 30: the curve saturates at M=256 — nearly all tolerance cells are
  // covered, and quadrupling the atoms adds almost nothing.
  const double wdd256 = WeightDistributionDensity(256);
  const double wdd1024 = WeightDistributionDensity(1024);
  EXPECT_GT(wdd256, 0.85);
  EXPECT_LT(wdd1024 - wdd256, 0.1);
  EXPECT_LE(wdd1024, 1.0 + 1e-12);
}

TEST(WddTest, WddBoundedInUnitInterval) {
  for (const std::size_t atoms : {4u, 16u, 64u, 256u}) {
    const double wdd = WeightDistributionDensity(atoms);
    EXPECT_GE(wdd, 0.0);
    EXPECT_LE(wdd, 1.0);
  }
}

TEST(WddTest, NearestWeightDistanceShrinksWithAtoms) {
  Rng rng(17);
  double mean16 = 0.0;
  double mean256 = 0.0;
  constexpr int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    // Random target inside the disk.
    std::complex<double> target;
    do {
      target = {rng.Uniform(-0.7, 0.7), rng.Uniform(-0.7, 0.7)};
    } while (std::abs(target) > 0.707);
    mean16 += NearestWeightDistance(target, 16);
    mean256 += NearestWeightDistance(target, 256);
  }
  mean16 /= kTrials;
  mean256 /= kTrials;
  EXPECT_LT(mean256, mean16 / 8.0);
  // 256-atom lattice pitch is 1/256 -> nearest distance well below 0.01.
  EXPECT_LT(mean256, 0.005);
}

TEST(WddTest, ValidatesArguments) {
  EXPECT_THROW(WeightDistributionDensity(0), CheckError);
  EXPECT_THROW(WeightDistributionDensity(16, {.epsilon = 0.0}), CheckError);
  EXPECT_THROW(ReachableNormalizedWeights(0), CheckError);
  EXPECT_THROW(NearestWeightDistance({0.0, 0.0}, 0), CheckError);
}

}  // namespace
}  // namespace metaai::mts
