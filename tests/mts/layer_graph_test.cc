#include "mts/layer_graph.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/matrix.h"
#include "common/result.h"
#include "mts/config_solver.h"
#include "mts/metasurface.h"

namespace metaai::mts {
namespace {

MetasurfaceSpec SmallSpec(std::size_t rows, std::size_t cols) {
  MetasurfaceSpec spec;
  spec.rows = rows;
  spec.cols = cols;
  return spec;
}

TEST(LayerGraphTest, SingleSurfaceWrapsAsDepthOne) {
  const Metasurface front{MetasurfaceSpec{}};
  const LayerGraph graph(front);
  EXPECT_EQ(graph.depth(), 1u);
  EXPECT_EQ(graph.front().num_atoms(), front.num_atoms());
  EXPECT_EQ(graph.coupling_gain(0), 1.0);
  ASSERT_EQ(graph.specs().size(), 1u);
  EXPECT_EQ(graph.specs()[0].surface.rows, front.spec().rows);
}

TEST(LayerGraphTest, SpecConstructionPreservesOrderAndGains) {
  std::vector<PhysicalLayerSpec> specs;
  specs.push_back({SmallSpec(16, 16), 1.0});
  specs.push_back({SmallSpec(8, 8), 1.3});
  specs.push_back({SmallSpec(4, 8), 2.0});
  const LayerGraph graph(std::move(specs));
  EXPECT_EQ(graph.depth(), 3u);
  EXPECT_EQ(graph.layer(0).num_atoms(), 256u);
  EXPECT_EQ(graph.layer(1).num_atoms(), 64u);
  EXPECT_EQ(graph.layer(2).num_atoms(), 32u);
  EXPECT_EQ(graph.coupling_gain(1), 1.3);
  EXPECT_EQ(graph.coupling_gain(2), 2.0);
}

TEST(LayerGraphTest, TryFromSpecsRejectsInvalidGraphs) {
  const auto empty = LayerGraph::TryFromSpecs({});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.error().code, ErrorCode::kInvalidArgument);

  std::vector<PhysicalLayerSpec> zero_panel;
  zero_panel.push_back({SmallSpec(0, 16), 1.0});
  const auto zero = LayerGraph::TryFromSpecs(std::move(zero_panel));
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.error().code, ErrorCode::kInvalidArgument);

  std::vector<PhysicalLayerSpec> bad_gain;
  bad_gain.push_back({SmallSpec(16, 16), 1.0});
  bad_gain.push_back({SmallSpec(8, 8), 0.0});
  const auto nonpositive = LayerGraph::TryFromSpecs(std::move(bad_gain));
  ASSERT_FALSE(nonpositive.ok());
  EXPECT_EQ(nonpositive.error().code, ErrorCode::kInvalidArgument);

  std::vector<PhysicalLayerSpec> nan_gain;
  nan_gain.push_back(
      {SmallSpec(8, 8), std::numeric_limits<double>::quiet_NaN()});
  const auto non_finite = LayerGraph::TryFromSpecs(std::move(nan_gain));
  ASSERT_FALSE(non_finite.ok());
  EXPECT_EQ(non_finite.error().code, ErrorCode::kInvalidArgument);

  // The Check-aborting constructor mirrors the typed rejection.
  EXPECT_THROW(LayerGraph(std::vector<PhysicalLayerSpec>{}), CheckError);
}

// Synthetic steering rows with deterministic (non-random) variation, so
// the solver tests do not depend on any channel model.
ComplexMatrix SyntheticSteering(std::size_t targets, std::size_t atoms,
                                double phase_step) {
  ComplexMatrix steering(targets, atoms);
  for (std::size_t k = 0; k < targets; ++k) {
    for (std::size_t m = 0; m < atoms; ++m) {
      steering(k, m) = std::polar(
          1.0, phase_step * static_cast<double>(m + 1) *
                   static_cast<double>(k + 1));
    }
  }
  return steering;
}

TEST(CascadeSolverTest, SingleLayerDelegatesBitwiseToMultiTarget) {
  const ComplexMatrix steering = SyntheticSteering(3, 64, 0.37);
  const std::vector<Complex> targets{{30.0, 10.0}, {-20.0, 25.0}, {5.0, -40.0}};

  const SolveResult flat = SolveMultiTarget(steering, targets, {});
  std::vector<CascadeLayerInput> layers(1);
  layers[0].steering = steering;
  const CascadeResult cascade = SolveCascadeMultiTarget(layers, targets, {});

  ASSERT_EQ(cascade.codes.size(), 1u);
  EXPECT_EQ(cascade.codes[0], flat.codes);
  ASSERT_EQ(cascade.achieved.size(), flat.achieved.size());
  for (std::size_t k = 0; k < flat.achieved.size(); ++k) {
    EXPECT_EQ(cascade.achieved[k], flat.achieved[k]) << "target " << k;
  }
  EXPECT_EQ(cascade.residual, flat.residual);
  EXPECT_EQ(cascade.total_sweeps, flat.sweeps_used);
}

TEST(CascadeSolverTest, TwoLayerSolveReachesScaledTargets) {
  // The upper layer roughly contributes its reachable focus magnitude, so
  // targets sized front_reachable * upper_reachable must be achievable
  // with a small relative residual.
  const ComplexMatrix front = SyntheticSteering(2, 64, 0.29);
  const ComplexMatrix upper = SyntheticSteering(2, 32, 0.41);
  std::vector<double> scale(2);
  for (std::size_t k = 0; k < 2; ++k) {
    scale[k] =
        ReachableMagnitude(std::span<const Complex>(front.row(k), front.cols())) *
        ReachableMagnitude(std::span<const Complex>(upper.row(k), upper.cols()));
  }
  const std::vector<Complex> targets{
      0.5 * scale[0] * std::polar(1.0, 0.3),
      0.4 * scale[1] * std::polar(1.0, -1.1)};

  std::vector<CascadeLayerInput> layers(2);
  layers[0].steering = front;
  layers[1].steering = upper;
  const CascadeResult result = SolveCascadeMultiTarget(layers, targets, {});

  ASSERT_EQ(result.codes.size(), 2u);
  EXPECT_EQ(result.codes[0].size(), 64u);
  EXPECT_EQ(result.codes[1].size(), 32u);
  ASSERT_EQ(result.achieved.size(), 2u);
  double target_norm = 0.0;
  for (const Complex& t : targets) target_norm += std::norm(t);
  EXPECT_LT(result.residual, 0.15 * std::sqrt(target_norm));
  // The achieved responses must really be the composed per-layer sums.
  for (std::size_t k = 0; k < 2; ++k) {
    Complex product{1.0, 0.0};
    for (std::size_t l = 0; l < 2; ++l) {
      Complex sum{0.0, 0.0};
      const ComplexMatrix& s = l == 0 ? front : upper;
      for (std::size_t m = 0; m < s.cols(); ++m) {
        sum += s(k, m) * PhasorForCode(result.codes[l][m]);
      }
      product *= sum;
    }
    EXPECT_LT(std::abs(product - result.achieved[k]),
              1e-9 * std::abs(product) + 1e-9);
  }
}

TEST(CascadeSolverTest, MoreOuterSweepsDoNotRegressResidual) {
  const ComplexMatrix front = SyntheticSteering(2, 48, 0.23);
  const ComplexMatrix upper = SyntheticSteering(2, 24, 0.53);
  const std::vector<Complex> targets{{200.0, 80.0}, {-150.0, 120.0}};
  std::vector<CascadeLayerInput> layers(2);
  layers[0].steering = front;
  layers[1].steering = upper;

  const CascadeResult one = SolveCascadeMultiTarget(layers, targets, {1});
  const CascadeResult four = SolveCascadeMultiTarget(layers, targets, {4});
  EXPECT_LE(four.residual, one.residual + 1e-9);
  EXPECT_GT(four.total_sweeps, one.total_sweeps);
}

TEST(CascadeSolverTest, TypedErrorsOnInvalidInputs) {
  const std::vector<Complex> targets{{10.0, 0.0}};
  const auto empty = TrySolveCascadeMultiTarget({}, targets, {});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.error().code, ErrorCode::kInvalidArgument);

  // Upper layer row count must match the target count.
  std::vector<CascadeLayerInput> layers(2);
  layers[0].steering = SyntheticSteering(1, 16, 0.31);
  layers[1].steering = SyntheticSteering(2, 16, 0.31);
  const auto mismatched = TrySolveCascadeMultiTarget(layers, targets, {});
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.error().code, ErrorCode::kInvalidArgument);

  std::vector<CascadeLayerInput> bad_sweeps(1);
  bad_sweeps[0].steering = SyntheticSteering(1, 16, 0.31);
  const auto zero_sweeps =
      TrySolveCascadeMultiTarget(bad_sweeps, targets, {0});
  ASSERT_FALSE(zero_sweeps.ok());
  EXPECT_EQ(zero_sweeps.error().code, ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace metaai::mts
