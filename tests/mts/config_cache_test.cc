#include "mts/config_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace metaai::mts {
namespace {

CachedConfig MakeConfig(int tag) {
  CachedConfig config;
  config.rounds = {{{static_cast<PhaseCode>(tag % 4),
                     static_cast<PhaseCode>((tag + 1) % 4)}}};
  config.outputs = {{tag}};
  config.scale = 1.0 + tag;
  config.mean_relative_residual = 0.01 * tag;
  return config;
}

TEST(ConfigCacheTest, MissThenHitRoundTripsExactValue) {
  ConfigCache cache(4);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  cache.Insert("a", MakeConfig(1));
  const auto hit = cache.Lookup("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, MakeConfig(1));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(ConfigCacheTest, EvictsLeastRecentlyUsed) {
  ConfigCache cache(2);
  cache.Insert("a", MakeConfig(1));
  cache.Insert("b", MakeConfig(2));
  // Touch "a" so "b" becomes least recently used.
  ASSERT_TRUE(cache.Lookup("a").has_value());
  cache.Insert("c", MakeConfig(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ConfigCacheTest, InsertRefreshesExistingKey) {
  ConfigCache cache(2);
  cache.Insert("a", MakeConfig(1));
  cache.Insert("a", MakeConfig(9));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup("a")->scale, MakeConfig(9).scale);
}

TEST(ConfigCacheTest, ClearDropsEntriesButKeepsStats) {
  ConfigCache cache(4);
  cache.Insert("a", MakeConfig(1));
  ASSERT_TRUE(cache.Lookup("a").has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ConfigCacheTest, HitRateIsZeroWhenNeverQueried) {
  ConfigCache cache;
  EXPECT_EQ(cache.capacity(), ConfigCache::kDefaultCapacity);
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 0.0);
}

TEST(ConfigCacheSingleflightTest, LeaderMissThenPublishThenHits) {
  ConfigCache cache(4);
  // First caller becomes the leader: counted as the miss.
  EXPECT_FALSE(cache.LookupOrBegin("k").has_value());
  cache.Publish("k", MakeConfig(3));
  const auto hit = cache.LookupOrBegin("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, MakeConfig(3));
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.singleflight_waits, 0u);
}

TEST(ConfigCacheSingleflightTest, AbandonPromotesNextCallerToLeader) {
  ConfigCache cache(4);
  EXPECT_FALSE(cache.LookupOrBegin("k").has_value());
  cache.Abandon("k");
  // The failed solve inserted nothing; the next caller leads again.
  EXPECT_FALSE(cache.LookupOrBegin("k").has_value());
  cache.Publish("k", MakeConfig(1));
  EXPECT_TRUE(cache.Lookup("k").has_value());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ConfigCacheSingleflightTest, RacingThreadsScoreOneMissRestHits) {
  // The duplicate-solve race: N threads ask for the same cold key at
  // once. Exactly one must lead (and solve); the rest must block and
  // then hit — so the hit/miss split is scheduling-independent:
  // 1 miss + (N-1) hits, and exactly one solve runs.
  constexpr int kThreads = 8;
  ConfigCache cache(4);
  std::atomic<int> solves{0};
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const std::optional<CachedConfig> found = cache.LookupOrBegin("cold");
      if (found.has_value()) {
        EXPECT_EQ(*found, MakeConfig(7));
        ++hits;
      } else {
        ++solves;  // leader: "solve" and publish
        cache.Publish("cold", MakeConfig(7));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(solves.load(), 1);
  EXPECT_EQ(hits.load(), kThreads - 1);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ConfigCacheNearestTest, ReturnsClosestSameFamilyEntry) {
  ConfigCache cache(8);
  cache.Insert("a", MakeConfig(1), "fam", {1.0, 0.0});
  cache.Insert("b", MakeConfig(2), "fam", {0.0, 1.0});
  cache.Insert("c", MakeConfig(3), "other", {0.9, 0.05});

  // Query near "a"; "c" is closer but belongs to another family.
  const auto nearest = cache.LookupNearest("fam", {0.9, 0.1}, 0.5);
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(*nearest, MakeConfig(1));
  EXPECT_EQ(cache.stats().nearest_hits, 1u);
}

TEST(ConfigCacheNearestTest, RespectsMaxDistanceAndDimension) {
  ConfigCache cache(8);
  cache.Insert("a", MakeConfig(1), "fam", {1.0, 0.0});
  // Too far away for the requested radius.
  EXPECT_FALSE(cache.LookupNearest("fam", {-1.0, 0.0}, 0.5).has_value());
  // Dimension mismatch never matches.
  EXPECT_FALSE(cache.LookupNearest("fam", {1.0, 0.0, 0.0}, 10.0).has_value());
  // Entries without metadata are not candidates.
  cache.Insert("plain", MakeConfig(2));
  EXPECT_FALSE(cache.LookupNearest("", {}, 10.0).has_value());
  EXPECT_EQ(cache.stats().nearest_misses, 3u);
  EXPECT_EQ(cache.stats().nearest_hits, 0u);
}

TEST(ConfigCacheNearestTest, DoesNotPerturbLruOrExactCounters) {
  ConfigCache cache(2);
  cache.Insert("a", MakeConfig(1), "fam", {0.0});
  cache.Insert("b", MakeConfig(2), "fam", {1.0});
  // Nearest-matching "a" must NOT refresh it in LRU order...
  ASSERT_TRUE(cache.LookupNearest("fam", {0.1}, 1.0).has_value());
  cache.Insert("c", MakeConfig(3));
  // ...so "a" (least recently used) is the eviction victim.
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("b").has_value());
  const auto stats = cache.stats();
  // The nearest hit counted under nearest_hits only.
  EXPECT_EQ(stats.nearest_hits, 1u);
  EXPECT_EQ(stats.hits, 1u);    // the "b" exact lookup
  EXPECT_EQ(stats.misses, 1u);  // the "a" exact lookup
}

TEST(ConfigCacheNearestTest, TieBreaksOnSmallestKey) {
  // Equidistant candidates resolve by lexicographically smallest key —
  // a content property — never by LRU position, which depends on the
  // lookup history and made warm-start schedules (and thus downstream
  // solves) irreproducible across runs with different traffic.
  ConfigCache cache(4);
  cache.Insert("b-key", MakeConfig(1), "fam", {1.0});
  cache.Insert("a-key", MakeConfig(2), "fam", {1.0});
  const auto nearest = cache.LookupNearest("fam", {1.0}, 1.0);
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(*nearest, MakeConfig(2));
}

TEST(ConfigCacheNearestTest, TieBreakIgnoresRecency) {
  // Constructed tie where MRU order and key order disagree: "z-key" is
  // the most recently inserted AND most recently hit entry, but "a-key"
  // must still win the equidistant lookup.
  ConfigCache cache(4);
  cache.Insert("a-key", MakeConfig(1), "fam", {2.0});
  cache.Insert("z-key", MakeConfig(2), "fam", {2.0});
  EXPECT_TRUE(cache.Lookup("z-key").has_value());  // refresh z's recency
  const auto nearest = cache.LookupNearest("fam", {2.0}, 1.0);
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(*nearest, MakeConfig(1));

  // A strictly closer entry still beats the smaller key: tie-breaking
  // only applies at exactly equal distance.
  ConfigCache closer(4);
  closer.Insert("a-key", MakeConfig(1), "fam", {2.0});
  closer.Insert("z-key", MakeConfig(2), "fam", {2.1});
  const auto best = closer.LookupNearest("fam", {2.1}, 1.0);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(*best, MakeConfig(2));
}

TEST(ConfigKeyTest, KeyIsOrderAndContentSensitive) {
  ConfigKey a;
  a.Tag("t").Add(1.0).Add(std::uint64_t{2});
  ConfigKey b;
  b.Tag("t").Add(2.0).Add(std::uint64_t{2});
  ConfigKey c;
  c.Tag("t").Add(std::uint64_t{2}).Add(1.0);
  EXPECT_NE(a.str(), b.str());
  EXPECT_NE(a.str(), c.str());

  ConfigKey again;
  again.Tag("t").Add(1.0).Add(std::uint64_t{2});
  EXPECT_EQ(a.str(), again.str());
  EXPECT_EQ(std::move(again).Take(), a.str());

  // Byte payloads are length-delimited: ("ab","c") != ("a","bc").
  const char ab[] = {'a', 'b'};
  const char c1[] = {'c'};
  const char a1[] = {'a'};
  const char bc[] = {'b', 'c'};
  ConfigKey split_ab;
  split_ab.AddBytes(ab, 2).AddBytes(c1, 1);
  ConfigKey split_a;
  split_a.AddBytes(a1, 1).AddBytes(bc, 2);
  EXPECT_NE(split_ab.str(), split_a.str());
}

}  // namespace
}  // namespace metaai::mts
