#include "mts/config_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace metaai::mts {
namespace {

CachedConfig MakeConfig(int tag) {
  CachedConfig config;
  config.rounds = {{{static_cast<PhaseCode>(tag % 4),
                     static_cast<PhaseCode>((tag + 1) % 4)}}};
  config.outputs = {{tag}};
  config.scale = 1.0 + tag;
  config.mean_relative_residual = 0.01 * tag;
  return config;
}

TEST(ConfigCacheTest, MissThenHitRoundTripsExactValue) {
  ConfigCache cache(4);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  cache.Insert("a", MakeConfig(1));
  const auto hit = cache.Lookup("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, MakeConfig(1));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(ConfigCacheTest, EvictsLeastRecentlyUsed) {
  ConfigCache cache(2);
  cache.Insert("a", MakeConfig(1));
  cache.Insert("b", MakeConfig(2));
  // Touch "a" so "b" becomes least recently used.
  ASSERT_TRUE(cache.Lookup("a").has_value());
  cache.Insert("c", MakeConfig(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ConfigCacheTest, InsertRefreshesExistingKey) {
  ConfigCache cache(2);
  cache.Insert("a", MakeConfig(1));
  cache.Insert("a", MakeConfig(9));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup("a")->scale, MakeConfig(9).scale);
}

TEST(ConfigCacheTest, ClearDropsEntriesButKeepsStats) {
  ConfigCache cache(4);
  cache.Insert("a", MakeConfig(1));
  ASSERT_TRUE(cache.Lookup("a").has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ConfigCacheTest, HitRateIsZeroWhenNeverQueried) {
  ConfigCache cache;
  EXPECT_EQ(cache.capacity(), ConfigCache::kDefaultCapacity);
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 0.0);
}

TEST(ConfigKeyTest, KeyIsOrderAndContentSensitive) {
  ConfigKey a;
  a.Tag("t").Add(1.0).Add(std::uint64_t{2});
  ConfigKey b;
  b.Tag("t").Add(2.0).Add(std::uint64_t{2});
  ConfigKey c;
  c.Tag("t").Add(std::uint64_t{2}).Add(1.0);
  EXPECT_NE(a.str(), b.str());
  EXPECT_NE(a.str(), c.str());

  ConfigKey again;
  again.Tag("t").Add(1.0).Add(std::uint64_t{2});
  EXPECT_EQ(a.str(), again.str());
  EXPECT_EQ(std::move(again).Take(), a.str());

  // Byte payloads are length-delimited: ("ab","c") != ("a","bc").
  const char ab[] = {'a', 'b'};
  const char c1[] = {'c'};
  const char a1[] = {'a'};
  const char bc[] = {'b', 'c'};
  ConfigKey split_ab;
  split_ab.AddBytes(ab, 2).AddBytes(c1, 1);
  ConfigKey split_a;
  split_a.AddBytes(a1, 1).AddBytes(bc, 2);
  EXPECT_NE(split_ab.str(), split_a.str());
}

}  // namespace
}  // namespace metaai::mts
