#include "mts/beam_scan.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "rf/geometry.h"

namespace metaai::mts {
namespace {

LinkGeometry TrueGeometry(double rx_angle_deg) {
  return {.tx_distance_m = 1.0,
          .tx_angle_rad = rf::DegToRad(30.0),
          .rx_distance_m = 3.0,
          .rx_angle_rad = rf::DegToRad(rx_angle_deg),
          .frequency_hz = 5.25e9};
}

// Simulated power measurement: apply the candidate codes and compute the
// actual received power at the true receiver position.
double MeasuredPower(Metasurface& surface, const LinkGeometry& truth,
                     std::span<const PhaseCode> codes) {
  std::vector<PhaseCode> copy(codes.begin(), codes.end());
  surface.SetAllCodes(copy);
  return std::norm(surface.Response(truth));
}

TEST(BeamScanTest, FocusCodesMaximizePowerAtIntendedAngle) {
  Metasurface surface{MetasurfaceSpec{}};
  const auto truth = TrueGeometry(40.0);
  const auto focus = FocusCodes(surface, truth);
  surface.SetAllCodes(focus);
  const double focused_power = std::norm(surface.Response(truth));
  // Compare against uniform codes: focusing must give a large gain at
  // oblique angles.
  std::vector<PhaseCode> uniform(surface.num_atoms(), 0);
  surface.SetAllCodes(uniform);
  const double uniform_power = std::norm(surface.Response(truth));
  EXPECT_GT(focused_power, 10.0 * uniform_power);
}

TEST(BeamScanTest, EstimatesReceiverAngleWithinScanResolution) {
  Metasurface surface{MetasurfaceSpec{}};
  for (const double true_deg : {10.0, 25.0, 40.0, 55.0}) {
    const auto truth = TrueGeometry(true_deg);
    LinkGeometry known = truth;
    known.rx_angle_rad = 0.0;  // receiver angle unknown to the scanner
    const auto result = ScanForReceiver(
        surface, known, rf::DegToRad(0.0), rf::DegToRad(60.0), 61,
        [&](std::span<const PhaseCode> codes) {
          return MeasuredPower(surface, truth, codes);
        });
    EXPECT_NEAR(rf::RadToDeg(result.angle_rad), true_deg, 1.5)
        << "true angle " << true_deg;
  }
}

TEST(BeamScanTest, RecordsOnePowerPerStep) {
  Metasurface surface{MetasurfaceSpec{}};
  const auto truth = TrueGeometry(30.0);
  const auto result = ScanForReceiver(
      surface, truth, rf::DegToRad(0.0), rf::DegToRad(60.0), 13,
      [&](std::span<const PhaseCode> codes) {
        return MeasuredPower(surface, truth, codes);
      });
  EXPECT_EQ(result.scanned_powers.size(), 13u);
  // Peak power equals the maximum recorded power.
  double max_power = 0.0;
  for (const double p : result.scanned_powers) {
    max_power = std::max(max_power, p);
  }
  EXPECT_DOUBLE_EQ(result.peak_power, max_power);
}

TEST(BeamScanTest, ValidatesArguments) {
  Metasurface surface{MetasurfaceSpec{}};
  const auto truth = TrueGeometry(30.0);
  auto measure = [](std::span<const PhaseCode>) { return 1.0; };
  EXPECT_THROW(ScanForReceiver(surface, truth, 0.0, 1.0, 1, measure),
               CheckError);
  EXPECT_THROW(ScanForReceiver(surface, truth, 1.0, 0.0, 10, measure),
               CheckError);
  EXPECT_THROW(ScanForReceiver(surface, truth, 0.0, 1.0, 10, nullptr),
               CheckError);
}

}  // namespace
}  // namespace metaai::mts
