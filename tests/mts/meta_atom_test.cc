#include "mts/meta_atom.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"

namespace metaai::mts {
namespace {

TEST(MetaAtomTest, PhaseForCodeIsQuarterTurns) {
  EXPECT_DOUBLE_EQ(PhaseForCode(0), 0.0);
  EXPECT_DOUBLE_EQ(PhaseForCode(1), M_PI / 2.0);
  EXPECT_DOUBLE_EQ(PhaseForCode(2), M_PI);
  EXPECT_DOUBLE_EQ(PhaseForCode(3), 3.0 * M_PI / 2.0);
}

TEST(MetaAtomTest, PhasorsAreExactUnitAxes) {
  EXPECT_EQ(PhasorForCode(0), (Complex{1.0, 0.0}));
  EXPECT_EQ(PhasorForCode(1), (Complex{0.0, 1.0}));
  EXPECT_EQ(PhasorForCode(2), (Complex{-1.0, 0.0}));
  EXPECT_EQ(PhasorForCode(3), (Complex{0.0, -1.0}));
}

TEST(MetaAtomTest, OppositeCodeIsExactPiFlip) {
  for (PhaseCode c = 0; c < kNumPhaseStates; ++c) {
    const Complex a = PhasorForCode(c);
    const Complex b = PhasorForCode(OppositeCode(c));
    EXPECT_NEAR(std::abs(a + b), 0.0, 1e-15);
  }
}

TEST(MetaAtomTest, OppositeIsAnInvolution) {
  for (PhaseCode c = 0; c < kNumPhaseStates; ++c) {
    EXPECT_EQ(OppositeCode(OppositeCode(c)), c);
  }
}

TEST(MetaAtomTest, NearestCodeRoundsToClosestState) {
  EXPECT_EQ(NearestCode(0.1), 0);
  EXPECT_EQ(NearestCode(M_PI / 2.0 - 0.1), 1);
  EXPECT_EQ(NearestCode(M_PI + 0.2), 2);
  EXPECT_EQ(NearestCode(-M_PI / 2.0), 3);   // wraps negative phases
  EXPECT_EQ(NearestCode(2.0 * M_PI), 0);    // wraps full turns
  EXPECT_EQ(NearestCode(7.0 * M_PI / 2.0), 3);
}

TEST(MetaAtomTest, NearestCodeErrorBoundedByQuarterPi) {
  for (double phase = -10.0; phase <= 10.0; phase += 0.01) {
    const double code_phase = PhaseForCode(NearestCode(phase));
    double diff = std::fmod(std::abs(phase - code_phase), 2.0 * M_PI);
    diff = std::min(diff, 2.0 * M_PI - diff);
    EXPECT_LE(diff, M_PI / 4.0 + 1e-9) << "phase=" << phase;
  }
}

TEST(MetaAtomTest, InvalidCodesThrow) {
  EXPECT_THROW(PhaseForCode(4), CheckError);
  EXPECT_THROW(PhasorForCode(4), CheckError);
  EXPECT_THROW(OppositeCode(4), CheckError);
}

}  // namespace
}  // namespace metaai::mts
