#include "mts/controller.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace metaai::mts {
namespace {

TEST(ControllerTest, PrototypeBitBudgetMatchesPaper) {
  // 256 atoms / 16 groups = 16 atoms per group, 2 bits each = 32 bits per
  // shift-register chain (four 8-bit SN74LV595s).
  Controller controller;
  EXPECT_EQ(controller.BitsPerGroup(), 32u);
}

TEST(ControllerTest, MaxSwitchRateIsAround256MHzPatterns) {
  // The paper quotes a maximum switching rate of 2.56 MHz patterns/sec.
  Controller controller;
  EXPECT_GT(controller.MaxSwitchRate(), 2.4e6);
  EXPECT_LT(controller.MaxSwitchRate(), 2.9e6);
}

TEST(ControllerTest, SustainsMidSymbolFlipAt1Msps) {
  // Multipath cancellation needs 2 patterns per symbol at 1 Msym/s.
  Controller controller;
  EXPECT_TRUE(controller.CanSustain(1e6, 2));
  EXPECT_FALSE(controller.CanSustain(2e6, 2));
}

TEST(ControllerTest, LoadTimeScalesInverselyWithClock)
{
  ControllerConfig slow;
  slow.shift_clock_hz = 1e6;
  ControllerConfig fast = slow;
  fast.shift_clock_hz = 2e6;
  EXPECT_GT(Controller(slow).PatternLoadTime(),
            Controller(fast).PatternLoadTime());
  EXPECT_NEAR(Controller(slow).PatternLoadTime() - slow.latch_overhead_s,
              2.0 * (Controller(fast).PatternLoadTime() -
                     fast.latch_overhead_s),
              1e-12);
}

TEST(ControllerTest, MoreGroupsLoadFaster) {
  ControllerConfig few;
  few.num_groups = 8;
  ControllerConfig many;
  many.num_groups = 32;
  EXPECT_GT(Controller(few).PatternLoadTime(),
            Controller(many).PatternLoadTime());
}

TEST(ControllerTest, ScheduleEnergyCountsPatternsAndStaticPower) {
  ControllerConfig config;
  config.energy_per_pattern_j = 1e-6;
  config.static_power_w = 0.5;
  Controller controller(config);
  EXPECT_NEAR(controller.ScheduleEnergy(100, 2.0), 100e-6 + 1.0, 1e-12);
  EXPECT_NEAR(controller.ScheduleEnergy(0, 0.0), 0.0, 1e-15);
}

TEST(ControllerTest, ValidatesConfig) {
  ControllerConfig bad;
  bad.num_atoms = 255;  // not divisible by 16 groups
  EXPECT_THROW(Controller{bad}, CheckError);
  ControllerConfig zero_clock;
  zero_clock.shift_clock_hz = 0.0;
  EXPECT_THROW(Controller{zero_clock}, CheckError);
  Controller controller;
  EXPECT_THROW(controller.CanSustain(0.0, 2), CheckError);
  EXPECT_THROW(controller.CanSustain(1e6, 0), CheckError);
  EXPECT_THROW(controller.ScheduleEnergy(1, -1.0), CheckError);
}

}  // namespace
}  // namespace metaai::mts
