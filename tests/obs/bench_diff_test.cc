#include "obs/bench_diff.h"

#include <gtest/gtest.h>

#include <string>

#include "common/check.h"
#include "obs/export.h"

namespace metaai::obs {
namespace {

// A small but complete metaai.bench.v1 document.
constexpr const char* kBenchJson = R"({
  "schema": "metaai.bench.v1",
  "bench": "unit",
  "elapsed_s": 1.5,
  "headlines": {"accuracy": 0.875, "solve_time_ms": 12.0,
                "speedup_batched_vs_naive": 3.5,
                "throughput_batched_8t_rps": 540.0},
  "metrics": {
    "schema": "metaai.obs.v1",
    "counters": {"solver.calls": 7},
    "gauges": {"ota.accuracy": 0.875},
    "histograms": {
      "solver.sweeps": {"lower": 0, "upper_edges": [4],
                        "bucket_counts": [3], "count": 3, "sum": 6}
    }
  }
})";

TEST(ExtractBenchMetricTest, ResolvesEveryPathKind) {
  const JsonValue document = ParseJson(kBenchJson);
  EXPECT_DOUBLE_EQ(*ExtractBenchMetric(document, "elapsed_s"), 1.5);
  EXPECT_DOUBLE_EQ(*ExtractBenchMetric(document, "headlines.accuracy"),
                   0.875);
  EXPECT_DOUBLE_EQ(*ExtractBenchMetric(document, "counters.solver.calls"),
                   7.0);
  EXPECT_DOUBLE_EQ(*ExtractBenchMetric(document, "gauges.ota.accuracy"),
                   0.875);
  EXPECT_DOUBLE_EQ(
      *ExtractBenchMetric(document, "histograms.solver.sweeps.count"), 3.0);
  EXPECT_DOUBLE_EQ(
      *ExtractBenchMetric(document, "histograms.solver.sweeps.sum"), 6.0);
}

TEST(ExtractBenchMetricTest, AbsentPathsAreNullopt) {
  const JsonValue document = ParseJson(kBenchJson);
  EXPECT_FALSE(ExtractBenchMetric(document, "headlines.missing"));
  EXPECT_FALSE(ExtractBenchMetric(document, "counters.missing"));
  EXPECT_FALSE(ExtractBenchMetric(document, "histograms.missing.count"));
  // Histogram paths must end in .count or .sum.
  EXPECT_FALSE(ExtractBenchMetric(document, "histograms.solver.sweeps"));
  EXPECT_FALSE(ExtractBenchMetric(document, "nonsense"));
}

BenchBaseline UnitBaseline() {
  BenchBaseline baseline;
  baseline.bench = "unit";
  baseline.metrics = {
      {.path = "counters.solver.calls", .value = 7.0},
      {.path = "gauges.ota.accuracy",
       .value = 0.87,
       .abs_tol = 0.01,
       .rel_tol = 0.0},
      {.path = "headlines.solve_time_ms",
       .value = 10.0,
       .abs_tol = 1.0,
       .rel_tol = 9.0},
  };
  return baseline;
}

TEST(DiffBenchTest, PassesWithinTolerance) {
  const BenchDiffReport report =
      DiffBench(UnitBaseline(), ParseJson(kBenchJson));
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.metrics.size(), 3u);
  for (const MetricDiff& m : report.metrics) {
    EXPECT_EQ(m.status, DiffStatus::kPass) << m.path;
  }
  // 12ms vs 10ms baseline is well inside 1 + 9*10.
  EXPECT_DOUBLE_EQ(report.metrics[2].allowed, 91.0);
}

TEST(DiffBenchTest, FlagsRegressionBeyondTolerance) {
  BenchBaseline baseline = UnitBaseline();
  baseline.metrics[0].value = 8.0;  // counter is exact: 7 != 8 regresses
  baseline.metrics[1].value = 0.85;  // |0.875 - 0.85| > 0.01
  const BenchDiffReport report =
      DiffBench(baseline, ParseJson(kBenchJson));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.metrics[0].status, DiffStatus::kRegress);
  EXPECT_EQ(report.metrics[1].status, DiffStatus::kRegress);
  EXPECT_EQ(report.metrics[2].status, DiffStatus::kPass);
}

TEST(DiffBenchTest, FlagsMissingMetrics) {
  BenchBaseline baseline = UnitBaseline();
  baseline.metrics.push_back({.path = "gauges.removed", .value = 1.0});
  const BenchDiffReport report =
      DiffBench(baseline, ParseJson(kBenchJson));
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.metrics.back().status, DiffStatus::kMissing);
  // The table renders one row per metric with a readable status column.
  const std::string rendered = BenchDiffTable(report).ToString();
  EXPECT_NE(rendered.find("gauges.removed"), std::string::npos);
  EXPECT_NE(rendered.find("MISSING"), std::string::npos);
  EXPECT_NE(rendered.find("ok"), std::string::npos);
}

TEST(DistillBaselineTest, UsesDefaultTolerancesAndSortsPaths) {
  const BenchBaseline baseline =
      DistillBaseline(ParseJson(kBenchJson));
  EXPECT_EQ(baseline.bench, "unit");
  ASSERT_EQ(baseline.metrics.size(), 9u);
  for (std::size_t i = 1; i < baseline.metrics.size(); ++i) {
    EXPECT_LT(baseline.metrics[i - 1].path, baseline.metrics[i].path);
  }
  auto find = [&](std::string_view path) -> const BaselineMetric& {
    for (const auto& m : baseline.metrics) {
      if (m.path == path) return m;
    }
    throw CheckError("metric not distilled: " + std::string(path));
  };
  // Counters and histogram counts are exact.
  EXPECT_DOUBLE_EQ(find("counters.solver.calls").Allowed(), 0.0);
  EXPECT_DOUBLE_EQ(find("histograms.solver.sweeps.count").Allowed(), 0.0);
  // Deterministic values get the tight default.
  EXPECT_DOUBLE_EQ(find("gauges.ota.accuracy").rel_tol, 1e-6);
  EXPECT_DOUBLE_EQ(find("headlines.accuracy").rel_tol, 1e-6);
  // Time-like metrics are loose (machine-dependent) — including
  // wall-clock ratios, which carry no time-unit suffix.
  EXPECT_DOUBLE_EQ(find("elapsed_s").rel_tol, 9.0);
  EXPECT_DOUBLE_EQ(find("headlines.solve_time_ms").rel_tol, 9.0);
  EXPECT_DOUBLE_EQ(find("headlines.speedup_batched_vs_naive").rel_tol, 9.0);
  EXPECT_DOUBLE_EQ(find("headlines.throughput_batched_8t_rps").rel_tol, 9.0);
  // The distilled baseline passes against its own source document.
  EXPECT_TRUE(DiffBench(baseline, ParseJson(kBenchJson)).ok());
}

TEST(BaselineJsonTest, RoundTripsThroughToJsonAndFromJson) {
  const BenchBaseline baseline =
      DistillBaseline(ParseJson(kBenchJson));
  const std::string json = BaselineToJson(baseline);
  EXPECT_EQ(json, BaselineToJson(baseline));  // byte-deterministic
  EXPECT_EQ(BaselineFromJson(ParseJson(json)), baseline);
}

TEST(BaselineJsonTest, RejectsWrongSchema) {
  EXPECT_THROW(
      BaselineFromJson(ParseJson(R"({"schema": "metaai.obs.v1"})")),
      CheckError);
  EXPECT_THROW(DistillBaseline(ParseJson(R"({"schema": "bogus"})")),
               CheckError);
}

}  // namespace
}  // namespace metaai::obs
