#include "obs/parallel.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace metaai::obs {
namespace {

// One instrumented fan-out: every task counts, observes a float (so the
// histogram sum is order-sensitive) and emits one probe record.
void InstrumentedFanOut(std::size_t n) {
  static const HistogramSpec kBuckets = HistogramSpec::Linear(0.0, 1.0, 4);
  DeterministicParallelFor(n, [&](std::size_t i) {
    Count("par_test.tasks");
    Observe("par_test.value",
            static_cast<double>(i) / static_cast<double>(n), kBuckets);
    SetGauge("par_test.last_index", static_cast<double>(i));
    Probe({.kind = ProbeKind::kScalar,
           .site = "par_test.task",
           .values = {{"index", static_cast<double>(i)}}});
  });
}

std::pair<std::string, std::string> RenderedTelemetry(int threads,
                                                      std::size_t n) {
  const par::ScopedThreadCount scoped(threads);
  Registry registry;
  ProbeSink sink;
  const ScopedRegistry scoped_registry(&registry);
  const ScopedProbeSink scoped_sink(&sink);
  InstrumentedFanOut(n);
  return {ToJson(registry.Snapshot()), ToProbesJsonl(sink)};
}

TEST(DeterministicParallelForTest, TelemetryIsIdenticalAcrossThreadCounts) {
  const auto serial = RenderedTelemetry(1, 101);
  EXPECT_EQ(RenderedTelemetry(2, 101), serial);
  EXPECT_EQ(RenderedTelemetry(8, 101), serial);
}

// The following tests assert recorded instrument *content*, which only
// exists when telemetry is compiled in (with -DMETAAI_OBS=OFF the
// obs::Count/Observe/Probe helpers are empty inlines).
#if METAAI_OBS_ENABLED

TEST(DeterministicParallelForTest, MergesCountsAndProbesInTaskOrder) {
  const par::ScopedThreadCount scoped(4);
  Registry registry;
  ProbeSink sink;
  const ScopedRegistry scoped_registry(&registry);
  const ScopedProbeSink scoped_sink(&sink);
  InstrumentedFanOut(32);
  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].second, 32u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  // Gauge merge is last-writer-wins in task order: the final task wins.
  EXPECT_EQ(snapshot.gauges[0].second, 31.0);
  const std::vector<ProbeRecord> probes = sink.Snapshot();
  ASSERT_EQ(probes.size(), 32u);
  for (std::size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(probes[i].seq, i);
    EXPECT_EQ(probes[i].values[0].second, static_cast<double>(i));
  }
}

#endif  // METAAI_OBS_ENABLED

TEST(DeterministicParallelForTest, WithoutTelemetryStillRunsEveryTask) {
  // No registry/sink installed: plain passthrough to par::ParallelFor.
  const par::ScopedThreadCount scoped(4);
  std::vector<int> hits(64, 0);
  DeterministicParallelFor(64, [&](std::size_t i) { hits[i] = 1; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

#if METAAI_OBS_ENABLED

TEST(DeterministicParallelForTest, NestedFanOutMergesIntoOuterTask) {
  auto run = [](int threads) {
    const par::ScopedThreadCount scoped(threads);
    Registry registry;
    const ScopedRegistry scoped_registry(&registry);
    static const HistogramSpec kBuckets = HistogramSpec::Linear(0.0, 8.0, 8);
    DeterministicParallelFor(4, [&](std::size_t outer) {
      DeterministicParallelFor(4, [&](std::size_t inner) {
        Observe("par_test.nested",
                static_cast<double>(outer * 4 + inner) / 2.0, kBuckets);
      });
    });
    return ToJson(registry.Snapshot());
  };
  const std::string serial = run(1);
  EXPECT_EQ(run(3), serial);
  const RegistrySnapshot parsed = SnapshotFromJson(ParseJson(serial));
  ASSERT_EQ(parsed.histograms.size(), 1u);
  EXPECT_EQ(parsed.histograms[0].second.count, 16u);
}

TEST(DeterministicParallelForTest, TaskExceptionDiscardsFanOutTelemetry) {
  const par::ScopedThreadCount scoped(2);
  Registry registry;
  const ScopedRegistry scoped_registry(&registry);
  Count("par_test.before");
  EXPECT_THROW(DeterministicParallelFor(8,
                                        [&](std::size_t i) {
                                          Count("par_test.inside");
                                          if (i == 3) {
                                            throw std::runtime_error("boom");
                                          }
                                        }),
               std::runtime_error);
  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "par_test.before");
}

#endif  // METAAI_OBS_ENABLED

TEST(DeterministicParallelMapTest, ResultsComeBackInItemOrder) {
  const par::ScopedThreadCount scoped(4);
  const std::vector<int> items = {5, 4, 3, 2, 1};
  const std::vector<int> doubled =
      DeterministicParallelMap(items, [](int v) { return 2 * v; });
  EXPECT_EQ(doubled, (std::vector<int>{10, 8, 6, 4, 2}));
}

TEST(RegistryMergeTest, FoldsCountersGaugesAndHistograms) {
  Registry a;
  Registry b;
  const HistogramSpec spec = HistogramSpec::Linear(0.0, 10.0, 5);
  a.GetCounter("m.count").Add(2);
  a.GetHistogram("m.hist", spec).Observe(1.0);
  b.GetCounter("m.count").Add(3);
  b.GetGauge("m.gauge").Set(7.0);
  b.GetHistogram("m.hist", spec).Observe(9.0);
  a.Merge(b.Snapshot());
  const RegistrySnapshot merged = a.Snapshot();
  ASSERT_EQ(merged.counters.size(), 1u);
  EXPECT_EQ(merged.counters[0].second, 5u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_EQ(merged.gauges[0].second, 7.0);
  ASSERT_EQ(merged.histograms.size(), 1u);
  EXPECT_EQ(merged.histograms[0].second.count, 2u);
  EXPECT_EQ(merged.histograms[0].second.sum, 10.0);
}

TEST(RegistryMergeTest, HistogramMergeRejectsMismatchedLayout) {
  Registry a;
  Registry b;
  a.GetHistogram("m.hist", HistogramSpec::Linear(0.0, 10.0, 5));
  b.GetHistogram("m.hist", HistogramSpec::Linear(0.0, 20.0, 5));
  EXPECT_THROW(a.Merge(b.Snapshot()), CheckError);
}

}  // namespace
}  // namespace metaai::obs
