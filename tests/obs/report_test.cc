#include "obs/report.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"
#include "obs/lifecycle.h"
#include "obs/timeseries.h"

namespace metaai::obs {
namespace {

RequestLog SmallLog() {
  RequestLog log;
  log.tenants = {"alpha", "beta"};
  RequestTrace ok;
  ok.id = 0;
  ok.tenant = 0;
  ok.slo_s = 0.05;
  ok.stage(RequestStage::kAirtime) = 2.56e-3;
  ok.energy_j = 4.1e-3;
  RequestTrace late;
  late.id = 1;
  late.tenant = 1;
  late.cache_hit = true;
  late.slo_s = 1e-3;
  late.stage(RequestStage::kQueueWait) = 4e-3;
  late.stage(RequestStage::kAirtime) = 2.56e-3;
  late.energy_j = 4.1e-3;
  log.traces = {ok, late};
  return log;
}

TEST(ObsReportTest, EmptyInputsRenderJustTheBanner) {
  EXPECT_EQ(RenderObsReport({}), "metaai obs report\n\n");
}

TEST(ObsReportTest, IdenticalInputsRenderIdenticalBytes) {
  ObsReportInputs inputs;
  inputs.requests_jsonl = ToRequestsJsonl(SmallLog());
  const std::vector<TimeSeriesPoint> series = {
      {.t_s = 1e-3, .values = {{"queue_depth", 2.0}, {"admitted", 3.0}}}};
  inputs.timeseries_jsonl = ToTimeSeriesJsonl(series);
  const std::string first = RenderObsReport(inputs);
  const std::string second = RenderObsReport(inputs);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("metaai obs report"), std::string::npos);
}

TEST(ObsReportTest, RequestSectionAccountsSloAndEnergy) {
  ObsReportInputs inputs;
  inputs.requests_jsonl = ToRequestsJsonl(SmallLog());
  const std::string report = RenderObsReport(inputs);
  // One of the two traces busts its 1 ms target.
  EXPECT_NE(report.find("SLO: 1/2 within target, 1 violations"),
            std::string::npos);
  EXPECT_NE(report.find("per inference 4100.000 uJ"), std::string::npos);
  // Both tenants get a row, with the cache provenance spelled out.
  EXPECT_NE(report.find("alpha"), std::string::npos);
  EXPECT_NE(report.find("beta"), std::string::npos);
  EXPECT_NE(report.find("solve"), std::string::npos);
  EXPECT_NE(report.find("hit"), std::string::npos);
}

TEST(ObsReportTest, MalformedInputsThrow) {
  ObsReportInputs bad_requests;
  bad_requests.requests_jsonl = "not a jsonl document";
  EXPECT_THROW(RenderObsReport(bad_requests), CheckError);

  ObsReportInputs bad_series;
  bad_series.timeseries_jsonl = "{\"schema\":\"metaai.requests.v1\"}\n";
  EXPECT_THROW(RenderObsReport(bad_series), CheckError);

  ObsReportInputs bad_probes;
  bad_probes.probes_jsonl = "{\"schema\":\"metaai.probes.v1\"}\n";
  EXPECT_THROW(RenderObsReport(bad_probes), CheckError);
}

}  // namespace
}  // namespace metaai::obs
