#include "obs/tracer.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace metaai::obs {
namespace {

TEST(ManualClockTest, AdvancesOnlyWhenTold) {
  ManualClock clock;
  EXPECT_EQ(clock.NowNs(), 0);
  clock.AdvanceNs(250);
  EXPECT_EQ(clock.NowNs(), 250);
  clock.SetNs(1000);
  EXPECT_EQ(clock.NowNs(), 1000);
}

TEST(TracerTest, RecordsNestedSpansWithDepthAndDuration) {
  ManualClock clock;
  Tracer tracer(&clock);
  {
    const ScopedSpan outer(&tracer, "outer");
    clock.AdvanceNs(100);
    {
      const ScopedSpan inner(&tracer, "inner");
      clock.AdvanceNs(30);
    }
    {
      const ScopedSpan sibling(&tracer, "sibling");
      clock.AdvanceNs(20);
    }
    clock.AdvanceNs(50);
  }
  const auto& spans = tracer.spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0],
            (SpanRecord{"outer", 0, 200, 0}));
  EXPECT_EQ(spans[1],
            (SpanRecord{"inner", 100, 30, 1}));
  EXPECT_EQ(spans[2],
            (SpanRecord{"sibling", 130, 20, 1}));
}

TEST(TracerTest, ManualClockTracesAreByteIdenticalAcrossRuns) {
  auto run = [] {
    ManualClock clock;
    Tracer tracer(&clock);
    {
      const ScopedSpan a(&tracer, "phase.a");
      clock.AdvanceNs(7);
      const ScopedSpan b(&tracer, "phase.b");
      clock.AdvanceNs(3);
    }
    return ToJson(RegistrySnapshot{}, &tracer);
  };
  EXPECT_EQ(run(), run());
}

TEST(TracerTest, EndingASpanTwiceThrows) {
  ManualClock clock;
  Tracer tracer(&clock);
  const std::size_t index = tracer.BeginSpan("once");
  tracer.EndSpan(index);
  EXPECT_THROW(tracer.EndSpan(index), CheckError);
}

TEST(TracerTest, ClearResetsSpansAndDepth) {
  ManualClock clock;
  Tracer tracer(&clock);
  tracer.EndSpan(tracer.BeginSpan("span"));
  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
  tracer.EndSpan(tracer.BeginSpan("fresh"));
  EXPECT_EQ(tracer.spans()[0].depth, 0);
}

TEST(TracerTest, SteadyClockDurationsAreNonNegative) {
  Tracer tracer;  // owns a SteadyClock
  tracer.EndSpan(tracer.BeginSpan("wall"));
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_GE(tracer.spans()[0].duration_ns, 0);
}

TEST(ScopedSpanTest, NullTracerIsANoOp) {
  const ScopedSpan span(nullptr, "nothing");  // must not crash
}

#if METAAI_OBS_ENABLED
TEST(ScopedTracerTest, InstallsAndRestores) {
  ManualClock clock;
  Tracer tracer(&clock);
  {
    const ScopedTracer scoped(&tracer);
    const ScopedSpan span = Span("installed");
    clock.AdvanceNs(5);
  }
  { const ScopedSpan span = Span("after.restore"); }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].name, "installed");
  EXPECT_EQ(tracer.spans()[0].duration_ns, 5);
}
#endif  // METAAI_OBS_ENABLED

}  // namespace
}  // namespace metaai::obs
