#include "obs/export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace metaai::obs {
namespace {

Registry& FilledRegistry(Registry& registry) {
  registry.GetCounter("ota.rounds").Add(40);
  registry.GetCounter("solver.calls").Add(7);
  registry.GetGauge("train.loss").Set(0.125);
  registry.GetGauge("ota.accuracy").Set(0.875);
  Histogram& h = registry.GetHistogram(
      "solver.sweeps_per_solve", HistogramSpec::Linear(0.0, 4.0, 4));
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(2.0);
  h.Observe(9.0);  // overflow
  return registry;
}

TEST(JsonExportTest, RoundTripMatchesRegistryState) {
  Registry registry;
  const std::string json = ToJson(FilledRegistry(registry).Snapshot());
  const JsonValue document = ParseJson(json);
  EXPECT_EQ(document.Find("schema")->string, "metaai.obs.v1");
  // The parsed document rebuilds the exact snapshot we serialized.
  EXPECT_EQ(SnapshotFromJson(document), registry.Snapshot());
}

TEST(JsonExportTest, IdenticalSnapshotsSerializeIdentically) {
  Registry a;
  Registry b;
  EXPECT_EQ(ToJson(FilledRegistry(a).Snapshot()),
            ToJson(FilledRegistry(b).Snapshot()));
}

TEST(JsonExportTest, SpansAppearOnlyWithATracer) {
  Registry registry;
  ManualClock clock;
  Tracer tracer(&clock);
  const std::size_t span = tracer.BeginSpan("unit.work");
  clock.AdvanceNs(42);
  tracer.EndSpan(span);

  const std::string without = ToJson(registry.Snapshot());
  EXPECT_EQ(without.find("\"spans\""), std::string::npos);

  const std::string with = ToJson(registry.Snapshot(), &tracer);
  const JsonValue document = ParseJson(with);
  const JsonValue* spans = document.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 1u);
  EXPECT_EQ(spans->array[0].Find("name")->string, "unit.work");
  EXPECT_DOUBLE_EQ(spans->array[0].Find("duration_ns")->number, 42.0);
  EXPECT_DOUBLE_EQ(spans->array[0].Find("depth")->number, 0.0);
}

TEST(JsonExportTest, EscapesSpecialCharacters) {
  Registry registry;
  registry.GetCounter("weird\"name\\with\nstuff").Add(1);
  const std::string json = ToJson(registry.Snapshot());
  const JsonValue document = ParseJson(json);
  ASSERT_EQ(document.Find("counters")->object.size(), 1u);
  EXPECT_EQ(document.Find("counters")->object[0].first,
            "weird\"name\\with\nstuff");
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_THROW(ParseJson("{"), CheckError);
  EXPECT_THROW(ParseJson("[1, 2,]"), CheckError);
  EXPECT_THROW(ParseJson("{\"a\": 1} trailing"), CheckError);
  EXPECT_THROW(ParseJson("{'single': 1}"), CheckError);
}

TEST(JsonParserTest, ParsesScalarsAndNesting) {
  const JsonValue v = ParseJson(
      "{\"b\": true, \"n\": null, \"x\": -1.5e2, \"a\": [1, {\"k\": \"v\"}]}");
  EXPECT_TRUE(v.Find("b")->boolean);
  EXPECT_EQ(v.Find("n")->type, JsonValue::Type::kNull);
  EXPECT_DOUBLE_EQ(v.Find("x")->number, -150.0);
  ASSERT_EQ(v.Find("a")->array.size(), 2u);
  EXPECT_EQ(v.Find("a")->array[1].Find("k")->string, "v");
}

TEST(CsvExportTest, OneRowPerInstrument) {
  Registry registry;
  const std::string csv = ToCsv(FilledRegistry(registry).Snapshot());
  EXPECT_NE(csv.find("name,kind,value,count,sum,p50,p95"), std::string::npos);
  EXPECT_NE(csv.find("ota.rounds,counter,40"), std::string::npos);
  EXPECT_NE(csv.find("train.loss,gauge,0.125"), std::string::npos);
  EXPECT_NE(csv.find("solver.sweeps_per_solve,histogram,,4,14"),
            std::string::npos);
}

TEST(SummaryTableTest, ListsEveryInstrument) {
  Registry registry;
  const Table table = SummaryTable(FilledRegistry(registry).Snapshot());
  // 2 counters + 2 gauges + 1 histogram.
  EXPECT_EQ(table.row_count(), 5u);
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("solver.sweeps_per_solve"), std::string::npos);
  EXPECT_NE(rendered.find("histogram"), std::string::npos);
}

TEST(JsonExportTest, WriteJsonFileRoundTrips) {
  Registry registry;
  FilledRegistry(registry);
  const std::string path = ::testing::TempDir() + "metaai_obs_export.json";
  ASSERT_TRUE(WriteJsonFile(registry, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(SnapshotFromJson(ParseJson(buffer.str())), registry.Snapshot());
}

}  // namespace
}  // namespace metaai::obs
