#include "obs/quantiles.h"

#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <vector>

#include "common/check.h"

namespace metaai::obs {
namespace {

TEST(NearestRankPercentileTest, EmptySampleIsExplicit) {
  // An empty sample has no percentile: the Try forms say so with
  // nullopt, the non-Try forms treat it as a caller bug. (The old
  // behaviour — silently returning 0.0 — made idle tenants report a
  // p50 latency of zero seconds.)
  EXPECT_EQ(TryNearestRankPercentile({}, 0.5), std::nullopt);
  EXPECT_THROW(NearestRankPercentile({}, 0.5), CheckError);
  const std::vector<double> qs = {0.5, 0.99};
  EXPECT_EQ(TryNearestRankPercentiles({}, qs), std::nullopt);
  EXPECT_THROW(NearestRankPercentiles({}, qs), CheckError);
}

TEST(DigestTailsTest, EmptySampleYieldsZeroCountDigest) {
  const TailDigest digest = DigestTails({});
  EXPECT_EQ(digest.count, 0u);
  EXPECT_EQ(digest.p50, 0.0);
  EXPECT_EQ(digest.p99, 0.0);
  EXPECT_EQ(digest.p999, 0.0);
  // A count == 0 digest compares equal to a default one — the
  // placeholder percentiles carry no information.
  EXPECT_EQ(digest, TailDigest{});
}

TEST(NearestRankPercentileTest, TryMatchesNonTryOnNonEmptySamples) {
  const std::vector<double> values = {3.0, 1.0, 4.0, 1.5, 9.0};
  for (const double q : {0.001, 0.5, 0.99, 1.0}) {
    const std::optional<double> got = TryNearestRankPercentile(values, q);
    ASSERT_TRUE(got.has_value()) << "q=" << q;
    EXPECT_EQ(*got, NearestRankPercentile(values, q)) << "q=" << q;
  }
}

TEST(NearestRankPercentileTest, PicksObservedValuesNeverInterpolates) {
  // Nearest rank over {1..100}: rank ceil(q*100), 1-indexed.
  std::vector<double> values;
  for (int i = 100; i >= 1; --i) {
    values.push_back(static_cast<double>(i));
  }
  EXPECT_EQ(NearestRankPercentile(values, 0.50), 50.0);
  EXPECT_EQ(NearestRankPercentile(values, 0.99), 99.0);
  EXPECT_EQ(NearestRankPercentile(values, 0.999), 100.0);
  EXPECT_EQ(NearestRankPercentile(values, 1.0), 100.0);
  // An odd split still lands on a sample, never between two.
  EXPECT_EQ(NearestRankPercentile(values, 0.505), 51.0);
}

TEST(NearestRankPercentileTest, SingleSampleIsEveryPercentile) {
  const std::vector<double> one = {7.25};
  EXPECT_EQ(NearestRankPercentile(one, 0.001), 7.25);
  EXPECT_EQ(NearestRankPercentile(one, 0.5), 7.25);
  EXPECT_EQ(NearestRankPercentile(one, 1.0), 7.25);
}

TEST(NearestRankPercentileTest, RejectsOutOfRangeQuantiles) {
  const std::vector<double> values = {1.0, 2.0};
  EXPECT_THROW(NearestRankPercentile(values, 0.0), CheckError);
  EXPECT_THROW(NearestRankPercentile(values, -0.5), CheckError);
  EXPECT_THROW(NearestRankPercentile(values, 1.5), CheckError);
}

TEST(NearestRankPercentilesTest, BatchMatchesSingleCalls) {
  const std::vector<double> values = {3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0};
  const std::vector<double> qs = {0.1, 0.5, 0.9, 0.99, 1.0};
  const std::vector<double> batch = NearestRankPercentiles(values, qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(batch[i], NearestRankPercentile(values, qs[i])) << "q=" << qs[i];
  }
}

TEST(NearestRankPercentileTest, AllEqualSamplesReturnThatValue) {
  const std::vector<double> values(17, 3.75);
  EXPECT_EQ(NearestRankPercentile(values, 0.001), 3.75);
  EXPECT_EQ(NearestRankPercentile(values, 0.5), 3.75);
  EXPECT_EQ(NearestRankPercentile(values, 0.999), 3.75);
  const TailDigest digest = DigestTails(values);
  EXPECT_EQ(digest.p50, 3.75);
  EXPECT_EQ(digest.p99, 3.75);
  EXPECT_EQ(digest.p999, 3.75);
}

TEST(NearestRankPercentileTest, RejectsNanSamples) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> poisoned = {1.0, nan, 2.0};
  const std::vector<double> qs = {0.5};
  EXPECT_THROW(NearestRankPercentile(poisoned, 0.5), CheckError);
  EXPECT_THROW(NearestRankPercentiles(poisoned, qs), CheckError);
  EXPECT_THROW(DigestTails(poisoned), CheckError);
}

TEST(DigestTailsTest, SingleSampleDigestIsThatSample) {
  const std::vector<double> one = {42.0};
  const TailDigest digest = DigestTails(one);
  EXPECT_EQ(digest.count, 1u);
  EXPECT_EQ(digest.p50, 42.0);
  EXPECT_EQ(digest.p99, 42.0);
  EXPECT_EQ(digest.p999, 42.0);
}

TEST(DigestTailsTest, MatchesNearestRankAndIsMonotone) {
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    values.push_back(static_cast<double>((i * 733) % 1999));
  }
  const TailDigest digest = DigestTails(values);
  EXPECT_EQ(digest.count, values.size());
  EXPECT_EQ(digest.p50, NearestRankPercentile(values, 0.50));
  EXPECT_EQ(digest.p99, NearestRankPercentile(values, 0.99));
  EXPECT_EQ(digest.p999, NearestRankPercentile(values, 0.999));
  EXPECT_LE(digest.p50, digest.p99);
  EXPECT_LE(digest.p99, digest.p999);
}

}  // namespace
}  // namespace metaai::obs
