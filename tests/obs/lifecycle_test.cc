#include "obs/lifecycle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/check.h"

namespace metaai::obs {
namespace {

RequestTrace MakeTrace(std::uint64_t id, double base) {
  RequestTrace trace;
  trace.id = id;
  trace.tenant = static_cast<std::uint32_t>(id % 2);
  trace.cache_hit = (id % 2) == 1;
  trace.arrival_s = base;
  trace.slo_s = 0.01;
  trace.stage(RequestStage::kAdmission) = base * 0.1;
  trace.stage(RequestStage::kQueueWait) = 1e-3;
  trace.stage(RequestStage::kBatching) = 2e-4;
  trace.stage(RequestStage::kAirtime) = 2.56e-3;
  trace.stage(RequestStage::kDemod) = 1.3e-5;
  trace.energy_j = 4.1e-3;
  return trace;
}

RequestLog MakeLog() {
  RequestLog log;
  log.tenants = {"alpha", "beta"};
  for (std::uint64_t id = 0; id < 5; ++id) {
    log.traces.push_back(MakeTrace(id, static_cast<double>(id) * 1e-4));
  }
  return log;
}

TEST(RequestStageTest, NamesFollowPipelineOrder) {
  EXPECT_EQ(RequestStageName(RequestStage::kAdmission), "admission");
  EXPECT_EQ(RequestStageName(RequestStage::kQueueWait), "queue_wait");
  EXPECT_EQ(RequestStageName(RequestStage::kBatching), "batching");
  EXPECT_EQ(RequestStageName(RequestStage::kSolve), "solve");
  EXPECT_EQ(RequestStageName(RequestStage::kAirtime), "airtime");
  EXPECT_EQ(RequestStageName(RequestStage::kDemod), "demod");
}

TEST(RequestTraceTest, LatencyIsExactlyTheStageSum) {
  const RequestTrace trace = MakeTrace(3, 2e-4);
  double sum = 0.0;
  for (const double stage : trace.stage_s) {
    sum += stage;
  }
  EXPECT_EQ(trace.Latency(), sum);
}

TEST(RequestTraceTest, SloVerdictUsesTheTarget) {
  RequestTrace trace = MakeTrace(0, 0.0);
  trace.slo_s = 1.0;
  EXPECT_FALSE(trace.SloViolated());
  trace.slo_s = 1e-6;
  EXPECT_TRUE(trace.SloViolated());
  // No target: never violated, whatever the latency.
  trace.slo_s = 0.0;
  EXPECT_FALSE(trace.SloViolated());
}

TEST(DigestStagesTest, DigestsEachStageAndEndToEnd) {
  const RequestLog log = MakeLog();
  const StageTails tails = DigestStages(log.traces);
  // Every trace shares the same queue_wait, so all tails collapse to it.
  const auto queue =
      tails.stage[static_cast<std::size_t>(RequestStage::kQueueWait)];
  EXPECT_EQ(queue.p50, 1e-3);
  EXPECT_EQ(queue.p999, 1e-3);
  // End-to-end p999 is the worst trace's stage sum.
  double worst = 0.0;
  for (const RequestTrace& trace : log.traces) {
    worst = std::max(worst, trace.Latency());
  }
  EXPECT_EQ(tails.latency.p999, worst);
  EXPECT_LE(tails.latency.p50, tails.latency.p999);
}

TEST(RequestsJsonlTest, RoundTripsExactly) {
  const RequestLog log = MakeLog();
  const std::string text = ToRequestsJsonl(log);
  const RequestLog parsed = ParseRequestsJsonl(text);
  EXPECT_EQ(parsed, log);
  // Serialization is canonical: re-serializing parses back to the same
  // bytes.
  EXPECT_EQ(ToRequestsJsonl(parsed), text);
}

TEST(RequestsJsonlTest, IdenticalLogsSerializeToIdenticalBytes) {
  EXPECT_EQ(ToRequestsJsonl(MakeLog()), ToRequestsJsonl(MakeLog()));
}

TEST(RequestsJsonlTest, RejectsForeignSchemasAndMalformedLines) {
  EXPECT_THROW(ParseRequestsJsonl(""), CheckError);
  EXPECT_THROW(ParseRequestsJsonl("{\"schema\":\"metaai.obs.v1\"}\n"),
               CheckError);
  std::string text = ToRequestsJsonl(MakeLog());
  text += "this is not json\n";
  EXPECT_THROW(ParseRequestsJsonl(text), CheckError);
}

}  // namespace
}  // namespace metaai::obs
