#include "obs/alerts.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/check.h"

namespace metaai::obs::health {
namespace {

AlertRule Ceiling(const std::string& name, double bound,
                  double hysteresis = 0.0, double cooldown_s = 0.0) {
  return {.name = name,
          .signal = "x",
          .severity = AlertSeverity::kWarning,
          .cooldown_s = cooldown_s,
          .threshold = ThresholdRule{.bound = bound,
                                     .fire_above = true,
                                     .hysteresis = hysteresis}};
}

TEST(AlertEngineTest, RequiresExactlyOneRuleVariant) {
  AlertEngine engine;
  EXPECT_THROW(engine.AddRule({.name = "none", .signal = "x"}), CheckError);
  EXPECT_THROW(
      engine.AddRule({.name = "both",
                      .signal = "x",
                      .threshold = ThresholdRule{.bound = 1.0},
                      .rate = RateOfChangeRule{.max_step = 1.0}}),
      CheckError);
  engine.AddRule(Ceiling("ok", 1.0));
  EXPECT_EQ(engine.num_rules(), 1u);
}

TEST(AlertEngineTest, ThresholdFiresOnceUntilHysteresisRearm) {
  AlertEngine engine(3);
  engine.AddRule(Ceiling("x.ceiling", 10.0, /*hysteresis=*/0.1));
  std::vector<Alert> alerts;
  engine.Observe("x", 0.0, 5.0, alerts);
  engine.Observe("x", 1.0, 11.0, alerts);  // fires
  engine.Observe("x", 2.0, 12.0, alerts);  // disarmed: no alert
  engine.Observe("x", 3.0, 9.5, alerts);   // above 10*(1-0.1)=9: stays disarmed
  engine.Observe("x", 4.0, 11.0, alerts);  // still disarmed
  engine.Observe("x", 5.0, 8.0, alerts);   // below re-arm band: re-arms
  engine.Observe("x", 6.0, 11.0, alerts);  // fires again
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].seq, 0u);
  EXPECT_EQ(alerts[0].t_s, 1.0);
  EXPECT_EQ(alerts[0].kind, AlertKind::kThreshold);
  EXPECT_EQ(alerts[0].rule, "x.ceiling");
  EXPECT_EQ(alerts[0].value, 11.0);
  EXPECT_EQ(alerts[0].threshold, 10.0);
  EXPECT_EQ(alerts[0].tenant, 3);
  EXPECT_EQ(alerts[1].seq, 1u);
  EXPECT_EQ(alerts[1].t_s, 6.0);
  EXPECT_EQ(engine.alerts_emitted(), 2u);
}

TEST(AlertEngineTest, CooldownDropsAlertsInsideWindow) {
  AlertEngine engine;
  // No hysteresis: the rule re-arms as soon as the value dips below the
  // bound, so only the cooldown limits the alert rate.
  engine.AddRule(Ceiling("x.ceiling", 1.0, /*hysteresis=*/0.0,
                         /*cooldown_s=*/1.0));
  std::vector<Alert> alerts;
  engine.Observe("x", 0.0, 2.0, alerts);  // fires
  engine.Observe("x", 0.1, 0.5, alerts);  // re-arms
  engine.Observe("x", 0.2, 2.0, alerts);  // inside cooldown: dropped
  engine.Observe("x", 0.3, 0.5, alerts);
  engine.Observe("x", 1.5, 2.0, alerts);  // past cooldown: fires
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].t_s, 0.0);
  EXPECT_EQ(alerts[1].t_s, 1.5);
}

TEST(AlertEngineTest, RateOfChangeFiresOnLargeStep) {
  AlertEngine engine;
  engine.AddRule({.name = "x.rate",
                  .signal = "x",
                  .severity = AlertSeverity::kInfo,
                  .rate = RateOfChangeRule{.max_step = 1.0}});
  std::vector<Alert> alerts;
  engine.Observe("x", 0.0, 0.0, alerts);  // no previous: never fires
  engine.Observe("x", 1.0, 0.5, alerts);  // |0.5| <= 1
  engine.Observe("x", 2.0, 3.0, alerts);  // |2.5| > 1: fires
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, AlertKind::kRateOfChange);
  EXPECT_EQ(alerts[0].severity, AlertSeverity::kInfo);
  EXPECT_EQ(alerts[0].threshold, 1.0);
}

TEST(AlertEngineTest, ChangePointRuleEmitsDriftDetected) {
  AlertEngine engine(7);
  engine.AddRule({.name = "x.cusum",
                  .signal = "x",
                  .severity = AlertSeverity::kCritical,
                  .change = ChangePointRule{
                      .detector = ChangeDetector::kCusum,
                      .cusum = {.warmup = 8, .slack = 0.5, .threshold = 4.0}}});
  std::vector<Alert> alerts;
  double t = 0.0;
  for (int i = 0; i < 8; ++i) {
    engine.Observe("x", t, i % 2 == 0 ? 1.0 : -1.0, alerts);
    t += 1.0;
  }
  EXPECT_TRUE(alerts.empty());
  for (int i = 0; i < 10 && alerts.empty(); ++i) {
    engine.Observe("x", t, 8.0, alerts);
    t += 1.0;
  }
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, AlertKind::kDriftDetected);
  EXPECT_EQ(alerts[0].severity, AlertSeverity::kCritical);
  EXPECT_EQ(alerts[0].tenant, 7);
}

TEST(AlertEngineTest, SharedVectorYieldsGloballyOrderedSeq) {
  // Two tenant engines feeding one output vector, as serve::Runtime
  // does: seq numbers come from the shared vector, not per engine.
  AlertEngine a(0);
  AlertEngine b(1);
  a.AddRule(Ceiling("x.ceiling", 1.0));
  b.AddRule(Ceiling("x.ceiling", 1.0));
  std::vector<Alert> alerts;
  a.Observe("x", 0.0, 2.0, alerts);
  b.Observe("x", 0.5, 2.0, alerts);
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].seq, 0u);
  EXPECT_EQ(alerts[0].tenant, 0);
  EXPECT_EQ(alerts[1].seq, 1u);
  EXPECT_EQ(alerts[1].tenant, 1);
}

TEST(AlertEngineTest, IdenticalStreamsEmitIdenticalAlerts) {
  auto run = [] {
    AlertEngine engine(2);
    for (AlertRule& rule : DefaultLinkHealthRules()) {
      engine.AddRule(std::move(rule));
    }
    std::vector<Alert> alerts;
    double t = 0.0;
    for (int i = 0; i < 64; ++i) {
      engine.Observe(kSignalAccuracyProxy, t, i < 48 ? 0.5 : 0.001, alerts);
      engine.Observe(kSignalEvm, t, i < 48 ? 0.1 : 0.9, alerts);
      t += 0.02;
    }
    return alerts;
  };
  const std::vector<Alert> first = run();
  const std::vector<Alert> second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(ToAlertsJsonl(first), ToAlertsJsonl(second));
}

TEST(AlertEngineTest, RejectsNonFiniteSamples) {
  AlertEngine engine;
  std::vector<Alert> alerts;
  EXPECT_THROW(engine.Observe("x", 0.0,
                              std::numeric_limits<double>::quiet_NaN(),
                              alerts),
               CheckError);
}

TEST(AlertsJsonlTest, RoundTripsThroughJsonl) {
  std::vector<Alert> alerts;
  alerts.push_back({.seq = 0,
                    .t_s = 0.0125,
                    .kind = AlertKind::kThreshold,
                    .severity = AlertSeverity::kWarning,
                    .rule = "evm.ceiling",
                    .signal = "evm_rms",
                    .value = 0.62,
                    .threshold = 0.5,
                    .tenant = 0});
  alerts.push_back({.seq = 1,
                    .t_s = 0.5,
                    .kind = AlertKind::kDriftDetected,
                    .severity = AlertSeverity::kCritical,
                    .rule = "accuracy_proxy.cusum",
                    .signal = "accuracy_proxy",
                    .value = 0.001,
                    .threshold = 12.0,
                    .tenant = -1});
  const std::string jsonl = ToAlertsJsonl(alerts);
  EXPECT_EQ(AlertsFromJsonl(jsonl), alerts);
  // First line is the schema header with the record count.
  EXPECT_EQ(jsonl.substr(0, jsonl.find('\n')),
            "{\"schema\":\"metaai.alerts.v1\",\"count\":2}");
}

TEST(AlertsJsonlTest, EmptyStreamRoundTrips) {
  const std::string jsonl = ToAlertsJsonl({});
  EXPECT_EQ(jsonl, "{\"schema\":\"metaai.alerts.v1\",\"count\":0}\n");
  EXPECT_TRUE(AlertsFromJsonl(jsonl).empty());
}

TEST(AlertsJsonlTest, RejectsBadSchemaAndCountMismatch) {
  EXPECT_THROW(AlertsFromJsonl("{\"schema\":\"metaai.probes.v1\"}\n"),
               CheckError);
  EXPECT_THROW(AlertsFromJsonl("{\"schema\":\"metaai.alerts.v1\",\"count\":3}\n"),
               CheckError);
}

TEST(DefaultLinkHealthRulesTest, CoverTheServingSignals) {
  AlertEngine engine;
  std::size_t drift_rules = 0;
  std::vector<std::string> signals;
  for (AlertRule& rule : DefaultLinkHealthRules()) {
    if (rule.change.has_value()) ++drift_rules;
    signals.push_back(rule.signal);
    engine.AddRule(std::move(rule));
  }
  EXPECT_GE(engine.num_rules(), 5u);
  EXPECT_EQ(drift_rules, 2u);
  auto has = [&](std::string_view signal) {
    for (const std::string& s : signals) {
      if (s == signal) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(kSignalEvm));
  EXPECT_TRUE(has(kSignalSnrDb));
  EXPECT_TRUE(has(kSignalAccuracyProxy));
  EXPECT_TRUE(has(kSignalSyncOffsetUs));
  EXPECT_TRUE(has(kSignalSloViolation));
}

}  // namespace
}  // namespace metaai::obs::health
