#include "obs/health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"
#include "obs/probe.h"

namespace metaai::obs::health {
namespace {

TEST(EwmaEstimatorTest, FirstSampleInitializesMean) {
  EwmaEstimator ewma;
  ewma.Observe(3.0);
  EXPECT_EQ(ewma.count(), 1u);
  EXPECT_EQ(ewma.mean(), 3.0);
  EXPECT_EQ(ewma.variance(), 0.0);
}

TEST(EwmaEstimatorTest, ConstantStreamHasZeroVariance) {
  EwmaEstimator ewma({.alpha = 0.2});
  for (int i = 0; i < 50; ++i) ewma.Observe(1.25);
  EXPECT_EQ(ewma.mean(), 1.25);
  EXPECT_EQ(ewma.variance(), 0.0);
}

TEST(EwmaEstimatorTest, MeanTracksLevelShift) {
  EwmaEstimator ewma({.alpha = 0.3});
  for (int i = 0; i < 20; ++i) ewma.Observe(0.0);
  for (int i = 0; i < 60; ++i) ewma.Observe(10.0);
  EXPECT_GT(ewma.mean(), 9.9);
  EXPECT_LT(ewma.mean(), 10.0 + 1e-12);
}

TEST(EwmaEstimatorTest, RejectsNonFiniteAndBadAlpha) {
  EwmaEstimator ewma;
  EXPECT_THROW(ewma.Observe(std::numeric_limits<double>::quiet_NaN()),
               CheckError);
  EXPECT_THROW(ewma.Observe(std::numeric_limits<double>::infinity()),
               CheckError);
  EXPECT_THROW(EwmaEstimator({.alpha = 0.0}), CheckError);
  EXPECT_THROW(EwmaEstimator({.alpha = 1.5}), CheckError);
}

/// Noise-free alternating warmup stream: nonzero stddev, zero-mean, so
/// the detectors have a meaningful normalization scale.
void WarmupAlternating(CusumDetector& detector, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_FALSE(detector.Observe(i % 2 == 0 ? 1.0 : -1.0));
  }
}

TEST(CusumDetectorTest, StableStreamNeverFires) {
  CusumDetector detector({.warmup = 16, .slack = 0.5, .threshold = 8.0});
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(detector.Observe(i % 2 == 0 ? 1.0 : -1.0));
  }
  EXPECT_TRUE(detector.warmed_up());
  EXPECT_NEAR(detector.reference_mean(), 0.0, 1e-12);
}

TEST(CusumDetectorTest, DetectsLevelShiftAfterWarmup) {
  CusumDetector detector({.warmup = 16, .slack = 0.5, .threshold = 8.0});
  WarmupAlternating(detector, 16);
  // Jump far above the reference: each sample adds ~(5 - slack) in
  // stddev units, so the positive sum crosses 8 within a few samples.
  int fired_at = -1;
  for (int i = 0; i < 10; ++i) {
    if (detector.Observe(5.0)) {
      fired_at = i;
      break;
    }
  }
  EXPECT_GE(fired_at, 0);
  EXPECT_LE(fired_at, 3);
  // Detection resets the sums but keeps the reference.
  EXPECT_EQ(detector.positive(), 0.0);
  EXPECT_EQ(detector.negative(), 0.0);
  EXPECT_NEAR(detector.reference_mean(), 0.0, 1e-12);
}

TEST(CusumDetectorTest, DetectsDownwardShiftToo) {
  CusumDetector detector({.warmup = 16, .slack = 0.5, .threshold = 8.0});
  WarmupAlternating(detector, 16);
  bool fired = false;
  for (int i = 0; i < 10 && !fired; ++i) fired = detector.Observe(-5.0);
  EXPECT_TRUE(fired);
}

TEST(CusumDetectorTest, ConstantWarmupFallsBackToAbsoluteUnits) {
  // Zero warmup stddev would divide by ~0; the detector falls back to
  // scale 1.0 so a unit shift still registers as a unit deviation.
  CusumDetector detector({.warmup = 8, .slack = 0.5, .threshold = 4.0});
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(detector.Observe(2.0));
  bool fired = false;
  for (int i = 0; i < 5 && !fired; ++i) fired = detector.Observe(4.0);
  EXPECT_TRUE(fired);
}

TEST(PageHinkleyDetectorTest, StableStreamNeverFires) {
  PageHinkleyDetector detector({.warmup = 16, .delta = 0.05, .lambda = 10.0});
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(detector.Observe(i % 2 == 0 ? 1.0 : -1.0));
  }
  EXPECT_TRUE(detector.warmed_up());
}

TEST(PageHinkleyDetectorTest, DetectsDriftAfterWarmup) {
  PageHinkleyDetector detector({.warmup = 16, .delta = 0.05, .lambda = 10.0});
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(detector.Observe(i % 2 == 0 ? 1.0 : -1.0));
  }
  bool fired = false;
  int samples = 0;
  for (int i = 0; i < 200 && !fired; ++i) {
    fired = detector.Observe(6.0);
    ++samples;
  }
  EXPECT_TRUE(fired) << "drift not detected in " << samples << " samples";
}

TEST(PageHinkleyDetectorTest, DetectsDownwardDriftToo) {
  PageHinkleyDetector detector({.warmup = 16, .delta = 0.05, .lambda = 10.0});
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(detector.Observe(i % 2 == 0 ? 1.0 : -1.0));
  }
  bool fired = false;
  for (int i = 0; i < 200 && !fired; ++i) fired = detector.Observe(-6.0);
  EXPECT_TRUE(fired);
}

TEST(PageHinkleyDetectorTest, RejectsNonFiniteSamples) {
  PageHinkleyDetector detector;
  EXPECT_THROW(detector.Observe(std::numeric_limits<double>::infinity()),
               CheckError);
}

TEST(WindowedQuantileTest, WindowEvictsOldestSamples) {
  WindowedQuantile window(4);
  for (double v : {1.0, 2.0, 3.0, 4.0, 100.0, 101.0, 102.0, 103.0}) {
    window.Observe(v);
  }
  EXPECT_EQ(window.size(), 4u);
  // Only the last four samples remain.
  EXPECT_EQ(window.Quantile(0.5), 101.0);
  EXPECT_EQ(window.Tails().p99, 103.0);
}

TEST(WindowedQuantileTest, EmptyWindowAnswersZero) {
  const WindowedQuantile window(8);
  EXPECT_EQ(window.Quantile(0.5), 0.0);
  EXPECT_EQ(window.Tails().p50, 0.0);
}

TEST(HealthMonitorTest, TracksSignalsInFirstObservationOrder) {
  HealthMonitor monitor;
  monitor.Observe("b", 2.0);
  monitor.Observe("a", 1.0);
  monitor.Observe("b", 4.0);
  ASSERT_EQ(monitor.Signals().size(), 2u);
  EXPECT_EQ(monitor.Signals()[0], "b");
  EXPECT_EQ(monitor.Signals()[1], "a");
  EXPECT_TRUE(monitor.Has("a"));
  EXPECT_FALSE(monitor.Has("c"));
  const SignalStats stats = monitor.Stats("b");
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.last, 4.0);
  EXPECT_EQ(stats.p50, 2.0);
  EXPECT_EQ(monitor.Stats("missing"), SignalStats{});
}

TEST(HealthSignalsFromProbeTest, MapsEvmAndSoftMargin) {
  const ProbeRecord record{.kind = ProbeKind::kEvm,
                           .site = "link.transmit",
                           .values = {{"evm_rms", 0.12},
                                      {"symbols", 64.0},
                                      {"soft_margin", 0.4}}};
  const auto signals = HealthSignalsFromProbe(record);
  ASSERT_EQ(signals.size(), 2u);
  EXPECT_EQ(signals[0].first, kSignalEvm);
  EXPECT_EQ(signals[0].second, 0.12);
  EXPECT_EQ(signals[1].first, kSignalAccuracyProxy);
  EXPECT_EQ(signals[1].second, 0.4);
}

TEST(HealthSignalsFromProbeTest, SnrUsesSeriesMeanWithNominalFallback) {
  const ProbeRecord with_series{.kind = ProbeKind::kSubcarrierSnr,
                                .site = "link.snr",
                                .values = {{"nominal_snr_db", 20.0}},
                                .series = {10.0, 20.0, 30.0}};
  auto signals = HealthSignalsFromProbe(with_series);
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0].first, kSignalSnrDb);
  EXPECT_EQ(signals[0].second, 20.0);

  const ProbeRecord nominal_only{.kind = ProbeKind::kSubcarrierSnr,
                                 .site = "link.snr",
                                 .values = {{"nominal_snr_db", 17.5}}};
  signals = HealthSignalsFromProbe(nominal_only);
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0].second, 17.5);
}

TEST(HealthSignalsFromProbeTest, SloViolationUsesLatencyTargetRatio) {
  const ProbeRecord record{.kind = ProbeKind::kSloViolation,
                           .site = "serve.slo",
                           .values = {{"latency_s", 0.004},
                                      {"slo_s", 0.002}}};
  const auto signals = HealthSignalsFromProbe(record);
  ASSERT_EQ(signals.size(), 1u);
  EXPECT_EQ(signals[0].first, kSignalSloViolation);
  EXPECT_NEAR(signals[0].second, 2.0, 1e-12);
}

TEST(HealthSignalsFromProbeTest, UnrelatedKindsMapToNothing) {
  const ProbeRecord record{.kind = ProbeKind::kScalar,
                           .site = "something.else",
                           .values = {{"x", 1.0}}};
  EXPECT_TRUE(HealthSignalsFromProbe(record).empty());
}

TEST(ObserveProbeTest, FeedsMonitorAndReportsCount) {
  HealthMonitor monitor;
  const ProbeRecord record{.kind = ProbeKind::kSyncOffset,
                           .site = "sync.sample",
                           .values = {{"offset_us", 1.5}}};
  EXPECT_EQ(ObserveProbe(monitor, record), 1u);
  EXPECT_TRUE(monitor.Has(kSignalSyncOffsetUs));
  EXPECT_EQ(monitor.Stats(kSignalSyncOffsetUs).last, 1.5);
}

}  // namespace
}  // namespace metaai::obs::health
