#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/check.h"
#include "obs/export.h"
#include "obs/tracer.h"

namespace metaai::obs {
namespace {

// A small nested trace driven by ManualClock:
//   ota.evaluate [0, 1000ns) depth 0, args {samples: 2}
//     ota.round  [100, 400ns) depth 1, args {round: 0}
//     ota.round  [500, 900ns) depth 1, args {round: 1}
void RecordNestedTrace(Tracer& tracer, ManualClock& clock) {
  const std::size_t outer = tracer.BeginSpan("ota.evaluate");
  tracer.AddSpanArg(outer, "samples", 2.0);
  clock.AdvanceNs(100);
  for (int round = 0; round < 2; ++round) {
    const std::size_t inner = tracer.BeginSpan("ota.round");
    tracer.AddSpanArg(inner, "round", static_cast<double>(round));
    clock.AdvanceNs(round == 0 ? 300 : 400);
    tracer.EndSpan(inner);
    clock.AdvanceNs(100);
  }
  clock.SetNs(1000);
  tracer.EndSpan(outer);
}

TEST(ChromeTraceTest, ManualClockTraceMatchesGoldenBytes) {
  ManualClock clock;
  Tracer tracer(&clock);
  RecordNestedTrace(tracer, clock);
  // Spans appear in begin order; timestamps/durations are microseconds.
  const std::string golden =
      "[\n"
      " {\"name\": \"ota.evaluate\", \"ph\": \"X\", \"ts\": 0, \"dur\": 1,"
      " \"pid\": 0, \"tid\": 0, \"args\": {\"depth\": 0, \"samples\": 2}},\n"
      " {\"name\": \"ota.round\", \"ph\": \"X\","
      " \"ts\": 0.10000000000000001,"
      " \"dur\": 0.29999999999999999, \"pid\": 0, \"tid\": 0,"
      " \"args\": {\"depth\": 1, \"round\": 0}},\n"
      " {\"name\": \"ota.round\", \"ph\": \"X\", \"ts\": 0.5,"
      " \"dur\": 0.40000000000000002, \"pid\": 0, \"tid\": 0,"
      " \"args\": {\"depth\": 1, \"round\": 1}}\n"
      "]\n";
  EXPECT_EQ(ToChromeTrace(tracer), golden);
}

TEST(ChromeTraceTest, IdenticalRunsSerializeIdentically) {
  auto render = [] {
    ManualClock clock;
    Tracer tracer(&clock);
    RecordNestedTrace(tracer, clock);
    return ToChromeTrace(tracer);
  };
  EXPECT_EQ(render(), render());
}

TEST(ChromeTraceTest, OutputIsAValidJsonArrayOfEvents) {
  ManualClock clock;
  Tracer tracer(&clock);
  RecordNestedTrace(tracer, clock);
  const JsonValue document = ParseJson(ToChromeTrace(tracer));
  ASSERT_EQ(document.type, JsonValue::Type::kArray);
  ASSERT_EQ(document.array.size(), 3u);
  for (const JsonValue& event : document.array) {
    const std::string& ph = event.Find("ph")->string;
    EXPECT_TRUE(ph == "X" || ph == "B");
    EXPECT_NE(event.Find("name"), nullptr);
    EXPECT_NE(event.Find("ts"), nullptr);
    EXPECT_NE(event.Find("args")->Find("depth"), nullptr);
  }
  EXPECT_DOUBLE_EQ(
      document.array[0].Find("args")->Find("samples")->number, 2.0);
}

TEST(ChromeTraceTest, OpenSpansBecomeBeginEvents) {
  ManualClock clock;
  Tracer tracer(&clock);
  clock.SetNs(2000);
  tracer.BeginSpan("still.running");  // never ended
  const JsonValue document = ParseJson(ToChromeTrace(tracer));
  ASSERT_EQ(document.array.size(), 1u);
  const JsonValue& event = document.array[0];
  EXPECT_EQ(event.Find("ph")->string, "B");
  EXPECT_DOUBLE_EQ(event.Find("ts")->number, 2.0);
  EXPECT_EQ(event.Find("dur"), nullptr);
}

TEST(ChromeTraceTest, EmptyTracerIsAnEmptyArray) {
  Tracer tracer;
  EXPECT_EQ(ToChromeTrace(tracer), "[]\n");
}

TEST(ChromeTraceTest, WriteChromeTraceFileRoundTrips) {
  ManualClock clock;
  Tracer tracer(&clock);
  RecordNestedTrace(tracer, clock);
  const std::string path = ::testing::TempDir() + "metaai_trace.json";
  ASSERT_TRUE(WriteChromeTraceFile(tracer, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), ToChromeTrace(tracer));
}

TEST(TracerThreadContractTest, WorkerSpansGetTheirOwnBufferAndTid) {
  ManualClock clock;
  Tracer tracer(&clock);
  const std::size_t span = tracer.BeginSpan("owner.work");
  tracer.EndSpan(span);
  std::thread worker([&tracer] {
    const std::size_t mine = tracer.BeginSpan("worker.work");
    tracer.EndSpan(mine);
    // Index 0 is valid in *this thread's* buffer, independent of the
    // owner having recorded its own span 0.
    tracer.AddSpanArg(mine, "k", 1.0);
  });
  worker.join();
  const std::vector<SpanRecord> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Merged view groups by thread in registration order: the first
  // recording thread is tid 0, the worker tid 1.
  EXPECT_EQ(spans[0].name, "owner.work");
  EXPECT_EQ(spans[0].tid, 0);
  EXPECT_EQ(spans[1].name, "worker.work");
  EXPECT_EQ(spans[1].tid, 1);
  EXPECT_EQ(spans[1].depth, 0);  // depth is tracked per thread
  ASSERT_EQ(spans[1].args.size(), 1u);
  // Clear drops registrations too: the next thread to record is tid 0.
  tracer.Clear();
  std::thread adopter([&tracer] {
    const std::size_t adopted = tracer.BeginSpan("adopted");
    tracer.EndSpan(adopted);
  });
  adopter.join();
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].tid, 0);
}

TEST(TracerThreadContractTest, CrossThreadSpansExportAsValidChromeTrace) {
  ManualClock clock;
  Tracer tracer(&clock);
  const std::size_t outer = tracer.BeginSpan("main.outer");
  std::thread worker([&tracer, &clock] {
    clock.AdvanceNs(100);
    const std::size_t inner = tracer.BeginSpan("worker.inner");
    clock.AdvanceNs(50);
    tracer.EndSpan(inner);
  });
  worker.join();
  clock.SetNs(500);
  tracer.EndSpan(outer);
  const JsonValue document = ParseJson(ToChromeTrace(tracer));
  ASSERT_EQ(document.type, JsonValue::Type::kArray);
  ASSERT_EQ(document.array.size(), 2u);
  EXPECT_DOUBLE_EQ(document.array[0].Find("tid")->number, 0.0);
  EXPECT_DOUBLE_EQ(document.array[1].Find("tid")->number, 1.0);
}

}  // namespace
}  // namespace metaai::obs
