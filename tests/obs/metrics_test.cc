#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "obs/obs.h"

namespace metaai::obs {
namespace {

TEST(CounterTest, AddsAndReads) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, KeepsLastValue) {
  Gauge gauge;
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  gauge.Set(1.5);
  gauge.Set(-2.25);
  EXPECT_DOUBLE_EQ(gauge.value(), -2.25);
}

TEST(HistogramSpecTest, LinearEdges) {
  const HistogramSpec spec = HistogramSpec::Linear(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(spec.lower, 0.0);
  ASSERT_EQ(spec.upper_edges.size(), 5u);
  EXPECT_DOUBLE_EQ(spec.upper_edges.front(), 2.0);
  EXPECT_DOUBLE_EQ(spec.upper_edges.back(), 10.0);
}

TEST(HistogramSpecTest, ExponentialEdges) {
  const HistogramSpec spec = HistogramSpec::Exponential(1.0, 2.0, 4);
  const std::vector<double> expected{1.0, 2.0, 4.0, 8.0};
  EXPECT_EQ(spec.upper_edges, expected);
}

TEST(HistogramTest, BucketMath) {
  Histogram histogram(HistogramSpec::Linear(0.0, 10.0, 10));
  // Bucket i covers (i, i+1]; clamping on both sides into edge buckets.
  histogram.Observe(0.5);    // bucket 0
  histogram.Observe(1.0);    // bucket 0 (inclusive upper edge)
  histogram.Observe(1.001);  // bucket 1
  histogram.Observe(9.999);  // bucket 9
  histogram.Observe(-3.0);   // clamps into bucket 0
  histogram.Observe(25.0);   // overflow bucket
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.bucket_counts.size(), 11u);  // 10 + overflow
  EXPECT_EQ(snapshot.bucket_counts[0], 3u);
  EXPECT_EQ(snapshot.bucket_counts[1], 1u);
  EXPECT_EQ(snapshot.bucket_counts[9], 1u);
  EXPECT_EQ(snapshot.bucket_counts[10], 1u);
  EXPECT_EQ(snapshot.count, 6u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 0.5 + 1.0 + 1.001 + 9.999 - 3.0 + 25.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), snapshot.sum / 6.0);
}

TEST(HistogramTest, PercentileMatchesExactStatsWithinBucketWidth) {
  // Cross-check the histogram percentile estimate against the exact
  // sorted-sample percentile from common/stats: with 1000 fine buckets the
  // two must agree to one bucket width.
  Rng rng(7);
  Histogram histogram(HistogramSpec::Linear(0.0, 1.0, 1000));
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.Uniform(0.0, 1.0);
    values.push_back(v);
    histogram.Observe(v);
  }
  constexpr double kBucketWidth = 1.0 / 1000.0;
  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    // obs::Percentile (histogram) vs metaai::Percentile (exact, sorted).
    EXPECT_NEAR(histogram.Percentile(p), metaai::Percentile(values, p),
                2.0 * kBucketWidth)
        << "p" << p;
  }
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram histogram(HistogramSpec::Linear(0.0, 4.0, 4));
  EXPECT_DOUBLE_EQ(histogram.Percentile(50.0), 0.0);  // empty
  histogram.Observe(2.5);
  EXPECT_DOUBLE_EQ(histogram.Percentile(100.0), 3.0);  // top of its bucket
  histogram.Observe(100.0);                            // overflow
  // The overflow bucket reads as its lower edge (the last finite edge).
  EXPECT_DOUBLE_EQ(histogram.Percentile(100.0), 4.0);
}

TEST(RegistryTest, InstrumentsAreSingletonsByName) {
  Registry registry;
  Counter& a = registry.GetCounter("x.count");
  Counter& b = registry.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
  Histogram& h1 =
      registry.GetHistogram("x.h", HistogramSpec::Linear(0.0, 1.0, 2));
  // Spec of later calls is ignored; same instrument comes back.
  Histogram& h2 =
      registry.GetHistogram("x.h", HistogramSpec::Linear(0.0, 9.0, 3));
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.spec().upper_edges.size(), 2u);
}

TEST(RegistryTest, SnapshotIsSortedByName) {
  Registry registry;
  registry.GetCounter("b.second").Add(2);
  registry.GetCounter("a.first").Add(1);
  registry.GetGauge("z.gauge").Set(9.0);
  registry.GetHistogram("m.hist", HistogramSpec::Linear(0.0, 1.0, 4))
      .Observe(0.5);
  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.first");
  EXPECT_EQ(snapshot.counters[1].first, "b.second");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.size(), 4u);
}

TEST(RegistryTest, SnapshotEqualityDetectsDrift) {
  Registry a;
  Registry b;
  a.GetCounter("n").Add(5);
  b.GetCounter("n").Add(5);
  EXPECT_EQ(a.Snapshot(), b.Snapshot());
  b.GetCounter("n").Add(1);
  EXPECT_NE(a.Snapshot(), b.Snapshot());
}

TEST(ObsHelpersTest, NoOpWithoutInstalledRegistry) {
  // No registry installed: helpers must not crash and must record nothing.
  Count("nowhere.count", 3);
  SetGauge("nowhere.gauge", 1.0);
  Observe("nowhere.hist", 0.5, HistogramSpec::Linear(0.0, 1.0, 2));
}

#if METAAI_OBS_ENABLED
TEST(ObsHelpersTest, ScopedRegistryRoutesAndRestores) {
  Registry registry;
  {
    const ScopedRegistry scoped(&registry);
    Count("scoped.count", 2);
    SetGauge("scoped.gauge", 4.0);
    Observe("scoped.hist", 0.5, HistogramSpec::Linear(0.0, 1.0, 2));
  }
  Count("scoped.count", 99);  // after restore: dropped
  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].second, 2u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 4.0);
  EXPECT_EQ(snapshot.histograms[0].second.count, 1u);
}
#endif  // METAAI_OBS_ENABLED

}  // namespace
}  // namespace metaai::obs
