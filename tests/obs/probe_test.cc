#include "obs/probe.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "obs/export.h"
#include "obs/obs.h"

namespace metaai::obs {
namespace {

ProbeRecord MakeRecord(int i) {
  return {.kind = ProbeKind::kScalar,
          .site = "test.site",
          .values = {{"i", static_cast<double>(i)}}};
}

TEST(ProbeSinkTest, StampsSequenceNumbersInArrivalOrder) {
  ProbeSink sink(8);
  for (int i = 0; i < 3; ++i) sink.Add(MakeRecord(i));
  const auto records = sink.Snapshot();
  ASSERT_EQ(records.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(records[i].seq, i);
    EXPECT_DOUBLE_EQ(records[i].values[0].second, static_cast<double>(i));
  }
  EXPECT_EQ(sink.total(), 3u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(ProbeSinkTest, RingEvictsOldestAndCountsDrops) {
  ProbeSink sink(4);
  for (int i = 0; i < 10; ++i) sink.Add(MakeRecord(i));
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.total(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto records = sink.Snapshot();
  ASSERT_EQ(records.size(), 4u);
  // The survivors are the newest four, oldest first: seq 6..9.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].seq, 6u + i);
  }
}

TEST(ProbeSinkTest, ClearKeepsSequenceMonotonic) {
  ProbeSink sink(4);
  sink.Add(MakeRecord(0));
  sink.Add(MakeRecord(1));
  sink.Clear();
  EXPECT_EQ(sink.size(), 0u);
  sink.Add(MakeRecord(2));
  // Sequence numbers are never reused, so post-Clear records still show
  // their true global arrival index.
  EXPECT_EQ(sink.Snapshot().front().seq, 2u);
}

TEST(ProbeSinkTest, RejectsZeroCapacity) {
  EXPECT_THROW(ProbeSink(0), CheckError);
}

TEST(ProbeKindTest, EveryKindHasAStableName) {
  EXPECT_EQ(ProbeKindName(ProbeKind::kScalar), "scalar");
  EXPECT_EQ(ProbeKindName(ProbeKind::kEvm), "evm");
  EXPECT_EQ(ProbeKindName(ProbeKind::kSubcarrierSnr), "subcarrier_snr");
  EXPECT_EQ(ProbeKindName(ProbeKind::kSyncOffset), "sync_offset");
  EXPECT_EQ(ProbeKindName(ProbeKind::kSolverSweep), "solver_sweep");
  EXPECT_EQ(ProbeKindName(ProbeKind::kPhaseConfig), "phase_config");
  EXPECT_EQ(ProbeKindName(ProbeKind::kConstellation), "constellation");
  EXPECT_EQ(ProbeKindName(ProbeKind::kSpectrum), "spectrum");
}

#if METAAI_OBS_ENABLED
TEST(ScopedProbeSinkTest, InstallsAndRestoresTheGlobalSink) {
  EXPECT_EQ(probe_sink(), nullptr);
  EXPECT_FALSE(ProbesEnabled());
  {
    ProbeSink sink;
    const ScopedProbeSink scoped(&sink);
    EXPECT_TRUE(ProbesEnabled());
    Probe(MakeRecord(7));
    EXPECT_EQ(sink.size(), 1u);
  }
  EXPECT_EQ(probe_sink(), nullptr);
  // With no sink installed, Probe is a cheap no-op.
  Probe(MakeRecord(8));
}
#else   // METAAI_OBS_ENABLED
TEST(ScopedProbeSinkTest, DisabledBuildCompilesProbesAway) {
  // ProbesEnabled() is a constant false and Probe() a no-op, but a sink
  // can still be driven directly (tools do this even in OFF builds).
  static_assert(!ProbesEnabled());
  ProbeSink sink;
  const ScopedProbeSink scoped(&sink);
  Probe(MakeRecord(7));
  EXPECT_EQ(sink.size(), 0u);
}
#endif  // METAAI_OBS_ENABLED

TEST(ProbeJsonlTest, HeaderAndRecordsValidateAndAreByteDeterministic) {
  ProbeSink sink(4);
  sink.Add({.kind = ProbeKind::kEvm,
            .site = "link.transmit",
            .values = {{"evm_rms", 0.25}, {"symbols", 10.0}},
            .series = {0.1, 0.2, 0.3}});
  sink.Add({.kind = ProbeKind::kSyncOffset,
            .site = "sync.sample",
            .values = {{"offset_us", 3.5}}});
  const std::string jsonl = ToProbesJsonl(sink);
  EXPECT_EQ(jsonl, ToProbesJsonl(sink));  // byte-deterministic

  std::istringstream lines(jsonl);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue header = ParseJson(line);
  EXPECT_EQ(header.Find("schema")->string, "metaai.probes.v1");
  EXPECT_DOUBLE_EQ(header.Find("capacity")->number, 4.0);
  EXPECT_DOUBLE_EQ(header.Find("total")->number, 2.0);
  EXPECT_DOUBLE_EQ(header.Find("dropped")->number, 0.0);

  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue evm = ParseJson(line);
  EXPECT_DOUBLE_EQ(evm.Find("seq")->number, 0.0);
  EXPECT_EQ(evm.Find("kind")->string, "evm");
  EXPECT_EQ(evm.Find("site")->string, "link.transmit");
  EXPECT_DOUBLE_EQ(evm.Find("values")->Find("evm_rms")->number, 0.25);
  ASSERT_EQ(evm.Find("series")->array.size(), 3u);
  EXPECT_DOUBLE_EQ(evm.Find("series")->array[1].number, 0.2);

  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue sync = ParseJson(line);
  EXPECT_EQ(sync.Find("kind")->string, "sync_offset");
  // Empty series are omitted, not emitted as [].
  EXPECT_EQ(sync.Find("series"), nullptr);
  EXPECT_FALSE(std::getline(lines, line));
}

TEST(ProbeJsonlTest, WriteProbesFileRoundTrips) {
  ProbeSink sink;
  sink.Add(MakeRecord(1));
  const std::string path = ::testing::TempDir() + "metaai_probes.jsonl";
  ASSERT_TRUE(WriteProbesFile(sink, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), ToProbesJsonl(sink));
}

TEST(ProbeSinkTest, ConcurrentAddsKeepEveryRecord) {
  // The sink is the one obs surface shared by parallel bench workers;
  // hammer Add/Snapshot from several threads and check nothing is lost.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  ProbeSink sink(kThreads * kPerThread);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.Add({.kind = ProbeKind::kScalar,
                  .site = "thread." + std::to_string(t),
                  .values = {{"i", static_cast<double>(i)}}});
        if (i % 100 == 0) (void)sink.Snapshot();
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(sink.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(sink.dropped(), 0u);
  const auto records = sink.Snapshot();
  for (std::uint64_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i);  // arrival order under the mutex
  }
}

}  // namespace
}  // namespace metaai::obs
