#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.h"

namespace metaai::obs {
namespace {

std::vector<TimeSeriesPoint> MakeSeries() {
  std::vector<TimeSeriesPoint> points;
  points.push_back({.t_s = 1e-3,
                    .values = {{"queue_depth", 3.0},
                               {"frame_utilization", 0.25},
                               {"admitted", 4.0}}});
  points.push_back({.t_s = 6.5e-3,
                    .values = {{"queue_depth", 0.0},
                               {"frame_utilization", 0.125},
                               {"admitted", 7.0}}});
  return points;
}

TEST(TimeSeriesPointTest, ValueLooksUpByKey) {
  const TimeSeriesPoint point = MakeSeries()[0];
  EXPECT_EQ(point.Value("queue_depth"), 3.0);
  EXPECT_EQ(point.Value("admitted"), 4.0);
  EXPECT_EQ(point.Value("absent"), 0.0);
}

TEST(TimeSeriesJsonlTest, RoundTripsExactly) {
  const std::vector<TimeSeriesPoint> series = MakeSeries();
  const std::string text = ToTimeSeriesJsonl(series);
  const std::vector<TimeSeriesPoint> parsed = ParseTimeSeriesJsonl(text);
  EXPECT_EQ(parsed, series);
  EXPECT_EQ(ToTimeSeriesJsonl(parsed), text);
}

TEST(TimeSeriesJsonlTest, IdenticalSeriesSerializeToIdenticalBytes) {
  EXPECT_EQ(ToTimeSeriesJsonl(MakeSeries()), ToTimeSeriesJsonl(MakeSeries()));
}

TEST(TimeSeriesJsonlTest, EmptySeriesIsJustTheHeader) {
  const std::string text = ToTimeSeriesJsonl({});
  EXPECT_EQ(text, "{\"schema\":\"metaai.timeseries.v1\",\"count\":0}\n");
  EXPECT_TRUE(ParseTimeSeriesJsonl(text).empty());
}

TEST(TimeSeriesJsonlTest, RejectsForeignSchemasAndMalformedLines) {
  EXPECT_THROW(ParseTimeSeriesJsonl(""), CheckError);
  EXPECT_THROW(ParseTimeSeriesJsonl("{\"schema\":\"metaai.requests.v1\"}\n"),
               CheckError);
  std::string text = ToTimeSeriesJsonl(MakeSeries());
  text += "{\"t_s\":1}\n";  // extra record line beyond the header count
  EXPECT_THROW(ParseTimeSeriesJsonl(text), CheckError);
}

}  // namespace
}  // namespace metaai::obs
