#include "data/multisensor.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"

namespace metaai::data {
namespace {

using Factory = MultiSensorDataset (*)(const MultiSensorOptions&);

struct FactoryCase {
  const char* label;
  Factory make;
  std::size_t expected_sensors;
  std::size_t expected_classes;
};

class MultiSensorFactory : public ::testing::TestWithParam<FactoryCase> {};

TEST_P(MultiSensorFactory, ProducesValidatedDataset) {
  const auto& param = GetParam();
  const auto ds =
      param.make({.train_per_class = 4, .test_per_class = 2});
  ds.Validate();
  EXPECT_EQ(ds.num_sensors(), param.expected_sensors);
  EXPECT_EQ(ds.num_classes, param.expected_classes);
  EXPECT_EQ(ds.sensor_names.size(), param.expected_sensors);
}

TEST_P(MultiSensorFactory, SensorsShareLabelsPerEvent) {
  const auto& param = GetParam();
  const auto ds = param.make({.train_per_class = 3, .test_per_class = 1});
  for (std::size_t s = 1; s < ds.num_sensors(); ++s) {
    EXPECT_EQ(ds.train_sensors[s].labels, ds.train_sensors[0].labels);
    EXPECT_EQ(ds.test_sensors[s].labels, ds.test_sensors[0].labels);
  }
}

TEST_P(MultiSensorFactory, SensorsObserveDifferently) {
  // The same event must look different through different sensors,
  // otherwise fusion would add nothing.
  const auto& param = GetParam();
  const auto ds = param.make({.train_per_class = 2, .test_per_class = 1});
  for (std::size_t s = 1; s < ds.num_sensors(); ++s) {
    EXPECT_NE(ds.train_sensors[s].features[0],
              ds.train_sensors[0].features[0]);
  }
}

TEST_P(MultiSensorFactory, DeterministicPerSeed) {
  const auto& param = GetParam();
  const auto a = param.make({.train_per_class = 2, .test_per_class = 1});
  const auto b = param.make({.train_per_class = 2, .test_per_class = 1});
  for (std::size_t s = 0; s < a.num_sensors(); ++s) {
    EXPECT_EQ(a.train_sensors[s].features, b.train_sensors[s].features);
  }
}

TEST_P(MultiSensorFactory, CoversAllClasses) {
  const auto& param = GetParam();
  const auto ds = param.make({.train_per_class = 2, .test_per_class = 1});
  const std::set<int> classes(ds.train_sensors[0].labels.begin(),
                              ds.train_sensors[0].labels.end());
  EXPECT_EQ(classes.size(), ds.num_classes);
}

TEST_P(MultiSensorFactory, FeaturesAreInUnitRange) {
  const auto& param = GetParam();
  const auto ds = param.make({.train_per_class = 2, .test_per_class = 1});
  for (const auto& sensor : ds.train_sensors) {
    for (const auto& f : sensor.features) {
      for (const double v : f) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFactories, MultiSensorFactory,
    ::testing::Values(
        FactoryCase{"MultiPie", &MakeMultiPieLike, 3, 10},
        FactoryCase{"RfSauron", &MakeRfSauronLike, 3, 10},
        FactoryCase{"UscHad", &MakeUscHadLike, 2, 6}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(MultiSensorTest, DefaultSizesMatchPaperScale) {
  // Multi-PIE: 192 train / 48 test for 10 classes (~20/5 per class).
  const auto pie = MakeMultiPieLike();
  EXPECT_EQ(pie.train_sensors[0].size(), 200u);
  EXPECT_EQ(pie.test_sensors[0].size(), 50u);
  // USC-HAD: 336 train / 85 test for 6 classes (~56/14 per class).
  const auto had = MakeUscHadLike();
  EXPECT_EQ(had.train_sensors[0].size(), 336u);
  EXPECT_EQ(had.test_sensors[0].size(), 84u);
}

TEST(MultiSensorTest, ValidateCatchesLabelMismatch) {
  auto ds = MakeUscHadLike({.train_per_class = 2, .test_per_class = 1});
  ds.train_sensors[1].labels[0] ^= 1;
  EXPECT_THROW(ds.Validate(), CheckError);
}

}  // namespace
}  // namespace metaai::data
