#include "data/datasets.h"

#include <gtest/gtest.h>

#include <set>

#include "common/check.h"

namespace metaai::data {
namespace {

class DatasetFactory : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetFactory, ProducesValidatedSplits) {
  const Dataset ds = MakeByName(GetParam());
  EXPECT_FALSE(ds.name.empty());
  EXPECT_GT(ds.num_classes, 0u);
  EXPECT_EQ(ds.height * ds.width, ds.train.dim);
  EXPECT_EQ(ds.train.dim, ds.test.dim);
  EXPECT_GT(ds.train.size(), 0u);
  EXPECT_GT(ds.test.size(), 0u);
  ds.train.Validate();
  ds.test.Validate();
}

TEST_P(DatasetFactory, CoversAllClasses) {
  const Dataset ds = MakeByName(GetParam());
  std::set<int> train_classes(ds.train.labels.begin(),
                              ds.train.labels.end());
  std::set<int> test_classes(ds.test.labels.begin(), ds.test.labels.end());
  EXPECT_EQ(train_classes.size(), ds.num_classes);
  EXPECT_EQ(test_classes.size(), ds.num_classes);
}

TEST_P(DatasetFactory, PixelsAreInUnitRange) {
  const Dataset ds =
      MakeByName(GetParam(), {.train_per_class = 5, .test_per_class = 2});
  for (const auto& img : ds.train.features) {
    for (const double p : img) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST_P(DatasetFactory, DeterministicPerSeed) {
  const Dataset a =
      MakeByName(GetParam(), {.train_per_class = 3, .test_per_class = 1});
  const Dataset b =
      MakeByName(GetParam(), {.train_per_class = 3, .test_per_class = 1});
  EXPECT_EQ(a.train.features, b.train.features);
  EXPECT_EQ(a.test.features, b.test.features);
}

TEST_P(DatasetFactory, SeedOverrideChangesData) {
  const Dataset a = MakeByName(
      GetParam(), {.train_per_class = 3, .test_per_class = 1, .seed = 111});
  const Dataset b = MakeByName(
      GetParam(), {.train_per_class = 3, .test_per_class = 1, .seed = 222});
  EXPECT_NE(a.train.features, b.train.features);
}

TEST_P(DatasetFactory, SizeOverridesAreRespected) {
  const Dataset ds =
      MakeByName(GetParam(), {.train_per_class = 7, .test_per_class = 3});
  EXPECT_EQ(ds.train.size(), 7 * ds.num_classes);
  EXPECT_EQ(ds.test.size(), 3 * ds.num_classes);
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetFactory,
                         ::testing::ValuesIn(AllDatasetNames()),
                         [](const auto& info) { return info.param; });

TEST(DatasetsTest, ClassCountsMatchPaper) {
  EXPECT_EQ(MakeMnistLike({.train_per_class = 1, .test_per_class = 1})
                .num_classes,
            10u);
  EXPECT_EQ(MakeFashionLike({.train_per_class = 1, .test_per_class = 1})
                .num_classes,
            10u);
  EXPECT_EQ(MakeFruitsLike({.train_per_class = 1, .test_per_class = 1})
                .num_classes,
            8u);
  EXPECT_EQ(
      MakeAfhqLike({.train_per_class = 1, .test_per_class = 1}).num_classes,
      3u);
  EXPECT_EQ(MakeCelebaLike({.train_per_class = 1, .test_per_class = 1})
                .num_classes,
            10u);
  EXPECT_EQ(
      MakeWidarLike({.train_per_class = 1, .test_per_class = 1}).num_classes,
      6u);
}

TEST(DatasetsTest, CelebaDefaultsMatchPaperSampleCounts) {
  // The paper trains the face task on 220 images and tests on 80.
  const Dataset ds = MakeCelebaLike();
  EXPECT_EQ(ds.train.size(), 220u);
  EXPECT_EQ(ds.test.size(), 80u);
}

TEST(DatasetsTest, UnknownNameThrows) {
  EXPECT_THROW(MakeByName("imagenet"), CheckError);
}

TEST(DatasetsTest, AllDatasetNamesHasSixEntries) {
  EXPECT_EQ(AllDatasetNames().size(), 6u);
}

}  // namespace
}  // namespace metaai::data
