#include <gtest/gtest.h>

#include <set>

#include "data/datasets.h"

namespace metaai::data {
namespace {

TEST(FaceStreamTest, DefaultSizesMatchCaseStudy) {
  // §5.4: 60 camera frames + 30 supplements per identity for training,
  // 20 live captures per identity for testing, 10 identities.
  const Dataset ds = MakeFaceStreamLike();
  EXPECT_EQ(ds.num_classes, 10u);
  EXPECT_EQ(ds.train.size(), 10u * (60u + 30u));
  EXPECT_EQ(ds.test.size(), 10u * 20u);
}

TEST(FaceStreamTest, CoversAllIdentities) {
  const Dataset ds =
      MakeFaceStreamLike({.train_per_class = 10, .test_per_class = 4});
  const std::set<int> train(ds.train.labels.begin(), ds.train.labels.end());
  const std::set<int> test(ds.test.labels.begin(), ds.test.labels.end());
  EXPECT_EQ(train.size(), 10u);
  EXPECT_EQ(test.size(), 10u);
}

TEST(FaceStreamTest, PixelsAreInUnitRange) {
  const Dataset ds =
      MakeFaceStreamLike({.train_per_class = 10, .test_per_class = 2});
  for (const auto& frame : ds.train.features) {
    for (const double p : frame) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST(FaceStreamTest, DeterministicPerSeed) {
  const Dataset a =
      MakeFaceStreamLike({.train_per_class = 10, .test_per_class = 2});
  const Dataset b =
      MakeFaceStreamLike({.train_per_class = 10, .test_per_class = 2});
  EXPECT_EQ(a.train.features, b.train.features);
  const Dataset c = MakeFaceStreamLike(
      {.train_per_class = 10, .test_per_class = 2, .seed = 99});
  EXPECT_NE(a.train.features, c.train.features);
}

TEST(FaceStreamTest, LiveCapturesDifferFromEnrollment) {
  // Streaming captures carry extra pose jitter: they must not duplicate
  // any training frame.
  const Dataset ds =
      MakeFaceStreamLike({.train_per_class = 10, .test_per_class = 2});
  for (const auto& capture : ds.test.features) {
    for (const auto& frame : ds.train.features) {
      EXPECT_NE(capture, frame);
    }
  }
}

}  // namespace
}  // namespace metaai::data
