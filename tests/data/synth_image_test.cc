#include "data/synth_image.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"

namespace metaai::data {
namespace {

TEST(SynthImageTest, SmoothFieldIsNormalizedToUnit) {
  Rng rng(1);
  const Image img = SmoothRandomField(16, 16, 4, rng);
  EXPECT_EQ(img.pixels.size(), 256u);
  EXPECT_NEAR(Min(img.pixels), 0.0, 1e-12);
  EXPECT_NEAR(Max(img.pixels), 1.0, 1e-12);
}

TEST(SynthImageTest, SmoothFieldIsDeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  const Image x = SmoothRandomField(8, 8, 3, a);
  const Image y = SmoothRandomField(8, 8, 3, b);
  EXPECT_EQ(x.pixels, y.pixels);
}

TEST(SynthImageTest, SmoothFieldIsActuallySmooth) {
  // Mean absolute difference between adjacent pixels is far below the
  // full dynamic range.
  Rng rng(7);
  const Image img = SmoothRandomField(16, 16, 4, rng);
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x + 1 < 16; ++x) {
      total += std::abs(img.at(y, x + 1) - img.at(y, x));
      ++count;
    }
  }
  EXPECT_LT(total / static_cast<double>(count), 0.15);
}

TEST(SynthImageTest, BilinearInterpolatesAndZeroPads) {
  Image img{2, 2, {0.0, 1.0, 1.0, 0.0}};
  EXPECT_DOUBLE_EQ(SampleBilinear(img, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(SampleBilinear(img, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(SampleBilinear(img, 0.5, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(SampleBilinear(img, -5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(SampleBilinear(img, 0.0, 10.0), 0.0);
}

TEST(SynthImageTest, IdentityWarpPreservesImage) {
  Rng rng(9);
  const Image img = SmoothRandomField(16, 16, 4, rng);
  const Image warped = AffineWarp(img, 0.0, 1.0, 0.0, 0.0);
  for (std::size_t i = 0; i < img.pixels.size(); ++i) {
    EXPECT_NEAR(warped.pixels[i], img.pixels[i], 1e-9);
  }
}

TEST(SynthImageTest, TranslationMovesContent) {
  Image img{8, 8, std::vector<double>(64, 0.0)};
  img.at(4, 4) = 1.0;
  const Image shifted = AffineWarp(img, 0.0, 1.0, 2.0, -1.0);
  EXPECT_NEAR(shifted.at(6, 3), 1.0, 1e-9);
  EXPECT_NEAR(shifted.at(4, 4), 0.0, 1e-9);
}

TEST(SynthImageTest, RotationByPiIsPointReflection) {
  Image img{9, 9, std::vector<double>(81, 0.0)};
  img.at(2, 4) = 1.0;  // 2 rows above center
  const Image rotated = AffineWarp(img, M_PI, 1.0, 0.0, 0.0);
  EXPECT_NEAR(rotated.at(6, 4), 1.0, 1e-9);
}

TEST(SynthImageTest, WarpRejectsNonPositiveScale) {
  Image img{4, 4, std::vector<double>(16, 0.0)};
  EXPECT_THROW(AffineWarp(img, 0.0, 0.0, 0.0, 0.0), CheckError);
}

TEST(SynthImageTest, RenderSampleStaysInUnitRange) {
  Rng rng(11);
  const Image proto = SmoothRandomField(16, 16, 4, rng);
  DistortionParams params;
  params.pixel_noise = 0.3;
  params.occlusion_prob = 1.0;
  for (int i = 0; i < 20; ++i) {
    const Image sample = RenderSample(proto, params, rng);
    EXPECT_GE(Min(sample.pixels), 0.0);
    EXPECT_LE(Max(sample.pixels), 1.0);
  }
}

TEST(SynthImageTest, RenderSampleVariesAcrossDraws) {
  Rng rng(13);
  const Image proto = SmoothRandomField(16, 16, 4, rng);
  const DistortionParams params;
  const Image a = RenderSample(proto, params, rng);
  const Image b = RenderSample(proto, params, rng);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.pixels.size(); ++i) {
    diff += std::abs(a.pixels[i] - b.pixels[i]);
  }
  EXPECT_GT(diff / 256.0, 0.01);
}

TEST(SynthImageTest, ZeroDistortionReproducesPrototype) {
  Rng rng(15);
  const Image proto = SmoothRandomField(16, 16, 4, rng);
  DistortionParams none{.max_rotation_rad = 0.0,
                        .max_shift_px = 0.0,
                        .scale_jitter = 0.0,
                        .style_strength = 0.0,
                        .pixel_noise = 0.0,
                        .occlusion_prob = 0.0,
                        .contrast_jitter = 0.0};
  const Image sample = RenderSample(proto, none, rng);
  for (std::size_t i = 0; i < proto.pixels.size(); ++i) {
    EXPECT_NEAR(sample.pixels[i], proto.pixels[i], 1e-9);
  }
}

TEST(SynthImageTest, OcclusionBlanksARectangle) {
  Rng rng(17);
  Image proto{16, 16, std::vector<double>(256, 1.0)};
  DistortionParams params{.max_rotation_rad = 0.0,
                          .max_shift_px = 0.0,
                          .scale_jitter = 0.0,
                          .style_strength = 0.0,
                          .pixel_noise = 0.0,
                          .occlusion_prob = 1.0,
                          .occlusion_size = 4,
                          .contrast_jitter = 0.0};
  const Image sample = RenderSample(proto, params, rng);
  const auto zeros = static_cast<std::size_t>(
      std::count(sample.pixels.begin(), sample.pixels.end(), 0.0));
  EXPECT_EQ(zeros, 16u);  // exactly a 4x4 block
}

}  // namespace
}  // namespace metaai::data
