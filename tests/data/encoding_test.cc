#include "data/encoding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "data/datasets.h"

namespace metaai::data {
namespace {

class EncodingPerScheme : public ::testing::TestWithParam<rf::Modulation> {};

TEST_P(EncodingPerScheme, SampleRoundTripsWithinQuantizationError) {
  const rf::Modulation scheme = GetParam();
  const int bits = rf::BitsPerSymbol(scheme);
  std::vector<double> pixels;
  for (int i = 0; i <= 20; ++i) pixels.push_back(i / 20.0);
  const auto symbols = EncodeSample(pixels, scheme);
  EXPECT_EQ(symbols.size(), pixels.size());
  const auto decoded = DecodeSample(symbols, scheme);
  const double max_err = 1.0 / static_cast<double>(1 << bits);
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    EXPECT_LE(std::abs(decoded[i] - pixels[i]), max_err + 1e-12);
  }
}

TEST_P(EncodingPerScheme, SymbolsHaveUnitAveragePowerOverUniformPixels) {
  const rf::Modulation scheme = GetParam();
  const auto levels = 1u << rf::BitsPerSymbol(scheme);
  std::vector<double> pixels;
  for (unsigned l = 0; l < levels; ++l) {
    pixels.push_back((static_cast<double>(l) + 0.5) / levels);
  }
  const auto symbols = EncodeSample(pixels, scheme);
  double power = 0.0;
  for (const auto& s : symbols) power += std::norm(s);
  EXPECT_NEAR(power / static_cast<double>(symbols.size()), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, EncodingPerScheme,
                         ::testing::ValuesIn(rf::AllModulations().begin(),
                                             rf::AllModulations().end()),
                         [](const auto& info) {
                           std::string name =
                               rf::ModulationName(info.param);
                           std::erase(name, '-');
                           return name;
                         });

TEST(EncodingTest, QuantizeCoversFullRange) {
  EXPECT_EQ(QuantizeIntensity(0.0, 8), 0u);
  EXPECT_EQ(QuantizeIntensity(1.0, 8), 255u);
  EXPECT_EQ(QuantizeIntensity(0.5, 1), 1u);
  EXPECT_EQ(QuantizeIntensity(0.49, 1), 0u);
  // Out-of-range intensities clamp.
  EXPECT_EQ(QuantizeIntensity(-2.0, 4), 0u);
  EXPECT_EQ(QuantizeIntensity(3.0, 4), 15u);
}

TEST(EncodingTest, DequantizeIsBucketCenter) {
  EXPECT_DOUBLE_EQ(DequantizeLevel(0, 1), 0.25);
  EXPECT_DOUBLE_EQ(DequantizeLevel(1, 1), 0.75);
  EXPECT_NEAR(DequantizeLevel(128, 8), (128.0 + 0.5) / 256.0, 1e-12);
}

TEST(EncodingTest, QuantizeDequantizeValidateArguments) {
  EXPECT_THROW(QuantizeIntensity(0.5, 0), CheckError);
  EXPECT_THROW(DequantizeLevel(2, 1), CheckError);
}

TEST(EncodingTest, EncodeDatasetPreservesShapeAndLabels) {
  const Dataset ds =
      MakeMnistLike({.train_per_class = 3, .test_per_class = 1});
  const auto encoded = EncodeDataset(ds.train, rf::Modulation::kQam256);
  EXPECT_EQ(encoded.num_classes, ds.train.num_classes);
  EXPECT_EQ(encoded.dim, ds.train.dim);
  EXPECT_EQ(encoded.labels, ds.train.labels);
  EXPECT_EQ(encoded.size(), ds.train.size());
  encoded.Validate();
}

TEST(EncodingTest, NearbyIntensitiesMapToAdjacentSymbols) {
  // Locality of the pixel -> constellation mapping (snake traversal): one
  // quantization step always moves to a geometrically adjacent point.
  const rf::Modulation scheme = rf::Modulation::kQam256;
  std::vector<double> pixels;
  for (unsigned level = 0; level < 256; ++level) {
    pixels.push_back((static_cast<double>(level) + 0.5) / 256.0);
  }
  const auto symbols = EncodeSample(pixels, scheme);
  // Min distance of unit-power 256-QAM is 2/sqrt(170) ~= 0.153.
  const double unit = 2.0 / std::sqrt(170.0);
  for (std::size_t i = 0; i + 1 < symbols.size(); ++i) {
    EXPECT_NEAR(std::abs(symbols[i + 1] - symbols[i]), unit, 1e-9)
        << "level " << i;
  }
}

TEST(EncodingTest, SnakeMappingIsABijection) {
  // Every 8-bit level maps to a distinct 256-QAM point and decodes back.
  const rf::Modulation scheme = rf::Modulation::kQam256;
  std::vector<double> pixels;
  for (unsigned level = 0; level < 256; ++level) {
    pixels.push_back((static_cast<double>(level) + 0.5) / 256.0);
  }
  const auto symbols = EncodeSample(pixels, scheme);
  const auto decoded = DecodeSample(symbols, scheme);
  for (unsigned level = 0; level < 256; ++level) {
    EXPECT_NEAR(decoded[level], pixels[level], 1e-9);
  }
}

}  // namespace
}  // namespace metaai::data
