# Runs metaai_obs_report over the checked-in telemetry documents and
# fails unless the rendered report is byte-identical to the golden file.
# Invoked by the ObsReportGolden ctest (see CMakeLists.txt) with:
#   -DTOOL=<metaai_obs_report binary> -DDATA=<testdata dir> -DOUT=<tmp file>
execute_process(
  COMMAND ${TOOL}
          --metrics ${DATA}/metrics.json
          --probes ${DATA}/probes.jsonl
          --timeseries ${DATA}/timeseries.jsonl
          --requests ${DATA}/requests.jsonl
          --alerts ${DATA}/alerts.jsonl
  OUTPUT_FILE ${OUT}
  RESULT_VARIABLE status)
if(NOT status EQUAL 0)
  message(FATAL_ERROR "metaai_obs_report exited with ${status}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${DATA}/expected_report.txt
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "report output ${OUT} differs from golden "
          "${DATA}/expected_report.txt")
endif()
