// Compares BENCH_<name>.json runs against committed baselines and fails
// (exit 1) on regression, so tools/run_benches.sh can gate bench drift.
//
//   metaai_bench_diff --baselines DIR --current DIR
//       For every baseline DIR/<bench>.json (schema
//       metaai.bench.baseline.v1), load the matching
//       CURRENT/BENCH_<bench>.json, print a per-metric table and exit
//       nonzero when any metric regressed, went missing, or the current
//       bench file is absent.
//
//   metaai_bench_diff --baselines DIR --current DIR --update
//       [--benches a,b,c]
//       Distill fresh baselines (default tolerances, see
//       obs/bench_diff.h) from the current BENCH_*.json files — all of
//       them, or only the named benches — and write them into DIR.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "obs/bench_diff.h"
#include "obs/export.h"

namespace {

namespace fs = std::filesystem;
using namespace metaai;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  Check(in.good(), "cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::set<std::string> ParseBenchList(const std::string& csv) {
  std::set<std::string> names;
  std::string current;
  std::istringstream in(csv);
  while (std::getline(in, current, ',')) {
    if (!current.empty()) names.insert(current);
  }
  return names;
}

int Usage() {
  std::fputs(
      "usage: metaai_bench_diff --baselines DIR --current DIR\n"
      "                         [--update [--benches a,b,c]]\n"
      "Compares CURRENT/BENCH_<bench>.json runs against the\n"
      "metaai.bench.baseline.v1 files in DIR (exit 1 on regression),\n"
      "or with --update distills fresh baselines from the current\n"
      "runs.\n",
      stderr);
  return 2;
}

int Update(const fs::path& baselines_dir, const fs::path& current_dir,
           const std::set<std::string>& only) {
  fs::create_directories(baselines_dir);
  std::size_t written = 0;
  std::vector<fs::path> bench_files;
  for (const auto& entry : fs::directory_iterator(current_dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) == 0 &&
        entry.path().extension() == ".json") {
      bench_files.push_back(entry.path());
    }
  }
  std::sort(bench_files.begin(), bench_files.end());
  for (const auto& path : bench_files) {
    const auto document = obs::ParseJson(ReadFile(path));
    const auto baseline = obs::DistillBaseline(document);
    if (!only.empty() && only.count(baseline.bench) == 0) continue;
    const fs::path out = baselines_dir / (baseline.bench + ".json");
    std::ofstream os(out);
    os << obs::BaselineToJson(baseline);
    Check(os.good(), "cannot write " + out.string());
    std::printf("updated %s (%zu metrics)\n", out.string().c_str(),
                baseline.metrics.size());
    ++written;
  }
  if (written == 0) {
    std::fprintf(stderr, "error: no matching BENCH_*.json under %s\n",
                 current_dir.string().c_str());
    return 1;
  }
  return 0;
}

int Diff(const fs::path& baselines_dir, const fs::path& current_dir) {
  std::vector<fs::path> baseline_files;
  for (const auto& entry : fs::directory_iterator(baselines_dir)) {
    if (entry.path().extension() == ".json") {
      baseline_files.push_back(entry.path());
    }
  }
  std::sort(baseline_files.begin(), baseline_files.end());
  if (baseline_files.empty()) {
    std::fprintf(stderr, "error: no baselines under %s\n",
                 baselines_dir.string().c_str());
    return 1;
  }

  bool ok = true;
  for (const auto& path : baseline_files) {
    const auto baseline =
        obs::BaselineFromJson(obs::ParseJson(ReadFile(path)));
    const fs::path current =
        current_dir / ("BENCH_" + baseline.bench + ".json");
    if (!fs::exists(current)) {
      std::printf("== %s: MISSING (%s not found)\n", baseline.bench.c_str(),
                  current.string().c_str());
      ok = false;
      continue;
    }
    const auto report =
        obs::DiffBench(baseline, obs::ParseJson(ReadFile(current)));
    std::printf("== %s: %s\n", report.bench.c_str(),
                report.ok() ? "ok" : "REGRESSED");
    std::cout << obs::BenchDiffTable(report).ToString();
    ok = ok && report.ok();
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string baselines;
    std::string current;
    std::string benches;
    bool update = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--baselines" && i + 1 < argc) {
        baselines = argv[++i];
      } else if (arg == "--current" && i + 1 < argc) {
        current = argv[++i];
      } else if (arg == "--benches" && i + 1 < argc) {
        benches = argv[++i];
      } else if (arg == "--update") {
        update = true;
      } else {
        return Usage();
      }
    }
    if (baselines.empty() || current.empty()) return Usage();
    if (update) return Update(baselines, current, ParseBenchList(benches));
    return Diff(baselines, current);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
