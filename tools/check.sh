#!/usr/bin/env bash
# Full local CI gate:
#   1. Strict build (-DMETAAI_WERROR=ON -DMETAAI_OBS=ON) + full ctest.
#   2. ASan/UBSan build (-DMETAAI_SANITIZE=ON) running the obs unit
#      suites and the telemetry integration tests.
#   3. Bench suite with baseline regression gating (run_benches.sh,
#      which invokes metaai_bench_diff when bench/baselines/ exists).
#
# Usage: tools/check.sh [build-dir-prefix]   (default: build-check)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-${repo_root}/build-check}"

echo "=== [1/3] strict build + ctest"
cmake -B "${prefix}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release -DMETAAI_WERROR=ON -DMETAAI_OBS=ON
cmake --build "${prefix}" -j"$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure

echo "=== [2/3] ASan/UBSan on obs + telemetry suites"
cmake -B "${prefix}-asan" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Debug -DMETAAI_SANITIZE=ON -DMETAAI_OBS=ON
cmake --build "${prefix}-asan" -j"$(nproc)" \
  --target test_obs test_integration
ctest --test-dir "${prefix}-asan" --output-on-failure \
  -R 'obs|telemetry'

echo "=== [3/3] benches + baseline diff"
"${repo_root}/tools/run_benches.sh" "${prefix}-bench"

echo "check.sh: all gates passed"
