#!/usr/bin/env bash
# Full local CI gate:
#   1. Strict build (-DMETAAI_WERROR=ON -DMETAAI_OBS=ON) + full ctest.
#   2. ASan/UBSan build (-DMETAAI_SANITIZE=ON) running the FULL ctest
#      suite (the thread pool, solver fan-out and telemetry merges all
#      deserve sanitizer coverage, not just the obs suites).
#   3. TSan build (-DMETAAI_SANITIZE=thread) exercising the thread-pool,
#      parallel-determinism, fault-injection/recovery and serving-runtime
#      suites under real data race detection, plus the metaai_obs_report
#      golden-file test against the TSan-built tool.
#   4. UBSan-only build (-DMETAAI_SANITIZE=undefined, trap-on-error)
#      running the obs + serve suites: the health estimators and alert
#      engine do a lot of floating-point edge-case math (variance
#      recursions, nearest-rank indexing) where UB hides behind ASan's
#      noise floor.
#   5. Bench suite with baseline regression gating (run_benches.sh,
#      which invokes metaai_bench_diff when bench/baselines/ exists).
#
# Usage: tools/check.sh [build-dir-prefix]   (default: build-check)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-${repo_root}/build-check}"

echo "=== [1/5] strict build + ctest"
cmake -B "${prefix}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release -DMETAAI_WERROR=ON -DMETAAI_OBS=ON
cmake --build "${prefix}" -j"$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure

echo "=== [2/5] ASan/UBSan full ctest"
cmake -B "${prefix}-asan" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Debug -DMETAAI_SANITIZE=ON -DMETAAI_OBS=ON
cmake --build "${prefix}-asan" -j"$(nproc)"
ctest --test-dir "${prefix}-asan" --output-on-failure

echo "=== [3/5] TSan on thread-pool + determinism suites"
cmake -B "${prefix}-tsan" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Debug -DMETAAI_SANITIZE=thread -DMETAAI_OBS=ON
cmake --build "${prefix}-tsan" -j"$(nproc)" \
  --target test_common test_obs test_fault test_integration test_serve \
  metaai_obs_report
ctest --test-dir "${prefix}-tsan" --output-on-failure \
  -R 'Parallel|Tracer|Telemetry|Fault|Serve|ObsReport|obs_report'

echo "=== [4/5] UBSan on obs + serve suites"
cmake -B "${prefix}-ubsan" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Debug -DMETAAI_SANITIZE=undefined -DMETAAI_OBS=ON
cmake --build "${prefix}-ubsan" -j"$(nproc)" --target test_obs test_serve
ctest --test-dir "${prefix}-ubsan" --output-on-failure \
  -R 'Ewma|Cusum|PageHinkley|WindowedQuantile|HealthMonitor|HealthSignals|ObserveProbe|Alert|Quantile|Percentile|Serve|Lifecycle|TimeSeries'

echo "=== [5/5] benches + baseline diff"
"${repo_root}/tools/run_benches.sh" "${prefix}-bench"

echo "check.sh: all gates passed"
