#!/usr/bin/env bash
# Full local CI gate:
#   1. Strict build (-DMETAAI_WERROR=ON -DMETAAI_OBS=ON) + full ctest.
#   2. ASan/UBSan build (-DMETAAI_SANITIZE=ON) running the FULL ctest
#      suite (the thread pool, solver fan-out and telemetry merges all
#      deserve sanitizer coverage, not just the obs suites).
#   3. TSan build (-DMETAAI_SANITIZE=thread) exercising the thread-pool,
#      parallel-determinism, fault-injection/recovery, serving-runtime
#      and cascade-pipeline suites under real data race detection (the
#      cascade mapper fans per-symbol solves across the pool), plus the
#      metaai_obs_report golden-file test against the TSan-built tool.
#   4. UBSan-only build (-DMETAAI_SANITIZE=undefined, trap-on-error)
#      running the obs + serve suites plus the layer-graph/cascade-solver
#      suites: the health estimators, alert engine and the cascade's
#      product-of-sums objective do a lot of floating-point edge-case
#      math (variance recursions, nearest-rank indexing, per-layer row
#      scaling) where UB hides behind ASan's noise floor.
#   5. SIMD parity + determinism under both dispatch paths: the kernel
#      parity/determinism suites and the solver/mapper determinism
#      suites run twice — METAAI_SIMD=off (forced scalar) and
#      METAAI_SIMD=auto (AVX2 where the CPU has it) — against both the
#      strict and the ASan/UBSan builds, so a lane-width bug or a
#      dispatch-dependent result can't slip through on either path.
#   6. Bench suite with baseline regression gating (run_benches.sh,
#      which invokes metaai_bench_diff when bench/baselines/ exists).
#
# Usage: tools/check.sh [build-dir-prefix]   (default: build-check)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${1:-${repo_root}/build-check}"

echo "=== [1/6] strict build + ctest"
cmake -B "${prefix}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release -DMETAAI_WERROR=ON -DMETAAI_OBS=ON
cmake --build "${prefix}" -j"$(nproc)"
ctest --test-dir "${prefix}" --output-on-failure

echo "=== [2/6] ASan/UBSan full ctest"
cmake -B "${prefix}-asan" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Debug -DMETAAI_SANITIZE=ON -DMETAAI_OBS=ON
cmake --build "${prefix}-asan" -j"$(nproc)"
ctest --test-dir "${prefix}-asan" --output-on-failure

echo "=== [3/6] TSan on thread-pool + determinism suites"
cmake -B "${prefix}-tsan" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Debug -DMETAAI_SANITIZE=thread -DMETAAI_OBS=ON
cmake --build "${prefix}-tsan" -j"$(nproc)" \
  --target test_common test_obs test_fault test_integration test_serve \
  test_core test_fleet metaai_obs_report
ctest --test-dir "${prefix}-tsan" --output-on-failure \
  -R 'Parallel|Tracer|Telemetry|Fault|Serve|ObsReport|obs_report|Cascade|Fleet|Workload|Placement'

echo "=== [4/6] UBSan on obs + serve suites"
cmake -B "${prefix}-ubsan" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Debug -DMETAAI_SANITIZE=undefined -DMETAAI_OBS=ON
cmake --build "${prefix}-ubsan" -j"$(nproc)" \
  --target test_obs test_serve test_mts test_fleet
ctest --test-dir "${prefix}-ubsan" --output-on-failure \
  -R 'Ewma|Cusum|PageHinkley|WindowedQuantile|HealthMonitor|HealthSignals|ObserveProbe|Alert|Quantile|Percentile|Serve|Lifecycle|TimeSeries|LayerGraph|CascadeSolver|Fleet|Workload'

echo "=== [5/6] SIMD parity + determinism under both dispatch paths"
simd_filter='Parity|Determini|DispatchTest|ParseLevel|LevelName|SoaComplex'
simd_filter+='|ConfigSolver|ConfigCache|WeightMapper|LayerGraph|Cascade'
for simd_mode in off auto; do
  for simd_dir in "${prefix}" "${prefix}-asan"; do
    echo "--- METAAI_SIMD=${simd_mode} in ${simd_dir##*/}"
    METAAI_SIMD="${simd_mode}" ctest --test-dir "${simd_dir}" \
      --output-on-failure -R "${simd_filter}"
  done
done

echo "=== [6/6] benches + baseline diff"
"${repo_root}/tools/run_benches.sh" "${prefix}-bench"

echo "check.sh: all gates passed"
