#!/usr/bin/env bash
# Builds the bench suite in Release (warnings-as-errors) and runs every
# bench binary with telemetry export enabled. Each bench writes
# bench/out/BENCH_<name>.json (schema metaai.bench.v1, see EXPERIMENTS.md).
# Any bench exiting nonzero fails the whole script. When baselines are
# committed under bench/baselines/, the runs are then diffed against
# them with metaai_bench_diff and drift beyond tolerance also fails.
#
# Usage: tools/run_benches.sh [build-dir]   (default: build-bench)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-bench}"
out_dir="${repo_root}/bench/out"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=Release -DMETAAI_WERROR=ON
cmake --build "${build_dir}" -j"$(nproc)"

mkdir -p "${out_dir}"
export METAAI_BENCH_OUT="${out_dir}"

status=0
for bench in "${build_dir}"/bench/bench_*; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  echo "== ${name}"
  if ! "${bench}"; then
    echo "FAILED: ${name}" >&2
    status=1
  fi
done

count="$(ls "${out_dir}"/BENCH_*.json 2>/dev/null | wc -l)"
echo "Wrote ${count} BENCH_*.json files to ${out_dir}"

baselines_dir="${repo_root}/bench/baselines"
if ls "${baselines_dir}"/*.json >/dev/null 2>&1; then
  echo "== bench_diff vs ${baselines_dir}"
  if ! "${build_dir}/tools/metaai_bench_diff" \
      --baselines "${baselines_dir}" --current "${out_dir}"; then
    echo "FAILED: bench regression vs baselines" >&2
    status=1
  fi
fi
exit "${status}"
