// Renders telemetry exports into one per-stage/per-tenant text report.
//
//   metaai_obs_report [--metrics metrics.json] [--probes probes.jsonl]
//                     [--timeseries ts.jsonl] [--requests requests.jsonl]
//                     [--alerts alerts.jsonl]
//
// Each flag names a document in the matching schema (metaai.obs.v1,
// metaai.probes.v1, metaai.timeseries.v1, metaai.requests.v1,
// metaai.alerts.v1); any
// subset may be given and sections render in a fixed order. The output
// is deterministic — identical inputs print identical bytes, which the
// golden-file ctest in tools/CMakeLists.txt pins.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/check.h"
#include "obs/report.h"

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  metaai::Check(in.good(), "cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Usage() {
  std::fputs(
      "usage: metaai_obs_report [--metrics metrics.json]\n"
      "                         [--probes probes.jsonl]\n"
      "                         [--timeseries ts.jsonl]\n"
      "                         [--requests requests.jsonl]\n"
      "                         [--alerts alerts.jsonl]\n"
      "Renders the given telemetry documents as one text report.\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  metaai::obs::ObsReportInputs inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) return Usage();
    const std::string path = argv[++i];
    try {
      if (flag == "--metrics") {
        inputs.metrics_json = ReadFile(path);
      } else if (flag == "--probes") {
        inputs.probes_jsonl = ReadFile(path);
      } else if (flag == "--timeseries") {
        inputs.timeseries_jsonl = ReadFile(path);
      } else if (flag == "--requests") {
        inputs.requests_jsonl = ReadFile(path);
      } else if (flag == "--alerts") {
        inputs.alerts_jsonl = ReadFile(path);
      } else {
        std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
        return Usage();
      }
    } catch (const metaai::CheckError& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
  }
  try {
    std::cout << metaai::obs::RenderObsReport(inputs);
  } catch (const metaai::CheckError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
