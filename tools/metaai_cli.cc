// Command-line front end for the MetaAI library.
//
//   metaai_cli train    --dataset mnist --out model.txt [--robust]
//   metaai_cli eval     --dataset mnist --model model.txt
//   metaai_cli deploy   --dataset mnist --model model.txt --out patterns.txt
//   metaai_cli ota      --dataset mnist --model model.txt [--samples N]
//   metaai_cli datasets
//
// `train` fits the complex LNN digitally (optionally with the §3.5
// robustness schemes) and writes a model file. `eval` reports the digital
// (simulation) accuracy. `deploy` solves the metasurface configuration
// schedules for the default link and writes the controller pattern file.
// `ota` runs the full over-the-air evaluation on the simulated link.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/metaai.h"
#include "data/datasets.h"
#include "rf/geometry.h"

namespace {

using namespace metaai;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw CheckError("unexpected argument: " + key);
    }
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";  // boolean flag
    }
  }
  return args;
}

sim::OtaLinkConfig DefaultLink() {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  config.mts_phase_noise_std = 0.05;
  return config;
}

int Train(const Args& args) {
  const auto dataset = data::MakeByName(args.Get("dataset", "mnist"));
  const std::string out = args.Get("out", "model.txt");
  Rng rng(std::stoull(args.Get("seed", "42")));
  core::TrainingOptions options;
  if (args.Has("robust")) {
    options.sync_error_injection = true;
    options.sync_gamma_scale_us =
        1.85 * sim::PaperEquivalentLatencyScale(dataset.train.dim);
    options.input_noise_variance = 0.02;
  }
  const auto model = core::TrainModel(dataset.train, options, rng);
  core::SaveModel(model, out);
  std::printf("trained %s on %s (%zu samples), digital accuracy %.2f%%\n",
              out.c_str(), dataset.name.c_str(), dataset.train.size(),
              100.0 * core::EvaluateDigital(model, dataset.test));
  return 0;
}

int Eval(const Args& args) {
  const auto dataset = data::MakeByName(args.Get("dataset", "mnist"));
  const auto model = core::LoadModel(args.Get("model", "model.txt"));
  std::printf("%s digital accuracy: %.2f%%\n", dataset.name.c_str(),
              100.0 * core::EvaluateDigital(model, dataset.test));
  return 0;
}

int Deploy(const Args& args) {
  const auto model = core::LoadModel(args.Get("model", "model.txt"));
  const std::string out = args.Get("out", "patterns.txt");
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment deployment(model, surface, DefaultLink());
  core::SavePatterns(deployment.schedules(), surface.num_atoms(), out);
  std::printf(
      "solved %zu rounds x %zu symbols (%zu atoms), mean residual %.4f -> "
      "%s\n",
      deployment.schedules().rounds.size(),
      deployment.schedules().rounds[0].size(), surface.num_atoms(),
      deployment.schedules().mean_relative_residual, out.c_str());
  return 0;
}

int Ota(const Args& args) {
  const auto dataset = data::MakeByName(args.Get("dataset", "mnist"));
  const auto model = core::LoadModel(args.Get("model", "model.txt"));
  const auto samples =
      static_cast<std::size_t>(std::stoull(args.Get("samples", "200")));
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment deployment(model, surface, DefaultLink());
  sim::SyncModelConfig sync_config;
  sync_config.latency_scale =
      sim::PaperEquivalentLatencyScale(dataset.train.dim);
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  Rng rng(std::stoull(args.Get("seed", "7")));
  const double accuracy =
      deployment.EvaluateAccuracy(dataset.test, sync, rng, samples);
  std::printf("%s over-the-air accuracy: %.2f%% (%zu samples, %zu rounds "
              "per inference)\n",
              dataset.name.c_str(), 100.0 * accuracy,
              std::min(samples, dataset.test.size()),
              deployment.RoundsPerInference());
  return 0;
}

int Datasets() {
  for (const auto& name : data::AllDatasetNames()) {
    const auto ds = data::MakeByName(
        name, {.train_per_class = 1, .test_per_class = 1});
    std::printf("%-8s %-14s %zu classes, %zux%zu pixels\n", name.c_str(),
                ds.name.c_str(), ds.num_classes, ds.height, ds.width);
  }
  return 0;
}

int Usage() {
  std::puts(
      "usage: metaai_cli <command> [options]\n"
      "  train    --dataset NAME --out FILE [--robust] [--seed N]\n"
      "  eval     --dataset NAME --model FILE\n"
      "  deploy   --model FILE --out FILE\n"
      "  ota      --dataset NAME --model FILE [--samples N] [--seed N]\n"
      "  datasets");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Parse(argc, argv);
    if (args.command == "train") return Train(args);
    if (args.command == "eval") return Eval(args);
    if (args.command == "deploy") return Deploy(args);
    if (args.command == "ota") return Ota(args);
    if (args.command == "datasets") return Datasets();
    return Usage();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
