// Command-line front end for the MetaAI library.
//
//   metaai_cli train      --dataset mnist --out model.txt [--robust]
//   metaai_cli eval       --dataset mnist --model model.txt
//   metaai_cli deploy     --dataset mnist --model model.txt --out patterns.txt
//   metaai_cli ota        --dataset mnist --model model.txt [--samples N]
//                         [--faults SPEC] [--recover]
//   metaai_cli quickstart --dataset mnist [--samples N] [--seed N]
//   metaai_cli datasets
//
// `train` fits the complex LNN digitally (optionally with the §3.5
// robustness schemes) and writes a model file. `eval` reports the digital
// (simulation) accuracy. `deploy` solves the metasurface configuration
// schedules for the default link and writes the controller pattern file.
// `ota` runs the full over-the-air evaluation on the simulated link;
// `--faults SPEC` injects seeded hardware faults (metaai::fault, e.g.
// "stuck=0.1,chain=1e-4,drift=0.01,age=60,burst=0.05:20,seed=7") and
// `--recover` additionally runs the diagnose -> re-solve graceful-
// degradation loop and reports the recovered accuracy.
// `quickstart` chains train -> deploy -> controller budget check -> OTA
// evaluation in one process (the README quickstart path).
//
// Every command accepts `--threads N` (worker count for the metaai::par
// fan-outs; overrides METAAI_THREADS, default hardware concurrency, 1 =
// exact legacy serial path) and telemetry flags (before or after the
// command):
//   --metrics-out FILE   "metaai.obs.v1" JSON snapshot (instruments +
//                        trace spans) written on exit
//   --trace-out FILE     Chrome-trace JSON (open in chrome://tracing or
//                        Perfetto) of the run's spans
//   --probes-out FILE    "metaai.probes.v1" JSONL flight-recorder dump
//                        (EVM, per-subcarrier SNR, sync offsets, solver
//                        curves, phase configs, constellation samples)
// `serve` and `ota` additionally accept `--alerts-out FILE`, writing the
// run's "metaai.alerts.v1" JSONL alert stream from the online health
// monitor (obs/health.h, obs/alerts.h) — empty on healthy runs, drift/
// threshold alerts under injected faults or SLO pressure.
// See README.md "Telemetry".
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "core/metaai.h"
#include "data/datasets.h"
#include "fault/injector.h"
#include "mts/config_cache.h"
#include "obs/alerts.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "rf/geometry.h"
#include "serve/generator.h"
#include "serve/runtime.h"
#include "simd/dispatch.h"

namespace {

using namespace metaai;

/// Unwraps a Result or exits with the typed error on stderr — malformed
/// user input (bad model files, bad --faults specs) terminates with a
/// diagnostic, never a Check abort.
template <typename T>
T OrDie(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.error().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

void OrDie(Result<void> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.error().ToString().c_str());
    std::exit(1);
  }
}

/// Unwraps a Result or exits 2 — the usage-error status. Construction-
/// time rejections (serve::Runtime::TryCreate, fleet::Fleet::TryCreate,
/// workload validation) are misconfigurations on par with an unknown
/// flag, not runtime failures.
template <typename T>
T OrUsageDie(Result<T> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.error().ToString().c_str());
    std::exit(2);
  }
  return std::move(result).value();
}

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it != options.end() ? it->second : fallback;
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      // First bare word is the command; flags may come before or after it.
      if (!args.command.empty()) {
        throw CheckError(std::string("unexpected argument: ") + argv[i]);
      }
      args.command = argv[i];
      continue;
    }
    const std::string key(argv[i] + 2);
    // A flag consumes the next token as its value unless that token is
    // itself a flag or there is none (then it is a boolean flag).
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options.emplace(key, argv[++i]);
    } else {
      args.options.emplace(key, "1");
    }
  }
  return args;
}

/// Dataset selected by --dataset, optionally shrunk by
/// --train-per-class / --test-per-class (smoke tests, quick demos).
data::Dataset LoadDataset(const Args& args) {
  data::DatasetOptions options;
  if (args.Has("train-per-class")) {
    options.train_per_class = std::stoull(args.Get("train-per-class"));
  }
  if (args.Has("test-per-class")) {
    options.test_per_class = std::stoull(args.Get("test-per-class"));
  }
  return data::MakeByName(args.Get("dataset", "mnist"), options);
}

sim::OtaLinkConfig DefaultLink() {
  sim::OtaLinkConfig config;
  config.geometry = {.tx_distance_m = 1.0,
                     .tx_angle_rad = rf::DegToRad(30.0),
                     .rx_distance_m = 3.0,
                     .rx_angle_rad = rf::DegToRad(40.0),
                     .frequency_hz = 5.25e9};
  config.environment.profile = rf::OfficeProfile();
  config.mts_phase_noise_std = 0.05;
  return config;
}

// Optional hardware fault injection: --faults
// "stuck=0.1,chain=1e-4,drift=0.01,age=60,burst=0.05:20,seed=7" realizes
// a seeded fault plan against the surface (see src/fault/plan.h).
std::shared_ptr<const fault::FaultInjector> MakeFaults(const Args& args,
                                                       std::size_t atoms) {
  if (!args.Has("faults")) return nullptr;
  const fault::FaultPlan plan =
      OrDie(fault::TryParseFaultSpec(args.Get("faults")));
  return std::make_shared<const fault::FaultInjector>(plan, atoms);
}

// --depth K stacks K default panels into a SIM cascade (K-1 upstream
// layers at --coupling gain each); depth 1 is the legacy single surface,
// bit for bit.
mts::LayerGraph MakeGraph(const Args& args) {
  const auto depth =
      static_cast<std::size_t>(std::stoull(args.Get("depth", "1")));
  const double coupling = std::stod(args.Get("coupling", "1.3"));
  Check(depth >= 1, "--depth must be >= 1");
  std::vector<mts::PhysicalLayerSpec> specs(depth);
  for (std::size_t l = 1; l < depth; ++l) {
    specs[l].coupling_gain = coupling;
  }
  return mts::LayerGraph(std::move(specs));
}

int Train(const Args& args) {
  const auto dataset = LoadDataset(args);
  const std::string out = args.Get("out", "model.txt");
  Rng rng(std::stoull(args.Get("seed", "42")));
  core::TrainingOptions options;
  if (args.Has("robust")) {
    options.sync_error_injection = true;
    options.sync_gamma_scale_us =
        1.85 * sim::PaperEquivalentLatencyScale(dataset.train.dim);
    options.input_noise_variance = 0.02;
  }
  const auto model = core::TrainModel(dataset.train, options, rng);
  OrDie(core::TrySaveModel(model, out));
  std::printf("trained %s on %s (%zu samples), digital accuracy %.2f%%\n",
              out.c_str(), dataset.name.c_str(), dataset.train.size(),
              100.0 * core::EvaluateDigital(model, dataset.test));
  return 0;
}

int Eval(const Args& args) {
  const auto dataset = LoadDataset(args);
  const auto model = OrDie(core::TryLoadModel(args.Get("model", "model.txt")));
  std::printf("%s digital accuracy: %.2f%%\n", dataset.name.c_str(),
              100.0 * core::EvaluateDigital(model, dataset.test));
  return 0;
}

int Deploy(const Args& args) {
  const auto model = OrDie(core::TryLoadModel(args.Get("model", "model.txt")));
  const std::string out = args.Get("out", "patterns.txt");
  const mts::LayerGraph graph = MakeGraph(args);
  const std::size_t atoms = graph.front().num_atoms();
  const core::Deployment deployment(model, graph, DefaultLink());
  OrDie(core::TrySavePatterns(deployment.schedules(), atoms, out));
  std::printf(
      "solved %zu rounds x %zu symbols (%zu atoms, depth %zu), mean "
      "residual %.4f -> %s\n",
      deployment.schedules().rounds.size(),
      deployment.schedules().rounds[0].size(), atoms, graph.depth(),
      deployment.schedules().mean_relative_residual, out.c_str());
  return 0;
}

int Ota(const Args& args) {
  const auto dataset = LoadDataset(args);
  const auto model = OrDie(core::TryLoadModel(args.Get("model", "model.txt")));
  const auto samples =
      static_cast<std::size_t>(std::stoull(args.Get("samples", "200")));
  const mts::LayerGraph graph = MakeGraph(args);
  sim::OtaLinkConfig link_config = DefaultLink();
  // Faults act on the schedule-driven front panel only.
  const auto faults = MakeFaults(args, graph.front().num_atoms());
  link_config.faults = faults;
  const core::Deployment deployment(model, graph, link_config);
  sim::SyncModelConfig sync_config;
  sync_config.latency_scale =
      sim::PaperEquivalentLatencyScale(dataset.train.dim);
  sync_config.faults = faults;
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  Rng rng(std::stoull(args.Get("seed", "7")));
  if (faults != nullptr) {
    std::printf("faults: %s (%zu stuck atoms)\n",
                fault::FaultSpecString(faults->plan()).c_str(),
                faults->num_stuck());
  }
  const double accuracy =
      deployment.EvaluateAccuracy(dataset.test, sync, rng, samples);
  std::printf("%s over-the-air accuracy: %.2f%% (%zu samples, %zu rounds "
              "per inference)\n",
              dataset.name.c_str(), 100.0 * accuracy,
              std::min(samples, dataset.test.size()),
              deployment.RoundsPerInference());
  if (args.Has("recover") && faults != nullptr) {
    // Diagnose over the air, re-solve over the healthy aperture, and
    // re-evaluate — the graceful-degradation loop the watchdog automates.
    Rng diag_rng(std::stoull(args.Get("seed", "7")) ^ 0xFA17ull);
    const core::FaultDiagnosis diagnosis =
        core::DiagnoseDeployment(deployment, diag_rng);
    std::printf("diagnosis: %zu stuck atoms detected, WDD health %.4f "
                "(%zu probe transmissions)\n",
                diagnosis.num_stuck, diagnosis.wdd_ratio,
                diagnosis.probe_transmissions);
    const core::Deployment recovered =
        core::RecoverFromFaults(model, graph, link_config, {}, diagnosis);
    Rng rec_rng(std::stoull(args.Get("seed", "7")));
    const double recovered_accuracy =
        recovered.EvaluateAccuracy(dataset.test, sync, rec_rng, samples);
    std::printf("recovered over-the-air accuracy: %.2f%%\n",
                100.0 * recovered_accuracy);
  }
  if (args.Has("alerts-out")) {
    // Online health pass: classify the same spot-check set with the
    // soft-decision margin as a label-free accuracy proxy and run the
    // default link-health rules over it. Healthy links emit nothing;
    // injected faults collapse the margins and fire drift alerts.
    obs::health::AlertEngine engine(0);
    for (obs::health::AlertRule& rule : obs::health::DefaultLinkHealthRules()) {
      engine.AddRule(std::move(rule));
    }
    std::vector<obs::health::Alert> alerts;
    Rng health_rng(std::stoull(args.Get("seed", "7")));
    const std::size_t checked = std::min(samples, dataset.test.size());
    // Virtual time advances one OTA frame per inference.
    const double frame_s =
        static_cast<double>(deployment.RoundsPerInference()) *
        static_cast<double>(deployment.schedules().rounds[0].size()) /
        deployment.link().config().symbol_rate_hz;
    for (std::size_t i = 0; i < checked; ++i) {
      const core::SoftDecision decision = deployment.ClassifyWithMargin(
          dataset.test.features[i], 0.0, health_rng);
      engine.Observe(obs::health::kSignalAccuracyProxy,
                     static_cast<double>(i + 1) * frame_s, decision.margin,
                     alerts);
    }
    const std::string path = args.Get("alerts-out");
    if (!obs::health::WriteAlertsFile(alerts, path)) {
      std::fprintf(stderr, "error: cannot write alerts to %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %zu alerts to %s (%zu inferences monitored)\n",
                alerts.size(), path.c_str(), checked);
  }
  return 0;
}

int Quickstart(const Args& args) {
  const auto dataset = LoadDataset(args);
  const auto samples =
      static_cast<std::size_t>(std::stoull(args.Get("samples", "50")));
  Rng rng(std::stoull(args.Get("seed", "42")));

  // Robust digital training (§3.5: CDFA sync injection + noise).
  core::TrainingOptions training;
  training.sync_error_injection = true;
  training.sync_gamma_scale_us =
      1.85 * sim::PaperEquivalentLatencyScale(dataset.train.dim);
  training.input_noise_variance = 0.02;
  const auto model = core::TrainModel(dataset.train, training, rng);
  std::printf("digital accuracy: %.2f%%\n",
              100.0 * core::EvaluateDigital(model, dataset.test));

  // Deploy on the default link and check the pattern-switching budget.
  const mts::Metasurface surface{mts::MetasurfaceSpec{}};
  const core::Deployment deployment(model, surface, DefaultLink());
  const auto& rounds = deployment.schedules().rounds;
  const std::size_t patterns = rounds.size() * rounds.front().size();
  const mts::Controller controller;
  const double rate = deployment.link().config().symbol_rate_hz;
  const double duration = static_cast<double>(patterns) / rate;
  std::printf("deployed %zu rounds x %zu symbols, residual %.4f\n",
              rounds.size(), rounds.front().size(),
              deployment.schedules().mean_relative_residual);
  std::printf("controller: budget %s at %.0f sym/s, %.3f mJ per inference\n",
              controller.CanSustain(rate, 2) ? "ok" : "EXCEEDED", rate,
              1e3 * controller.ScheduleEnergy(patterns, duration));

  // Over-the-air evaluation under the CDFA sync model.
  sim::SyncModelConfig sync_config;
  sync_config.latency_scale =
      sim::PaperEquivalentLatencyScale(dataset.train.dim);
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  const double ota =
      deployment.EvaluateAccuracy(dataset.test, sync, rng, samples);
  std::printf("%s over-the-air accuracy: %.2f%% (%zu samples)\n",
              dataset.name.c_str(), 100.0 * ota,
              std::min(samples, dataset.test.size()));
  return 0;
}

// Batched multi-tenant serving demo: N clients sharing one surface
// (and one trained model, so the solver-result cache hits for every
// client after the first), Poisson arrivals, TDMA frame batching.
int Serve(const Args& args) {
  const auto dataset = LoadDataset(args);
  const auto num_clients =
      static_cast<std::size_t>(std::stoull(args.Get("clients", "3")));
  const double duration_s = std::stod(args.Get("duration", "0.2"));
  const double rate_hz = std::stod(args.Get("rate", "50"));
  Check(num_clients >= 1, "--clients must be >= 1");
  Rng rng(std::stoull(args.Get("seed", "42")));

  core::TrainingOptions training;
  training.sync_error_injection = true;
  training.sync_gamma_scale_us =
      1.85 * sim::PaperEquivalentLatencyScale(dataset.train.dim);
  training.input_noise_variance = 0.02;
  const auto model = core::TrainModel(dataset.train, training, rng);

  const mts::LayerGraph graph =
      mts::LayerGraph::FromSurface(mts::Metasurface{mts::MetasurfaceSpec{}});
  const auto cache = std::make_shared<mts::ConfigCache>();
  std::vector<serve::ClientSpec> clients;
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.push_back({.name = "client" + std::to_string(c),
                       .model = model,
                       .link = DefaultLink(),
                       .deployment = {}});
  }
  serve::RuntimeOptions options;
  options.queue_capacity = static_cast<std::size_t>(
      std::stoull(args.Get("queue-capacity", "64")));
  options.frame_budget =
      static_cast<std::size_t>(std::stoull(args.Get("frame-budget", "8")));
  if (!args.Has("no-cache")) options.cache = cache;
  const serve::Runtime runtime = OrUsageDie(
      serve::Runtime::TryCreate(graph, std::move(clients), options));

  const std::vector<serve::ClientWorkload> workload(
      num_clients, {.arrival_rate_hz = rate_hz, .samples = &dataset.test});
  const auto requests =
      OrDie(serve::GenerateWorkload(workload, duration_s, rng));

  sim::SyncModelConfig sync_config;
  sync_config.latency_scale =
      sim::PaperEquivalentLatencyScale(dataset.train.dim);
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  const serve::ServeResult result =
      args.Has("unbatched") ? runtime.RunUnbatched(requests, sync, rng)
                            : runtime.Run(requests, sync, rng);
  const serve::ServeStats& stats = result.stats;
  std::printf(
      "served %zu/%zu requests from %zu clients in %.4f s virtual "
      "(%zu frames%s)\n",
      stats.served, stats.submitted, num_clients, stats.virtual_duration_s,
      stats.frames, args.Has("unbatched") ? ", unbatched" : "");
  std::printf("queue wait p50/p99: %.1f/%.1f us, latency p50/p99: "
              "%.1f/%.1f us\n",
              1e6 * stats.queue_wait_p50_s, 1e6 * stats.queue_wait_p99_s,
              1e6 * stats.latency_p50_s, 1e6 * stats.latency_p99_s);
  if (stats.rejected() > 0) {
    std::printf("rejected %zu (queue_full %zu, bad_input %zu, "
                "unknown_client %zu)\n",
                stats.rejected(), stats.rejected_queue_full,
                stats.rejected_bad_input, stats.rejected_unknown_client);
  }
  if (stats.labeled > 0) {
    std::printf("served accuracy: %.2f%% (%zu labeled)\n",
                100.0 * static_cast<double>(stats.correct) /
                    static_cast<double>(stats.labeled),
                stats.labeled);
  }
  std::printf("health: %zu alerts (%zu drift), margin p50 %.3f\n",
              stats.alerts, stats.drift_alerts, stats.margin_p50);
  if (args.Has("alerts-out")) {
    const std::string path = args.Get("alerts-out");
    if (!obs::health::WriteAlertsFile(result.alerts, path)) {
      std::fprintf(stderr, "error: cannot write alerts to %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %zu alerts to %s\n", result.alerts.size(),
                path.c_str());
  }
  const mts::ConfigCache::Stats cache_stats = cache->stats();
  std::printf("solver cache: %llu hits, %llu misses (hit rate %.0f%%)\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              100.0 * cache_stats.HitRate());
  return 0;
}

// Sharded fleet demo: K shards behind the fleet front door, T tenants
// bin-packed onto them by switch-rate demand, served against a
// composable WorkloadSpec trace (--pareto/--diurnal/--flash stressors),
// with optional hot migration (--migrate T:S:C).
int FleetCmd(const Args& args) {
  const auto dataset = LoadDataset(args);
  const auto num_shards =
      static_cast<std::size_t>(std::stoull(args.Get("shards", "2")));
  const auto num_tenants =
      static_cast<std::size_t>(std::stoull(args.Get("tenants", "4")));
  const double duration_s = std::stod(args.Get("duration", "0.2"));
  const double rate_hz = std::stod(args.Get("rate", "50"));
  Check(num_shards >= 1, "--shards must be >= 1");
  Check(num_tenants >= 1, "--tenants must be >= 1");
  Rng rng(std::stoull(args.Get("seed", "42")));

  core::TrainingOptions training;
  training.sync_error_injection = true;
  training.sync_gamma_scale_us =
      1.85 * sim::PaperEquivalentLatencyScale(dataset.train.dim);
  training.input_noise_variance = 0.02;
  const auto model = core::TrainModel(dataset.train, training, rng);

  // Identical shards on the default band (--depth/--coupling shape each
  // shard's cascade); identical tenants, so the shared fleet cache
  // deduplicates every solve after the first.
  std::vector<fleet::ShardSpec> shards;
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards.push_back(
        {.name = "shard" + std::to_string(s), .graph = MakeGraph(args)});
  }
  std::vector<fleet::TenantSpec> tenants;
  for (std::size_t t = 0; t < num_tenants; ++t) {
    serve::ClientSpec client{.name = "tenant" + std::to_string(t),
                             .model = model,
                             .link = DefaultLink(),
                             .deployment = {}};
    client.slo_latency_s = std::stod(args.Get("slo", "0"));
    tenants.push_back(
        {.client = std::move(client), .arrival_rate_hz = rate_hz});
  }

  fleet::FleetOptions options;
  options.runtime.queue_capacity = static_cast<std::size_t>(
      std::stoull(args.Get("queue-capacity", "64")));
  options.runtime.frame_budget =
      static_cast<std::size_t>(std::stoull(args.Get("frame-budget", "8")));
  if (args.Has("migrate")) {
    // --migrate TENANT:SHARD:CUTOVER_S schedules one hot migration.
    std::size_t tenant = 0, to_shard = 0;
    double cutover_s = 0.0;
    if (std::sscanf(args.Get("migrate").c_str(), "%zu:%zu:%lf", &tenant,
                    &to_shard, &cutover_s) != 3) {
      std::fprintf(stderr,
                   "error: --migrate wants TENANT:SHARD:CUTOVER_S, got %s\n",
                   args.Get("migrate").c_str());
      return 2;
    }
    options.migrations.push_back(
        {.tenant = tenant, .to_shard = to_shard, .cutover_s = cutover_s});
  }
  const fleet::Fleet cluster = OrUsageDie(fleet::Fleet::TryCreate(
      std::move(shards), std::move(tenants), std::move(options)));
  for (std::size_t t = 0; t < cluster.num_tenants(); ++t) {
    const fleet::TenantPlacement& p = cluster.placement()[t];
    std::printf("placed %s on %s (%.0f patterns/s)%s\n",
                cluster.tenant_name(t).c_str(),
                cluster.shard_name(p.shard).c_str(), p.demand_patterns_hz,
                p.migrates
                    ? (" -> " + cluster.shard_name(p.to_shard) + " at t=" +
                       std::to_string(p.cutover_s) + "s")
                          .c_str()
                    : "");
  }

  // Composable open-loop trace: every tenant gets the same stressors.
  serve::TenantWorkload base{.arrival_rate_hz = rate_hz,
                             .samples = &dataset.test};
  if (args.Has("pareto")) base.pareto_shape = std::stod(args.Get("pareto"));
  if (args.Has("diurnal")) {
    // --diurnal AMPLITUDE:PERIOD_S
    if (std::sscanf(args.Get("diurnal").c_str(), "%lf:%lf",
                    &base.diurnal_amplitude, &base.diurnal_period_s) != 2) {
      std::fprintf(stderr,
                   "error: --diurnal wants AMPLITUDE:PERIOD_S, got %s\n",
                   args.Get("diurnal").c_str());
      return 2;
    }
  }
  if (args.Has("flash")) {
    // --flash START_S:DURATION_S:MULTIPLIER
    serve::FlashCrowd crowd;
    if (std::sscanf(args.Get("flash").c_str(), "%lf:%lf:%lf", &crowd.start_s,
                    &crowd.duration_s, &crowd.multiplier) != 3) {
      std::fprintf(
          stderr,
          "error: --flash wants START_S:DURATION_S:MULTIPLIER, got %s\n",
          args.Get("flash").c_str());
      return 2;
    }
    base.flash_crowds.push_back(crowd);
  }
  serve::WorkloadSpec spec;
  spec.tenants.assign(num_tenants, base);
  spec.duration_s = duration_s;
  const auto requests = OrUsageDie(serve::GenerateWorkload(spec, rng));

  sim::SyncModelConfig sync_config;
  sync_config.latency_scale =
      sim::PaperEquivalentLatencyScale(dataset.train.dim);
  const sim::SyncModel sync(sim::SyncMode::kCdfa, sync_config);
  const fleet::FleetResult result = cluster.Run(requests, sync, rng);
  const fleet::FleetStats& stats = result.stats;
  std::printf(
      "fleet served %zu/%zu requests from %zu tenants on %zu shards in "
      "%.4f s virtual (%zu frames)\n",
      stats.served, stats.submitted, cluster.num_tenants(), cluster.num_shards(),
      stats.virtual_duration_s, stats.frames);
  std::printf("latency p50/p99/p999: %.1f/%.1f/%.1f us, goodput %.1f rps "
              "under SLO (%zu within, %zu violations)\n",
              1e6 * stats.latency_p50_s, 1e6 * stats.latency_p99_s,
              1e6 * stats.latency_p999_s, stats.goodput_slo_rps,
              stats.slo_within, stats.slo_violations);
  if (stats.rejected() > 0) {
    std::printf("rejected %zu (queue_full %zu, bad_input %zu, "
                "unknown_tenant %zu)\n",
                stats.rejected(), stats.rejected_queue_full,
                stats.rejected_bad_input, stats.rejected_unknown_tenant);
  }
  for (const fleet::ShardRollup& shard : stats.shards) {
    std::printf("  %s: served %zu, frames %zu, latency p99 %.1f us\n",
                shard.name.c_str(), shard.stats.served, shard.stats.frames,
                1e6 * shard.stats.latency_p99_s);
  }
  std::printf("health: %zu alerts (%zu drift)\n", stats.alerts,
              stats.drift_alerts);
  if (args.Has("alerts-out")) {
    const std::string path = args.Get("alerts-out");
    if (!obs::health::WriteAlertsFile(result.alerts, path)) {
      std::fprintf(stderr, "error: cannot write alerts to %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %zu alerts to %s\n", result.alerts.size(),
                path.c_str());
  }
  const mts::ConfigCache::Stats cache_stats = cluster.cache()->stats();
  std::printf("solver cache: %llu hits, %llu misses (hit rate %.0f%%)\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(cache_stats.misses),
              100.0 * cache_stats.HitRate());
  return 0;
}

int Datasets() {
  for (const auto& name : data::AllDatasetNames()) {
    const auto ds = data::MakeByName(
        name, {.train_per_class = 1, .test_per_class = 1});
    std::printf("%-8s %-14s %zu classes, %zux%zu pixels\n", name.c_str(),
                ds.name.c_str(), ds.num_classes, ds.height, ds.width);
  }
  return 0;
}

int Usage() {
  std::puts(
      "usage: metaai_cli <command> [options] [--threads N] [--simd LEVEL]\n"
      "                  [--metrics-out FILE] [--trace-out FILE]\n"
      "                  [--probes-out FILE]\n"
      "  train      --dataset NAME --out FILE [--robust] [--seed N]\n"
      "  eval       --dataset NAME --model FILE\n"
      "  deploy     --model FILE --out FILE [--depth K] [--coupling G]\n"
      "  ota        --dataset NAME --model FILE [--samples N] [--seed N]\n"
      "             [--faults SPEC] [--recover] [--alerts-out FILE]\n"
      "             [--depth K] [--coupling G]\n"
      "  serve      --dataset NAME [--clients N] [--duration S] [--rate HZ]\n"
      "             [--queue-capacity N] [--frame-budget N] [--no-cache]\n"
      "             [--unbatched] [--seed N] [--alerts-out FILE]\n"
      "  fleet      --dataset NAME [--shards K] [--tenants N] [--duration S]\n"
      "             [--rate HZ] [--slo S] [--pareto ALPHA] [--diurnal A:P]\n"
      "             [--flash S:D:M] [--migrate T:S:C] [--depth K]\n"
      "             [--queue-capacity N] [--frame-budget N] [--seed N]\n"
      "             [--alerts-out FILE]\n"
      "  quickstart --dataset NAME [--samples N] [--seed N]\n"
      "  datasets\n"
      "All dataset commands accept --train-per-class N / --test-per-class N\n"
      "to shrink the synthetic datasets (quick demos, smoke tests).\n"
      "`serve` runs the batched multi-tenant serving runtime: N clients\n"
      "share the surface in TDMA frames with fair slot allocation, bounded\n"
      "queues and a solver-result cache (--no-cache disables it;\n"
      "--unbatched serves one request per frame as a naive baseline).\n"
      "--faults injects seeded hardware faults, e.g.\n"
      "\"stuck=0.1,chain=1e-4,drift=0.01,age=60,burst=0.05:20,seed=7\"\n"
      "(stuck PIN drivers, shift-chain bit flips, aging phase drift, sync\n"
      "bursts); --recover then diagnoses the surface over the air and\n"
      "re-solves the mapping on the healthy aperture.\n"
      "--threads sets the worker count for parallel fan-outs (overrides\n"
      "METAAI_THREADS; default: hardware concurrency; 1 = serial legacy\n"
      "path; results are identical for any value).\n"
      "--simd pins the kernel dispatch level: off|scalar|auto|avx2\n"
      "(overrides METAAI_SIMD; default auto-detects; off forces the\n"
      "portable scalar path, bitwise identical to the pre-SIMD code;\n"
      "invalid --simd or METAAI_SIMD values are hard errors).\n"
      "--depth stacks K programmable surfaces as a SIM cascade (deploy,\n"
      "ota); the K-1 upstream layers each contribute --coupling focus\n"
      "gain (default 1.3). --depth 1 is the single-panel legacy path.\n"
      "--metrics-out writes the run's telemetry (metaai.obs.v1 JSON),\n"
      "--trace-out a Chrome-trace JSON of the spans (chrome://tracing /\n"
      "Perfetto), --probes-out a metaai.probes.v1 JSONL flight-recorder\n"
      "dump of the physical-layer probes.\n"
      "--alerts-out (serve, ota, fleet) writes the online health monitor's\n"
      "metaai.alerts.v1 JSONL alert stream (empty on healthy runs).\n"
      "`fleet` runs K serve runtimes behind one front door: tenants are\n"
      "bin-packed onto shards by switch-rate demand, requests route on the\n"
      "shared virtual clock, and --migrate TENANT:SHARD:CUTOVER_S flips a\n"
      "tenant to another shard mid-trace (warmed via the shared solver\n"
      "cache). --pareto ALPHA draws heavy-tailed inter-arrivals, --diurnal\n"
      "AMPLITUDE:PERIOD_S adds a sinusoidal rate wave and --flash\n"
      "START_S:DURATION_S:MULTIPLIER a transient crowd; misconfigured\n"
      "fleets and workloads exit with status 2.");
  return 2;
}

int Dispatch(const Args& args) {
  if (args.command == "train") return Train(args);
  if (args.command == "eval") return Eval(args);
  if (args.command == "deploy") return Deploy(args);
  if (args.command == "ota") return Ota(args);
  if (args.command == "serve") return Serve(args);
  if (args.command == "fleet") return FleetCmd(args);
  if (args.command == "quickstart") return Quickstart(args);
  if (args.command == "datasets") return Datasets();
  return Usage();
}

/// Every flag any command accepts. A flag outside this list is a hard
/// error — silently ignoring a typo ("--sample 10") would quietly run
/// with defaults.
constexpr std::array<std::string_view, 32> kKnownFlags = {
    "dataset",         "out",            "model",        "samples",
    "seed",            "robust",         "recover",      "faults",
    "threads",         "metrics-out",    "trace-out",    "probes-out",
    "train-per-class", "test-per-class", "clients",      "duration",
    "rate",            "queue-capacity", "frame-budget", "no-cache",
    "unbatched",       "alerts-out",     "simd",         "depth",
    "coupling",        "shards",         "tenants",      "pareto",
    "diurnal",         "flash",          "migrate",      "slo",
};

bool FlagKnown(const std::string& key) {
  for (const std::string_view known : kKnownFlags) {
    if (key == known) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = Parse(argc, argv);
    for (const auto& [key, value] : args.options) {
      if (!FlagKnown(key)) {
        std::fprintf(stderr,
                     "error: unknown flag --%s\n"
                     "run metaai_cli with no arguments for usage\n",
                     key.c_str());
        return 2;
      }
    }
    if (args.Has("threads")) {
      const int threads = std::stoi(args.Get("threads"));
      Check(threads >= 1 && threads <= par::kMaxThreads,
            "--threads must be in [1, 256]");
      par::SetDefaultThreadCount(threads);
    }
    // Eager METAAI_SIMD validation: a typo'd value must fail here with a
    // clean diagnostic instead of Check-aborting at the first kernel
    // call deep inside a solve (--simd, when given, overrides it below).
    if (const Result<void> env = simd::ValidateEnvironment(); !env.ok()) {
      std::fprintf(stderr, "error: %s\n", env.error().ToString().c_str());
      return 2;
    }
    if (args.Has("simd")) {
      const Result<simd::Level> level = simd::ParseLevel(args.Get("simd"));
      if (!level.ok()) {
        std::fprintf(stderr, "error: --simd %s: %s\n",
                     args.Get("simd").c_str(),
                     level.error().ToString().c_str());
        return 2;
      }
      simd::ForceLevel(level.value());
    }
    const std::string metrics_out = args.Get("metrics-out");
    const std::string trace_out = args.Get("trace-out");
    const std::string probes_out = args.Get("probes-out");
    if (metrics_out.empty() && trace_out.empty() && probes_out.empty()) {
      return Dispatch(args);
    }

    obs::Registry registry;
    obs::Tracer tracer;
    obs::ProbeSink probes;
    const obs::ScopedRegistry scoped_registry(&registry);
    const obs::ScopedTracer scoped_tracer(&tracer);
    const obs::ScopedProbeSink scoped_probes(
        probes_out.empty() ? nullptr : &probes);
    const int status = Dispatch(args);
    if (!metrics_out.empty() &&
        !obs::WriteJsonFile(registry, metrics_out, &tracer)) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n",
                   metrics_out.c_str());
      return 1;
    }
    if (!trace_out.empty() &&
        !obs::WriteChromeTraceFile(tracer, trace_out)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_out.c_str());
      return 1;
    }
    if (!probes_out.empty() && !obs::WriteProbesFile(probes, probes_out)) {
      std::fprintf(stderr, "error: cannot write probes to %s\n",
                   probes_out.c_str());
      return 1;
    }
    if (args.command == "quickstart" && status == 0) {
      if (!metrics_out.empty()) {
        std::printf("wrote metrics to %s\n", metrics_out.c_str());
      }
      if (!trace_out.empty()) {
        std::printf("wrote Chrome trace to %s\n", trace_out.c_str());
      }
      if (!probes_out.empty()) {
        std::printf("wrote %zu probes to %s\n", probes.size(),
                    probes_out.c_str());
      }
    }
    return status;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
