file(REMOVE_RECURSE
  "libmetaai_data.a"
)
