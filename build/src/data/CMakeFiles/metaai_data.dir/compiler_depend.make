# Empty compiler generated dependencies file for metaai_data.
# This may be replaced when dependencies are built.
