file(REMOVE_RECURSE
  "CMakeFiles/metaai_data.dir/datasets.cc.o"
  "CMakeFiles/metaai_data.dir/datasets.cc.o.d"
  "CMakeFiles/metaai_data.dir/encoding.cc.o"
  "CMakeFiles/metaai_data.dir/encoding.cc.o.d"
  "CMakeFiles/metaai_data.dir/multisensor.cc.o"
  "CMakeFiles/metaai_data.dir/multisensor.cc.o.d"
  "CMakeFiles/metaai_data.dir/synth_image.cc.o"
  "CMakeFiles/metaai_data.dir/synth_image.cc.o.d"
  "libmetaai_data.a"
  "libmetaai_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaai_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
