file(REMOVE_RECURSE
  "libmetaai_common.a"
)
