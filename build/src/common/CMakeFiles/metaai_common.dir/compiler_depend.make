# Empty compiler generated dependencies file for metaai_common.
# This may be replaced when dependencies are built.
