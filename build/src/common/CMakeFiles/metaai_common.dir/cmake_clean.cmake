file(REMOVE_RECURSE
  "CMakeFiles/metaai_common.dir/rng.cc.o"
  "CMakeFiles/metaai_common.dir/rng.cc.o.d"
  "CMakeFiles/metaai_common.dir/stats.cc.o"
  "CMakeFiles/metaai_common.dir/stats.cc.o.d"
  "CMakeFiles/metaai_common.dir/table.cc.o"
  "CMakeFiles/metaai_common.dir/table.cc.o.d"
  "libmetaai_common.a"
  "libmetaai_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaai_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
