file(REMOVE_RECURSE
  "libmetaai_rf.a"
)
