file(REMOVE_RECURSE
  "CMakeFiles/metaai_rf.dir/antenna.cc.o"
  "CMakeFiles/metaai_rf.dir/antenna.cc.o.d"
  "CMakeFiles/metaai_rf.dir/channel.cc.o"
  "CMakeFiles/metaai_rf.dir/channel.cc.o.d"
  "CMakeFiles/metaai_rf.dir/fft.cc.o"
  "CMakeFiles/metaai_rf.dir/fft.cc.o.d"
  "CMakeFiles/metaai_rf.dir/modulation.cc.o"
  "CMakeFiles/metaai_rf.dir/modulation.cc.o.d"
  "CMakeFiles/metaai_rf.dir/ofdm.cc.o"
  "CMakeFiles/metaai_rf.dir/ofdm.cc.o.d"
  "CMakeFiles/metaai_rf.dir/signal.cc.o"
  "CMakeFiles/metaai_rf.dir/signal.cc.o.d"
  "libmetaai_rf.a"
  "libmetaai_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaai_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
