# Empty compiler generated dependencies file for metaai_rf.
# This may be replaced when dependencies are built.
