
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/antenna.cc" "src/rf/CMakeFiles/metaai_rf.dir/antenna.cc.o" "gcc" "src/rf/CMakeFiles/metaai_rf.dir/antenna.cc.o.d"
  "/root/repo/src/rf/channel.cc" "src/rf/CMakeFiles/metaai_rf.dir/channel.cc.o" "gcc" "src/rf/CMakeFiles/metaai_rf.dir/channel.cc.o.d"
  "/root/repo/src/rf/fft.cc" "src/rf/CMakeFiles/metaai_rf.dir/fft.cc.o" "gcc" "src/rf/CMakeFiles/metaai_rf.dir/fft.cc.o.d"
  "/root/repo/src/rf/modulation.cc" "src/rf/CMakeFiles/metaai_rf.dir/modulation.cc.o" "gcc" "src/rf/CMakeFiles/metaai_rf.dir/modulation.cc.o.d"
  "/root/repo/src/rf/ofdm.cc" "src/rf/CMakeFiles/metaai_rf.dir/ofdm.cc.o" "gcc" "src/rf/CMakeFiles/metaai_rf.dir/ofdm.cc.o.d"
  "/root/repo/src/rf/signal.cc" "src/rf/CMakeFiles/metaai_rf.dir/signal.cc.o" "gcc" "src/rf/CMakeFiles/metaai_rf.dir/signal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/metaai_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
