
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/energy_model.cc" "src/sim/CMakeFiles/metaai_sim.dir/energy_model.cc.o" "gcc" "src/sim/CMakeFiles/metaai_sim.dir/energy_model.cc.o.d"
  "/root/repo/src/sim/environment.cc" "src/sim/CMakeFiles/metaai_sim.dir/environment.cc.o" "gcc" "src/sim/CMakeFiles/metaai_sim.dir/environment.cc.o.d"
  "/root/repo/src/sim/link.cc" "src/sim/CMakeFiles/metaai_sim.dir/link.cc.o" "gcc" "src/sim/CMakeFiles/metaai_sim.dir/link.cc.o.d"
  "/root/repo/src/sim/sync.cc" "src/sim/CMakeFiles/metaai_sim.dir/sync.cc.o" "gcc" "src/sim/CMakeFiles/metaai_sim.dir/sync.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mts/CMakeFiles/metaai_mts.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/metaai_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metaai_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
