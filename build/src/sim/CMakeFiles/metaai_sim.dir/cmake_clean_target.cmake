file(REMOVE_RECURSE
  "libmetaai_sim.a"
)
