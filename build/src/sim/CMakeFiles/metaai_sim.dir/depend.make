# Empty dependencies file for metaai_sim.
# This may be replaced when dependencies are built.
