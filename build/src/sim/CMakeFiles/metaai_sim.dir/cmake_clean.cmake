file(REMOVE_RECURSE
  "CMakeFiles/metaai_sim.dir/energy_model.cc.o"
  "CMakeFiles/metaai_sim.dir/energy_model.cc.o.d"
  "CMakeFiles/metaai_sim.dir/environment.cc.o"
  "CMakeFiles/metaai_sim.dir/environment.cc.o.d"
  "CMakeFiles/metaai_sim.dir/link.cc.o"
  "CMakeFiles/metaai_sim.dir/link.cc.o.d"
  "CMakeFiles/metaai_sim.dir/sync.cc.o"
  "CMakeFiles/metaai_sim.dir/sync.cc.o.d"
  "libmetaai_sim.a"
  "libmetaai_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaai_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
