file(REMOVE_RECURSE
  "libmetaai_core_lib.a"
)
