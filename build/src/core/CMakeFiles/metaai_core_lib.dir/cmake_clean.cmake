file(REMOVE_RECURSE
  "CMakeFiles/metaai_core_lib.dir/channel_estimation.cc.o"
  "CMakeFiles/metaai_core_lib.dir/channel_estimation.cc.o.d"
  "CMakeFiles/metaai_core_lib.dir/controller_service.cc.o"
  "CMakeFiles/metaai_core_lib.dir/controller_service.cc.o.d"
  "CMakeFiles/metaai_core_lib.dir/deployment.cc.o"
  "CMakeFiles/metaai_core_lib.dir/deployment.cc.o.d"
  "CMakeFiles/metaai_core_lib.dir/fusion.cc.o"
  "CMakeFiles/metaai_core_lib.dir/fusion.cc.o.d"
  "CMakeFiles/metaai_core_lib.dir/hybrid.cc.o"
  "CMakeFiles/metaai_core_lib.dir/hybrid.cc.o.d"
  "CMakeFiles/metaai_core_lib.dir/pnn_baseline.cc.o"
  "CMakeFiles/metaai_core_lib.dir/pnn_baseline.cc.o.d"
  "CMakeFiles/metaai_core_lib.dir/recalibration.cc.o"
  "CMakeFiles/metaai_core_lib.dir/recalibration.cc.o.d"
  "CMakeFiles/metaai_core_lib.dir/scheduler.cc.o"
  "CMakeFiles/metaai_core_lib.dir/scheduler.cc.o.d"
  "CMakeFiles/metaai_core_lib.dir/serialization.cc.o"
  "CMakeFiles/metaai_core_lib.dir/serialization.cc.o.d"
  "CMakeFiles/metaai_core_lib.dir/training.cc.o"
  "CMakeFiles/metaai_core_lib.dir/training.cc.o.d"
  "CMakeFiles/metaai_core_lib.dir/weight_mapper.cc.o"
  "CMakeFiles/metaai_core_lib.dir/weight_mapper.cc.o.d"
  "libmetaai_core_lib.a"
  "libmetaai_core_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaai_core_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
