# Empty compiler generated dependencies file for metaai_core_lib.
# This may be replaced when dependencies are built.
