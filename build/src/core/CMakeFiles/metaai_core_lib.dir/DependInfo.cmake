
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/channel_estimation.cc" "src/core/CMakeFiles/metaai_core_lib.dir/channel_estimation.cc.o" "gcc" "src/core/CMakeFiles/metaai_core_lib.dir/channel_estimation.cc.o.d"
  "/root/repo/src/core/controller_service.cc" "src/core/CMakeFiles/metaai_core_lib.dir/controller_service.cc.o" "gcc" "src/core/CMakeFiles/metaai_core_lib.dir/controller_service.cc.o.d"
  "/root/repo/src/core/deployment.cc" "src/core/CMakeFiles/metaai_core_lib.dir/deployment.cc.o" "gcc" "src/core/CMakeFiles/metaai_core_lib.dir/deployment.cc.o.d"
  "/root/repo/src/core/fusion.cc" "src/core/CMakeFiles/metaai_core_lib.dir/fusion.cc.o" "gcc" "src/core/CMakeFiles/metaai_core_lib.dir/fusion.cc.o.d"
  "/root/repo/src/core/hybrid.cc" "src/core/CMakeFiles/metaai_core_lib.dir/hybrid.cc.o" "gcc" "src/core/CMakeFiles/metaai_core_lib.dir/hybrid.cc.o.d"
  "/root/repo/src/core/pnn_baseline.cc" "src/core/CMakeFiles/metaai_core_lib.dir/pnn_baseline.cc.o" "gcc" "src/core/CMakeFiles/metaai_core_lib.dir/pnn_baseline.cc.o.d"
  "/root/repo/src/core/recalibration.cc" "src/core/CMakeFiles/metaai_core_lib.dir/recalibration.cc.o" "gcc" "src/core/CMakeFiles/metaai_core_lib.dir/recalibration.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/metaai_core_lib.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/metaai_core_lib.dir/scheduler.cc.o.d"
  "/root/repo/src/core/serialization.cc" "src/core/CMakeFiles/metaai_core_lib.dir/serialization.cc.o" "gcc" "src/core/CMakeFiles/metaai_core_lib.dir/serialization.cc.o.d"
  "/root/repo/src/core/training.cc" "src/core/CMakeFiles/metaai_core_lib.dir/training.cc.o" "gcc" "src/core/CMakeFiles/metaai_core_lib.dir/training.cc.o.d"
  "/root/repo/src/core/weight_mapper.cc" "src/core/CMakeFiles/metaai_core_lib.dir/weight_mapper.cc.o" "gcc" "src/core/CMakeFiles/metaai_core_lib.dir/weight_mapper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/metaai_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/metaai_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/metaai_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/mts/CMakeFiles/metaai_mts.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/metaai_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metaai_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
