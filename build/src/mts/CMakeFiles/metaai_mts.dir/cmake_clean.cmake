file(REMOVE_RECURSE
  "CMakeFiles/metaai_mts.dir/beam_scan.cc.o"
  "CMakeFiles/metaai_mts.dir/beam_scan.cc.o.d"
  "CMakeFiles/metaai_mts.dir/config_solver.cc.o"
  "CMakeFiles/metaai_mts.dir/config_solver.cc.o.d"
  "CMakeFiles/metaai_mts.dir/controller.cc.o"
  "CMakeFiles/metaai_mts.dir/controller.cc.o.d"
  "CMakeFiles/metaai_mts.dir/energy_detector.cc.o"
  "CMakeFiles/metaai_mts.dir/energy_detector.cc.o.d"
  "CMakeFiles/metaai_mts.dir/meta_atom.cc.o"
  "CMakeFiles/metaai_mts.dir/meta_atom.cc.o.d"
  "CMakeFiles/metaai_mts.dir/metasurface.cc.o"
  "CMakeFiles/metaai_mts.dir/metasurface.cc.o.d"
  "CMakeFiles/metaai_mts.dir/wdd.cc.o"
  "CMakeFiles/metaai_mts.dir/wdd.cc.o.d"
  "libmetaai_mts.a"
  "libmetaai_mts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaai_mts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
