# Empty compiler generated dependencies file for metaai_mts.
# This may be replaced when dependencies are built.
