file(REMOVE_RECURSE
  "libmetaai_mts.a"
)
