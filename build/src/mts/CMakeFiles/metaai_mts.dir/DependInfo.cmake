
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mts/beam_scan.cc" "src/mts/CMakeFiles/metaai_mts.dir/beam_scan.cc.o" "gcc" "src/mts/CMakeFiles/metaai_mts.dir/beam_scan.cc.o.d"
  "/root/repo/src/mts/config_solver.cc" "src/mts/CMakeFiles/metaai_mts.dir/config_solver.cc.o" "gcc" "src/mts/CMakeFiles/metaai_mts.dir/config_solver.cc.o.d"
  "/root/repo/src/mts/controller.cc" "src/mts/CMakeFiles/metaai_mts.dir/controller.cc.o" "gcc" "src/mts/CMakeFiles/metaai_mts.dir/controller.cc.o.d"
  "/root/repo/src/mts/energy_detector.cc" "src/mts/CMakeFiles/metaai_mts.dir/energy_detector.cc.o" "gcc" "src/mts/CMakeFiles/metaai_mts.dir/energy_detector.cc.o.d"
  "/root/repo/src/mts/meta_atom.cc" "src/mts/CMakeFiles/metaai_mts.dir/meta_atom.cc.o" "gcc" "src/mts/CMakeFiles/metaai_mts.dir/meta_atom.cc.o.d"
  "/root/repo/src/mts/metasurface.cc" "src/mts/CMakeFiles/metaai_mts.dir/metasurface.cc.o" "gcc" "src/mts/CMakeFiles/metaai_mts.dir/metasurface.cc.o.d"
  "/root/repo/src/mts/wdd.cc" "src/mts/CMakeFiles/metaai_mts.dir/wdd.cc.o" "gcc" "src/mts/CMakeFiles/metaai_mts.dir/wdd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rf/CMakeFiles/metaai_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metaai_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
