# Empty compiler generated dependencies file for metaai_nn.
# This may be replaced when dependencies are built.
