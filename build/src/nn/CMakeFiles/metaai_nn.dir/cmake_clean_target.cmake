file(REMOVE_RECURSE
  "libmetaai_nn.a"
)
