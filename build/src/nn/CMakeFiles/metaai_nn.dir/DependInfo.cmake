
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/complex_linear.cc" "src/nn/CMakeFiles/metaai_nn.dir/complex_linear.cc.o" "gcc" "src/nn/CMakeFiles/metaai_nn.dir/complex_linear.cc.o.d"
  "/root/repo/src/nn/conv_net.cc" "src/nn/CMakeFiles/metaai_nn.dir/conv_net.cc.o" "gcc" "src/nn/CMakeFiles/metaai_nn.dir/conv_net.cc.o.d"
  "/root/repo/src/nn/discrete_nn.cc" "src/nn/CMakeFiles/metaai_nn.dir/discrete_nn.cc.o" "gcc" "src/nn/CMakeFiles/metaai_nn.dir/discrete_nn.cc.o.d"
  "/root/repo/src/nn/metrics.cc" "src/nn/CMakeFiles/metaai_nn.dir/metrics.cc.o" "gcc" "src/nn/CMakeFiles/metaai_nn.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mts/CMakeFiles/metaai_mts.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metaai_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/metaai_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
