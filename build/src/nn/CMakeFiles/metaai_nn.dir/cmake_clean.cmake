file(REMOVE_RECURSE
  "CMakeFiles/metaai_nn.dir/complex_linear.cc.o"
  "CMakeFiles/metaai_nn.dir/complex_linear.cc.o.d"
  "CMakeFiles/metaai_nn.dir/conv_net.cc.o"
  "CMakeFiles/metaai_nn.dir/conv_net.cc.o.d"
  "CMakeFiles/metaai_nn.dir/discrete_nn.cc.o"
  "CMakeFiles/metaai_nn.dir/discrete_nn.cc.o.d"
  "CMakeFiles/metaai_nn.dir/metrics.cc.o"
  "CMakeFiles/metaai_nn.dir/metrics.cc.o.d"
  "libmetaai_nn.a"
  "libmetaai_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaai_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
