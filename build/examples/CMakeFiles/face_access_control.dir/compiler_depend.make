# Empty compiler generated dependencies file for face_access_control.
# This may be replaced when dependencies are built.
