file(REMOVE_RECURSE
  "CMakeFiles/face_access_control.dir/face_access_control.cpp.o"
  "CMakeFiles/face_access_control.dir/face_access_control.cpp.o.d"
  "face_access_control"
  "face_access_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/face_access_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
