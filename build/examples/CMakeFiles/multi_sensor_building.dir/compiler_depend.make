# Empty compiler generated dependencies file for multi_sensor_building.
# This may be replaced when dependencies are built.
