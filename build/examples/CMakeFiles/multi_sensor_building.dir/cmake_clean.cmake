file(REMOVE_RECURSE
  "CMakeFiles/multi_sensor_building.dir/multi_sensor_building.cpp.o"
  "CMakeFiles/multi_sensor_building.dir/multi_sensor_building.cpp.o.d"
  "multi_sensor_building"
  "multi_sensor_building.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_sensor_building.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
