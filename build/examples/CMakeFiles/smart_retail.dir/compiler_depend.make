# Empty compiler generated dependencies file for smart_retail.
# This may be replaced when dependencies are built.
