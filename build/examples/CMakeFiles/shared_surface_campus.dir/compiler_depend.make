# Empty compiler generated dependencies file for shared_surface_campus.
# This may be replaced when dependencies are built.
