file(REMOVE_RECURSE
  "CMakeFiles/shared_surface_campus.dir/shared_surface_campus.cpp.o"
  "CMakeFiles/shared_surface_campus.dir/shared_surface_campus.cpp.o.d"
  "shared_surface_campus"
  "shared_surface_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_surface_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
