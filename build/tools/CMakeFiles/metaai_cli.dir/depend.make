# Empty dependencies file for metaai_cli.
# This may be replaced when dependencies are built.
