file(REMOVE_RECURSE
  "CMakeFiles/metaai_cli.dir/metaai_cli.cc.o"
  "CMakeFiles/metaai_cli.dir/metaai_cli.cc.o.d"
  "metaai_cli"
  "metaai_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metaai_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
