# Empty dependencies file for bench_fig28_face_case_study.
# This may be replaced when dependencies are built.
