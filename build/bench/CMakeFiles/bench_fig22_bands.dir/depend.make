# Empty dependencies file for bench_fig22_bands.
# This may be replaced when dependencies are built.
