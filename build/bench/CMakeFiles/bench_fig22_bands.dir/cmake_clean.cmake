file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_bands.dir/bench_fig22_bands.cc.o"
  "CMakeFiles/bench_fig22_bands.dir/bench_fig22_bands.cc.o.d"
  "bench_fig22_bands"
  "bench_fig22_bands.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_bands.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
