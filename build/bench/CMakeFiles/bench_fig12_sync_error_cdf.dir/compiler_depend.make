# Empty compiler generated dependencies file for bench_fig12_sync_error_cdf.
# This may be replaced when dependencies are built.
