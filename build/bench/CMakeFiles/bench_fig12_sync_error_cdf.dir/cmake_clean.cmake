file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_sync_error_cdf.dir/bench_fig12_sync_error_cdf.cc.o"
  "CMakeFiles/bench_fig12_sync_error_cdf.dir/bench_fig12_sync_error_cdf.cc.o.d"
  "bench_fig12_sync_error_cdf"
  "bench_fig12_sync_error_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_sync_error_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
