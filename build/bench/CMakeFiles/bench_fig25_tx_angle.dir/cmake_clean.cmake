file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_tx_angle.dir/bench_fig25_tx_angle.cc.o"
  "CMakeFiles/bench_fig25_tx_angle.dir/bench_fig25_tx_angle.cc.o.d"
  "bench_fig25_tx_angle"
  "bench_fig25_tx_angle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_tx_angle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
