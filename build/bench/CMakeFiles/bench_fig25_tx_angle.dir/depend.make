# Empty dependencies file for bench_fig25_tx_angle.
# This may be replaced when dependencies are built.
