
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_mobility.cc" "bench/CMakeFiles/bench_ablation_mobility.dir/bench_ablation_mobility.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_mobility.dir/bench_ablation_mobility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/metaai_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/metaai_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/metaai_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/metaai_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/mts/CMakeFiles/metaai_mts.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/metaai_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metaai_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
