file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mobility.dir/bench_ablation_mobility.cc.o"
  "CMakeFiles/bench_ablation_mobility.dir/bench_ablation_mobility.cc.o.d"
  "bench_ablation_mobility"
  "bench_ablation_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
