# Empty dependencies file for bench_fig31_parallel_width.
# This may be replaced when dependencies are built.
