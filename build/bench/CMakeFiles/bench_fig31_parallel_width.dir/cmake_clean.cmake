file(REMOVE_RECURSE
  "CMakeFiles/bench_fig31_parallel_width.dir/bench_fig31_parallel_width.cc.o"
  "CMakeFiles/bench_fig31_parallel_width.dir/bench_fig31_parallel_width.cc.o.d"
  "bench_fig31_parallel_width"
  "bench_fig31_parallel_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig31_parallel_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
