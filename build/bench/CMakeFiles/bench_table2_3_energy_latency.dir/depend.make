# Empty dependencies file for bench_table2_3_energy_latency.
# This may be replaced when dependencies are built.
