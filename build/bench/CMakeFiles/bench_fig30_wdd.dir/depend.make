# Empty dependencies file for bench_fig30_wdd.
# This may be replaced when dependencies are built.
