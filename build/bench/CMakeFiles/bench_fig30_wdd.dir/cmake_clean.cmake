file(REMOVE_RECURSE
  "CMakeFiles/bench_fig30_wdd.dir/bench_fig30_wdd.cc.o"
  "CMakeFiles/bench_fig30_wdd.dir/bench_fig30_wdd.cc.o.d"
  "bench_fig30_wdd"
  "bench_fig30_wdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig30_wdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
