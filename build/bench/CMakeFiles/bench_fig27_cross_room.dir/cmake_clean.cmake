file(REMOVE_RECURSE
  "CMakeFiles/bench_fig27_cross_room.dir/bench_fig27_cross_room.cc.o"
  "CMakeFiles/bench_fig27_cross_room.dir/bench_fig27_cross_room.cc.o.d"
  "bench_fig27_cross_room"
  "bench_fig27_cross_room.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig27_cross_room.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
