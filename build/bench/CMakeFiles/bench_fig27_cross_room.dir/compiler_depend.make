# Empty compiler generated dependencies file for bench_fig27_cross_room.
# This may be replaced when dependencies are built.
