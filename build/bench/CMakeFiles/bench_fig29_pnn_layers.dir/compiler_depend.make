# Empty compiler generated dependencies file for bench_fig29_pnn_layers.
# This may be replaced when dependencies are built.
