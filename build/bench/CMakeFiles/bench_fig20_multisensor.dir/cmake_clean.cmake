file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_multisensor.dir/bench_fig20_multisensor.cc.o"
  "CMakeFiles/bench_fig20_multisensor.dir/bench_fig20_multisensor.cc.o.d"
  "bench_fig20_multisensor"
  "bench_fig20_multisensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_multisensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
