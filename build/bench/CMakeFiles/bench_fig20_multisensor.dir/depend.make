# Empty dependencies file for bench_fig20_multisensor.
# This may be replaced when dependencies are built.
