file(REMOVE_RECURSE
  "CMakeFiles/bench_fig26_interference.dir/bench_fig26_interference.cc.o"
  "CMakeFiles/bench_fig26_interference.dir/bench_fig26_interference.cc.o.d"
  "bench_fig26_interference"
  "bench_fig26_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig26_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
