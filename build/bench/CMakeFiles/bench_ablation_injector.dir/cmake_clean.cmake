file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_injector.dir/bench_ablation_injector.cc.o"
  "CMakeFiles/bench_ablation_injector.dir/bench_ablation_injector.cc.o.d"
  "bench_ablation_injector"
  "bench_ablation_injector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_injector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
