# Empty compiler generated dependencies file for bench_ablation_injector.
# This may be replaced when dependencies are built.
