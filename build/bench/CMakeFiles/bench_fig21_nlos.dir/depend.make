# Empty dependencies file for bench_fig21_nlos.
# This may be replaced when dependencies are built.
