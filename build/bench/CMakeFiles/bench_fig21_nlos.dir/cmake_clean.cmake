file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_nlos.dir/bench_fig21_nlos.cc.o"
  "CMakeFiles/bench_fig21_nlos.dir/bench_fig21_nlos.cc.o.d"
  "bench_fig21_nlos"
  "bench_fig21_nlos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_nlos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
