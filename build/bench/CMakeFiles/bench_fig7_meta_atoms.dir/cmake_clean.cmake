file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_meta_atoms.dir/bench_fig7_meta_atoms.cc.o"
  "CMakeFiles/bench_fig7_meta_atoms.dir/bench_fig7_meta_atoms.cc.o.d"
  "bench_fig7_meta_atoms"
  "bench_fig7_meta_atoms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_meta_atoms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
