# Empty compiler generated dependencies file for bench_fig7_meta_atoms.
# This may be replaced when dependencies are built.
