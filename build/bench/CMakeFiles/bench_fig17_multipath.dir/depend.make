# Empty dependencies file for bench_fig17_multipath.
# This may be replaced when dependencies are built.
