file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_multipath.dir/bench_fig17_multipath.cc.o"
  "CMakeFiles/bench_fig17_multipath.dir/bench_fig17_multipath.cc.o.d"
  "bench_fig17_multipath"
  "bench_fig17_multipath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_multipath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
