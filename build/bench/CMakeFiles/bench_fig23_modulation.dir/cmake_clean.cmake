file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_modulation.dir/bench_fig23_modulation.cc.o"
  "CMakeFiles/bench_fig23_modulation.dir/bench_fig23_modulation.cc.o.d"
  "bench_fig23_modulation"
  "bench_fig23_modulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_modulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
