# Empty dependencies file for bench_fig23_modulation.
# This may be replaced when dependencies are built.
