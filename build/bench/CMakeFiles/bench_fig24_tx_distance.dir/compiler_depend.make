# Empty compiler generated dependencies file for bench_fig24_tx_distance.
# This may be replaced when dependencies are built.
