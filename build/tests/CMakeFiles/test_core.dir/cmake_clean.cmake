file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/channel_estimation_test.cc.o"
  "CMakeFiles/test_core.dir/core/channel_estimation_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/controller_service_test.cc.o"
  "CMakeFiles/test_core.dir/core/controller_service_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/deployment_test.cc.o"
  "CMakeFiles/test_core.dir/core/deployment_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/fusion_test.cc.o"
  "CMakeFiles/test_core.dir/core/fusion_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/hybrid_test.cc.o"
  "CMakeFiles/test_core.dir/core/hybrid_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/pnn_baseline_test.cc.o"
  "CMakeFiles/test_core.dir/core/pnn_baseline_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/recalibration_test.cc.o"
  "CMakeFiles/test_core.dir/core/recalibration_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/scheduler_test.cc.o"
  "CMakeFiles/test_core.dir/core/scheduler_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/serialization_test.cc.o"
  "CMakeFiles/test_core.dir/core/serialization_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/training_test.cc.o"
  "CMakeFiles/test_core.dir/core/training_test.cc.o.d"
  "CMakeFiles/test_core.dir/core/weight_mapper_test.cc.o"
  "CMakeFiles/test_core.dir/core/weight_mapper_test.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
