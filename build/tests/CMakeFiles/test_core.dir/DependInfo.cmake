
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/channel_estimation_test.cc" "tests/CMakeFiles/test_core.dir/core/channel_estimation_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/channel_estimation_test.cc.o.d"
  "/root/repo/tests/core/controller_service_test.cc" "tests/CMakeFiles/test_core.dir/core/controller_service_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/controller_service_test.cc.o.d"
  "/root/repo/tests/core/deployment_test.cc" "tests/CMakeFiles/test_core.dir/core/deployment_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/deployment_test.cc.o.d"
  "/root/repo/tests/core/fusion_test.cc" "tests/CMakeFiles/test_core.dir/core/fusion_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/fusion_test.cc.o.d"
  "/root/repo/tests/core/hybrid_test.cc" "tests/CMakeFiles/test_core.dir/core/hybrid_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/hybrid_test.cc.o.d"
  "/root/repo/tests/core/pnn_baseline_test.cc" "tests/CMakeFiles/test_core.dir/core/pnn_baseline_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/pnn_baseline_test.cc.o.d"
  "/root/repo/tests/core/recalibration_test.cc" "tests/CMakeFiles/test_core.dir/core/recalibration_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/recalibration_test.cc.o.d"
  "/root/repo/tests/core/scheduler_test.cc" "tests/CMakeFiles/test_core.dir/core/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/scheduler_test.cc.o.d"
  "/root/repo/tests/core/serialization_test.cc" "tests/CMakeFiles/test_core.dir/core/serialization_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/serialization_test.cc.o.d"
  "/root/repo/tests/core/training_test.cc" "tests/CMakeFiles/test_core.dir/core/training_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/training_test.cc.o.d"
  "/root/repo/tests/core/weight_mapper_test.cc" "tests/CMakeFiles/test_core.dir/core/weight_mapper_test.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/weight_mapper_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/metaai_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/metaai_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/metaai_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/metaai_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/mts/CMakeFiles/metaai_mts.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/metaai_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metaai_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
