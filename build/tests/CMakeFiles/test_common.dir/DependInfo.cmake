
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/check_test.cc" "tests/CMakeFiles/test_common.dir/common/check_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/check_test.cc.o.d"
  "/root/repo/tests/common/matrix_test.cc" "tests/CMakeFiles/test_common.dir/common/matrix_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/matrix_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/test_common.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/CMakeFiles/test_common.dir/common/stats_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/stats_test.cc.o.d"
  "/root/repo/tests/common/table_test.cc" "tests/CMakeFiles/test_common.dir/common/table_test.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/metaai_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/metaai_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/metaai_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/metaai_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/mts/CMakeFiles/metaai_mts.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/metaai_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metaai_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
