file(REMOVE_RECURSE
  "CMakeFiles/test_rf.dir/rf/antenna_test.cc.o"
  "CMakeFiles/test_rf.dir/rf/antenna_test.cc.o.d"
  "CMakeFiles/test_rf.dir/rf/channel_test.cc.o"
  "CMakeFiles/test_rf.dir/rf/channel_test.cc.o.d"
  "CMakeFiles/test_rf.dir/rf/fft_test.cc.o"
  "CMakeFiles/test_rf.dir/rf/fft_test.cc.o.d"
  "CMakeFiles/test_rf.dir/rf/geometry_test.cc.o"
  "CMakeFiles/test_rf.dir/rf/geometry_test.cc.o.d"
  "CMakeFiles/test_rf.dir/rf/modulation_test.cc.o"
  "CMakeFiles/test_rf.dir/rf/modulation_test.cc.o.d"
  "CMakeFiles/test_rf.dir/rf/ofdm_test.cc.o"
  "CMakeFiles/test_rf.dir/rf/ofdm_test.cc.o.d"
  "CMakeFiles/test_rf.dir/rf/signal_test.cc.o"
  "CMakeFiles/test_rf.dir/rf/signal_test.cc.o.d"
  "test_rf"
  "test_rf.pdb"
  "test_rf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
