
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/complex_linear_test.cc" "tests/CMakeFiles/test_nn.dir/nn/complex_linear_test.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/complex_linear_test.cc.o.d"
  "/root/repo/tests/nn/conv_net_test.cc" "tests/CMakeFiles/test_nn.dir/nn/conv_net_test.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/conv_net_test.cc.o.d"
  "/root/repo/tests/nn/discrete_nn_test.cc" "tests/CMakeFiles/test_nn.dir/nn/discrete_nn_test.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/discrete_nn_test.cc.o.d"
  "/root/repo/tests/nn/metrics_test.cc" "tests/CMakeFiles/test_nn.dir/nn/metrics_test.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/metrics_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/metaai_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/metaai_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/metaai_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/metaai_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/mts/CMakeFiles/metaai_mts.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/metaai_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/metaai_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
