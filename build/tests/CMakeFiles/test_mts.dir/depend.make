# Empty dependencies file for test_mts.
# This may be replaced when dependencies are built.
