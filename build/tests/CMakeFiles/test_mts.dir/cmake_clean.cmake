file(REMOVE_RECURSE
  "CMakeFiles/test_mts.dir/mts/beam_scan_test.cc.o"
  "CMakeFiles/test_mts.dir/mts/beam_scan_test.cc.o.d"
  "CMakeFiles/test_mts.dir/mts/config_solver_test.cc.o"
  "CMakeFiles/test_mts.dir/mts/config_solver_test.cc.o.d"
  "CMakeFiles/test_mts.dir/mts/controller_test.cc.o"
  "CMakeFiles/test_mts.dir/mts/controller_test.cc.o.d"
  "CMakeFiles/test_mts.dir/mts/energy_detector_test.cc.o"
  "CMakeFiles/test_mts.dir/mts/energy_detector_test.cc.o.d"
  "CMakeFiles/test_mts.dir/mts/meta_atom_test.cc.o"
  "CMakeFiles/test_mts.dir/mts/meta_atom_test.cc.o.d"
  "CMakeFiles/test_mts.dir/mts/metasurface_test.cc.o"
  "CMakeFiles/test_mts.dir/mts/metasurface_test.cc.o.d"
  "CMakeFiles/test_mts.dir/mts/wdd_test.cc.o"
  "CMakeFiles/test_mts.dir/mts/wdd_test.cc.o.d"
  "test_mts"
  "test_mts.pdb"
  "test_mts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
