#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace metaai {

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(values.size() - 1);
}

double Stddev(std::span<const double> values) {
  return std::sqrt(Variance(values));
}

namespace {

// Percentile lookup against an already-sorted sample.
double SortedPercentile(std::span<const double> sorted, double p) {
  Check(p >= 0.0 && p <= 100.0, "Percentile requires p in [0, 100]");
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(std::floor(rank));
  const auto upper = static_cast<std::size_t>(std::ceil(rank));
  const double weight = rank - static_cast<double>(lower);
  return sorted[lower] * (1.0 - weight) + sorted[upper] * weight;
}

}  // namespace

double Percentile(std::span<const double> values, double p) {
  Check(!values.empty(), "Percentile requires non-empty input");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return SortedPercentile(sorted, p);
}

std::vector<double> Percentiles(std::span<const double> values,
                                std::span<const double> ps) {
  Check(!values.empty(), "Percentiles requires non-empty input");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> results;
  results.reserve(ps.size());
  for (const double p : ps) results.push_back(SortedPercentile(sorted, p));
  return results;
}

double Min(std::span<const double> values) {
  Check(!values.empty(), "Min requires non-empty input");
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  Check(!values.empty(), "Max requires non-empty input");
  return *std::max_element(values.begin(), values.end());
}

std::vector<CdfPoint> EmpiricalCdf(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) /
                                  static_cast<double>(sorted.size())});
  }
  return cdf;
}

double FractionAbove(std::span<const double> values, double threshold) {
  if (values.empty()) return 0.0;
  const auto count = std::count_if(values.begin(), values.end(),
                                   [&](double v) { return v > threshold; });
  return static_cast<double>(count) / static_cast<double>(values.size());
}

std::vector<std::size_t> Histogram(std::span<const double> values, double lo,
                                   double hi, std::size_t bins) {
  Check(bins > 0, "Histogram requires at least one bin");
  Check(hi > lo, "Histogram requires hi > lo");
  std::vector<std::size_t> counts(bins, 0);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (const double v : values) {
    // A NaN fails the `offset <= 0.0` clamp below and would reach
    // static_cast<std::size_t>(NaN), which is undefined behavior.
    Check(std::isfinite(v), "Histogram requires finite values");
    const double offset = (v - lo) / width;
    auto bin = offset <= 0.0 ? std::size_t{0}
                             : static_cast<std::size_t>(offset);
    bin = std::min(bin, bins - 1);
    ++counts[bin];
  }
  return counts;
}

}  // namespace metaai
