#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace metaai {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  Check(!headers_.empty(), "Table requires at least one column");
}

void Table::AddRow(std::vector<std::string> cells) {
  Check(cells.size() == headers_.size(),
        "Table row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << cells[c];
      if (c + 1 < cells.size()) {
        out << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (const char c : cell) {
    if (c == '"') escaped += '"';
    escaped += c;
  }
  escaped += '"';
  return escaped;
}

std::string Slugify(const std::string& title) {
  std::string slug;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '-') {
      slug += '-';
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "table" : slug;
}

}  // namespace

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ',';
      out << CsvEscape(cells[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {

TableListener g_table_listener;

}  // namespace

TableListener SetTableListener(TableListener listener) {
  TableListener previous = std::move(g_table_listener);
  g_table_listener = std::move(listener);
  return previous;
}

void Table::Print(std::ostream& os) const {
  os << ToString();
  if (const char* dir = std::getenv("METAAI_CSV_DIR"); dir != nullptr) {
    std::ofstream csv(std::string(dir) + "/" + Slugify(title_) + ".csv");
    if (csv.good()) csv << ToCsv();
  }
  if (g_table_listener) g_table_listener(*this);
}

std::string FormatDouble(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals);
}

}  // namespace metaai
