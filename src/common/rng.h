// Deterministic random number generation for reproducible experiments.
//
// Every experiment in this repository derives all of its randomness from an
// explicit 64-bit seed so that tests and benchmark tables are bit-for-bit
// reproducible across runs. The generator is xoshiro256**, seeded through
// SplitMix64 as recommended by its authors; distributions are implemented
// locally because libstdc++'s std::normal_distribution et al. are not
// guaranteed to produce identical streams across standard library versions.
#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <utility>
#include <vector>

namespace metaai {

/// xoshiro256** pseudo-random generator with local, portable distributions.
///
/// Not cryptographically secure; intended for simulation only.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next raw 64-bit output.
  std::uint64_t Next();

  // UniformRandomBitGenerator interface (usable with std::shuffle etc.).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  /// Standard normal via the Marsaglia polar method.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential with the given rate lambda (> 0).
  double Exponential(double lambda);

  /// Gamma(shape, scale) via Marsaglia-Tsang; shape > 0, scale > 0.
  double Gamma(double shape, double scale);

  /// Circularly-symmetric complex normal with E[|z|^2] = variance.
  std::complex<double> ComplexNormal(double variance = 1.0);

  /// Uniform phase on the unit circle.
  std::complex<double> UnitPhasor();

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = UniformInt(std::uint64_t{i});
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator; used to give each experiment
  /// arm its own stream without correlation to its siblings.
  Rng Fork();

 private:
  std::array<std::uint64_t, 4> state_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace metaai
