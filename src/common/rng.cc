#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace metaai {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  Check(n > 0, "UniformInt requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t draw = Next();
  while (draw >= limit) draw = Next();
  return draw % n;
}

int Rng::UniformInt(int lo, int hi) {
  Check(lo <= hi, "UniformInt requires lo <= hi");
  // Widen before subtracting: `hi - lo` overflows int for wide ranges
  // (e.g. lo = INT_MIN, hi = INT_MAX).
  const auto span = static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) -
                                               static_cast<std::int64_t>(lo)) +
                    1;
  return static_cast<int>(static_cast<std::int64_t>(lo) +
                          static_cast<std::int64_t>(UniformInt(span)));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double lambda) {
  Check(lambda > 0.0, "Exponential requires lambda > 0");
  double u = Uniform();
  while (u <= 0.0) u = Uniform();
  return -std::log(u) / lambda;
}

double Rng::Gamma(double shape, double scale) {
  Check(shape > 0.0 && scale > 0.0, "Gamma requires positive parameters");
  if (shape < 1.0) {
    // Boost shape above 1 and correct with a power of a uniform draw.
    const double boosted = Gamma(shape + 1.0, scale);
    double u = Uniform();
    while (u <= 0.0) u = Uniform();
    return boosted * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * v * scale;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

std::complex<double> Rng::ComplexNormal(double variance) {
  const double sigma = std::sqrt(variance / 2.0);
  return {Normal(0.0, sigma), Normal(0.0, sigma)};
}

std::complex<double> Rng::UnitPhasor() {
  const double phase = Uniform(0.0, 2.0 * std::numbers::pi);
  return {std::cos(phase), std::sin(phase)};
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ull); }

}  // namespace metaai
