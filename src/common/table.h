// Console table formatting for benchmark harnesses. Every bench binary in
// this repository prints its results as one or more of these tables so the
// output can be compared row-by-row with the paper's tables and figures.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace metaai {

/// A simple fixed-column text table with a title, printed with aligned
/// columns. Numeric cells should be pre-formatted by the caller (see
/// FormatDouble / FormatPercent below).
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Appends one row; must have the same number of cells as headers.
  void AddRow(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }
  const std::string& title() const { return title_; }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders the table with a title line, a header row, a separator and
  /// one line per row.
  std::string ToString() const;

  /// RFC-4180-style CSV rendering (header row + data rows, quoted when a
  /// cell contains a comma/quote/newline).
  std::string ToCsv() const;

  /// Streams ToString() to `os`. Additionally, when the METAAI_CSV_DIR
  /// environment variable is set, writes ToCsv() to
  /// "$METAAI_CSV_DIR/<slugified-title>.csv" so bench tables can be
  /// collected for plotting without changing any bench.
  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Observer invoked by Table::Print after rendering (in addition to the
/// stream/CSV output). Used by bench/bench_util.h to capture every table
/// a bench prints into its BENCH_<name>.json report without touching the
/// individual benches. Returns the previously installed listener.
using TableListener = std::function<void(const Table&)>;
TableListener SetTableListener(TableListener listener);

/// Formats `value` with `decimals` fractional digits.
std::string FormatDouble(double value, int decimals = 2);

/// Formats `fraction` (0..1) as a percentage string like "89.77".
std::string FormatPercent(double fraction, int decimals = 2);

}  // namespace metaai
