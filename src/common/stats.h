// Descriptive statistics used by the evaluation harness (percentiles, CDFs).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace metaai {

/// Arithmetic mean; returns 0 for an empty span.
double Mean(std::span<const double> values);

/// Unbiased sample variance; returns 0 for spans of size < 2.
double Variance(std::span<const double> values);

/// Square root of Variance().
double Stddev(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double Percentile(std::span<const double> values, double p);

/// Batch of linear-interpolated percentiles from one sort of `values`:
/// results[i] corresponds to ps[i]. Same contract per query as
/// Percentile(); prefer this when reading several percentiles of the
/// same sample (the single-query form re-copies and re-sorts each call).
std::vector<double> Percentiles(std::span<const double> values,
                                std::span<const double> ps);

/// Smallest / largest element. Require non-empty input.
double Min(std::span<const double> values);
double Max(std::span<const double> values);

/// One point of an empirical CDF.
struct CdfPoint {
  double value = 0.0;
  double cumulative_probability = 0.0;
};

/// Empirical CDF: sorted values with cumulative probability i/n.
std::vector<CdfPoint> EmpiricalCdf(std::span<const double> values);

/// Fraction of values strictly greater than `threshold`.
double FractionAbove(std::span<const double> values, double threshold);

/// Histogram with `bins` equal-width buckets over [lo, hi]; values outside
/// the range are clamped into the first/last bucket. Rejects non-finite
/// inputs (NaN has no bucket and +/-inf would clamp silently).
std::vector<std::size_t> Histogram(std::span<const double> values, double lo,
                                   double hi, std::size_t bins);

}  // namespace metaai
