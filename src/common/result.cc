#include "common/result.h"

namespace metaai {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kParseError:
      return "parse_error";
    case ErrorCode::kIoError:
      return "io_error";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kExhausted:
      return "exhausted";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

}  // namespace metaai
