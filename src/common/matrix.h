// Minimal dense row-major matrix used by the NN substrate and the
// metasurface solver. Deliberately small: the heaviest kernels in this
// repository are hand-written loops in the NN layers, so this class only
// needs storage, element access and a few whole-matrix operations.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/check.h"

namespace metaai {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    CheckIndex(r, rows_, "matrix row");
    CheckIndex(c, cols_, "matrix col");
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    CheckIndex(r, rows_, "matrix row");
    CheckIndex(c, cols_, "matrix col");
    return data_[r * cols_ + c];
  }

  /// Unchecked flat access for hot loops.
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Pointer to the start of row r (unchecked beyond the row bound).
  T* row(std::size_t r) {
    CheckIndex(r, rows_, "matrix row");
    return data_.data() + r * cols_;
  }
  const T* row(std::size_t r) const {
    CheckIndex(r, rows_, "matrix row");
    return data_.data() + r * cols_;
  }

  void Fill(T value) { data_.assign(data_.size(), value); }

  /// y = this * x (matrix-vector product). x.size() must equal cols().
  std::vector<T> Multiply(const std::vector<T>& x) const {
    Check(x.size() == cols_, "Multiply: dimension mismatch");
    std::vector<T> y(rows_, T{});
    for (std::size_t r = 0; r < rows_; ++r) {
      const T* row_ptr = data_.data() + r * cols_;
      T acc{};
      for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
      y[r] = acc;
    }
    return y;
  }

  /// C = this * other. Requires cols() == other.rows().
  Matrix<T> Multiply(const Matrix<T>& other) const {
    Check(cols_ == other.rows_, "Multiply: dimension mismatch");
    Matrix<T> out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const T a = data_[r * cols_ + k];
        const T* other_row = other.data_.data() + k * other.cols_;
        T* out_row = out.data_.data() + r * other.cols_;
        for (std::size_t c = 0; c < other.cols_; ++c) {
          out_row[c] += a * other_row[c];
        }
      }
    }
    return out;
  }

  bool operator==(const Matrix<T>& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<std::complex<double>>;

}  // namespace metaai
