#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/check.h"

namespace metaai::par {
namespace {

thread_local bool t_in_parallel_region = false;

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int EnvThreads() {
  static const int cached = [] {
    const char* env = std::getenv("METAAI_THREADS");
    if (env == nullptr || *env == '\0') return 0;
    const int value = std::atoi(env);
    return value > 0 ? std::min(value, kMaxThreads) : 0;
  }();
  return cached;
}

std::atomic<int> g_thread_count_override{0};

// One fan-out: `fn` applied to [0, n) split into `chunks` contiguous
// ranges. Chunk 0 runs on the calling thread; chunks 1.. are posted to
// the pool. The first exception of each chunk is kept so the caller can
// rethrow the lowest-numbered one deterministically.
struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t chunks = 0;
  std::vector<std::exception_ptr> errors;
  std::atomic<std::size_t> remaining{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
};

void RunChunk(Job& job, std::size_t chunk) {
  const std::size_t begin = chunk * job.n / job.chunks;
  const std::size_t end = (chunk + 1) * job.n / job.chunks;
  const bool was_in_region = t_in_parallel_region;
  t_in_parallel_region = true;
  try {
    for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
  } catch (...) {
    job.errors[chunk] = std::current_exception();
  }
  t_in_parallel_region = was_in_region;
}

/// Lazily-created process-wide pool. The worker count grows on demand up
/// to kMaxThreads and is never shrunk; workers idle on a condition
/// variable between jobs.
class Pool {
 public:
  static Pool& Instance() {
    static Pool pool;
    return pool;
  }

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  void Run(Job& job) {
    EnsureWorkers(job.chunks - 1);
    job.remaining.store(job.chunks, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t c = 1; c < job.chunks; ++c) {
        queue_.push_back({&job, c});
      }
    }
    work_cv_.notify_all();
    RunChunk(job, 0);
    Finish(job);
    std::unique_lock<std::mutex> lock(job.done_mutex);
    job.done_cv.wait(lock, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0;
    });
  }

 private:
  struct Task {
    Job* job;
    std::size_t chunk;
  };

  void EnsureWorkers(std::size_t needed) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t target =
        std::min<std::size_t>(needed, static_cast<std::size_t>(kMaxThreads));
    while (workers_.size() < target) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    for (;;) {
      Task task{};
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping, nothing left to drain
        task = queue_.front();
        queue_.pop_front();
      }
      RunChunk(*task.job, task.chunk);
      Finish(*task.job);
    }
  }

  static void Finish(Job& job) {
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(job.done_mutex);
      job.done_cv.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace

int DefaultThreadCount() {
  const int override = g_thread_count_override.load(std::memory_order_relaxed);
  if (override > 0) return std::min(override, kMaxThreads);
  if (const int env = EnvThreads(); env > 0) return env;
  return HardwareThreads();
}

int SetDefaultThreadCount(int n) {
  Check(n <= kMaxThreads, "thread count exceeds par::kMaxThreads");
  return g_thread_count_override.exchange(n > 0 ? n : 0,
                                          std::memory_order_relaxed);
}

bool InParallelRegion() { return t_in_parallel_region; }

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int num_threads) {
  if (n == 0) return;
  const int resolved =
      num_threads > 0 ? std::min(num_threads, kMaxThreads)
                      : DefaultThreadCount();
  const std::size_t chunks =
      std::min<std::size_t>(static_cast<std::size_t>(resolved), n);
  // Serial path: thread count 1 (exact legacy execution) and nested use
  // (re-entering the fixed-size pool from a worker could deadlock).
  if (chunks <= 1 || InParallelRegion()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  Job job;
  job.fn = &fn;
  job.n = n;
  job.chunks = chunks;
  job.errors.resize(chunks);
  Pool::Instance().Run(job);
  for (const std::exception_ptr& error : job.errors) {
    if (error) std::rethrow_exception(error);
  }
}

std::vector<Rng> ForkRngs(Rng& base, std::size_t n) {
  std::vector<Rng> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rngs.push_back(base.Fork());
  return rngs;
}

}  // namespace metaai::par
