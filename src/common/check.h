// Lightweight runtime-check helpers used across the MetaAI libraries.
//
// We prefer throwing a descriptive exception over asserting: the library is
// used from long-running benchmark harnesses where a silent abort would lose
// the context of which experiment failed.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace metaai {

/// Error type thrown on violated preconditions / invariants.
class CheckError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Throws CheckError with file:line context when `condition` is false.
inline void Check(bool condition, std::string_view message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": check failed: " +
                     std::string(message));
  }
}

/// Variant for index/size validation with the offending value in the message.
inline void CheckIndex(std::size_t index, std::size_t size,
                       std::string_view what,
                       std::source_location loc =
                           std::source_location::current()) {
  if (index >= size) {
    throw CheckError(std::string(loc.file_name()) + ":" +
                     std::to_string(loc.line()) + ": " + std::string(what) +
                     " index " + std::to_string(index) +
                     " out of range (size " + std::to_string(size) + ")");
  }
}

}  // namespace metaai
