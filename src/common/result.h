// metaai::Result<T> — typed value-or-error returns for the public API.
//
// The library historically reported bad *user input* (malformed model
// files, fault-spec strings, out-of-range solver options) the same way it
// reports programmer errors: a thrown CheckError. That conflates "your
// file is corrupt" with "the library has a bug" and forces every caller
// into try/catch. Result<T> is an std::expected-style alternative for the
// entry points that validate external input: the function returns either
// a value or an Error{code, message}; Check/CheckError stay reserved for
// internal invariant violations.
//
// Usage:
//
//   metaai::Result<TrainedModel> model = core::TryLoadModel(path);
//   if (!model.ok()) {
//     log(model.error().ToString());   // "io_error: cannot open ..."
//     return;
//   }
//   Use(model.value());               // or *model / model->field
//
// `value()` on an error Result throws CheckError carrying the error text,
// so legacy call sites can migrate mechanically (`TryX(...).value()` has
// the old throwing behavior) while new call sites branch on the code.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/check.h"

namespace metaai {

/// Coarse error taxonomy for the public API (mirrors the usual RPC
/// status codes; keep it small — the message carries the detail).
enum class ErrorCode {
  kInvalidArgument,  // caller-supplied value out of range / malformed
  kParseError,       // malformed serialized content (file, spec string)
  kIoError,          // filesystem open/read/write failure
  kNotFound,         // named entity (model, client, dataset) unknown
  kExhausted,        // bounded resource full (queue backpressure)
  kUnavailable,      // subsystem cannot serve (budget exceeded, shutdown)
  kInternal,         // invariant violation surfaced as a value
};

std::string_view ErrorCodeName(ErrorCode code);

/// A typed error: machine-readable code plus human-readable context.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  /// "code_name: message" (the stable rendering used in CLI output).
  std::string ToString() const {
    return std::string(ErrorCodeName(code)) + ": " + message;
  }

  bool operator==(const Error&) const = default;
};

/// Value-or-Error. Implicitly constructible from either side, so
/// functions `return value;` or `return Error{...};` naturally.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Error error) : state_(std::move(error)) {}      // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  /// The error; requires !ok().
  const Error& error() const {
    Check(!ok(), "Result::error() called on an ok Result");
    return std::get<Error>(state_);
  }

  /// The value; throws CheckError with the error text when !ok() (the
  /// legacy throwing behavior, for mechanical migration).
  const T& value() const& {
    if (!ok()) throw CheckError(std::get<Error>(state_).ToString());
    return std::get<T>(state_);
  }
  T& value() & {
    if (!ok()) throw CheckError(std::get<Error>(state_).ToString());
    return std::get<T>(state_);
  }
  T&& value() && {
    if (!ok()) throw CheckError(std::get<Error>(state_).ToString());
    return std::get<T>(std::move(state_));
  }

  /// The value, or `fallback` when this Result holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Error> state_;
};

/// Result<void>: success or Error, for mutating entry points (save,
/// validate). `Ok()` builds the success value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    Check(!ok(), "Result::error() called on an ok Result");
    return *error_;
  }

  /// Throws CheckError with the error text when !ok(); no-op otherwise.
  void value() const {
    if (!ok()) throw CheckError(error_->ToString());
  }

 private:
  std::optional<Error> error_;
};

/// Success value for Result<void> returns: `return Ok();`.
inline Result<void> Ok() { return Result<void>(); }

}  // namespace metaai
