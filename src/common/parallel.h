// Deterministic parallel execution layer (metaai::par).
//
// A lazily-created, process-wide thread pool runs index-based fan-outs
// with *static chunking* and *ordered result collection*, so the work
// assignment — and therefore every per-index result — is a pure function
// of (n, num_threads) and never of scheduling order. Randomized tasks
// pre-derive one Rng stream per index with ForkRngs() on the calling
// thread, which makes results bitwise identical for any thread count,
// including 1.
//
// Contracts:
//  * ParallelFor(n, fn) invokes fn(i) exactly once for every i in
//    [0, n). ParallelMap additionally collects fn's return values in
//    item order.
//  * Thread count resolution: explicit argument > SetDefaultThreadCount
//    (the CLI --threads flag) > METAAI_THREADS env > hardware
//    concurrency. A resolved count of 1 runs inline on the calling
//    thread — the exact legacy serial path, no pool involvement.
//  * Nested use is rejected: a ParallelFor issued from inside a worker
//    task does not re-enter the pool (that could deadlock a fixed-size
//    pool) and instead runs inline, serially, on that worker. Libraries
//    can therefore parallelize internally and still be called from
//    parallelized benches.
//  * Exceptions thrown by tasks are captured per chunk; after every
//    chunk has finished, the exception of the lowest-numbered failing
//    chunk is rethrown on the calling thread.
//
// Telemetry note: the instruments in metaai::obs are thread-safe, but
// mutex-ordered sinks make probe order and histogram float sums depend
// on scheduling. Call sites that need bitwise-identical telemetry for
// any thread count wrap tasks with obs::DeterministicParallelFor (see
// obs/parallel.h), which buffers per-task telemetry and merges it in
// task order.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "common/rng.h"

namespace metaai::par {

/// Maximum workers the pool will ever spawn (sanity cap for --threads).
inline constexpr int kMaxThreads = 256;

/// Resolved default thread count: SetDefaultThreadCount override if set,
/// else METAAI_THREADS (parsed once), else std::thread::hardware_concurrency.
/// Always >= 1.
int DefaultThreadCount();

/// Installs a process-wide override (the CLI --threads flag); `n <= 0`
/// clears it. Returns the previous override (0 = none).
int SetDefaultThreadCount(int n);

/// RAII override of the default thread count (tests and benches).
class ScopedThreadCount {
 public:
  explicit ScopedThreadCount(int n) : previous_(SetDefaultThreadCount(n)) {}
  ScopedThreadCount(const ScopedThreadCount&) = delete;
  ScopedThreadCount& operator=(const ScopedThreadCount&) = delete;
  ~ScopedThreadCount() { SetDefaultThreadCount(previous_); }

 private:
  int previous_;
};

/// True while the calling thread is executing a ParallelFor task; a
/// nested ParallelFor observes this and runs inline.
bool InParallelRegion();

/// Runs fn(0) .. fn(n-1) across `num_threads` threads (0 = default)
/// with static contiguous chunking. Blocks until every index ran;
/// rethrows the lowest-chunk task exception.
void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                 int num_threads = 0);

/// Ordered map: results[i] = fn(items[i]), computed in parallel but
/// collected in item order.
template <typename T, typename Fn>
auto ParallelMap(const std::vector<T>& items, Fn&& fn, int num_threads = 0)
    -> std::vector<std::decay_t<decltype(fn(items[0]))>> {
  std::vector<std::decay_t<decltype(fn(items[0]))>> results(items.size());
  ParallelFor(
      items.size(), [&](std::size_t i) { results[i] = fn(items[i]); },
      num_threads);
  return results;
}

/// Pre-derives one independent child generator per task by calling
/// base.Fork() n times on the calling thread. Task i must use rngs[i]
/// and nothing else; results are then independent of the thread count.
std::vector<Rng> ForkRngs(Rng& base, std::size_t n);

}  // namespace metaai::par
