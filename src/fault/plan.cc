#include "fault/plan.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace metaai::fault {
namespace {

double ParseDouble(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  Check(end != nullptr && *end == '\0' && !text.empty(),
        "fault spec: bad numeric value for '" + key + "': '" + text + "'");
  return value;
}

std::uint64_t ParseSeed(const std::string& text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  Check(end != nullptr && *end == '\0' && !text.empty(),
        "fault spec: bad seed '" + text + "'");
  return static_cast<std::uint64_t>(value);
}

}  // namespace

bool FaultPlan::Any() const {
  return stuck.fraction > 0.0 || chain.bit_flip_prob > 0.0 ||
         (drift.rate_std_rad_per_s > 0.0 && drift.age_s > 0.0) ||
         (burst.probability > 0.0 && burst.max_extra_us > 0.0);
}

FaultPlan ParseFaultSpec(const std::string& spec) {
  FaultPlan plan;
  bool age_given = false;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    Check(eq != std::string::npos,
          "fault spec: expected key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "stuck") {
      plan.stuck.fraction = ParseDouble(key, value);
      Check(plan.stuck.fraction >= 0.0 && plan.stuck.fraction <= 1.0,
            "fault spec: stuck fraction must be in [0, 1]");
    } else if (key == "chain") {
      plan.chain.bit_flip_prob = ParseDouble(key, value);
      Check(plan.chain.bit_flip_prob >= 0.0 && plan.chain.bit_flip_prob <= 1.0,
            "fault spec: chain bit-flip probability must be in [0, 1]");
    } else if (key == "drift") {
      plan.drift.rate_std_rad_per_s = ParseDouble(key, value);
      Check(plan.drift.rate_std_rad_per_s >= 0.0,
            "fault spec: drift rate std must be >= 0");
    } else if (key == "age") {
      plan.drift.age_s = ParseDouble(key, value);
      Check(plan.drift.age_s >= 0.0, "fault spec: age must be >= 0");
      age_given = true;
    } else if (key == "burst") {
      const std::size_t colon = value.find(':');
      Check(colon != std::string::npos,
            "fault spec: burst wants probability:max_extra_us");
      plan.burst.probability = ParseDouble(key, value.substr(0, colon));
      plan.burst.max_extra_us = ParseDouble(key, value.substr(colon + 1));
      Check(plan.burst.probability >= 0.0 && plan.burst.probability <= 1.0,
            "fault spec: burst probability must be in [0, 1]");
      Check(plan.burst.max_extra_us >= 0.0,
            "fault spec: burst max_extra_us must be >= 0");
    } else if (key == "seed") {
      plan.seed = ParseSeed(value);
    } else {
      Check(false, "fault spec: unknown key '" + key + "'");
    }
  }
  // A drift rate without an age would silently be a no-op; give it the
  // bench's default aging horizon instead.
  if (plan.drift.rate_std_rad_per_s > 0.0 && !age_given) {
    plan.drift.age_s = 60.0;
  }
  return plan;
}

std::string FaultSpecString(const FaultPlan& plan) {
  std::ostringstream out;
  if (plan.stuck.fraction > 0.0) out << "stuck=" << plan.stuck.fraction << ",";
  if (plan.chain.bit_flip_prob > 0.0) {
    out << "chain=" << plan.chain.bit_flip_prob << ",";
  }
  if (plan.drift.rate_std_rad_per_s > 0.0) {
    out << "drift=" << plan.drift.rate_std_rad_per_s << ",age=" << plan.drift.age_s
        << ",";
  }
  if (plan.burst.probability > 0.0) {
    out << "burst=" << plan.burst.probability << ":" << plan.burst.max_extra_us
        << ",";
  }
  out << "seed=" << plan.seed;
  return out.str();
}

}  // namespace metaai::fault
