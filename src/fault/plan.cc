#include "fault/plan.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"

namespace metaai::fault {
namespace {

Result<double> ParseDouble(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    return Error{ErrorCode::kParseError, "fault spec: bad numeric value for '" +
                                             key + "': '" + text + "'"};
  }
  return value;
}

Result<std::uint64_t> ParseSeed(const std::string& text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    return Error{ErrorCode::kParseError,
                 "fault spec: bad seed '" + text + "'"};
  }
  return static_cast<std::uint64_t>(value);
}

Error RangeError(const std::string& what) {
  return Error{ErrorCode::kInvalidArgument, "fault spec: " + what};
}

}  // namespace

bool FaultPlan::Any() const {
  return stuck.fraction > 0.0 || chain.bit_flip_prob > 0.0 ||
         (drift.rate_std_rad_per_s > 0.0 && drift.age_s > 0.0) ||
         (burst.probability > 0.0 && burst.max_extra_us > 0.0);
}

Result<FaultPlan> TryParseFaultSpec(const std::string& spec) {
  FaultPlan plan;
  bool age_given = false;
  std::stringstream stream(spec);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Error{ErrorCode::kParseError,
                   "fault spec: expected key=value, got '" + item + "'"};
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "stuck") {
      Result<double> parsed = ParseDouble(key, value);
      if (!parsed.ok()) return parsed.error();
      plan.stuck.fraction = *parsed;
      if (plan.stuck.fraction < 0.0 || plan.stuck.fraction > 1.0) {
        return RangeError("stuck fraction must be in [0, 1]");
      }
    } else if (key == "chain") {
      Result<double> parsed = ParseDouble(key, value);
      if (!parsed.ok()) return parsed.error();
      plan.chain.bit_flip_prob = *parsed;
      if (plan.chain.bit_flip_prob < 0.0 || plan.chain.bit_flip_prob > 1.0) {
        return RangeError("chain bit-flip probability must be in [0, 1]");
      }
    } else if (key == "drift") {
      Result<double> parsed = ParseDouble(key, value);
      if (!parsed.ok()) return parsed.error();
      plan.drift.rate_std_rad_per_s = *parsed;
      if (plan.drift.rate_std_rad_per_s < 0.0) {
        return RangeError("drift rate std must be >= 0");
      }
    } else if (key == "age") {
      Result<double> parsed = ParseDouble(key, value);
      if (!parsed.ok()) return parsed.error();
      plan.drift.age_s = *parsed;
      if (plan.drift.age_s < 0.0) return RangeError("age must be >= 0");
      age_given = true;
    } else if (key == "burst") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        return Error{ErrorCode::kParseError,
                     "fault spec: burst wants probability:max_extra_us"};
      }
      Result<double> probability = ParseDouble(key, value.substr(0, colon));
      if (!probability.ok()) return probability.error();
      Result<double> max_extra = ParseDouble(key, value.substr(colon + 1));
      if (!max_extra.ok()) return max_extra.error();
      plan.burst.probability = *probability;
      plan.burst.max_extra_us = *max_extra;
      if (plan.burst.probability < 0.0 || plan.burst.probability > 1.0) {
        return RangeError("burst probability must be in [0, 1]");
      }
      if (plan.burst.max_extra_us < 0.0) {
        return RangeError("burst max_extra_us must be >= 0");
      }
    } else if (key == "seed") {
      Result<std::uint64_t> parsed = ParseSeed(value);
      if (!parsed.ok()) return parsed.error();
      plan.seed = *parsed;
    } else {
      return Error{ErrorCode::kParseError,
                   "fault spec: unknown key '" + key + "'"};
    }
  }
  // A drift rate without an age would silently be a no-op; give it the
  // bench's default aging horizon instead.
  if (plan.drift.rate_std_rad_per_s > 0.0 && !age_given) {
    plan.drift.age_s = 60.0;
  }
  return plan;
}

std::string FaultSpecString(const FaultPlan& plan) {
  std::ostringstream out;
  if (plan.stuck.fraction > 0.0) out << "stuck=" << plan.stuck.fraction << ",";
  if (plan.chain.bit_flip_prob > 0.0) {
    out << "chain=" << plan.chain.bit_flip_prob << ",";
  }
  if (plan.drift.rate_std_rad_per_s > 0.0) {
    out << "drift=" << plan.drift.rate_std_rad_per_s << ",age=" << plan.drift.age_s
        << ",";
  }
  if (plan.burst.probability > 0.0) {
    out << "burst=" << plan.burst.probability << ":" << plan.burst.max_extra_us
        << ",";
  }
  out << "seed=" << plan.seed;
  return out.str();
}

}  // namespace metaai::fault
