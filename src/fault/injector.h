// Seeded realization of a FaultPlan against a concrete metasurface.
//
// The injector draws every static fault realization (which atoms are
// stuck, at which pinned codes, each atom's drift phasor) once at
// construction from Rng(plan.seed) with Fork() in a fixed order. Dynamic
// faults (chain corruption per pattern load, sync bursts per frame) take
// the caller's Rng so they ride the experiment's existing deterministic
// stream layout and stay reproducible at any --threads setting.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "fault/plan.h"
#include "mts/controller.h"
#include "mts/meta_atom.h"

namespace metaai::fault {

class FaultInjector {
 public:
  /// Realizes `plan` for a surface of `num_atoms` atoms driven by
  /// `controller`'s shift-register layout. A controller whose atom count
  /// disagrees with `num_atoms` (the zero value describes the 256-atom
  /// prototype) is reconciled to the surface: its atom count is replaced
  /// and its group count rounds down to the nearest divisor, so the
  /// group-major corruption layout always matches the panel it corrupts.
  explicit FaultInjector(FaultPlan plan, std::size_t num_atoms,
                         mts::ControllerConfig controller = {});

  const FaultPlan& plan() const { return plan_; }
  std::size_t num_atoms() const { return num_atoms_; }

  /// Stuck atoms, ascending. Empty when the stuck model is inactive.
  const std::vector<std::size_t>& stuck_atoms() const { return stuck_atoms_; }
  std::size_t num_stuck() const { return stuck_atoms_.size(); }

  /// The 2-bit code atom `atom` is pinned at (meaningful only for stuck
  /// atoms).
  mts::PhaseCode pinned_code(std::size_t atom) const;

  /// True if pattern loads are perturbed at all (stuck or chain active) —
  /// lets the transmit path skip per-symbol pattern copies otherwise.
  bool AffectsPatterns() const;

  /// Overwrites stuck atoms with their pinned codes. Returns the number
  /// of atoms whose code actually changed. Call *after* CorruptLoad: a
  /// stuck PIN driver wins over whatever the registers hold.
  std::size_t ApplyStuck(std::span<mts::PhaseCode> codes) const;

  /// Flips random bits of the in-flight pattern as the shift-register
  /// chains load it (group-major layout, 2 bits/atom). Draws from `rng`;
  /// returns the number of bits flipped. Uses geometric skipping so the
  /// cost is O(flips), not O(bits).
  std::size_t CorruptLoad(std::span<mts::PhaseCode> codes, Rng& rng) const;

  /// Per-atom aging phasors e^{j rate_m * age}; all-ones when drift is
  /// inactive. Multiplies into the steering vector of a link.
  const std::vector<std::complex<double>>& drift_phasors() const {
    return drift_phasors_;
  }
  bool HasDrift() const {
    return plan_.drift.rate_std_rad_per_s > 0.0 && plan_.drift.age_s > 0.0;
  }

  /// Extra sync-timing error for one frame: 0 unless the burst model
  /// triggers (probability per call), else uniform in
  /// [-max_extra_us, max_extra_us]. Always consumes the same number of
  /// draws from `rng` once the model is active, so downstream streams
  /// do not shift with the burst outcome.
  double SyncBurstOffsetUs(Rng& rng) const;

  /// 1 = healthy, 0 = stuck; sized num_atoms. Feed to
  /// mts::SolveOptions::atom_mask for the fault-aware re-solve.
  std::vector<std::uint8_t> HealthyMask() const;

 private:
  FaultPlan plan_;
  std::size_t num_atoms_ = 0;
  mts::ControllerConfig controller_;
  std::size_t atoms_per_group_ = 0;
  std::vector<std::size_t> stuck_atoms_;
  std::vector<mts::PhaseCode> pinned_codes_;  // sized num_atoms
  std::vector<std::uint8_t> is_stuck_;        // sized num_atoms
  std::vector<std::complex<double>> drift_phasors_;
};

}  // namespace metaai::fault
