// metaai::fault — deterministic hardware fault models for the metasurface
// control plane and RF timing path.
//
// The prototype's failure surface (§4): PIN-diode drivers can die or pin a
// meta-atom at one 2-bit code ("stuck"); the SN74LV595 shift-register
// chains can corrupt bits during a pattern load (marginal clocking, EMI);
// varactor/diode aging slowly drifts each atom's realized phase; and the
// energy-detector sync path occasionally mis-times a frame ("burst").
//
// A FaultPlan is a *schedule*, not a state: everything is derived from one
// 64-bit seed through Rng::Fork in a fixed order, so any experiment that
// carries a plan is bitwise reproducible at any --threads setting.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace metaai::fault {

/// A fixed fraction of atoms whose PIN drivers pin them at one random
/// 2-bit code. Stuck atoms ignore every pattern load, including the
/// mid-symbol flip of the §3.2 cancellation scheme.
struct StuckAtomSpec {
  double fraction = 0.0;  // in [0, 1]
};

/// Independent bit flips applied to the shift-register chains on every
/// pattern load (2 bits/atom, group-major layout per mts::Controller).
struct ChainCorruptionSpec {
  double bit_flip_prob = 0.0;  // per bit, per load
};

/// Slow per-atom phase drift: each atom m gets a rate drawn from
/// N(0, rate_std_rad_per_s); after age_s seconds its realized reflection
/// phase is offset by rate * age. Static over one experiment.
struct DriftSpec {
  double rate_std_rad_per_s = 0.0;
  double age_s = 0.0;
};

/// Transient sync bursts: with `probability` per sampled frame the
/// detector's timing estimate gains an extra uniform offset in
/// [-max_extra_us, max_extra_us].
struct SyncBurstSpec {
  double probability = 0.0;
  double max_extra_us = 0.0;
};

struct FaultPlan {
  std::uint64_t seed = 1;
  StuckAtomSpec stuck;
  ChainCorruptionSpec chain;
  DriftSpec drift;
  SyncBurstSpec burst;

  /// True if any fault model is active.
  bool Any() const;
};

/// Parses a compact spec like
///   "stuck=0.1,chain=1e-4,drift=0.5,age=60,burst=0.05:20,seed=7"
/// where drift is the rate std in rad/s (age defaults to 60 s if drift is
/// given without age) and burst is probability:max_extra_us. Unknown keys
/// or malformed values come back as ErrorCode::kParseError, out-of-range
/// values as ErrorCode::kInvalidArgument.
Result<FaultPlan> TryParseFaultSpec(const std::string& spec);

/// Canonical round-trippable spec string for a plan (only active models
/// are emitted; "seed=N" always is).
std::string FaultSpecString(const FaultPlan& plan);

}  // namespace metaai::fault
