#include "fault/injector.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace metaai::fault {

FaultInjector::FaultInjector(FaultPlan plan, std::size_t num_atoms,
                             mts::ControllerConfig controller)
    : plan_(plan), num_atoms_(num_atoms), controller_(controller) {
  Check(num_atoms_ > 0, "fault injector requires at least one atom");
  Check(controller_.num_groups > 0, "controller needs at least one group");
  // The controller config must describe the surface being driven: the
  // zero value carries the 256-atom/16-group prototype shape, which
  // previously leaked onto every surface and skewed the group-major
  // corruption layout for non-16x16 panels. Reconcile the atom count
  // and round the group count down to the nearest divisor (matching
  // mts::Controller's divisibility contract); the 256-atom default is
  // untouched.
  if (controller_.num_atoms != num_atoms_) {
    controller_.num_atoms = num_atoms_;
    std::size_t groups = std::min(controller_.num_groups, num_atoms_);
    while (groups > 1 && num_atoms_ % groups != 0) --groups;
    controller_.num_groups = groups;
  }
  atoms_per_group_ =
      (num_atoms_ + controller_.num_groups - 1) / controller_.num_groups;

  Rng root(plan_.seed);
  // Fixed fork order — adding a model must append here, never reorder,
  // or every committed fault realization changes.
  Rng stuck_rng = root.Fork();
  Rng drift_rng = root.Fork();

  is_stuck_.assign(num_atoms_, 0);
  pinned_codes_.assign(num_atoms_, 0);
  if (plan_.stuck.fraction > 0.0) {
    const auto count = static_cast<std::size_t>(
        std::llround(plan_.stuck.fraction * static_cast<double>(num_atoms_)));
    std::vector<std::size_t> order(num_atoms_);
    std::iota(order.begin(), order.end(), std::size_t{0});
    stuck_rng.Shuffle(order);
    stuck_atoms_.assign(order.begin(),
                        order.begin() + std::min(count, num_atoms_));
    std::sort(stuck_atoms_.begin(), stuck_atoms_.end());
    for (const std::size_t atom : stuck_atoms_) {
      is_stuck_[atom] = 1;
      pinned_codes_[atom] = static_cast<mts::PhaseCode>(
          stuck_rng.UniformInt(std::uint64_t{mts::kNumPhaseStates}));
    }
  }

  drift_phasors_.assign(num_atoms_, std::complex<double>{1.0, 0.0});
  if (HasDrift()) {
    for (std::size_t m = 0; m < num_atoms_; ++m) {
      const double rate = drift_rng.Normal(0.0, plan_.drift.rate_std_rad_per_s);
      drift_phasors_[m] = std::polar(1.0, rate * plan_.drift.age_s);
    }
  }
}

mts::PhaseCode FaultInjector::pinned_code(std::size_t atom) const {
  Check(atom < num_atoms_, "atom index out of range");
  return pinned_codes_[atom];
}

bool FaultInjector::AffectsPatterns() const {
  return !stuck_atoms_.empty() || plan_.chain.bit_flip_prob > 0.0;
}

std::size_t FaultInjector::ApplyStuck(std::span<mts::PhaseCode> codes) const {
  Check(codes.size() == num_atoms_, "pattern size must match the atom count");
  std::size_t changed = 0;
  for (const std::size_t atom : stuck_atoms_) {
    if (codes[atom] != pinned_codes_[atom]) {
      codes[atom] = pinned_codes_[atom];
      ++changed;
    }
  }
  return changed;
}

std::size_t FaultInjector::CorruptLoad(std::span<mts::PhaseCode> codes,
                                       Rng& rng) const {
  Check(codes.size() == num_atoms_, "pattern size must match the atom count");
  const double p = plan_.chain.bit_flip_prob;
  if (p <= 0.0) return 0;
  const std::size_t total_bits =
      num_atoms_ * static_cast<std::size_t>(mts::kPhaseBits);
  std::size_t flips = 0;
  if (p >= 1.0) {
    // Degenerate: every bit flips (codes XOR 0b11).
    for (auto& code : codes) {
      code = static_cast<mts::PhaseCode>(code ^ (mts::kNumPhaseStates - 1));
    }
    return total_bits;
  }
  // Geometric skipping: the gap to the next flipped bit is
  // floor(log(u) / log(1 - p)) with u in (0, 1], so the loop costs
  // O(expected flips) instead of O(bits) — a 512-bit chain at 1e-4 does
  // ~0.05 draws per load instead of 512 Bernoulli draws.
  const double log_keep = std::log1p(-p);
  std::size_t position = 0;
  while (true) {
    const double u = 1.0 - rng.Uniform();  // (0, 1]
    const double gap = std::floor(std::log(u) / log_keep);
    if (gap >= static_cast<double>(total_bits - position)) break;
    position += static_cast<std::size_t>(gap);
    // Bits stream group-major: group g drives atoms
    // [g * atoms_per_group, ...), 2 bits per atom, LSB first.
    const std::size_t group = position / (atoms_per_group_ * mts::kPhaseBits);
    const std::size_t in_group =
        position - group * atoms_per_group_ * mts::kPhaseBits;
    const std::size_t atom =
        group * atoms_per_group_ + in_group / mts::kPhaseBits;
    const std::size_t bit = in_group % mts::kPhaseBits;
    if (atom < num_atoms_) {
      codes[atom] = static_cast<mts::PhaseCode>(codes[atom] ^ (1u << bit));
      ++flips;
    }
    ++position;
    if (position >= total_bits) break;
  }
  return flips;
}

double FaultInjector::SyncBurstOffsetUs(Rng& rng) const {
  if (plan_.burst.probability <= 0.0 || plan_.burst.max_extra_us <= 0.0) {
    return 0.0;
  }
  // Draw both values unconditionally so the caller's stream advances by
  // a fixed amount per frame regardless of the burst outcome.
  const bool triggered = rng.Bernoulli(plan_.burst.probability);
  const double extra =
      rng.Uniform(-plan_.burst.max_extra_us, plan_.burst.max_extra_us);
  return triggered ? extra : 0.0;
}

std::vector<std::uint8_t> FaultInjector::HealthyMask() const {
  std::vector<std::uint8_t> mask(num_atoms_, 1);
  for (const std::size_t atom : stuck_atoms_) mask[atom] = 0;
  return mask;
}

}  // namespace metaai::fault
