// 3-D geometry and wave-propagation constants shared by the RF and
// metasurface substrates. All distances are in meters, frequencies in Hz,
// angles in radians unless a name says otherwise.
#pragma once

#include <cmath>

namespace metaai::rf {

inline constexpr double kSpeedOfLight = 299'792'458.0;  // m/s

/// Free-space wavelength at `frequency_hz`.
inline double Wavelength(double frequency_hz) {
  return kSpeedOfLight / frequency_hz;
}

/// Wave number k0 = 2*pi / lambda.
inline double WaveNumber(double frequency_hz) {
  return 2.0 * M_PI / Wavelength(frequency_hz);
}

inline double DegToRad(double degrees) { return degrees * M_PI / 180.0; }
inline double RadToDeg(double radians) { return radians * 180.0 / M_PI; }

/// Cartesian point/vector.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

  double Dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  double Norm() const { return std::sqrt(Dot(*this)); }

  Vec3 Normalized() const {
    const double n = Norm();
    return n > 0.0 ? Vec3{x / n, y / n, z / n} : Vec3{};
  }
};

/// Euclidean distance.
inline double Distance(const Vec3& a, const Vec3& b) { return (a - b).Norm(); }

/// Angle between two direction vectors, in [0, pi].
inline double AngleBetween(const Vec3& a, const Vec3& b) {
  const double na = a.Norm();
  const double nb = b.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  double c = a.Dot(b) / (na * nb);
  c = std::fmin(1.0, std::fmax(-1.0, c));
  return std::acos(c);
}

/// Places a point at `distance` from the origin in the x-y plane at `angle`
/// from the +x axis, at height z. Used to lay out Tx/Rx around the MTS.
inline Vec3 Polar(double distance, double angle, double z = 0.0) {
  return {distance * std::cos(angle), distance * std::sin(angle), z};
}

}  // namespace metaai::rf
