// Wireless channel models: free-space path loss and tapped-delay-line
// multipath with per-environment presets (corridor / office / laboratory),
// matching the three indoor test environments of §5.2.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "rf/signal.h"

namespace metaai::rf {

/// Friis free-space *amplitude* gain lambda / (4 pi d).
double FriisAmplitude(double distance_m, double wavelength_m);

/// Statistical description of an indoor environment's scatter.
struct MultipathProfile {
  std::string name;
  int num_scatter_paths = 6;
  /// Ratio of direct-path power to total scattered power, in dB. Higher
  /// K means a cleaner (less multipath) environment.
  double k_factor_db = 10.0;
  /// RMS delay spread of the scattered taps, in seconds.
  double delay_spread_s = 100e-9;
};

/// Presets matching the paper's three environments. The corridor is the
/// low-multipath case (Fig 17), the laboratory the richest.
MultipathProfile CorridorProfile();
MultipathProfile OfficeProfile();
MultipathProfile LaboratoryProfile();

/// One propagation path: complex gain and excess delay relative to the
/// first arrival.
struct PathTap {
  Complex gain;
  double delay_s = 0.0;
};

/// A static multipath channel realization between two endpoints: a direct
/// tap plus exponentially-decaying scattered taps with random phases.
///
/// The narrowband response at a given frequency offset is
///   H(f) = sum_taps gain_i * e^{-j 2 pi f tau_i}.
class MultipathChannel {
 public:
  /// Draws a realization. `direct_amplitude` is the deterministic gain of
  /// the direct path (from Friis + antennas); scattered power is set from
  /// the K-factor and scaled by `diffuse_gain` (antenna suppression).
  /// Set `direct_amplitude` to 0 for NLoS links (scatter only, power set
  /// by `nlos_reference_amplitude`).
  MultipathChannel(const MultipathProfile& profile, double direct_amplitude,
                   double diffuse_gain, Rng& rng,
                   double nlos_reference_amplitude = 0.0);

  /// Frequency-flat response (all taps at f = 0 ... i.e. sum of gains).
  Complex Response() const;

  /// Frequency-selective response at `freq_offset_hz` from the carrier.
  Complex Response(double freq_offset_hz) const;

  /// Response of the scattered taps only (no direct path); the MetaAI link
  /// model uses this as the "environment channel" H_e that bypasses the
  /// metasurface.
  Complex ScatterResponse(double freq_offset_hz = 0.0) const;

  const std::vector<PathTap>& taps() const { return taps_; }

  /// Largest excess delay across taps; must stay inside the cyclic prefix
  /// for the multipath-cancellation argument to hold.
  double MaxExcessDelay() const;

  /// Adds an extra time-varying tap (used for the walking interferer in
  /// Fig 26). Replaces any previously injected dynamic tap.
  void SetDynamicTap(PathTap tap);
  void ClearDynamicTap();

 private:
  std::vector<PathTap> taps_;      // taps_[0] is the direct path (may be 0)
  bool has_dynamic_tap_ = false;
  PathTap dynamic_tap_;
};

}  // namespace metaai::rf
