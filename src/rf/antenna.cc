#include "rf/antenna.h"

#include <cmath>

#include "rf/geometry.h"

namespace metaai::rf {

std::string AntennaName(AntennaType type) {
  return type == AntennaType::kOmni ? "Omni" : "Dire";
}

Antenna::Antenna(AntennaType type, double beamwidth_deg, double peak_gain,
                 double sidelobe_gain)
    : type_(type),
      beamwidth_rad_(DegToRad(beamwidth_deg)),
      peak_gain_(peak_gain),
      sidelobe_gain_(sidelobe_gain) {}

double Antenna::Gain(double angle_off_boresight_rad) const {
  if (type_ == AntennaType::kOmni) return 1.0;
  // Gaussian main lobe: -3 dB (half power) at half the beamwidth.
  const double half_bw = beamwidth_rad_ / 2.0;
  const double sigma_sq = half_bw * half_bw / (2.0 * std::log(2.0));
  const double lobe = peak_gain_ * std::exp(-angle_off_boresight_rad *
                                            angle_off_boresight_rad /
                                            (2.0 * sigma_sq));
  return std::max(lobe, sidelobe_gain_);
}

double Antenna::DiffuseGain() const {
  if (type_ == AntennaType::kOmni) return 1.0;
  // Integrate the pattern over arrival angle (0..pi) with a sin weight
  // (solid angle) to get the mean gain seen by diffuse scatter.
  constexpr int kSteps = 180;
  double num = 0.0;
  double den = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    const double theta = (static_cast<double>(i) + 0.5) * M_PI / kSteps;
    const double w = std::sin(theta);
    num += Gain(theta) * w;
    den += w;
  }
  return num / den;
}

}  // namespace metaai::rf
