#include "rf/fft.h"

#include <cmath>
#include <utility>

#include "common/check.h"

namespace metaai::rf {
namespace {

void BitReversePermute(std::span<Complex> data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (i < j) std::swap(data[i], data[j]);
    std::size_t mask = n >> 1;
    while (j & mask) {
      j ^= mask;
      mask >>= 1;
    }
    j |= mask;
  }
}

void Transform(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  Check(IsPowerOfTwo(n), "FFT length must be a power of two");
  BitReversePermute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI /
                         static_cast<double>(len);
    const Complex step(std::cos(angle), std::sin(angle));
    for (std::size_t block = 0; block < n; block += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex even = data[block + k];
        const Complex odd = data[block + k + len / 2] * w;
        data[block + k] = even + odd;
        data[block + k + len / 2] = even - odd;
        w *= step;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Complex& value : data) value *= scale;
  }
}

}  // namespace

bool IsPowerOfTwo(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

void Fft(std::span<Complex> data) { Transform(data, /*inverse=*/false); }

void Ifft(std::span<Complex> data) { Transform(data, /*inverse=*/true); }

}  // namespace metaai::rf
