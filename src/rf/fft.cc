#include "rf/fft.h"

#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "simd/kernels.h"

namespace metaai::rf {
namespace {

void BitReversePermute(std::span<Complex> data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (i < j) std::swap(data[i], data[j]);
    std::size_t mask = n >> 1;
    while (j & mask) {
      j ^= mask;
      mask >>= 1;
    }
    j |= mask;
  }
}

// Forward twiddles w_n^k = e^{-j 2 pi k / n} for k < n/2, each evaluated
// directly with std::polar. The previous w *= step recurrence accumulated
// one rounding error per butterfly across a stage, which at n = 4096 cost
// ~2 digits of accuracy versus a naive DFT. Each stage fetches its own
// contiguous size-len table. Cached per length; thread_local so concurrent
// transforms (the par fan-outs) need no locking and stay deterministic.
const std::vector<Complex>& ForwardTwiddles(std::size_t n) {
  thread_local std::unordered_map<std::size_t, std::vector<Complex>> cache;
  auto [it, inserted] = cache.try_emplace(n);
  if (inserted) {
    it->second.resize(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
      it->second[k] =
          std::polar(1.0, -2.0 * M_PI * static_cast<double>(k) /
                              static_cast<double>(n));
    }
  }
  return it->second;
}

void Transform(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  Check(IsPowerOfTwo(n), "FFT length must be a power of two");
  if (n == 1) return;
  BitReversePermute(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    // Stage `len` reads the size-n table at stride n/len, which is
    // exactly the contiguous size-len table: w_n^{k*(n/len)} = w_len^k
    // bitwise (the stride is a power of two, so the phase argument
    // -2*pi*(k*stride)/n evaluates to the same double as -2*pi*k/len).
    // Contiguous twiddles let the butterfly kernel run vectorized.
    const std::vector<Complex>& twiddles = ForwardTwiddles(len);
    const std::size_t half = len / 2;
    for (std::size_t block = 0; block < n; block += len) {
      simd::ButterflyPass(&data[block], &data[block + half], twiddles.data(),
                          half, inverse);
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (Complex& value : data) value *= scale;
  }
}

}  // namespace

bool IsPowerOfTwo(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

void Fft(std::span<Complex> data) { Transform(data, /*inverse=*/false); }

void Ifft(std::span<Complex> data) { Transform(data, /*inverse=*/true); }

}  // namespace metaai::rf
