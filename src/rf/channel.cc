#include "rf/channel.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace metaai::rf {

double FriisAmplitude(double distance_m, double wavelength_m) {
  Check(distance_m > 0.0, "FriisAmplitude requires positive distance");
  return wavelength_m / (4.0 * M_PI * distance_m);
}

MultipathProfile CorridorProfile() {
  return {.name = "Corridor",
          .num_scatter_paths = 4,
          .k_factor_db = 15.0,
          .delay_spread_s = 60e-9};
}

MultipathProfile OfficeProfile() {
  return {.name = "Office",
          .num_scatter_paths = 8,
          .k_factor_db = 6.0,
          .delay_spread_s = 120e-9};
}

MultipathProfile LaboratoryProfile() {
  return {.name = "Laboratory",
          .num_scatter_paths = 14,
          .k_factor_db = 0.0,
          .delay_spread_s = 180e-9};
}

MultipathChannel::MultipathChannel(const MultipathProfile& profile,
                                   double direct_amplitude,
                                   double diffuse_gain, Rng& rng,
                                   double nlos_reference_amplitude) {
  Check(profile.num_scatter_paths >= 0, "negative scatter path count");
  const bool line_of_sight = direct_amplitude > 0.0;
  taps_.push_back({Complex{direct_amplitude, 0.0}, 0.0});

  // Total scattered power relative to the direct path via the K-factor;
  // for NLoS links the caller supplies a reference amplitude instead.
  const double reference_power =
      line_of_sight ? direct_amplitude * direct_amplitude
                    : nlos_reference_amplitude * nlos_reference_amplitude;
  const double scatter_power =
      reference_power / DbToLinear(profile.k_factor_db) * diffuse_gain;
  if (profile.num_scatter_paths == 0 || scatter_power <= 0.0) return;

  // Exponentially decaying power-delay profile, random uniform phases.
  std::vector<double> weights(
      static_cast<std::size_t>(profile.num_scatter_paths));
  std::vector<double> delays(weights.size());
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    delays[i] = rng.Exponential(1.0 / profile.delay_spread_s);
    weights[i] = std::exp(-delays[i] / profile.delay_spread_s);
    weight_sum += weights[i];
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double power = scatter_power * weights[i] / weight_sum;
    taps_.push_back({rng.UnitPhasor() * std::sqrt(power), delays[i]});
  }
}

Complex MultipathChannel::Response() const { return Response(0.0); }

Complex MultipathChannel::Response(double freq_offset_hz) const {
  Complex h = taps_[0].gain;  // direct path has zero excess delay
  return h + ScatterResponse(freq_offset_hz);
}

Complex MultipathChannel::ScatterResponse(double freq_offset_hz) const {
  Complex h{0.0, 0.0};
  for (std::size_t i = 1; i < taps_.size(); ++i) {
    const double phase = -2.0 * M_PI * freq_offset_hz * taps_[i].delay_s;
    h += taps_[i].gain * Complex{std::cos(phase), std::sin(phase)};
  }
  if (has_dynamic_tap_) {
    const double phase = -2.0 * M_PI * freq_offset_hz * dynamic_tap_.delay_s;
    h += dynamic_tap_.gain * Complex{std::cos(phase), std::sin(phase)};
  }
  return h;
}

double MultipathChannel::MaxExcessDelay() const {
  double max_delay = 0.0;
  for (const PathTap& tap : taps_) max_delay = std::max(max_delay, tap.delay_s);
  if (has_dynamic_tap_) max_delay = std::max(max_delay, dynamic_tap_.delay_s);
  return max_delay;
}

void MultipathChannel::SetDynamicTap(PathTap tap) {
  dynamic_tap_ = tap;
  has_dynamic_tap_ = true;
}

void MultipathChannel::ClearDynamicTap() { has_dynamic_tap_ = false; }

}  // namespace metaai::rf
