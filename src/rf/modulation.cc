#include "rf/modulation.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"
#include "simd/kernels.h"

namespace metaai::rf {
namespace {

// Per-axis level count for square QAM (and degenerate cases).
int LevelsPerAxis(Modulation scheme) {
  switch (scheme) {
    case Modulation::kBpsk:
      return 2;  // real axis only
    case Modulation::kQpsk:
      return 2;
    case Modulation::kQam16:
      return 4;
    case Modulation::kQam64:
      return 8;
    case Modulation::kQam256:
      return 16;
  }
  throw CheckError("unknown modulation scheme");
}

bool IsComplexScheme(Modulation scheme) {
  return scheme != Modulation::kBpsk;
}

unsigned BinaryToGray(unsigned b) { return BinaryToGrayCode(b); }

unsigned GrayToBinary(unsigned g) { return GrayToBinaryCode(g); }

// Amplitude of binary level b in an L-level Gray-coded PAM: odd integers
// centred on zero, ordered so adjacent Gray codes are adjacent amplitudes.
double PamAmplitude(unsigned gray_bits, int levels) {
  const unsigned b = GrayToBinary(gray_bits);
  return 2.0 * static_cast<double>(b) - static_cast<double>(levels - 1);
}

// Nearest PAM binary level for a received amplitude. Uses the same
// round-half-away formula as simd::HardDecideQam (trunc(x +
// copysign(0.5, x))) so the per-symbol path and the batched kernel
// path decide identically; it differs from std::round only at inputs
// a half-ulp from a decision boundary, which noisy samples never hit.
unsigned PamDecide(double amplitude, int levels) {
  double idx = (amplitude + static_cast<double>(levels - 1)) / 2.0;
  idx = std::trunc(idx + std::copysign(0.5, idx));
  if (idx < 0.0) idx = 0.0;
  if (idx > levels - 1) idx = levels - 1;
  return BinaryToGray(static_cast<unsigned>(idx));
}

// Normalization so every constellation has unit average power.
double NormFactor(Modulation scheme) {
  const double levels = LevelsPerAxis(scheme);
  const double per_axis = (levels * levels - 1.0) / 3.0;
  const double power = IsComplexScheme(scheme) ? 2.0 * per_axis : per_axis;
  return std::sqrt(power);
}

Complex MapBits(unsigned value, Modulation scheme) {
  const int bits = BitsPerSymbol(scheme);
  const int levels = LevelsPerAxis(scheme);
  const double norm = NormFactor(scheme);
  if (!IsComplexScheme(scheme)) {
    return {PamAmplitude(value & 1u, levels) / norm, 0.0};
  }
  const int half = bits / 2;
  const unsigned i_bits = value >> half;
  const unsigned q_bits = value & ((1u << half) - 1u);
  return {PamAmplitude(i_bits, levels) / norm,
          PamAmplitude(q_bits, levels) / norm};
}

unsigned UnmapSymbol(Complex symbol, Modulation scheme) {
  const int bits = BitsPerSymbol(scheme);
  const int levels = LevelsPerAxis(scheme);
  const double norm = NormFactor(scheme);
  if (!IsComplexScheme(scheme)) {
    return PamDecide(symbol.real() * norm, levels) & 1u;
  }
  const int half = bits / 2;
  const unsigned i_bits = PamDecide(symbol.real() * norm, levels);
  const unsigned q_bits = PamDecide(symbol.imag() * norm, levels);
  return (i_bits << half) | q_bits;
}

}  // namespace

int BitsPerSymbol(Modulation scheme) {
  switch (scheme) {
    case Modulation::kBpsk:
      return 1;
    case Modulation::kQpsk:
      return 2;
    case Modulation::kQam16:
      return 4;
    case Modulation::kQam64:
      return 6;
    case Modulation::kQam256:
      return 8;
  }
  throw CheckError("unknown modulation scheme");
}

std::string ModulationName(Modulation scheme) {
  switch (scheme) {
    case Modulation::kBpsk:
      return "BPSK";
    case Modulation::kQpsk:
      return "QPSK";
    case Modulation::kQam16:
      return "16-QAM";
    case Modulation::kQam64:
      return "64-QAM";
    case Modulation::kQam256:
      return "256-QAM";
  }
  throw CheckError("unknown modulation scheme");
}

std::span<const Modulation> AllModulations() {
  static constexpr std::array<Modulation, 5> kAll = {
      Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16,
      Modulation::kQam64, Modulation::kQam256};
  return kAll;
}

Signal ModulateBits(std::span<const std::uint8_t> bits, Modulation scheme) {
  const int bps = BitsPerSymbol(scheme);
  Check(bits.size() % static_cast<std::size_t>(bps) == 0,
        "bit count must be a multiple of bits-per-symbol");
  Signal symbols;
  symbols.reserve(bits.size() / static_cast<std::size_t>(bps));
  for (std::size_t i = 0; i < bits.size(); i += static_cast<std::size_t>(bps)) {
    unsigned value = 0;
    for (int b = 0; b < bps; ++b) {
      Check(bits[i + static_cast<std::size_t>(b)] <= 1, "bits must be 0/1");
      value = (value << 1) | bits[i + static_cast<std::size_t>(b)];
    }
    symbols.push_back(MapBits(value, scheme));
  }
  return symbols;
}

std::vector<std::uint8_t> DemodulateSymbols(std::span<const Complex> symbols,
                                            Modulation scheme) {
  const int bps = BitsPerSymbol(scheme);
  std::vector<std::uint8_t> bits;
  bits.reserve(symbols.size() * static_cast<std::size_t>(bps));
  if (IsComplexScheme(scheme) && !symbols.empty()) {
    // Batch the hard decisions through the vectorized kernel; it packs
    // the same (gray_i << half) | gray_q values as UnmapSymbol.
    const int levels = LevelsPerAxis(scheme);
    const double norm = NormFactor(scheme);
    std::vector<std::uint32_t> values(symbols.size());
    simd::HardDecideQam(symbols.data(), symbols.size(), levels, norm, bps / 2,
                        values.data());
    for (const std::uint32_t value : values) {
      for (int b = bps - 1; b >= 0; --b) {
        bits.push_back(static_cast<std::uint8_t>((value >> b) & 1u));
      }
    }
    return bits;
  }
  for (const Complex& s : symbols) {
    const unsigned value = UnmapSymbol(s, scheme);
    for (int b = bps - 1; b >= 0; --b) {
      bits.push_back(static_cast<std::uint8_t>((value >> b) & 1u));
    }
  }
  return bits;
}

double SoftDecisionMargin(std::span<const Complex> symbols,
                          Modulation scheme) {
  if (symbols.empty()) return 0.0;
  const unsigned levels = 1u << BitsPerSymbol(scheme);
  double total = 0.0;
  for (const Complex& symbol : symbols) {
    double nearest = std::numeric_limits<double>::infinity();
    double second = std::numeric_limits<double>::infinity();
    for (unsigned v = 0; v < levels; ++v) {
      const double d = std::abs(symbol - MapBits(v, scheme));
      if (d < nearest) {
        second = nearest;
        nearest = d;
      } else if (d < second) {
        second = d;
      }
    }
    const double span = nearest + second;
    total += span > 0.0 ? (second - nearest) / span : 0.0;
  }
  return total / static_cast<double>(symbols.size());
}

Complex SymbolForLevel(unsigned level, Modulation scheme) {
  const unsigned max_level = 1u << BitsPerSymbol(scheme);
  Check(level < max_level, "level out of range for scheme");
  return MapBits(level, scheme);
}

unsigned LevelForSymbol(Complex symbol, Modulation scheme) {
  return UnmapSymbol(symbol, scheme);
}

unsigned BinaryToGrayCode(unsigned value) { return value ^ (value >> 1); }

unsigned GrayToBinaryCode(unsigned gray) {
  unsigned b = 0;
  for (; gray != 0; gray >>= 1) b ^= gray;
  return b;
}

}  // namespace metaai::rf
