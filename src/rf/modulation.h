// Digital modulation schemes used by the MetaAI input-encoding pipeline.
//
// The paper encodes each sample into data bits and modulates them with a
// configurable scheme (BPSK by default in the exposition, 256-QAM in the
// default experimental setup, with Fig 23 sweeping BPSK..256-QAM). All
// constellations here are Gray-mapped and normalized to unit average power
// so that changing the scheme does not change the transmit power.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rf/signal.h"

namespace metaai::rf {

enum class Modulation : std::uint8_t {
  kBpsk,
  kQpsk,
  kQam16,
  kQam64,
  kQam256,
};

/// Bits carried per symbol: 1, 2, 4, 6, 8.
int BitsPerSymbol(Modulation scheme);

/// Human-readable name ("BPSK", "256-QAM", ...).
std::string ModulationName(Modulation scheme);

/// All schemes in increasing order, for sweeps.
std::span<const Modulation> AllModulations();

/// Maps a bit string onto constellation symbols. The bit count must be a
/// multiple of BitsPerSymbol(scheme). Bits are consumed MSB-first per symbol.
Signal ModulateBits(std::span<const std::uint8_t> bits, Modulation scheme);

/// Hard-decision demodulation back to bits (minimum-distance per axis).
std::vector<std::uint8_t> DemodulateSymbols(std::span<const Complex> symbols,
                                            Modulation scheme);

/// Label-free soft-decision margin of received symbols: per symbol,
/// (d2 - d1) / (d1 + d2) with d1/d2 the distances to the nearest and
/// second-nearest constellation points — 1 exactly on a point, 0 on a
/// decision boundary. Returns the mean margin over `symbols` (0 for an
/// empty span). Needs no ground truth, so it tracks demod confidence —
/// and with it link quality — online; the health layer
/// (obs/health.h) uses it as an accuracy proxy.
double SoftDecisionMargin(std::span<const Complex> symbols, Modulation scheme);

/// Maps an integer level in [0, 2^bits) directly onto its constellation
/// point; used by the dataset encoder which quantizes a pixel to one symbol.
Complex SymbolForLevel(unsigned level, Modulation scheme);

/// Inverse of SymbolForLevel via hard decision.
unsigned LevelForSymbol(Complex symbol, Modulation scheme);

/// Gray-code helpers (exposed for encoders that need to construct bit
/// patterns whose constellation points are geometrically adjacent).
unsigned BinaryToGrayCode(unsigned value);
unsigned GrayToBinaryCode(unsigned gray);

}  // namespace metaai::rf
