#include "rf/signal.h"

#include <cmath>

namespace metaai::rf {

double AveragePower(std::span<const Complex> samples) {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (const Complex& s : samples) total += std::norm(s);
  return total / static_cast<double>(samples.size());
}

double DbToLinear(double db) { return std::pow(10.0, db / 10.0); }

double LinearToDb(double linear) { return 10.0 * std::log10(linear); }

double NoiseVariance(double signal_power, double snr_db) {
  return signal_power / DbToLinear(snr_db);
}

void AddAwgn(Signal& samples, double signal_power, double snr_db, Rng& rng) {
  const double variance = NoiseVariance(signal_power, snr_db);
  for (Complex& s : samples) s += rng.ComplexNormal(variance);
}

}  // namespace metaai::rf
