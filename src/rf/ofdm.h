// OFDM modulator/demodulator with cyclic prefix.
//
// MetaAI's subcarrier-based parallelism (Fig 9a / Eqn 9) sends the same
// input sequence on K subcarriers, with the metasurface providing a
// frequency-dependent weight per subcarrier; the cyclic prefix also backs
// the multipath-cancellation argument of §3.2 (all delayed copies fall
// inside the integration window).
#pragma once

#include <cstddef>
#include <vector>

#include "rf/signal.h"

namespace metaai::rf {

struct OfdmConfig {
  std::size_t num_subcarriers = 64;    // FFT size; power of two
  std::size_t cyclic_prefix_len = 16;  // samples
  double subcarrier_spacing_hz = 40e3; // paper: 40 kHz spacing
};

/// Converts between frequency-domain subcarrier symbols and time-domain
/// samples (IFFT + CP on transmit, CP removal + FFT on receive).
class Ofdm {
 public:
  explicit Ofdm(OfdmConfig config);

  const OfdmConfig& config() const { return config_; }

  /// Samples per OFDM symbol including the cyclic prefix.
  std::size_t SymbolLength() const;

  /// One OFDM symbol: `subcarrier_symbols` must have num_subcarriers
  /// entries; returns CP + IFFT output (SymbolLength() samples).
  Signal Modulate(const Signal& subcarrier_symbols) const;

  /// Inverse of Modulate for one OFDM symbol worth of samples.
  Signal Demodulate(const Signal& time_samples) const;

  /// Frequency offset of subcarrier k relative to the carrier, mapping
  /// k in [0, N) to [-N/2, N/2) * spacing (DC-centred layout).
  double SubcarrierOffsetHz(std::size_t k) const;

 private:
  OfdmConfig config_;
};

}  // namespace metaai::rf
