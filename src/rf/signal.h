// Complex-baseband signal helpers: power, dB conversions, AWGN.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "common/rng.h"

namespace metaai::rf {

using Complex = std::complex<double>;
using Signal = std::vector<Complex>;

/// Average power (mean |s|^2); returns 0 for an empty signal.
double AveragePower(std::span<const Complex> samples);

/// Decibel conversions for power ratios.
double DbToLinear(double db);
double LinearToDb(double linear);

/// Adds circularly-symmetric white Gaussian noise so that the resulting
/// per-sample SNR equals `snr_db` relative to `signal_power`.
void AddAwgn(Signal& samples, double signal_power, double snr_db, Rng& rng);

/// Noise variance that yields `snr_db` against `signal_power`.
double NoiseVariance(double signal_power, double snr_db);

}  // namespace metaai::rf
