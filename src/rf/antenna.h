// Antenna gain patterns. Fig 17 compares directional vs omni-directional
// antennas at the Tx/Rx: directional antennas suppress off-boresight
// multipath, which matters for the no-cancellation baseline.
#pragma once

#include <string>

namespace metaai::rf {

enum class AntennaType { kOmni, kDirectional };

std::string AntennaName(AntennaType type);

/// Simple rotationally-symmetric gain model. Omni: unity everywhere.
/// Directional: Gaussian main lobe with a side-lobe floor.
class Antenna {
 public:
  explicit Antenna(AntennaType type, double beamwidth_deg = 40.0,
                   double peak_gain = 4.0, double sidelobe_gain = 0.05);

  AntennaType type() const { return type_; }

  /// Amplitude gain at `angle_off_boresight_rad` (linear, not dB).
  double Gain(double angle_off_boresight_rad) const;

  /// Average gain over the sphere of scattered arrival directions; used to
  /// scale diffuse multipath power relative to the boresight path.
  double DiffuseGain() const;

 private:
  AntennaType type_;
  double beamwidth_rad_;
  double peak_gain_;
  double sidelobe_gain_;
};

}  // namespace metaai::rf
