#include "rf/ofdm.h"

#include "common/check.h"
#include "obs/obs.h"
#include "rf/fft.h"

namespace metaai::rf {

Ofdm::Ofdm(OfdmConfig config) : config_(config) {
  Check(IsPowerOfTwo(config_.num_subcarriers),
        "OFDM subcarrier count must be a power of two");
  Check(config_.cyclic_prefix_len < config_.num_subcarriers,
        "cyclic prefix must be shorter than the FFT size");
}

std::size_t Ofdm::SymbolLength() const {
  return config_.num_subcarriers + config_.cyclic_prefix_len;
}

Signal Ofdm::Modulate(const Signal& subcarrier_symbols) const {
  Check(subcarrier_symbols.size() == config_.num_subcarriers,
        "OFDM modulate: wrong subcarrier count");
  obs::Count("ofdm.modulations");
  Signal time = subcarrier_symbols;
  Ifft(time);
  Signal out;
  out.reserve(SymbolLength());
  // Cyclic prefix: the tail of the IFFT output prepended.
  out.insert(out.end(),
             time.end() - static_cast<std::ptrdiff_t>(config_.cyclic_prefix_len),
             time.end());
  out.insert(out.end(), time.begin(), time.end());
  return out;
}

Signal Ofdm::Demodulate(const Signal& time_samples) const {
  Check(time_samples.size() == SymbolLength(),
        "OFDM demodulate: wrong sample count");
  Signal freq(time_samples.begin() +
                  static_cast<std::ptrdiff_t>(config_.cyclic_prefix_len),
              time_samples.end());
  Fft(freq);
  obs::Count("ofdm.demodulations");
  if (obs::ProbesEnabled()) {
    // Per-subcarrier power of this symbol (FFT bin order); together
    // with SubcarrierOffsetHz this is the received spectrum.
    std::vector<double> power(freq.size());
    for (std::size_t k = 0; k < freq.size(); ++k) {
      power[k] = std::norm(freq[k]);
    }
    obs::Probe({.kind = obs::ProbeKind::kSpectrum,
                .site = "ofdm.demodulate",
                .values = {{"num_subcarriers",
                            static_cast<double>(freq.size())},
                           {"subcarrier_spacing_hz",
                            config_.subcarrier_spacing_hz}},
                .series = std::move(power)});
  }
  return freq;
}

double Ofdm::SubcarrierOffsetHz(std::size_t k) const {
  CheckIndex(k, config_.num_subcarriers, "subcarrier");
  const auto n = static_cast<std::ptrdiff_t>(config_.num_subcarriers);
  auto idx = static_cast<std::ptrdiff_t>(k);
  if (idx >= n / 2) idx -= n;  // FFT bin ordering -> centred offsets
  return static_cast<double>(idx) * config_.subcarrier_spacing_hz;
}

}  // namespace metaai::rf
