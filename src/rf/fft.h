// Radix-2 iterative FFT. Self-contained so the OFDM path has no external
// dependencies; sizes are restricted to powers of two, which is all OFDM
// needs.
#pragma once

#include <span>

#include "rf/signal.h"

namespace metaai::rf {

/// Returns true if n is a power of two (and > 0).
bool IsPowerOfTwo(std::size_t n);

/// In-place forward DFT: X[k] = sum_n x[n] e^{-j 2 pi k n / N}.
/// Requires a power-of-two length.
void Fft(std::span<Complex> data);

/// In-place inverse DFT with 1/N normalization (Ifft(Fft(x)) == x).
void Ifft(std::span<Complex> data);

}  // namespace metaai::rf
