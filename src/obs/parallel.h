// Telemetry-deterministic parallel fan-out.
//
// metaai::par guarantees deterministic *results* (static chunking +
// ForkRngs), but instrumented tasks also emit telemetry, and the shared
// Registry/ProbeSink order events by arrival: histogram float sums and
// probe seq numbers would depend on thread interleaving.
//
// DeterministicParallelFor fixes that by buffering: each task runs with
// a private Registry/ProbeSink installed as a thread-local override (see
// obs/obs.h), and the buffers are merged into the instruments that were
// installed at call entry in *task index order* after the fan-out
// completes. Buffering happens whenever telemetry is installed — even at
// thread count 1 — so every thread count produces the identical merged
// stream by construction. With no registry and no probe sink installed
// it degenerates to plain par::ParallelFor.
//
// Nesting composes: a nested DeterministicParallelFor issued from inside
// a task sees the outer task's buffer as its "parent" and merges into
// it, which the outer fan-out later merges onward in task order.
//
// Spans (obs::Tracer) are not buffered — the tracer keeps its own
// per-thread buffers and wall-clock durations are nondeterministic
// anyway; see obs/tracer.h.
//
// If a task throws, the fan-out's telemetry is discarded and the lowest
// task's exception propagates (same contract as par::ParallelFor).
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

#include "common/parallel.h"

namespace metaai::obs {

/// par::ParallelFor with per-task telemetry buffering merged in task
/// order (see file comment). Thread count 0 = par default resolution.
void DeterministicParallelFor(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              int num_threads = 0);

/// Ordered map on top of DeterministicParallelFor:
/// results[i] = fn(items[i]).
template <typename T, typename Fn>
auto DeterministicParallelMap(const std::vector<T>& items, Fn&& fn,
                              int num_threads = 0)
    -> std::vector<std::decay_t<decltype(fn(items[0]))>> {
  std::vector<std::decay_t<decltype(fn(items[0]))>> results(items.size());
  DeterministicParallelFor(
      items.size(), [&](std::size_t i) { results[i] = fn(items[i]); },
      num_threads);
  return results;
}

}  // namespace metaai::obs
