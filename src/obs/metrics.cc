#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace metaai::obs {

HistogramSpec HistogramSpec::Linear(double lo, double hi, std::size_t bins) {
  Check(bins > 0, "histogram needs at least one bucket");
  Check(hi > lo, "histogram range must be non-empty");
  HistogramSpec spec;
  spec.lower = lo;
  spec.upper_edges.reserve(bins);
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t i = 1; i <= bins; ++i) {
    spec.upper_edges.push_back(lo + width * static_cast<double>(i));
  }
  spec.upper_edges.back() = hi;  // exact upper bound despite rounding
  return spec;
}

HistogramSpec HistogramSpec::Exponential(double start, double factor,
                                         std::size_t bins) {
  Check(bins > 0, "histogram needs at least one bucket");
  Check(start > 0.0 && factor > 1.0, "exponential edges need start>0, factor>1");
  HistogramSpec spec;
  spec.lower = 0.0;
  spec.upper_edges.reserve(bins);
  double edge = start;
  for (std::size_t i = 0; i < bins; ++i) {
    spec.upper_edges.push_back(edge);
    edge *= factor;
  }
  return spec;
}

Histogram::Histogram(HistogramSpec spec)
    : spec_(std::move(spec)), buckets_(spec_.upper_edges.size() + 1) {
  Check(!spec_.upper_edges.empty(), "histogram needs at least one edge");
  Check(std::is_sorted(spec_.upper_edges.begin(), spec_.upper_edges.end()),
        "histogram edges must be sorted");
  Check(spec_.lower < spec_.upper_edges.front(),
        "histogram lower bound must precede the first edge");
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(spec_.upper_edges.begin(),
                                   spec_.upper_edges.end(), value);
  const auto index = static_cast<std::size_t>(
      std::distance(spec_.upper_edges.begin(), it));
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Merge(const HistogramSnapshot& other) {
  Check(other.lower == spec_.lower && other.upper_edges == spec_.upper_edges,
        "histogram merge requires an identical bucket layout");
  Check(other.bucket_counts.size() == buckets_.size(),
        "histogram merge requires matching bucket counts");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].fetch_add(other.bucket_counts[i], std::memory_order_relaxed);
  }
  count_.fetch_add(other.count, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + other.sum,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  const std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.lower = spec_.lower;
  snapshot.upper_edges = spec_.upper_edges;
  snapshot.bucket_counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_) {
    snapshot.bucket_counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snapshot.count = count();
  snapshot.sum = sum();
  return snapshot;
}

double Percentile(const HistogramSnapshot& h, double p) {
  if (h.count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(h.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
    const std::uint64_t in_bucket = h.bucket_counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lo = i == 0 ? h.lower : h.upper_edges[i - 1];
      if (i >= h.upper_edges.size()) return lo;  // overflow bucket
      const double hi = h.upper_edges[i];
      const double fraction =
          std::clamp((target - static_cast<double>(cumulative)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      return lo + fraction * (hi - lo);
    }
    cumulative += in_bucket;
  }
  // Unreachable when counts are consistent; fall back to the top edge.
  return h.upper_edges.back();
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& Registry::GetHistogram(std::string_view name,
                                  const HistogramSpec& spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name), spec).first->second;
}

void Registry::Merge(const RegistrySnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    GetCounter(name).Add(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    GetGauge(name).Set(value);
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    HistogramSpec spec;
    spec.lower = histogram.lower;
    spec.upper_edges = histogram.upper_edges;
    GetHistogram(name, spec).Merge(histogram);
  }
}

RegistrySnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter.value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge.value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram.Snapshot());
  }
  return snapshot;
}

}  // namespace metaai::obs
