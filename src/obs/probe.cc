#include "obs/probe.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "obs/export.h"

namespace metaai::obs {

std::string_view ProbeKindName(ProbeKind kind) {
  switch (kind) {
    case ProbeKind::kScalar:
      return "scalar";
    case ProbeKind::kEvm:
      return "evm";
    case ProbeKind::kSubcarrierSnr:
      return "subcarrier_snr";
    case ProbeKind::kSyncOffset:
      return "sync_offset";
    case ProbeKind::kSolverSweep:
      return "solver_sweep";
    case ProbeKind::kPhaseConfig:
      return "phase_config";
    case ProbeKind::kConstellation:
      return "constellation";
    case ProbeKind::kSpectrum:
      return "spectrum";
    case ProbeKind::kFault:
      return "fault";
    case ProbeKind::kServe:
      return "serve";
    case ProbeKind::kSloViolation:
      return "slo_violation";
  }
  throw CheckError("unknown probe kind");
}

ProbeSink::ProbeSink(std::size_t capacity) : capacity_(capacity) {
  Check(capacity_ > 0, "probe sink capacity must be positive");
  // No up-front reserve: the ring grows on demand up to capacity_, so
  // short-lived sinks (per-task buffers in obs::DeterministicParallelFor)
  // stay cheap even with the 64 Ki default capacity.
}

void ProbeSink::Add(ProbeRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  record.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
}

std::vector<ProbeRecord> ProbeSink::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ProbeRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<ProbeRecord> ProbeSink::TakeAll() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ProbeRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(std::move(ring_[(head_ + i) % ring_.size()]));
  }
  ring_.clear();
  head_ = 0;
  return out;
}

std::size_t ProbeSink::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t ProbeSink::total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t ProbeSink::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - ring_.size();
}

void ProbeSink::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
}

void WriteProbesJsonl(const ProbeSink& sink, std::ostream& os) {
  const std::vector<ProbeRecord> records = sink.Snapshot();
  os << "{\"schema\":\"metaai.probes.v1\",\"capacity\":" << sink.capacity()
     << ",\"total\":" << sink.total() << ",\"dropped\":" << sink.dropped()
     << "}\n";
  for (const ProbeRecord& record : records) {
    os << "{\"seq\":" << record.seq << ",\"kind\":\""
       << ProbeKindName(record.kind)
       << "\",\"site\":" << JsonString(record.site) << ",\"values\":{";
    for (std::size_t i = 0; i < record.values.size(); ++i) {
      const auto& [name, value] = record.values[i];
      os << (i > 0 ? "," : "") << JsonString(name) << ':'
         << JsonNumber(value);
    }
    os << '}';
    if (!record.series.empty()) {
      os << ",\"series\":[";
      for (std::size_t i = 0; i < record.series.size(); ++i) {
        os << (i > 0 ? "," : "") << JsonNumber(record.series[i]);
      }
      os << ']';
    }
    os << "}\n";
  }
}

std::string ToProbesJsonl(const ProbeSink& sink) {
  std::ostringstream os;
  WriteProbesJsonl(sink, os);
  return os.str();
}

bool WriteProbesFile(const ProbeSink& sink, const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) return false;
  WriteProbesJsonl(sink, os);
  return os.good();
}

}  // namespace metaai::obs
