#include "obs/lifecycle.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "obs/export.h"

namespace metaai::obs {
namespace {

/// Splits `text` into lines, dropping a trailing empty line.
std::vector<std::string_view> Lines(std::string_view text) {
  std::vector<std::string_view> lines;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    if (eol == std::string_view::npos) {
      lines.push_back(text);
      break;
    }
    lines.push_back(text.substr(0, eol));
    text.remove_prefix(eol + 1);
  }
  return lines;
}

const JsonValue& Member(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.Find(key);
  Check(value != nullptr,
        "metaai.requests.v1: missing member \"" + std::string(key) + "\"");
  return *value;
}

}  // namespace

std::string_view RequestStageName(RequestStage stage) {
  switch (stage) {
    case RequestStage::kAdmission:
      return "admission";
    case RequestStage::kQueueWait:
      return "queue_wait";
    case RequestStage::kBatching:
      return "batching";
    case RequestStage::kSolve:
      return "solve";
    case RequestStage::kAirtime:
      return "airtime";
    case RequestStage::kDemod:
      return "demod";
  }
  throw CheckError("unknown request stage");
}

double RequestTrace::Latency() const {
  double total = 0.0;
  for (const double s : stage_s) total += s;
  return total;
}

StageTails DigestStages(std::span<const RequestTrace> traces) {
  StageTails tails;
  std::vector<double> sample(traces.size(), 0.0);
  for (std::size_t s = 0; s < kNumRequestStages; ++s) {
    for (std::size_t i = 0; i < traces.size(); ++i) {
      sample[i] = traces[i].stage_s[s];
    }
    tails.stage[s] = DigestTails(sample);
  }
  for (std::size_t i = 0; i < traces.size(); ++i) {
    sample[i] = traces[i].Latency();
  }
  tails.latency = DigestTails(sample);
  return tails;
}

void WriteRequestsJsonl(const RequestLog& log, std::ostream& os) {
  os << "{\"schema\":\"metaai.requests.v1\",\"tenants\":[";
  for (std::size_t i = 0; i < log.tenants.size(); ++i) {
    os << (i > 0 ? "," : "") << JsonString(log.tenants[i]);
  }
  os << "],\"count\":" << log.traces.size() << "}\n";
  for (const RequestTrace& trace : log.traces) {
    os << "{\"id\":" << trace.id << ",\"tenant\":" << trace.tenant
       << ",\"cache_hit\":" << (trace.cache_hit ? "true" : "false")
       << ",\"arrival_s\":" << JsonNumber(trace.arrival_s)
       << ",\"slo_s\":" << JsonNumber(trace.slo_s) << ",\"stage_s\":[";
    for (std::size_t s = 0; s < kNumRequestStages; ++s) {
      os << (s > 0 ? "," : "") << JsonNumber(trace.stage_s[s]);
    }
    os << "],\"energy_j\":" << JsonNumber(trace.energy_j) << "}\n";
  }
}

std::string ToRequestsJsonl(const RequestLog& log) {
  std::ostringstream os;
  WriteRequestsJsonl(log, os);
  return os.str();
}

bool WriteRequestsFile(const RequestLog& log, const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) return false;
  WriteRequestsJsonl(log, os);
  return os.good();
}

RequestLog ParseRequestsJsonl(std::string_view text) {
  const std::vector<std::string_view> lines = Lines(text);
  Check(!lines.empty(), "metaai.requests.v1: empty document");
  const JsonValue header = ParseJson(lines[0]);
  const JsonValue* schema = header.Find("schema");
  Check(schema != nullptr && schema->string == "metaai.requests.v1",
        "metaai.requests.v1: bad schema header");
  RequestLog log;
  for (const JsonValue& tenant : Member(header, "tenants").array) {
    log.tenants.push_back(tenant.string);
  }
  const std::size_t count =
      static_cast<std::size_t>(Member(header, "count").number);
  Check(lines.size() == count + 1,
        "metaai.requests.v1: count does not match record lines");
  log.traces.reserve(count);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonValue record = ParseJson(lines[i]);
    RequestTrace trace;
    trace.id = static_cast<std::uint64_t>(Member(record, "id").number);
    trace.tenant = static_cast<std::uint32_t>(Member(record, "tenant").number);
    Check(trace.tenant < log.tenants.size(),
          "metaai.requests.v1: tenant index out of range");
    trace.cache_hit = Member(record, "cache_hit").boolean;
    trace.arrival_s = Member(record, "arrival_s").number;
    trace.slo_s = Member(record, "slo_s").number;
    const JsonValue& stages = Member(record, "stage_s");
    Check(stages.array.size() == kNumRequestStages,
          "metaai.requests.v1: stage_s must have one entry per stage");
    for (std::size_t s = 0; s < kNumRequestStages; ++s) {
      trace.stage_s[s] = stages.array[s].number;
    }
    trace.energy_j = Member(record, "energy_j").number;
    log.traces.push_back(std::move(trace));
  }
  return log;
}

}  // namespace metaai::obs
