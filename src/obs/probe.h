// Flight recorder for the simulated RF path: typed probe records
// collected in a bounded ring buffer (ProbeSink) and exported as
// "metaai.probes.v1" JSONL.
//
// Where the metrics Registry aggregates (counters, histograms), probes
// keep the *signal evidence* a physical-layer debugging session needs:
// per-round EVM, per-subcarrier SNR, sync-offset timelines, solver
// objective-vs-sweep curves, metasurface phase-config dumps and sampled
// constellation points. Every value is derived from seeded computation,
// so two identically-seeded runs record byte-identical probe streams.
//
// Call sites go through obs/obs.h:
//
//   if (obs::ProbesEnabled()) {
//     obs::Probe({.kind = obs::ProbeKind::kEvm, .site = "link.transmit",
//                 .values = {{"evm_rms", evm}}, .series = per_obs_evm});
//   }
//
// The ProbesEnabled() guard keeps payload computation out of the hot
// path when no sink is installed, and with -DMETAAI_OBS=OFF it is a
// constant false so the whole block compiles away.
//
// Threading contract: ProbeSink::Add and Snapshot are mutex-guarded and
// safe to call from concurrent workers (e.g. parallel bench paths); the
// seq order is the global arrival order under that mutex.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace metaai::obs {

/// What a probe record carries; serialized by name in the JSONL export.
enum class ProbeKind {
  kScalar,         // generic named scalars
  kEvm,            // error-vector magnitude of one transmission
  kSubcarrierSnr,  // per-observation (subcarrier/antenna) SNR in dB
  kSyncOffset,     // one sampled MTS clock offset (timeline entry)
  kSolverSweep,    // solver objective after each coordinate sweep
  kPhaseConfig,    // metasurface phase-code dump for one schedule entry
  kConstellation,  // sampled received constellation points (re/im pairs)
  kSpectrum,       // per-subcarrier power of one OFDM symbol
  kFault,          // fault diagnosis / recovery event (stuck counts, WDD)
  kServe,          // serving-runtime event (frame dispatch, admission)
  kSloViolation,   // a served request missed its tenant's latency SLO
};

std::string_view ProbeKindName(ProbeKind kind);

/// One flight-recorder entry: a kind, the instrumentation site
/// (`subsystem.point`), named scalar values and an optional ordered
/// series payload (what the series holds is fixed per kind; see the
/// schema note in EXPERIMENTS.md).
struct ProbeRecord {
  ProbeKind kind = ProbeKind::kScalar;
  /// Assigned by the sink on Add: global arrival index (never reused,
  /// so drops are visible as seq gaps at the front of the ring).
  std::uint64_t seq = 0;
  std::string site;
  std::vector<std::pair<std::string, double>> values;
  std::vector<double> series;

  bool operator==(const ProbeRecord&) const = default;
};

/// Bounded ring buffer of probe records: Add keeps the newest
/// `capacity` records and counts what it evicted. Thread-safe.
class ProbeSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit ProbeSink(std::size_t capacity = kDefaultCapacity);
  ProbeSink(const ProbeSink&) = delete;
  ProbeSink& operator=(const ProbeSink&) = delete;

  /// Stamps `record.seq` and appends it, evicting the oldest record
  /// when full.
  void Add(ProbeRecord record);

  /// Retained records, oldest first.
  std::vector<ProbeRecord> Snapshot() const;

  /// Moves the retained records out (oldest first) and clears the ring;
  /// total/dropped keep counting across the drain. Used by
  /// obs::DeterministicParallelFor to re-play per-task buffers into the
  /// parent sink without copying payloads.
  std::vector<ProbeRecord> TakeAll();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Records ever added / evicted by the ring wrapping.
  std::uint64_t total() const;
  std::uint64_t dropped() const;

  void Clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<ProbeRecord> ring_;  // circular, ring_[head_] is oldest
  std::size_t head_ = 0;
  std::uint64_t next_seq_ = 0;
};

/// Serializes the sink as "metaai.probes.v1" JSONL: a header line
///   {"schema":"metaai.probes.v1","capacity":C,"total":T,"dropped":D}
/// followed by one line per retained record, oldest first:
///   {"seq":S,"kind":"<kind>","site":"<site>",
///    "values":{...}[,"series":[...]]}
/// ("series" is omitted when empty.) Identical sink contents serialize
/// to identical bytes.
void WriteProbesJsonl(const ProbeSink& sink, std::ostream& os);
std::string ToProbesJsonl(const ProbeSink& sink);
/// Convenience: write to `path`. Returns false on I/O failure.
bool WriteProbesFile(const ProbeSink& sink, const std::string& path);

}  // namespace metaai::obs
