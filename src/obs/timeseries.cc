#include "obs/timeseries.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "obs/export.h"

namespace metaai::obs {

double TimeSeriesPoint::Value(std::string_view key) const {
  for (const auto& [name, value] : values) {
    if (name == key) return value;
  }
  return 0.0;
}

void WriteTimeSeriesJsonl(std::span<const TimeSeriesPoint> points,
                          std::ostream& os) {
  os << "{\"schema\":\"metaai.timeseries.v1\",\"count\":" << points.size()
     << "}\n";
  for (const TimeSeriesPoint& point : points) {
    os << "{\"t_s\":" << JsonNumber(point.t_s) << ",\"values\":{";
    for (std::size_t i = 0; i < point.values.size(); ++i) {
      const auto& [name, value] = point.values[i];
      os << (i > 0 ? "," : "") << JsonString(name) << ':' << JsonNumber(value);
    }
    os << "}}\n";
  }
}

std::string ToTimeSeriesJsonl(std::span<const TimeSeriesPoint> points) {
  std::ostringstream os;
  WriteTimeSeriesJsonl(points, os);
  return os.str();
}

bool WriteTimeSeriesFile(std::span<const TimeSeriesPoint> points,
                         const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) return false;
  WriteTimeSeriesJsonl(points, os);
  return os.good();
}

std::vector<TimeSeriesPoint> ParseTimeSeriesJsonl(std::string_view text) {
  Check(!text.empty(), "metaai.timeseries.v1: empty document");
  std::vector<std::string_view> lines;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    if (eol == std::string_view::npos) {
      lines.push_back(text);
      break;
    }
    lines.push_back(text.substr(0, eol));
    text.remove_prefix(eol + 1);
  }
  const JsonValue header = ParseJson(lines[0]);
  const JsonValue* schema = header.Find("schema");
  Check(schema != nullptr && schema->string == "metaai.timeseries.v1",
        "metaai.timeseries.v1: bad schema header");
  const JsonValue* count = header.Find("count");
  Check(count != nullptr, "metaai.timeseries.v1: missing count");
  Check(lines.size() == static_cast<std::size_t>(count->number) + 1,
        "metaai.timeseries.v1: count does not match record lines");
  std::vector<TimeSeriesPoint> points;
  points.reserve(lines.size() - 1);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonValue record = ParseJson(lines[i]);
    const JsonValue* t_s = record.Find("t_s");
    const JsonValue* values = record.Find("values");
    Check(t_s != nullptr && values != nullptr,
          "metaai.timeseries.v1: record needs t_s and values");
    TimeSeriesPoint point;
    point.t_s = t_s->number;
    for (const auto& [name, value] : values->object) {
      point.values.emplace_back(name, value.number);
    }
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<TimeSeriesPoint> MergeTimeSeries(
    std::span<const std::vector<TimeSeriesPoint>> sources,
    std::string_view tag_key) {
  std::vector<TimeSeriesPoint> merged;
  std::size_t total = 0;
  for (const std::vector<TimeSeriesPoint>& source : sources) {
    total += source.size();
  }
  merged.reserve(total);
  // Concatenation order = source order, so the stable sort's tie-break
  // is (source index, original position within the source).
  for (std::size_t s = 0; s < sources.size(); ++s) {
    for (const TimeSeriesPoint& point : sources[s]) {
      TimeSeriesPoint tagged;
      tagged.t_s = point.t_s;
      tagged.values.reserve(point.values.size() + (tag_key.empty() ? 0 : 1));
      if (!tag_key.empty()) {
        tagged.values.emplace_back(std::string(tag_key),
                                   static_cast<double>(s));
      }
      tagged.values.insert(tagged.values.end(), point.values.begin(),
                           point.values.end());
      merged.push_back(std::move(tagged));
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TimeSeriesPoint& a, const TimeSeriesPoint& b) {
                     return a.t_s < b.t_s;
                   });
  return merged;
}

}  // namespace metaai::obs
