// metaai::obs::health — online health monitoring over the telemetry
// streams.
//
// Where probes (obs/probe.h) are the *post-hoc* flight recorder, this
// layer consumes the same signals *in-stream* while a run is live:
// streaming estimators (EWMA mean/variance, CUSUM and Page–Hinkley
// change-point detectors, windowed nearest-rank quantiles) keyed by
// signal name, plus an adapter that maps probe records onto health
// signals (EVM, SNR, sync offset, solver residual, WDD density, SLO
// violations). The alert layer on top lives in obs/alerts.h.
//
// Everything here is deterministic plain data on a virtual clock: no
// wall time, no randomness, no background threads. Feeding identical
// observation sequences produces identical estimator states, so the
// serving runtime can evaluate health from its serial control loop and
// keep its exports byte-identical across thread counts.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/probe.h"
#include "obs/quantiles.h"

namespace metaai::obs::health {

/// Exponentially-weighted running mean and variance. The first sample
/// initializes the mean; variance uses the standard EWMA recursion
/// var' = (1 - alpha) * (var + alpha * (x - mean)^2).
struct EwmaConfig {
  /// Smoothing factor in (0, 1]; smaller = longer memory.
  double alpha = 0.05;
};

class EwmaEstimator {
 public:
  explicit EwmaEstimator(EwmaConfig config = {});

  void Observe(double value);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const { return variance_; }

 private:
  EwmaConfig config_;
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double variance_ = 0.0;
};

/// Two-sided CUSUM change-point detector. The first `warmup` samples
/// establish the reference mean and scale (standard deviation); after
/// warmup the cumulative sums
///   g+ = max(0, g+ + (x - mean)/scale - slack)
///   g- = max(0, g- + (mean - x)/scale - slack)
/// accumulate normalized deviations, and a change is declared when
/// either exceeds `threshold`. On detection the sums reset (the
/// reference is kept), so repeated detections need the deviation to
/// re-accumulate.
struct CusumConfig {
  std::size_t warmup = 16;
  /// Per-sample slack (k) in warmup-stddev units: deviations below this
  /// never accumulate.
  double slack = 0.5;
  /// Detection threshold (h) in warmup-stddev units.
  double threshold = 8.0;
};

class CusumDetector {
 public:
  explicit CusumDetector(CusumConfig config = {});

  /// Returns true when this sample completes a change-point.
  bool Observe(double value);

  bool warmed_up() const { return count_ >= config_.warmup; }
  double reference_mean() const { return mean_; }
  double positive() const { return positive_; }
  double negative() const { return negative_; }
  std::uint64_t count() const { return count_; }

 private:
  CusumConfig config_;
  std::uint64_t count_ = 0;
  // Welford accumulators during warmup.
  double mean_ = 0.0;
  double m2_ = 0.0;
  double scale_ = 1.0;
  double positive_ = 0.0;
  double negative_ = 0.0;
};

/// Two-sided Page–Hinkley drift detector. After the warmup (which fixes
/// the normalization scale like CusumDetector), the running mean of all
/// samples anchors two cumulative deviations with opposite delta bias
///   up_t   = up_{t-1}   + (x_t - mean_t)/scale - delta
///   down_t = down_{t-1} + (x_t - mean_t)/scale + delta
/// and drift is declared when up_t rises `lambda` above its running
/// minimum (upward drift) or down_t falls `lambda` below its running
/// maximum (downward drift). Resets the accumulators on detection.
struct PageHinkleyConfig {
  std::size_t warmup = 16;
  /// Tolerated per-sample drift, in warmup-stddev units.
  double delta = 0.05;
  /// Detection threshold, in warmup-stddev units.
  double lambda = 10.0;
};

class PageHinkleyDetector {
 public:
  explicit PageHinkleyDetector(PageHinkleyConfig config = {});

  /// Returns true when this sample completes a drift detection.
  bool Observe(double value);

  bool warmed_up() const { return count_ >= config_.warmup; }
  double running_mean() const { return mean_; }
  std::uint64_t count() const { return count_; }

 private:
  PageHinkleyConfig config_;
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double scale_ = 1.0;
  double up_ = 0.0;
  double min_up_ = 0.0;
  double down_ = 0.0;
  double max_down_ = 0.0;
};

/// Sliding-window nearest-rank quantiles (reuses obs/quantiles): keeps
/// the last `window` samples and answers percentile queries over them.
class WindowedQuantile {
 public:
  explicit WindowedQuantile(std::size_t window = 128);

  void Observe(double value);

  /// Nearest-rank percentile over the current window; 0 when empty.
  double Quantile(double q) const;
  TailDigest Tails() const;

  std::size_t size() const { return samples_.size(); }
  std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  std::deque<double> samples_;
};

/// One signal's streaming summary, readable at any point in the run.
struct SignalStats {
  std::uint64_t count = 0;
  double last = 0.0;
  double ewma_mean = 0.0;
  double ewma_variance = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;

  bool operator==(const SignalStats&) const = default;
};

struct HealthMonitorConfig {
  EwmaConfig ewma;
  std::size_t quantile_window = 128;
};

/// Per-signal streaming state keyed by signal name. Signals are created
/// lazily on first Observe; iteration order is first-observation order,
/// which is deterministic because callers feed the monitor serially.
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthMonitorConfig config = {});

  void Observe(std::string_view signal, double value);

  bool Has(std::string_view signal) const;
  /// Zero stats when the signal has never been observed.
  SignalStats Stats(std::string_view signal) const;
  /// Signal names in first-observation order.
  const std::vector<std::string>& Signals() const { return names_; }

 private:
  struct State {
    EwmaEstimator ewma;
    WindowedQuantile window;
    double last = 0.0;
    std::uint64_t count = 0;
  };

  const State* Find(std::string_view signal) const;

  HealthMonitorConfig config_;
  std::vector<std::string> names_;
  std::vector<State> states_;
};

// Canonical health-signal names fed by the probe adapter below and by
// the serving runtime's label-free accuracy proxy.
inline constexpr std::string_view kSignalEvm = "evm_rms";
inline constexpr std::string_view kSignalSnrDb = "snr_db";
inline constexpr std::string_view kSignalSyncOffsetUs = "sync_offset_us";
inline constexpr std::string_view kSignalSolverResidual = "solver_residual";
inline constexpr std::string_view kSignalWddDensity = "wdd_density";
inline constexpr std::string_view kSignalSloViolation = "slo_violation";
inline constexpr std::string_view kSignalAccuracyProxy = "accuracy_proxy";

/// Maps one probe record onto (signal, value) pairs: EVM (`evm_rms`,
/// plus `accuracy_proxy` when the record carries a link soft-decision
/// margin), per-observation SNR (`snr_db`, series mean), sync offset
/// (`sync_offset_us`), solver residual (`solver_residual`), WDD density
/// (`wdd_density`) and SLO violations (`slo_violation`, the
/// latency/target ratio). Kinds outside the health vocabulary map to
/// nothing.
std::vector<std::pair<std::string, double>> HealthSignalsFromProbe(
    const ProbeRecord& record);

/// Feeds every health signal of `record` into `monitor`; returns the
/// number of signals observed.
std::size_t ObserveProbe(HealthMonitor& monitor, const ProbeRecord& record);

}  // namespace metaai::obs::health
