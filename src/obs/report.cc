#include "obs/report.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "obs/alerts.h"
#include "obs/export.h"
#include "obs/lifecycle.h"
#include "obs/timeseries.h"

namespace metaai::obs {
namespace {

std::string Us(double seconds) { return FormatDouble(seconds * 1e6, 3); }

/// Count-gated percentile cell: an empty digest has no percentile, so
/// render "n/a" instead of a fabricated 0.000 (the historical bug made
/// an idle tenant look infinitely fast).
std::string UsCell(const TailDigest& digest, double seconds) {
  return digest.count == 0 ? "n/a" : Us(seconds);
}

/// Per-tenant aggregation of a request log.
struct TenantRow {
  std::size_t served = 0;
  bool cache_hit = false;
  double slo_s = 0.0;
  std::size_t slo_within = 0;
  std::size_t slo_violations = 0;
  std::vector<double> latencies;
  double energy_j = 0.0;
};

void RenderRequests(const std::string& requests_jsonl, std::ostream& os) {
  const RequestLog log = ParseRequestsJsonl(requests_jsonl);
  const StageTails tails = DigestStages(log.traces);

  Table stages("Stage latency over " + std::to_string(log.traces.size()) +
                   " served requests",
               {"stage", "p50_us", "p99_us", "p999_us"});
  for (std::size_t s = 0; s < kNumRequestStages; ++s) {
    const TailDigest& d = tails.stage[s];
    stages.AddRow({std::string(RequestStageName(static_cast<RequestStage>(s))),
                   UsCell(d, d.p50), UsCell(d, d.p99), UsCell(d, d.p999)});
  }
  stages.AddRow({"end_to_end", UsCell(tails.latency, tails.latency.p50),
                 UsCell(tails.latency, tails.latency.p99),
                 UsCell(tails.latency, tails.latency.p999)});
  os << stages.ToString() << '\n';

  std::vector<TenantRow> tenants(log.tenants.size());
  double energy_total_j = 0.0;
  std::size_t within = 0;
  std::size_t violations = 0;
  for (const RequestTrace& trace : log.traces) {
    TenantRow& row = tenants[trace.tenant];
    ++row.served;
    row.cache_hit = row.cache_hit || trace.cache_hit;
    row.slo_s = trace.slo_s;
    if (trace.SloViolated()) {
      ++row.slo_violations;
      ++violations;
    } else {
      ++row.slo_within;
      ++within;
    }
    row.latencies.push_back(trace.Latency());
    row.energy_j += trace.energy_j;
    energy_total_j += trace.energy_j;
  }

  Table per_tenant("Per-tenant serving",
                   {"tenant", "served", "cache", "slo_ms", "within",
                    "violations", "p50_us", "p99_us", "p999_us", "energy_uj"});
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantRow& row = tenants[t];
    const TailDigest digest = DigestTails(row.latencies);
    per_tenant.AddRow({log.tenants[t], std::to_string(row.served),
                       row.cache_hit ? "hit" : "solve",
                       FormatDouble(row.slo_s * 1e3, 3),
                       std::to_string(row.slo_within),
                       std::to_string(row.slo_violations),
                       UsCell(digest, digest.p50), UsCell(digest, digest.p99),
                       UsCell(digest, digest.p999),
                       FormatDouble(row.energy_j * 1e6, 3)});
  }
  os << per_tenant.ToString() << '\n';

  os << "SLO: " << within << '/' << log.traces.size()
     << " within target, " << violations << " violations\n";
  const double per_inference_j =
      log.traces.empty() ? 0.0
                         : energy_total_j /
                               static_cast<double>(log.traces.size());
  os << "Energy: total " << FormatDouble(energy_total_j * 1e6, 3)
     << " uJ, per inference " << FormatDouble(per_inference_j * 1e6, 3)
     << " uJ\n\n";
}

void RenderProbes(const std::string& probes_jsonl, std::ostream& os) {
  std::string_view text = probes_jsonl;
  std::vector<std::string_view> lines;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    if (eol == std::string_view::npos) {
      lines.push_back(text);
      break;
    }
    lines.push_back(text.substr(0, eol));
    text.remove_prefix(eol + 1);
  }
  Check(!lines.empty(), "metaai.probes.v1: empty document");
  const JsonValue header = ParseJson(lines[0]);
  const JsonValue* schema = header.Find("schema");
  Check(schema != nullptr && schema->string == "metaai.probes.v1",
        "metaai.probes.v1: bad schema header");
  const JsonValue* total = header.Find("total");
  const JsonValue* dropped = header.Find("dropped");
  Check(total != nullptr && dropped != nullptr,
        "metaai.probes.v1: header needs total/dropped");

  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonValue record = ParseJson(lines[i]);
    const JsonValue* site = record.Find("site");
    const JsonValue* kind = record.Find("kind");
    Check(site != nullptr && kind != nullptr,
          "metaai.probes.v1: record needs site and kind");
    ++counts[{site->string, kind->string}];
  }

  Table probes("Probes (total " +
                   std::to_string(static_cast<std::uint64_t>(total->number)) +
                   ", dropped " +
                   std::to_string(
                       static_cast<std::uint64_t>(dropped->number)) +
                   ")",
               {"site", "kind", "count"});
  for (const auto& [key, count] : counts) {
    probes.AddRow({key.first, key.second, std::to_string(count)});
  }
  os << probes.ToString() << '\n';
}

void RenderTimeSeries(const std::string& timeseries_jsonl, std::ostream& os) {
  const std::vector<TimeSeriesPoint> points =
      ParseTimeSeriesJsonl(timeseries_jsonl);
  struct KeyStats {
    std::size_t ticks = 0;
    double min = 0.0;
    double max = 0.0;
    double last = 0.0;
  };
  std::map<std::string, KeyStats> keys;
  for (const TimeSeriesPoint& point : points) {
    for (const auto& [name, value] : point.values) {
      auto [it, inserted] = keys.try_emplace(name);
      KeyStats& stats = it->second;
      if (inserted) {
        stats.min = value;
        stats.max = value;
      }
      ++stats.ticks;
      stats.min = std::min(stats.min, value);
      stats.max = std::max(stats.max, value);
      stats.last = value;
    }
  }
  Table series("Time series (" + std::to_string(points.size()) + " ticks)",
               {"key", "ticks", "min", "max", "last"});
  for (const auto& [name, stats] : keys) {
    series.AddRow({name, std::to_string(stats.ticks),
                   FormatDouble(stats.min, 4), FormatDouble(stats.max, 4),
                   FormatDouble(stats.last, 4)});
  }
  os << series.ToString() << '\n';
}

void RenderAlerts(const std::string& alerts_jsonl, std::ostream& os) {
  const std::vector<health::Alert> alerts =
      health::AlertsFromJsonl(alerts_jsonl);
  std::size_t critical = 0;
  std::size_t drift = 0;
  for (const health::Alert& alert : alerts) {
    if (alert.severity == health::AlertSeverity::kCritical) ++critical;
    if (alert.kind == health::AlertKind::kDriftDetected) ++drift;
  }
  Table table("Alerts (" + std::to_string(alerts.size()) + " total, " +
                  std::to_string(critical) + " critical, " +
                  std::to_string(drift) + " drift)",
              {"seq", "t_s", "severity", "kind", "rule", "signal", "value",
               "threshold", "tenant"});
  for (const health::Alert& alert : alerts) {
    table.AddRow({std::to_string(alert.seq), FormatDouble(alert.t_s, 4),
                  std::string(health::AlertSeverityName(alert.severity)),
                  std::string(health::AlertKindName(alert.kind)), alert.rule,
                  alert.signal, FormatDouble(alert.value, 4),
                  FormatDouble(alert.threshold, 4),
                  std::to_string(alert.tenant)});
  }
  os << table.ToString() << '\n';
}

}  // namespace

std::string RenderObsReport(const ObsReportInputs& inputs) {
  std::ostringstream os;
  os << "metaai obs report\n\n";
  if (!inputs.requests_jsonl.empty()) RenderRequests(inputs.requests_jsonl, os);
  if (!inputs.timeseries_jsonl.empty()) {
    RenderTimeSeries(inputs.timeseries_jsonl, os);
  }
  if (!inputs.alerts_jsonl.empty()) RenderAlerts(inputs.alerts_jsonl, os);
  if (!inputs.metrics_json.empty()) {
    const RegistrySnapshot snapshot =
        SnapshotFromJson(ParseJson(inputs.metrics_json));
    os << SummaryTable(snapshot).ToString() << '\n';
  }
  if (!inputs.probes_jsonl.empty()) RenderProbes(inputs.probes_jsonl, os);
  return os.str();
}

}  // namespace metaai::obs
