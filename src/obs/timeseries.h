// Virtual-time time-series telemetry ("metaai.timeseries.v1").
//
// Where the metrics Registry aggregates a whole run into final values,
// a time series keeps the *trajectory*: one snapshot of named gauges
// per virtual-time tick (the serving runtime ticks once per dispatched
// TDMA frame — queue depths, in-flight count, frame utilization, cache
// hit rate, cumulative admission counts). Ticks are appended from the
// single-threaded control loop — never from worker tasks — so the
// series and its JSONL export are byte-identical across thread counts.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace metaai::obs {

/// One snapshot tick: named values at virtual time `t_s`. Value order
/// is the append order and is part of the serialized bytes, so call
/// sites must emit keys in a fixed order.
struct TimeSeriesPoint {
  double t_s = 0.0;
  std::vector<std::pair<std::string, double>> values;

  /// Value lookup by key; 0 when absent.
  double Value(std::string_view key) const;

  bool operator==(const TimeSeriesPoint&) const = default;
};

/// Serializes a series as "metaai.timeseries.v1" JSONL: a header line
///   {"schema":"metaai.timeseries.v1","count":N}
/// followed by one line per point, in order:
///   {"t_s":T,"values":{"<key>":V,...}}
/// Identical series serialize to identical bytes.
void WriteTimeSeriesJsonl(std::span<const TimeSeriesPoint> points,
                          std::ostream& os);
std::string ToTimeSeriesJsonl(std::span<const TimeSeriesPoint> points);
/// Convenience: write to `path`. Returns false on I/O failure.
bool WriteTimeSeriesFile(std::span<const TimeSeriesPoint> points,
                         const std::string& path);

/// Parses a "metaai.timeseries.v1" document; throws CheckError on
/// schema mismatch or malformed lines.
std::vector<TimeSeriesPoint> ParseTimeSeriesJsonl(std::string_view text);

/// Deterministically merges per-source series into one timeline:
/// every point is prefixed with a {tag_key, source index} value, then
/// all points are stable-sorted by t_s with ties broken by source
/// index (and original order within a source). The merge is a pure
/// function of the inputs, so fleet-level rollups stay byte-identical
/// across thread counts. An empty tag_key skips the tagging.
std::vector<TimeSeriesPoint> MergeTimeSeries(
    std::span<const std::vector<TimeSeriesPoint>> sources,
    std::string_view tag_key);

}  // namespace metaai::obs
