#include "obs/quantiles.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace metaai::obs {
namespace {

double SortedNearestRank(std::span<const double> sorted, double q) {
  Check(q > 0.0 && q <= 1.0, "nearest-rank percentile requires q in (0, 1]");
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank > 0 ? rank - 1 : 0, sorted.size() - 1)];
}

/// NaN has no place in a rank statistic: it breaks the strict weak
/// ordering std::sort requires, so the sort itself would be UB. Reject
/// loudly instead of silently producing an arbitrary percentile.
std::vector<double> SortedCopy(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  for (const double value : sorted) {
    Check(!std::isnan(value), "nearest-rank percentile rejects NaN samples");
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

std::optional<double> TryNearestRankPercentile(std::span<const double> values,
                                               double q) {
  if (values.empty()) return std::nullopt;
  const std::vector<double> sorted = SortedCopy(values);
  return SortedNearestRank(sorted, q);
}

double NearestRankPercentile(std::span<const double> values, double q) {
  Check(!values.empty(),
        "nearest-rank percentile of an empty sample (use "
        "TryNearestRankPercentile to handle emptiness explicitly)");
  const std::vector<double> sorted = SortedCopy(values);
  return SortedNearestRank(sorted, q);
}

std::optional<std::vector<double>> TryNearestRankPercentiles(
    std::span<const double> values, std::span<const double> qs) {
  if (values.empty()) return std::nullopt;
  const std::vector<double> sorted = SortedCopy(values);
  std::vector<double> results(qs.size(), 0.0);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    results[i] = SortedNearestRank(sorted, qs[i]);
  }
  return results;
}

std::vector<double> NearestRankPercentiles(std::span<const double> values,
                                           std::span<const double> qs) {
  Check(!values.empty(),
        "nearest-rank percentiles of an empty sample (use "
        "TryNearestRankPercentiles to handle emptiness explicitly)");
  return *TryNearestRankPercentiles(values, qs);
}

TailDigest DigestTails(std::span<const double> values) {
  static constexpr double kQs[] = {0.50, 0.99, 0.999};
  const std::optional<std::vector<double>> ps =
      TryNearestRankPercentiles(values, kQs);
  if (!ps.has_value()) return {};  // count == 0 marks the empty sample
  return {.p50 = (*ps)[0], .p99 = (*ps)[1], .p999 = (*ps)[2],
          .count = values.size()};
}

}  // namespace metaai::obs
