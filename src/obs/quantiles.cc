#include "obs/quantiles.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace metaai::obs {
namespace {

double SortedNearestRank(std::span<const double> sorted, double q) {
  Check(q > 0.0 && q <= 1.0, "nearest-rank percentile requires q in (0, 1]");
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(rank > 0 ? rank - 1 : 0, sorted.size() - 1)];
}

/// NaN has no place in a rank statistic: it breaks the strict weak
/// ordering std::sort requires, so the sort itself would be UB. Reject
/// loudly instead of silently producing an arbitrary percentile.
std::vector<double> SortedCopy(std::span<const double> values) {
  std::vector<double> sorted(values.begin(), values.end());
  for (const double value : sorted) {
    Check(!std::isnan(value), "nearest-rank percentile rejects NaN samples");
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

double NearestRankPercentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  const std::vector<double> sorted = SortedCopy(values);
  return SortedNearestRank(sorted, q);
}

std::vector<double> NearestRankPercentiles(std::span<const double> values,
                                           std::span<const double> qs) {
  std::vector<double> results(qs.size(), 0.0);
  if (values.empty()) return results;
  const std::vector<double> sorted = SortedCopy(values);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    results[i] = SortedNearestRank(sorted, qs[i]);
  }
  return results;
}

TailDigest DigestTails(std::span<const double> values) {
  static constexpr double kQs[] = {0.50, 0.99, 0.999};
  const std::vector<double> ps = NearestRankPercentiles(values, kQs);
  return {.p50 = ps[0], .p99 = ps[1], .p999 = ps[2]};
}

}  // namespace metaai::obs
