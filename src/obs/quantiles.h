// Shared nearest-rank percentile helpers.
//
// Latency reporting across the serving stack (ServeStats, bench
// headline tables, the obs report tool) uses nearest-rank percentiles:
// the value at rank ceil(q * n) of the sorted sample — an actual
// observed value, never an interpolation, which is the right convention
// for tail latencies (p99/p999 of 47 samples is the worst sample, not a
// number between two samples). This is distinct from the
// linear-interpolated metaai::Percentile in common/stats.h, which the
// figure-reproduction benches use for CDF readouts.
//
// All helpers sort once; TailDigest is the standard p50/p99/p999 readout
// minted for SLO accounting.
//
// Empty samples: an empty sample has no percentile, and silently
// reporting 0.0 is indistinguishable from a true zero (the historical
// bug: an idle tenant's "p50 latency 0.0s" read as infinitely fast).
// The Try variants make emptiness explicit (nullopt); the non-Try forms
// treat an empty sample as a caller bug and throw CheckError. TailDigest
// carries the sample count so renderers can count-gate ("n/a" instead
// of a fabricated 0).
#pragma once

#include <optional>
#include <span>
#include <vector>

namespace metaai::obs {

/// Nearest-rank percentile, q in (0, 1]; nullopt for an empty sample.
/// Throws CheckError on NaN samples (a NaN breaks the sort ordering).
std::optional<double> TryNearestRankPercentile(std::span<const double> values,
                                               double q);

/// As TryNearestRankPercentile, but an empty sample throws CheckError —
/// use when the caller has already established the sample is non-empty.
double NearestRankPercentile(std::span<const double> values, double q);

/// Batch of nearest-rank percentiles from one sort of `values`:
/// results[i] corresponds to qs[i]; nullopt for an empty sample. Prefer
/// this over repeated single calls (each re-copies and re-sorts).
std::optional<std::vector<double>> TryNearestRankPercentiles(
    std::span<const double> values, std::span<const double> qs);

/// As TryNearestRankPercentiles, but an empty sample throws CheckError.
std::vector<double> NearestRankPercentiles(std::span<const double> values,
                                           std::span<const double> qs);

/// The standard tail readout: p50/p99/p999 from one sort, plus the
/// sample count. count == 0 means "no sample": the percentile fields
/// are meaningless placeholders (0.0) and renderers must gate on count.
struct TailDigest {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  std::size_t count = 0;

  bool operator==(const TailDigest&) const = default;
};

/// Accepts an empty sample (returns a count == 0 digest).
TailDigest DigestTails(std::span<const double> values);

}  // namespace metaai::obs
