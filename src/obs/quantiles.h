// Shared nearest-rank percentile helpers.
//
// Latency reporting across the serving stack (ServeStats, bench
// headline tables, the obs report tool) uses nearest-rank percentiles:
// the value at rank ceil(q * n) of the sorted sample — an actual
// observed value, never an interpolation, which is the right convention
// for tail latencies (p99/p999 of 47 samples is the worst sample, not a
// number between two samples). This is distinct from the
// linear-interpolated metaai::Percentile in common/stats.h, which the
// figure-reproduction benches use for CDF readouts.
//
// All helpers sort once; TailDigest is the standard p50/p99/p999 readout
// minted for SLO accounting.
#pragma once

#include <span>
#include <vector>

namespace metaai::obs {

/// Nearest-rank percentile, q in (0, 1]; returns 0 for an empty sample.
/// Throws CheckError on NaN samples (a NaN breaks the sort ordering).
double NearestRankPercentile(std::span<const double> values, double q);

/// Batch of nearest-rank percentiles from one sort of `values`:
/// results[i] corresponds to qs[i]. Prefer this over repeated
/// NearestRankPercentile calls (each re-copies and re-sorts).
std::vector<double> NearestRankPercentiles(std::span<const double> values,
                                           std::span<const double> qs);

/// The standard tail readout: p50/p99/p999 from one sort.
struct TailDigest {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  bool operator==(const TailDigest&) const = default;
};

TailDigest DigestTails(std::span<const double> values);

}  // namespace metaai::obs
