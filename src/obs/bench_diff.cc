#include "obs/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace metaai::obs {
namespace {

const JsonValue& Member(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.Find(key);
  Check(value != nullptr, "missing JSON member: " + std::string(key));
  return *value;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Time-like metrics get the loose wall-clock tolerance in
/// DistillBaseline (machine-dependent, only catastrophic drift fails).
/// Ratios of wall-clock measurements (speedup_*, throughput_*) are just
/// as machine-dependent even though they don't carry a time suffix.
bool IsTimeLike(std::string_view path) {
  if (path == "elapsed_s") return true;
  if (!StartsWith(path, "headlines.")) return false;
  const std::string_view key = path.substr(10);
  if (StartsWith(key, "speedup_") || StartsWith(key, "throughput_")) {
    return true;
  }
  return EndsWith(path, "_ns") || EndsWith(path, "_us") ||
         EndsWith(path, "_ms") || EndsWith(path, "_s");
}

}  // namespace

double BaselineMetric::Allowed() const {
  return abs_tol + rel_tol * std::abs(value);
}

BenchBaseline BaselineFromJson(const JsonValue& document) {
  Check(document.type == JsonValue::Type::kObject,
        "baseline document must be a JSON object");
  const JsonValue& schema = Member(document, "schema");
  Check(schema.string == "metaai.bench.baseline.v1",
        "unsupported baseline schema: " + schema.string);
  BenchBaseline baseline;
  baseline.bench = Member(document, "bench").string;
  Check(!baseline.bench.empty(), "baseline bench name is empty");
  for (const auto& [path, spec] : Member(document, "metrics").object) {
    BaselineMetric metric;
    metric.path = path;
    metric.value = Member(spec, "value").number;
    if (const JsonValue* v = spec.Find("abs_tol")) metric.abs_tol = v->number;
    if (const JsonValue* v = spec.Find("rel_tol")) metric.rel_tol = v->number;
    baseline.metrics.push_back(std::move(metric));
  }
  return baseline;
}

std::string BaselineToJson(const BenchBaseline& baseline) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"metaai.bench.baseline.v1\",\n  \"bench\": "
     << JsonString(baseline.bench) << ",\n  \"metrics\": {";
  for (std::size_t i = 0; i < baseline.metrics.size(); ++i) {
    const BaselineMetric& m = baseline.metrics[i];
    os << (i > 0 ? ",\n    " : "\n    ") << JsonString(m.path)
       << ": {\"value\": " << JsonNumber(m.value)
       << ", \"abs_tol\": " << JsonNumber(m.abs_tol)
       << ", \"rel_tol\": " << JsonNumber(m.rel_tol) << "}";
  }
  os << (baseline.metrics.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::optional<double> ExtractBenchMetric(const JsonValue& bench_document,
                                         std::string_view path) {
  auto number = [](const JsonValue* value) -> std::optional<double> {
    if (value == nullptr || value->type != JsonValue::Type::kNumber) {
      return std::nullopt;
    }
    return value->number;
  };
  if (path == "elapsed_s") return number(bench_document.Find("elapsed_s"));
  if (path.substr(0, 10) == "headlines.") {
    const JsonValue* headlines = bench_document.Find("headlines");
    if (headlines == nullptr) return std::nullopt;
    return number(headlines->Find(path.substr(10)));
  }
  // The remaining paths address the embedded metaai.obs.v1 document.
  const JsonValue* metrics = bench_document.Find("metrics");
  if (metrics == nullptr) return std::nullopt;
  if (path.substr(0, 9) == "counters.") {
    const JsonValue* counters = metrics->Find("counters");
    if (counters == nullptr) return std::nullopt;
    return number(counters->Find(path.substr(9)));
  }
  if (path.substr(0, 7) == "gauges.") {
    const JsonValue* gauges = metrics->Find("gauges");
    if (gauges == nullptr) return std::nullopt;
    return number(gauges->Find(path.substr(7)));
  }
  if (path.substr(0, 11) == "histograms.") {
    std::string_view rest = path.substr(11);
    std::string_view field;
    for (std::string_view candidate : {".count", ".sum"}) {
      if (EndsWith(rest, candidate)) {
        field = candidate.substr(1);
        rest = rest.substr(0, rest.size() - candidate.size());
        break;
      }
    }
    if (field.empty()) return std::nullopt;
    const JsonValue* histograms = metrics->Find("histograms");
    if (histograms == nullptr) return std::nullopt;
    const JsonValue* histogram = histograms->Find(rest);
    if (histogram == nullptr) return std::nullopt;
    return number(histogram->Find(field));
  }
  return std::nullopt;
}

std::string_view DiffStatusName(DiffStatus status) {
  switch (status) {
    case DiffStatus::kPass:
      return "ok";
    case DiffStatus::kRegress:
      return "REGRESS";
    case DiffStatus::kMissing:
      return "MISSING";
  }
  throw CheckError("unknown diff status");
}

bool BenchDiffReport::ok() const {
  return std::all_of(metrics.begin(), metrics.end(), [](const MetricDiff& m) {
    return m.status == DiffStatus::kPass;
  });
}

BenchDiffReport DiffBench(const BenchBaseline& baseline,
                          const JsonValue& bench_document) {
  BenchDiffReport report;
  report.bench = baseline.bench;
  for (const BaselineMetric& metric : baseline.metrics) {
    MetricDiff diff;
    diff.path = metric.path;
    diff.baseline = metric.value;
    diff.allowed = metric.Allowed();
    const std::optional<double> current =
        ExtractBenchMetric(bench_document, metric.path);
    if (!current.has_value()) {
      diff.status = DiffStatus::kMissing;
    } else {
      diff.current = *current;
      diff.status = std::abs(*current - metric.value) <= diff.allowed
                        ? DiffStatus::kPass
                        : DiffStatus::kRegress;
    }
    report.metrics.push_back(std::move(diff));
  }
  return report;
}

Table BenchDiffTable(const BenchDiffReport& report) {
  Table table("Bench diff: " + report.bench,
              {"Metric", "Baseline", "Current", "Delta", "Allowed",
               "Status"});
  for (const MetricDiff& m : report.metrics) {
    const bool missing = m.status == DiffStatus::kMissing;
    table.AddRow({m.path, FormatDouble(m.baseline, 6),
                  missing ? "-" : FormatDouble(m.current, 6),
                  missing ? "-" : FormatDouble(m.current - m.baseline, 6),
                  FormatDouble(m.allowed, 6),
                  std::string(DiffStatusName(m.status))});
  }
  return table;
}

BenchBaseline DistillBaseline(const JsonValue& bench_document) {
  const JsonValue& schema = Member(bench_document, "schema");
  Check(schema.string == "metaai.bench.v1",
        "unsupported bench schema: " + schema.string);
  BenchBaseline baseline;
  baseline.bench = Member(bench_document, "bench").string;

  auto add = [&](std::string path, double value, double abs_tol,
                 double rel_tol) {
    baseline.metrics.push_back(
        {std::move(path), value, abs_tol, rel_tol});
  };
  auto add_default = [&](std::string path, double value) {
    if (IsTimeLike(path)) {
      // Wall clock: only a ~10x blowup fails.
      add(std::move(path), value, /*abs_tol=*/1.0, /*rel_tol=*/9.0);
    } else {
      add(std::move(path), value, /*abs_tol=*/1e-9, /*rel_tol=*/1e-6);
    }
  };

  if (const JsonValue* elapsed = bench_document.Find("elapsed_s")) {
    add("elapsed_s", elapsed->number, /*abs_tol=*/2.0, /*rel_tol=*/9.0);
  }
  if (const JsonValue* headlines = bench_document.Find("headlines")) {
    for (const auto& [key, value] : headlines->object) {
      add_default("headlines." + key, value.number);
    }
  }
  if (const JsonValue* metrics = bench_document.Find("metrics")) {
    if (const JsonValue* counters = metrics->Find("counters")) {
      for (const auto& [name, value] : counters->object) {
        add("counters." + name, value.number, 0.0, 0.0);
      }
    }
    if (const JsonValue* gauges = metrics->Find("gauges")) {
      for (const auto& [name, value] : gauges->object) {
        add_default("gauges." + name, value.number);
      }
    }
    if (const JsonValue* histograms = metrics->Find("histograms")) {
      for (const auto& [name, histogram] : histograms->object) {
        add("histograms." + name + ".count",
            Member(histogram, "count").number, 0.0, 0.0);
        add_default("histograms." + name + ".sum",
                    Member(histogram, "sum").number);
      }
    }
  }
  std::sort(baseline.metrics.begin(), baseline.metrics.end(),
            [](const BaselineMetric& a, const BaselineMetric& b) {
              return a.path < b.path;
            });
  return baseline;
}

}  // namespace metaai::obs
