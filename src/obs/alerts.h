// metaai::obs::health — deterministic rule-based alerting over the
// streaming health estimators (obs/health.h).
//
// An AlertEngine owns an ordered rule list. Each Observe(signal, t_s,
// value) evaluates the rules bound to that signal in registration
// order and appends any fired alerts to the caller's vector, stamping
// sequence numbers from the vector size — so one shared alert vector
// fed from a serial control loop yields one globally ordered,
// deterministic stream regardless of how many engines (e.g. one per
// tenant) feed it.
//
// Three rule families:
//   - threshold: value crosses a bound, with a hysteresis band the
//     signal must re-enter before the rule re-arms;
//   - rate-of-change: |value - previous| exceeds a per-observation step;
//   - change-point: a CUSUM or Page–Hinkley detector fires (these emit
//     AlertKind::kDriftDetected — the class the fault watchdog reacts
//     to).
// All rules honor a per-rule cooldown in *virtual* time: no wall clocks
// anywhere, so identical observation sequences emit identical alerts.
//
// The stream serializes as "metaai.alerts.v1" JSONL, byte-identical for
// identical alert vectors like every other export in this library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/health.h"

namespace metaai::obs::health {

enum class AlertKind {
  kThreshold,      // a bound was crossed
  kRateOfChange,   // the signal moved too fast
  kDriftDetected,  // a change-point detector fired (watchdog trigger)
};

std::string_view AlertKindName(AlertKind kind);

enum class AlertSeverity { kInfo, kWarning, kCritical };

std::string_view AlertSeverityName(AlertSeverity severity);

/// One emitted alert. Plain data; the JSONL export serializes every
/// field. `tenant` is -1 when the alert is not tenant-scoped.
struct Alert {
  std::uint64_t seq = 0;
  /// Virtual time of the observation that fired the rule.
  double t_s = 0.0;
  AlertKind kind = AlertKind::kThreshold;
  AlertSeverity severity = AlertSeverity::kWarning;
  std::string rule;
  std::string signal;
  /// The observed value and the bound/threshold it tripped.
  double value = 0.0;
  double threshold = 0.0;
  std::int32_t tenant = -1;

  bool operator==(const Alert&) const = default;
};

/// Fires when the value crosses `bound` (above when `fire_above`, below
/// otherwise). After firing the rule disarms until the signal returns
/// past the hysteresis band bound * (1 -+ hysteresis), so a value
/// hovering at the bound emits one alert, not one per observation.
struct ThresholdRule {
  double bound = 0.0;
  bool fire_above = true;
  /// Re-arm band as a fraction of |bound|; 0 re-arms as soon as the
  /// value is back on the healthy side.
  double hysteresis = 0.0;
};

/// Fires when |value - previous observation| exceeds `max_step`.
struct RateOfChangeRule {
  double max_step = 0.0;
};

enum class ChangeDetector { kCusum, kPageHinkley };

/// Fires when the configured change-point detector fires; emits
/// AlertKind::kDriftDetected.
struct ChangePointRule {
  ChangeDetector detector = ChangeDetector::kCusum;
  CusumConfig cusum;
  PageHinkleyConfig page_hinkley;
};

/// One rule binding: exactly one of threshold/rate/change must be set.
struct AlertRule {
  std::string name;
  std::string signal;
  AlertSeverity severity = AlertSeverity::kWarning;
  /// Minimum virtual time between consecutive alerts from this rule.
  double cooldown_s = 0.0;
  std::optional<ThresholdRule> threshold;
  std::optional<RateOfChangeRule> rate;
  std::optional<ChangePointRule> change;
};

class AlertEngine {
 public:
  /// `tenant` stamps every emitted alert (-1 = not tenant-scoped).
  explicit AlertEngine(std::int32_t tenant = -1,
                       HealthMonitorConfig monitor = {});

  /// Throws CheckError unless exactly one rule variant is set.
  void AddRule(AlertRule rule);

  /// Feeds the monitor and evaluates this signal's rules in
  /// registration order at virtual time `t_s`, appending fired alerts
  /// to `out` with seq = out.size() at emission.
  void Observe(std::string_view signal, double t_s, double value,
               std::vector<Alert>& out);

  /// Convenience: feeds every health signal extracted from a probe
  /// record (see HealthSignalsFromProbe) at virtual time `t_s`.
  void ObserveProbe(const ProbeRecord& record, double t_s,
                    std::vector<Alert>& out);

  const HealthMonitor& monitor() const { return monitor_; }
  std::int32_t tenant() const { return tenant_; }
  std::size_t num_rules() const { return rules_.size(); }
  std::uint64_t alerts_emitted() const { return emitted_; }

 private:
  struct RuleState {
    AlertRule rule;
    bool armed = true;
    bool has_fired = false;
    double last_fire_s = 0.0;
    bool has_prev = false;
    double prev = 0.0;
    std::optional<CusumDetector> cusum;
    std::optional<PageHinkleyDetector> page_hinkley;
  };

  std::int32_t tenant_;
  HealthMonitor monitor_;
  std::vector<RuleState> rules_;
  std::uint64_t emitted_ = 0;
};

/// The standard link-health rule set used by serve::Runtime and the
/// fault benches: EVM ceiling, SNR floor, accuracy-proxy collapse +
/// CUSUM drift, sync-offset Page–Hinkley drift, and an SLO-violation
/// magnitude ceiling.
std::vector<AlertRule> DefaultLinkHealthRules();

/// Serializes alerts as "metaai.alerts.v1" JSONL: a header line
///   {"schema":"metaai.alerts.v1","count":N}
/// followed by one line per alert, in order:
///   {"seq":S,"t_s":T,"kind":"<kind>","severity":"<severity>",
///    "rule":"<rule>","signal":"<signal>","value":V,"threshold":H,
///    "tenant":N}
/// Identical alert vectors serialize to identical bytes.
void WriteAlertsJsonl(const std::vector<Alert>& alerts, std::ostream& os);
std::string ToAlertsJsonl(const std::vector<Alert>& alerts);
/// Convenience: write to `path`. Returns false on I/O failure.
bool WriteAlertsFile(const std::vector<Alert>& alerts,
                     const std::string& path);

/// Parses a "metaai.alerts.v1" document (the inverse of
/// WriteAlertsJsonl). Throws CheckError on schema mismatch or malformed
/// lines.
std::vector<Alert> AlertsFromJsonl(std::string_view text);

}  // namespace metaai::obs::health
