// Instrumentation entry points used by library code.
//
// Call sites write
//
//   obs::Count("ota.rounds", rounds);
//   obs::SetGauge("train.loss", loss);
//   obs::Observe("solver.sweeps_per_solve", sweeps, kSweepBuckets);
//   const obs::ScopedSpan span = obs::Span("ota.round");
//
// and pay nothing when telemetry is off: with the CMake option
// -DMETAAI_OBS=OFF the helpers are empty inlines (the instrumented hot
// paths compile to no-ops); with telemetry compiled in but no registry
// installed they cost one pointer load and branch.
//
// Install/uninstall the process-global registry and tracer with
// ScopedRegistry / ScopedTracer (tools and tests) — nothing is installed
// by default.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "obs/probe.h"
#include "obs/tracer.h"

// Defined (0/1) on the metaai_obs CMake target; default on for direct
// non-CMake consumers of the headers.
#ifndef METAAI_OBS_ENABLED
#define METAAI_OBS_ENABLED 1
#endif

namespace metaai::obs {

/// Process-global registry/tracer/probe sink; null when not installed.
Registry* registry();
Tracer* tracer();
ProbeSink* probe_sink();
/// Returns the previously installed pointer (for manual restore).
Registry* SetRegistry(Registry* registry);
Tracer* SetTracer(Tracer* tracer);
ProbeSink* SetProbeSink(ProbeSink* sink);

/// Thread-local overrides consulted before the process globals by
/// registry()/probe_sink(). obs::DeterministicParallelFor installs a
/// per-task buffer here while a worker runs one task, so task telemetry
/// can be merged in task order regardless of scheduling. Null clears the
/// override; returns the previous override on this thread.
Registry* SetThreadLocalRegistry(Registry* registry);
ProbeSink* SetThreadLocalProbeSink(ProbeSink* sink);

/// Installs `registry` for the current scope and restores the previous
/// one on destruction.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* registry)
      : previous_(SetRegistry(registry)) {}
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;
  ~ScopedRegistry() { SetRegistry(previous_); }

 private:
  Registry* previous_;
};

class ScopedTracer {
 public:
  explicit ScopedTracer(Tracer* tracer) : previous_(SetTracer(tracer)) {}
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;
  ~ScopedTracer() { SetTracer(previous_); }

 private:
  Tracer* previous_;
};

class ScopedProbeSink {
 public:
  explicit ScopedProbeSink(ProbeSink* sink)
      : previous_(SetProbeSink(sink)) {}
  ScopedProbeSink(const ScopedProbeSink&) = delete;
  ScopedProbeSink& operator=(const ScopedProbeSink&) = delete;
  ~ScopedProbeSink() { SetProbeSink(previous_); }

 private:
  ProbeSink* previous_;
};

#if METAAI_OBS_ENABLED

inline void Count(std::string_view name, std::uint64_t n = 1) {
  if (Registry* r = registry()) r->GetCounter(name).Add(n);
}

inline void SetGauge(std::string_view name, double value) {
  if (Registry* r = registry()) r->GetGauge(name).Set(value);
}

inline void Observe(std::string_view name, double value,
                    const HistogramSpec& spec) {
  if (Registry* r = registry()) r->GetHistogram(name, spec).Observe(value);
}

inline ScopedSpan Span(std::string_view name) {
  return ScopedSpan(tracer(), name);
}

/// True when a probe sink is installed. Call sites use this to skip
/// probe payload computation entirely:
///   if (obs::ProbesEnabled()) { ...build record...; obs::Probe(...); }
inline bool ProbesEnabled() { return probe_sink() != nullptr; }

inline void Probe(ProbeRecord record) {
  if (ProbeSink* s = probe_sink()) s->Add(std::move(record));
}

#else

inline void Count(std::string_view, std::uint64_t = 1) {}
inline void SetGauge(std::string_view, double) {}
inline void Observe(std::string_view, double, const HistogramSpec&) {}
inline ScopedSpan Span(std::string_view) { return ScopedSpan(nullptr, {}); }
/// Constant false: probe blocks behind `if (obs::ProbesEnabled())`
/// compile away entirely with -DMETAAI_OBS=OFF.
constexpr bool ProbesEnabled() { return false; }
inline void Probe(ProbeRecord) {}

#endif  // METAAI_OBS_ENABLED

}  // namespace metaai::obs
