// Text report over the five telemetry exports: renders any subset of a
// metrics document ("metaai.obs.v1"), a probe stream
// ("metaai.probes.v1"), a time series ("metaai.timeseries.v1"), a
// request log ("metaai.requests.v1") and an alert stream
// ("metaai.alerts.v1") into one deterministic per-stage / per-tenant
// console report. This is the library behind tools/metaai_obs_report;
// the golden-file ctest pins the exact bytes.
#pragma once

#include <string>

namespace metaai::obs {

/// Raw document contents (not paths); an empty string omits that
/// section.
struct ObsReportInputs {
  std::string metrics_json;
  std::string probes_jsonl;
  std::string timeseries_jsonl;
  std::string requests_jsonl;
  std::string alerts_jsonl;
};

/// Renders the report. Identical inputs render to identical bytes;
/// throws CheckError when a non-empty input fails to parse.
std::string RenderObsReport(const ObsReportInputs& inputs);

}  // namespace metaai::obs
