// Export of telemetry state: JSON (machine-readable, schema
// "metaai.obs.v1"), CSV (one row per instrument) and a console summary
// table. A minimal JSON reader is included so tools and tests can
// round-trip the exported documents without external dependencies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/table.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace metaai::obs {

/// Canonical JSON scalar formatting shared by every exporter in this
/// library: shortest round-trippable numbers (integers without an
/// exponent, otherwise %.17g) and deterministic string escaping (the
/// result includes the surrounding quotes).
std::string JsonNumber(double value);
std::string JsonString(std::string_view s);

/// Serializes a registry snapshot (and, when `tracer` is non-null, its
/// spans) as one JSON object:
///   { "schema": "metaai.obs.v1",
///     "counters":   { "<name>": <integer>, ... },
///     "gauges":     { "<name>": <number>, ... },
///     "histograms": { "<name>": { "lower": n, "upper_edges": [...],
///                                 "bucket_counts": [...],
///                                 "count": n, "sum": n }, ... },
///     "spans":      [ { "name": s, "start_ns": n, "duration_ns": n,
///                       "depth": n[, "args": {...}] }, ... ] }  // tracer
/// Identical snapshots serialize to identical bytes.
void WriteJson(const RegistrySnapshot& snapshot, std::ostream& os,
               const Tracer* tracer = nullptr);
std::string ToJson(const RegistrySnapshot& snapshot,
                   const Tracer* tracer = nullptr);
/// Convenience: snapshot + write to `path`. Returns false on I/O failure.
bool WriteJsonFile(const Registry& registry, const std::string& path,
                   const Tracer* tracer = nullptr);

/// Chrome-trace ("Trace Event Format", chrome://tracing and Perfetto
/// compatible) export of a tracer's spans: a JSON array holding one
/// complete ("X") event per closed span — still-open spans emit begin
/// ("B") events — with microsecond timestamps, pid/tid 0, and an args
/// object carrying the span's nesting depth plus any AddSpanArg
/// annotations. Identical span lists serialize to identical bytes, so
/// ManualClock traces are byte-reproducible.
void WriteChromeTrace(const Tracer& tracer, std::ostream& os);
std::string ToChromeTrace(const Tracer& tracer);
/// Convenience: write to `path`. Returns false on I/O failure.
bool WriteChromeTraceFile(const Tracer& tracer, const std::string& path);

/// CSV with header "name,kind,value,count,sum,p50,p95": counters and
/// gauges fill `value`; histograms fill count/sum and the percentiles.
void WriteCsv(const RegistrySnapshot& snapshot, std::ostream& os);
std::string ToCsv(const RegistrySnapshot& snapshot);

/// Compact console summary built on common/table.
Table SummaryTable(const RegistrySnapshot& snapshot);

/// Minimal JSON value for reading back exported documents. Supports the
/// subset this library emits: objects, arrays, strings, numbers, bools,
/// null. Object keys keep insertion order.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Member lookup on objects; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses `text`; throws CheckError on malformed input or trailing junk.
JsonValue ParseJson(std::string_view text);

/// Rebuilds a registry snapshot from a "metaai.obs.v1" document (the
/// inverse of WriteJson, minus spans). Throws CheckError on schema
/// mismatch.
RegistrySnapshot SnapshotFromJson(const JsonValue& document);

}  // namespace metaai::obs
