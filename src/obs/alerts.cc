#include "obs/alerts.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "obs/export.h"

namespace metaai::obs::health {

std::string_view AlertKindName(AlertKind kind) {
  switch (kind) {
    case AlertKind::kThreshold:
      return "threshold";
    case AlertKind::kRateOfChange:
      return "rate_of_change";
    case AlertKind::kDriftDetected:
      return "drift_detected";
  }
  throw CheckError("unknown alert kind");
}

std::string_view AlertSeverityName(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo:
      return "info";
    case AlertSeverity::kWarning:
      return "warning";
    case AlertSeverity::kCritical:
      return "critical";
  }
  throw CheckError("unknown alert severity");
}

namespace {

AlertKind KindFromName(std::string_view name) {
  if (name == "threshold") return AlertKind::kThreshold;
  if (name == "rate_of_change") return AlertKind::kRateOfChange;
  if (name == "drift_detected") return AlertKind::kDriftDetected;
  throw CheckError("metaai.alerts.v1: unknown kind");
}

AlertSeverity SeverityFromName(std::string_view name) {
  if (name == "info") return AlertSeverity::kInfo;
  if (name == "warning") return AlertSeverity::kWarning;
  if (name == "critical") return AlertSeverity::kCritical;
  throw CheckError("metaai.alerts.v1: unknown severity");
}

}  // namespace

AlertEngine::AlertEngine(std::int32_t tenant, HealthMonitorConfig monitor)
    : tenant_(tenant), monitor_(monitor) {}

void AlertEngine::AddRule(AlertRule rule) {
  const int variants = (rule.threshold.has_value() ? 1 : 0) +
                       (rule.rate.has_value() ? 1 : 0) +
                       (rule.change.has_value() ? 1 : 0);
  Check(variants == 1, "alert rule must set exactly one variant");
  Check(!rule.name.empty(), "alert rule needs a name");
  Check(!rule.signal.empty(), "alert rule needs a signal");
  Check(rule.cooldown_s >= 0.0, "alert cooldown must be non-negative");
  RuleState state{.rule = std::move(rule)};
  if (state.rule.change.has_value()) {
    if (state.rule.change->detector == ChangeDetector::kCusum) {
      state.cusum.emplace(state.rule.change->cusum);
    } else {
      state.page_hinkley.emplace(state.rule.change->page_hinkley);
    }
  }
  rules_.push_back(std::move(state));
}

void AlertEngine::Observe(std::string_view signal, double t_s, double value,
                          std::vector<Alert>& out) {
  Check(std::isfinite(value), "alert engine rejects non-finite samples");
  monitor_.Observe(signal, value);
  for (RuleState& state : rules_) {
    const AlertRule& rule = state.rule;
    if (rule.signal != signal) continue;

    bool fire = false;
    AlertKind kind = AlertKind::kThreshold;
    double threshold = 0.0;
    if (rule.threshold.has_value()) {
      const ThresholdRule& spec = *rule.threshold;
      threshold = spec.bound;
      const bool breached =
          spec.fire_above ? value > spec.bound : value < spec.bound;
      if (state.armed) {
        fire = breached;
      } else {
        // Re-arm once the value is back past the hysteresis band.
        const double band = std::abs(spec.bound) * spec.hysteresis;
        const bool rearmed = spec.fire_above ? value <= spec.bound - band
                                             : value >= spec.bound + band;
        if (rearmed) state.armed = true;
      }
      if (fire) state.armed = false;
    } else if (rule.rate.has_value()) {
      kind = AlertKind::kRateOfChange;
      threshold = rule.rate->max_step;
      if (state.has_prev &&
          std::abs(value - state.prev) > rule.rate->max_step) {
        fire = true;
      }
      state.has_prev = true;
      state.prev = value;
    } else {
      kind = AlertKind::kDriftDetected;
      if (state.cusum.has_value()) {
        threshold = rule.change->cusum.threshold;
        fire = state.cusum->Observe(value);
      } else {
        threshold = rule.change->page_hinkley.lambda;
        fire = state.page_hinkley->Observe(value);
      }
    }

    if (!fire) continue;
    // Cooldown: drop (not defer) alerts inside the window.
    if (state.has_fired && rule.cooldown_s > 0.0 &&
        t_s - state.last_fire_s < rule.cooldown_s) {
      continue;
    }
    state.has_fired = true;
    state.last_fire_s = t_s;
    ++emitted_;
    out.push_back({.seq = static_cast<std::uint64_t>(out.size()),
                   .t_s = t_s,
                   .kind = kind,
                   .severity = rule.severity,
                   .rule = rule.name,
                   .signal = rule.signal,
                   .value = value,
                   .threshold = threshold,
                   .tenant = tenant_});
  }
}

void AlertEngine::ObserveProbe(const ProbeRecord& record, double t_s,
                               std::vector<Alert>& out) {
  for (const auto& [signal, value] : HealthSignalsFromProbe(record)) {
    Observe(signal, t_s, value, out);
  }
}

std::vector<AlertRule> DefaultLinkHealthRules() {
  std::vector<AlertRule> rules;
  rules.push_back({.name = "evm.ceiling",
                   .signal = std::string(kSignalEvm),
                   .severity = AlertSeverity::kWarning,
                   .cooldown_s = 0.01,
                   .threshold = ThresholdRule{.bound = 0.5,
                                              .fire_above = true,
                                              .hysteresis = 0.1}});
  rules.push_back({.name = "snr.floor",
                   .signal = std::string(kSignalSnrDb),
                   .severity = AlertSeverity::kWarning,
                   .cooldown_s = 0.01,
                   .threshold = ThresholdRule{.bound = 5.0,
                                              .fire_above = false,
                                              .hysteresis = 0.1}});
  rules.push_back({.name = "accuracy_proxy.floor",
                   .signal = std::string(kSignalAccuracyProxy),
                   .severity = AlertSeverity::kCritical,
                   .cooldown_s = 0.01,
                   .threshold = ThresholdRule{.bound = 0.02,
                                              .fire_above = false,
                                              .hysteresis = 0.1}});
  rules.push_back({.name = "accuracy_proxy.cusum",
                   .signal = std::string(kSignalAccuracyProxy),
                   .severity = AlertSeverity::kCritical,
                   .cooldown_s = 0.01,
                   .change = ChangePointRule{
                       .detector = ChangeDetector::kCusum,
                       .cusum = {.warmup = 32, .slack = 0.5,
                                 .threshold = 12.0}}});
  rules.push_back({.name = "sync_offset.page_hinkley",
                   .signal = std::string(kSignalSyncOffsetUs),
                   .severity = AlertSeverity::kWarning,
                   .cooldown_s = 0.01,
                   .change = ChangePointRule{
                       .detector = ChangeDetector::kPageHinkley,
                       .page_hinkley = {.warmup = 32, .delta = 0.05,
                                        .lambda = 20.0}}});
  rules.push_back({.name = "slo.magnitude",
                   .signal = std::string(kSignalSloViolation),
                   .severity = AlertSeverity::kWarning,
                   .cooldown_s = 0.01,
                   .threshold = ThresholdRule{.bound = 2.0,
                                              .fire_above = true,
                                              .hysteresis = 0.1}});
  return rules;
}

void WriteAlertsJsonl(const std::vector<Alert>& alerts, std::ostream& os) {
  os << "{\"schema\":\"metaai.alerts.v1\",\"count\":" << alerts.size()
     << "}\n";
  for (const Alert& alert : alerts) {
    os << "{\"seq\":" << alert.seq << ",\"t_s\":" << JsonNumber(alert.t_s)
       << ",\"kind\":\"" << AlertKindName(alert.kind) << "\",\"severity\":\""
       << AlertSeverityName(alert.severity)
       << "\",\"rule\":" << JsonString(alert.rule)
       << ",\"signal\":" << JsonString(alert.signal)
       << ",\"value\":" << JsonNumber(alert.value)
       << ",\"threshold\":" << JsonNumber(alert.threshold)
       << ",\"tenant\":" << alert.tenant << "}\n";
  }
}

std::string ToAlertsJsonl(const std::vector<Alert>& alerts) {
  std::ostringstream os;
  WriteAlertsJsonl(alerts, os);
  return os.str();
}

bool WriteAlertsFile(const std::vector<Alert>& alerts,
                     const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) return false;
  WriteAlertsJsonl(alerts, os);
  return os.good();
}

std::vector<Alert> AlertsFromJsonl(std::string_view text) {
  Check(!text.empty(), "metaai.alerts.v1: empty document");
  std::vector<std::string_view> lines;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    if (eol == std::string_view::npos) {
      lines.push_back(text);
      break;
    }
    lines.push_back(text.substr(0, eol));
    text.remove_prefix(eol + 1);
  }
  const JsonValue header = ParseJson(lines[0]);
  const JsonValue* schema = header.Find("schema");
  Check(schema != nullptr && schema->string == "metaai.alerts.v1",
        "metaai.alerts.v1: bad schema header");
  const JsonValue* count = header.Find("count");
  Check(count != nullptr, "metaai.alerts.v1: missing count");
  Check(lines.size() == static_cast<std::size_t>(count->number) + 1,
        "metaai.alerts.v1: count does not match record lines");
  std::vector<Alert> alerts;
  alerts.reserve(lines.size() - 1);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonValue record = ParseJson(lines[i]);
    const JsonValue* seq = record.Find("seq");
    const JsonValue* t_s = record.Find("t_s");
    const JsonValue* kind = record.Find("kind");
    const JsonValue* severity = record.Find("severity");
    const JsonValue* rule = record.Find("rule");
    const JsonValue* signal = record.Find("signal");
    const JsonValue* value = record.Find("value");
    const JsonValue* threshold = record.Find("threshold");
    const JsonValue* tenant = record.Find("tenant");
    Check(seq != nullptr && t_s != nullptr && kind != nullptr &&
              severity != nullptr && rule != nullptr && signal != nullptr &&
              value != nullptr && threshold != nullptr && tenant != nullptr,
          "metaai.alerts.v1: record is missing fields");
    alerts.push_back({.seq = static_cast<std::uint64_t>(seq->number),
                      .t_s = t_s->number,
                      .kind = KindFromName(kind->string),
                      .severity = SeverityFromName(severity->string),
                      .rule = rule->string,
                      .signal = signal->string,
                      .value = value->number,
                      .threshold = threshold->number,
                      .tenant = static_cast<std::int32_t>(tenant->number)});
  }
  return alerts;
}

}  // namespace metaai::obs::health
