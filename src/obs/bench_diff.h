// Baseline/regression comparison for BENCH_<name>.json documents
// (schema "metaai.bench.v1", written by bench/bench_util.h's
// BenchReport). Used by tools/metaai_bench_diff and gated into
// tools/run_benches.sh so a bench metric drifting beyond tolerance
// fails the suite.
//
// A committed baseline (schema "metaai.bench.baseline.v1", one file per
// bench under bench/baselines/) pins metrics extracted from a reference
// run:
//
//   { "schema": "metaai.bench.baseline.v1", "bench": "<name>",
//     "metrics": {
//       "<path>": {"value": v, "abs_tol": a, "rel_tol": r}, ... } }
//
// Metric paths address the bench document:
//   elapsed_s                  wall-clock seconds of the bench run
//   headlines.<key>            bench-published headline numbers
//   counters.<name>            metrics-block counter (deterministic)
//   gauges.<name>              metrics-block gauge (deterministic)
//   histograms.<name>.count    metrics-block histogram event count
//   histograms.<name>.sum      metrics-block histogram value sum
//
// A current value passes when |current - value| <= abs_tol +
// rel_tol * |value|; a path absent from the current document is a
// failure (missing metric).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.h"
#include "obs/export.h"

namespace metaai::obs {

struct BaselineMetric {
  std::string path;
  double value = 0.0;
  double abs_tol = 0.0;
  double rel_tol = 0.0;

  /// Maximum allowed |current - value|.
  double Allowed() const;
  bool operator==(const BaselineMetric&) const = default;
};

struct BenchBaseline {
  std::string bench;
  std::vector<BaselineMetric> metrics;  // sorted by path

  bool operator==(const BenchBaseline&) const = default;
};

/// Parses a "metaai.bench.baseline.v1" document; throws CheckError on
/// schema mismatch.
BenchBaseline BaselineFromJson(const JsonValue& document);
/// Deterministic serialization (metrics in stored order).
std::string BaselineToJson(const BenchBaseline& baseline);

/// Looks up `path` (see the path grammar above) in a parsed
/// "metaai.bench.v1" document; nullopt when absent.
std::optional<double> ExtractBenchMetric(const JsonValue& bench_document,
                                         std::string_view path);

enum class DiffStatus {
  kPass,     // within tolerance
  kRegress,  // drifted beyond tolerance
  kMissing,  // baseline metric absent from the current run
};
std::string_view DiffStatusName(DiffStatus status);

struct MetricDiff {
  std::string path;
  double baseline = 0.0;
  double current = 0.0;  // meaningless when status == kMissing
  double allowed = 0.0;  // abs_tol + rel_tol * |baseline|
  DiffStatus status = DiffStatus::kPass;
};

struct BenchDiffReport {
  std::string bench;
  std::vector<MetricDiff> metrics;

  bool ok() const;  // every metric passed
};

/// Compares every baseline metric against `bench_document`.
BenchDiffReport DiffBench(const BenchBaseline& baseline,
                          const JsonValue& bench_document);

/// Per-metric "baseline vs current" table for console output.
Table BenchDiffTable(const BenchDiffReport& report);

/// Builds a baseline from one bench run with default tolerances:
/// counters and histogram counts exact; gauges, histogram sums and
/// headlines rel_tol 1e-6; time-like metrics (elapsed_s and headlines
/// ending in _ns/_us/_ms/_s) rel_tol 9 — i.e. up to 10x — because wall
/// clock varies across machines. Metrics come out sorted by path.
BenchBaseline DistillBaseline(const JsonValue& bench_document);

}  // namespace metaai::obs
