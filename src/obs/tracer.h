// Trace spans: named, nested wall-time scopes recorded through an
// injectable clock.
//
// The default SteadyClock reads std::chrono::steady_clock, so span
// durations vary run to run — which is why spans are kept out of the
// metrics Registry (whose snapshots must be seed-deterministic). Tests
// inject a ManualClock to make traces byte-identical across runs.
//
// The tracer is intentionally single-threaded (like today's inference
// path); per-thread tracers can be aggregated later without changing the
// call sites. The contract is enforced: BeginSpan/EndSpan/AddSpanArg
// throw CheckError when called from a thread other than the one that
// recorded the tracer's first span. Parallel workers must keep spans on
// their own tracers (the metrics Registry and ProbeSink, by contrast,
// are safe to share; see obs/metrics.h and obs/probe.h).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace metaai::obs {

/// Nanosecond time source.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::int64_t NowNs() = 0;
};

/// std::chrono::steady_clock.
class SteadyClock : public Clock {
 public:
  std::int64_t NowNs() override;
};

/// Test clock: advances only when told, so traces are reproducible.
class ManualClock : public Clock {
 public:
  std::int64_t NowNs() override { return now_ns_; }
  void AdvanceNs(std::int64_t delta) { now_ns_ += delta; }
  void SetNs(std::int64_t now) { now_ns_ = now; }

 private:
  std::int64_t now_ns_ = 0;
};

/// One completed (or still-open, duration_ns < 0) span.
struct SpanRecord {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = -1;
  /// Nesting depth at entry; 0 for top-level spans.
  int depth = 0;
  /// Named numeric annotations (exported as Chrome-trace event args).
  std::vector<std::pair<std::string, double>> args;

  bool operator==(const SpanRecord&) const = default;
};

class Tracer {
 public:
  /// Owns an internal SteadyClock.
  Tracer();
  /// Uses `clock` (not owned; must outlive the tracer).
  explicit Tracer(Clock* clock);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// Opens a span and returns its index for EndSpan.
  std::size_t BeginSpan(std::string_view name);
  void EndSpan(std::size_t index);
  /// Attaches a named numeric annotation to an open or closed span.
  void AddSpanArg(std::size_t index, std::string_view key, double value);

  const std::vector<SpanRecord>& spans() const { return spans_; }
  void Clear();

 private:
  void CheckOwningThread() const;

  Clock* clock_;
  bool owns_clock_;
  int depth_ = 0;
  std::vector<SpanRecord> spans_;
  /// Thread that recorded the first span; cleared by Clear().
  std::thread::id owner_;
  bool owner_set_ = false;
};

/// RAII span scope used by obs::Span(); safe on a null tracer (no-op).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name)
      : tracer_(tracer),
        index_(tracer != nullptr ? tracer->BeginSpan(name) : 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(index_);
  }

  /// Annotates this span (no-op on a null tracer).
  void Arg(std::string_view key, double value) const {
    if (tracer_ != nullptr) tracer_->AddSpanArg(index_, key, value);
  }

 private:
  Tracer* tracer_;
  std::size_t index_;
};

}  // namespace metaai::obs
