// Trace spans: named, nested wall-time scopes recorded through an
// injectable clock.
//
// The default SteadyClock reads std::chrono::steady_clock, so span
// durations vary run to run — which is why spans are kept out of the
// metrics Registry (whose snapshots must be seed-deterministic). Tests
// inject a ManualClock to make traces byte-identical across runs.
//
// The tracer is thread-safe: every thread that records through it gets
// its own span buffer (created on first use), so parallel workers — the
// metaai::par pool in particular — can share the process-global tracer
// without coordination. Buffers are merged at read time (spans()): spans
// appear grouped by thread in thread-registration order, each group in
// recording order, and every record carries the thread's stable `tid`
// (0 for the first recording thread, usually the main thread). Nesting
// depth is tracked per thread. Begin/End/AddSpanArg for one span must
// stay on the thread that opened it — ScopedSpan guarantees this.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace metaai::obs {

/// Nanosecond time source.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::int64_t NowNs() = 0;
};

/// std::chrono::steady_clock.
class SteadyClock : public Clock {
 public:
  std::int64_t NowNs() override;
};

/// Test clock: advances only when told, so traces are reproducible.
class ManualClock : public Clock {
 public:
  std::int64_t NowNs() override { return now_ns_; }
  void AdvanceNs(std::int64_t delta) { now_ns_ += delta; }
  void SetNs(std::int64_t now) { now_ns_ = now; }

 private:
  std::int64_t now_ns_ = 0;
};

/// One completed (or still-open, duration_ns < 0) span.
struct SpanRecord {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = -1;
  /// Nesting depth at entry on the recording thread; 0 for top-level spans.
  int depth = 0;
  /// Stable index of the recording thread (registration order; 0 for the
  /// first thread that recorded through this tracer).
  int tid = 0;
  /// Named numeric annotations (exported as Chrome-trace event args).
  std::vector<std::pair<std::string, double>> args;

  bool operator==(const SpanRecord&) const = default;
};

class Tracer {
 public:
  /// Owns an internal SteadyClock.
  Tracer();
  /// Uses `clock` (not owned; must outlive the tracer).
  explicit Tracer(Clock* clock);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  ~Tracer();

  /// Opens a span on the calling thread's buffer and returns its index
  /// for EndSpan/AddSpanArg (valid only from the same thread).
  std::size_t BeginSpan(std::string_view name);
  void EndSpan(std::size_t index);
  /// Attaches a named numeric annotation to an open or closed span
  /// recorded by the calling thread.
  void AddSpanArg(std::size_t index, std::string_view key, double value);

  /// Merged view of every thread's spans: buffers concatenated in thread
  /// registration order (each record's `tid`), records within a buffer
  /// in start order. Single-threaded use reproduces the exact recording
  /// order with tid 0 throughout.
  std::vector<SpanRecord> spans() const;
  /// Drops all spans and thread registrations (tids restart at 0).
  void Clear();

 private:
  struct ThreadBuffer {
    std::vector<SpanRecord> spans;
    int depth = 0;
  };

  /// Buffer of the calling thread, created on first use. Caller must
  /// hold mutex_.
  ThreadBuffer& LocalBuffer();

  Clock* clock_;
  bool owns_clock_;
  mutable std::mutex mutex_;
  /// One buffer per recording thread, in registration order (== tid).
  std::vector<std::pair<std::thread::id, std::unique_ptr<ThreadBuffer>>>
      buffers_;
};

/// RAII span scope used by obs::Span(); safe on a null tracer (no-op).
/// Must be destroyed on the thread that constructed it.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string_view name)
      : tracer_(tracer),
        index_(tracer != nullptr ? tracer->BeginSpan(name) : 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(index_);
  }

  /// Annotates this span (no-op on a null tracer).
  void Arg(std::string_view key, double value) const {
    if (tracer_ != nullptr) tracer_->AddSpanArg(index_, key, value);
  }

 private:
  Tracer* tracer_;
  std::size_t index_;
};

}  // namespace metaai::obs
