#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <span>
#include <sstream>

#include "common/check.h"

namespace metaai::obs {

// Shortest round-trippable representation: integers print without an
// exponent, everything else via %.17g.
std::string JsonNumber(double value) {
  char buffer[64];
  if (value == static_cast<double>(static_cast<std::int64_t>(value)) &&
      std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%" PRId64,
                  static_cast<std::int64_t>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  }
  return buffer;
}

std::string JsonString(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void WriteUintArray(std::ostream& os, std::span<const std::uint64_t> values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ',';
    os << values[i];
  }
  os << ']';
}

void WriteDoubleArray(std::ostream& os, std::span<const double> values) {
  os << '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ',';
    os << JsonNumber(values[i]);
  }
  os << ']';
}

}  // namespace

void WriteJson(const RegistrySnapshot& snapshot, std::ostream& os,
               const Tracer* tracer) {
  os << "{\n  \"schema\": \"metaai.obs.v1\",\n  \"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const auto& [name, value] = snapshot.counters[i];
    os << (i > 0 ? ",\n    " : "\n    ") << JsonString(name) << ": "
       << value;
  }
  os << (snapshot.counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const auto& [name, value] = snapshot.gauges[i];
    os << (i > 0 ? ",\n    " : "\n    ") << JsonString(name) << ": "
       << JsonNumber(value);
  }
  os << (snapshot.gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, h] = snapshot.histograms[i];
    os << (i > 0 ? ",\n    " : "\n    ") << JsonString(name)
       << ": {\"lower\": " << JsonNumber(h.lower) << ", \"upper_edges\": ";
    WriteDoubleArray(os, h.upper_edges);
    os << ", \"bucket_counts\": ";
    WriteUintArray(os, h.bucket_counts);
    os << ", \"count\": " << h.count << ", \"sum\": " << JsonNumber(h.sum)
       << "}";
  }
  os << (snapshot.histograms.empty() ? "" : "\n  ") << "}";
  if (tracer != nullptr) {
    os << ",\n  \"spans\": [";
    const auto& spans = tracer->spans();
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const SpanRecord& span = spans[i];
      os << (i > 0 ? ",\n    " : "\n    ") << "{\"name\": "
         << JsonString(span.name) << ", \"start_ns\": " << span.start_ns
         << ", \"duration_ns\": " << span.duration_ns
         << ", \"depth\": " << span.depth;
      if (!span.args.empty()) {
        os << ", \"args\": {";
        for (std::size_t a = 0; a < span.args.size(); ++a) {
          os << (a > 0 ? ", " : "") << JsonString(span.args[a].first) << ": "
             << JsonNumber(span.args[a].second);
        }
        os << "}";
      }
      os << "}";
    }
    os << (spans.empty() ? "" : "\n  ") << "]";
  }
  os << "\n}\n";
}

std::string ToJson(const RegistrySnapshot& snapshot, const Tracer* tracer) {
  std::ostringstream os;
  WriteJson(snapshot, os, tracer);
  return os.str();
}

bool WriteJsonFile(const Registry& registry, const std::string& path,
                   const Tracer* tracer) {
  std::ofstream os(path);
  if (!os.good()) return false;
  WriteJson(registry.Snapshot(), os, tracer);
  return os.good();
}

void WriteChromeTrace(const Tracer& tracer, std::ostream& os) {
  // Trace Event Format timestamps and durations are microseconds.
  // Closed spans become complete ("X") events; a span still open at
  // export time becomes a begin ("B") event so the flamegraph shows it
  // running to the end of the trace.
  os << "[";
  const auto& spans = tracer.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    const bool open = span.duration_ns < 0;
    os << (i > 0 ? ",\n " : "\n ") << "{\"name\": " << JsonString(span.name)
       << ", \"ph\": \"" << (open ? 'B' : 'X') << "\""
       << ", \"ts\": " << JsonNumber(static_cast<double>(span.start_ns) / 1e3);
    if (!open) {
      os << ", \"dur\": "
         << JsonNumber(static_cast<double>(span.duration_ns) / 1e3);
    }
    os << ", \"pid\": 0, \"tid\": " << span.tid
       << ", \"args\": {\"depth\": " << span.depth;
    for (const auto& [key, value] : span.args) {
      os << ", " << JsonString(key) << ": " << JsonNumber(value);
    }
    os << "}}";
  }
  os << (spans.empty() ? "" : "\n") << "]\n";
}

std::string ToChromeTrace(const Tracer& tracer) {
  std::ostringstream os;
  WriteChromeTrace(tracer, os);
  return os.str();
}

bool WriteChromeTraceFile(const Tracer& tracer, const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) return false;
  WriteChromeTrace(tracer, os);
  return os.good();
}

void WriteCsv(const RegistrySnapshot& snapshot, std::ostream& os) {
  os << "name,kind,value,count,sum,p50,p95\n";
  for (const auto& [name, value] : snapshot.counters) {
    os << name << ",counter," << value << ",,,,\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << name << ",gauge," << JsonNumber(value) << ",,,,\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << name << ",histogram,," << h.count << ',' << JsonNumber(h.sum)
       << ',' << JsonNumber(Percentile(h, 50.0)) << ','
       << JsonNumber(Percentile(h, 95.0)) << '\n';
  }
}

std::string ToCsv(const RegistrySnapshot& snapshot) {
  std::ostringstream os;
  WriteCsv(snapshot, os);
  return os.str();
}

Table SummaryTable(const RegistrySnapshot& snapshot) {
  Table table("Telemetry summary",
              {"Instrument", "Kind", "Value", "Count", "Mean", "P95"});
  for (const auto& [name, value] : snapshot.counters) {
    table.AddRow({name, "counter", std::to_string(value), "", "", ""});
  }
  for (const auto& [name, value] : snapshot.gauges) {
    table.AddRow({name, "gauge", FormatDouble(value, 4), "", "", ""});
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const double mean =
        h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
    table.AddRow({name, "histogram", "", std::to_string(h.count),
                  FormatDouble(mean, 4),
                  FormatDouble(Percentile(h, 95.0), 4)});
  }
  return table;
}

// ---------------------------------------------------------------------
// Minimal JSON reader.
// ---------------------------------------------------------------------
namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    Check(pos_ == text_.size(), "trailing characters after JSON value");
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    Check(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void Expect(char c) {
    Check(Peek() == c, std::string("expected '") + c + "' in JSON input");
    ++pos_;
  }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue ParseValue() {
    const char c = Peek();
    JsonValue value;
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        value.type = JsonValue::Type::kString;
        value.string = ParseString();
        return value;
      case 't':
        Check(Consume("true"), "malformed JSON literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = true;
        return value;
      case 'f':
        Check(Consume("false"), "malformed JSON literal");
        value.type = JsonValue::Type::kBool;
        value.boolean = false;
        return value;
      case 'n':
        Check(Consume("null"), "malformed JSON literal");
        value.type = JsonValue::Type::kNull;
        return value;
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      Check(Peek() == '"', "JSON object key must be a string");
      std::string key = ParseString();
      Expect(':');
      value.object.emplace_back(std::move(key), ParseValue());
      const char next = Peek();
      ++pos_;
      if (next == '}') return value;
      Check(next == ',', "expected ',' or '}' in JSON object");
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(ParseValue());
      const char next = Peek();
      ++pos_;
      if (next == ']') return value;
      Check(next == ',', "expected ',' or ']' in JSON array");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      Check(pos_ < text_.size(), "unterminated JSON string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      Check(pos_ < text_.size(), "unterminated JSON escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'u': {
          Check(pos_ + 4 <= text_.size(), "truncated \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          out += static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          break;
        }
        default:
          throw CheckError("unsupported JSON escape");
      }
    }
  }

  JsonValue ParseNumber() {
    SkipWhitespace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    Check(pos_ > start, "malformed JSON number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = std::strtod(token.c_str(), &end);
    Check(end == token.c_str() + token.size(), "malformed JSON number");
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue& Member(const JsonValue& object, std::string_view key) {
  const JsonValue* value = object.Find(key);
  Check(value != nullptr, "missing JSON member: " + std::string(key));
  return *value;
}

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

RegistrySnapshot SnapshotFromJson(const JsonValue& document) {
  Check(document.type == JsonValue::Type::kObject,
        "telemetry document must be a JSON object");
  const JsonValue& schema = Member(document, "schema");
  Check(schema.string == "metaai.obs.v1",
        "unsupported telemetry schema: " + schema.string);

  RegistrySnapshot snapshot;
  for (const auto& [name, value] : Member(document, "counters").object) {
    snapshot.counters.emplace_back(
        name, static_cast<std::uint64_t>(value.number));
  }
  for (const auto& [name, value] : Member(document, "gauges").object) {
    snapshot.gauges.emplace_back(name, value.number);
  }
  for (const auto& [name, value] : Member(document, "histograms").object) {
    HistogramSnapshot h;
    h.lower = Member(value, "lower").number;
    for (const JsonValue& edge : Member(value, "upper_edges").array) {
      h.upper_edges.push_back(edge.number);
    }
    for (const JsonValue& count : Member(value, "bucket_counts").array) {
      h.bucket_counts.push_back(static_cast<std::uint64_t>(count.number));
    }
    h.count = static_cast<std::uint64_t>(Member(value, "count").number);
    h.sum = Member(value, "sum").number;
    snapshot.histograms.emplace_back(name, std::move(h));
  }
  return snapshot;
}

}  // namespace metaai::obs
