#include "obs/parallel.h"

#include <memory>
#include <utility>

#include "obs/obs.h"

namespace metaai::obs {
namespace {

/// Private instruments one task writes into via the thread-local
/// overrides. Members are engaged only when the parent has the matching
/// sink installed.
struct TaskTelemetry {
  std::unique_ptr<Registry> registry;
  std::unique_ptr<ProbeSink> sink;
};

/// Installs/restores the thread-local overrides around one task body.
class ScopedTaskTelemetry {
 public:
  // A disengaged member installs nullptr, which only happens when the
  // matching parent sink is absent too — the override then falls through
  // to the (absent) process global, same as no override.
  explicit ScopedTaskTelemetry(TaskTelemetry& telemetry)
      : previous_registry_(SetThreadLocalRegistry(telemetry.registry.get())),
        previous_sink_(SetThreadLocalProbeSink(telemetry.sink.get())) {}
  ScopedTaskTelemetry(const ScopedTaskTelemetry&) = delete;
  ScopedTaskTelemetry& operator=(const ScopedTaskTelemetry&) = delete;
  ~ScopedTaskTelemetry() {
    SetThreadLocalRegistry(previous_registry_);
    SetThreadLocalProbeSink(previous_sink_);
  }

 private:
  Registry* previous_registry_;
  ProbeSink* previous_sink_;
};

}  // namespace

void DeterministicParallelFor(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              int num_threads) {
  // The "parent" instruments are whatever is visible at entry — the
  // process globals, or an enclosing task's buffer when nested.
  Registry* parent_registry = registry();
  ProbeSink* parent_sink = probe_sink();
  if (parent_registry == nullptr && parent_sink == nullptr) {
    par::ParallelFor(n, fn, num_threads);
    return;
  }

  // One buffer slot per task; slot i is written only by task i, so the
  // vector itself needs no synchronization.
  std::vector<TaskTelemetry> buffers(n);
  par::ParallelFor(
      n,
      [&](std::size_t i) {
        TaskTelemetry& telemetry = buffers[i];
        if (parent_registry != nullptr) {
          telemetry.registry = std::make_unique<Registry>();
        }
        if (parent_sink != nullptr) {
          telemetry.sink = std::make_unique<ProbeSink>(parent_sink->capacity());
        }
        const ScopedTaskTelemetry scope(telemetry);
        fn(i);
      },
      num_threads);

  // All tasks finished without an exception: merge in task index order,
  // which makes the merged state a pure function of the task results.
  for (TaskTelemetry& telemetry : buffers) {
    if (telemetry.registry != nullptr && parent_registry != nullptr) {
      parent_registry->Merge(telemetry.registry->Snapshot());
    }
    if (telemetry.sink != nullptr && parent_sink != nullptr) {
      for (ProbeRecord& record : telemetry.sink->TakeAll()) {
        parent_sink->Add(std::move(record));  // re-stamps seq in task order
      }
    }
  }
}

}  // namespace metaai::obs
