// Deterministic in-process metrics: named counters, gauges and
// fixed-bucket histograms collected in a Registry.
//
// Design constraints (see README.md "Telemetry"):
//  * Deterministic — instruments hold only values derived from seeded
//    computation (counts, objective values, model-time durations), so two
//    identically-seeded runs snapshot byte-identical state. Wall-clock
//    time lives in obs::Tracer, never in the Registry.
//  * Cheap — single-threaded hot paths pay one map lookup per event;
//    instruments themselves are atomics so future parallel PRs can share
//    a registry without restructuring call sites.
//  * Thread-safe — instrument lookup/creation and Snapshot() hold the
//    registry mutex and instrument updates are relaxed atomics, so
//    concurrent workers (e.g. parallel bench paths) may share one
//    registry and snapshot it mid-run. Parallel call sites that need the
//    merged state to be *identical for any thread count* (histogram
//    float sums are order-sensitive) go through
//    obs::DeterministicParallelFor (obs/parallel.h), which buffers each
//    task's instruments in a private Registry and Merge()s them back in
//    task order.
//  * Optional — call sites go through the helpers in obs/obs.h, which
//    no-op when no registry is installed (or when compiled out with
//    -DMETAAI_OBS=OFF).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace metaai::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. a loss, a utilization fraction).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a histogram: `lower` plus strictly increasing upper
/// edges. Bucket i covers (edge[i-1], edge[i]]; values below `lower` clamp
/// into the first bucket and values above the last edge land in a final
/// overflow bucket (edge = +inf for readout purposes).
struct HistogramSpec {
  double lower = 0.0;
  std::vector<double> upper_edges;

  /// `bins` equal-width buckets over [lo, hi] (plus the overflow bucket).
  static HistogramSpec Linear(double lo, double hi, std::size_t bins);
  /// `bins` buckets with edges start, start*factor, start*factor^2, ...
  static HistogramSpec Exponential(double start, double factor,
                                   std::size_t bins);
};

struct HistogramSnapshot {
  double lower = 0.0;
  std::vector<double> upper_edges;
  /// One per upper edge plus the trailing overflow bucket.
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Linear-interpolated percentile estimate from bucket counts, p in
/// [0, 100]. Exact up to one bucket width; the overflow bucket reads as
/// its lower edge. Returns 0 for an empty histogram.
double Percentile(const HistogramSnapshot& h, double p);

/// Fixed-bucket histogram. Observe() is lock-free after construction.
class Histogram {
 public:
  explicit Histogram(HistogramSpec spec);

  void Observe(double value);

  /// Folds another histogram's state in: bucket counts and count add,
  /// `other.sum` is added to the running sum as one term. Requires an
  /// identical bucket layout.
  void Merge(const HistogramSnapshot& other);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  double Percentile(double p) const { return obs::Percentile(Snapshot(), p); }
  const HistogramSpec& spec() const { return spec_; }

  HistogramSnapshot Snapshot() const;

 private:
  HistogramSpec spec_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Everything a Registry holds at one instant, ordered by name within
/// each kind — the unit of export and of determinism comparisons.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  bool operator==(const RegistrySnapshot&) const = default;
  std::size_t size() const {
    return counters.size() + gauges.size() + histograms.size();
  }
};

/// Named instruments, created on first use and stable thereafter (map
/// nodes never move, so returned references remain valid for the
/// registry's lifetime). Instrument names follow `subsystem.metric`.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// `spec` is consulted only on first creation of `name`.
  Histogram& GetHistogram(std::string_view name, const HistogramSpec& spec);

  RegistrySnapshot Snapshot() const;

  /// Folds a snapshot of another registry in: counters add, gauges take
  /// the snapshot's value (last writer wins), histograms merge — created
  /// here on demand with the snapshot's bucket layout. Merging the same
  /// sequence of snapshots in the same order always yields the same
  /// state, which is what obs::DeterministicParallelFor relies on.
  void Merge(const RegistrySnapshot& snapshot);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace metaai::obs
