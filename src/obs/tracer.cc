#include "obs/tracer.h"

#include <chrono>

#include "common/check.h"

namespace metaai::obs {

std::int64_t SteadyClock::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::Tracer() : clock_(new SteadyClock()), owns_clock_(true) {}

Tracer::Tracer(Clock* clock) : clock_(clock), owns_clock_(false) {
  Check(clock != nullptr, "tracer needs a clock");
}

Tracer::~Tracer() {
  if (owns_clock_) delete clock_;
}

std::size_t Tracer::BeginSpan(std::string_view name) {
  if (!owner_set_) {
    owner_ = std::this_thread::get_id();
    owner_set_ = true;
  }
  CheckOwningThread();
  spans_.push_back(SpanRecord{.name = std::string(name),
                              .start_ns = clock_->NowNs(),
                              .duration_ns = -1,
                              .depth = depth_});
  ++depth_;
  return spans_.size() - 1;
}

void Tracer::EndSpan(std::size_t index) {
  CheckOwningThread();
  CheckIndex(index, spans_.size(), "span");
  SpanRecord& span = spans_[index];
  Check(span.duration_ns < 0, "span ended twice");
  span.duration_ns = clock_->NowNs() - span.start_ns;
  --depth_;
}

void Tracer::AddSpanArg(std::size_t index, std::string_view key,
                        double value) {
  CheckOwningThread();
  CheckIndex(index, spans_.size(), "span");
  spans_[index].args.emplace_back(key, value);
}

void Tracer::CheckOwningThread() const {
  Check(!owner_set_ || owner_ == std::this_thread::get_id(),
        "Tracer is single-threaded: spans must stay on the thread that "
        "recorded the tracer's first span (give workers their own tracer)");
}

void Tracer::Clear() {
  spans_.clear();
  depth_ = 0;
  owner_set_ = false;
}

}  // namespace metaai::obs
