#include "obs/tracer.h"

#include <chrono>
#include <limits>

#include "common/check.h"

namespace metaai::obs {

std::int64_t SteadyClock::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tracer::Tracer() : clock_(new SteadyClock()), owns_clock_(true) {}

Tracer::Tracer(Clock* clock) : clock_(clock), owns_clock_(false) {
  Check(clock != nullptr, "tracer needs a clock");
}

Tracer::~Tracer() {
  if (owns_clock_) delete clock_;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  const std::thread::id self = std::this_thread::get_id();
  for (auto& [id, buffer] : buffers_) {
    if (id == self) return *buffer;
  }
  Check(buffers_.size() <
            static_cast<std::size_t>(std::numeric_limits<int>::max()),
        "too many tracer threads");
  buffers_.emplace_back(self, std::make_unique<ThreadBuffer>());
  return *buffers_.back().second;
}

std::size_t Tracer::BeginSpan(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ThreadBuffer& buffer = LocalBuffer();
  // tid is the buffer's registration index, stable for this thread.
  int tid = 0;
  while (buffers_[static_cast<std::size_t>(tid)].second.get() != &buffer) {
    ++tid;
  }
  buffer.spans.push_back(SpanRecord{.name = std::string(name),
                                    .start_ns = clock_->NowNs(),
                                    .duration_ns = -1,
                                    .depth = buffer.depth,
                                    .tid = tid});
  ++buffer.depth;
  return buffer.spans.size() - 1;
}

void Tracer::EndSpan(std::size_t index) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ThreadBuffer& buffer = LocalBuffer();
  CheckIndex(index, buffer.spans.size(), "span");
  SpanRecord& span = buffer.spans[index];
  Check(span.duration_ns < 0, "span ended twice");
  span.duration_ns = clock_->NowNs() - span.start_ns;
  --buffer.depth;
}

void Tracer::AddSpanArg(std::size_t index, std::string_view key,
                        double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ThreadBuffer& buffer = LocalBuffer();
  CheckIndex(index, buffer.spans.size(), "span");
  buffer.spans[index].args.emplace_back(key, value);
}

std::vector<SpanRecord> Tracer::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> merged;
  std::size_t total = 0;
  for (const auto& [id, buffer] : buffers_) total += buffer->spans.size();
  merged.reserve(total);
  for (const auto& [id, buffer] : buffers_) {
    merged.insert(merged.end(), buffer->spans.begin(), buffer->spans.end());
  }
  return merged;
}

void Tracer::Clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
}

}  // namespace metaai::obs
