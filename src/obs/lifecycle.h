// Request-lifecycle observability for the serving stack.
//
// A RequestTrace is minted by serve::Runtime at admission and follows
// one request through the whole pipeline, recording how much virtual
// time each stage consumed:
//
//   admission  — arrival until the admission scan picked the request up
//                (the clock only advances at frame boundaries, so a
//                request arriving mid-frame waits here first);
//   queue_wait — admitted and sitting in the bounded per-client FIFO
//                until a TDMA frame granted it a slot;
//   batching   — frame dispatch until this request's back-to-back
//                position inside its client's slot starts transmitting;
//   solve      — on-demand solver time charged to this request. The
//                runtime maps every tenant's weights at construction,
//                so today this is 0 and the `cache_hit` flag records
//                the mapping's provenance instead (true when the
//                tenant's configuration was restored from
//                mts::ConfigCache rather than solved fresh);
//   airtime    — OTA transmission (computation happens here);
//   demod      — server-side accumulation/readout after the last
//                symbol (sim::EnergyModelConfig::metaai_server_ms).
//
// Latency() — the end-to-end latency, arrival to readout — is exactly
// the stage sum, an invariant the serve tests pin. energy_j is the
// per-request estimate from the link budget (radiated Tx power over the
// airtime + MTS pattern switching + server readout).
//
// Everything is virtual-time, derived from seeded computation, so a
// trace set — and its "metaai.requests.v1" JSONL export — is
// byte-identical across thread counts, frame budgets and cache state.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/quantiles.h"

namespace metaai::obs {

/// Lifecycle stages, in pipeline order (array index order).
enum class RequestStage {
  kAdmission = 0,
  kQueueWait,
  kBatching,
  kSolve,
  kAirtime,
  kDemod,
};

inline constexpr std::size_t kNumRequestStages = 6;

std::string_view RequestStageName(RequestStage stage);

/// One served request's journey through the pipeline.
struct RequestTrace {
  std::uint64_t id = 0;
  /// Index into the runtime's client list.
  std::uint32_t tenant = 0;
  /// Whether this tenant's configuration came from mts::ConfigCache.
  bool cache_hit = false;
  double arrival_s = 0.0;
  /// Tenant's latency target; 0 = no SLO.
  double slo_s = 0.0;
  /// Virtual time spent per stage, indexed by RequestStage.
  std::array<double, kNumRequestStages> stage_s{};
  /// Per-request energy estimate from the link budget (J).
  double energy_j = 0.0;

  double stage(RequestStage s) const {
    return stage_s[static_cast<std::size_t>(s)];
  }
  double& stage(RequestStage s) {
    return stage_s[static_cast<std::size_t>(s)];
  }

  /// End-to-end latency (arrival -> readout): exactly the stage sum.
  double Latency() const;
  bool SloViolated() const { return slo_s > 0.0 && Latency() > slo_s; }

  bool operator==(const RequestTrace&) const = default;
};

/// A trace set with the tenant names the indices refer to — the unit of
/// "metaai.requests.v1" serialization.
struct RequestLog {
  std::vector<std::string> tenants;
  /// Served requests in submission order.
  std::vector<RequestTrace> traces;

  bool operator==(const RequestLog&) const = default;
};

/// p50/p99/p999 per stage plus end-to-end, from one pass over `traces`.
struct StageTails {
  std::array<TailDigest, kNumRequestStages> stage;
  TailDigest latency;
};

StageTails DigestStages(std::span<const RequestTrace> traces);

/// Serializes a request log as "metaai.requests.v1" JSONL: a header line
///   {"schema":"metaai.requests.v1","tenants":[...],"count":N}
/// followed by one line per trace, in order:
///   {"id":I,"tenant":T,"cache_hit":B,"arrival_s":A,"slo_s":S,
///    "stage_s":[6 numbers],"energy_j":E}
/// Identical logs serialize to identical bytes.
void WriteRequestsJsonl(const RequestLog& log, std::ostream& os);
std::string ToRequestsJsonl(const RequestLog& log);
/// Convenience: write to `path`. Returns false on I/O failure.
bool WriteRequestsFile(const RequestLog& log, const std::string& path);

/// Parses a "metaai.requests.v1" document; throws CheckError on schema
/// mismatch or malformed lines.
RequestLog ParseRequestsJsonl(std::string_view text);

}  // namespace metaai::obs
