#include "obs/obs.h"

namespace metaai::obs {
namespace {

Registry* g_registry = nullptr;
Tracer* g_tracer = nullptr;
ProbeSink* g_probe_sink = nullptr;

}  // namespace

Registry* registry() { return g_registry; }
Tracer* tracer() { return g_tracer; }
ProbeSink* probe_sink() { return g_probe_sink; }

Registry* SetRegistry(Registry* registry) {
  Registry* previous = g_registry;
  g_registry = registry;
  return previous;
}

Tracer* SetTracer(Tracer* tracer) {
  Tracer* previous = g_tracer;
  g_tracer = tracer;
  return previous;
}

ProbeSink* SetProbeSink(ProbeSink* sink) {
  ProbeSink* previous = g_probe_sink;
  g_probe_sink = sink;
  return previous;
}

}  // namespace metaai::obs
