#include "obs/obs.h"

namespace metaai::obs {
namespace {

Registry* g_registry = nullptr;
Tracer* g_tracer = nullptr;

}  // namespace

Registry* registry() { return g_registry; }
Tracer* tracer() { return g_tracer; }

Registry* SetRegistry(Registry* registry) {
  Registry* previous = g_registry;
  g_registry = registry;
  return previous;
}

Tracer* SetTracer(Tracer* tracer) {
  Tracer* previous = g_tracer;
  g_tracer = tracer;
  return previous;
}

}  // namespace metaai::obs
