#include "obs/obs.h"

namespace metaai::obs {
namespace {

Registry* g_registry = nullptr;
Tracer* g_tracer = nullptr;
ProbeSink* g_probe_sink = nullptr;

// Per-thread redirection used by obs::DeterministicParallelFor: while a
// worker runs one task, its Count/Observe/Probe calls land in a private
// per-task buffer instead of the process-global sinks, so the merged
// result is independent of thread interleaving. Null = no redirection.
thread_local Registry* t_registry_override = nullptr;
thread_local ProbeSink* t_probe_sink_override = nullptr;

}  // namespace

Registry* registry() {
  return t_registry_override != nullptr ? t_registry_override : g_registry;
}
Tracer* tracer() { return g_tracer; }
ProbeSink* probe_sink() {
  return t_probe_sink_override != nullptr ? t_probe_sink_override
                                          : g_probe_sink;
}

Registry* SetRegistry(Registry* registry) {
  Registry* previous = g_registry;
  g_registry = registry;
  return previous;
}

Tracer* SetTracer(Tracer* tracer) {
  Tracer* previous = g_tracer;
  g_tracer = tracer;
  return previous;
}

ProbeSink* SetProbeSink(ProbeSink* sink) {
  ProbeSink* previous = g_probe_sink;
  g_probe_sink = sink;
  return previous;
}

Registry* SetThreadLocalRegistry(Registry* registry) {
  Registry* previous = t_registry_override;
  t_registry_override = registry;
  return previous;
}

ProbeSink* SetThreadLocalProbeSink(ProbeSink* sink) {
  ProbeSink* previous = t_probe_sink_override;
  t_probe_sink_override = sink;
  return previous;
}

}  // namespace metaai::obs
