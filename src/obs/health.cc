#include "obs/health.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace metaai::obs::health {
namespace {

/// Warmup-stddev normalization scale from Welford accumulators; an
/// (almost) constant warmup falls back to absolute units so the
/// detectors stay meaningful instead of dividing by ~0.
double WarmupScale(double m2, std::size_t warmup) {
  if (warmup < 2) return 1.0;
  const double variance = m2 / static_cast<double>(warmup - 1);
  const double stddev = std::sqrt(variance);
  return stddev > 1e-12 ? stddev : 1.0;
}

}  // namespace

EwmaEstimator::EwmaEstimator(EwmaConfig config) : config_(config) {
  Check(config_.alpha > 0.0 && config_.alpha <= 1.0,
        "EWMA alpha must be in (0, 1]");
}

void EwmaEstimator::Observe(double value) {
  Check(std::isfinite(value), "health estimators reject non-finite samples");
  if (count_ == 0) {
    mean_ = value;
    variance_ = 0.0;
  } else {
    const double diff = value - mean_;
    const double incr = config_.alpha * diff;
    mean_ += incr;
    variance_ = (1.0 - config_.alpha) * (variance_ + diff * incr);
  }
  ++count_;
}

CusumDetector::CusumDetector(CusumConfig config) : config_(config) {
  Check(config_.warmup > 0, "CUSUM warmup must be positive");
  Check(config_.slack >= 0.0, "CUSUM slack must be non-negative");
  Check(config_.threshold > 0.0, "CUSUM threshold must be positive");
}

bool CusumDetector::Observe(double value) {
  Check(std::isfinite(value), "health estimators reject non-finite samples");
  if (count_ < config_.warmup) {
    // Welford update for the reference mean/scale.
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (count_ == config_.warmup) {
      scale_ = WarmupScale(m2_, config_.warmup);
    }
    return false;
  }
  ++count_;
  const double deviation = (value - mean_) / scale_;
  positive_ = std::max(0.0, positive_ + deviation - config_.slack);
  negative_ = std::max(0.0, negative_ - deviation - config_.slack);
  if (positive_ > config_.threshold || negative_ > config_.threshold) {
    positive_ = 0.0;
    negative_ = 0.0;
    return true;
  }
  return false;
}

PageHinkleyDetector::PageHinkleyDetector(PageHinkleyConfig config)
    : config_(config) {
  Check(config_.warmup > 0, "Page-Hinkley warmup must be positive");
  Check(config_.delta >= 0.0, "Page-Hinkley delta must be non-negative");
  Check(config_.lambda > 0.0, "Page-Hinkley lambda must be positive");
}

bool PageHinkleyDetector::Observe(double value) {
  Check(std::isfinite(value), "health estimators reject non-finite samples");
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  if (count_ <= config_.warmup) {
    m2_ += delta * (value - mean_);
    if (count_ == config_.warmup) {
      scale_ = WarmupScale(m2_, config_.warmup);
    }
    return false;
  }
  const double deviation = (value - mean_) / scale_;
  up_ += deviation - config_.delta;
  min_up_ = std::min(min_up_, up_);
  down_ += deviation + config_.delta;
  max_down_ = std::max(max_down_, down_);
  if (up_ - min_up_ > config_.lambda ||
      max_down_ - down_ > config_.lambda) {
    up_ = 0.0;
    min_up_ = 0.0;
    down_ = 0.0;
    max_down_ = 0.0;
    return true;
  }
  return false;
}

WindowedQuantile::WindowedQuantile(std::size_t window) : window_(window) {
  Check(window_ > 0, "quantile window must be positive");
}

void WindowedQuantile::Observe(double value) {
  Check(std::isfinite(value), "health estimators reject non-finite samples");
  samples_.push_back(value);
  if (samples_.size() > window_) samples_.pop_front();
}

double WindowedQuantile::Quantile(double q) const {
  const std::vector<double> values(samples_.begin(), samples_.end());
  // An empty window answers 0.0 by contract (callers poll before the
  // first observation); TailDigest::count carries emptiness for
  // consumers that need to distinguish.
  return TryNearestRankPercentile(values, q).value_or(0.0);
}

TailDigest WindowedQuantile::Tails() const {
  const std::vector<double> values(samples_.begin(), samples_.end());
  return DigestTails(values);
}

HealthMonitor::HealthMonitor(HealthMonitorConfig config) : config_(config) {}

void HealthMonitor::Observe(std::string_view signal, double value) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == signal) {
      State& state = states_[i];
      state.ewma.Observe(value);
      state.window.Observe(value);
      state.last = value;
      ++state.count;
      return;
    }
  }
  names_.emplace_back(signal);
  states_.push_back({.ewma = EwmaEstimator(config_.ewma),
                     .window = WindowedQuantile(config_.quantile_window)});
  State& state = states_.back();
  state.ewma.Observe(value);
  state.window.Observe(value);
  state.last = value;
  state.count = 1;
}

const HealthMonitor::State* HealthMonitor::Find(
    std::string_view signal) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == signal) return &states_[i];
  }
  return nullptr;
}

bool HealthMonitor::Has(std::string_view signal) const {
  return Find(signal) != nullptr;
}

SignalStats HealthMonitor::Stats(std::string_view signal) const {
  const State* state = Find(signal);
  if (state == nullptr) return {};
  return {.count = state->count,
          .last = state->last,
          .ewma_mean = state->ewma.mean(),
          .ewma_variance = state->ewma.variance(),
          .p50 = state->window.Quantile(0.50),
          .p99 = state->window.Quantile(0.99)};
}

std::vector<std::pair<std::string, double>> HealthSignalsFromProbe(
    const ProbeRecord& record) {
  auto value_of = [&](std::string_view name) -> const double* {
    for (const auto& [key, value] : record.values) {
      if (key == name) return &value;
    }
    return nullptr;
  };
  std::vector<std::pair<std::string, double>> signals;
  switch (record.kind) {
    case ProbeKind::kEvm:
      if (const double* evm = value_of("evm_rms")) {
        signals.emplace_back(std::string(kSignalEvm), *evm);
      }
      // Label-free accuracy proxy from the link's soft-decision margins
      // (emitted when OtaLinkConfig::data_modulation is set).
      if (const double* margin = value_of("soft_margin")) {
        signals.emplace_back(std::string(kSignalAccuracyProxy), *margin);
      }
      break;
    case ProbeKind::kSubcarrierSnr: {
      // The series holds per-observation SNR; summarize with its mean
      // (falling back to the nominal link SNR for seriesless records).
      if (!record.series.empty()) {
        double sum = 0.0;
        for (const double snr : record.series) sum += snr;
        signals.emplace_back(std::string(kSignalSnrDb),
                             sum / static_cast<double>(record.series.size()));
      } else if (const double* nominal = value_of("nominal_snr_db")) {
        signals.emplace_back(std::string(kSignalSnrDb), *nominal);
      }
      break;
    }
    case ProbeKind::kSyncOffset:
      if (const double* offset = value_of("offset_us")) {
        signals.emplace_back(std::string(kSignalSyncOffsetUs), *offset);
      }
      break;
    case ProbeKind::kSolverSweep:
      if (const double* residual = value_of("residual")) {
        signals.emplace_back(std::string(kSignalSolverResidual), *residual);
      }
      break;
    case ProbeKind::kScalar:
      if (record.site == "wdd.density") {
        if (const double* density = value_of("density")) {
          signals.emplace_back(std::string(kSignalWddDensity), *density);
        }
      }
      break;
    case ProbeKind::kSloViolation: {
      // Violation magnitude as the latency/target ratio (1 = exactly at
      // the SLO); a missing target degenerates to the raw latency.
      const double* latency = value_of("latency_s");
      const double* slo = value_of("slo_s");
      if (latency != nullptr) {
        signals.emplace_back(
            std::string(kSignalSloViolation),
            slo != nullptr && *slo > 0.0 ? *latency / *slo : *latency);
      }
      break;
    }
    default:
      break;
  }
  return signals;
}

std::size_t ObserveProbe(HealthMonitor& monitor, const ProbeRecord& record) {
  const auto signals = HealthSignalsFromProbe(record);
  for (const auto& [signal, value] : signals) {
    monitor.Observe(signal, value);
  }
  return signals.size();
}

}  // namespace metaai::obs::health
