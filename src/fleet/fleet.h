// metaai::fleet — a sharded surface cluster behind one front door.
//
// One metasurface's TDMA budget caps how many tenants it can serve; the
// ROADMAP's cluster-scale item (and the SIM survey's multi-surface
// framing) scales out instead: N independent shards — each a
// serve::Runtime over its own mts::LayerGraph and band — behind a
// deterministic front door that
//
//   (a) ADMITS AND PLACES tenants onto shards at construction by
//       first-fit-decreasing bin packing (core::PackBins) of each
//       tenant's declared switch-rate demand against each shard's
//       controller budget, gated by compatibility: the tenant's link
//       frequency must sit inside the shard's band and its Tx/Rx angles
//       inside the shard front panel's field of view;
//   (b) ROUTES request traces to shards on the shared virtual clock —
//       every shard replays its sub-trace on the same t=0 origin, so
//       fleet-level rollups line up without clock translation;
//   (c) MIGRATES tenants between shards at a virtual cutover time: the
//       destination shard deploys the tenant at construction through
//       the shared mts::ConfigCache (an exact hit when the shards are
//       identical, a nearest-entry warm start otherwise), so cutover is
//       a pure routing flip — requests arriving at or after cutover_s
//       go to the destination, earlier ones to the home shard;
//   (d) AGGREGATES per-shard ServeStats / request logs / timeseries /
//       alerts into fleet-level rollups (shard-tagged merged timeline,
//       globally renumbered alert stream, per-tenant totals).
//
// Determinism contract: the front door forks one Rng stream per request
// of the GLOBAL trace (fork order = submission order) and hands each
// shard the streams of its sub-trace, so a request's draws — and hence
// its prediction — do not depend on which shard serves it or on how the
// trace was split. Shards run in shard order and every merge is
// shard-ordered, so all fleet exports are byte-identical across thread
// counts, and a single-shard fleet reproduces a bare serve::Runtime's
// output bit for bit.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/placement.h"
#include "mts/config_cache.h"
#include "mts/layer_graph.h"
#include "serve/runtime.h"

namespace metaai::fleet {

/// One shard: a surface cascade on its own band with its own controller
/// budget.
struct ShardSpec {
  std::string name;
  mts::LayerGraph graph;
  /// Center frequency the shard serves on; tenants are compatible when
  /// their link frequency is within the front panel's fractional
  /// bandwidth of this band.
  double band_hz = 5.25e9;
  core::SchedulerConfig scheduler;
  /// Fraction of the controller's maximum switch rate the placement may
  /// commit (headroom for guard intervals and bursts).
  double budget_cap = 0.9;
};

/// One tenant: the serve-level client spec plus its declared demand.
struct TenantSpec {
  serve::ClientSpec client;
  /// Declared mean request rate, used for placement only (the runtime
  /// itself applies per-request admission control).
  double arrival_rate_hz = 100.0;
};

/// A scheduled hot migration: `tenant` moves to `to_shard`; requests
/// with arrival_s >= cutover_s route to the destination.
struct Migration {
  std::size_t tenant = 0;
  std::size_t to_shard = 0;
  double cutover_s = 0.0;
};

struct FleetOptions {
  /// Per-shard runtime knobs (queue capacity, frame budget, health,
  /// warm_start_distance). The cache field is overridden by the
  /// fleet-wide `cache` below.
  serve::RuntimeOptions runtime;
  /// Solver-result cache shared by every shard (created internally when
  /// null): identical tenants across shards deduplicate their solves,
  /// and migration destinations warm from the home shard's entries.
  std::shared_ptr<mts::ConfigCache> cache;
  std::vector<Migration> migrations;
};

/// Where one tenant landed.
struct TenantPlacement {
  /// Home shard index and the tenant's client index on that shard.
  std::size_t shard = 0;
  std::size_t local_index = 0;
  /// Declared demand in controller patterns/second (the bin-packed
  /// quantity).
  double demand_patterns_hz = 0.0;
  /// Migration routing, when scheduled.
  bool migrates = false;
  std::size_t to_shard = 0;
  std::size_t to_local_index = 0;
  double cutover_s = 0.0;
};

/// One shard's slice of a fleet run.
struct ShardRollup {
  std::string name;
  serve::ServeStats stats;
};

/// Fleet-level aggregate of one Run.
struct FleetStats {
  std::size_t submitted = 0;
  std::size_t served = 0;
  /// Front-door rejections: tenant index outside the fleet's list.
  std::size_t rejected_unknown_tenant = 0;
  /// Shard-level rejections summed across shards (bad input, queue
  /// backpressure).
  std::size_t rejected_bad_input = 0;
  std::size_t rejected_queue_full = 0;
  std::size_t frames = 0;
  /// Max over shards (shards share the virtual t=0 origin).
  double virtual_duration_s = 0.0;
  /// End-to-end latency percentiles over all served requests.
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_p999_s = 0.0;
  std::size_t slo_within = 0;
  std::size_t slo_violations = 0;
  /// SLO-compliant requests per second of fleet virtual time.
  double goodput_slo_rps = 0.0;
  double energy_total_j = 0.0;
  /// One entry per tenant (global order): counts summed across the
  /// tenant's shard deployments, latency percentiles recomputed over
  /// its merged traces. margin_p50 is per-shard state and stays 0 here;
  /// read it from the shard rollups.
  std::vector<serve::TenantStats> tenants;
  /// One entry per shard, in shard order.
  std::vector<ShardRollup> shards;
  std::size_t alerts = 0;
  std::size_t drift_alerts = 0;

  std::size_t rejected() const {
    return rejected_unknown_tenant + rejected_bad_input + rejected_queue_full;
  }
};

struct FleetResult {
  /// One response per request, in submission order, with `client`
  /// remapped back to the global tenant index.
  std::vector<serve::ServeResponse> responses;
  FleetStats stats;
  /// Served-request traces in global submission order; tenants[] holds
  /// the global tenant names.
  obs::RequestLog request_log;
  /// Shard-tagged merged timeline: every per-shard tick prefixed with
  /// {"shard": k} and stable-sorted by t_s (obs::MergeTimeSeries).
  std::vector<obs::TimeSeriesPoint> timeseries;
  /// Alert stream k-way merged across shards by t_s (ties in shard
  /// order, each shard's own emission order preserved), tenant
  /// remapped to the global index, seq renumbered.
  std::vector<obs::health::Alert> alerts;
  /// Raw per-shard results, in shard order — untouched, so a
  /// single-shard fleet's shard_results[0] is bit-identical to the
  /// equivalent bare serve::Runtime run.
  std::vector<serve::ServeResult> shard_results;
};

class Fleet {
 public:
  /// Places tenants, then builds one serve::Runtime per shard (serially,
  /// in shard order, through the shared cache). Typed errors:
  /// kInvalidArgument for malformed specs/migrations,
  /// kUnavailable when a tenant fits no compatible shard within budget
  /// or a shard's controller cannot sustain its symbol rate.
  static Result<Fleet> TryCreate(std::vector<ShardSpec> shards,
                                 std::vector<TenantSpec> tenants,
                                 FleetOptions options = {});

  Fleet(Fleet&&) = default;
  Fleet& operator=(Fleet&&) = default;

  std::size_t num_shards() const { return runtimes_.size(); }
  std::size_t num_tenants() const { return placements_.size(); }
  /// Whether shard s hosts any tenants (an empty shard runs no runtime).
  bool shard_active(std::size_t s) const { return runtimes_[s].has_value(); }
  /// The shard's runtime; requires shard_active(s).
  const serve::Runtime& shard(std::size_t s) const;
  const std::string& shard_name(std::size_t s) const {
    return shard_names_[s];
  }
  const std::string& tenant_name(std::size_t t) const {
    return tenant_names_[t];
  }
  std::span<const TenantPlacement> placement() const { return placements_; }
  const std::shared_ptr<mts::ConfigCache>& cache() const { return cache_; }

  /// Serves a global request trace (request.client = global tenant
  /// index, non-decreasing arrival_s). Forks one stream per request,
  /// routes sub-traces, runs shards in shard order, merges.
  FleetResult Run(std::span<const serve::ServeRequest> requests,
                  const sim::SyncModel& sync, Rng& rng) const;

  /// The shard a request for `tenant` at `arrival_s` routes to, and the
  /// tenant's client index there.
  std::pair<std::size_t, std::size_t> Route(std::size_t tenant,
                                            double arrival_s) const;

 private:
  Fleet() = default;

  std::vector<std::string> shard_names_;
  std::vector<std::string> tenant_names_;
  /// nullopt = shard the packing left empty (legal headroom).
  std::vector<std::optional<serve::Runtime>> runtimes_;
  std::vector<TenantPlacement> placements_;
  /// local_to_global_[s][l] = global tenant index of shard s's client l.
  std::vector<std::vector<std::size_t>> local_to_global_;
  std::shared_ptr<mts::ConfigCache> cache_;
};

}  // namespace metaai::fleet
