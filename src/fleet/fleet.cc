#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <optional>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "mts/controller.h"
#include "obs/quantiles.h"

namespace metaai::fleet {
namespace {

/// Mirrors the scheduler's controller reconciliation (scheduler.cc):
/// the config must describe the panel it drives, with the group count
/// rounded down to the nearest divisor of the atom count.
mts::ControllerConfig AlignedController(mts::ControllerConfig controller,
                                        std::size_t num_atoms) {
  if (controller.num_atoms == num_atoms) return controller;
  controller.num_atoms = num_atoms;
  std::size_t groups = std::min(controller.num_groups, num_atoms);
  while (groups > 1 && num_atoms % groups != 0) --groups;
  controller.num_groups = groups;
  return controller;
}

/// Patterns/second a tenant commits on a shard's controller: every
/// symbol carries 2 patterns (mid-symbol flip) and one inference
/// transmits ~input_dim symbols per output class. A declared-demand
/// proxy — the runtime's own admission control is the hard gate.
double DemandPatternsHz(const TenantSpec& tenant) {
  return tenant.arrival_rate_hz * 2.0 *
         static_cast<double>(tenant.client.model.input_dim()) *
         static_cast<double>(tenant.client.model.num_classes());
}

/// Whether `tenant` can be served by `shard`: link frequency inside the
/// shard band (front panel's fractional bandwidth) and both link angles
/// inside the front panel's field of view.
bool Compatible(const TenantSpec& tenant, const ShardSpec& shard) {
  const mts::MetasurfaceSpec& front = shard.graph.front().spec();
  const double freq = tenant.client.link.geometry.frequency_hz;
  if (std::abs(freq / shard.band_hz - 1.0) > front.fractional_bandwidth) {
    return false;
  }
  const double fov_rad = front.fov_deg * std::numbers::pi / 180.0;
  return std::abs(tenant.client.link.geometry.tx_angle_rad) <= fov_rad &&
         std::abs(tenant.client.link.geometry.rx_angle_rad) <= fov_rad;
}

Result<void> ValidateFleetConfig(const std::vector<ShardSpec>& shards,
                                 const std::vector<TenantSpec>& tenants,
                                 const FleetOptions& options) {
  if (shards.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "fleet needs at least one shard"};
  }
  if (tenants.empty()) {
    return Error{ErrorCode::kInvalidArgument,
                 "fleet needs at least one tenant"};
  }
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardSpec& shard = shards[s];
    const std::string prefix = "shard " + std::to_string(s) + ": ";
    if (!(shard.band_hz > 0.0)) {
      return Error{ErrorCode::kInvalidArgument,
                   prefix + "band must be positive"};
    }
    if (!(shard.budget_cap > 0.0) || shard.budget_cap > 1.0) {
      return Error{ErrorCode::kInvalidArgument,
                   prefix + "budget cap must be in (0, 1]"};
    }
    const mts::MetasurfaceSpec& front = shard.graph.front().spec();
    const bool supported = std::any_of(
        front.supported_bands_hz.begin(), front.supported_bands_hz.end(),
        [&](double band) {
          return std::abs(shard.band_hz / band - 1.0) <=
                 front.fractional_bandwidth;
        });
    if (!supported) {
      return Error{ErrorCode::kInvalidArgument,
                   prefix + "front panel does not support the shard band"};
    }
  }
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    if (!(tenants[t].arrival_rate_hz > 0.0)) {
      return Error{ErrorCode::kInvalidArgument,
                   "tenant " + std::to_string(t) +
                       ": arrival rate must be positive"};
    }
  }
  std::vector<bool> migrated(tenants.size(), false);
  for (const Migration& migration : options.migrations) {
    if (migration.tenant >= tenants.size()) {
      return Error{ErrorCode::kInvalidArgument,
                   "migration names unknown tenant " +
                       std::to_string(migration.tenant)};
    }
    if (migration.to_shard >= shards.size()) {
      return Error{ErrorCode::kInvalidArgument,
                   "migration names unknown shard " +
                       std::to_string(migration.to_shard)};
    }
    if (!(migration.cutover_s >= 0.0)) {
      return Error{ErrorCode::kInvalidArgument,
                   "migration cutover must be non-negative"};
    }
    if (migrated[migration.tenant]) {
      return Error{ErrorCode::kInvalidArgument,
                   "tenant " + std::to_string(migration.tenant) +
                       " has more than one scheduled migration"};
    }
    migrated[migration.tenant] = true;
    if (!Compatible(tenants[migration.tenant], shards[migration.to_shard])) {
      return Error{ErrorCode::kUnavailable,
                   "tenant " + std::to_string(migration.tenant) +
                       " is not compatible with migration destination shard " +
                       std::to_string(migration.to_shard)};
    }
  }
  return Ok();
}

void CheckTraceOrdered(std::span<const serve::ServeRequest> requests) {
  for (std::size_t i = 1; i < requests.size(); ++i) {
    Check(requests[i].arrival_s >= requests[i - 1].arrival_s,
          "request trace must have non-decreasing arrival times");
  }
}

}  // namespace

Result<Fleet> Fleet::TryCreate(std::vector<ShardSpec> shards,
                               std::vector<TenantSpec> tenants,
                               FleetOptions options) {
  if (Result<void> ok = ValidateFleetConfig(shards, tenants, options); !ok) {
    return ok.error();
  }

  // Shard capacities (patterns/second) and per-shard symbol-rate
  // feasibility — checked here with a typed error instead of the
  // scheduler's CheckError deep inside runtime construction.
  std::vector<double> capacity(shards.size(), 0.0);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const mts::Controller controller(AlignedController(
        shards[s].scheduler.controller, shards[s].graph.front().num_atoms()));
    if (!controller.CanSustain(shards[s].scheduler.symbol_rate_hz, 2)) {
      return Error{ErrorCode::kUnavailable,
                   "shard " + std::to_string(s) +
                       ": controller cannot sustain the mid-symbol flip at "
                       "this symbol rate"};
    }
    capacity[s] = controller.MaxSwitchRate() * shards[s].budget_cap;
  }

  // Bin-pack tenants onto compatible shards by declared switch-rate
  // demand (first-fit-decreasing, deterministic).
  core::PlacementProblem problem;
  problem.capacity = capacity;
  problem.demand.reserve(tenants.size());
  problem.compatible.reserve(tenants.size());
  for (const TenantSpec& tenant : tenants) {
    problem.demand.push_back(DemandPatternsHz(tenant));
    std::vector<bool> row(shards.size(), false);
    for (std::size_t s = 0; s < shards.size(); ++s) {
      row[s] = Compatible(tenant, shards[s]);
    }
    problem.compatible.push_back(std::move(row));
  }
  Result<core::PlacementResult> packed = core::PackBins(problem);
  if (!packed) return packed.error();

  Fleet fleet;
  fleet.cache_ = options.cache ? options.cache
                               : std::make_shared<mts::ConfigCache>();
  fleet.placements_.resize(tenants.size());
  fleet.local_to_global_.resize(shards.size());
  std::vector<std::vector<serve::ClientSpec>> shard_clients(shards.size());

  // Home placements, in global tenant order so local indices are a pure
  // function of the spec.
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const std::size_t s = packed->bin_of_item[t];
    TenantPlacement& placement = fleet.placements_[t];
    placement.shard = s;
    placement.local_index = shard_clients[s].size();
    placement.demand_patterns_hz = problem.demand[t];
    shard_clients[s].push_back(tenants[t].client);
    fleet.local_to_global_[s].push_back(t);
    fleet.tenant_names_.push_back(tenants[t].client.name);
  }

  // Migration destinations: the destination shard deploys the tenant at
  // construction (through the shared cache, so an identical shard hits
  // exactly and a near one warm-starts), making cutover a pure routing
  // flip. Destination load is charged against the bin capacity too.
  std::vector<double> load = packed->load;
  for (const Migration& migration : options.migrations) {
    TenantPlacement& placement = fleet.placements_[migration.tenant];
    if (migration.to_shard == placement.shard) continue;  // no-op move
    if (load[migration.to_shard] + placement.demand_patterns_hz >
        capacity[migration.to_shard]) {
      return Error{ErrorCode::kUnavailable,
                   "migration destination shard " +
                       std::to_string(migration.to_shard) +
                       " lacks capacity for tenant " +
                       std::to_string(migration.tenant)};
    }
    load[migration.to_shard] += placement.demand_patterns_hz;
    placement.migrates = true;
    placement.to_shard = migration.to_shard;
    placement.to_local_index = shard_clients[migration.to_shard].size();
    placement.cutover_s = migration.cutover_s;
    shard_clients[migration.to_shard].push_back(
        tenants[migration.tenant].client);
    fleet.local_to_global_[migration.to_shard].push_back(migration.tenant);
  }

  // Build the shard runtimes serially in shard order (deployment order
  // — and hence cache fill order — is deterministic).
  serve::RuntimeOptions runtime_options = options.runtime;
  runtime_options.cache = fleet.cache_;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    fleet.shard_names_.push_back(shards[s].name);
    if (shard_clients[s].empty()) {
      // A shard the packing left empty is legal headroom; it runs no
      // runtime and serves no requests.
      fleet.runtimes_.emplace_back(std::nullopt);
      continue;
    }
    Result<serve::Runtime> runtime = serve::Runtime::TryCreate(
        std::move(shards[s].graph), std::move(shard_clients[s]),
        runtime_options);
    if (!runtime) {
      Error error = runtime.error();
      error.message = "shard " + std::to_string(s) + ": " + error.message;
      return error;
    }
    fleet.runtimes_.emplace_back(std::move(runtime).value());
  }
  return fleet;
}

const serve::Runtime& Fleet::shard(std::size_t s) const {
  Check(runtimes_[s].has_value(), "shard hosts no tenants");
  return *runtimes_[s];
}

std::pair<std::size_t, std::size_t> Fleet::Route(std::size_t tenant,
                                                 double arrival_s) const {
  const TenantPlacement& placement = placements_[tenant];
  if (placement.migrates && arrival_s >= placement.cutover_s) {
    return {placement.to_shard, placement.to_local_index};
  }
  return {placement.shard, placement.local_index};
}

FleetResult Fleet::Run(std::span<const serve::ServeRequest> requests,
                       const sim::SyncModel& sync, Rng& rng) const {
  CheckTraceOrdered(requests);

  // Fork one stream per request of the GLOBAL trace: a request's draws
  // depend only on its submission index, never on the routing.
  std::vector<Rng> rngs = par::ForkRngs(rng, requests.size());

  FleetResult result;
  result.stats.submitted = requests.size();
  result.responses.resize(requests.size());

  // Front door + routing: split the trace per shard, remapping tenants
  // to shard-local client indices and carrying each request's stream.
  std::vector<std::vector<serve::ServeRequest>> shard_requests(num_shards());
  std::vector<std::vector<Rng>> shard_rngs(num_shards());
  std::vector<std::vector<std::size_t>> shard_globals(num_shards());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const serve::ServeRequest& request = requests[i];
    if (request.client >= num_tenants()) {
      result.responses[i] = {.id = request.id,
                             .client = request.client,
                             .predicted = -1,
                             .rejected = serve::RejectReason::kUnknownClient,
                             .arrival_s = request.arrival_s};
      ++result.stats.rejected_unknown_tenant;
      continue;
    }
    const auto [s, local] = Route(request.client, request.arrival_s);
    serve::ServeRequest routed = request;
    routed.client = local;
    shard_requests[s].push_back(std::move(routed));
    shard_rngs[s].push_back(rngs[i]);
    shard_globals[s].push_back(i);
  }

  // Run the shards in shard order (each internally parallel; exports
  // stay byte-identical for any thread count).
  result.shard_results.resize(num_shards());
  for (std::size_t s = 0; s < num_shards(); ++s) {
    if (!runtimes_[s].has_value() || shard_requests[s].empty()) continue;
    result.shard_results[s] = runtimes_[s]->Run(
        shard_requests[s], sync, std::span<Rng>(shard_rngs[s]));
  }

  // Merge responses and lifecycle traces back into global submission
  // order, remapping tenants to their global indices.
  std::vector<obs::RequestTrace> traces(requests.size());
  std::vector<char> has_trace(requests.size(), 0);
  for (std::size_t s = 0; s < num_shards(); ++s) {
    const serve::ServeResult& shard = result.shard_results[s];
    std::size_t trace_cursor = 0;
    for (std::size_t j = 0; j < shard.responses.size(); ++j) {
      const std::size_t g = shard_globals[s][j];
      serve::ServeResponse response = shard.responses[j];
      response.client = local_to_global_[s][response.client];
      result.responses[g] = response;
      if (response.rejected == serve::RejectReason::kNone) {
        obs::RequestTrace trace = shard.request_log.traces[trace_cursor++];
        trace.tenant = static_cast<std::uint32_t>(
            local_to_global_[s][trace.tenant]);
        traces[g] = trace;
        has_trace[g] = 1;
      }
    }
  }
  result.request_log.tenants = tenant_names_;
  for (std::size_t g = 0; g < requests.size(); ++g) {
    if (has_trace[g]) result.request_log.traces.push_back(traces[g]);
  }

  // Shard-tagged merged timeline.
  std::vector<std::vector<obs::TimeSeriesPoint>> series;
  series.reserve(num_shards());
  for (const serve::ServeResult& shard : result.shard_results) {
    series.push_back(shard.timeseries);
  }
  result.timeseries = obs::MergeTimeSeries(series, "shard");

  // Alert stream: k-way merge across shards by virtual time (ties in
  // shard order), remap tenants, renumber sequence. A merge — not a
  // sort — so each shard's own emission order is preserved verbatim
  // and a single shard's stream passes through untouched (the runtime
  // emits per-frame, which is only approximately t_s-ordered).
  std::vector<std::size_t> cursor(num_shards(), 0);
  for (;;) {
    std::size_t best = num_shards();
    for (std::size_t s = 0; s < num_shards(); ++s) {
      const auto& alerts = result.shard_results[s].alerts;
      if (cursor[s] >= alerts.size()) continue;
      if (best == num_shards() ||
          alerts[cursor[s]].t_s <
              result.shard_results[best].alerts[cursor[best]].t_s) {
        best = s;
      }
    }
    if (best == num_shards()) break;
    obs::health::Alert alert =
        result.shard_results[best].alerts[cursor[best]++];
    if (alert.tenant >= 0) {
      alert.tenant = static_cast<std::int32_t>(
          local_to_global_[best][static_cast<std::size_t>(alert.tenant)]);
    }
    alert.seq = result.alerts.size();
    result.alerts.push_back(std::move(alert));
  }

  // Fleet rollups.
  FleetStats& stats = result.stats;
  for (std::size_t s = 0; s < num_shards(); ++s) {
    const serve::ServeStats& shard = result.shard_results[s].stats;
    stats.served += shard.served;
    stats.rejected_bad_input += shard.rejected_bad_input;
    stats.rejected_queue_full += shard.rejected_queue_full;
    stats.rejected_unknown_tenant += shard.rejected_unknown_client;
    stats.frames += shard.frames;
    stats.virtual_duration_s =
        std::max(stats.virtual_duration_s, shard.virtual_duration_s);
    stats.slo_within += shard.slo_within;
    stats.slo_violations += shard.slo_violations;
    stats.energy_total_j += shard.energy_total_j;
    stats.alerts += shard.alerts;
    stats.drift_alerts += shard.drift_alerts;
    stats.shards.push_back({.name = shard_names_[s], .stats = shard});
  }
  if (stats.virtual_duration_s > 0.0) {
    stats.goodput_slo_rps =
        static_cast<double>(stats.slo_within) / stats.virtual_duration_s;
  }

  std::vector<double> latencies;
  latencies.reserve(result.request_log.traces.size());
  std::vector<std::vector<double>> tenant_latencies(num_tenants());
  stats.tenants.resize(num_tenants());
  for (std::size_t t = 0; t < num_tenants(); ++t) {
    stats.tenants[t].name = tenant_names_[t];
  }
  for (const obs::RequestTrace& trace : result.request_log.traces) {
    const double latency = trace.Latency();
    latencies.push_back(latency);
    serve::TenantStats& tenant = stats.tenants[trace.tenant];
    tenant.slo_s = trace.slo_s;
    tenant.cache_hit = trace.cache_hit;
    ++tenant.served;
    tenant.energy_j += trace.energy_j;
    if (trace.SloViolated()) {
      ++tenant.slo_violations;
    } else {
      ++tenant.slo_within;
    }
    tenant_latencies[trace.tenant].push_back(latency);
  }
  const obs::TailDigest tails = obs::DigestTails(latencies);
  stats.latency_p50_s = tails.p50;
  stats.latency_p99_s = tails.p99;
  stats.latency_p999_s = tails.p999;
  for (std::size_t t = 0; t < num_tenants(); ++t) {
    const obs::TailDigest tenant_tails =
        obs::DigestTails(tenant_latencies[t]);
    stats.tenants[t].latency_p50_s = tenant_tails.p50;
    stats.tenants[t].latency_p99_s = tenant_tails.p99;
    stats.tenants[t].latency_p999_s = tenant_tails.p999;
  }
  for (const obs::health::Alert& alert : result.alerts) {
    if (alert.tenant >= 0 &&
        static_cast<std::size_t>(alert.tenant) < stats.tenants.size()) {
      serve::TenantStats& tenant =
          stats.tenants[static_cast<std::size_t>(alert.tenant)];
      ++tenant.alerts;
      if (alert.kind == obs::health::AlertKind::kDriftDetected) {
        ++tenant.drift_alerts;
      }
    }
  }
  return result;
}

}  // namespace metaai::fleet
