#include "sim/energy_model.h"

#include <cmath>

#include "common/check.h"

namespace metaai::sim {
namespace {

// Server compute time = intercept_ms + slope_ms_per_px * pixels, at
// power_w. Fitted through the paper's measured MNIST (784 px) and AFHQ
// (2704 px) rows.
struct ServerProfile {
  const char* device;
  const char* model;
  double intercept_ms;
  double slope_ms_per_px;
  double power_w;
};

constexpr ServerProfile kProfiles[] = {
    {"CPU", "ResNet-18", 4.041, 4.680e-3, 29.3},
    {"CPU", "LNN", 0.874, 1.386e-3, 31.4},
    {"4080 GPU", "ResNet-18", 3.138, 1.483e-3, 42.3},
    {"4080 GPU", "LNN", 3.477, 6.55e-4, 31.2},
};

const ServerProfile& FindProfile(const std::string& device,
                                 const std::string& model) {
  for (const ServerProfile& profile : kProfiles) {
    if (device == profile.device && model == profile.model) return profile;
  }
  throw CheckError("unknown device/model pair: " + device + "/" + model);
}

}  // namespace

EnergyModel::EnergyModel(EnergyModelConfig config) : config_(config) {
  Check(config_.radio_rate_bps > 0.0, "radio rate must be positive");
  Check(config_.metaai_symbol_rate_hz > 0.0, "symbol rate must be positive");
}

InferenceEnergy EnergyModel::OtaInferenceEnergy(double airtime_s,
                                                std::size_t symbols,
                                                double tx_power_dbm) const {
  Check(airtime_s >= 0.0, "airtime must be non-negative");
  InferenceEnergy energy;
  // dBm -> W: 10^((dBm - 30) / 10).
  energy.tx_j = std::pow(10.0, (tx_power_dbm - 30.0) / 10.0) * airtime_s;
  energy.mts_j = static_cast<double>(symbols) *
                 config_.mts_patterns_per_symbol *
                 config_.mts_energy_per_pattern_j;
  energy.server_j = config_.metaai_server_power_w * DemodLatencyS();
  return energy;
}

EnergyLatencyRow EnergyModel::DigitalRow(const std::string& device,
                                         const std::string& model,
                                         std::size_t pixels) const {
  Check(pixels > 0, "pixels must be positive");
  const ServerProfile& profile = FindProfile(device, model);
  EnergyLatencyRow row;
  row.system = device;
  row.model = model;
  // 8-bit pixels shipped raw.
  const double bits = static_cast<double>(pixels) * 8.0;
  row.transmission_ms = bits / config_.radio_rate_bps * 1e3;
  row.server_compute_ms =
      profile.intercept_ms + profile.slope_ms_per_px *
                                 static_cast<double>(pixels);
  row.total_ms = row.transmission_ms + row.server_compute_ms;
  row.transmission_mj = config_.radio_power_w * row.transmission_ms;
  row.server_compute_mj = profile.power_w * row.server_compute_ms;
  row.mts_mj = 0.0;
  row.total_mj = row.transmission_mj + row.server_compute_mj;
  return row;
}

EnergyLatencyRow EnergyModel::MetaAiRow(std::size_t pixels,
                                        std::size_t classes,
                                        std::size_t parallel_width) const {
  Check(pixels > 0 && classes > 0 && parallel_width > 0,
        "dimensions must be positive");
  Check(parallel_width <= classes, "parallel width cannot exceed classes");
  EnergyLatencyRow row;
  row.system = "Meta-AI";
  row.model = "LNN";
  const double rounds = std::ceil(static_cast<double>(classes) /
                                  static_cast<double>(parallel_width));
  const double symbols = static_cast<double>(pixels) * rounds;
  row.transmission_ms = symbols / config_.metaai_symbol_rate_hz * 1e3;
  row.server_compute_ms = config_.metaai_server_ms;
  row.total_ms = row.transmission_ms + row.server_compute_ms;
  row.transmission_mj = config_.radio_power_w * row.transmission_ms;
  row.server_compute_mj =
      config_.metaai_server_power_w * row.server_compute_ms;
  row.mts_mj = symbols * config_.mts_patterns_per_symbol *
               config_.mts_energy_per_pattern_j * 1e3;
  row.total_mj = row.transmission_mj + row.server_compute_mj + row.mts_mj;
  return row;
}

}  // namespace metaai::sim
