#include "sim/sync.h"

#include "common/check.h"
#include "obs/obs.h"

namespace metaai::sim {

std::string SyncModeName(SyncMode mode) {
  switch (mode) {
    case SyncMode::kNone:
      return "w/o sync";
    case SyncMode::kCoarse:
      return "CD";
    case SyncMode::kCdfa:
      return "CDFA";
  }
  throw CheckError("unknown sync mode");
}

double PaperEquivalentLatencyScale(std::size_t stream_symbols) {
  // The paper's MNIST streams carry 28 x 28 = 784 symbols.
  return static_cast<double>(stream_symbols) / 784.0;
}

SyncModel::SyncModel(SyncMode mode, SyncModelConfig config)
    : mode_(mode), config_(config), detector_(config.detector) {
  Check(config_.unsynced_max_error_us > 0.0,
        "unsynced error range must be positive");
  Check(config_.latency_scale > 0.0, "latency scale must be positive");
}

double SyncModel::SampleOffsetUs(Rng& rng) const {
  double offset_us = [&] {
    switch (mode_) {
      case SyncMode::kNone:
        return rng.Uniform(0.0, config_.unsynced_max_error_us);
      case SyncMode::kCoarse:
      case SyncMode::kCdfa:
        // CDFA does not change the physical offset — it changes how
        // robust the trained network is to it.
        return config_.latency_scale *
               detector_.SampleDetectionLatencyUs(rng);
    }
    throw CheckError("unknown sync mode");
  }();
  // Transient detector glitch (fault model). SyncBurstOffsetUs draws
  // nothing when the burst model is inactive, so fault-free streams are
  // untouched; with it active the draw count per frame is fixed.
  if (config_.faults != nullptr) {
    const double burst_us = config_.faults->SyncBurstOffsetUs(rng);
    if (burst_us != 0.0) {
      obs::Count("fault.sync_bursts");
      offset_us += burst_us;
    }
  }
  // Timeline entry: sample order is the probe's seq order, so the
  // flight recorder reconstructs the per-inference offset sequence
  // behind a degraded run (the paper's Fig 12 evidence).
  if (obs::ProbesEnabled()) {
    obs::Probe({.kind = obs::ProbeKind::kSyncOffset,
                .site = "sync.sample",
                .values = {{"offset_us", offset_us},
                           {"mode", static_cast<double>(mode_)}}});
  }
  return offset_us;
}

}  // namespace metaai::sim
