// End-to-end over-the-air link simulator.
//
// Models one Tx -> {MTS reflection + environment} -> Rx link at symbol
// resolution with sub-symbol oversampling, implementing the paper's
// receive model (Eqn 3) together with:
//  * the multipath-cancellation scheme of §3.2: zero-mean half-symbol
//    pulses with the MTS flipping every atom by pi at mid-symbol, so that
//    plain integration over a symbol cancels any path that is static
//    within the symbol while retaining the MTS-path product w * x;
//  * metasurface clock offset (sync error) in microseconds — the MTS
//    weight schedule slides against the data symbols, reproducing the
//    degradation of Fig 11/13;
//  * link-budget noise: Friis legs, antenna gains, wall attenuation and a
//    noise floor produce a physical per-symbol SNR (used by the distance /
//    NLoS / cross-room sweeps);
//  * hardware phase noise on the meta-atoms (diffusion approximation: the
//    sum of many small per-atom phase jitters is an additive complex
//    Gaussian on the slot response);
//  * a dynamic interferer (Fig 26).
//
// Parallelism support: a link carries one or more *observations* — the
// same transmission measured on different subcarriers (frequency offsets,
// Fig 9a) or at different receive antennas (geometry overrides, Fig 9b).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/matrix.h"
#include "common/rng.h"
#include "fault/injector.h"
#include "mts/layer_graph.h"
#include "mts/metasurface.h"
#include "rf/antenna.h"
#include "rf/modulation.h"
#include "rf/signal.h"
#include "sim/environment.h"

namespace metaai::sim {

using rf::Complex;

/// One way of observing the transmission.
struct Observation {
  /// Subcarrier offset from the carrier (subcarrier parallelism).
  double freq_offset_hz = 0.0;
  /// Harmonic index of the metasurface's intra-symbol time coding. At
  /// 40 kHz subcarrier spacing the propagation phases alone barely differ
  /// across subcarriers; the physical mechanism that decorrelates them is
  /// time modulation of the atoms within the OFDM symbol, whose h-th
  /// Fourier harmonic picks up a distinct per-atom phase. Modeled as a
  /// deterministic golden-angle phase ramp e^{j 2.39996 (m+1) h} on the
  /// steering vector (0 = fundamental, no extra phase).
  int harmonic = 0;
  /// Receive-antenna geometry override (antenna parallelism); nullopt
  /// uses the link's base geometry.
  std::optional<mts::LinkGeometry> geometry = std::nullopt;
};

struct LinkBudget {
  double tx_power_dbm = 20.0;
  /// Effective noise floor over the symbol bandwidth, including receiver
  /// noise figure and residual interference.
  double noise_floor_dbm = -72.0;
};

struct OtaLinkConfig {
  mts::LinkGeometry geometry;  // default paper setup is the zero value
  EnvironmentSetup environment;
  rf::AntennaType tx_antenna = rf::AntennaType::kDirectional;
  rf::AntennaType rx_antenna = rf::AntennaType::kDirectional;
  LinkBudget budget;
  double symbol_rate_hz = 1e6;
  /// §3.2 scheme: zero-mean pulse + mid-symbol MTS flip. When false the
  /// MTS holds one configuration per symbol and the environment path adds
  /// directly onto the weight.
  bool multipath_cancellation = true;
  /// Sub-samples per symbol for the time-resolved integration.
  int oversample = 8;
  /// Std-dev (radians) of *static* per-atom phase errors — device
  /// discrepancies among meta-atoms (hardware noise N_d of Eqn 13). Drawn
  /// once per link from channel_seed; the weight mapper solves against
  /// the idealized surface, so these errors systematically distort every
  /// realized weight — exactly the miscalibration the noise-aware
  /// training scheme (Eqn 14) compensates.
  double mts_phase_noise_std = 0.0;
  std::vector<Observation> observations = {Observation{}};
  std::uint64_t channel_seed = 1;  // environment realization seed
  /// Modulation of the data symbols carried over this link, when known.
  /// Enables the demod soft-decision margin ("soft_margin",
  /// rf::SoftDecisionMargin over the equalized received symbols) on the
  /// EVM probe — the label-free accuracy proxy the health layer
  /// (obs/health.h) subscribes to. Deployments set it from their model.
  std::optional<rf::Modulation> data_modulation;
  /// Optional hardware fault injection (metaai::fault). Static models
  /// (stuck atoms' pinned codes, aging drift on the steering) realize at
  /// link construction; dynamic ones (shift-chain corruption) perturb
  /// every pattern load inside TransmitSequence. Null = healthy hardware.
  std::shared_ptr<const fault::FaultInjector> faults;
};

/// The per-symbol MTS configuration schedule for one output sequence:
/// schedule[i] holds the codes the surface loads for data symbol i (the
/// mid-symbol flip is applied internally when cancellation is on).
using MtsSchedule = std::vector<std::vector<mts::PhaseCode>>;

/// Per-symbol schedules for the upper layers of a cascade link:
/// upper[l-1][i] holds the codes layer l loads for data symbol i.
using LayerSchedules = std::vector<MtsSchedule>;

class OtaLink {
 public:
  /// Draws the environment realization from config.channel_seed.
  OtaLink(const mts::Metasurface& surface, OtaLinkConfig config);

  /// Cascade link over a layer graph; `graph` must outlive the link (the
  /// same lifetime contract the single-surface constructor places on its
  /// surface). Layer 0 is the schedule-driven front panel: device phase
  /// errors, faults and the mid-symbol pi flip act on it alone. Layers
  /// 1..K-1 multiply every observation's response by the composed factor
  /// U(o, i) = prod_l c_l(o) * sum_m s_l(o, m) e^{j phi_l[m, i]} where
  /// s_l is layer l's own steering toward the observation's geometry and
  /// c_l(o) the normalizing coupling (see mts/layer_graph.h). A depth-1
  /// graph behaves bit-for-bit like the single-surface constructor.
  OtaLink(const mts::LayerGraph& graph, OtaLinkConfig config);

  const OtaLinkConfig& config() const { return config_; }
  std::size_t num_observations() const { return config_.observations.size(); }

  /// Number of surfaces in the propagation path (1 for legacy links).
  std::size_t num_layers() const;

  /// Plays `schedule` against `data` and returns the integrated per-symbol
  /// measurements z(o, i) for every observation o. `mts_clock_offset_us`
  /// slides the MTS schedule relative to the data clock (positive = MTS
  /// late). Noise is drawn from `rng`. Requires num_layers() == 1; deep
  /// links must supply the upper-layer schedules via the overload below.
  ComplexMatrix TransmitSequence(std::span<const Complex> data,
                                 const MtsSchedule& schedule,
                                 double mts_clock_offset_us, Rng& rng) const;

  /// Cascade transmission: `upper[l-1][i]` is the configuration layer l
  /// holds during data symbol i (upper layers switch per symbol like the
  /// front panel but never flip at mid-symbol). `upper` must hold
  /// num_layers() - 1 schedules; pass an empty LayerSchedules on a
  /// depth-1 link for the legacy behavior.
  ComplexMatrix TransmitSequence(std::span<const Complex> data,
                                 const MtsSchedule& schedule,
                                 const LayerSchedules& upper,
                                 double mts_clock_offset_us, Rng& rng) const;

  /// Idealized steering of upper layer `layer` (index in [1,
  /// num_layers())) toward observation `o` — what the cascade solver
  /// solves against, excluding the coupling scale.
  std::vector<Complex> UpperSteeringVector(std::size_t layer,
                                           std::size_t o) const;

  /// Normalizing coupling c_l(o) of upper layer `layer` at observation
  /// `o`: coupling_gain / (0.9 * sum_m |s_l(o, m)|).
  double UpperCoupling(std::size_t layer, std::size_t o) const;

  /// Idealized composed upper-layer factor U(o) under one static set of
  /// per-layer codes (codes[l-1] configures layer l). Used by fault
  /// diagnosis to divide the cascade factor back out of measurements.
  Complex UpperLayerFactor(std::size_t o,
                           std::span<const std::vector<mts::PhaseCode>> codes)
      const;

  /// Steering vector the weight mapper should solve against for
  /// observation `o` (includes element pattern; excludes the path
  /// amplitude, which is a common scale).
  std::vector<Complex> SteeringVector(std::size_t o) const;

  /// Deterministic amplitude of the MTS path for observation `o`
  /// (Friis legs x antenna gains x wall attenuation).
  double MtsPathAmplitude(std::size_t o) const;

  /// Environment-path (Tx->Rx, bypassing the MTS) response for
  /// observation `o` at its frequency offset.
  Complex EnvironmentResponse(std::size_t o) const;

  /// Per-symbol SNR of the MTS path assuming the schedule realizes a
  /// mid-scale weight; diagnostic used by benches and tests.
  double NominalSnrDb() const;

  /// Noise variance per integrated symbol measurement.
  double SymbolNoiseVariance() const;

  /// Linear transmit amplitude sqrt(P_tx).
  double TxAmplitude() const { return tx_amplitude_; }

 private:
  struct ObservationState {
    /// Idealized steering (what the weight mapper solves against).
    std::vector<Complex> steering;
    /// Steering of the physical hardware: idealized steering times the
    /// static per-atom device phase errors. Used for transmission.
    std::vector<Complex> tx_steering;
    /// tx_steering split into component planes (structure-of-arrays) so
    /// the per-symbol base responses run through the vectorized
    /// simd::PhasedSum kernel.
    std::vector<double> tx_steer_re;
    std::vector<double> tx_steer_im;
    double mts_amplitude = 0.0;
    rf::MultipathChannel environment;
    double env_gain = 1.0;  // antenna + wall factors on the env path
  };

  /// One upper cascade layer as seen from one observation: its steering
  /// split into SoA planes for the phased-sum kernel, plus the
  /// normalizing coupling scale.
  struct UpperLayerState {
    std::vector<Complex> steering;
    std::vector<double> steer_re;
    std::vector<double> steer_im;
    double coupling = 1.0;
  };

  void BuildUpperStates();
  /// Composed upper factor U(o, i) for every observation/symbol; only
  /// called when upper layers exist.
  ComplexMatrix UpperFactors(const LayerSchedules& upper,
                             std::size_t num_symbols) const;

  const mts::Metasurface& surface_;
  /// Non-null for cascade links; the graph outlives the link.
  const mts::LayerGraph* graph_ = nullptr;
  OtaLinkConfig config_;
  std::vector<ObservationState> observations_;
  /// upper_[l-1][o]: layer l observed at observation o (empty when
  /// num_layers() == 1).
  std::vector<std::vector<UpperLayerState>> upper_;
  double tx_amplitude_ = 0.0;  // sqrt of Tx power (linear)
  double noise_power_ = 0.0;   // linear noise floor
};

/// Distance between the Tx and Rx endpoints implied by a reflection
/// geometry (both on the same side of the panel).
double TxRxDistance(const mts::LinkGeometry& geometry);

}  // namespace metaai::sim
