// Deployment environments for the over-the-air link (§5.2 / §5.3).
//
// Wraps the RF multipath profiles with the scenario-level knobs the
// paper's experiments sweep: LoS vs NLoS corner, cross-room wall
// attenuation, and a walking interferer in one of four regions (Fig 26).
#pragma once

#include <optional>
#include <string>

#include "common/rng.h"
#include "rf/antenna.h"
#include "rf/channel.h"

namespace metaai::sim {

/// Regions a dynamic (walking-human) interferer can occupy, following
/// Fig 26(a): R1 near the Tx, R2 between Tx and MTS, R3 behind the Rx,
/// R4 on the direct MTS-Rx path (blocking it).
enum class InterfererRegion { kNone, kR1, kR2, kR3, kR4 };

std::string InterfererRegionName(InterfererRegion region);

struct EnvironmentSetup {
  rf::MultipathProfile profile = rf::OfficeProfile();
  /// False for the NLoS corner scenario: the Tx-Rx environment path has
  /// no direct component (the MTS still sees both ends).
  bool direct_tx_rx = true;
  /// Wall attenuation applied to the MTS->Rx leg and the environment
  /// path (cross-room scenario, Fig 27). In dB, >= 0.
  double wall_attenuation_db = 0.0;
  InterfererRegion interferer = InterfererRegion::kNone;
  /// Fractional per-symbol random walk of the interferer's extra path
  /// (walking speed << symbol rate: the channel is static within a symbol
  /// but drifts across symbols).
  double interferer_drift = 0.05;
};

/// Per-symbol state of the dynamic interferer: an extra environment tap
/// that drifts between symbols, plus (region R4 only) a shadowing factor
/// on the MTS->Rx path.
class DynamicInterferer {
 public:
  DynamicInterferer(InterfererRegion region, double reference_amplitude,
                    double drift, Rng& rng);

  /// Advances one symbol period and returns the interferer's extra
  /// environment-path gain for that symbol.
  rf::Complex NextSymbolTap(Rng& rng);

  /// Amplitude factor on the MTS->Rx leg for the current symbol. 1.0
  /// except in region R4, where the walking body intermittently shadows
  /// the beam: a two-state Markov process of deep-fade bursts (advanced
  /// by NextSymbolTap).
  double MtsPathGain() const { return mts_path_gain_; }

  InterfererRegion region() const { return region_; }

 private:
  InterfererRegion region_;
  rf::Complex tap_{0.0, 0.0};
  double amplitude_ = 0.0;
  double drift_ = 0.0;
  double mts_path_gain_ = 1.0;
  bool blocked_ = false;
};

}  // namespace metaai::sim
