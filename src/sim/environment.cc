#include "sim/environment.h"

#include <cmath>

#include "common/check.h"

namespace metaai::sim {
namespace {
// Amplitude through a human body crossing the beam (~ -7.5 dB).
constexpr double kBlockedGain = 0.42;
}  // namespace

std::string InterfererRegionName(InterfererRegion region) {
  switch (region) {
    case InterfererRegion::kNone:
      return "none";
    case InterfererRegion::kR1:
      return "R1";
    case InterfererRegion::kR2:
      return "R2";
    case InterfererRegion::kR3:
      return "R3";
    case InterfererRegion::kR4:
      return "R4";
  }
  throw CheckError("unknown interferer region");
}

namespace {

// Relative strength of the interferer's scattered path by region: closer
// to the link geometry -> stronger extra path.
double RegionPathFactor(InterfererRegion region) {
  switch (region) {
    case InterfererRegion::kNone:
      return 0.0;
    case InterfererRegion::kR1:
      return 0.25;
    case InterfererRegion::kR2:
      return 0.45;
    case InterfererRegion::kR3:
      return 0.35;
    case InterfererRegion::kR4:
      return 0.55;
  }
  throw CheckError("unknown interferer region");
}

}  // namespace

DynamicInterferer::DynamicInterferer(InterfererRegion region,
                                     double reference_amplitude, double drift,
                                     Rng& rng)
    : region_(region), drift_(drift) {
  Check(reference_amplitude >= 0.0, "negative reference amplitude");
  Check(drift >= 0.0, "negative drift");
  amplitude_ = RegionPathFactor(region) * reference_amplitude;
  if (region != InterfererRegion::kNone) {
    tap_ = rng.UnitPhasor() * amplitude_;
  }
  if (region == InterfererRegion::kR4) {
    // A body on the MTS-Rx path: start in a random blockage state; the
    // Markov dynamics live in NextSymbolTap (~20% blocked time).
    blocked_ = rng.Bernoulli(0.2);
    mts_path_gain_ = blocked_ ? kBlockedGain : 1.0;
  }
}

rf::Complex DynamicInterferer::NextSymbolTap(Rng& rng) {
  if (region_ == InterfererRegion::kNone) return {0.0, 0.0};
  if (region_ == InterfererRegion::kR4) {
    // Two-state Markov shadowing: bursts of deep fade while the body
    // crosses the beam. Transition probabilities give ~30% blocked time
    // in bursts of ~100 symbols (walking pace vs 1 Msym/s).
    if (blocked_) {
      if (rng.Bernoulli(0.01)) blocked_ = false;
    } else {
      if (rng.Bernoulli(0.0025)) blocked_ = true;
    }
    mts_path_gain_ = blocked_ ? kBlockedGain : 1.0;
  }
  // Random-walk phase/amplitude drift (walking speed << symbol rate).
  tap_ += rng.ComplexNormal(drift_ * drift_ * amplitude_ * amplitude_);
  // Keep the magnitude tethered to the region's nominal strength.
  const double mag = std::abs(tap_);
  if (mag > 2.0 * amplitude_ && mag > 0.0) {
    tap_ *= 2.0 * amplitude_ / mag;
  }
  return tap_;
}

}  // namespace metaai::sim
