// Clock-synchronization error models (§3.5.1).
//
// The transmitter and the metasurface controller have independent clocks.
// Three operating modes are evaluated in Fig 16:
//  * kNone   — no synchronization at all: the MTS starts its schedule at
//              an arbitrary point, errors of many symbol periods;
//  * kCoarse — energy-detector triggering (CD): residual latency follows
//              the Gamma distribution measured in Fig 12;
//  * kCdfa   — coarse detection + fine-grained adjustment: the residual
//              error is still the coarse Gamma draw, but the deployed
//              network was trained with the §3.5.1 error injector and is
//              robust to it.
#pragma once

#include <memory>
#include <string>

#include "common/rng.h"
#include "fault/injector.h"
#include "mts/energy_detector.h"

namespace metaai::sim {

enum class SyncMode { kNone, kCoarse, kCdfa };

std::string SyncModeName(SyncMode mode);

struct SyncModelConfig {
  mts::EnergyDetectorConfig detector;
  /// Range of the unsynchronized start error, in microseconds (kNone).
  double unsynced_max_error_us = 64.0;
  /// Multiplier on the coarse-detection latency draws. The paper's
  /// detector calibration (Fig 12) is in absolute microseconds against
  /// 784-symbol MNIST streams; deployments on this repo's 256-symbol
  /// streams use 256/784 to keep the error-to-stream-length ratio at the
  /// paper's operating point (see EXPERIMENTS.md). Sync-focused
  /// experiments (Figs 12/13/16) use 1.0.
  double latency_scale = 1.0;
  /// Optional transient sync-burst fault model: with the plan's
  /// per-frame probability, a sampled offset gains an extra uniform
  /// error (detector glitch). Null or a plan without a burst model
  /// leaves the sampled streams bit-identical to the fault-free path.
  std::shared_ptr<const fault::FaultInjector> faults;
};

/// latency_scale preserving the paper's relative sync-error operating
/// point for a stream of `stream_symbols` symbols.
double PaperEquivalentLatencyScale(std::size_t stream_symbols);

/// Draws per-transmission MTS clock offsets for a sync mode.
class SyncModel {
 public:
  explicit SyncModel(SyncMode mode, SyncModelConfig config = {});

  SyncMode mode() const { return mode_; }

  /// One clock offset in microseconds (positive: MTS late).
  double SampleOffsetUs(Rng& rng) const;

 private:
  SyncMode mode_;
  SyncModelConfig config_;
  mts::EnergyDetector detector_;
};

}  // namespace metaai::sim
