#include "sim/link.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/obs.h"
#include "rf/geometry.h"
#include "simd/kernels.h"

namespace metaai::sim {
namespace {

double DbmToLinearWatts(double dbm) { return std::pow(10.0, (dbm - 30.0) / 10.0); }

// Off-boresight angles of the direct Tx->Rx ray at each end, given both
// antennas point at the panel (the origin).
struct DirectPathAngles {
  double at_tx;
  double at_rx;
};

DirectPathAngles DirectAngles(const mts::LinkGeometry& geometry) {
  const rf::Vec3 tx = rf::Polar(geometry.tx_distance_m, geometry.tx_angle_rad);
  const rf::Vec3 rx = rf::Polar(geometry.rx_distance_m, geometry.rx_angle_rad);
  const rf::Vec3 tx_boresight = tx * -1.0;  // toward the MTS
  const rf::Vec3 rx_boresight = rx * -1.0;
  const rf::Vec3 tx_to_rx = rx - tx;
  const rf::Vec3 rx_to_tx = tx - rx;
  return {rf::AngleBetween(tx_boresight, tx_to_rx),
          rf::AngleBetween(rx_boresight, rx_to_tx)};
}

}  // namespace

double TxRxDistance(const mts::LinkGeometry& geometry) {
  const rf::Vec3 tx = rf::Polar(geometry.tx_distance_m, geometry.tx_angle_rad);
  const rf::Vec3 rx = rf::Polar(geometry.rx_distance_m, geometry.rx_angle_rad);
  return rf::Distance(tx, rx);
}

OtaLink::OtaLink(const mts::Metasurface& surface, OtaLinkConfig config)
    : surface_(surface), config_(std::move(config)) {
  Check(!config_.observations.empty(), "link needs at least one observation");
  Check(config_.oversample >= 2 && config_.oversample % 2 == 0,
        "oversample must be even and >= 2");
  Check(config_.symbol_rate_hz > 0.0, "symbol rate must be positive");

  tx_amplitude_ = std::sqrt(DbmToLinearWatts(config_.budget.tx_power_dbm));
  noise_power_ = DbmToLinearWatts(config_.budget.noise_floor_dbm);

  const rf::Antenna tx_ant(config_.tx_antenna);
  const rf::Antenna rx_ant(config_.rx_antenna);
  const double wall_amp =
      std::pow(10.0, -config_.environment.wall_attenuation_db / 20.0);

  Rng channel_rng(config_.channel_seed);

  auto make_environment = [&](const mts::LinkGeometry& geometry, Rng& rng) {
    const double lambda = rf::Wavelength(geometry.frequency_hz);
    const double d = TxRxDistance(geometry);
    const auto angles = DirectAngles(geometry);
    const double endpoint_gain = std::sqrt(tx_ant.Gain(angles.at_tx) *
                                           rx_ant.Gain(angles.at_rx));
    const double friis = rf::FriisAmplitude(d, lambda);
    const double direct = config_.environment.direct_tx_rx
                              ? friis * endpoint_gain * wall_amp
                              : 0.0;
    const double diffuse =
        tx_ant.DiffuseGain() * rx_ant.DiffuseGain() * wall_amp * wall_amp;
    // NLoS links keep scattered energy referenced to the (absent) direct
    // path so the K-factor still sets its level.
    return rf::MultipathChannel(config_.environment.profile, direct, diffuse,
                                rng,
                                /*nlos_reference_amplitude=*/friis * 0.5);
  };

  // Static per-atom device phase errors (hardware noise N_d): drawn once
  // per link; identical for every observation since they are properties
  // of the physical atoms.
  std::vector<Complex> device_error(surface_.num_atoms(), Complex{1.0, 0.0});
  if (config_.mts_phase_noise_std > 0.0) {
    Rng device_rng(config_.channel_seed ^ 0x5EED5EEDull);
    for (Complex& e : device_error) {
      const double eps = device_rng.Normal(0.0, config_.mts_phase_noise_std);
      e = Complex{std::cos(eps), std::sin(eps)};
    }
  }

  // Base environment realization, shared by all same-geometry
  // observations (subcarriers see the same taps at different offsets).
  // Realized from channel_rng *before* the observation loop: building it
  // lazily at the first no-override observation made the shared taps —
  // and every override's forked stream — depend on where that
  // observation sat in the list, so permuting observations changed the
  // channel realization.
  const rf::MultipathChannel base_env =
      make_environment(config_.geometry, channel_rng);
  for (const Observation& obs : config_.observations) {
    ObservationState state{
        .steering = {},
        .mts_amplitude = 0.0,
        .environment =
            [&] {
              if (obs.geometry.has_value()) {
                Rng fork = channel_rng.Fork();
                return make_environment(*obs.geometry, fork);
              }
              return base_env;
            }(),
        .env_gain = 1.0};
    const mts::LinkGeometry& geometry =
        obs.geometry.has_value() ? *obs.geometry : config_.geometry;
    state.steering = surface_.SteeringVector(geometry, obs.freq_offset_hz);
    if (obs.harmonic != 0) {
      // Intra-symbol time-coding harmonic: distinct per-atom phase ramp
      // (see Observation::harmonic).
      constexpr double kGoldenAngle = 2.39996322972865332;
      for (std::size_t m = 0; m < state.steering.size(); ++m) {
        const double phase = kGoldenAngle * static_cast<double>(m + 1) *
                             static_cast<double>(obs.harmonic);
        state.steering[m] *= Complex{std::cos(phase), std::sin(phase)};
      }
    }
    state.tx_steering = state.steering;
    for (std::size_t m = 0; m < state.tx_steering.size(); ++m) {
      state.tx_steering[m] *= device_error[m];
    }
    // Aging drift (fault model): a slow per-atom phase offset on the
    // physical reflection, on top of the static device errors. Like
    // those, it distorts transmission but is invisible to the idealized
    // steering the mapper solves against — until a diagnosis measures it.
    if (config_.faults != nullptr && config_.faults->HasDrift()) {
      Check(config_.faults->num_atoms() == state.tx_steering.size(),
            "fault injector atom count must match the surface");
      const auto& drift = config_.faults->drift_phasors();
      for (std::size_t m = 0; m < state.tx_steering.size(); ++m) {
        state.tx_steering[m] *= drift[m];
      }
    }
    // Antennas point at the panel: boresight gains on both MTS legs.
    state.mts_amplitude = surface_.PathAmplitude(geometry) *
                          std::sqrt(tx_ant.Gain(0.0) * rx_ant.Gain(0.0)) *
                          wall_amp;
    state.tx_steer_re.resize(state.tx_steering.size());
    state.tx_steer_im.resize(state.tx_steering.size());
    for (std::size_t m = 0; m < state.tx_steering.size(); ++m) {
      state.tx_steer_re[m] = state.tx_steering[m].real();
      state.tx_steer_im[m] = state.tx_steering[m].imag();
    }
    observations_.push_back(std::move(state));
  }
}

OtaLink::OtaLink(const mts::LayerGraph& graph, OtaLinkConfig config)
    : OtaLink(graph.front(), std::move(config)) {
  graph_ = &graph;
  BuildUpperStates();
}

void OtaLink::BuildUpperStates() {
  const std::size_t depth = graph_->depth();
  if (depth <= 1) return;
  upper_.resize(depth - 1);
  for (std::size_t l = 1; l < depth; ++l) {
    const mts::Metasurface& layer = graph_->layer(l);
    std::vector<UpperLayerState>& states = upper_[l - 1];
    states.reserve(config_.observations.size());
    for (const Observation& obs : config_.observations) {
      const mts::LinkGeometry& geometry =
          obs.geometry.has_value() ? *obs.geometry : config_.geometry;
      UpperLayerState state;
      // Upper layers hold one configuration per symbol: no intra-symbol
      // time coding (the harmonic ramp is the front panel's job) and no
      // device-noise/fault model (both are modeled on layer 0 only).
      state.steering = layer.SteeringVector(geometry, obs.freq_offset_hz);
      double magnitude_sum = 0.0;
      for (const Complex& s : state.steering) magnitude_sum += std::abs(s);
      Check(magnitude_sum > 0.0,
            "upper layer steering must be non-degenerate");
      // Normalizing coupling: a fully focused layer at coupling_gain 1
      // contributes ~unit magnitude (see mts/layer_graph.h).
      state.coupling = graph_->coupling_gain(l) / (0.9 * magnitude_sum);
      state.steer_re.resize(state.steering.size());
      state.steer_im.resize(state.steering.size());
      for (std::size_t m = 0; m < state.steering.size(); ++m) {
        state.steer_re[m] = state.steering[m].real();
        state.steer_im[m] = state.steering[m].imag();
      }
      states.push_back(std::move(state));
    }
  }
}

std::size_t OtaLink::num_layers() const {
  return graph_ != nullptr ? graph_->depth() : 1;
}

std::vector<Complex> OtaLink::UpperSteeringVector(std::size_t layer,
                                                  std::size_t o) const {
  Check(layer >= 1 && layer < num_layers(), "upper layer index out of range");
  CheckIndex(o, observations_.size(), "observation");
  return upper_[layer - 1][o].steering;
}

double OtaLink::UpperCoupling(std::size_t layer, std::size_t o) const {
  Check(layer >= 1 && layer < num_layers(), "upper layer index out of range");
  CheckIndex(o, observations_.size(), "observation");
  return upper_[layer - 1][o].coupling;
}

Complex OtaLink::UpperLayerFactor(
    std::size_t o, std::span<const std::vector<mts::PhaseCode>> codes) const {
  CheckIndex(o, observations_.size(), "observation");
  Check(codes.size() == num_layers() - 1,
        "upper code count must match num_layers() - 1");
  Complex factor{1.0, 0.0};
  for (std::size_t u = 0; u < codes.size(); ++u) {
    const UpperLayerState& state = upper_[u][o];
    Check(codes[u].size() == state.steering.size(),
          "upper code size must match the layer's atom count");
    factor *= state.coupling *
              simd::PhasedSum(state.steer_re.data(), state.steer_im.data(),
                              codes[u].data(), codes[u].size());
  }
  return factor;
}

ComplexMatrix OtaLink::UpperFactors(const LayerSchedules& upper,
                                    std::size_t num_symbols) const {
  const std::size_t num_obs = observations_.size();
  ComplexMatrix factors(num_obs, num_symbols, Complex{1.0, 0.0});
  for (std::size_t u = 0; u < upper.size(); ++u) {
    for (std::size_t o = 0; o < num_obs; ++o) {
      const UpperLayerState& state = upper_[u][o];
      const std::size_t atoms = state.steering.size();
      for (std::size_t i = 0; i < num_symbols; ++i) {
        factors(o, i) *= state.coupling *
                         simd::PhasedSum(state.steer_re.data(),
                                         state.steer_im.data(),
                                         upper[u][i].data(), atoms);
      }
    }
  }
  return factors;
}

std::vector<Complex> OtaLink::SteeringVector(std::size_t o) const {
  CheckIndex(o, observations_.size(), "observation");
  return observations_[o].steering;
}

double OtaLink::MtsPathAmplitude(std::size_t o) const {
  CheckIndex(o, observations_.size(), "observation");
  return observations_[o].mts_amplitude;
}

Complex OtaLink::EnvironmentResponse(std::size_t o) const {
  CheckIndex(o, observations_.size(), "observation");
  return tx_amplitude_ * observations_[o].environment.Response(
                             config_.observations[o].freq_offset_hz);
}

double OtaLink::SymbolNoiseVariance() const { return noise_power_; }

double OtaLink::NominalSnrDb() const {
  // Mid-scale weight: 45% of the coherent sum of steering magnitudes.
  double steering_sum = 0.0;
  for (const Complex& s : observations_[0].steering) {
    steering_sum += std::abs(s);
  }
  const double signal_amp = tx_amplitude_ * observations_[0].mts_amplitude *
                            0.45 * steering_sum;
  return 10.0 * std::log10(signal_amp * signal_amp / noise_power_);
}

ComplexMatrix OtaLink::TransmitSequence(std::span<const Complex> data,
                                        const MtsSchedule& schedule,
                                        double mts_clock_offset_us,
                                        Rng& rng) const {
  Check(num_layers() == 1,
        "multi-layer link: use the upper-schedule TransmitSequence overload");
  return TransmitSequence(data, schedule, LayerSchedules{}, mts_clock_offset_us,
                          rng);
}

ComplexMatrix OtaLink::TransmitSequence(std::span<const Complex> data,
                                        const MtsSchedule& schedule,
                                        const LayerSchedules& upper,
                                        double mts_clock_offset_us,
                                        Rng& rng) const {
  const std::size_t num_symbols = data.size();
  Check(num_symbols > 0, "empty transmission");
  Check(schedule.size() == num_symbols, "schedule length mismatch");
  const std::size_t num_obs = observations_.size();
  const std::size_t atoms = surface_.num_atoms();
  for (const auto& codes : schedule) {
    if (codes.size() != atoms) {
      Check(false, "schedule config size mismatch: " +
                       std::to_string(codes.size()) + " codes vs " +
                       std::to_string(atoms) + " atoms");
    }
  }
  Check(upper.size() == num_layers() - 1,
        "upper schedule count must match num_layers() - 1");
  for (std::size_t u = 0; u < upper.size(); ++u) {
    Check(upper[u].size() == num_symbols, "upper schedule length mismatch");
    const std::size_t layer_atoms = graph_->layer(u + 1).num_atoms();
    for (const auto& codes : upper[u]) {
      Check(codes.size() == layer_atoms,
            "upper schedule config size mismatch");
    }
  }

  // Bulk event counts for this transmission (per-sample counting would
  // dominate the loop below).
  obs::Count("link.transmissions");
  obs::Count("link.symbols", num_symbols);
  obs::Count("link.channel_applications", num_obs * num_symbols);
  obs::Count("link.awgn_draws",
             num_obs * num_symbols *
                 static_cast<std::size_t>(config_.oversample));

  // Per-symbol base responses B(o, i) = sum_m steering * phasor, using
  // the hardware's (device-error-perturbed) steering.
  //
  // With pattern-affecting faults active, each half-symbol slot is its
  // own shift-register load: the commanded codes (or their opposites for
  // the flipped slot) pass through chain corruption, then stuck PIN
  // drivers override whatever arrived. A stuck atom therefore does NOT
  // flip at mid-symbol — the flipped response is a separate sum, not
  // simply -B, which is exactly why the §3.2 cancellation scheme also
  // cancels the stuck atoms' (static) contribution.
  const fault::FaultInjector* faults = config_.faults.get();
  const bool pattern_faults = faults != nullptr && faults->AffectsPatterns();
  const bool use_flip_matrix = pattern_faults && config_.multipath_cancellation;
  ComplexMatrix base(num_obs, num_symbols);
  ComplexMatrix base_flip(use_flip_matrix ? num_obs : 0,
                          use_flip_matrix ? num_symbols : 0);
  if (!pattern_faults) {
    for (std::size_t o = 0; o < num_obs; ++o) {
      const ObservationState& state = observations_[o];
      for (std::size_t i = 0; i < num_symbols; ++i) {
        base(o, i) = simd::PhasedSum(state.tx_steer_re.data(),
                                     state.tx_steer_im.data(),
                                     schedule[i].data(), atoms);
      }
    }
  } else {
    Check(faults->num_atoms() == atoms,
          "fault injector atom count must match the surface");
    std::vector<mts::PhaseCode> loaded(atoms);
    std::size_t bit_flips = 0;
    std::size_t stuck_overrides = 0;
    const auto realize = [&](ComplexMatrix& out, std::size_t i) {
      bit_flips += faults->CorruptLoad(loaded, rng);
      stuck_overrides += faults->ApplyStuck(loaded);
      for (std::size_t o = 0; o < num_obs; ++o) {
        const ObservationState& state = observations_[o];
        out(o, i) = simd::PhasedSum(state.tx_steer_re.data(),
                                    state.tx_steer_im.data(), loaded.data(),
                                    atoms);
      }
    };
    for (std::size_t i = 0; i < num_symbols; ++i) {
      loaded = schedule[i];
      realize(base, i);
      if (use_flip_matrix) {
        for (std::size_t m = 0; m < atoms; ++m) {
          loaded[m] = mts::OppositeCode(schedule[i][m]);
        }
        realize(base_flip, i);
      }
    }
    obs::Count("fault.chain_bitflips", bit_flips);
    obs::Count("fault.stuck_overrides", stuck_overrides);
    obs::Count("fault.injected", bit_flips + stuck_overrides);
  }

  // Cascade: fold the composed upper-layer factor into the front-panel
  // responses. Doing it here — before the amplitude scaling, the probes
  // and the equalizer — keeps the mid-symbol flip (-B * U == -(B * U)),
  // the EVM reference and the soft-margin denominator consistent for
  // free. Depth-1 links skip this entirely, bit for bit.
  if (!upper.empty()) {
    const ComplexMatrix factors = UpperFactors(upper, num_symbols);
    for (std::size_t o = 0; o < num_obs; ++o) {
      for (std::size_t i = 0; i < num_symbols; ++i) {
        base(o, i) *= factors(o, i);
        if (use_flip_matrix) base_flip(o, i) *= factors(o, i);
      }
    }
  }

  const std::size_t slots_per_symbol = config_.multipath_cancellation ? 2 : 1;
  const std::size_t num_slots = slots_per_symbol * num_symbols;

  // Dynamic interferer + per-symbol environment responses.
  const double lambda = rf::Wavelength(config_.geometry.frequency_hz);
  DynamicInterferer interferer(
      config_.environment.interferer,
      rf::FriisAmplitude(std::max(TxRxDistance(config_.geometry), 0.5),
                         lambda),
      config_.environment.interferer_drift, rng);
  ComplexMatrix env(num_obs, num_symbols);
  std::vector<double> mts_gain(num_symbols, 1.0);
  for (std::size_t i = 0; i < num_symbols; ++i) {
    const Complex tap = interferer.NextSymbolTap(rng);
    mts_gain[i] = interferer.MtsPathGain();
    for (std::size_t o = 0; o < num_obs; ++o) {
      env(o, i) = observations_[o].environment.Response(
                      config_.observations[o].freq_offset_hz) +
                  tap;
    }
  }

  const double symbol_period_s = 1.0 / config_.symbol_rate_hz;
  const double slot_duration_s =
      symbol_period_s / static_cast<double>(slots_per_symbol);
  const double offset_s = mts_clock_offset_us * 1e-6;
  const auto oversample = static_cast<std::size_t>(config_.oversample);
  // Per-sub-sample noise so that the S-sample average has the configured
  // symbol-level noise power.
  const double subsample_noise_var =
      noise_power_ * static_cast<double>(oversample);

  // ---------------------------------------------------------------
  // Receive combining. With multipath cancellation active the receiver
  // exploits the §3.2 observation that the MTS breaks the zero-mean
  // property: it samples several points per symbol, groups them by the
  // (estimated) MTS slot state and the data pulse sign, and averages the
  // matched pairs
  //     (unflipped, +pulse) & (flipped, -pulse)   ->  +w x   (env cancels)
  //     (flipped,  +pulse) & (unflipped, -pulse)  ->  -w x   (env cancels)
  // so a static environment path cancels exactly for ANY fractional clock
  // offset, and a residual integer-symbol shift remains for CDFA training
  // to absorb. Slot boundaries are assumed estimable at the receiver (the
  // MTS-modulated envelope exposes them); the simulator hands it the true
  // boundary phase. Without cancellation the receiver plainly averages.
  // ---------------------------------------------------------------
  struct GroupStats {
    Complex sum{0.0, 0.0};
    std::size_t count = 0;
  };

  ComplexMatrix z(num_obs, num_symbols);
  std::vector<std::size_t> slot_symbol_of(oversample);
  std::vector<char> flipped_of(oversample);
  std::vector<double> pulse_of(oversample);
  std::vector<Complex> received(num_obs * oversample);

  for (std::size_t i = 0; i < num_symbols; ++i) {
    for (std::size_t j = 0; j < oversample; ++j) {
      // Data-clock time of this sub-sample.
      const double t =
          (static_cast<double>(i) +
           (static_cast<double>(j) + 0.5) / static_cast<double>(oversample)) *
          symbol_period_s;
      // Zero-mean pulse when cancellation is active.
      const double pulse = (config_.multipath_cancellation &&
                            j >= oversample / 2)
                               ? -1.0
                               : 1.0;
      // The slot the MTS is playing at this instant (its clock lags by
      // the offset). Clamped at the schedule edges: the surface holds its
      // first/last configuration outside the window.
      const double mts_time = t - offset_s;
      auto slot = static_cast<std::ptrdiff_t>(
          std::floor(mts_time / slot_duration_s));
      slot = std::clamp(slot, std::ptrdiff_t{0},
                        static_cast<std::ptrdiff_t>(num_slots) - 1);
      const auto slot_symbol =
          static_cast<std::size_t>(slot) / slots_per_symbol;
      const bool flipped = config_.multipath_cancellation &&
                           (static_cast<std::size_t>(slot) %
                            slots_per_symbol) == 1;
      slot_symbol_of[j] = slot_symbol;
      flipped_of[j] = flipped ? 1 : 0;
      pulse_of[j] = pulse;

      for (std::size_t o = 0; o < num_obs; ++o) {
        Complex mts_response;
        if (flipped && use_flip_matrix) {
          mts_response = base_flip(o, slot_symbol);
        } else {
          mts_response = base(o, slot_symbol);
          if (flipped) mts_response = -mts_response;
        }
        mts_response *= observations_[o].mts_amplitude * mts_gain[i];
        const Complex channel = mts_response + env(o, i);
        received[o * oversample + j] =
            tx_amplitude_ * channel * data[i] * pulse +
            rng.ComplexNormal(subsample_noise_var);
      }
    }

    if (!config_.multipath_cancellation) {
      for (std::size_t o = 0; o < num_obs; ++o) {
        Complex acc{0.0, 0.0};
        for (std::size_t j = 0; j < oversample; ++j) {
          acc += received[o * oversample + j];
        }
        z(o, i) = acc / static_cast<double>(oversample);
      }
      continue;
    }

    for (std::size_t o = 0; o < num_obs; ++o) {
      // Group sub-samples by (slot symbol, flipped, pulse sign). At most
      // two distinct slot symbols appear inside one data-symbol window.
      struct Group {
        std::size_t symbol;
        int flipped;
        int pulse_positive;
        GroupStats stats;
      };
      std::vector<Group> groups;
      for (std::size_t j = 0; j < oversample; ++j) {
        const int f = flipped_of[j];
        const int p = pulse_of[j] > 0.0 ? 1 : 0;
        Group* group = nullptr;
        for (Group& g : groups) {
          if (g.symbol == slot_symbol_of[j] && g.flipped == f &&
              g.pulse_positive == p) {
            group = &g;
            break;
          }
        }
        if (group == nullptr) {
          groups.push_back({slot_symbol_of[j], f, p, {}});
          group = &groups.back();
        }
        group->stats.sum += received[o * oversample + j];
        ++group->stats.count;
      }
      auto mean = [](const GroupStats& g) {
        return g.sum / static_cast<double>(g.count);
      };
      // A pair (f1, +pulse) x (f2, -pulse) with f1 != f2 cancels the
      // environment: mean_A + mean_B = ((-1)^{f1} w_A + (-1)^{f1} w_B) x,
      // so +-(w_A + w_B)/2 * x survives. Same-symbol pairs recover w x
      // exactly; cross-symbol pairs give the benign two-weight average.
      Complex acc{0.0, 0.0};
      double weight = 0.0;
      auto combine_pairs = [&](bool same_symbol_only) {
        for (const Group& a : groups) {
          if (a.pulse_positive != 1) continue;
          for (const Group& b : groups) {
            if (b.pulse_positive != 0) continue;
            if (a.flipped == b.flipped) continue;
            if (same_symbol_only != (a.symbol == b.symbol)) continue;
            const double sign = a.flipped == 0 ? 1.0 : -1.0;
            const double w2 =
                static_cast<double>(a.stats.count + b.stats.count);
            acc += w2 * sign * 0.5 * (mean(a.stats) + mean(b.stats));
            weight += w2;
          }
        }
      };
      combine_pairs(/*same_symbol_only=*/true);
      if (weight == 0.0) combine_pairs(/*same_symbol_only=*/false);
      if (weight > 0.0) {
        z(o, i) = acc / weight;
      } else {
        // No environment-cancelling pair at all (degenerate): fall back
        // to pulse-matched averaging; the environment leaks.
        Complex fallback{0.0, 0.0};
        for (std::size_t j = 0; j < oversample; ++j) {
          fallback += received[o * oversample + j] * pulse_of[j];
        }
        z(o, i) = fallback / static_cast<double>(oversample);
      }
    }
  }

  if (obs::ProbesEnabled()) {
    // Flight-recorder evidence for this transmission, measured against
    // the ideal MTS-path product w*x (zero clock offset, no noise, no
    // environment leak): whatever the RF chain added shows up as error
    // vector. Per-observation figures separate subcarriers/antennas.
    std::vector<double> per_obs_evm(num_obs);
    std::vector<double> per_obs_snr_db(num_obs);
    double total_signal = 0.0;
    double total_error = 0.0;
    for (std::size_t o = 0; o < num_obs; ++o) {
      double signal = 0.0;
      double error = 0.0;
      const double amplitude = tx_amplitude_ * observations_[o].mts_amplitude;
      for (std::size_t i = 0; i < num_symbols; ++i) {
        const Complex ideal = amplitude * base(o, i) * data[i];
        signal += std::norm(ideal);
        error += std::norm(z(o, i) - ideal);
      }
      total_signal += signal;
      total_error += error;
      // Guard the degenerate all-zero cases so the JSONL stays finite.
      per_obs_evm[o] =
          signal > 0.0 ? std::sqrt(error / signal) : 0.0;
      per_obs_snr_db[o] =
          signal > 0.0 ? 10.0 * std::log10(signal / std::max(error, 1e-300))
                       : 0.0;
    }
    std::vector<std::pair<std::string, double>> evm_values = {
        {"evm_rms", total_signal > 0.0
                        ? std::sqrt(total_error / total_signal)
                        : 0.0},
        {"symbols", static_cast<double>(num_symbols)},
        {"clock_offset_us", mts_clock_offset_us}};
    if (config_.data_modulation.has_value()) {
      // Equalize back to data-symbol estimates zhat = z / (A * base) and
      // measure the demod soft-decision margin: a label-free accuracy
      // proxy the health layer consumes (obs/health.h).
      std::vector<Complex> equalized;
      equalized.reserve(num_obs * num_symbols);
      for (std::size_t o = 0; o < num_obs; ++o) {
        const double amplitude =
            tx_amplitude_ * observations_[o].mts_amplitude;
        for (std::size_t i = 0; i < num_symbols; ++i) {
          const Complex denom = amplitude * base(o, i);
          if (std::abs(denom) > 1e-12) equalized.push_back(z(o, i) / denom);
        }
      }
      evm_values.emplace_back(
          "soft_margin",
          rf::SoftDecisionMargin(equalized, *config_.data_modulation));
    }
    obs::Probe({.kind = obs::ProbeKind::kEvm,
                .site = "link.transmit",
                .values = std::move(evm_values),
                .series = per_obs_evm});
    obs::Probe({.kind = obs::ProbeKind::kSubcarrierSnr,
                .site = "link.transmit",
                .values = {{"num_obs", static_cast<double>(num_obs)},
                           {"nominal_snr_db", NominalSnrDb()}},
                .series = per_obs_snr_db});
    // A handful of received constellation points (observation 0),
    // interleaved as [re0, im0, re1, im1, ...].
    const std::size_t sampled = std::min<std::size_t>(16, num_symbols);
    std::vector<double> points;
    points.reserve(2 * sampled);
    for (std::size_t i = 0; i < sampled; ++i) {
      points.push_back(z(0, i).real());
      points.push_back(z(0, i).imag());
    }
    obs::Probe({.kind = obs::ProbeKind::kConstellation,
                .site = "link.transmit",
                .values = {{"count", static_cast<double>(sampled)}},
                .series = std::move(points)});
  }
  return z;
}

}  // namespace metaai::sim
