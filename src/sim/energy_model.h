// End-to-end energy & latency cost model (Appendix A.4, Tables 2-3).
//
// The paper compares "transmit raw data, then compute on a server"
// pipelines (CPU/GPU x ResNet-18/LNN) against MetaAI, where computation
// happens during transmission. This model is parameterized with constants
// fitted to the paper's measured MNIST and AFHQ rows:
//  * radio: 40 Mb/s at 5.46 W (both follow from the paper's transmission
//    time/energy pairs);
//  * server compute: per (device, model) affine time in the pixel count,
//    fitted through the two measured datasets, times a per-row power;
//  * MetaAI: symbols = pixels * classes / parallel_width at 1 Msym/s,
//    2 MTS patterns per symbol (mid-symbol flip) at 0.75 uJ per pattern,
//    plus a fixed ~0.6 W / 0.013 ms server-side accumulation step.
#pragma once

#include <string>
#include <vector>

namespace metaai::sim {

/// One row of Table 2/3.
struct EnergyLatencyRow {
  std::string system;  // "CPU", "4080 GPU", "Meta-AI"
  std::string model;   // "ResNet-18", "LNN"
  double transmission_ms = 0.0;
  double server_compute_ms = 0.0;
  double total_ms = 0.0;
  double transmission_mj = 0.0;
  double server_compute_mj = 0.0;
  double mts_mj = 0.0;  // 0 for digital baselines
  double total_mj = 0.0;
};

struct EnergyModelConfig {
  double radio_rate_bps = 40e6;
  double radio_power_w = 5.46;
  double metaai_symbol_rate_hz = 1e6;
  double mts_patterns_per_symbol = 2.0;  // mid-symbol flip
  double mts_energy_per_pattern_j = 0.75e-6;
  double metaai_server_ms = 0.013;
  double metaai_server_power_w = 0.6;
};

/// Per-request energy split used by the serving runtime's lifecycle
/// traces: radiated Tx power over the airtime, MTS pattern switching,
/// and the fixed server-side accumulation step.
struct InferenceEnergy {
  double tx_j = 0.0;
  double mts_j = 0.0;
  double server_j = 0.0;

  double total_j() const { return tx_j + mts_j + server_j; }
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyModelConfig config = {});

  const EnergyModelConfig& config() const { return config_; }

  /// Energy of one OTA inference that transmitted `symbols` symbols
  /// over `airtime_s` at `tx_power_dbm` radiated power (the serving
  /// runtime reads both from the scheduled slot and the tenant's link
  /// budget). Unlike MetaAiRow — which reconstructs the airtime from
  /// the model shape — this charges the airtime actually scheduled.
  InferenceEnergy OtaInferenceEnergy(double airtime_s, std::size_t symbols,
                                     double tx_power_dbm) const;

  /// Server-side accumulation/readout latency per inference, in
  /// seconds (the lifecycle "demod" stage).
  double DemodLatencyS() const { return config_.metaai_server_ms * 1e-3; }

  /// Digital baseline row: raw image (pixels bytes at 8bpp) shipped to
  /// the server, then inferred there. `device` is "CPU" or "4080 GPU",
  /// `model` is "ResNet-18" or "LNN".
  EnergyLatencyRow DigitalRow(const std::string& device,
                              const std::string& model,
                              std::size_t pixels) const;

  /// MetaAI row: computation happens during transmission; the sample is
  /// sent `classes / parallel_width` times (sequential rounds of the
  /// parallelism scheme).
  EnergyLatencyRow MetaAiRow(std::size_t pixels, std::size_t classes,
                             std::size_t parallel_width) const;

 private:
  EnergyModelConfig config_;
};

}  // namespace metaai::sim
