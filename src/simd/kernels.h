// metaai::simd — runtime-dispatched kernels for the four hot loops of
// the OTA pipeline (see ROADMAP "raw speed"):
//
//   * PhasedSum      — channel apply / solver objective re-evaluation:
//                      sum_m steering[m] * j^code[m] over a 2-bit phase
//                      configuration. The phasors are exactly
//                      {1, j, -1, -j}, so the product is pure sign/swap
//                      arithmetic; the kernel takes the steering split
//                      into structure-of-arrays re/im planes (see
//                      SoaComplex) so the AVX2 path runs on contiguous
//                      double lanes.
//   * ComplexDot     — complex matvec row kernel on common::Matrix
//                      storage (interleaved re/im), used by the NN
//                      pre-activation matvec.
//   * ButterflyPass  — one radix-2 FFT butterfly stage over contiguous
//                      even/odd halves with a contiguous twiddle table.
//   * HardDecideQam  — Gray-mapped square-QAM hard decisions for a batch
//                      of received symbols.
//
// Every kernel has a `...Scalar` variant (the exact sequential loop the
// call sites ran before this layer existed — the scalar dispatch path is
// bitwise identical to the pre-SIMD code) and a front door that
// dispatches on dispatch.h's ActiveLevel(). AVX2 variants live in
// kernels_avx2.cc, compiled with -mavx2 on x86-64 only and reached only
// behind the runtime CPU check.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "simd/dispatch.h"

namespace metaai::simd {

using Complex = std::complex<double>;

/// Structure-of-arrays mirror of a complex vector: separate re/im
/// planes, the layout PhasedSum consumes. Call sites that apply many
/// phase configurations against one steering vector split it once and
/// reuse the planes.
struct SoaComplex {
  std::vector<double> re;
  std::vector<double> im;

  void Assign(std::span<const Complex> values) {
    re.resize(values.size());
    im.resize(values.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
      re[i] = values[i].real();
      im[i] = values[i].imag();
    }
  }
  std::size_t size() const { return re.size(); }
};

/// sum_m (re[m] + j*im[m]) * j^codes[m], codes in 0..3 (mts::PhaseCode
/// semantics: phasors {1, j, -1, -j}). The scalar variant accumulates
/// sequentially, exactly like the original channel-apply loops.
Complex PhasedSum(const double* re, const double* im,
                  const std::uint8_t* codes, std::size_t n);
Complex PhasedSumScalar(const double* re, const double* im,
                        const std::uint8_t* codes, std::size_t n);

/// sum_m a[m] * b[m] over interleaved complex arrays (no conjugation —
/// this is the matvec row kernel, not an inner product).
Complex ComplexDot(const Complex* a, const Complex* b, std::size_t n);
Complex ComplexDotScalar(const Complex* a, const Complex* b, std::size_t n);

/// One radix-2 butterfly pass over `count` pairs:
///   t       = odd[k] * w[k]    (w conjugated when `inverse`)
///   e       = even[k]
///   even[k] = e + t,  odd[k] = e - t
/// with contiguous even/odd halves and a contiguous twiddle table of
/// `count` entries. Pure per-element arithmetic — no cross-lane
/// reduction — so scalar and AVX2 agree to the last ulp up to compiler
/// FMA contraction of the scalar complex multiply.
void ButterflyPass(Complex* even, Complex* odd, const Complex* twiddles,
                   std::size_t count, bool inverse);
void ButterflyPassScalar(Complex* even, Complex* odd, const Complex* twiddles,
                         std::size_t count, bool inverse);

/// Gray-mapped hard decisions for square QAM: for each symbol, both PAM
/// axes are scaled back to odd-integer amplitudes (`norm`), decided to
/// the nearest of `levels` per-axis levels with round-half-away-from-
/// zero (computed as trunc(x + copysign(0.5, x)) in BOTH paths so
/// scalar and AVX2 are bitwise identical), Gray-encoded and packed as
/// (I << half_bits) | Q. `values` must hold `n` entries.
void HardDecideQam(const Complex* symbols, std::size_t n, int levels,
                   double norm, int half_bits, std::uint32_t* values);
void HardDecideQamScalar(const Complex* symbols, std::size_t n, int levels,
                         double norm, int half_bits, std::uint32_t* values);

}  // namespace metaai::simd
