// metaai::simd — runtime dispatch for the hand-vectorized hot-loop
// kernels (simd/kernels.h).
//
// One process-wide dispatch level decides which implementation every
// kernel front door runs: the portable scalar path or the AVX2 path
// (compiled only on x86-64; the Level enum is NEON-ready — an aarch64
// backend slots in as a new level plus a kernel table, nothing else
// changes). Selection order:
//   1. ForceLevel()/ScopedLevel — programmatic override (CLI --simd,
//      tests, benches);
//   2. METAAI_SIMD environment variable: off|scalar|auto|avx2
//      (off and scalar are synonyms; invalid values fail loudly);
//   3. auto-detection via __builtin_cpu_supports.
//
// Determinism contract: for a FIXED level, every kernel is bitwise
// deterministic at any thread count. The scalar path reproduces the
// original sequential loops exactly; the AVX2 path may differ from
// scalar in the last ulp where a reduction is lane-parallelized (the
// parity suite in tests/simd/ pins the tolerance per kernel).
#pragma once

#include <optional>
#include <string_view>

#include "common/result.h"

namespace metaai::simd {

enum class Level {
  kScalar = 0,
  kAvx2 = 1,
};

/// Canonical lower-case name ("scalar", "avx2").
const char* LevelName(Level level);

/// True when the running CPU can execute the AVX2 kernel path.
bool Avx2Supported();

/// Parses a user-facing level string: "off"/"scalar" force the scalar
/// path, "auto" resolves to the best supported level, "avx2" requires
/// AVX2 hardware (typed error otherwise).
Result<Level> ParseLevel(std::string_view text);

/// The level every kernel front door dispatches on: the forced override
/// when set, else METAAI_SIMD (parsed once per process), else
/// auto-detection.
Level ActiveLevel();

/// Eagerly validates the METAAI_SIMD environment variable and returns
/// the parse error instead of aborting. ActiveLevel() only parses the
/// variable lazily on the first kernel call — deep inside a solve, where
/// the resulting Check-abort surfaces as a crash with no usable context.
/// Entry points (the CLI) call this at startup so a typo'd value becomes
/// a clean typed error before any work runs. Unset/empty is valid
/// (auto-detection).
Result<void> ValidateEnvironment();

/// Programmatic override of the dispatch level (nullopt restores the
/// environment/auto-detected default). Takes effect for subsequent
/// kernel calls in every thread.
void ForceLevel(std::optional<Level> level);

/// RAII override used by the parity tests and the scalar-vs-SIMD bench
/// arms: forces `level` for the scope, then restores the previous
/// override state.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level);
  ~ScopedLevel();
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  std::optional<Level> previous_;
};

}  // namespace metaai::simd
