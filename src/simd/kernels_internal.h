// Internal declarations shared between the kernel front doors
// (kernels.cc) and the AVX2 backend (kernels_avx2.cc). The AVX2 symbols
// exist only on x86-64 (the backend TU is added conditionally by CMake)
// and must only be called after dispatch.h reports Avx2Supported().
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/kernels.h"

#if defined(__x86_64__)
namespace metaai::simd::detail {

Complex PhasedSumAvx2(const double* re, const double* im,
                      const std::uint8_t* codes, std::size_t n);
Complex ComplexDotAvx2(const Complex* a, const Complex* b, std::size_t n);
void ButterflyPassAvx2(Complex* even, Complex* odd, const Complex* twiddles,
                       std::size_t count, bool inverse);
void HardDecideQamAvx2(const Complex* symbols, std::size_t n, int levels,
                       double norm, int half_bits, std::uint32_t* values);

}  // namespace metaai::simd::detail
#endif  // defined(__x86_64__)
