// AVX2 backend for the simd kernels. This TU is compiled with -mavx2 on
// x86-64 only (see src/simd/CMakeLists.txt) and is reached exclusively
// through the runtime CPU check in the kernels.cc front doors, so no
// AVX2 instruction executes on hardware without the feature. -mfma is
// deliberately NOT enabled: fused multiply-adds round once instead of
// twice, which would push the AVX2 path beyond the documented last-ulp
// envelope around the scalar path.
#if defined(__x86_64__)

#include <immintrin.h>

#include <cmath>
#include <cstring>

#include "simd/kernels_internal.h"

namespace metaai::simd::detail {
namespace {

// Same PAM decision formula as kernels.cc (trunc(x + copysign(0.5, x)),
// clamped) for the scalar tails of this TU.
inline unsigned PamLevelTail(double amplitude, int levels) {
  double idx = (amplitude + static_cast<double>(levels - 1)) / 2.0;
  idx = std::trunc(idx + std::copysign(0.5, idx));
  if (idx < 0.0) idx = 0.0;
  if (idx > levels - 1) idx = static_cast<double>(levels - 1);
  return static_cast<unsigned>(idx);
}

inline unsigned GrayEncode(unsigned value) { return value ^ (value >> 1); }

// Deterministic horizontal reduction: lanes summed left to right.
inline double ReduceLanes(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

}  // namespace

Complex PhasedSumAvx2(const double* re, const double* im,
                      const std::uint8_t* codes, std::size_t n) {
  const __m256d sign_bits = _mm256_set1_pd(-0.0);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i two = _mm256_set1_epi64x(2);
  const __m256i zero = _mm256_setzero_si256();
  __m256d acc_re = _mm256_setzero_pd();
  __m256d acc_im = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t m = 0; m < n4; m += 4) {
    std::uint32_t packed;
    std::memcpy(&packed, codes + m, sizeof(packed));
    const __m256i c = _mm256_cvtepu8_epi64(
        _mm_cvtsi32_si128(static_cast<int>(packed)));
    // code & 1 picks the component swap (j / -j), code & 2 the negation.
    const __m256d even_mask = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(c, one), zero));
    const __m256d neg_mask = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(c, two), two));
    const __m256d vre = _mm256_loadu_pd(re + m);
    const __m256d vim = _mm256_loadu_pd(im + m);
    const __m256d neg_im = _mm256_xor_pd(vim, sign_bits);
    // even codes contribute (re, im); odd codes (-im, re); the neg mask
    // then flips both components for codes 2 and 3.
    __m256d t_re = _mm256_blendv_pd(neg_im, vre, even_mask);
    __m256d t_im = _mm256_blendv_pd(vre, vim, even_mask);
    const __m256d flip = _mm256_and_pd(neg_mask, sign_bits);
    t_re = _mm256_xor_pd(t_re, flip);
    t_im = _mm256_xor_pd(t_im, flip);
    acc_re = _mm256_add_pd(acc_re, t_re);
    acc_im = _mm256_add_pd(acc_im, t_im);
  }
  double sum_re = ReduceLanes(acc_re);
  double sum_im = ReduceLanes(acc_im);
  for (std::size_t m = n4; m < n; ++m) {
    switch (codes[m]) {
      case 0:
        sum_re += re[m];
        sum_im += im[m];
        break;
      case 1:
        sum_re -= im[m];
        sum_im += re[m];
        break;
      case 2:
        sum_re -= re[m];
        sum_im -= im[m];
        break;
      default:
        sum_re += im[m];
        sum_im -= re[m];
        break;
    }
  }
  return {sum_re, sum_im};
}

Complex ComplexDotAvx2(const Complex* a, const Complex* b, std::size_t n) {
  const double* pa = reinterpret_cast<const double*>(a);
  const double* pb = reinterpret_cast<const double*>(b);
  // Two independent accumulator pairs hide the add latency; each ymm
  // holds two interleaved complex values.
  __m256d prod_a = _mm256_setzero_pd();   // a * b        (per lane)
  __m256d cross_a = _mm256_setzero_pd();  // a * swap(b)
  __m256d prod_b = _mm256_setzero_pd();
  __m256d cross_b = _mm256_setzero_pd();
  const std::size_t n4 = n & ~std::size_t{3};
  for (std::size_t i = 0; i < n4; i += 4) {
    const __m256d va0 = _mm256_loadu_pd(pa + 2 * i);
    const __m256d vb0 = _mm256_loadu_pd(pb + 2 * i);
    const __m256d va1 = _mm256_loadu_pd(pa + 2 * i + 4);
    const __m256d vb1 = _mm256_loadu_pd(pb + 2 * i + 4);
    prod_a = _mm256_add_pd(prod_a, _mm256_mul_pd(va0, vb0));
    cross_a = _mm256_add_pd(
        cross_a, _mm256_mul_pd(va0, _mm256_permute_pd(vb0, 0x5)));
    prod_b = _mm256_add_pd(prod_b, _mm256_mul_pd(va1, vb1));
    cross_b = _mm256_add_pd(
        cross_b, _mm256_mul_pd(va1, _mm256_permute_pd(vb1, 0x5)));
  }
  const __m256d prod = _mm256_add_pd(prod_a, prod_b);
  const __m256d cross = _mm256_add_pd(cross_a, cross_b);
  alignas(32) double p[4];
  alignas(32) double x[4];
  _mm256_store_pd(p, prod);
  _mm256_store_pd(x, cross);
  // Per complex lane: re = ar*br - ai*bi, im = ar*bi + ai*br.
  double sum_re = (p[0] - p[1]) + (p[2] - p[3]);
  double sum_im = (x[0] + x[1]) + (x[2] + x[3]);
  for (std::size_t i = n4; i < n; ++i) {
    const double ar = pa[2 * i];
    const double ai = pa[2 * i + 1];
    const double br = pb[2 * i];
    const double bi = pb[2 * i + 1];
    sum_re += ar * br - ai * bi;
    sum_im += ar * bi + ai * br;
  }
  return {sum_re, sum_im};
}

void ButterflyPassAvx2(Complex* even, Complex* odd, const Complex* twiddles,
                       std::size_t count, bool inverse) {
  double* pe = reinterpret_cast<double*>(even);
  double* po = reinterpret_cast<double*>(odd);
  const double* pw = reinterpret_cast<const double*>(twiddles);
  // Conjugating the twiddle = flipping the sign of its imaginary lanes.
  const __m256d conj_mask =
      inverse ? _mm256_set_pd(-0.0, 0.0, -0.0, 0.0) : _mm256_setzero_pd();
  const std::size_t c2 = count & ~std::size_t{1};
  for (std::size_t k = 0; k < c2; k += 2) {
    const __m256d w = _mm256_xor_pd(_mm256_loadu_pd(pw + 2 * k), conj_mask);
    const __m256d w_re = _mm256_movedup_pd(w);
    const __m256d w_im = _mm256_permute_pd(w, 0xF);
    const __m256d o = _mm256_loadu_pd(po + 2 * k);
    const __m256d o_swap = _mm256_permute_pd(o, 0x5);
    // (or*wr - oi*wi, oi*wr + or*wi): addsub subtracts in even lanes
    // and adds in odd lanes.
    const __m256d t = _mm256_addsub_pd(_mm256_mul_pd(o, w_re),
                                       _mm256_mul_pd(o_swap, w_im));
    const __m256d e = _mm256_loadu_pd(pe + 2 * k);
    _mm256_storeu_pd(pe + 2 * k, _mm256_add_pd(e, t));
    _mm256_storeu_pd(po + 2 * k, _mm256_sub_pd(e, t));
  }
  for (std::size_t k = c2; k < count; ++k) {
    const Complex w = inverse ? std::conj(twiddles[k]) : twiddles[k];
    const Complex e = even[k];
    const double t_re = odd[k].real() * w.real() - odd[k].imag() * w.imag();
    const double t_im = odd[k].imag() * w.real() + odd[k].real() * w.imag();
    const Complex t{t_re, t_im};
    even[k] = e + t;
    odd[k] = e - t;
  }
}

void HardDecideQamAvx2(const Complex* symbols, std::size_t n, int levels,
                       double norm, int half_bits, std::uint32_t* values) {
  const double* ps = reinterpret_cast<const double*>(symbols);
  const __m256d norm_v = _mm256_set1_pd(norm);
  const __m256d lm1_v = _mm256_set1_pd(static_cast<double>(levels - 1));
  const __m256d half_v = _mm256_set1_pd(0.5);
  const __m256d zero_v = _mm256_setzero_pd();
  const __m256d sign_bits = _mm256_set1_pd(-0.0);
  const auto decide4 = [&](__m256d v) {
    // idx = trunc(x + copysign(0.5, x)) with x = (amp + (L-1)) / 2,
    // clamped into [0, L-1] — the exact scalar-kernel formula.
    const __m256d x = _mm256_mul_pd(
        _mm256_add_pd(_mm256_mul_pd(v, norm_v), lm1_v), half_v);
    const __m256d away = _mm256_or_pd(_mm256_and_pd(x, sign_bits), half_v);
    __m256d idx = _mm256_round_pd(_mm256_add_pd(x, away),
                                  _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    idx = _mm256_min_pd(_mm256_max_pd(idx, zero_v), lm1_v);
    return _mm256_cvtpd_epi32(idx);  // exact: idx is integral
  };
  const std::size_t n2 = n & ~std::size_t{1};
  for (std::size_t i = 0; i < n2; i += 2) {
    // One ymm = two symbols = [I0 Q0 I1 Q1] axis amplitudes.
    const __m128i lv = decide4(_mm256_loadu_pd(ps + 2 * i));
    const __m128i gray = _mm_xor_si128(lv, _mm_srli_epi32(lv, 1));
    alignas(16) std::int32_t g[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(g), gray);
    values[i] = (static_cast<std::uint32_t>(g[0]) << half_bits) |
                static_cast<std::uint32_t>(g[1]);
    values[i + 1] = (static_cast<std::uint32_t>(g[2]) << half_bits) |
                    static_cast<std::uint32_t>(g[3]);
  }
  for (std::size_t i = n2; i < n; ++i) {
    const unsigned i_bits = GrayEncode(PamLevelTail(symbols[i].real() * norm,
                                                    levels));
    const unsigned q_bits = GrayEncode(PamLevelTail(symbols[i].imag() * norm,
                                                    levels));
    values[i] = (i_bits << half_bits) | q_bits;
  }
}

}  // namespace metaai::simd::detail

#endif  // defined(__x86_64__)
