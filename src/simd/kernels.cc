#include "simd/kernels.h"

#include <cmath>

#include "simd/kernels_internal.h"

namespace metaai::simd {
namespace {

// PAM decision shared by both HardDecideQam paths: nearest of `levels`
// odd-integer amplitudes, computed as trunc(x + copysign(0.5, x)) so
// the AVX2 lane code (_mm256_round_pd toward zero) is bitwise
// identical. Differs from std::round only at half-ulp boundary inputs
// that a noisy receive sample never hits exactly.
inline unsigned PamLevel(double amplitude, int levels) {
  double idx = (amplitude + static_cast<double>(levels - 1)) / 2.0;
  idx = std::trunc(idx + std::copysign(0.5, idx));
  if (idx < 0.0) idx = 0.0;
  if (idx > levels - 1) idx = static_cast<double>(levels - 1);
  return static_cast<unsigned>(idx);
}

inline unsigned GrayEncode(unsigned value) { return value ^ (value >> 1); }

}  // namespace

Complex PhasedSumScalar(const double* re, const double* im,
                        const std::uint8_t* codes, std::size_t n) {
  double acc_re = 0.0;
  double acc_im = 0.0;
  for (std::size_t m = 0; m < n; ++m) {
    // Multiplying by {1, j, -1, -j} is a sign/swap on the components.
    switch (codes[m]) {
      case 0:
        acc_re += re[m];
        acc_im += im[m];
        break;
      case 1:
        acc_re -= im[m];
        acc_im += re[m];
        break;
      case 2:
        acc_re -= re[m];
        acc_im -= im[m];
        break;
      default:
        acc_re += im[m];
        acc_im -= re[m];
        break;
    }
  }
  return {acc_re, acc_im};
}

Complex ComplexDotScalar(const Complex* a, const Complex* b, std::size_t n) {
  Complex acc{0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void ButterflyPassScalar(Complex* even, Complex* odd, const Complex* twiddles,
                         std::size_t count, bool inverse) {
  for (std::size_t k = 0; k < count; ++k) {
    const Complex w = inverse ? std::conj(twiddles[k]) : twiddles[k];
    const Complex e = even[k];
    const Complex t = odd[k] * w;
    even[k] = e + t;
    odd[k] = e - t;
  }
}

void HardDecideQamScalar(const Complex* symbols, std::size_t n, int levels,
                         double norm, int half_bits, std::uint32_t* values) {
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned i_bits = GrayEncode(PamLevel(symbols[i].real() * norm,
                                                levels));
    const unsigned q_bits = GrayEncode(PamLevel(symbols[i].imag() * norm,
                                                levels));
    values[i] = (i_bits << half_bits) | q_bits;
  }
}

Complex PhasedSum(const double* re, const double* im,
                  const std::uint8_t* codes, std::size_t n) {
#if defined(__x86_64__)
  if (ActiveLevel() == Level::kAvx2) {
    return detail::PhasedSumAvx2(re, im, codes, n);
  }
#endif
  return PhasedSumScalar(re, im, codes, n);
}

Complex ComplexDot(const Complex* a, const Complex* b, std::size_t n) {
#if defined(__x86_64__)
  if (ActiveLevel() == Level::kAvx2) {
    return detail::ComplexDotAvx2(a, b, n);
  }
#endif
  return ComplexDotScalar(a, b, n);
}

void ButterflyPass(Complex* even, Complex* odd, const Complex* twiddles,
                   std::size_t count, bool inverse) {
#if defined(__x86_64__)
  if (ActiveLevel() == Level::kAvx2) {
    detail::ButterflyPassAvx2(even, odd, twiddles, count, inverse);
    return;
  }
#endif
  ButterflyPassScalar(even, odd, twiddles, count, inverse);
}

void HardDecideQam(const Complex* symbols, std::size_t n, int levels,
                   double norm, int half_bits, std::uint32_t* values) {
#if defined(__x86_64__)
  if (ActiveLevel() == Level::kAvx2) {
    detail::HardDecideQamAvx2(symbols, n, levels, norm, half_bits, values);
    return;
  }
#endif
  HardDecideQamScalar(symbols, n, levels, norm, half_bits, values);
}

}  // namespace metaai::simd
