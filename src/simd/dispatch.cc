#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/check.h"

namespace metaai::simd {
namespace {

// -1 = no override; otherwise the forced Level value. A relaxed atomic
// is enough: the override is a configuration knob, not a synchronization
// point, and every kernel call re-reads it.
std::atomic<int> g_forced{-1};

Level DetectBest() {
  return Avx2Supported() ? Level::kAvx2 : Level::kScalar;
}

Level FromEnvironment() {
  const char* env = std::getenv("METAAI_SIMD");
  if (env == nullptr || *env == '\0') return DetectBest();
  Result<Level> parsed = ParseLevel(env);
  if (!parsed.ok()) {
    // Fail loudly: a typo'd METAAI_SIMD silently falling back to
    // auto-detect would invalidate determinism comparisons.
    Check(false, "METAAI_SIMD: " + parsed.error().message);
  }
  return parsed.value();
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool Avx2Supported() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Result<Level> ParseLevel(std::string_view text) {
  if (text == "off" || text == "scalar") return Level::kScalar;
  if (text == "auto") return DetectBest();
  if (text == "avx2") {
    if (!Avx2Supported()) {
      return Error{ErrorCode::kInvalidArgument,
                   "simd level 'avx2' requested but this CPU does not "
                   "support AVX2"};
    }
    return Level::kAvx2;
  }
  return Error{ErrorCode::kInvalidArgument,
               "unknown simd level '" + std::string(text) +
                   "' (expected off, scalar, auto or avx2)"};
}

Result<void> ValidateEnvironment() {
  const char* env = std::getenv("METAAI_SIMD");
  if (env == nullptr || *env == '\0') return Ok();
  if (Result<Level> parsed = ParseLevel(env); !parsed.ok()) {
    return Error{parsed.error().code,
                 "METAAI_SIMD: " + parsed.error().message};
  }
  return Ok();
}

Level ActiveLevel() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  static const Level env_level = FromEnvironment();
  return env_level;
}

void ForceLevel(std::optional<Level> level) {
  g_forced.store(level.has_value() ? static_cast<int>(*level) : -1,
                 std::memory_order_relaxed);
}

ScopedLevel::ScopedLevel(Level level) {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) previous_ = static_cast<Level>(forced);
  ForceLevel(level);
}

ScopedLevel::~ScopedLevel() { ForceLevel(previous_); }

}  // namespace metaai::simd
