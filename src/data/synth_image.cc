#include "data/synth_image.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace metaai::data {

Image SmoothRandomField(std::size_t height, std::size_t width, int num_blobs,
                        Rng& rng) {
  Check(height > 0 && width > 0, "field needs positive dimensions");
  Check(num_blobs >= 0, "negative blob count");
  Image img{height, width, std::vector<double>(height * width, 0.0)};

  const auto h = static_cast<double>(height);
  const auto w = static_cast<double>(width);

  // Gaussian blobs with random centers, widths and signed amplitudes.
  for (int b = 0; b < num_blobs; ++b) {
    const double cy = rng.Uniform(0.15 * h, 0.85 * h);
    const double cx = rng.Uniform(0.15 * w, 0.85 * w);
    const double sigma = rng.Uniform(0.08, 0.25) * std::min(h, w);
    const double amp = rng.Uniform(0.4, 1.0) * (rng.Bernoulli(0.5) ? 1 : -1);
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        const double dy = (static_cast<double>(y) - cy) / sigma;
        const double dx = (static_cast<double>(x) - cx) / sigma;
        img.at(y, x) += amp * std::exp(-0.5 * (dy * dy + dx * dx));
      }
    }
  }

  // Two low-frequency sinusoidal components for global structure.
  for (int k = 0; k < 2; ++k) {
    const double fy = rng.Uniform(0.5, 1.5) * 2.0 * M_PI / h;
    const double fx = rng.Uniform(0.5, 1.5) * 2.0 * M_PI / w;
    const double phase = rng.Uniform(0.0, 2.0 * M_PI);
    const double amp = rng.Uniform(0.2, 0.5);
    for (std::size_t y = 0; y < height; ++y) {
      for (std::size_t x = 0; x < width; ++x) {
        img.at(y, x) += amp * std::sin(fy * static_cast<double>(y) +
                                       fx * static_cast<double>(x) + phase);
      }
    }
  }

  // Normalize to [0, 1].
  const auto [min_it, max_it] =
      std::minmax_element(img.pixels.begin(), img.pixels.end());
  const double lo = *min_it;
  const double range = std::max(*max_it - lo, 1e-9);
  for (double& p : img.pixels) p = (p - lo) / range;
  return img;
}

double SampleBilinear(const Image& img, double y, double x) {
  if (y <= -1.0 || x <= -1.0 || y >= static_cast<double>(img.height) ||
      x >= static_cast<double>(img.width)) {
    return 0.0;
  }
  const double fy = std::floor(y);
  const double fx = std::floor(x);
  const double wy = y - fy;
  const double wx = x - fx;
  auto pixel = [&](double py, double px) -> double {
    if (py < 0.0 || px < 0.0 || py >= static_cast<double>(img.height) ||
        px >= static_cast<double>(img.width)) {
      return 0.0;
    }
    return img.at(static_cast<std::size_t>(py), static_cast<std::size_t>(px));
  };
  return (1.0 - wy) * (1.0 - wx) * pixel(fy, fx) +
         (1.0 - wy) * wx * pixel(fy, fx + 1.0) +
         wy * (1.0 - wx) * pixel(fy + 1.0, fx) +
         wy * wx * pixel(fy + 1.0, fx + 1.0);
}

Image AffineWarp(const Image& img, double angle_rad, double scale, double dy,
                 double dx) {
  Check(scale > 0.0, "scale must be positive");
  Image out{img.height, img.width,
            std::vector<double>(img.height * img.width, 0.0)};
  const double cy = (static_cast<double>(img.height) - 1.0) / 2.0;
  const double cx = (static_cast<double>(img.width) - 1.0) / 2.0;
  const double cos_a = std::cos(angle_rad);
  const double sin_a = std::sin(angle_rad);
  for (std::size_t y = 0; y < img.height; ++y) {
    for (std::size_t x = 0; x < img.width; ++x) {
      // Inverse map: output pixel -> source coordinates.
      const double oy = static_cast<double>(y) - cy - dy;
      const double ox = static_cast<double>(x) - cx - dx;
      const double sy = (cos_a * oy + sin_a * ox) / scale + cy;
      const double sx = (-sin_a * oy + cos_a * ox) / scale + cx;
      out.at(y, x) = SampleBilinear(img, sy, sx);
    }
  }
  return out;
}

void ClampToUnit(Image& img) {
  for (double& p : img.pixels) p = std::clamp(p, 0.0, 1.0);
}

Image RenderSample(const Image& prototype, const DistortionParams& params,
                   Rng& rng) {
  const double angle =
      rng.Uniform(-params.max_rotation_rad, params.max_rotation_rad);
  const double scale =
      1.0 + rng.Uniform(-params.scale_jitter, params.scale_jitter);
  const double dy = rng.Uniform(-params.max_shift_px, params.max_shift_px);
  const double dx = rng.Uniform(-params.max_shift_px, params.max_shift_px);
  Image sample = AffineWarp(prototype, angle, scale, dy, dx);

  // Per-sample smooth style field (illumination / texture variation).
  if (params.style_strength > 0.0) {
    const Image style =
        SmoothRandomField(sample.height, sample.width, 2, rng);
    for (std::size_t i = 0; i < sample.pixels.size(); ++i) {
      sample.pixels[i] += params.style_strength * (style.pixels[i] - 0.5);
    }
  }

  // Contrast jitter.
  const double gain =
      1.0 + rng.Uniform(-params.contrast_jitter, params.contrast_jitter);
  for (double& p : sample.pixels) p *= gain;

  // Occlusion.
  if (params.occlusion_prob > 0.0 && rng.Bernoulli(params.occlusion_prob)) {
    const std::size_t size =
        std::min(params.occlusion_size, std::min(sample.height, sample.width));
    const auto max_y = sample.height - size;
    const auto max_x = sample.width - size;
    const auto oy = static_cast<std::size_t>(rng.UniformInt(max_y + 1));
    const auto ox = static_cast<std::size_t>(rng.UniformInt(max_x + 1));
    for (std::size_t y = oy; y < oy + size; ++y) {
      for (std::size_t x = ox; x < ox + size; ++x) {
        sample.at(y, x) = 0.0;
      }
    }
  }

  // Pixel noise (optionally heterogeneous across pixels).
  if (!params.per_pixel_noise.empty()) {
    Check(params.per_pixel_noise.size() == sample.pixels.size(),
          "per-pixel noise map size mismatch");
    for (std::size_t i = 0; i < sample.pixels.size(); ++i) {
      sample.pixels[i] += rng.Normal(0.0, params.per_pixel_noise[i]);
    }
  } else if (params.pixel_noise > 0.0) {
    for (double& p : sample.pixels) p += rng.Normal(0.0, params.pixel_noise);
  }

  ClampToUnit(sample);
  return sample;
}

}  // namespace metaai::data
