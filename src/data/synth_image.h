// Procedural image synthesis for the six evaluation datasets.
//
// The paper's datasets (MNIST, Fashion-MNIST, Fruits-360, AFHQ, CelebA,
// Widar 3.0) are not redistributable here, so each is replaced by a
// class-conditional generator with a controllable difficulty: every class
// gets a random smooth prototype field, and every sample is an affine-
// jittered, style-perturbed, noisy rendering of its class prototype. The
// distortion magnitudes are calibrated per dataset so that the relative
// headroom between a linear model and a deep CNN matches the paper's
// Table 1 bands (see data/datasets.cc).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace metaai::data {

/// A grayscale image with values nominally in [0, 1], row-major.
struct Image {
  std::size_t height = 0;
  std::size_t width = 0;
  std::vector<double> pixels;

  double& at(std::size_t y, std::size_t x) { return pixels[y * width + x]; }
  double at(std::size_t y, std::size_t x) const {
    return pixels[y * width + x];
  }
};

/// Smooth random field: a sum of random Gaussian blobs plus low-frequency
/// sinusoids, normalized to [0, 1]. Used as a class prototype.
Image SmoothRandomField(std::size_t height, std::size_t width,
                        int num_blobs, Rng& rng);

/// Bilinear sample with zero padding outside the image.
double SampleBilinear(const Image& img, double y, double x);

/// Affine warp: rotate by `angle_rad` about the center, scale by `scale`,
/// then translate by (dy, dx) pixels. Zero fill outside.
Image AffineWarp(const Image& img, double angle_rad, double scale, double dy,
                 double dx);

/// Distortion magnitudes applied per sample; larger values make the task
/// harder (especially for linear models, which cannot undo geometry).
struct DistortionParams {
  double max_rotation_rad = 0.15;
  double max_shift_px = 1.5;
  double scale_jitter = 0.08;     // scale in [1 - j, 1 + j]
  double style_strength = 0.15;   // amplitude of a per-sample smooth field
  double pixel_noise = 0.08;      // additive Gaussian sigma
  /// Optional per-pixel noise sigma map (same length as the image). When
  /// non-empty it overrides pixel_noise per pixel. Heterogeneous noise is
  /// a key difficulty lever: a continuous model can down-weight the noisy
  /// pixels while a fixed-magnitude discrete model cannot.
  std::vector<double> per_pixel_noise;
  double occlusion_prob = 0.0;    // chance of a blanked rectangle
  std::size_t occlusion_size = 4; // rectangle side, pixels
  double contrast_jitter = 0.1;   // multiplicative gain in [1 - j, 1 + j]
};

/// Renders one sample from a class prototype: affine jitter + style field
/// + contrast + noise + optional occlusion, clamped back to [0, 1].
Image RenderSample(const Image& prototype, const DistortionParams& params,
                   Rng& rng);

/// Clamps all pixels into [0, 1].
void ClampToUnit(Image& img);

}  // namespace metaai::data
