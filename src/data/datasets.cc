#include "data/datasets.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "data/synth_image.h"

namespace metaai::data {
namespace {

constexpr std::size_t kImageSide = 16;

struct GeneratorConfig {
  std::string name;
  std::size_t num_classes;
  std::size_t train_per_class;
  std::size_t test_per_class;
  std::uint64_t seed;
  int prototype_blobs;
  /// Fraction of a shared base field blended into every class prototype;
  /// higher values make classes more confusable (0 = fully distinct).
  double class_similarity = 0.0;
  /// Radial Gaussian content window (sigma in pixels; 0 = none): class
  /// content concentrates in the image center while the borders carry only
  /// mid-gray + noise, mimicking MNIST-style empty margins. Uninformative
  /// but noisy pixels are what separate the continuous model (which can
  /// zero their weights) from DiscreteNN (whose weights have fixed
  /// magnitude).
  double content_window_sigma_px = 0.0;
  /// When > 0, a fixed spatial noise-sigma map is generated: per-pixel
  /// sigma = pixel_noise * exp(strength * (field - 0.5)), i.e. some pixels
  /// are much noisier than others. See DistortionParams::per_pixel_noise.
  double noise_heterogeneity = 0.0;
  DistortionParams distortion;
};

Image BlendPrototype(const Image& shared, const Image& unique,
                     double similarity) {
  Image out = unique;
  for (std::size_t i = 0; i < out.pixels.size(); ++i) {
    out.pixels[i] =
        similarity * shared.pixels[i] + (1.0 - similarity) * unique.pixels[i];
  }
  return out;
}

void ApplyContentWindow(Image& img, double sigma_px) {
  if (sigma_px <= 0.0) return;
  const double cy = (static_cast<double>(img.height) - 1.0) / 2.0;
  const double cx = (static_cast<double>(img.width) - 1.0) / 2.0;
  for (std::size_t y = 0; y < img.height; ++y) {
    for (std::size_t x = 0; x < img.width; ++x) {
      const double dy = (static_cast<double>(y) - cy) / sigma_px;
      const double dx = (static_cast<double>(x) - cx) / sigma_px;
      const double window = std::exp(-0.5 * (dy * dy + dx * dx));
      img.at(y, x) = window * img.at(y, x) + (1.0 - window) * 0.5;
    }
  }
}

Dataset GenerateFromPrototypes(const GeneratorConfig& config,
                               const DatasetOptions& options) {
  const std::size_t train_n = options.train_per_class > 0
                                  ? options.train_per_class
                                  : config.train_per_class;
  const std::size_t test_n = options.test_per_class > 0
                                 ? options.test_per_class
                                 : config.test_per_class;
  const std::uint64_t seed = options.seed != 0 ? options.seed : config.seed;
  Rng rng(seed);

  DistortionParams distortion = config.distortion;
  if (config.noise_heterogeneity > 0.0) {
    const Image noise_field =
        SmoothRandomField(kImageSide, kImageSide, 5, rng);
    distortion.per_pixel_noise.resize(noise_field.pixels.size());
    for (std::size_t i = 0; i < noise_field.pixels.size(); ++i) {
      distortion.per_pixel_noise[i] =
          config.distortion.pixel_noise *
          std::exp(config.noise_heterogeneity *
                   (noise_field.pixels[i] - 0.5));
    }
  }

  const Image shared_base =
      SmoothRandomField(kImageSide, kImageSide, config.prototype_blobs, rng);
  std::vector<Image> prototypes;
  prototypes.reserve(config.num_classes);
  for (std::size_t c = 0; c < config.num_classes; ++c) {
    const Image unique = SmoothRandomField(kImageSide, kImageSide,
                                           config.prototype_blobs, rng);
    Image prototype =
        BlendPrototype(shared_base, unique, config.class_similarity);
    ApplyContentWindow(prototype, config.content_window_sigma_px);
    prototypes.push_back(std::move(prototype));
  }

  Dataset ds;
  ds.name = config.name;
  ds.num_classes = config.num_classes;
  ds.height = kImageSide;
  ds.width = kImageSide;
  auto fill = [&](nn::RealDataset& out, std::size_t per_class) {
    out.num_classes = config.num_classes;
    out.dim = kImageSide * kImageSide;
    for (std::size_t c = 0; c < config.num_classes; ++c) {
      for (std::size_t s = 0; s < per_class; ++s) {
        Image sample = RenderSample(prototypes[c], distortion, rng);
        out.features.push_back(std::move(sample.pixels));
        out.labels.push_back(static_cast<int>(c));
      }
    }
  };
  fill(ds.train, train_n);
  fill(ds.test, test_n);
  ds.train.Validate();
  ds.test.Validate();
  return ds;
}

// ---------------------------------------------------------------------
// Widar-like gesture spectrograms: each class is a Doppler-frequency
// trajectory shape rendered as a bright ridge in a 16 x 16 time-frequency
// image, with per-sample speed/amplitude jitter and speckle noise.
// ---------------------------------------------------------------------

double ClassTrajectory(std::size_t cls, double t /* 0..1 */) {
  switch (cls % 6) {
    case 0:  // push-pull: one slow sinusoid
      return 0.5 + 0.35 * std::sin(2.0 * M_PI * t);
    case 1:  // sweep: linear chirp up
      return 0.15 + 0.7 * t;
    case 2:  // clap: fast double oscillation
      return 0.5 + 0.3 * std::sin(4.0 * M_PI * t);
    case 3:  // slide: chirp down
      return 0.85 - 0.7 * t;
    case 4:  // draw-circle: offset sinusoid
      return 0.5 - 0.35 * std::cos(2.0 * M_PI * t);
    default:  // draw-zigzag: triangle wave
      return 0.2 + 0.6 * std::abs(2.0 * (t * 2.0 - std::floor(t * 2.0 + 0.5)));
  }
}

Image RenderGesture(std::size_t cls, const DistortionParams& params,
                    Rng& rng) {
  Image img{kImageSide, kImageSide,
            std::vector<double>(kImageSide * kImageSide, 0.0)};
  const double speed = 1.0 + rng.Uniform(-0.2, 0.2);
  const double offset = rng.Uniform(-0.17, 0.17);
  const double ridge_width = rng.Uniform(1.0, 1.7);
  const double amplitude = 1.0 + rng.Uniform(-0.25, 0.25);
  for (std::size_t x = 0; x < kImageSide; ++x) {  // x = time
    const double t =
        std::fmin(1.0, speed * static_cast<double>(x) / (kImageSide - 1));
    const double freq = ClassTrajectory(cls, t) + offset;  // 0..1
    const double center = freq * (kImageSide - 1);
    for (std::size_t y = 0; y < kImageSide; ++y) {  // y = Doppler bin
      const double d = (static_cast<double>(y) - center) / ridge_width;
      img.at(y, x) += amplitude * std::exp(-0.5 * d * d);
    }
  }
  // Speckle + thermal noise typical of Wi-Fi Doppler spectrograms.
  for (double& p : img.pixels) {
    p *= 1.0 + rng.Normal(0.0, 0.40);
    p += rng.Normal(0.0, params.pixel_noise);
  }
  ClampToUnit(img);
  return img;
}

}  // namespace

Dataset MakeMnistLike(const DatasetOptions& options) {
  GeneratorConfig config{
      .name = "MNIST-like",
      .num_classes = 10,
      .train_per_class = 200,
      .test_per_class = 50,
      .seed = 0xA11CE001,
      .prototype_blobs = 4,
      .class_similarity = 0.22,
      .content_window_sigma_px = 4.5,
      .distortion = {.max_rotation_rad = 0.15,
                     .max_shift_px = 1.1,
                     .scale_jitter = 0.08,
                     .style_strength = 0.15,
                     .pixel_noise = 0.08,
                     .occlusion_prob = 0.0,
                     .contrast_jitter = 0.10}};
  return GenerateFromPrototypes(config, options);
}

Dataset MakeFashionLike(const DatasetOptions& options) {
  GeneratorConfig config{
      .name = "Fashion-like",
      .num_classes = 10,
      .train_per_class = 200,
      .test_per_class = 50,
      .seed = 0xA11CE002,
      .prototype_blobs = 5,
      .class_similarity = 0.19,
      .content_window_sigma_px = 5.0,
      .distortion = {.max_rotation_rad = 0.18,
                     .max_shift_px = 1.3,
                     .scale_jitter = 0.10,
                     .style_strength = 0.18,
                     .pixel_noise = 0.09,
                     .occlusion_prob = 0.10,
                     .occlusion_size = 5,
                     .contrast_jitter = 0.14}};
  return GenerateFromPrototypes(config, options);
}

Dataset MakeFruitsLike(const DatasetOptions& options) {
  GeneratorConfig config{
      .name = "Fruits-like",
      .num_classes = 8,
      .train_per_class = 200,
      .test_per_class = 50,
      .seed = 0xA11CE003,
      .prototype_blobs = 3,
      .class_similarity = 0.34,
      .content_window_sigma_px = 5.0,
      .distortion = {.max_rotation_rad = 0.22,
                     .max_shift_px = 1.3,
                     .scale_jitter = 0.10,
                     .style_strength = 0.16,
                     .pixel_noise = 0.08,
                     .occlusion_prob = 0.0,
                     .contrast_jitter = 0.20}};
  return GenerateFromPrototypes(config, options);
}

Dataset MakeAfhqLike(const DatasetOptions& options) {
  GeneratorConfig config{
      .name = "AFHQ-like",
      .num_classes = 3,
      .train_per_class = 300,
      .test_per_class = 100,
      .seed = 0xA11CE004,
      .prototype_blobs = 6,
      .class_similarity = 0.36,
      .content_window_sigma_px = 4.5,
      .distortion = {.max_rotation_rad = 0.20,
                     .max_shift_px = 1.5,
                     .scale_jitter = 0.12,
                     .style_strength = 0.24,
                     .pixel_noise = 0.09,
                     .occlusion_prob = 0.10,
                     .occlusion_size = 4,
                     .contrast_jitter = 0.16}};
  return GenerateFromPrototypes(config, options);
}

Dataset MakeCelebaLike(const DatasetOptions& options) {
  // The paper itself uses only 220 training / 80 test images for 10
  // identities; the tiny training set is part of why faces score lowest.
  GeneratorConfig config{
      .name = "CelebA-like",
      .num_classes = 10,
      .train_per_class = 22,
      .test_per_class = 8,
      .seed = 0xA11CE005,
      .prototype_blobs = 6,
      .class_similarity = 0.08,
      .content_window_sigma_px = 6.0,
      .noise_heterogeneity = 2.8,
      .distortion = {.max_rotation_rad = 0.10,
                     .max_shift_px = 0.9,
                     .scale_jitter = 0.07,
                     .style_strength = 0.12,
                     .pixel_noise = 0.09,
                     .occlusion_prob = 0.03,
                     .occlusion_size = 5,
                     .contrast_jitter = 0.14}};
  return GenerateFromPrototypes(config, options);
}

Dataset MakeWidarLike(const DatasetOptions& options) {
  const std::size_t train_n =
      options.train_per_class > 0 ? options.train_per_class : 100;
  const std::size_t test_n =
      options.test_per_class > 0 ? options.test_per_class : 50;
  Rng rng(options.seed != 0 ? options.seed : 0xA11CE006);
  DistortionParams params;
  params.pixel_noise = 0.50;

  Dataset ds;
  ds.name = "Widar-like";
  ds.num_classes = 6;
  ds.height = kImageSide;
  ds.width = kImageSide;
  auto fill = [&](nn::RealDataset& out, std::size_t per_class) {
    out.num_classes = 6;
    out.dim = kImageSide * kImageSide;
    for (std::size_t c = 0; c < 6; ++c) {
      for (std::size_t s = 0; s < per_class; ++s) {
        Image sample = RenderGesture(c, params, rng);
        out.features.push_back(std::move(sample.pixels));
        out.labels.push_back(static_cast<int>(c));
      }
    }
  };
  fill(ds.train, train_n);
  fill(ds.test, test_n);
  ds.train.Validate();
  ds.test.Validate();
  return ds;
}

Dataset MakeFaceStreamLike(const DatasetOptions& options) {
  constexpr std::size_t kClasses = 10;
  constexpr std::size_t kBackgrounds = 5;
  const std::size_t frames_per_background =
      options.train_per_class > 0 ? options.train_per_class / kBackgrounds
                                  : 12;
  const std::size_t supplements =
      options.train_per_class > 0 ? options.train_per_class / 2 : 30;
  const std::size_t captures_per_identity =
      options.test_per_class > 0 ? options.test_per_class : 20;
  Rng rng(options.seed != 0 ? options.seed : 0xA11CE007);

  // Identity prototypes, center-windowed like the CelebA-like faces.
  std::vector<Image> identities;
  for (std::size_t c = 0; c < kClasses; ++c) {
    Image face = SmoothRandomField(kImageSide, kImageSide, 6, rng);
    ApplyContentWindow(face, 5.0);
    identities.push_back(std::move(face));
  }
  std::vector<Image> backgrounds;
  for (std::size_t b = 0; b < kBackgrounds; ++b) {
    backgrounds.push_back(SmoothRandomField(kImageSide, kImageSide, 3, rng));
  }

  const DistortionParams camera_params{.max_rotation_rad = 0.10,
                                       .max_shift_px = 1.0,
                                       .scale_jitter = 0.08,
                                       .style_strength = 0.12,
                                       .pixel_noise = 0.08,
                                       .occlusion_prob = 0.05,
                                       .occlusion_size = 4,
                                       .contrast_jitter = 0.15};
  DistortionParams live_params = camera_params;  // natural standing pose
  live_params.max_rotation_rad = 0.16;
  live_params.max_shift_px = 1.5;
  live_params.pixel_noise = 0.10;

  auto compose = [&](std::size_t identity, std::size_t background,
                     const DistortionParams& params) {
    Image sample = RenderSample(identities[identity], params, rng);
    for (std::size_t i = 0; i < sample.pixels.size(); ++i) {
      sample.pixels[i] = 0.72 * sample.pixels[i] +
                         0.28 * backgrounds[background].pixels[i];
    }
    ClampToUnit(sample);
    return sample;
  };

  Dataset ds;
  ds.name = "FaceStream";
  ds.num_classes = kClasses;
  ds.height = kImageSide;
  ds.width = kImageSide;
  ds.train.num_classes = kClasses;
  ds.train.dim = kImageSide * kImageSide;
  ds.test.num_classes = kClasses;
  ds.test.dim = kImageSide * kImageSide;

  const DistortionParams supplement_params{.max_rotation_rad = 0.14,
                                           .max_shift_px = 1.2,
                                           .scale_jitter = 0.10,
                                           .style_strength = 0.20,
                                           .pixel_noise = 0.09,
                                           .occlusion_prob = 0.08,
                                           .occlusion_size = 5,
                                           .contrast_jitter = 0.20};
  for (std::size_t c = 0; c < kClasses; ++c) {
    // IoT camera frames across the five monitored backgrounds.
    for (std::size_t b = 0; b < kBackgrounds; ++b) {
      for (std::size_t f = 0; f < frames_per_background; ++f) {
        Image frame = compose(c, b, camera_params);
        ds.train.features.push_back(std::move(frame.pixels));
        ds.train.labels.push_back(static_cast<int>(c));
      }
    }
    // CelebA-style supplements (no background composition).
    for (std::size_t sup = 0; sup < supplements; ++sup) {
      Image frame = RenderSample(identities[c], supplement_params, rng);
      ds.train.features.push_back(std::move(frame.pixels));
      ds.train.labels.push_back(static_cast<int>(c));
    }
    // Live test captures in random monitored areas.
    for (std::size_t t = 0; t < captures_per_identity; ++t) {
      const auto b = static_cast<std::size_t>(
          rng.UniformInt(std::uint64_t{kBackgrounds}));
      Image frame = compose(c, b, live_params);
      ds.test.features.push_back(std::move(frame.pixels));
      ds.test.labels.push_back(static_cast<int>(c));
    }
  }
  ds.train.Validate();
  ds.test.Validate();
  return ds;
}

std::vector<std::string> AllDatasetNames() {
  return {"mnist", "fashion", "fruits", "afhq", "celeba", "widar"};
}

Dataset MakeByName(std::string_view name, const DatasetOptions& options) {
  if (name == "mnist") return MakeMnistLike(options);
  if (name == "fashion") return MakeFashionLike(options);
  if (name == "fruits") return MakeFruitsLike(options);
  if (name == "afhq") return MakeAfhqLike(options);
  if (name == "celeba") return MakeCelebaLike(options);
  if (name == "widar") return MakeWidarLike(options);
  throw CheckError("unknown dataset name: " + std::string(name));
}

}  // namespace metaai::data
