// Multi-sensor datasets for the late-fusion evaluation (§3.4, Fig 20).
//
// Three synthetic stand-ins matching the paper's selections:
//  * Multi-PIE-like: 10 face identities seen from 3 camera views;
//  * RF-Sauron-like: 10 RFID gestures captured by 3 receive antennas;
//  * USC-HAD-like:  6 activities sensed by accelerometer + gyroscope.
//
// Every event (sample) is observed by all sensors simultaneously: sensor s
// renders the event through its own fixed viewpoint transform plus
// sensor-independent noise, so each sensor alone is weak but their fused
// evidence is strong — the property Fig 20 measures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/types.h"

namespace metaai::data {

/// A dataset where each logical sample has one feature vector per sensor.
/// sensors[s].features[i] and sensors[t].features[i] describe the same
/// event; all per-sensor datasets share labels.
struct MultiSensorDataset {
  std::string name;
  std::size_t num_classes = 0;
  std::vector<std::string> sensor_names;
  std::vector<nn::RealDataset> train_sensors;
  std::vector<nn::RealDataset> test_sensors;

  std::size_t num_sensors() const { return train_sensors.size(); }
  void Validate() const;
};

struct MultiSensorOptions {
  std::size_t train_per_class = 0;  // 0 = dataset default
  std::size_t test_per_class = 0;
  std::uint64_t seed = 0;
};

/// 10 identities x 3 views (c07 / c09 / c29 in the paper).
MultiSensorDataset MakeMultiPieLike(const MultiSensorOptions& options = {});

/// 10 gestures x 3 receive antennas.
MultiSensorDataset MakeRfSauronLike(const MultiSensorOptions& options = {});

/// 6 activities x {accelerometer, gyroscope}.
MultiSensorDataset MakeUscHadLike(const MultiSensorOptions& options = {});

}  // namespace metaai::data
