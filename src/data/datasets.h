// Factories for the six evaluation datasets (Table 1).
//
// Each factory is a synthetic, deterministic stand-in for the paper's
// dataset (see DESIGN.md "Hardware substitutions"): same class count and
// task flavor, difficulty calibrated so a single-layer linear model and a
// deep CNN land in the paper's relative accuracy bands. All pixels are in
// [0, 1]; images are 16 x 16 (U = 256 symbols at one symbol per pixel).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "nn/types.h"

namespace metaai::data {

/// A complete train/test image classification dataset.
struct Dataset {
  std::string name;
  std::size_t num_classes = 0;
  std::size_t height = 0;
  std::size_t width = 0;
  nn::RealDataset train;
  nn::RealDataset test;
};

/// Per-dataset sample-count overrides (0 = use the dataset's default).
struct DatasetOptions {
  std::size_t train_per_class = 0;
  std::size_t test_per_class = 0;
  std::uint64_t seed = 0;  // 0 = dataset default seed
};

Dataset MakeMnistLike(const DatasetOptions& options = {});
Dataset MakeFashionLike(const DatasetOptions& options = {});
Dataset MakeFruitsLike(const DatasetOptions& options = {});
Dataset MakeAfhqLike(const DatasetOptions& options = {});
Dataset MakeCelebaLike(const DatasetOptions& options = {});
Dataset MakeWidarLike(const DatasetOptions& options = {});

/// §5.4 real-time face-recognition case study: ten identities captured by
/// IoT cameras against five backgrounds (12 clear frames per background =
/// 60 per identity), supplemented by 30 CelebA-like images per identity;
/// the test split holds 20 live captures per identity with natural pose
/// variation. Returns a Dataset whose train split holds the camera frames
/// plus supplements.
Dataset MakeFaceStreamLike(const DatasetOptions& options = {});

/// Names accepted by MakeByName, in Table 1 order.
std::vector<std::string> AllDatasetNames();

/// Factory by name ("mnist", "fashion", "fruits", "afhq", "celeba",
/// "widar"). Throws CheckError for unknown names.
Dataset MakeByName(std::string_view name, const DatasetOptions& options = {});

}  // namespace metaai::data
