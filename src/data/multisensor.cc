#include "data/multisensor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "data/synth_image.h"

namespace metaai::data {
namespace {

constexpr std::size_t kSide = 16;
constexpr std::size_t kDim = kSide * kSide;

void PushSample(nn::RealDataset& out, std::vector<double> features,
                int label) {
  out.features.push_back(std::move(features));
  out.labels.push_back(label);
}

// --------------------------- Multi-PIE-like ---------------------------

// Fixed per-view geometry: the three camera poses of the paper's c07/c09/
// c29 selection, modeled as different rotations + offsets of the shared
// face field.
struct ViewPose {
  double angle_rad;
  double dx;
  double scale;
};

constexpr ViewPose kViews[3] = {
    {-0.45, -2.0, 0.95},
    {0.0, 0.0, 1.0},
    {0.45, 2.0, 0.95},
};

// --------------------------- RF-Sauron-like ---------------------------

// Class-specific Doppler trajectory parameters, derived deterministically
// from the class index.
struct GestureShape {
  double amplitude;
  double frequency;
  double phase;
  double drift;
};

GestureShape ShapeForClass(std::size_t cls) {
  // Deterministically spaced trajectory parameters: uniform frequency
  // steps keep every class pair separated even under the small time
  // shifts the CDFA sync injector introduces.
  const double c = static_cast<double>(cls);
  return {.amplitude = 0.22 + 0.018 * static_cast<double>((cls * 7) % 10),
          .frequency = 0.6 + 0.17 * c,
          .phase = 2.39996 * c,
          .drift = 0.30 * std::sin(1.7 * c)};
}

// Per-antenna observation geometry: each antenna sees a scaled/offset
// version of the gesture's Doppler trace (different aspect angles).
struct AntennaView {
  double scale;
  double offset;
  double gain;
};

constexpr AntennaView kAntennas[3] = {
    {1.0, 0.0, 1.0},
    {0.88, 0.08, 0.95},
    {1.12, -0.08, 0.95},
};

// Per-event execution parameters, shared by every antenna observing the
// same gesture instance.
struct GestureEvent {
  double speed;
  double jitter_phase;
  double width;
};

GestureEvent DrawGestureEvent(Rng& rng) {
  return {.speed = 1.0 + rng.Uniform(-0.15, 0.15),
          .jitter_phase = rng.Uniform(-0.4, 0.4),
          .width = rng.Uniform(1.0, 1.6)};
}

Image RenderDopplerTrace(const GestureShape& shape, const GestureEvent& event,
                         const AntennaView& view, double noise, Rng& rng) {
  Image img{kSide, kSide, std::vector<double>(kDim, 0.0)};
  const double speed = event.speed;
  const double jitter_phase = event.jitter_phase;
  const double width = event.width;
  for (std::size_t x = 0; x < kSide; ++x) {
    const double t = speed * static_cast<double>(x) / (kSide - 1);
    double f = 0.5 + shape.amplitude *
                         std::sin(2.0 * M_PI * shape.frequency * t +
                                  shape.phase + jitter_phase) +
               shape.drift * (t - 0.5);
    f = view.scale * (f - 0.5) + 0.5 + view.offset;
    const double center = f * (kSide - 1);
    for (std::size_t y = 0; y < kSide; ++y) {
      const double d = (static_cast<double>(y) - center) / width;
      img.at(y, x) += view.gain * std::exp(-0.5 * d * d);
    }
  }
  for (double& p : img.pixels) {
    p *= 1.0 + rng.Normal(0.0, 0.85);
    p += rng.Normal(0.0, noise);
  }
  ClampToUnit(img);
  return img;
}

// ---------------------------- USC-HAD-like ----------------------------

// The six activities decompose into three pairs; the accelerometer
// mostly observes the *pair-level* component of the motion (gross body
// dynamics) while the gyroscope mostly observes the *within-pair*
// component (angular style). Each modality alone therefore confuses
// specific classes, and fusing them resolves the ambiguity — the
// complementarity behind USC-HAD's large fusion gain in Fig 20.
double PairWaveform(std::size_t pair, double t, double phase, double rate) {
  switch (pair % 3) {
    case 0:  // locomotion: strong gait oscillation
      return std::sin(2.0 * M_PI * 2.2 * rate * t + phase);
    case 1:  // stairs: oscillation with a linear baseline trend
      return 0.7 * std::sin(2.0 * M_PI * 1.5 * rate * t + phase) +
             1.1 * (t - 0.5);
    default:  // static postures: slow sway
      return 0.9 * std::sin(2.0 * M_PI * 0.6 * rate * t + phase);
  }
}

double MemberWaveform(std::size_t member, double t, double phase,
                      double rate) {
  // Within-pair style: the second member adds a faster angular rhythm.
  if (member == 0) {
    return std::sin(2.0 * M_PI * 0.9 * rate * t + phase);
  }
  return std::sin(2.0 * M_PI * 3.1 * rate * t + phase + 1.1);
}

// One physical motion instance, observed by both inertial modalities.
struct MotionEvent {
  double jitter_phase;
  double jitter_rate;
};

MotionEvent DrawMotionEvent(Rng& rng) {
  return {.jitter_phase = rng.Uniform(0.0, 2.0 * M_PI),
          .jitter_rate = 1.0 + rng.Uniform(-0.06, 0.06)};
}

std::vector<double> RenderInertial(std::size_t cls, const MotionEvent& event,
                                   bool gyroscope, double noise, Rng& rng) {
  const std::size_t pair = cls / 2;
  const std::size_t member = cls % 2;
  std::vector<double> series(kDim);
  const double dt = 1.0 / static_cast<double>(kDim);
  // Cross-modality leakage: each sensor carries a little of the other
  // component, so a single modality is weakly (not zero) informative
  // about the dimension the other one owns.
  constexpr double kLeak = 0.3;
  for (std::size_t i = 0; i < kDim; ++i) {
    const double t = static_cast<double>(i) * dt;
    const double a =
        PairWaveform(pair, t, event.jitter_phase, event.jitter_rate);
    const double b =
        MemberWaveform(member, t, event.jitter_phase * 0.7,
                       event.jitter_rate);
    const double v = gyroscope ? b + kLeak * a : a + kLeak * b;
    series[i] = 0.5 + 0.28 * v + rng.Normal(0.0, noise);
  }
  for (double& s : series) s = std::clamp(s, 0.0, 1.0);
  return series;
}

}  // namespace

void MultiSensorDataset::Validate() const {
  Check(num_classes > 0, "multi-sensor dataset needs classes");
  Check(!train_sensors.empty(), "multi-sensor dataset needs sensors");
  Check(train_sensors.size() == test_sensors.size(),
        "train/test sensor count mismatch");
  Check(sensor_names.size() == train_sensors.size(),
        "sensor name count mismatch");
  for (std::size_t s = 0; s < train_sensors.size(); ++s) {
    train_sensors[s].Validate();
    test_sensors[s].Validate();
    Check(train_sensors[s].labels == train_sensors[0].labels,
          "sensors must share training labels");
    Check(test_sensors[s].labels == test_sensors[0].labels,
          "sensors must share test labels");
  }
}

MultiSensorDataset MakeMultiPieLike(const MultiSensorOptions& options) {
  const std::size_t train_n =
      options.train_per_class > 0 ? options.train_per_class : 20;
  const std::size_t test_n =
      options.test_per_class > 0 ? options.test_per_class : 5;
  Rng rng(options.seed != 0 ? options.seed : 0xFACE0001);

  constexpr std::size_t kClasses = 10;
  std::vector<Image> identities;
  for (std::size_t c = 0; c < kClasses; ++c) {
    identities.push_back(SmoothRandomField(kSide, kSide, 6, rng));
  }

  MultiSensorDataset ds;
  ds.name = "Multi-PIE-like";
  ds.num_classes = kClasses;
  ds.sensor_names = {"view-c07", "view-c09", "view-c29"};
  ds.train_sensors.resize(3);
  ds.test_sensors.resize(3);

  DistortionParams params{.max_rotation_rad = 0.12,
                          .max_shift_px = 1.2,
                          .scale_jitter = 0.08,
                          .style_strength = 0.85,
                          .pixel_noise = 0.38,
                          .occlusion_prob = 0.30,
                          .occlusion_size = 5,
                          .contrast_jitter = 0.25};

  auto fill = [&](std::vector<nn::RealDataset>& sensors,
                  std::size_t per_class) {
    for (auto& sensor : sensors) {
      sensor.num_classes = kClasses;
      sensor.dim = kDim;
    }
    for (std::size_t c = 0; c < kClasses; ++c) {
      for (std::size_t i = 0; i < per_class; ++i) {
        // The subject's head pose is shared by all cameras; per-view
        // style/noise/occlusion stay independent.
        const double head_angle = rng.Uniform(-0.12, 0.12);
        const double head_dx = rng.Uniform(-1.2, 1.2);
        for (std::size_t v = 0; v < 3; ++v) {
          Image posed = AffineWarp(identities[c],
                                   kViews[v].angle_rad + head_angle,
                                   kViews[v].scale, 0.0,
                                   kViews[v].dx + head_dx);
          DistortionParams view_params = params;
          view_params.max_rotation_rad = 0.0;
          view_params.max_shift_px = 0.0;
          Image sample = RenderSample(posed, view_params, rng);
          PushSample(sensors[v], std::move(sample.pixels),
                     static_cast<int>(c));
        }
      }
    }
  };
  fill(ds.train_sensors, train_n);
  fill(ds.test_sensors, test_n);
  ds.Validate();
  return ds;
}

MultiSensorDataset MakeRfSauronLike(const MultiSensorOptions& options) {
  const std::size_t train_n =
      options.train_per_class > 0 ? options.train_per_class : 60;
  const std::size_t test_n =
      options.test_per_class > 0 ? options.test_per_class : 25;
  Rng rng(options.seed != 0 ? options.seed : 0xFACE0002);

  constexpr std::size_t kClasses = 10;
  MultiSensorDataset ds;
  ds.name = "RF-Sauron-like";
  ds.num_classes = kClasses;
  ds.sensor_names = {"antenna-0", "antenna-1", "antenna-2"};
  ds.train_sensors.resize(3);
  ds.test_sensors.resize(3);

  constexpr double kNoise = 0.60;
  auto fill = [&](std::vector<nn::RealDataset>& sensors,
                  std::size_t per_class) {
    for (auto& sensor : sensors) {
      sensor.num_classes = kClasses;
      sensor.dim = kDim;
    }
    for (std::size_t c = 0; c < kClasses; ++c) {
      const GestureShape shape = ShapeForClass(c);
      for (std::size_t i = 0; i < per_class; ++i) {
        const GestureEvent event = DrawGestureEvent(rng);
        for (std::size_t a = 0; a < 3; ++a) {
          Image trace =
              RenderDopplerTrace(shape, event, kAntennas[a], kNoise, rng);
          PushSample(sensors[a], std::move(trace.pixels),
                     static_cast<int>(c));
        }
      }
    }
  };
  fill(ds.train_sensors, train_n);
  fill(ds.test_sensors, test_n);
  ds.Validate();
  return ds;
}

MultiSensorDataset MakeUscHadLike(const MultiSensorOptions& options) {
  const std::size_t train_n =
      options.train_per_class > 0 ? options.train_per_class : 56;
  const std::size_t test_n =
      options.test_per_class > 0 ? options.test_per_class : 14;
  Rng rng(options.seed != 0 ? options.seed : 0xFACE0003);

  constexpr std::size_t kClasses = 6;
  MultiSensorDataset ds;
  ds.name = "USC-HAD-like";
  ds.num_classes = kClasses;
  ds.sensor_names = {"accelerometer", "gyroscope"};
  ds.train_sensors.resize(2);
  ds.test_sensors.resize(2);

  constexpr double kNoise = 0.22;
  auto fill = [&](std::vector<nn::RealDataset>& sensors,
                  std::size_t per_class) {
    for (auto& sensor : sensors) {
      sensor.num_classes = kClasses;
      sensor.dim = kDim;
    }
    for (std::size_t c = 0; c < kClasses; ++c) {
      for (std::size_t i = 0; i < per_class; ++i) {
        const MotionEvent event = DrawMotionEvent(rng);
        PushSample(sensors[0],
                   RenderInertial(c, event, /*gyroscope=*/false, kNoise, rng),
                   static_cast<int>(c));
        PushSample(sensors[1],
                   RenderInertial(c, event, /*gyroscope=*/true, kNoise, rng),
                   static_cast<int>(c));
      }
    }
  };
  fill(ds.train_sensors, train_n);
  fill(ds.test_sensors, test_n);
  ds.Validate();
  return ds;
}

}  // namespace metaai::data
