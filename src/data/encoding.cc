#include "data/encoding.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace metaai::data {

unsigned QuantizeIntensity(double intensity, int bits) {
  Check(bits >= 1 && bits <= 16, "bits out of range");
  const auto levels = 1u << bits;
  const double clamped = std::clamp(intensity, 0.0, 1.0);
  const auto level = static_cast<unsigned>(clamped * levels);
  return std::min(level, levels - 1);
}

double DequantizeLevel(unsigned level, int bits) {
  Check(bits >= 1 && bits <= 16, "bits out of range");
  const auto levels = 1u << bits;
  Check(level < levels, "level out of range");
  return (static_cast<double>(level) + 0.5) / static_cast<double>(levels);
}

namespace {

// Maps a quantized intensity level onto constellation *bits* so that
// consecutive levels land on geometrically adjacent constellation points:
// the high half of the level walks the I axis, the low half snakes up and
// down the Q axis (boustrophedon), and each axis index is Gray-encoded to
// match the modulator's Gray-mapped PAM.
unsigned LevelToSymbolBits(unsigned level, int bits) {
  if (bits == 1) return level;
  const int half = bits / 2;
  const unsigned axis_mask = (1u << half) - 1u;
  const unsigned i_idx = level >> half;
  const unsigned q_raw = level & axis_mask;
  const unsigned q_idx = (i_idx & 1u) ? (axis_mask - q_raw) : q_raw;
  return (rf::BinaryToGrayCode(i_idx) << half) | rf::BinaryToGrayCode(q_idx);
}

unsigned SymbolBitsToLevel(unsigned symbol_bits, int bits) {
  if (bits == 1) return symbol_bits;
  const int half = bits / 2;
  const unsigned axis_mask = (1u << half) - 1u;
  const unsigned i_idx = rf::GrayToBinaryCode(symbol_bits >> half);
  const unsigned q_idx = rf::GrayToBinaryCode(symbol_bits & axis_mask);
  const unsigned q_raw = (i_idx & 1u) ? (axis_mask - q_idx) : q_idx;
  return (i_idx << half) | q_raw;
}

}  // namespace

std::vector<nn::Complex> EncodeSample(const std::vector<double>& pixels,
                                      rf::Modulation scheme) {
  const int bits = rf::BitsPerSymbol(scheme);
  std::vector<nn::Complex> symbols;
  symbols.reserve(pixels.size());
  for (const double p : pixels) {
    const unsigned level = QuantizeIntensity(p, bits);
    symbols.push_back(
        rf::SymbolForLevel(LevelToSymbolBits(level, bits), scheme));
  }
  return symbols;
}

std::vector<double> DecodeSample(const std::vector<nn::Complex>& symbols,
                                 rf::Modulation scheme) {
  const int bits = rf::BitsPerSymbol(scheme);
  std::vector<double> pixels;
  pixels.reserve(symbols.size());
  for (const nn::Complex& s : symbols) {
    const unsigned level =
        SymbolBitsToLevel(rf::LevelForSymbol(s, scheme), bits);
    pixels.push_back(DequantizeLevel(level, bits));
  }
  return pixels;
}

nn::ComplexDataset EncodeDataset(const nn::RealDataset& dataset,
                                 rf::Modulation scheme) {
  dataset.Validate();
  nn::ComplexDataset out;
  out.num_classes = dataset.num_classes;
  out.dim = dataset.dim;
  out.labels = dataset.labels;
  out.features.reserve(dataset.features.size());
  for (const auto& pixels : dataset.features) {
    out.features.push_back(EncodeSample(pixels, scheme));
  }
  return out;
}

}  // namespace metaai::data
