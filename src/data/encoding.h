// Pixel -> bits -> modulation symbols (§3.1 "encode each sample into data
// bits, which are then modulated into symbols").
//
// Each pixel becomes exactly one symbol: the pixel's [0,1] intensity is
// quantized to the modulation's bits-per-symbol depth and mapped onto the
// constellation. The default 256-QAM setup therefore carries 8-bit pixels
// one per symbol, while BPSK (Fig 23) carries binarized pixels — the input
// length U stays equal to the pixel count for every scheme.
#pragma once

#include <vector>

#include "nn/types.h"
#include "rf/modulation.h"

namespace metaai::data {

/// Quantizes a [0,1] intensity to a level in [0, 2^bits).
unsigned QuantizeIntensity(double intensity, int bits);

/// Inverse of QuantizeIntensity: level -> bucket-center intensity.
double DequantizeLevel(unsigned level, int bits);

/// Encodes one pixel vector into modulation symbols (one per pixel).
std::vector<nn::Complex> EncodeSample(const std::vector<double>& pixels,
                                      rf::Modulation scheme);

/// Hard-decision decode of a symbol vector back to intensities.
std::vector<double> DecodeSample(const std::vector<nn::Complex>& symbols,
                                 rf::Modulation scheme);

/// Encodes a whole real dataset into the complex symbol domain.
nn::ComplexDataset EncodeDataset(const nn::RealDataset& dataset,
                                 rf::Modulation scheme);

}  // namespace metaai::data
