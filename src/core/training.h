// Digital training of the MetaAI network (§3.1) with the robustness
// schemes of §3.5: the CDFA sync-error injector (Gamma-distributed cyclic
// shifts of the symbol stream) and noise-aware training (hardware noise
// folded into the input per Eqn 14, environmental noise added at the
// output per Eqn 13).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mts/layer_graph.h"
#include "nn/complex_linear.h"
#include "nn/types.h"
#include "rf/modulation.h"

namespace metaai::core {

struct TrainingOptions {
  rf::Modulation modulation = rf::Modulation::kQam256;
  /// Optimizer settings; the defaults are the paper's (§4): lr 8e-3,
  /// momentum 0.95, batch 64, 60 epochs.
  int epochs = 60;
  int batch_size = 64;
  double learning_rate = 8e-3;
  double momentum = 0.95;

  /// CDFA fine-grained adjustment: inject Gamma-distributed cyclic shifts
  /// (in symbols) during training so the deployed network tolerates the
  /// residual coarse-detection error.
  bool sync_error_injection = false;
  double sync_gamma_shape = 2.0;
  double sync_gamma_scale_us = 1.85;
  /// Probability of drawing a small uniform error instead of the Gamma
  /// tail: the Gamma density vanishes at zero, so a pure Gamma injector
  /// leaves the model weak exactly when the detector happens to fire on
  /// time. A modest mixture keeps the zero-offset case in distribution.
  double sync_small_error_mix = 0.25;
  double symbol_rate_hz = 1e6;

  /// Noise-aware training (§3.5.2): complex input noise variance
  /// (hardware noise N_d folded into x) and output noise variance (N_e).
  double input_noise_variance = 0.0;
  double output_noise_variance = 0.0;
};

/// A digitally trained MetaAI model: the complex single-layer network plus
/// the modulation its inputs are encoded with.
struct TrainedModel {
  nn::ComplexLinearModel network;
  rf::Modulation modulation = rf::Modulation::kQam256;
  /// The physical cascade this model was trained to deploy on, when it
  /// targets a multi-surface layer graph (serialized alongside the
  /// weights so a controller host can rebuild the same mts::LayerGraph).
  /// Empty = single surface chosen at deployment time (the legacy
  /// contract; model files round-trip byte-identically).
  std::vector<mts::PhysicalLayerSpec> layers;

  std::size_t input_dim() const { return network.input_dim(); }
  std::size_t num_classes() const { return network.num_classes(); }
};

/// Encodes `train` with options.modulation and trains the complex LNN.
TrainedModel TrainModel(const nn::RealDataset& train,
                        const TrainingOptions& options, Rng& rng);

/// "Simulation" accuracy (Table 1): the digital model evaluated on
/// encoded test data, no channel in the loop.
double EvaluateDigital(const TrainedModel& model,
                       const nn::RealDataset& test);

/// Cyclic shift by `shift` positions (helper exposed for tests; the CDFA
/// injector applies it with Gamma-drawn shifts).
void CyclicShift(std::vector<nn::Complex>& symbols, std::size_t shift);

}  // namespace metaai::core
