// Over-the-air deployment of a trained MetaAI model (§2.2.1, §3.3).
//
// A Deployment owns the configured link (one observation for sequential
// operation; K subcarriers or K receive antennas for the parallel modes
// of Fig 9) and the mapped MTS schedules, and classifies samples by
// transmitting them through the simulated channel: for each transmission
// round the per-symbol measurements are accumulated (Eqn 3) into class
// scores y_r = |sum_i z_{r,i}|.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/training.h"
#include "core/weight_mapper.h"
#include "mts/layer_graph.h"
#include "mts/metasurface.h"
#include "nn/types.h"
#include "sim/link.h"
#include "sim/sync.h"

namespace metaai::core {

enum class ParallelismMode { kSequential, kSubcarrier, kAntenna };

std::string ParallelismModeName(ParallelismMode mode);

struct DeploymentOptions {
  ParallelismMode mode = ParallelismMode::kSequential;
  /// Number of simultaneous outputs (subcarriers / antennas). 0 = one
  /// per class. Ignored in sequential mode.
  std::size_t parallel_width = 0;
  /// Subcarrier spacing for subcarrier parallelism (paper: 40 kHz).
  double subcarrier_spacing_hz = 40e3;
  /// Angular spacing between receive antennas for antenna parallelism.
  double antenna_spacing_deg = 6.0;
  MappingOptions mapping;
};

/// A soft classification: the argmax class plus a label-free confidence
/// margin (top1 - top2) / top1 over the class scores, in [0, 1] (0 when
/// the top score is not positive; 1 for single-class models). The
/// margin is the serving runtime's per-request accuracy proxy: it needs
/// no ground-truth label, and it collapses toward 0 as the link
/// degrades, tracking accuracy closely enough to drive online drift
/// detection (obs/health.h).
struct SoftDecision {
  int predicted = -1;
  double margin = 0.0;
};

class Deployment {
 public:
  /// Maps `model`'s weights onto `surface` for the link described by
  /// `link_config` (its observation list is built internally from the
  /// parallelism mode).
  Deployment(const TrainedModel& model, const mts::Metasurface& surface,
             sim::OtaLinkConfig link_config, DeploymentOptions options = {});

  /// Cascade deployment over a multi-surface layer graph: the alternating
  /// cascade solver maps weights jointly across the layers and every
  /// inference round drives the upper-layer schedules alongside the front
  /// panel. `graph` must outlive the deployment (same contract as the
  /// surface overload). A depth-1 graph reproduces the single-surface
  /// constructor bit for bit.
  Deployment(const TrainedModel& model, const mts::LayerGraph& graph,
             sim::OtaLinkConfig link_config, DeploymentOptions options = {});

  const sim::OtaLink& link() const { return link_; }
  const MappedSchedules& schedules() const { return schedules_; }
  const DeploymentOptions& options() const { return options_; }
  std::size_t num_classes() const { return num_classes_; }

  /// Number of transmission rounds per inference (latency proxy).
  std::size_t RoundsPerInference() const { return schedules_.rounds.size(); }

  /// Class scores from one over-the-air inference of a pixel vector.
  std::vector<double> ClassScores(const std::vector<double>& pixels,
                                  double mts_clock_offset_us, Rng& rng) const;

  /// Argmax classification.
  int Classify(const std::vector<double>& pixels, double mts_clock_offset_us,
               Rng& rng) const;

  /// Argmax classification plus the soft-decision margin. Consumes
  /// exactly the same RNG draws as Classify, so swapping between the
  /// two never perturbs a seeded run.
  SoftDecision ClassifyWithMargin(const std::vector<double>& pixels,
                                  double mts_clock_offset_us, Rng& rng) const;

  /// Batched classification for serving: one sample per entry with its
  /// own clock offset and pre-forked RNG stream (see par::ForkRngs).
  /// Deterministically parallel — predictions are bitwise identical for
  /// any thread count and any batching composition, because sample i
  /// only ever touches rngs[i]. All three spans must be the same length.
  std::vector<int> ClassifyBatch(std::span<const std::vector<double>> samples,
                                 std::span<const double> offsets_us,
                                 std::span<Rng> rngs) const;

  /// Accuracy over a test set; a fresh clock offset is drawn from `sync`
  /// for every inference. `max_samples` of 0 uses the whole set.
  double EvaluateAccuracy(const nn::RealDataset& test,
                          const sim::SyncModel& sync, Rng& rng,
                          std::size_t max_samples = 0) const;

  /// Accuracy with a fixed clock offset (used by the Fig 13 sweep).
  double EvaluateAccuracyAtOffset(const nn::RealDataset& test,
                                  double mts_clock_offset_us, Rng& rng,
                                  std::size_t max_samples = 0) const;

 private:
  void EmitScheduleProbes() const;

  rf::Modulation modulation_;
  std::size_t num_classes_;
  DeploymentOptions options_;
  sim::OtaLink link_;
  MappedSchedules schedules_;
};

/// Builds the observation list for a parallelism mode (exposed for
/// tests/benches that construct links directly).
std::vector<sim::Observation> BuildObservations(
    const sim::OtaLinkConfig& base, std::size_t num_classes,
    const DeploymentOptions& options);

}  // namespace metaai::core
