// Fault detection and graceful degradation for a live deployment.
//
// A deployed surface accumulates hardware faults (metaai::fault): stuck
// PIN drivers, corrupted shift-chain loads, aging phase drift. The
// recovery pipeline mirrors the paper's recalibration loop (§7) but
// against *device* failures instead of receiver motion:
//   1. diagnose — toggle-probe every atom over the air: transmit the
//      all-zero pattern (baseline B0), then per-atom patterns with atom m
//      at the pi state. A healthy atom toggles the measured response by
//      -2 s_m; a stuck atom leaves it unchanged (its code ignores the
//      load). The toggle simultaneously *measures* each healthy atom's
//      actual steering response — device error and drift included;
//   2. re-solve — rebuild the weight mapping with the stuck atoms masked
//      out of coordinate descent (mts::SolveOptions::atom_mask), against
//      the measured steering, with the measured static offsets folded
//      into the targets;
//   3. resume inference on the healthy aperture.
// A watchdog (accuracy drop vs a reference + WDD aperture-health ratio)
// decides when to pay the diagnosis cost.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/deployment.h"
#include "obs/alerts.h"

namespace metaai::core {

struct FaultDiagnosisConfig {
  /// Symbols averaged per probe transmission. A single atom's toggle is
  /// ~20 log10(num_atoms) dB below the aggregate link signal, so the
  /// per-atom measurement needs far more integration than ordinary
  /// symbol detection; noise on the measured steering scales with
  /// 1/sqrt(probe_symbols).
  std::size_t probe_symbols = 64;
  /// An atom is declared stuck when its measured toggle magnitude
  /// |B_m - B0| falls below this fraction of the expected healthy toggle
  /// 2 |s_m| (averaged across the link's observations).
  double stuck_threshold = 0.5;
};

struct FaultDiagnosis {
  /// 1 = healthy, 0 = stuck; sized num_atoms.
  std::vector<std::uint8_t> healthy_mask;
  std::size_t num_stuck = 0;
  /// Measured steering per (observation, atom) in solver units — the
  /// actual hardware response including device error and drift. Stuck
  /// atoms hold 0 (they are masked out of the re-solve anyway).
  ComplexMatrix measured_steering;
  /// Measured static response offset per observation in solver units:
  /// baseline B0 minus the healthy-atom prediction. Captures the stuck
  /// atoms' pinned contribution plus any environment leak; ~0 under the
  /// §3.2 cancellation scheme (stuck atoms never flip, so they cancel
  /// like the environment). Feed to MappingOptions::fault_offsets; do
  /// not combine with subtract_environment (the leak is already here).
  std::vector<sim::Complex> offsets;
  /// WDD(healthy) / WDD(total): aperture-health ratio in [0, 1].
  double wdd_ratio = 1.0;
  /// Probe transmissions spent (num_atoms + 1).
  std::size_t probe_transmissions = 0;
};

/// Toggle-probes every atom of `deployment`'s link over the air. Noise
/// for the probe transmissions is drawn from `rng`. Cascade links are
/// probed with the upper layers held at a deterministic focus
/// configuration whose composed factor is divided back out of every
/// measurement, so the toggle algebra sees the front panel alone (faults
/// only act there).
FaultDiagnosis DiagnoseDeployment(const Deployment& deployment, Rng& rng,
                                  const FaultDiagnosisConfig& config = {});

/// Rebuilds the deployment with the diagnosis applied: stuck atoms are
/// masked out of the solve, the mapper solves against the measured
/// steering, and the measured offsets are folded into the targets.
/// `options` should match the degraded deployment's options; its mapping
/// fault fields are overwritten.
Deployment RecoverFromFaults(const TrainedModel& model,
                             const mts::Metasurface& surface,
                             sim::OtaLinkConfig link_config,
                             DeploymentOptions options,
                             const FaultDiagnosis& diagnosis);

/// Cascade recovery: rebuilds the deployment over `graph` (front-panel
/// faults masked and re-solved exactly as above; the upper layers are
/// fault-free by model). `graph` must outlive the returned deployment.
Deployment RecoverFromFaults(const TrainedModel& model,
                             const mts::LayerGraph& graph,
                             sim::OtaLinkConfig link_config,
                             DeploymentOptions options,
                             const FaultDiagnosis& diagnosis);

struct FaultWatchdogConfig {
  FaultDiagnosisConfig diagnosis;
  /// Absolute accuracy drop vs the reference that trips a diagnosis.
  double accuracy_drop_threshold = 0.05;
  /// Samples for the accuracy spot-checks.
  std::size_t check_samples = 64;
};

struct FaultWatchdogReport {
  double observed_accuracy = 0.0;
  double reference_accuracy = 0.0;
  bool tripped = false;
  std::size_t num_stuck_detected = 0;
  double wdd_ratio = 1.0;
  /// Accuracy of the recovered deployment on the same spot-check set
  /// (only meaningful when tripped).
  double recovered_accuracy = 0.0;
};

struct FaultWatchdogResult {
  FaultWatchdogReport report;
  /// Engaged when the watchdog tripped and a re-solve ran.
  std::optional<Deployment> recovered;
};

/// Spot-checks `deployment` against `reference_accuracy`; on a trip runs
/// the full diagnose -> re-solve pipeline and evaluates the recovered
/// deployment. Emits fault.* counters and the deploy.recovered_accuracy
/// gauge.
FaultWatchdogResult RunFaultWatchdog(const TrainedModel& model,
                                     const mts::Metasurface& surface,
                                     const sim::OtaLinkConfig& link_config,
                                     const DeploymentOptions& options,
                                     const Deployment& deployment,
                                     const nn::RealDataset& test,
                                     double reference_accuracy, Rng& rng,
                                     const FaultWatchdogConfig& config = {});

/// Watchdog over a cascade deployment: identical pipeline, but the
/// recovered deployment is rebuilt over `graph`.
FaultWatchdogResult RunFaultWatchdog(const TrainedModel& model,
                                     const mts::LayerGraph& graph,
                                     const sim::OtaLinkConfig& link_config,
                                     const DeploymentOptions& options,
                                     const Deployment& deployment,
                                     const nn::RealDataset& test,
                                     double reference_accuracy, Rng& rng,
                                     const FaultWatchdogConfig& config = {});

/// Alert-driven watchdog entry: a drift alert from the health layer
/// (obs/alerts.h — AlertKind::kDriftDetected, or any critical alert)
/// replaces the polling accuracy spot-check. The alert IS the trip:
/// detection happened online from label-free signals, so no
/// spot-check transmissions are spent deciding whether to diagnose —
/// the pipeline goes straight to diagnose -> re-solve and evaluates
/// the recovered deployment. The report's observed_accuracy holds the
/// alert's observed signal value (an accuracy *proxy*, not an
/// accuracy). Emits fault.watchdog_alert_trips alongside the shared
/// fault.* recovery instruments. Throws CheckError for alerts that are
/// neither drift-class nor critical.
FaultWatchdogResult RunFaultWatchdogOnAlert(
    const TrainedModel& model, const mts::Metasurface& surface,
    const sim::OtaLinkConfig& link_config, const DeploymentOptions& options,
    const Deployment& deployment, const nn::RealDataset& test,
    double reference_accuracy, const obs::health::Alert& alert, Rng& rng,
    const FaultWatchdogConfig& config = {});

}  // namespace metaai::core
