#include "core/channel_estimation.h"

#include <cmath>

#include "common/check.h"

namespace metaai::core {

EnvironmentEstimate EstimateEnvironment(
    const sim::OtaLink& link, Rng& rng,
    const EnvironmentEstimateOptions& options) {
  Check(link.num_observations() == 1,
        "environment estimation expects a single-observation link");
  Check(!link.config().multipath_cancellation,
        "environment estimation requires cancellation disabled: the "
        "zero-mean scheme removes exactly the path being estimated");
  Check(options.num_pilots > 0, "need at least one pilot");

  // Null the surface toward the receiver: solve for an aggregate
  // reflection of zero.
  const auto steering = link.SteeringVector(0);
  const auto null_solution = mts::SolveSingleTarget(
      steering, {0.0, 0.0}, options.solver);

  EnvironmentEstimate estimate;
  estimate.null_codes = null_solution.codes;
  double reachable = 0.0;
  for (const auto& s : steering) reachable += std::abs(s);
  estimate.null_quality = null_solution.residual / (0.9 * reachable);

  // Known unit-power pilots with random phases (so the estimate is not
  // biased by a single constellation point).
  std::vector<sim::Complex> pilots(options.num_pilots);
  for (auto& p : pilots) p = rng.UnitPhasor();
  const sim::MtsSchedule schedule(options.num_pilots, null_solution.codes);
  const auto z = link.TransmitSequence(pilots, schedule,
                                       /*mts_clock_offset_us=*/0.0, rng);

  // Least squares: H = sum z_i conj(x_i) / sum |x_i|^2.
  sim::Complex numerator{0.0, 0.0};
  double denominator = 0.0;
  for (std::size_t i = 0; i < pilots.size(); ++i) {
    numerator += z(0, i) * std::conj(pilots[i]);
    denominator += std::norm(pilots[i]);
  }
  estimate.response = numerator / denominator;
  return estimate;
}

}  // namespace metaai::core
