#include "core/recalibration.h"

#include <cmath>

#include "common/check.h"
#include "mts/beam_scan.h"

namespace metaai::core {

RecalibrationReport EstimateReceiverAngle(
    const mts::Metasurface& surface, const mts::LinkGeometry& geometry,
    const PowerProbe& probe, std::size_t num_weights,
    const mts::Controller& controller, const RecalibrationConfig& config) {
  Check(config.scan_steps >= 2, "need at least two scan steps");
  Check(static_cast<bool>(probe), "recalibration needs a power probe");

  const auto scan = mts::ScanForReceiver(
      surface, geometry, config.scan_min_angle_rad, config.scan_max_angle_rad,
      config.scan_steps, probe);

  RecalibrationReport report;
  report.estimated_angle_rad = scan.angle_rad;
  report.probes = scan.scanned_powers.size();
  report.scan_latency_s =
      static_cast<double>(report.probes) *
      (controller.PatternLoadTime() + config.probe_dwell_s);
  report.solve_latency_s =
      static_cast<double>(num_weights) * config.solve_time_per_weight_s;
  report.total_latency_s = report.scan_latency_s + report.solve_latency_s;

  // Tracking budget: the receiver may move by at most one scan step
  // between recalibrations.
  const double step = (config.scan_max_angle_rad -
                       config.scan_min_angle_rad) /
                      static_cast<double>(config.scan_steps - 1);
  report.max_trackable_angular_speed_rad_s =
      step / report.total_latency_s;
  return report;
}

RecalibratedDeployment RecalibrateForReceiver(
    const TrainedModel& model, const mts::Metasurface& surface,
    sim::OtaLinkConfig assumed_link, const sim::OtaLinkConfig& true_link,
    const DeploymentOptions& options, const RecalibrationConfig& config) {
  // The probe measures the power that would actually arrive at the (true)
  // receiver position for a candidate focus configuration — on hardware
  // this number comes back over the feedback channel.
  mts::Metasurface probe_surface{surface.spec()};
  const auto rss_probe = [&](std::span<const mts::PhaseCode> codes) {
    std::vector<mts::PhaseCode> copy(codes.begin(), codes.end());
    probe_surface.SetAllCodes(copy);
    return std::norm(probe_surface.Response(true_link.geometry));
  };

  const std::size_t num_weights =
      model.num_classes() * model.input_dim();
  const mts::Controller controller;
  const RecalibrationReport report = EstimateReceiverAngle(
      surface, assumed_link.geometry, rss_probe, num_weights, controller,
      config);

  assumed_link.geometry.rx_angle_rad = report.estimated_angle_rad;
  return {Deployment(model, surface, assumed_link, options), report};
}

}  // namespace metaai::core
