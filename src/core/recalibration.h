// Receiver mobility support (§7 "Device Mobility" + the §4 feedback
// protocol).
//
// When the receiver moves, the propagation phases phi_m^p change and the
// pre-solved mapping between configurations and logical weights becomes
// stale. The recovery pipeline is:
//   1. beam-scan the emergence angle theta (§3.2): sweep focus
//      configurations over candidate angles, pick the power peak;
//   2. re-solve the weight mapping for the new geometry;
//   3. resume inference.
// The paper frames mobility support as a race between the target's
// angular speed and this recalibration latency; RecalibrationReport
// carries both the estimate and the latency accounting so benches can
// evaluate that race.
#pragma once

#include <functional>

#include "core/deployment.h"
#include "mts/controller.h"
#include "mts/metasurface.h"

namespace metaai::core {

struct RecalibrationConfig {
  double scan_min_angle_rad = 0.0;
  double scan_max_angle_rad = 1.0471975511965976;  // 60 deg (panel FoV)
  int scan_steps = 31;
  /// Receiver dwell per probe (RSS measurement time), seconds.
  double probe_dwell_s = 50e-6;
  /// Seconds to re-solve one (output, symbol) configuration on the
  /// controller host (measured ~8 us on a laptop core; see
  /// bench_micro_kernels).
  double solve_time_per_weight_s = 8e-6;
};

struct RecalibrationReport {
  double estimated_angle_rad = 0.0;
  /// Beam-scan probes issued.
  std::size_t probes = 0;
  /// Scan latency: probes * (pattern load + dwell).
  double scan_latency_s = 0.0;
  /// Weight re-mapping latency estimate.
  double solve_latency_s = 0.0;
  double total_latency_s = 0.0;
  /// Highest receiver angular speed (rad/s) this recalibration loop can
  /// track while staying within one scan-resolution step of error.
  double max_trackable_angular_speed_rad_s = 0.0;
};

/// Power measurement for a candidate configuration: the simulator (or, on
/// hardware, the receiver's RSS feedback channel) reports received power
/// for the probe codes.
using PowerProbe = std::function<double(std::span<const mts::PhaseCode>)>;

/// Runs the beam scan and fills in the latency accounting. `geometry`
/// carries the known Tx side; the receiver angle field is ignored.
RecalibrationReport EstimateReceiverAngle(
    const mts::Metasurface& surface, const mts::LinkGeometry& geometry,
    const PowerProbe& probe, std::size_t num_weights,
    const mts::Controller& controller, const RecalibrationConfig& config = {});

/// Convenience: full pipeline against a simulated "true" link — scans for
/// the receiver of `true_link_config`, then rebuilds the deployment with
/// the estimated angle. Returns the new deployment and the report.
struct RecalibratedDeployment {
  Deployment deployment;
  RecalibrationReport report;
};

RecalibratedDeployment RecalibrateForReceiver(
    const TrainedModel& model, const mts::Metasurface& surface,
    sim::OtaLinkConfig assumed_link, const sim::OtaLinkConfig& true_link,
    const DeploymentOptions& options = {},
    const RecalibrationConfig& config = {});

}  // namespace metaai::core
