// Persistence for trained models and metasurface pattern schedules.
//
// Two artifact types a real deployment would ship around:
//  * model files — the trained complex weights plus the modulation they
//    expect, written by the training host and loaded by the controller
//    service (versioned text format, locale-independent);
//  * pattern files — the fully solved per-symbol 2-bit configuration
//    schedules, i.e. exactly the byte stream the STM32-class controller
//    clocks into its shift registers. One line per symbol, hex-packed
//    (2 bits per atom), with the transmission-round structure preserved.
//
// The Try* entry points return Result<T>: I/O failures come back as
// ErrorCode::kIoError and malformed/unsupported content as
// ErrorCode::kParseError, so services loading user-supplied artifacts
// can reject them gracefully instead of aborting.
#pragma once

#include <filesystem>

#include "common/result.h"
#include "core/training.h"
#include "core/weight_mapper.h"

namespace metaai::core {

/// Writes `model` to `path`.
Result<void> TrySaveModel(const TrainedModel& model,
                          const std::filesystem::path& path);

/// Reads a model previously written by SaveModel.
Result<TrainedModel> TryLoadModel(const std::filesystem::path& path);

/// Writes the solved schedules to a controller-consumable pattern file.
Result<void> TrySavePatterns(const MappedSchedules& schedules,
                             std::size_t num_atoms,
                             const std::filesystem::path& path);

/// Reads a pattern file back.
Result<MappedSchedules> TryLoadPatterns(const std::filesystem::path& path,
                                        std::size_t expected_atoms);

}  // namespace metaai::core
