// Persistence for trained models and metasurface pattern schedules.
//
// Two artifact types a real deployment would ship around:
//  * model files — the trained complex weights plus the modulation they
//    expect, written by the training host and loaded by the controller
//    service (versioned text format, locale-independent);
//  * pattern files — the fully solved per-symbol 2-bit configuration
//    schedules, i.e. exactly the byte stream the STM32-class controller
//    clocks into its shift registers. One line per symbol, hex-packed
//    (2 bits per atom), with the transmission-round structure preserved.
#pragma once

#include <filesystem>

#include "core/training.h"
#include "core/weight_mapper.h"

namespace metaai::core {

/// Writes `model` to `path`. Throws CheckError on I/O failure.
void SaveModel(const TrainedModel& model, const std::filesystem::path& path);

/// Reads a model previously written by SaveModel. Throws CheckError on
/// I/O failure or malformed/unsupported content.
TrainedModel LoadModel(const std::filesystem::path& path);

/// Writes the solved schedules to a controller-consumable pattern file.
void SavePatterns(const MappedSchedules& schedules, std::size_t num_atoms,
                  const std::filesystem::path& path);

/// Reads a pattern file back. Throws CheckError on malformed content.
MappedSchedules LoadPatterns(const std::filesystem::path& path,
                             std::size_t expected_atoms);

}  // namespace metaai::core
