#include "core/deployment.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "data/encoding.h"
#include "obs/obs.h"
#include "obs/parallel.h"
#include "rf/geometry.h"

namespace metaai::core {

std::string ParallelismModeName(ParallelismMode mode) {
  switch (mode) {
    case ParallelismMode::kSequential:
      return "sequential";
    case ParallelismMode::kSubcarrier:
      return "subcarrier";
    case ParallelismMode::kAntenna:
      return "antenna";
  }
  throw CheckError("unknown parallelism mode");
}

std::vector<sim::Observation> BuildObservations(
    const sim::OtaLinkConfig& base, std::size_t num_classes,
    const DeploymentOptions& options) {
  std::size_t width = options.parallel_width > 0 ? options.parallel_width
                                                 : num_classes;
  width = std::min(width, num_classes);
  std::vector<sim::Observation> observations;
  switch (options.mode) {
    case ParallelismMode::kSequential:
      observations.push_back({});
      break;
    case ParallelismMode::kSubcarrier: {
      // Subcarriers centred on the carrier, one per simultaneous output.
      const double spacing = options.subcarrier_spacing_hz;
      for (std::size_t k = 0; k < width; ++k) {
        const double offset =
            (static_cast<double>(k) -
             (static_cast<double>(width) - 1.0) / 2.0) *
            spacing;
        observations.push_back(
            {.freq_offset_hz = offset, .harmonic = static_cast<int>(k)});
      }
      break;
    }
    case ParallelismMode::kAntenna: {
      // Antenna array fanned around the nominal receive direction.
      const double spacing = rf::DegToRad(options.antenna_spacing_deg);
      for (std::size_t l = 0; l < width; ++l) {
        mts::LinkGeometry geometry = base.geometry;
        geometry.rx_angle_rad +=
            (static_cast<double>(l) -
             (static_cast<double>(width) - 1.0) / 2.0) *
            spacing;
        observations.push_back({.geometry = geometry});
      }
      break;
    }
  }
  return observations;
}

namespace {

// Shared constructor plumbing for the surface and graph overloads.
sim::OtaLinkConfig DeployLinkConfig(sim::OtaLinkConfig link_config,
                                    const TrainedModel& model,
                                    const DeploymentOptions& options) {
  link_config.observations =
      BuildObservations(link_config, model.num_classes(), options);
  // Tell the link what constellation the data symbols come from so
  // its EVM probe can report the demod soft-decision margin (the
  // health layer's label-free accuracy proxy).
  link_config.data_modulation = model.modulation;
  return link_config;
}

MappingOptions DeployMappingOptions(const DeploymentOptions& options) {
  // Pin the scheme from the deployment mode rather than letting
  // kAuto follow the link shape: a parallel deployment whose width
  // collapses to one observation must still use the parallel
  // solve/residual path so results match wider configurations.
  MappingOptions mapping = options.mapping;
  if (mapping.scheme == MappingScheme::kAuto) {
    mapping.scheme = options.mode == ParallelismMode::kSequential
                         ? MappingScheme::kSequential
                         : MappingScheme::kParallel;
  }
  return mapping;
}

}  // namespace

Deployment::Deployment(const TrainedModel& model,
                       const mts::Metasurface& surface,
                       sim::OtaLinkConfig link_config,
                       DeploymentOptions options)
    : modulation_(model.modulation),
      num_classes_(model.num_classes()),
      options_(options),
      link_(surface, DeployLinkConfig(std::move(link_config), model, options)),
      schedules_(MapWeights(model.network.weights(), link_,
                            DeployMappingOptions(options))) {
  EmitScheduleProbes();
}

Deployment::Deployment(const TrainedModel& model, const mts::LayerGraph& graph,
                       sim::OtaLinkConfig link_config,
                       DeploymentOptions options)
    : modulation_(model.modulation),
      num_classes_(model.num_classes()),
      options_(options),
      link_(graph, DeployLinkConfig(std::move(link_config), model, options)),
      schedules_(MapWeights(model.network.weights(), link_,
                            DeployMappingOptions(options))) {
  EmitScheduleProbes();
}

void Deployment::EmitScheduleProbes() const {
  if (obs::ProbesEnabled()) {
    // Dump the leading phase configuration of every round so a
    // degraded deployment's realized metasurface state is inspectable
    // offline (the full schedule is rounds x symbols x atoms; the
    // first symbol per round is the representative sample).
    const auto& rounds = schedules_.rounds;
    for (std::size_t r = 0; r < rounds.size(); ++r) {
      const auto& codes = rounds[r].front();
      std::vector<double> series(codes.size());
      for (std::size_t m = 0; m < codes.size(); ++m) {
        series[m] = static_cast<double>(codes[m]);
      }
      obs::Probe({.kind = obs::ProbeKind::kPhaseConfig,
                  .site = "deploy.schedule",
                  .values = {{"round", static_cast<double>(r)},
                             {"symbol", 0.0},
                             {"atoms", static_cast<double>(codes.size())},
                             {"mean_relative_residual",
                              schedules_.mean_relative_residual}},
                  .series = std::move(series)});
    }
  }
}

std::vector<double> Deployment::ClassScores(const std::vector<double>& pixels,
                                            double mts_clock_offset_us,
                                            Rng& rng) const {
  const std::vector<nn::Complex> symbols =
      data::EncodeSample(pixels, modulation_);
  Check(symbols.size() == schedules_.rounds.front().size(),
        "sample length does not match the deployed schedule");

  obs::Count("ota.inferences");
  obs::Count("ota.rounds", schedules_.rounds.size());
  obs::Count("ota.symbols", schedules_.rounds.size() * symbols.size());

  std::vector<double> scores(num_classes_, 0.0);
  for (std::size_t round = 0; round < schedules_.rounds.size(); ++round) {
    const obs::ScopedSpan round_span = obs::Span("ota.round");
    round_span.Arg("round", static_cast<double>(round));
    // Deep links carry a per-round upper-layer schedule solved jointly
    // with the front panel; single-surface mappings keep the legacy call
    // so depth-1 deployments stay on the exact pre-cascade code path.
    const ComplexMatrix z =
        schedules_.upper_rounds.empty()
            ? link_.TransmitSequence(symbols, schedules_.rounds[round],
                                     mts_clock_offset_us, rng)
            : link_.TransmitSequence(symbols, schedules_.rounds[round],
                                     schedules_.upper_rounds[round],
                                     mts_clock_offset_us, rng);
    const auto& outputs = schedules_.outputs[round];
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      if (outputs[o] < 0) continue;
      sim::Complex acc{0.0, 0.0};
      for (std::size_t i = 0; i < z.cols(); ++i) acc += z(o, i);
      scores[static_cast<std::size_t>(outputs[o])] = std::abs(acc);
    }
  }
  return scores;
}

int Deployment::Classify(const std::vector<double>& pixels,
                         double mts_clock_offset_us, Rng& rng) const {
  return ClassifyWithMargin(pixels, mts_clock_offset_us, rng).predicted;
}

SoftDecision Deployment::ClassifyWithMargin(const std::vector<double>& pixels,
                                            double mts_clock_offset_us,
                                            Rng& rng) const {
  const auto scores = ClassScores(pixels, mts_clock_offset_us, rng);
  const auto top = std::max_element(scores.begin(), scores.end());
  SoftDecision decision;
  decision.predicted =
      static_cast<int>(std::distance(scores.begin(), top));
  if (scores.size() < 2) {
    decision.margin = 1.0;
    return decision;
  }
  double second = -1.0;
  for (std::size_t c = 0; c < scores.size(); ++c) {
    if (static_cast<int>(c) == decision.predicted) continue;
    second = std::max(second, scores[c]);
  }
  if (*top > 0.0) {
    decision.margin = std::max(0.0, (*top - second) / *top);
  }
  return decision;
}

std::vector<int> Deployment::ClassifyBatch(
    std::span<const std::vector<double>> samples,
    std::span<const double> offsets_us, std::span<Rng> rngs) const {
  Check(samples.size() == offsets_us.size() && samples.size() == rngs.size(),
        "ClassifyBatch spans must have matching sizes");
  std::vector<int> predicted(samples.size(), -1);
  obs::DeterministicParallelFor(samples.size(), [&](std::size_t i) {
    predicted[i] = Classify(samples[i], offsets_us[i], rngs[i]);
  });
  return predicted;
}

double Deployment::EvaluateAccuracy(const nn::RealDataset& test,
                                    const sim::SyncModel& sync, Rng& rng,
                                    std::size_t max_samples) const {
  test.Validate();
  const std::size_t n = max_samples > 0
                            ? std::min(max_samples, test.size())
                            : test.size();
  Check(n > 0, "empty test set");
  const obs::ScopedSpan span = obs::Span("ota.evaluate");
  span.Arg("samples", static_cast<double>(n));
  static const obs::HistogramSpec kOffsetBuckets =
      obs::HistogramSpec::Linear(0.0, 50.0, 25);
  obs::Count("ota.evaluations");
  obs::Count("ota.samples", n);
  // One pre-forked stream per sample: each sample's offset draw and
  // channel noise come from its own generator, so the batch fan-out is
  // bitwise identical for any thread count.
  std::vector<Rng> rngs = par::ForkRngs(rng, n);
  std::vector<unsigned char> correct_flags(n, 0);
  obs::DeterministicParallelFor(n, [&](std::size_t i) {
    const double offset = sync.SampleOffsetUs(rngs[i]);
    obs::Observe("ota.sync_offset_us", offset, kOffsetBuckets);
    correct_flags[i] =
        Classify(test.features[i], offset, rngs[i]) == test.labels[i];
  });
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) correct += correct_flags[i];
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(n);
  obs::SetGauge("ota.accuracy", accuracy);
  if (obs::ProbesEnabled()) {
    obs::Probe({.kind = obs::ProbeKind::kScalar,
                .site = "ota.evaluate",
                .values = {{"samples", static_cast<double>(n)},
                           {"correct", static_cast<double>(correct)},
                           {"accuracy", accuracy}}});
  }
  return accuracy;
}

double Deployment::EvaluateAccuracyAtOffset(const nn::RealDataset& test,
                                            double mts_clock_offset_us,
                                            Rng& rng,
                                            std::size_t max_samples) const {
  test.Validate();
  const std::size_t n = max_samples > 0
                            ? std::min(max_samples, test.size())
                            : test.size();
  Check(n > 0, "empty test set");
  std::vector<Rng> rngs = par::ForkRngs(rng, n);
  std::vector<unsigned char> correct_flags(n, 0);
  obs::DeterministicParallelFor(n, [&](std::size_t i) {
    correct_flags[i] =
        Classify(test.features[i], mts_clock_offset_us, rngs[i]) ==
        test.labels[i];
  });
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) correct += correct_flags[i];
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace metaai::core
